GO ?= go

.PHONY: check vet build test race bench

# The tier-1 gate plus the race detector — run before every commit.
check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .
