GO ?= go

.PHONY: check vet build test race bench benchsmoke benchcmp gobench profile fuzz

# The tier-1 gate plus the race detector and a bench compile smoke — run
# before every commit.
check: vet build race benchsmoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Compile-and-run-once smoke over every benchmark in the repo, so bench
# code cannot rot between perf PRs.
benchsmoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# Native fuzzing smoke: each target gets FUZZTIME of coverage-guided
# input generation on top of its checked-in testdata/fuzz corpus (which
# alone is replayed by plain `go test`). New crashers are written under
# testdata/fuzz/<Target>/ — check them in as regressions.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -run='^$$' -fuzz='^FuzzMessageCodec$$' -fuzztime=$(FUZZTIME) ./internal/wire
	$(GO) test -run='^$$' -fuzz='^FuzzRandomConnectedSchedule$$' -fuzztime=$(FUZZTIME) ./internal/dynnet
	$(GO) test -run='^$$' -fuzz='^FuzzFaultPlan$$' -fuzztime=$(FUZZTIME) ./internal/faults
	$(GO) test -run='^$$' -fuzz='^FuzzSolverArithmetic$$' -fuzztime=$(FUZZTIME) ./internal/historytree
	$(GO) test -run='^$$' -fuzz='^FuzzBatchedRefine$$' -fuzztime=$(FUZZTIME) ./internal/historytree
	$(GO) test -run='^$$' -fuzz='^FuzzProtocolEquivalence$$' -fuzztime=$(FUZZTIME) ./internal/linear

# Run the benchmark-regression suite and record BENCH_PR9.json (see
# EXPERIMENTS.md, "Perf appendix").
bench:
	$(GO) run ./cmd/benchreport -out BENCH_PR9.json

# Compare two BENCH_*.json reports; fails on >20% ns/op regression
# (override per entry with -tol NAME=FRAC through EXTRA).
# Usage: make benchcmp BASE=BENCH_PR8.json [NEW=BENCH_PR9.json]
BASE ?= BENCH_PR8.json
NEW ?= BENCH_PR9.json
benchcmp:
	$(GO) run ./cmd/benchreport -compare -old $(BASE) -new $(NEW)

# Capture CPU + allocation pprof profiles of one suite entry (default:
# the E2 counting run, the repo's end-to-end hot path — its profile now
# lands in the batched refinement pass and the masked schedule
# generator; see DESIGN.md decision 15). See README "Profiling" for how
# to read the artifacts.
# Usage: make profile [BENCH=E2Count] [PROFDIR=profiles]
BENCH ?= E2Count
PROFDIR ?= profiles
profile:
	$(GO) run ./cmd/benchreport -bench '$(BENCH)' \
		-cpuprofile $(PROFDIR)/cpu.pprof -memprofile $(PROFDIR)/mem.pprof

# The raw testing.B entries (one per reproduction experiment).
gobench:
	$(GO) test -bench=. -benchmem -run=^$$ .
