GO ?= go

.PHONY: check vet build test race bench benchsmoke benchcmp gobench

# The tier-1 gate plus the race detector and a bench compile smoke — run
# before every commit.
check: vet build race benchsmoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Compile-and-run-once smoke over every benchmark in the repo, so bench
# code cannot rot between perf PRs.
benchsmoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# Run the benchmark-regression suite and record BENCH_PR3.json (see
# EXPERIMENTS.md, "Perf appendix").
bench:
	$(GO) run ./cmd/benchreport -out BENCH_PR3.json

# Compare two BENCH_*.json reports; fails on >20% ns/op regression.
# Usage: make benchcmp BASE=BENCH_PR2.json [NEW=BENCH_PR3.json]
BASE ?= BENCH_PR2.json
NEW ?= BENCH_PR3.json
benchcmp:
	$(GO) run ./cmd/benchreport -compare -old $(BASE) -new $(NEW)

# The raw testing.B entries (one per reproduction experiment).
gobench:
	$(GO) test -bench=. -benchmem -run=^$$ .
