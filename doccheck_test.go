package anondyn_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestEveryExportedIdentifierIsDocumented walks all library source files
// and asserts every exported declaration carries a doc comment — the
// deliverable-(e) contract ("doc comments on every public item"). Command
// and example mains are exempt (they export nothing by design), as are
// test files.
func TestEveryExportedIdentifierIsDocumented(t *testing.T) {
	fset := token.NewFileSet()
	var missing []string

	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "cmd" || name == "examples" || strings.HasPrefix(name, ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		for _, decl := range file.Decls {
			switch dd := decl.(type) {
			case *ast.FuncDecl:
				if dd.Name.IsExported() && dd.Doc == nil && !isExemptMethod(dd) {
					missing = append(missing, posOf(fset, dd.Pos())+" func "+dd.Name.Name)
				}
			case *ast.GenDecl:
				missing = append(missing, checkGenDecl(fset, dd)...)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range missing {
		t.Errorf("undocumented exported identifier: %s", m)
	}
}

// checkGenDecl reports undocumented exported names in a const/var/type
// block. A doc comment on the block covers all its specs; otherwise each
// exported spec needs its own.
func checkGenDecl(fset *token.FileSet, d *ast.GenDecl) []string {
	if d.Doc != nil {
		return nil
	}
	var missing []string
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && s.Doc == nil && s.Comment == nil {
				missing = append(missing, posOf(fset, s.Pos())+" type "+s.Name.Name)
			}
		case *ast.ValueSpec:
			if s.Doc != nil || s.Comment != nil {
				continue
			}
			for _, name := range s.Names {
				if name.IsExported() {
					missing = append(missing, posOf(fset, s.Pos())+" value "+name.Name)
				}
			}
		}
	}
	return missing
}

// isExemptMethod exempts interface-compliance boilerplate whose meaning is
// given by the interface: String, Error.
func isExemptMethod(d *ast.FuncDecl) bool {
	if d.Recv == nil {
		return false
	}
	return d.Name.Name == "String" || d.Name.Name == "Error"
}

func posOf(fset *token.FileSet, p token.Pos) string {
	pos := fset.Position(p)
	return pos.Filename + ":" + itoa(pos.Line)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}
