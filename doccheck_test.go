package anondyn_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestEveryExportedIdentifierIsDocumented walks all library source files
// and asserts every exported declaration carries a doc comment — the
// deliverable-(e) contract ("doc comments on every public item"). Command
// and example mains are exempt (they export nothing by design), as are
// test files.
func TestEveryExportedIdentifierIsDocumented(t *testing.T) {
	fset := token.NewFileSet()
	var missing []string

	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "cmd" || name == "examples" || strings.HasPrefix(name, ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		for _, decl := range file.Decls {
			switch dd := decl.(type) {
			case *ast.FuncDecl:
				if dd.Name.IsExported() && dd.Doc == nil && !isExemptMethod(dd) {
					missing = append(missing, posOf(fset, dd.Pos())+" func "+dd.Name.Name)
				}
			case *ast.GenDecl:
				missing = append(missing, checkGenDecl(fset, dd)...)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range missing {
		t.Errorf("undocumented exported identifier: %s", m)
	}
}

// checkGenDecl reports undocumented exported names in a const/var/type
// block. A doc comment on the block covers all its specs; otherwise each
// exported spec needs its own.
func checkGenDecl(fset *token.FileSet, d *ast.GenDecl) []string {
	if d.Doc != nil {
		return nil
	}
	var missing []string
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && s.Doc == nil && s.Comment == nil {
				missing = append(missing, posOf(fset, s.Pos())+" type "+s.Name.Name)
			}
		case *ast.ValueSpec:
			if s.Doc != nil || s.Comment != nil {
				continue
			}
			for _, name := range s.Names {
				if name.IsExported() {
					missing = append(missing, posOf(fset, s.Pos())+" value "+name.Name)
				}
			}
		}
	}
	return missing
}

// TestEveryCliFlagIsDocumented parses the user-facing commands (cmd/cadn
// and cmd/cadnd) for flag registrations (fs.Int("name", ...) and friends)
// and asserts the README mentions every flag as `-name` — so CLI knobs
// cannot be added without surfacing them in the user-facing docs. The
// -faults/-deadline pair in particular carries a usage contract
// (out-of-model plans require a deadline) that only the README explains,
// and the cadnd coordinator flags carry the cluster-mode topology.
func TestEveryCliFlagIsDocumented(t *testing.T) {
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	text := string(readme)
	for _, cmd := range []struct {
		path     string
		minFlags int
	}{
		{filepath.Join("cmd", "cadn", "main.go"), 20},
		{filepath.Join("cmd", "cadnd", "main.go"), 12},
	} {
		flags := parseFlagNames(t, cmd.path)
		if len(flags) < cmd.minFlags {
			t.Fatalf("found only %d flags in %s — the parser is broken: %v", len(flags), cmd.path, flags)
		}
		// Both binaries must expose the protocol knob: cadn selects the
		// backend per run, cadnd sets the fleet default for submitted jobs.
		hasProtocol := false
		for _, name := range flags {
			if name == "protocol" {
				hasProtocol = true
			}
			if !strings.Contains(text, "-"+name) {
				t.Errorf("%s flag -%s is not mentioned in README.md", cmd.path, name)
			}
		}
		if !hasProtocol {
			t.Errorf("%s does not register a -protocol flag", cmd.path)
		}
	}
}

// parseFlagNames extracts the registered flag names from one main.go.
func parseFlagNames(t *testing.T, path string) []string {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, path, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	var flags []string
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) < 3 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Int", "Int64", "Bool", "String", "Float64", "Duration":
		default:
			return true
		}
		lit, ok := call.Args[0].(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			return true
		}
		name, err := strconv.Unquote(lit.Value)
		if err == nil && name != "" {
			flags = append(flags, name)
		}
		return true
	})
	return flags
}

// isExemptMethod exempts interface-compliance boilerplate whose meaning is
// given by the interface: String, Error.
func isExemptMethod(d *ast.FuncDecl) bool {
	if d.Recv == nil {
		return false
	}
	return d.Name.Name == "String" || d.Name.Name == "Error"
}

func posOf(fset *token.FileSet, p token.Pos) string {
	pos := fset.Position(p)
	return pos.Filename + ":" + itoa(pos.Line)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}
