package anondyn_test

import (
	"strings"
	"testing"

	"anondyn"
)

func TestPublicCount(t *testing.T) {
	res, err := anondyn.Count(anondyn.RandomConnected(6, 0.4, 1), anondyn.LeaderInputs(6))
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 6 {
		t.Fatalf("counted %d", res.N)
	}
	if res.Stats.MaxMessageBits > 64 {
		t.Fatalf("max message %d bits", res.Stats.MaxMessageBits)
	}
}

func TestPublicGraphConstruction(t *testing.T) {
	g := anondyn.NewGraph(3)
	g.MustAddLink(0, 1, 1)
	g.MustAddLink(1, 2, 1)
	res, err := anondyn.Count(anondyn.Static(g), anondyn.LeaderInputs(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 3 {
		t.Fatalf("counted %d", res.N)
	}
}

func TestPublicGraphsSequence(t *testing.T) {
	s, err := anondyn.Graphs(anondyn.Path(4), anondyn.Cycle(4), anondyn.Complete(4))
	if err != nil {
		t.Fatal(err)
	}
	res, err := anondyn.Count(s, anondyn.LeaderInputs(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 4 {
		t.Fatalf("counted %d", res.N)
	}
}

func TestPublicScheduleFunc(t *testing.T) {
	s := anondyn.ScheduleFunc(5, func(round int) *anondyn.Multigraph {
		if round%2 == 0 {
			return anondyn.Star(5, 0)
		}
		return anondyn.Cycle(5)
	})
	res, err := anondyn.Count(s, anondyn.LeaderInputs(5))
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 5 {
		t.Fatalf("counted %d", res.N)
	}
}

func TestPublicOracleAndSolver(t *testing.T) {
	s := anondyn.RandomConnected(5, 0.5, 2)
	run, err := anondyn.BuildHistoryTree(s, anondyn.LeaderInputs(5), 17)
	if err != nil {
		t.Fatal(err)
	}
	var got int
	for l := 0; l <= 17; l++ {
		res, err := anondyn.CountTree(run.Tree, l)
		if err != nil {
			t.Fatal(err)
		}
		if res.Known {
			got = res.N
			break
		}
	}
	if got != 5 {
		t.Fatalf("solver found n=%d", got)
	}
	if out := anondyn.RenderTree(run.Tree); !strings.Contains(out, "L0:") {
		t.Error("RenderTree output malformed")
	}
	if out := anondyn.RenderTreeDOT(run.Tree, "t"); !strings.Contains(out, "digraph") {
		t.Error("RenderTreeDOT output malformed")
	}
}

func TestPublicBaselines(t *testing.T) {
	s := anondyn.RandomConnected(5, 0.4, 3)
	nc, err := anondyn.RunNonCongested(s, anondyn.LeaderInputs(5), 0)
	if err != nil {
		t.Fatal(err)
	}
	if nc.N != 5 {
		t.Fatalf("non-congested counted %d", nc.N)
	}
	tf, err := anondyn.RunTokenForward(s, 5, 9)
	if err != nil {
		t.Fatal(err)
	}
	if tf.Estimate != 5 {
		t.Fatalf("token forwarding estimated %d", tf.Estimate)
	}
}

func TestPublicLeaderlessRun(t *testing.T) {
	inputs := make([]anondyn.Input, 6)
	for i := range inputs {
		inputs[i].Value = int64(i % 3)
	}
	res, err := anondyn.Run(anondyn.RandomConnected(6, 0.4, 4), inputs, anondyn.Config{
		Mode:      anondyn.ModeLeaderless,
		DiamBound: 6,
		MaxLevels: 24,
	}, anondyn.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Frequencies == nil || res.Frequencies.MinSize != 3 {
		t.Fatalf("frequencies = %+v", res.Frequencies)
	}
}

func TestPublicCompute(t *testing.T) {
	inputs := []anondyn.Input{
		{Leader: true, Value: 10},
		{Value: 3}, {Value: 5}, {Value: 3}, {Value: 7},
	}
	n := len(inputs)
	s := anondyn.RandomConnected(n, 0.4, 8)

	// Sum of all inputs: 10+3+5+3+7 = 28.
	res, sum, err := anondyn.Compute(s, inputs, func(ms map[anondyn.Input]int) any {
		total := int64(0)
		for in, c := range ms {
			total += in.Value * int64(c)
		}
		return total
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.N != n {
		t.Fatalf("n=%d", res.N)
	}
	if sum != int64(28) {
		t.Fatalf("sum=%v, want 28", sum)
	}

	// Maximum input.
	_, max, err := anondyn.Compute(s, inputs, func(ms map[anondyn.Input]int) any {
		best := int64(-1 << 62)
		for in := range ms {
			if in.Value > best {
				best = in.Value
			}
		}
		return best
	})
	if err != nil {
		t.Fatal(err)
	}
	if max != int64(10) {
		t.Fatalf("max=%v, want 10", max)
	}
}

func TestPublicRunAdaptive(t *testing.T) {
	n := 5
	res, err := anondyn.RunAdaptive(anondyn.Isolator(n, 0), anondyn.LeaderInputs(n),
		anondyn.Config{Mode: anondyn.ModeLeader, MaxLevels: 3*n + 8}, anondyn.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.N != n {
		t.Fatalf("counted %d", res.N)
	}
}

func TestPublicFacadeCoverage(t *testing.T) {
	// Every façade constructor must hand back a working value.
	n := 4
	for name, s := range map[string]anondyn.Schedule{
		"rotating-star": anondyn.RotatingStar(n),
		"shifting-path": anondyn.ShiftingPath(n),
		"bottleneck":    anondyn.Bottleneck(n),
	} {
		if s.N() != n || !s.Graph(1).Connected() {
			t.Errorf("%s: bad schedule", name)
		}
	}
	uc, err := anondyn.UnionConnected(anondyn.RotatingStar(n), 2)
	if err != nil {
		t.Fatal(err)
	}
	if uc.N() != n {
		t.Fatal("union-connected schedule broken")
	}

	rec := anondyn.NewRecorder()
	res, err := anondyn.Run(anondyn.RotatingStar(n), anondyn.LeaderInputs(n),
		anondyn.Config{Mode: anondyn.ModeLeader, MaxLevels: 3*n + 6, Recorder: rec},
		anondyn.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.N != n {
		t.Fatalf("counted %d", res.N)
	}

	// Leaderless tree solver façade.
	inputs := make([]anondyn.Input, n)
	for i := range inputs {
		inputs[i].Value = int64(i % 2)
	}
	run, err := anondyn.BuildHistoryTree(anondyn.RotatingStar(n), inputs, 3*n)
	if err != nil {
		t.Fatal(err)
	}
	for l := 0; l <= 3*n; l++ {
		f, err := anondyn.TreeFrequencies(run.Tree, l)
		if err != nil {
			t.Fatal(err)
		}
		if f.Known {
			if f.MinSize != 2 {
				t.Fatalf("MinSize=%d", f.MinSize)
			}
			return
		}
	}
	t.Fatal("frequencies never resolved")
}

func TestPublicComputeErrorPropagates(t *testing.T) {
	// A schedule/input mismatch must surface as an error, not a panic.
	_, _, err := anondyn.Compute(anondyn.RotatingStar(3), anondyn.LeaderInputs(4),
		func(map[anondyn.Input]int) any { return nil })
	if err == nil {
		t.Fatal("expected error for input count mismatch")
	}
}
