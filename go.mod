module anondyn

go 1.23
