package main

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleExperimentBothFormats(t *testing.T) {
	var out strings.Builder
	if err := run(&out, "E1", "text", ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "E1") {
		t.Fatal("text output missing experiment header")
	}
	if err := run(&out, "E1", "markdown", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownFormat(t *testing.T) {
	if err := run(&strings.Builder{}, "E1", "csv", ""); err == nil {
		t.Fatal("expected error for unknown format")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run(&strings.Builder{}, "E99", "text", ""); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}

// TestRunJSONFile checks the -json path: the text table still goes to
// stdout while machine-readable NDJSON rows land in the file.
func TestRunJSONFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_E1.json")
	var out strings.Builder
	if err := run(&out, "E1", "text", path); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "E1") {
		t.Fatal("text table suppressed although -json targeted a file")
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	scanner := bufio.NewScanner(f)
	lines := 0
	for scanner.Scan() {
		lines++
		var row struct {
			Experiment string            `json:"experiment"`
			Title      string            `json:"title"`
			Columns    map[string]string `json:"columns"`
		}
		if err := json.Unmarshal(scanner.Bytes(), &row); err != nil {
			t.Fatalf("line %d is not JSON: %v", lines, err)
		}
		if row.Experiment != "E1" || len(row.Columns) == 0 {
			t.Fatalf("line %d malformed: %s", lines, scanner.Text())
		}
	}
	if lines == 0 {
		t.Fatal("no NDJSON rows written")
	}
}

// TestRunJSONStdout checks -json '-': NDJSON replaces the text output.
func TestRunJSONStdout(t *testing.T) {
	var out strings.Builder
	if err := run(&out, "E1", "text", "-"); err != nil {
		t.Fatal(err)
	}
	for i, line := range strings.Split(strings.TrimSpace(out.String()), "\n") {
		if !json.Valid([]byte(line)) {
			t.Fatalf("stdout line %d is not JSON: %s", i+1, line)
		}
	}
}
