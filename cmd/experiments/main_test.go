package main

import "testing"

func TestRunSingleExperimentBothFormats(t *testing.T) {
	if err := run("E1", "text"); err != nil {
		t.Fatal(err)
	}
	if err := run("E1", "markdown"); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownFormat(t *testing.T) {
	if err := run("E1", "csv"); err == nil {
		t.Fatal("expected error for unknown format")
	}
}
