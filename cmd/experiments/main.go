// Command experiments regenerates every reproduction experiment (E1–E11 in
// DESIGN.md) and prints the tables recorded in EXPERIMENTS.md.
//
// Usage:
//
//	go run ./cmd/experiments            # run everything
//	go run ./cmd/experiments -only E4   # run one experiment
package main

import (
	"flag"
	"fmt"
	"os"

	"anondyn/internal/bench"
)

func main() {
	only := flag.String("only", "", "run only the experiment with this ID (e.g. E4)")
	format := flag.String("format", "text", "output format: text or markdown")
	flag.Parse()
	if err := run(*only, *format); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(only, format string) error {
	render := bench.Render
	switch format {
	case "text":
	case "markdown":
		render = bench.RenderMarkdown
	default:
		return fmt.Errorf("unknown format %q", format)
	}
	for _, e := range bench.All() {
		if only != "" && e.ID != only {
			continue
		}
		table, err := e.Run()
		if err != nil {
			return fmt.Errorf("%s (%s): %w", e.ID, e.Name, err)
		}
		fmt.Println(render(table))
	}
	return nil
}
