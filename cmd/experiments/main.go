// Command experiments regenerates every reproduction experiment (E1–E14 in
// DESIGN.md) and prints the tables recorded in EXPERIMENTS.md.
//
// Usage:
//
//	go run ./cmd/experiments                     # run everything
//	go run ./cmd/experiments -only E4            # run one experiment
//	go run ./cmd/experiments -json BENCH_E4.json # also record NDJSON rows
//	go run ./cmd/experiments -only E4 -json -    # NDJSON to stdout only
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"anondyn/internal/bench"
)

func main() {
	only := flag.String("only", "", "run only the experiment with this ID (e.g. E4)")
	format := flag.String("format", "text", "output format: text or markdown")
	jsonPath := flag.String("json", "", "also write each table's rows as NDJSON to this file ('-' replaces the text output on stdout)")
	flag.Parse()
	if err := run(os.Stdout, *only, *format, *jsonPath); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(stdout io.Writer, only, format, jsonPath string) error {
	render := bench.Render
	switch format {
	case "text":
	case "markdown":
		render = bench.RenderMarkdown
	default:
		return fmt.Errorf("unknown format %q", format)
	}

	// -json targets a file alongside the human-readable tables; "-" means
	// NDJSON is the stdout output itself.
	var jsonOut io.Writer
	switch jsonPath {
	case "":
	case "-":
		jsonOut = stdout
		render = nil
	default:
		f, err := os.Create(jsonPath)
		if err != nil {
			return fmt.Errorf("create -json file: %w", err)
		}
		defer func() { _ = f.Close() }()
		jsonOut = f
	}

	ran := 0
	for _, e := range bench.All() {
		if only != "" && e.ID != only {
			continue
		}
		ran++
		table, err := e.Run()
		if err != nil {
			return fmt.Errorf("%s (%s): %w", e.ID, e.Name, err)
		}
		if render != nil {
			fmt.Fprintln(stdout, render(table))
		}
		if jsonOut != nil {
			if _, err := io.WriteString(jsonOut, bench.RenderJSON(table)); err != nil {
				return fmt.Errorf("write -json rows: %w", err)
			}
		}
	}
	if only != "" && ran == 0 {
		return fmt.Errorf("unknown experiment %q", only)
	}
	return nil
}
