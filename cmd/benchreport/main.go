// Command benchreport runs the benchmark-regression suite and records the
// measurements as a BENCH_*.json report, or compares two such reports.
//
// Record the current tree's numbers (the `make bench` target):
//
//	benchreport -out BENCH_PR2.json
//
// Fail if the new report regressed by more than 20% ns/op on any shared
// benchmark (the `make benchcmp` target); noisy entries can carry their own
// tolerance, and -procs pins GOMAXPROCS for the run (each entry records the
// GOMAXPROCS/NumCPU it measured under):
//
//	benchreport -compare -old BENCH_PR1.json -new BENCH_PR2.json -tol E2Count/n=192=0.8
//
// Capture CPU and allocation profiles of one suite entry (the
// `make profile` target); inspect with `go tool pprof`:
//
//	benchreport -bench E2Count -cpuprofile profiles/cpu.pprof -memprofile profiles/mem.pprof
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"anondyn/internal/bench"
)

func main() {
	tolOverrides := make(map[string]float64)
	var (
		out        = flag.String("out", "", "write the suite's measurements to this file (JSON)")
		compare    = flag.Bool("compare", false, "compare two reports instead of running the suite")
		oldPath    = flag.String("old", "", "baseline report for -compare")
		newPath    = flag.String("new", "", "candidate report for -compare")
		tolerance  = flag.Float64("tolerance", 0.20, "allowed ns/op growth before -compare fails (0.20 = +20%)")
		benchMatch = flag.String("bench", "", "run only suite entries whose name contains this substring")
		cpuProfile = flag.String("cpuprofile", "", "write a runtime/pprof CPU profile of the run to this file")
		memProfile = flag.String("memprofile", "", "write a runtime/pprof allocation profile of the run to this file")
		workers    = flag.Int("workers", 0, "sweep worker pool size (0 = GOMAXPROCS; 1 = sequential, for noise-sensitive runs)")
		procs      = flag.Int("procs", 0, "set GOMAXPROCS for the suite run (0 = leave the runtime default); recorded in each entry")
	)
	flag.Func("tol", "per-benchmark tolerance override NAME=FRAC for -compare (repeatable), e.g. -tol E2Count/n=192=0.8",
		func(s string) error {
			// The benchmark name itself contains '=' (E2Count/n=192), so the
			// fraction is everything after the LAST '='.
			i := strings.LastIndex(s, "=")
			if i <= 0 || i == len(s)-1 {
				return fmt.Errorf("want NAME=FRAC, got %q", s)
			}
			frac, err := strconv.ParseFloat(s[i+1:], 64)
			if err != nil || frac < 0 {
				return fmt.Errorf("bad tolerance fraction in %q", s)
			}
			tolOverrides[s[:i]] = frac
			return nil
		})
	flag.Parse()

	if *compare {
		if err := runCompare(*oldPath, *newPath, *tolerance, tolOverrides); err != nil {
			fmt.Fprintln(os.Stderr, "benchreport:", err)
			os.Exit(1)
		}
		return
	}
	if *procs > 0 {
		runtime.GOMAXPROCS(*procs)
	}
	opts := bench.SuiteOptions{
		Filter:     *benchMatch,
		CPUProfile: *cpuProfile,
		MemProfile: *memProfile,
		Workers:    *workers,
	}
	if err := runSuite(opts, *out); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
}

func runSuite(opts bench.SuiteOptions, out string) error {
	opts.Progress = func(name string) {
		fmt.Printf("running %s ...\n", name)
	}
	report, err := bench.RunPerfSuiteOpts(opts)
	if err != nil {
		return err
	}
	if err := bench.WritePerf(os.Stdout, report); err != nil {
		return err
	}
	if out != "" {
		if err := bench.WritePerfFile(out, report); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d benchmarks)\n", out, len(report))
	}
	if opts.CPUProfile != "" {
		fmt.Printf("wrote CPU profile %s (inspect: go tool pprof -top %s)\n", opts.CPUProfile, opts.CPUProfile)
	}
	if opts.MemProfile != "" {
		fmt.Printf("wrote allocation profile %s (inspect: go tool pprof -sample_index=alloc_space -top %s)\n",
			opts.MemProfile, opts.MemProfile)
	}
	return nil
}

func runCompare(oldPath, newPath string, tolerance float64, overrides map[string]float64) error {
	if oldPath == "" || newPath == "" {
		return fmt.Errorf("-compare needs both -old and -new")
	}
	old, err := bench.ReadPerfFile(oldPath)
	if err != nil {
		return err
	}
	cur, err := bench.ReadPerfFile(newPath)
	if err != nil {
		return err
	}
	for name := range overrides {
		if _, ok := cur[name]; !ok {
			fmt.Fprintf(os.Stderr, "benchreport: note: -tol override %q matches no benchmark in %s\n", name, newPath)
		}
	}
	deltas := bench.ComparePerfTol(old, cur, tolerance, overrides)
	if len(deltas) == 0 {
		return fmt.Errorf("reports %s and %s share no benchmarks", oldPath, newPath)
	}
	regressed := 0
	for _, d := range deltas {
		status := "ok"
		if d.Regressed {
			status = "REGRESSED"
			regressed++
		}
		if t, ok := overrides[d.Name]; ok {
			status += fmt.Sprintf(" (tol +%.0f%%)", t*100)
		}
		fmt.Printf("%-40s %12.0f -> %12.0f ns/op  (%5.2fx)  %s\n",
			d.Name, d.Old.NsPerOp, d.New.NsPerOp, d.Ratio, status)
	}
	if regressed > 0 {
		return fmt.Errorf("%d of %d shared benchmarks regressed beyond tolerance",
			regressed, len(deltas))
	}
	fmt.Printf("all %d shared benchmarks within tolerance (default +%.0f%%)\n", len(deltas), tolerance*100)
	return nil
}
