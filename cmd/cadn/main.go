// Command cadn runs the congested anonymous dynamic network counting
// algorithm over a configurable adversary and prints the result and run
// statistics.
//
// Usage examples:
//
//	go run ./cmd/cadn -n 8                         # random dynamic graph
//	go run ./cmd/cadn -n 8 -topology path          # static path (worst diameter)
//	go run ./cmd/cadn -n 8 -topology shifting-path # dynamic path adversary
//	go run ./cmd/cadn -n 6 -T 4                    # 4-union-connected network
//	go run ./cmd/cadn -n 24 -protocol linear       # full-information backend (Θ(n) rounds)
//	go run ./cmd/cadn -n 6 -leaderless -inputs 0,0,1,1,1,2
//	go run ./cmd/cadn -n 8 -halt                   # simultaneous termination
//	go run ./cmd/cadn -n 6 -topology complete -faults spike:8:0   # reset-forcing fault plan
//	go run ./cmd/cadn -n 6 -faults crash:0:3:0 -deadline 500      # out-of-model, watchdog-guarded
//
// Flag combinations are validated up front; invalid usage exits with
// status 2, runtime failures with status 1. The same parameter surface is
// served over HTTP by cmd/cadnd.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"anondyn"
	"anondyn/internal/engine"
	"anondyn/internal/service"
	"anondyn/internal/trace"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

// realMain parses and validates the flags, then runs the simulation. It
// returns the process exit code: 0 on success, 1 on a runtime failure,
// 2 on invalid usage (bad flags or flag combinations).
func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cadn", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		n          = fs.Int("n", 8, "number of processes")
		protocol   = fs.String("protocol", "congested", "counting backend: congested (O(log n)-bit messages) or linear (Θ(n) rounds, full-information messages)")
		topology   = fs.String("topology", "random", "adversary: random, path, cycle, complete, star, rotating-star, shifting-path, bottleneck, isolator (adaptive)")
		density    = fs.Float64("p", 0.3, "extra-edge probability for the random adversary")
		seed       = fs.Int64("seed", 1, "adversary RNG seed")
		blockT     = fs.Int("T", 1, "dynamic disconnectivity (T-union-connected extension)")
		leaderless = fs.Bool("leaderless", false, "run the leaderless frequency algorithm (requires -inputs)")
		inputsFlag = fs.String("inputs", "", "comma-separated input values, one per process (enables Generalized Counting)")
		halt       = fs.Bool("halt", false, "simultaneous termination: all processes output n at the same round")
		bitLimit   = fs.Int("bitlimit", 0, "abort if any message exceeds this many bits (0 = off)")
		showTree   = fs.Bool("tree", false, "print the final virtual history tree")
		fine       = fs.Bool("fine", false, "fine-grained resets (Section 5 'Optimized running time')")
		batch      = fs.Int("batch", 0, "batch up to this many observations per Edge message (Section 6 tradeoff)")
		keepAll    = fs.Bool("keepall", false, "ablation: disable the Section 3.4 spanning-tree restriction")
		eager      = fs.Bool("eager", false, "skip the confirmation window (pseudocode-literal termination)")
		traceFlag  = fs.Bool("trace", false, "print a per-round protocol trace and summary")
		scheduler  = fs.String("scheduler", "sequential", "engine scheduler: sequential (direct execution), parallel (sharded workers), or concurrent")
		compact    = fs.Bool("compact", false, "release consumed VHT levels (O(active view) memory; incompatible with faulty resets that rewind far)")
		private    = fs.Bool("privatevht", false, "disable cross-process structural sharing (each process keeps its own VHT; ablation knob)")
		arith      = fs.String("arith", "modular", "counting-solver arithmetic: modular (residue/CRT) or big (big.Int witness)")
		faultsFlag = fs.String("faults", "", "fault plan layered over the adversary, e.g. spike:8:0 or cut:3:20,storm:1:0:2 (see internal/faults)")
		faultSeed  = fs.Int64("faultseed", 0, "fault-plan RNG seed (only the drop fault consumes it)")
		deadline   = fs.Int("deadline", 0, "watchdog deadline in milliseconds (0 = off; required for out-of-model fault plans)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	spec, err := buildSpec(*n, *protocol, *topology, *density, *seed, *blockT,
		*leaderless, *inputsFlag, *halt, *bitLimit, *fine, *batch, *keepAll, *eager, *scheduler,
		*compact, *private, *arith, *faultsFlag, *faultSeed, *deadline)
	if err != nil {
		fmt.Fprintln(stderr, "cadn: invalid usage:", err)
		return 2
	}
	if err := run(spec, *showTree, *traceFlag, stdout); err != nil {
		fmt.Fprintln(stderr, "cadn:", err)
		return 1
	}
	return 0
}

// buildSpec assembles and validates the job spec described by the flags.
// Any error it returns is a usage error (exit status 2).
func buildSpec(n int, protocol, topology string, density float64, seed int64, blockT int,
	leaderless bool, inputsFlag string, halt bool, bitLimit int,
	fine bool, batch int, keepAll, eager bool, scheduler string,
	compact, private bool, arith string, faultsSpec string, faultSeed int64, deadlineMS int) (service.JobSpec, error) {
	spec := service.JobSpec{
		N:          n,
		Protocol:   protocol,
		Topology:   topology,
		Density:    density,
		Seed:       seed,
		BlockT:     blockT,
		Leaderless: leaderless,
		Halt:       halt,
		BitLimit:   bitLimit,
		Fine:       fine,
		Batch:      batch,
		KeepAll:    keepAll,
		Eager:      eager,
		Scheduler:  scheduler,
		CompactVHT: compact,
		PrivateVHT: private,
		Arithmetic: arith,
		Faults:     faultsSpec,
		FaultSeed:  faultSeed,
		DeadlineMS: deadlineMS,
	}
	if inputsFlag != "" {
		parts := strings.Split(inputsFlag, ",")
		spec.Inputs = make([]int64, len(parts))
		for i, p := range parts {
			v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
			if err != nil {
				return spec, fmt.Errorf("-inputs value %d: %v", i, err)
			}
			spec.Inputs[i] = v
		}
	}
	spec.Normalize()
	if err := spec.Validate(); err != nil {
		return spec, err
	}
	return spec, nil
}

// run executes the validated spec and prints the result.
func run(spec service.JobSpec, showTree, traceOn bool, w io.Writer) error {
	var logger *trace.Logger
	var hook func(round int, sent []engine.Message)
	if traceOn {
		logger = trace.New(w)
		hook = logger.Hook()
	}
	res, err := spec.Run(context.Background(), hook)
	if err != nil {
		return err
	}
	if logger != nil {
		fmt.Fprint(w, logger.Summary())
	}

	if spec.Leaderless {
		fmt.Fprintf(w, "frequencies (shares of minimal size %d):\n", res.Frequencies.MinSize)
		for in, share := range res.Frequencies.Shares {
			fmt.Fprintf(w, "  input %s: %d/%d\n", in, share, res.Frequencies.MinSize)
		}
	} else {
		fmt.Fprintf(w, "n = %d\n", res.N)
		if len(res.Multiset) > 0 {
			fmt.Fprintln(w, "input multiset:")
			for in, c := range res.Multiset {
				fmt.Fprintf(w, "  %s: %d\n", in, c)
			}
		}
	}
	fmt.Fprintf(w, "rounds=%d levels=%d resets=%d finalDiamEstimate=%d\n",
		res.Stats.Rounds, res.Stats.Levels, res.Stats.Resets, res.Stats.FinalDiamEstimate)
	fmt.Fprintf(w, "messages=%d maxMessageBits=%d totalBits=%d\n",
		res.Stats.TotalMessages, res.Stats.MaxMessageBits, res.Stats.TotalBits)
	if res.Stats.SolverPrimes > 0 {
		fmt.Fprintf(w, "solver: calls=%d primes=%d crtRecons=%d evictions=%d witnessFalls=%d\n",
			res.Stats.SolverCalls, res.Stats.SolverPrimes, res.Stats.SolverCRTRecons,
			res.Stats.SolverEvictions, res.Stats.SolverWitnessFalls)
	}
	if res.Stats.CompactedLevels > 0 {
		fmt.Fprintf(w, "compaction: levels=%d nodesFreed=%d resident=%d peakResident=%d\n",
			res.Stats.CompactedLevels, res.Stats.CompactedNodes,
			res.Stats.ResidentNodes, res.Stats.PeakResidentNodes)
	}
	if res.Stats.SharedApplies > 0 {
		fmt.Fprintf(w, "sharing: applies=%d hits=%d forks=%d\n",
			res.Stats.SharedApplies, res.Stats.SharedHits, res.Stats.SharedForks)
	}
	if showTree && res.VHT != nil {
		fmt.Fprintln(w, "virtual history tree:")
		fmt.Fprint(w, anondyn.RenderTree(res.VHT))
	}
	return nil
}
