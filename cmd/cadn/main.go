// Command cadn runs the congested anonymous dynamic network counting
// algorithm over a configurable adversary and prints the result and run
// statistics.
//
// Usage examples:
//
//	go run ./cmd/cadn -n 8                         # random dynamic graph
//	go run ./cmd/cadn -n 8 -topology path          # static path (worst diameter)
//	go run ./cmd/cadn -n 8 -topology shifting-path # dynamic path adversary
//	go run ./cmd/cadn -n 6 -T 4                    # 4-union-connected network
//	go run ./cmd/cadn -n 6 -leaderless -inputs 0,0,1,1,1,2
//	go run ./cmd/cadn -n 8 -halt                   # simultaneous termination
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"anondyn"
	"anondyn/internal/trace"
)

func main() {
	var (
		n          = flag.Int("n", 8, "number of processes")
		topology   = flag.String("topology", "random", "adversary: random, path, cycle, complete, star, rotating-star, shifting-path, bottleneck, isolator (adaptive)")
		density    = flag.Float64("p", 0.3, "extra-edge probability for the random adversary")
		seed       = flag.Int64("seed", 1, "adversary RNG seed")
		blockT     = flag.Int("T", 1, "dynamic disconnectivity (T-union-connected extension)")
		leaderless = flag.Bool("leaderless", false, "run the leaderless frequency algorithm (requires -inputs)")
		inputsFlag = flag.String("inputs", "", "comma-separated input values, one per process (enables Generalized Counting)")
		halt       = flag.Bool("halt", false, "simultaneous termination: all processes output n at the same round")
		bitLimit   = flag.Int("bitlimit", 0, "abort if any message exceeds this many bits (0 = off)")
		showTree   = flag.Bool("tree", false, "print the final virtual history tree")
		fine       = flag.Bool("fine", false, "fine-grained resets (Section 5 'Optimized running time')")
		batch      = flag.Int("batch", 0, "batch up to this many observations per Edge message (Section 6 tradeoff)")
		keepAll    = flag.Bool("keepall", false, "ablation: disable the Section 3.4 spanning-tree restriction")
		eager      = flag.Bool("eager", false, "skip the confirmation window (pseudocode-literal termination)")
		traceFlag  = flag.Bool("trace", false, "print a per-round protocol trace and summary")
	)
	flag.Parse()
	opts := protoOptions{
		fine:    *fine,
		batch:   *batch,
		keepAll: *keepAll,
		eager:   *eager,
		trace:   *traceFlag,
	}
	if err := run(*n, *topology, *density, *seed, *blockT, *leaderless, *inputsFlag, *halt, *bitLimit, *showTree, opts); err != nil {
		fmt.Fprintln(os.Stderr, "cadn:", err)
		os.Exit(1)
	}
}

// protoOptions bundles the protocol variant flags.
type protoOptions struct {
	fine    bool
	batch   int
	keepAll bool
	eager   bool
	trace   bool
}

func run(n int, topology string, density float64, seed int64, blockT int,
	leaderless bool, inputsFlag string, halt bool, bitLimit int, showTree bool,
	opts protoOptions) error {
	var sched anondyn.Schedule
	if topology != "isolator" {
		var err error
		sched, err = makeSchedule(n, topology, density, seed)
		if err != nil {
			return err
		}
	}
	if blockT > 1 && sched != nil {
		var err error
		sched, err = anondyn.UnionConnected(sched, blockT)
		if err != nil {
			return err
		}
	}

	inputs, err := makeInputs(n, inputsFlag, !leaderless)
	if err != nil {
		return err
	}

	cfg := anondyn.Config{
		Mode:             anondyn.ModeLeader,
		BuildInputLevel:  inputsFlag != "",
		SimultaneousHalt: halt,
		BlockT:           blockT,
		MaxLevels:        3*n + 8,
		FineGrainedReset: opts.fine,
		BatchSize:        opts.batch,
		KeepAllLinks:     opts.keepAll,
		EagerTermination: opts.eager,
	}
	if leaderless {
		cfg.Mode = anondyn.ModeLeaderless
		cfg.DiamBound = n * blockT
		cfg.SimultaneousHalt = false
	}

	runOpts := anondyn.RunOptions{BitLimit: bitLimit}
	var logger *trace.Logger
	if opts.trace {
		logger = trace.New(os.Stdout)
		runOpts.Trace = logger.Hook()
	}
	var res *anondyn.RunResult
	if topology == "isolator" {
		if leaderless {
			return fmt.Errorf("the isolator adversary targets the leader; leaderless mode unsupported")
		}
		res, err = anondyn.RunAdaptive(anondyn.Isolator(n, 0), inputs, cfg, runOpts)
	} else {
		res, err = anondyn.Run(sched, inputs, cfg, runOpts)
	}
	if err != nil {
		return err
	}
	if logger != nil {
		fmt.Print(logger.Summary())
	}

	if leaderless {
		fmt.Printf("frequencies (shares of minimal size %d):\n", res.Frequencies.MinSize)
		for in, share := range res.Frequencies.Shares {
			fmt.Printf("  input %s: %d/%d\n", in, share, res.Frequencies.MinSize)
		}
	} else {
		fmt.Printf("n = %d\n", res.N)
		if len(res.Multiset) > 0 {
			fmt.Println("input multiset:")
			for in, c := range res.Multiset {
				fmt.Printf("  %s: %d\n", in, c)
			}
		}
	}
	fmt.Printf("rounds=%d levels=%d resets=%d finalDiamEstimate=%d\n",
		res.Stats.Rounds, res.Stats.Levels, res.Stats.Resets, res.Stats.FinalDiamEstimate)
	fmt.Printf("messages=%d maxMessageBits=%d totalBits=%d\n",
		res.Stats.TotalMessages, res.Stats.MaxMessageBits, res.Stats.TotalBits)
	if showTree && res.VHT != nil {
		fmt.Println("virtual history tree:")
		fmt.Print(anondyn.RenderTree(res.VHT))
	}
	return nil
}

func makeSchedule(n int, topology string, density float64, seed int64) (anondyn.Schedule, error) {
	switch topology {
	case "random":
		return anondyn.RandomConnected(n, density, seed), nil
	case "path":
		return anondyn.Static(anondyn.Path(n)), nil
	case "cycle":
		return anondyn.Static(anondyn.Cycle(n)), nil
	case "complete":
		return anondyn.Static(anondyn.Complete(n)), nil
	case "star":
		return anondyn.Static(anondyn.Star(n, 0)), nil
	case "rotating-star":
		return anondyn.RotatingStar(n), nil
	case "shifting-path":
		return anondyn.ShiftingPath(n), nil
	case "bottleneck":
		return anondyn.Bottleneck(n), nil
	default:
		return nil, fmt.Errorf("unknown topology %q", topology)
	}
}

func makeInputs(n int, inputsFlag string, withLeader bool) ([]anondyn.Input, error) {
	inputs := make([]anondyn.Input, n)
	if withLeader && n > 0 {
		inputs[0].Leader = true
	}
	if inputsFlag == "" {
		return inputs, nil
	}
	parts := strings.Split(inputsFlag, ",")
	if len(parts) != n {
		return nil, fmt.Errorf("-inputs has %d values for %d processes", len(parts), n)
	}
	for i, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("-inputs value %d: %v", i, err)
		}
		inputs[i].Value = v
	}
	return inputs, nil
}
