package main

import "testing"

func TestRunLeaderTopologies(t *testing.T) {
	for _, topo := range []string{"random", "path", "cycle", "complete", "star",
		"rotating-star", "shifting-path", "bottleneck", "isolator"} {
		topo := topo
		t.Run(topo, func(t *testing.T) {
			err := run(5, topo, 0.3, 1 /* seed */, 1 /* T */, false /* leaderless */, "",
				false /* halt */, 0 /* bitLimit */, true /* tree */, protoOptions{})
			if err != nil {
				t.Fatalf("run(%s): %v", topo, err)
			}
		})
	}
}

func TestRunVariants(t *testing.T) {
	tests := []struct {
		name string
		do   func() error
	}{
		{name: "leaderless", do: func() error {
			return run(4, "random", 0.4, 2, 1, true, "0,0,1,1", false, 0, false, protoOptions{})
		}},
		{name: "generalized-halt", do: func() error {
			return run(4, "random", 0.4, 2, 1, false, "5,6,6,7", true, 0, false, protoOptions{})
		}},
		{name: "union-connected", do: func() error {
			return run(4, "random", 0.5, 3, 2, false, "", false, 0, false, protoOptions{})
		}},
		{name: "fine+batch+trace", do: func() error {
			return run(5, "shifting-path", 0, 1, 1, false, "", false, 0, false,
				protoOptions{fine: true, batch: 3, trace: true})
		}},
		{name: "keepall+eager", do: func() error {
			return run(4, "random", 0.5, 4, 1, false, "", false, 0, false,
				protoOptions{keepAll: true, eager: true})
		}},
		{name: "bitlimit-generous", do: func() error {
			return run(4, "random", 0.4, 5, 1, false, "", false, 128, false, protoOptions{})
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.do(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestRunErrors(t *testing.T) {
	tests := []struct {
		name string
		do   func() error
	}{
		{name: "unknown-topology", do: func() error {
			return run(4, "nonsense", 0.3, 1, 1, false, "", false, 0, false, protoOptions{})
		}},
		{name: "inputs-count-mismatch", do: func() error {
			return run(4, "random", 0.3, 1, 1, false, "1,2", false, 0, false, protoOptions{})
		}},
		{name: "inputs-not-numeric", do: func() error {
			return run(2, "random", 0.3, 1, 1, false, "a,b", false, 0, false, protoOptions{})
		}},
		{name: "isolator-leaderless", do: func() error {
			return run(4, "isolator", 0.3, 1, 1, true, "0,0,1,1", false, 0, false, protoOptions{})
		}},
		{name: "bitlimit-too-small", do: func() error {
			return run(4, "random", 0.3, 1, 1, false, "", false, 8, false, protoOptions{})
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.do(); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}
