package main

import (
	"io"
	"strings"
	"testing"

	"anondyn/internal/service"
)

func specFor(t *testing.T, n int, topo string, opts func(*service.JobSpec)) service.JobSpec {
	t.Helper()
	spec := service.JobSpec{N: n, Topology: topo, Density: 0.3, Seed: 1}
	if opts != nil {
		opts(&spec)
	}
	spec.Normalize()
	if err := spec.Validate(); err != nil {
		t.Fatalf("spec should be valid: %v", err)
	}
	return spec
}

func TestRunLeaderTopologies(t *testing.T) {
	for _, topo := range []string{"random", "path", "cycle", "complete", "star",
		"rotating-star", "shifting-path", "bottleneck", "isolator"} {
		topo := topo
		t.Run(topo, func(t *testing.T) {
			spec := specFor(t, 5, topo, nil)
			if err := run(spec, true /* tree */, false, io.Discard); err != nil {
				t.Fatalf("run(%s): %v", topo, err)
			}
		})
	}
}

func TestRunVariants(t *testing.T) {
	tests := []struct {
		name string
		spec func(*testing.T) service.JobSpec
	}{
		{name: "leaderless", spec: func(t *testing.T) service.JobSpec {
			return specFor(t, 4, "random", func(s *service.JobSpec) {
				s.Leaderless = true
				s.Inputs = []int64{0, 0, 1, 1}
				s.Density = 0.4
				s.Seed = 2
			})
		}},
		{name: "generalized-halt", spec: func(t *testing.T) service.JobSpec {
			return specFor(t, 4, "random", func(s *service.JobSpec) {
				s.Inputs = []int64{5, 6, 6, 7}
				s.Halt = true
				s.Density = 0.4
				s.Seed = 2
			})
		}},
		{name: "union-connected", spec: func(t *testing.T) service.JobSpec {
			return specFor(t, 4, "random", func(s *service.JobSpec) {
				s.BlockT = 2
				s.Density = 0.5
				s.Seed = 3
			})
		}},
		{name: "keepall-eager", spec: func(t *testing.T) service.JobSpec {
			return specFor(t, 4, "random", func(s *service.JobSpec) {
				s.KeepAll = true
				s.Eager = true
				s.Density = 0.5
				s.Seed = 4
			})
		}},
		{name: "bitlimit-generous", spec: func(t *testing.T) service.JobSpec {
			return specFor(t, 4, "random", func(s *service.JobSpec) {
				s.BitLimit = 128
				s.Density = 0.4
				s.Seed = 5
			})
		}},
		{name: "faulted-in-model", spec: func(t *testing.T) service.JobSpec {
			return specFor(t, 5, "random", func(s *service.JobSpec) {
				s.Faults = "cut:3:20,storm:1:0:2"
				s.Density = 0.4
				s.Seed = 6
			})
		}},
		{name: "faulted-isolator", spec: func(t *testing.T) service.JobSpec {
			return specFor(t, 5, "isolator", func(s *service.JobSpec) {
				s.Faults = "storm:1:0:2"
			})
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(tt.spec(t), false, false, io.Discard); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestRunTraceSummary keeps the -trace plumbing covered: the per-round log
// and summary must reach the writer.
func TestRunTraceSummary(t *testing.T) {
	spec := specFor(t, 5, "shifting-path", func(s *service.JobSpec) {
		s.Fine = true
		s.Batch = 3
	})
	var buf strings.Builder
	if err := run(spec, false, true /* trace */, &buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"trace summary", "n = 5", "rounds="} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, buf.String())
		}
	}
}

// TestValidateFlagCombinations is the up-front usage validation: every bad
// combination must be rejected before any simulation starts.
func TestValidateFlagCombinations(t *testing.T) {
	type args struct {
		n          int
		protocol   string
		topology   string
		density    float64
		seed       int64
		blockT     int
		leaderless bool
		inputs     string
		halt       bool
		bitLimit   int
		fine       bool
		batch      int
		scheduler  string
		arith      string
		faults     string
		faultSeed  int64
		deadlineMS int
	}
	ok := args{n: 4, protocol: "congested", topology: "random", density: 0.3, seed: 1, blockT: 1, scheduler: "sequential", arith: "modular"}
	tests := []struct {
		name    string
		mut     func(*args)
		wantErr string
	}{
		{name: "valid-baseline", mut: func(a *args) {}, wantErr: ""},
		{name: "linear-protocol-ok", mut: func(a *args) { a.protocol = "linear" }, wantErr: ""},
		{name: "linear-leaderless-ok", mut: func(a *args) { a.protocol = "linear"; a.leaderless = true; a.inputs = "0,0,1,1" },
			wantErr: ""},
		{name: "unknown-protocol", mut: func(a *args) { a.protocol = "quantum" }, wantErr: "unknown protocol"},
		{name: "linear-halt", mut: func(a *args) { a.protocol = "linear"; a.halt = true }, wantErr: "congested-only"},
		{name: "linear-fine", mut: func(a *args) { a.protocol = "linear"; a.fine = true }, wantErr: "congested-only"},
		{name: "linear-batch", mut: func(a *args) { a.protocol = "linear"; a.batch = 3 }, wantErr: "congested-only"},
		{name: "linear-isolator", mut: func(a *args) { a.protocol = "linear"; a.topology = "isolator" },
			wantErr: "isolator"},
		{name: "negative-n", mut: func(a *args) { a.n = -4 }, wantErr: "n must be positive"},
		{name: "zero-n", mut: func(a *args) { a.n = 0 }, wantErr: "n must be positive"},
		{name: "unknown-topology", mut: func(a *args) { a.topology = "nonsense" }, wantErr: "unknown topology"},
		{name: "density-out-of-range", mut: func(a *args) { a.density = 1.7 }, wantErr: "density"},
		{name: "negative-batch", mut: func(a *args) { a.batch = -2 }, wantErr: "batch"},
		{name: "negative-bitlimit", mut: func(a *args) { a.bitLimit = -1 }, wantErr: "bitLimit"},
		{name: "leaderless-without-inputs", mut: func(a *args) { a.leaderless = true },
			wantErr: "requires per-process inputs"},
		{name: "leaderless-halt", mut: func(a *args) { a.leaderless = true; a.inputs = "0,0,1,1"; a.halt = true },
			wantErr: "halt"},
		{name: "leaderless-fine", mut: func(a *args) { a.leaderless = true; a.inputs = "0,0,1,1"; a.fine = true },
			wantErr: "fine-grained"},
		{name: "leaderless-isolator", mut: func(a *args) { a.leaderless = true; a.inputs = "0,0,1,1"; a.topology = "isolator" },
			wantErr: "isolator"},
		{name: "isolator-with-T", mut: func(a *args) { a.topology = "isolator"; a.blockT = 3 }, wantErr: "isolator"},
		{name: "inputs-count-mismatch", mut: func(a *args) { a.inputs = "1,2" }, wantErr: "input values"},
		{name: "inputs-not-numeric", mut: func(a *args) { a.inputs = "a,b,c,d" }, wantErr: "-inputs value"},
		{name: "unknown-scheduler", mut: func(a *args) { a.scheduler = "threads" }, wantErr: "unknown scheduler"},
		{name: "parallel-scheduler-ok", mut: func(a *args) { a.scheduler = "parallel" }, wantErr: ""},
		{name: "unknown-arithmetic", mut: func(a *args) { a.arith = "float" }, wantErr: "unknown arithmetic"},
		{name: "big-arithmetic-ok", mut: func(a *args) { a.arith = "big" }, wantErr: ""},
		{name: "malformed-faults", mut: func(a *args) { a.faults = "spike:1" }, wantErr: "invalid fault plan"},
		{name: "unknown-fault", mut: func(a *args) { a.faults = "meteor:1:0" }, wantErr: "unknown fault"},
		{name: "crash-pid-out-of-range", mut: func(a *args) { a.faults = "crash:9:1:0"; a.deadlineMS = 100 },
			wantErr: "invalid fault plan"},
		{name: "out-of-model-without-deadline", mut: func(a *args) { a.faults = "drop:1:0:0.5" },
			wantErr: "out-of-model"},
		{name: "negative-deadline", mut: func(a *args) { a.deadlineMS = -5 }, wantErr: "deadlineMS"},
		{name: "in-model-without-deadline-ok", mut: func(a *args) { a.faults = "spike:8:0" }, wantErr: ""},
		{name: "out-of-model-with-deadline-ok", mut: func(a *args) { a.faults = "crash:0:3:0"; a.deadlineMS = 200 },
			wantErr: ""},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			a := ok
			tt.mut(&a)
			_, err := buildSpec(a.n, a.protocol, a.topology, a.density, a.seed, a.blockT,
				a.leaderless, a.inputs, a.halt, a.bitLimit, a.fine, a.batch, false, false, a.scheduler,
				false, false, a.arith, a.faults, a.faultSeed, a.deadlineMS)
			if tt.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("expected error containing %q", tt.wantErr)
			}
			if !strings.Contains(err.Error(), tt.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tt.wantErr)
			}
		})
	}
}

// TestProtocolGoldenOutput pins the exact CLI output of both protocol
// backends on one fixed seed — the user-visible face of the rounds-vs-bits
// tradeoff. Multiset lines are map-ordered, so they are sorted before the
// comparison; everything else must match byte for byte.
func TestProtocolGoldenOutput(t *testing.T) {
	tests := []struct {
		name string
		args []string
		want string
	}{
		{
			name: "linear",
			args: []string{"-n", "5", "-seed", "3", "-protocol", "linear"},
			want: `n = 5
input multiset:
  0: 4
  L:0: 1
rounds=7 levels=7 resets=0 finalDiamEstimate=0
messages=35 maxMessageBits=1680 totalBits=22984
`,
		},
		{
			name: "congested",
			args: []string{"-n", "5", "-seed", "3", "-protocol", "congested"},
			want: `n = 5
input multiset:
  0: 4
  L:0: 1
rounds=236 levels=2 resets=2 finalDiamEstimate=4
messages=1180 maxMessageBits=32 totalBits=26280
solver: calls=2 primes=2 crtRecons=1 evictions=0 witnessFalls=0
sharing: applies=35 hits=131 forks=0
`,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var out, errOut strings.Builder
			if code := realMain(tt.args, &out, &errOut); code != 0 {
				t.Fatalf("exit code %d (stderr: %s)", code, errOut.String())
			}
			got := strings.Split(out.String(), "\n")
			// Lines 2 and 3 are the two multiset entries; order them.
			if len(got) > 3 && got[2] > got[3] {
				got[2], got[3] = got[3], got[2]
			}
			if joined := strings.Join(got, "\n"); joined != tt.want {
				t.Fatalf("output mismatch:\n got: %q\nwant: %q", joined, tt.want)
			}
		})
	}
}

// TestProtocolUsageError pins the exact stderr wording and exit status for
// a protocol/flag conflict, the contract scripts probe for.
func TestProtocolUsageError(t *testing.T) {
	var out, errOut strings.Builder
	if code := realMain([]string{"-n", "4", "-protocol", "linear", "-halt"}, &out, &errOut); code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
	want := "cadn: invalid usage: halt is congested-only (the linear protocol has no Halt broadcast)\n"
	if errOut.String() != want {
		t.Fatalf("stderr %q, want %q", errOut.String(), want)
	}
}

// TestExitCodes pins the CLI contract: usage errors exit 2, runtime
// failures exit 1, success exits 0.
func TestExitCodes(t *testing.T) {
	tests := []struct {
		name string
		args []string
		want int
	}{
		{name: "success", args: []string{"-n", "4", "-seed", "1"}, want: 0},
		{name: "bad-flag", args: []string{"-no-such-flag"}, want: 2},
		{name: "negative-n", args: []string{"-n", "-3"}, want: 2},
		{name: "leaderless-without-inputs", args: []string{"-n", "4", "-leaderless"}, want: 2},
		{name: "negative-batch", args: []string{"-n", "4", "-batch", "-1"}, want: 2},
		{name: "runtime-bitlimit", args: []string{"-n", "4", "-bitlimit", "8"}, want: 1},
		{name: "usage-out-of-model-no-deadline", args: []string{"-n", "4", "-faults", "drop:1:0:1"}, want: 2},
		{name: "runtime-watchdog", args: []string{"-n", "4", "-topology", "complete",
			"-faults", "crash:0:2:0", "-deadline", "150"}, want: 1},
		{name: "linear-success", args: []string{"-n", "4", "-protocol", "linear"}, want: 0},
		{name: "unknown-protocol", args: []string{"-n", "4", "-protocol", "quantum"}, want: 2},
		{name: "linear-halt", args: []string{"-n", "4", "-protocol", "linear", "-halt"}, want: 2},
		{name: "linear-compact", args: []string{"-n", "4", "-protocol", "linear", "-compact"}, want: 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var out, errOut strings.Builder
			if got := realMain(tt.args, &out, &errOut); got != tt.want {
				t.Fatalf("exit code %d, want %d (stderr: %s)", got, tt.want, errOut.String())
			}
		})
	}
}
