// Command httree builds and renders history trees: the ground-truth tree
// of a schedule (via the oracle) or the Figure-1-style worked example.
//
// Usage:
//
//	go run ./cmd/httree -fig1             # the 9-process Figure 1 example
//	go run ./cmd/httree -n 6 -rounds 8    # random dynamic network
//	go run ./cmd/httree -fig1 -dot        # Graphviz output
package main

import (
	"flag"
	"fmt"
	"os"

	"anondyn"
	"anondyn/internal/bench"
)

func main() {
	var (
		fig1   = flag.Bool("fig1", false, "render the Figure-1-style 9-process example")
		n      = flag.Int("n", 6, "number of processes")
		rounds = flag.Int("rounds", 6, "rounds to simulate")
		seed   = flag.Int64("seed", 1, "adversary seed")
		p      = flag.Float64("p", 0.3, "random adversary density")
		dot    = flag.Bool("dot", false, "emit Graphviz DOT instead of ASCII")
	)
	flag.Parse()
	if err := run(*fig1, *n, *rounds, *seed, *p, *dot); err != nil {
		fmt.Fprintln(os.Stderr, "httree:", err)
		os.Exit(1)
	}
}

func run(fig1 bool, n, rounds int, seed int64, p float64, dot bool) error {
	var (
		sched  anondyn.Schedule
		inputs []anondyn.Input
	)
	if fig1 {
		sched, inputs = bench.Fig1Schedule()
		rounds = 3
	} else {
		sched = anondyn.RandomConnected(n, p, seed)
		inputs = anondyn.LeaderInputs(n)
	}

	run, err := anondyn.BuildHistoryTree(sched, inputs, rounds)
	if err != nil {
		return err
	}
	if dot {
		fmt.Print(anondyn.RenderTreeDOT(run.Tree, "historytree"))
		return nil
	}
	fmt.Printf("history tree of %d processes after %d rounds\n", sched.N(), rounds)
	fmt.Print(anondyn.RenderTree(run.Tree))
	fmt.Println("\nclass cardinalities (oracle ground truth):")
	for l := 0; l <= run.Tree.Depth(); l++ {
		fmt.Printf("L%d:", l)
		for _, v := range run.Tree.Level(l) {
			fmt.Printf(" %d→%d", v.ID, run.Card[v.ID])
		}
		fmt.Println()
	}
	return nil
}
