package main

import "testing"

func TestRunFig1(t *testing.T) {
	if err := run(true /* fig1 */, 0, 0, 0, 0, false /* dot */); err != nil {
		t.Fatal(err)
	}
}

func TestRunRandomASCIIAndDOT(t *testing.T) {
	if err := run(false, 5, 6, 1, 0.4, false); err != nil {
		t.Fatal(err)
	}
	if err := run(false, 5, 6, 1, 0.4, true); err != nil {
		t.Fatal(err)
	}
}
