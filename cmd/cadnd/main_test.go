package main

import (
	"encoding/json"
	"net/http"
	"strings"
	"syscall"
	"testing"
	"time"

	"anondyn/internal/cluster"
	"anondyn/internal/service"
)

// TestServeLifecycle boots the daemon on an ephemeral port, runs one job
// through the HTTP API, and shuts it down via the signal path.
func TestServeLifecycle(t *testing.T) {
	srv, err := service.NewServer(service.ServerConfig{Workers: 2, CacheSize: 16, QueueSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- serveOn(srv, 10*time.Second) }()
	base := "http://" + srv.Addr()

	// Wait for the listener to serve; serveOn registers its signal handler
	// before serving, so a healthy endpoint implies the SIGTERM path is
	// armed.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never became healthy: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// One job end to end through the daemon.
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(`{"n":5,"seed":7}`))
	if err != nil {
		t.Fatal(err)
	}
	var st service.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	job, ok := srv.Manager().Get(st.ID)
	if !ok {
		t.Fatalf("job %s not found", st.ID)
	}
	final, err := service.WaitTerminal(job, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != service.JobDone || final.Result == nil || final.Result.N != 5 {
		t.Fatalf("job outcome: %+v", final)
	}

	// SIGTERM must drain and exit cleanly.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not exit on SIGTERM")
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("daemon still serving after SIGTERM")
	}
}

// TestServeBadAddr verifies that an unusable listen address surfaces as an
// error instead of a hang.
func TestServeBadAddr(t *testing.T) {
	if err := serve("256.256.256.256:99999", 1, 1, 1, "", "", time.Second); err == nil {
		t.Fatal("expected listen error")
	}
}

// TestServeBadProtocol verifies an unknown -protocol default is rejected
// at boot instead of failing every submitted job.
func TestServeBadProtocol(t *testing.T) {
	if err := serve("127.0.0.1:0", 1, 1, 1, "", "quantum", time.Second); err == nil {
		t.Fatal("expected protocol error")
	}
}

// TestServeCoordinatorBadConfig verifies coordinator-mode argument errors
// surface instead of booting a broken fleet.
func TestServeCoordinatorBadConfig(t *testing.T) {
	if err := serveCoordinator("127.0.0.1:0", "", 2, 64, 64, time.Second, time.Second); err == nil {
		t.Fatal("expected error for empty -backends")
	}
	if err := serveCoordinator("127.0.0.1:0", "a:1, a:1", 2, 64, 64, time.Second, time.Second); err == nil {
		t.Fatal("expected error for duplicate backends")
	}
}

// TestCoordinatorServeLifecycle boots a backend plus a coordinator front
// end, routes one job through the cluster tier, and shuts both down via
// the signal path.
func TestCoordinatorServeLifecycle(t *testing.T) {
	backend, err := service.NewServer(service.ServerConfig{Workers: 2, CacheSize: 16, QueueSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	backend.Start()
	defer func() { _ = backend.Close() }()

	coord, err := cluster.NewCoordinator(cluster.Config{
		Backends:      []string{backend.Addr()},
		ProbeInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	front, err := cluster.NewServer(cluster.ServerConfig{Coordinator: coord})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- serveOn(front, 10*time.Second) }()
	base := "http://" + front.Addr()

	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/healthz")
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("coordinator never became healthy: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(`{"n":5,"seed":7}`))
	if err != nil {
		t.Fatal(err)
	}
	var out cluster.Outcome
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if out.Status.Result == nil || out.Status.Result.N != 5 {
		t.Fatalf("cluster job outcome: %+v", out)
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("coordinator exit: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("coordinator did not exit on SIGTERM")
	}
}
