// Command cadnd is the counting-simulation daemon: a long-running HTTP/JSON
// service that accepts simulation jobs (the same parameter surface as
// cmd/cadn), runs them on a bounded worker pool, deduplicates identical
// deterministic runs through an LRU result cache backed by an optional
// persistent content-addressed store, and streams per-round progress.
//
// Start it and talk to it with curl:
//
//	cadnd -addr 127.0.0.1:8080 -store /var/lib/cadnd &
//	curl -s -X POST localhost:8080/v1/jobs -d '{"n":8,"seed":1}'
//	curl -s localhost:8080/v1/jobs/job-000001
//	curl -sN localhost:8080/v1/jobs/job-000001/events   # NDJSON stream
//	curl -s -X DELETE localhost:8080/v1/jobs/job-000001 # cancel
//	curl -s localhost:8080/v1/metrics
//	curl -s localhost:8080/v1/healthz
//
// With -coordinator the same binary becomes the cluster tier instead: it
// shards specs across a fleet of backend cadnd daemons by content hash
// (consistent hashing), health-checks them, fails jobs over to the next
// replica behind per-backend circuit breakers, and streams aggregated
// sweep progress:
//
//	cadnd -addr :8081 &                  # backend 1
//	cadnd -addr :8082 &                  # backend 2
//	cadnd -coordinator -addr :8080 -backends 127.0.0.1:8081,127.0.0.1:8082 &
//	curl -sN -X POST localhost:8080/v1/sweep \
//	    -d '{"specs":[{"n":8,"seed":1},{"n":8,"seed":2}]}'
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener closes, queued
// jobs drain, and only after -drain elapses are in-flight simulations
// force-cancelled.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"anondyn/internal/cluster"
	"anondyn/internal/service"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "HTTP listen address")
		workers  = flag.Int("workers", runtime.NumCPU(), "concurrent simulation workers")
		cache    = flag.Int("cache", 256, "result-cache capacity (entries; 0 disables)")
		queue    = flag.Int("queue", 1024, "job-queue capacity")
		drain    = flag.Duration("drain", 30*time.Second, "graceful-shutdown budget before in-flight jobs are cancelled")
		storeDir = flag.String("store", "", "persistent result-store directory (empty disables; results then live only in memory)")
		protocol = flag.String("protocol", "", "default counting backend for jobs that omit one: congested or linear (empty keeps the spec default, congested)")

		coordinator = flag.Bool("coordinator", false, "run as cluster coordinator instead of a simulation backend")
		backends    = flag.String("backends", "", "comma-separated backend addresses (coordinator mode; required)")
		replicas    = flag.Int("replicas", 2, "failover-chain length per spec (coordinator mode)")
		vnodes      = flag.Int("vnodes", 64, "virtual nodes per backend on the hash ring (coordinator mode)")
		inflight    = flag.Int("inflight", 64, "max concurrently executing jobs across the fleet (coordinator mode)")
		probe       = flag.Duration("probe", 2*time.Second, "backend health-probe interval (coordinator mode)")
	)
	flag.Parse()
	var err error
	if *coordinator {
		err = serveCoordinator(*addr, *backends, *replicas, *vnodes, *inflight, *probe, *drain)
	} else {
		err = serve(*addr, *workers, *cache, *queue, *storeDir, *protocol, *drain)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cadnd:", err)
		os.Exit(1)
	}
}

func serve(addr string, workers, cache, queue int, storeDir, protocol string, drain time.Duration) error {
	cacheCap := cache
	if cacheCap == 0 {
		cacheCap = -1 // ServerConfig treats 0 as "default", negative as off
	}
	srv, err := service.NewServer(service.ServerConfig{
		Addr:            addr,
		Workers:         workers,
		CacheSize:       cacheCap,
		QueueSize:       queue,
		StoreDir:        storeDir,
		DefaultProtocol: protocol,
	})
	if err != nil {
		return err
	}
	log.Printf("cadnd: serving on http://%s (%d workers, cache %d, queue %d, store %q)",
		srv.Addr(), workers, cache, queue, storeDir)
	return serveOn(srv, drain)
}

func serveCoordinator(addr, backendList string, replicas, vnodes, inflight int, probe, drain time.Duration) error {
	var names []string
	for _, b := range strings.Split(backendList, ",") {
		if b = strings.TrimSpace(b); b != "" {
			names = append(names, b)
		}
	}
	if len(names) == 0 {
		return fmt.Errorf("coordinator mode needs -backends")
	}
	coord, err := cluster.NewCoordinator(cluster.Config{
		Backends:      names,
		Replicas:      replicas,
		VirtualNodes:  vnodes,
		MaxInFlight:   inflight,
		ProbeInterval: probe,
	})
	if err != nil {
		return err
	}
	srv, err := cluster.NewServer(cluster.ServerConfig{Addr: addr, Coordinator: coord})
	if err != nil {
		coord.Close()
		return err
	}
	log.Printf("cadnd: coordinating %d backends on http://%s (replicas %d, inflight %d)",
		len(names), srv.Addr(), replicas, inflight)
	return serveOn(srv, drain)
}

// daemon is the common shape of both serving modes: the backend
// service.Server and the cluster.Server.
type daemon interface {
	Serve() error
	Shutdown(ctx context.Context) error
}

// serveOn runs an already-bound server until a termination signal arrives,
// then shuts it down gracefully within the drain budget.
func serveOn(srv daemon, drain time.Duration) error {
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigs)
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve() }()

	select {
	case err := <-errc:
		return err
	case sig := <-sigs:
		log.Printf("cadnd: %s — draining (budget %v)", sig, drain)
		ctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("cadnd: shutdown cancelled in-flight jobs: %v", err)
		}
		return <-errc
	}
}
