// Command cadnd is the counting-simulation daemon: a long-running HTTP/JSON
// service that accepts simulation jobs (the same parameter surface as
// cmd/cadn), runs them on a bounded worker pool, deduplicates identical
// deterministic runs through an LRU result cache, and streams per-round
// progress.
//
// Start it and talk to it with curl:
//
//	cadnd -addr 127.0.0.1:8080 &
//	curl -s -X POST localhost:8080/v1/jobs -d '{"n":8,"seed":1}'
//	curl -s localhost:8080/v1/jobs/job-000001
//	curl -sN localhost:8080/v1/jobs/job-000001/events   # NDJSON stream
//	curl -s -X DELETE localhost:8080/v1/jobs/job-000001 # cancel
//	curl -s localhost:8080/v1/metrics
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener closes, queued
// jobs drain, and only after -drain elapses are in-flight simulations
// force-cancelled.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"anondyn/internal/service"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:8080", "HTTP listen address")
		workers = flag.Int("workers", runtime.NumCPU(), "concurrent simulation workers")
		cache   = flag.Int("cache", 256, "result-cache capacity (entries; 0 disables)")
		queue   = flag.Int("queue", 1024, "job-queue capacity")
		drain   = flag.Duration("drain", 30*time.Second, "graceful-shutdown budget before in-flight jobs are cancelled")
	)
	flag.Parse()
	if err := serve(*addr, *workers, *cache, *queue, *drain); err != nil {
		fmt.Fprintln(os.Stderr, "cadnd:", err)
		os.Exit(1)
	}
}

func serve(addr string, workers, cache, queue int, drain time.Duration) error {
	cacheCap := cache
	if cacheCap == 0 {
		cacheCap = -1 // ServerConfig treats 0 as "default", negative as off
	}
	srv, err := service.NewServer(service.ServerConfig{
		Addr:      addr,
		Workers:   workers,
		CacheSize: cacheCap,
		QueueSize: queue,
	})
	if err != nil {
		return err
	}
	log.Printf("cadnd: serving on http://%s (%d workers, cache %d, queue %d)",
		srv.Addr(), workers, cache, queue)
	return serveOn(srv, drain)
}

// serveOn runs an already-bound server until a termination signal arrives,
// then shuts it down gracefully within the drain budget.
func serveOn(srv *service.Server, drain time.Duration) error {
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve() }()

	select {
	case err := <-errc:
		return err
	case sig := <-sigs:
		log.Printf("cadnd: %s — draining (budget %v)", sig, drain)
		ctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("cadnd: shutdown cancelled in-flight jobs: %v", err)
		}
		return <-errc
	}
}
