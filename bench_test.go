// Benchmarks: one per reproduction experiment (see DESIGN.md §4 and
// EXPERIMENTS.md). Each benchmark runs the system(s) behind the
// corresponding experiment and reports the domain metrics (rounds, message
// bits, red edges, resets) via b.ReportMetric, in addition to the usual
// time/allocation figures.
//
// Run with: go test -bench=. -benchmem
package anondyn_test

import (
	"fmt"
	"testing"

	"anondyn"
	"anondyn/internal/bench"
)

func BenchmarkE1HistoryTreeFig1(b *testing.B) {
	sched, inputs := bench.Fig1Schedule()
	for i := 0; i < b.N; i++ {
		run, err := anondyn.BuildHistoryTree(sched, inputs, 3)
		if err != nil {
			b.Fatal(err)
		}
		if got := len(run.Tree.Level(2)); got != 8 {
			b.Fatalf("L2 has %d classes, want 8", got)
		}
	}
}

// countOnce runs the congested counting algorithm once and fails the
// benchmark on any error or miscount.
func countOnce(b *testing.B, s anondyn.Schedule, n int, cfg anondyn.Config) *anondyn.RunResult {
	b.Helper()
	inputs := anondyn.LeaderInputs(n)
	res, err := anondyn.Run(s, inputs, cfg, anondyn.RunOptions{})
	if err != nil {
		b.Fatal(err)
	}
	if res.N != n {
		b.Fatalf("counted %d, want %d", res.N, n)
	}
	return res
}

func BenchmarkE2RoundsVsN(b *testing.B) {
	for _, n := range []int{4, 8, 12, 16} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s := anondyn.RandomConnected(n, 0.3, 1)
			cfg := anondyn.Config{Mode: anondyn.ModeLeader, MaxLevels: 3*n + 6}
			var rounds int
			for i := 0; i < b.N; i++ {
				rounds = countOnce(b, s, n, cfg).Stats.Rounds
			}
			b.ReportMetric(float64(rounds), "rounds")
			b.ReportMetric(float64(rounds)/float64(n*n*n), "rounds/n³")
		})
	}
}

func BenchmarkE3MessageBits(b *testing.B) {
	for _, n := range []int{4, 8, 16} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s := anondyn.RandomConnected(n, 0.3, 7)
			cfg := anondyn.Config{Mode: anondyn.ModeLeader, MaxLevels: 3*n + 6}
			var bits int
			for i := 0; i < b.N; i++ {
				bits = countOnce(b, s, n, cfg).Stats.MaxMessageBits
			}
			b.ReportMetric(float64(bits), "max-bits")
		})
	}
}

func BenchmarkE4RedEdgeAmortization(b *testing.B) {
	for _, n := range []int{6, 10} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s := anondyn.RandomConnected(n, 0.5, 3)
			cfg := anondyn.Config{Mode: anondyn.ModeLeader, MaxLevels: 3*n + 6}
			var red int
			for i := 0; i < b.N; i++ {
				red = countOnce(b, s, n, cfg).VHT.RedEdgeCount(-1)
			}
			b.ReportMetric(float64(red), "vht-red-edges")
			b.ReportMetric(float64(red)/float64(n*n), "red/n²")
		})
	}
}

func BenchmarkE5DiamEstimate(b *testing.B) {
	for _, n := range []int{5, 9} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			cfg := anondyn.Config{Mode: anondyn.ModeLeader, MaxLevels: 3*n + 6}
			var resets, diam int
			for i := 0; i < b.N; i++ {
				res := countOnce(b, anondyn.ShiftingPath(n), n, cfg)
				resets, diam = res.Stats.Resets, res.Stats.FinalDiamEstimate
				if diam > 4*n {
					b.Fatalf("final diameter estimate %d exceeds 4n=%d", diam, 4*n)
				}
			}
			b.ReportMetric(float64(resets), "resets")
			b.ReportMetric(float64(diam), "final-diam")
		})
	}
}

func BenchmarkE6CongestedVsNonCongested(b *testing.B) {
	for _, n := range []int{6, 10} {
		s := anondyn.RandomConnected(n, 0.3, 17)
		b.Run(fmt.Sprintf("congested/n=%d", n), func(b *testing.B) {
			cfg := anondyn.Config{Mode: anondyn.ModeLeader, MaxLevels: 3*n + 6}
			var res *anondyn.RunResult
			for i := 0; i < b.N; i++ {
				res = countOnce(b, s, n, cfg)
			}
			b.ReportMetric(float64(res.Stats.Rounds), "rounds")
			b.ReportMetric(float64(res.Stats.MaxMessageBits), "max-bits")
		})
		b.Run(fmt.Sprintf("noncongested/n=%d", n), func(b *testing.B) {
			var res *anondyn.NonCongestedResult
			for i := 0; i < b.N; i++ {
				var err error
				res, err = anondyn.RunNonCongested(s, anondyn.LeaderInputs(n), 0)
				if err != nil {
					b.Fatal(err)
				}
				if res.N != n {
					b.Fatalf("counted %d, want %d", res.N, n)
				}
			}
			b.ReportMetric(float64(res.Rounds), "rounds")
			b.ReportMetric(float64(res.MaxMessageBits), "max-bits")
		})
	}
}

func BenchmarkE7TokenForwarding(b *testing.B) {
	for _, n := range []int{6, 10} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s := anondyn.RandomConnected(n, 0.3, 23)
			var res *anondyn.TokenForwardResult
			for i := 0; i < b.N; i++ {
				var err error
				res, err = anondyn.RunTokenForward(s, n, 1234)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Rounds), "rounds")
			b.ReportMetric(float64(res.Estimate), "estimate")
		})
	}
}

func BenchmarkE8Leaderless(b *testing.B) {
	for _, n := range []int{6, 10} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			inputs := make([]anondyn.Input, n)
			for i := range inputs {
				inputs[i].Value = int64(i % 2)
			}
			s := anondyn.RandomConnected(n, 0.4, 29)
			cfg := anondyn.Config{Mode: anondyn.ModeLeaderless, DiamBound: n, MaxLevels: 3*n + 6}
			var rounds int
			for i := 0; i < b.N; i++ {
				res, err := anondyn.Run(s, inputs, cfg, anondyn.RunOptions{})
				if err != nil {
					b.Fatal(err)
				}
				if !res.Frequencies.Known {
					b.Fatal("frequencies unknown")
				}
				rounds = res.Stats.Rounds
			}
			b.ReportMetric(float64(rounds), "rounds")
			b.ReportMetric(float64(rounds)/float64(n*n*n), "rounds/Dn²")
		})
	}
}

func BenchmarkE9UnionConnected(b *testing.B) {
	const n = 6
	for _, T := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("T=%d", T), func(b *testing.B) {
			inner := anondyn.RandomConnected(n, 0.5, 31)
			s := inner
			if T > 1 {
				var err error
				s, err = anondyn.UnionConnected(inner, T)
				if err != nil {
					b.Fatal(err)
				}
			}
			cfg := anondyn.Config{Mode: anondyn.ModeLeader, BlockT: T, MaxLevels: 3*n + 6}
			var rounds int
			for i := 0; i < b.N; i++ {
				rounds = countOnce(b, s, n, cfg).Stats.Rounds
			}
			b.ReportMetric(float64(rounds), "rounds")
			b.ReportMetric(float64(rounds)/float64(T), "rounds/T")
		})
	}
}

func BenchmarkE10VirtualNetworkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.E10Fig2(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE11GeneralizedCounting(b *testing.B) {
	const n = 8
	inputs := make([]anondyn.Input, n)
	inputs[0].Leader = true
	for i := range inputs {
		inputs[i].Value = int64(i % 3)
	}
	s := anondyn.RandomConnected(n, 0.4, 37)
	cfg := anondyn.Config{
		Mode:             anondyn.ModeLeader,
		BuildInputLevel:  true,
		SimultaneousHalt: true,
		MaxLevels:        3*n + 6,
	}
	var rounds int
	for i := 0; i < b.N; i++ {
		res, err := anondyn.Run(s, inputs, cfg, anondyn.RunOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if res.N != n {
			b.Fatalf("counted %d, want %d", res.N, n)
		}
		rounds = res.Stats.Rounds
	}
	b.ReportMetric(float64(rounds), "rounds")
}

func BenchmarkE12SpanningTreeAblation(b *testing.B) {
	const n = 9
	s := anondyn.RandomConnected(n, 0.9, 12)
	for _, keepAll := range []bool{false, true} {
		name := "pruned"
		if keepAll {
			name = "keep-all-links"
		}
		b.Run(name, func(b *testing.B) {
			cfg := anondyn.Config{Mode: anondyn.ModeLeader, KeepAllLinks: keepAll, MaxLevels: 3*n + 6}
			var res *anondyn.RunResult
			for i := 0; i < b.N; i++ {
				res = countOnce(b, s, n, cfg)
			}
			b.ReportMetric(float64(res.Stats.Rounds), "rounds")
			b.ReportMetric(float64(res.VHT.RedEdgeCount(-1)), "red-edges")
		})
	}
}

func BenchmarkE13BatchingTradeoff(b *testing.B) {
	const n = 10
	s := anondyn.RandomConnected(n, 0.9, 4)
	for _, batch := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			cfg := anondyn.Config{
				Mode: anondyn.ModeLeader, BatchSize: batch, KeepAllLinks: true, MaxLevels: 3*n + 6,
			}
			var res *anondyn.RunResult
			for i := 0; i < b.N; i++ {
				res = countOnce(b, s, n, cfg)
			}
			b.ReportMetric(float64(res.Stats.Rounds), "rounds")
			b.ReportMetric(float64(res.Stats.MaxMessageBits), "max-bits")
		})
	}
}

func BenchmarkE14AdaptiveAdversary(b *testing.B) {
	for _, n := range []int{4, 8} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			cfg := anondyn.Config{Mode: anondyn.ModeLeader, MaxLevels: 3*n + 8}
			var res *anondyn.RunResult
			for i := 0; i < b.N; i++ {
				var err error
				res, err = anondyn.RunAdaptive(anondyn.Isolator(n, 0), anondyn.LeaderInputs(n), cfg, anondyn.RunOptions{})
				if err != nil {
					b.Fatal(err)
				}
				if res.N != n {
					b.Fatalf("counted %d, want %d", res.N, n)
				}
			}
			b.ReportMetric(float64(res.Stats.Rounds), "rounds")
			b.ReportMetric(float64(res.Stats.FinalDiamEstimate), "final-diam")
		})
	}
}
