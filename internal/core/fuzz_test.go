package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"anondyn/internal/dynnet"
	"anondyn/internal/historytree"
)

// TestQuickRandomSchedulesAndInputs is a property-based sweep: arbitrary
// connected schedules (drawn per round from a seeded generator with random
// density), arbitrary input assignments, and arbitrary protocol options —
// Generalized Counting must always recover the exact multiset.
func TestQuickRandomSchedulesAndInputs(t *testing.T) {
	f := func(seed int64, nRaw, densityRaw, optBits uint8) bool {
		n := 2 + int(nRaw%7)
		rng := rand.New(rand.NewSource(seed))
		density := float64(densityRaw) / 255

		inputs := make([]historytree.Input, n)
		inputs[rng.Intn(n)].Leader = true
		for i := range inputs {
			inputs[i].Value = int64(rng.Intn(3))
		}
		want := make(map[historytree.Input]int)
		for _, in := range inputs {
			want[in]++
		}

		cfg := Config{
			Mode:             ModeLeader,
			BuildInputLevel:  true,
			FineGrainedReset: optBits&1 != 0,
			SimultaneousHalt: false,
			MaxLevels:        3*n + 10,
		}
		if optBits&2 != 0 {
			cfg.BatchSize = 2 + int(optBits%5)
		}
		if optBits&4 != 0 {
			cfg.KeepAllLinks = true
		}

		s := dynnet.NewRandomConnected(n, density, seed)
		res, err := Run(s, inputs, cfg, RunOptions{})
		if err != nil {
			t.Logf("seed=%d n=%d opts=%d: %v", seed, n, optBits, err)
			return false
		}
		if res.N != n {
			t.Logf("seed=%d n=%d opts=%d: counted %d", seed, n, optBits, res.N)
			return false
		}
		for in, c := range want {
			if res.Multiset[in] != c {
				t.Logf("seed=%d: multiset[%v]=%d want %d", seed, in, res.Multiset[in], c)
				return false
			}
		}
		return len(res.Multiset) == len(want)
	}
	cfg := &quick.Config{MaxCount: 40}
	if testing.Short() {
		cfg.MaxCount = 8
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickLeaderlessFrequencies mirrors the sweep for the leaderless
// algorithm: frequencies must equal the true ratios in lowest terms.
func TestQuickLeaderlessFrequencies(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := 2 + int(nRaw%7)
		rng := rand.New(rand.NewSource(seed))
		inputs := make([]historytree.Input, n)
		counts := make(map[int64]int)
		for i := range inputs {
			v := int64(rng.Intn(2))
			inputs[i].Value = v
			counts[v]++
		}
		g := 0
		for _, c := range counts {
			g = gcdInt(g, c)
		}
		cfg := Config{Mode: ModeLeaderless, DiamBound: n, MaxLevels: 3*n + 10}
		res, err := Run(dynnet.NewRandomConnected(n, rng.Float64(), seed), inputs, cfg, RunOptions{})
		if err != nil {
			t.Logf("seed=%d n=%d: %v", seed, n, err)
			return false
		}
		if res.Frequencies == nil || !res.Frequencies.Known {
			return false
		}
		if res.Frequencies.MinSize != n/g {
			t.Logf("seed=%d: MinSize=%d want %d", seed, res.Frequencies.MinSize, n/g)
			return false
		}
		for v, c := range counts {
			if res.Frequencies.Shares[historytree.Input{Value: v}] != c/g {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25}
	if testing.Short() {
		cfg.MaxCount = 5
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestLargeNetworkLongRun exercises a bigger instance end to end.
func TestLargeNetworkLongRun(t *testing.T) {
	if testing.Short() {
		t.Skip("large run skipped in -short mode")
	}
	n := 20
	res, err := Run(dynnet.NewRandomConnected(n, 0.2, 99), leaderInputs(n),
		Config{Mode: ModeLeader, MaxLevels: 3*n + 10}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.N != n {
		t.Fatalf("counted %d", res.N)
	}
	t.Logf("n=%d: rounds=%d levels=%d maxBits=%d",
		n, res.Stats.Rounds, res.Stats.Levels, res.Stats.MaxMessageBits)
}

// TestLeaderlessUnionConnected combines the two Section 5 extensions that
// can coexist without a leader: known diameter bound and T-union
// connectivity.
func TestLeaderlessUnionConnected(t *testing.T) {
	n, T := 6, 3
	inner := dynnet.NewRandomConnected(n, 0.5, 3)
	uc, err := dynnet.NewUnionConnected(inner, T)
	if err != nil {
		t.Fatal(err)
	}
	inputs := make([]historytree.Input, n)
	for i := range inputs {
		inputs[i].Value = int64(i % 2)
	}
	cfg := Config{Mode: ModeLeaderless, DiamBound: n, BlockT: T, MaxLevels: 3*n + 10}
	res, err := Run(uc, inputs, cfg, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Frequencies.MinSize != 2 {
		t.Fatalf("MinSize=%d, want 2", res.Frequencies.MinSize)
	}
	if res.Frequencies.Shares[historytree.Input{Value: 0}] != 1 {
		t.Fatalf("shares=%v", res.Frequencies.Shares)
	}
}

func gcdInt(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	if a == 0 {
		return 1
	}
	return a
}
