package core

import (
	"strings"
	"testing"

	"anondyn/internal/dynnet"
	"anondyn/internal/historytree"
)

// TestCompactVHTLeaderlessEquivalence is the end-to-end compaction
// property on the deep-tree case: a leaderless run builds O(n) levels, so
// compaction must engage, shrink the resident tree by a large factor, and
// change nothing observable — same frequencies, same rounds, same levels.
func TestCompactVHTLeaderlessEquivalence(t *testing.T) {
	for _, n := range []int{16, 24} {
		inputs := make([]historytree.Input, n)
		for i := range inputs {
			inputs[i].Value = int64(i % 2)
		}
		// A static path mixes slowly, forcing a deep tree (≈ n/2 levels) —
		// the case compaction exists for.
		s := dynnet.NewStatic(dynnet.Path(n))
		cfg := Config{Mode: ModeLeaderless, DiamBound: n, MaxLevels: 3*n + 6}

		off, err := Run(s, inputs, cfg, RunOptions{})
		if err != nil {
			t.Fatalf("n=%d baseline: %v", n, err)
		}
		cfg.CompactVHT = true
		on, err := Run(s, inputs, cfg, RunOptions{})
		if err != nil {
			t.Fatalf("n=%d compacted: %v", n, err)
		}

		if !sameFrequencies(off.Frequencies, on.Frequencies) {
			t.Fatalf("n=%d: frequencies differ: %+v vs %+v", n, on.Frequencies, off.Frequencies)
		}
		if off.Stats.Rounds != on.Stats.Rounds || off.Stats.Levels != on.Stats.Levels {
			t.Fatalf("n=%d: run shape changed: rounds %d→%d levels %d→%d",
				n, off.Stats.Rounds, on.Stats.Rounds, off.Stats.Levels, on.Stats.Levels)
		}
		if on.Stats.CompactedLevels == 0 || on.Stats.CompactedNodes == 0 {
			t.Fatalf("n=%d: compaction never engaged (stats %+v)", n, on.Stats)
		}
		if off.Stats.CompactedLevels != 0 {
			t.Fatalf("n=%d: baseline reports compaction: %+v", n, off.Stats)
		}
		if on.Stats.ResidentNodes >= off.Stats.ResidentNodes {
			t.Fatalf("n=%d: resident nodes %d not below baseline %d",
				n, on.Stats.ResidentNodes, off.Stats.ResidentNodes)
		}
		if on.Stats.PeakResidentNodes >= off.Stats.PeakResidentNodes {
			t.Fatalf("n=%d: peak resident %d not below baseline %d",
				n, on.Stats.PeakResidentNodes, off.Stats.PeakResidentNodes)
		}
	}
}

// TestCompactVHTLeaderEquivalence: leader-mode runs on clean schedules
// (no resets) must also be byte-for-byte unaffected. The static path gives
// the deepest leader trees (≈ n levels), so compaction engages hard.
func TestCompactVHTLeaderEquivalence(t *testing.T) {
	const n = 16
	s := dynnet.NewStatic(dynnet.Path(n))
	cfg := Config{Mode: ModeLeader, MaxLevels: 3*n + 6}

	off, err := Run(s, leaderInputs(n), cfg, RunOptions{})
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	cfg.CompactVHT = true
	on, err := Run(s, leaderInputs(n), cfg, RunOptions{})
	if err != nil {
		t.Fatalf("compacted: %v", err)
	}
	if on.N != off.N || on.Stats.Rounds != off.Stats.Rounds || on.Stats.Levels != off.Stats.Levels {
		t.Fatalf("run changed: n %d→%d rounds %d→%d levels %d→%d",
			off.N, on.N, off.Stats.Rounds, on.Stats.Rounds, off.Stats.Levels, on.Stats.Levels)
	}
	for in, c := range off.Multiset {
		if on.Multiset[in] != c {
			t.Fatalf("multiset differs at %+v: %d vs %d", in, on.Multiset[in], c)
		}
	}
	if on.Stats.CompactedLevels == 0 {
		t.Fatalf("compaction never engaged on a %d-level run: %+v", on.Stats.Levels, on.Stats)
	}
}

// TestCompactVHTPeakReduction pins the O(active view) claim at in-repo
// scale: a deep leader run on a static path (≈ n levels, late levels ≈ n
// classes wide) must cut the peak resident node count at least 2×. The
// full ≥4× number at n=48 (1224 → 281 nodes) is recorded in
// EXPERIMENTS.md; the ratio grows with n because the uncompacted total is
// Θ(n²) while the compacted working set is ≈ (compactLag+2)·n.
func TestCompactVHTPeakReduction(t *testing.T) {
	const n = 24
	inputs := leaderInputs(n)
	s := dynnet.NewStatic(dynnet.Path(n))
	cfg := Config{Mode: ModeLeader, MaxLevels: 3*n + 6}
	off, err := Run(s, inputs, cfg, RunOptions{})
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	cfg.CompactVHT = true
	on, err := Run(s, inputs, cfg, RunOptions{})
	if err != nil {
		t.Fatalf("compacted: %v", err)
	}
	if ratio := float64(off.Stats.PeakResidentNodes) / float64(on.Stats.PeakResidentNodes); ratio < 2 {
		t.Fatalf("peak resident reduction %.2fx (peak %d → %d), want ≥ 2x",
			ratio, off.Stats.PeakResidentNodes, on.Stats.PeakResidentNodes)
	} else {
		t.Logf("peak resident nodes: %d → %d (%.1fx)",
			off.Stats.PeakResidentNodes, on.Stats.PeakResidentNodes, ratio)
	}
}

// TestCompactVHTRejectsFromScratch pins the Validate guard: the
// from-scratch solver re-reads released levels and must be refused.
func TestCompactVHTRejectsFromScratch(t *testing.T) {
	cfg := Config{Mode: ModeLeader, CompactVHT: true, FromScratchCount: true}
	err := cfg.Validate(leaderInputs(4))
	if err == nil {
		t.Fatal("Validate accepted CompactVHT + FromScratchCount")
	}
	if !strings.Contains(err.Error(), "CompactVHT") {
		t.Fatalf("error %q does not name CompactVHT", err)
	}
}
