package core

import (
	"cmp"
	"errors"
	"fmt"
	"slices"
	"time"

	"anondyn/internal/engine"
	"anondyn/internal/historytree"
	"anondyn/internal/wire"
)

// Process is one anonymous protocol participant. It holds the internal
// variables of Listing 1 and implements engine.Coroutine; its Run method is
// the Main function of Listing 2 plus the Section 5 extensions selected by
// the Config.
type Process struct {
	cfg   Config
	input historytree.Input
	rec   *Recorder

	// group, when non-nil, is the run's cross-process sharing group (see
	// share.go): vht, temp, and lg point into shared structures and every
	// structural mutation is funneled through the group's operation log.
	// member is this process's index in the group. A fork (divergence from
	// the shared log) clears group and the process continues on private
	// copies rebuilt by replay; forkedFrom remembers the group so the next
	// level reset — which rolls everyone back to an agreed snapshot — can
	// rejoin it.
	group      *shareGroup
	member     int
	forkedFrom *shareGroup

	tr transport
	// trEng is tr's concrete value when it is a plain *engine.Transport
	// (every run without the block simulation): the broadcast hot path
	// calls it directly, saving an interface dispatch per round per
	// process. nil under blockTransport, which falls back to tr.
	trEng *engine.Transport

	// rxBuf is the wire-message conversion scratch of sendAndReceive,
	// reused across rounds (see the validity-window note there); rxRaw is
	// the engine's last raw delivery slice, retained so boxFor can recycle
	// the received heap boxes at the next send (read strictly before the
	// next SendAndReceive, inside the engine's validity window).
	rxBuf []wire.Message
	rxRaw []engine.Message
	// txLast / txBoxed cache the last sent message and its heap box, so
	// re-broadcasting an unchanged message does not re-allocate (see
	// sendAndReceive); txCache is a small ring of recently created boxes
	// behind them, covering re-originated proposals across phases. Every
	// box is immutable once published (see boxFor), which is what lets
	// the broadcast loop thread bare pointers between rounds.
	txLast      wire.Message
	txBoxed     *wire.Message
	txCache     [4]txBox
	txCacheNext int

	// Internal variables (Listing 1).
	myID         int
	initialID    int
	nextFreshID  int
	vht          *historytree.Tree
	currentLevel int
	temp         *tempVHT
	lg           *levelGraph
	obsList      []obs
	diamEstimate int

	// Per-level scratch reused across constructLevel iterations and resets
	// (see resetLevelState): temp/lg always point at tempScratch/lgScratch
	// when set; idsScratch carries the previous level's node IDs; redScratch
	// backs appendPathRedEdges in updateVHT. All are valid only within the
	// level that filled them.
	tempScratch tempVHT
	lgScratch   levelGraph
	idsScratch  []int
	redScratch  []obs

	// claimed reports whether this process's input claim was accepted while
	// constructing level 0 (Generalized Counting / leaderless modes).
	claimed bool

	// snapshots[l] holds the agreed state at the begin of the construction
	// of level l, used by resets to restore it ("reverts its ID to the one
	// it had at the beginning of the construction of that level", Section
	// 3.7). Restoring NextFreshID the same way is required for Corollary
	// 4.3's agreement to survive resets; the brief announcement's
	// pseudocode leaves this implicit. The observation list and journal
	// length are used by the fine-grained reset of the "Optimized running
	// time" refinement.
	snapshots map[int]snapshot

	// journal is the ordered log of accepted messages (Edge, Done, Input),
	// agreed among non-error processes. Fine-grained resets rewind to a
	// journal index and replay.
	journal []journalEntry

	// resumeMidLevel is set by a fine-grained reset that rewound into the
	// middle of a level: the next constructLevel call must skip the level
	// setup (the begin-round state was restored from the snapshot).
	resumeMidLevel bool

	// pending is the leader's resolved-but-unconfirmed count (see
	// confirmation window discussion in mainLoop). Nil for non-leaders and
	// while unresolved.
	pending *pendingOutput

	// solver is the persistent incremental counting solver, kept across
	// constructLevel iterations so each level's balance equations are
	// eliminated exactly once; it watches the VHT's truncation generation
	// and rebuilds itself after resets. scratchStats mirrors its counters
	// when the FromScratchCount ablation bypasses it.
	solver       *historytree.Solver
	scratchStats historytree.SolverStats
}

// pendingOutput is a resolved count waiting out its confirmation window.
type pendingOutput struct {
	res           historytree.CountResult
	levels        int // VHT levels completed at resolution
	resolvedRound int // virtual round of resolution
	diamEstimate  int
}

// obs is one ObsList element: the pair (ID2, Mult) of Listing 4.
type obs struct {
	id2  int
	mult int
}

// txBox is one entry of the boxed-message ring cache (see boxFor).
type txBox struct {
	m   wire.Message
	box *wire.Message
}

type snapshot struct {
	myID        int
	nextFreshID int
	journalLen  int
	claimed     bool
	obsList     []obs
}

// journalEntry is one accepted message together with the level it was
// accepted for.
type journalEntry struct {
	msg   wire.Message
	level int
}

var _ engine.Coroutine = (*Process)(nil)

// NewProcess returns a protocol participant with the given input. The
// configuration must have been validated against the full input assignment
// via Config.Validate.
func NewProcess(cfg Config, input historytree.Input) *Process {
	return &Process{cfg: cfg, input: input, rec: cfg.Recorder}
}

// haltedError unwinds a process that learned n from a Halt message
// (Section 5 simultaneous termination). It is converted into a normal
// Outcome by Run.
type haltedError struct {
	n     int
	round int
}

func (e *haltedError) Error() string {
	return fmt.Sprintf("core: halted with n=%d at round %d", e.n, e.round)
}

// Run implements engine.Coroutine.
func (p *Process) Run(tr *engine.Transport) (any, error) {
	out, err := p.run(tr)
	var h *haltedError
	if errors.As(err, &h) {
		return &Outcome{
			N:                 h.n,
			Levels:            p.currentLevel,
			FinalDiamEstimate: p.diamEstimate,
			FinalRound:        h.round,
			Solver:            p.solverStats(),
		}, nil
	}
	return out, err
}

func (p *Process) run(tr transport) (any, error) {
	if t := p.cfg.blockT(); t > 1 {
		tr = &blockTransport{inner: tr, t: t}
	}
	p.tr = tr
	if p.group != nil {
		// Release this member's compaction constraint on exit, whether it
		// terminated or was unwound by the engine. Re-read p.group at exit
		// time: a fork clears it.
		member := p.member
		g := p.group
		defer func() {
			if p.group != nil {
				g.leave(member)
			}
		}()
	}
	p.trEng, _ = tr.(*engine.Transport)
	p.initialize()
	if p.cfg.Mode == ModeLeaderless {
		return p.mainLoopLeaderless()
	}
	return p.mainLoop()
}

// initialize is InitializeVariables (Listing 1).
func (p *Process) initialize() {
	p.myID = 1
	if p.input.Leader {
		p.myID = 0
	}
	p.initialID = p.myID
	p.nextFreshID = 2
	p.solver = historytree.NewSolverWith(p.cfg.Arithmetic)
	p.snapshots = make(map[int]snapshot)
	p.diamEstimate = 1
	if p.cfg.Mode == ModeLeaderless {
		p.diamEstimate = p.cfg.DiamBound
	}
	if p.group != nil {
		// Shared mode: the group pre-built the initial tree (including the
		// basic-mode level-0 partition below).
		p.vht = p.group.tree
	} else {
		p.vht = historytree.New()
	}
	if p.cfg.buildsInputLevel() {
		// Level 0 is constructed from inputs (Section 5); the VHT starts
		// with the root only and the initial IDs 0/1 are placeholders.
		p.currentLevel = 0
		return
	}
	// Basic mode: level 0 is the pre-agreed {leader, non-leader} partition.
	if p.group == nil {
		if _, err := p.vht.AddChild(0, p.vht.Root(), historytree.Input{Leader: true}); err != nil {
			panic(err) // fresh tree; cannot fail
		}
		if _, err := p.vht.AddChild(1, p.vht.Root(), historytree.Input{}); err != nil {
			panic(err)
		}
	}
	p.currentLevel = 1
}

// mainLoop is Main (Listing 2) for leader mode. Non-leader processes loop
// until cancelled by the engine (basic mode) or halted (SimultaneousHalt).
//
// Confirmation window. The paper's CountFromView black box (FOCS 2022) is
// never wrong even on views with classes missing; this reproduction's
// solver instead assumes complete levels, which can be violated when a
// process enters an error phase during the very level the leader resolves
// on — before its Error message has had time to travel. The window closes
// that gap: a resolved count n̂ is withheld for n̂ further (virtual) rounds
// while construction continues. Error messages outrank everything and
// spread to at least one new process per round in a connected network, so
// any error born before resolution reaches the leader within n-1 < n̂+1
// rounds (whenever n̂ ≥ n-1), voiding the resolution via the normal reset
// path; the level is then rebuilt with the erring processes included and
// recounted. See DESIGN.md §5 for the residual-fidelity discussion.
func (p *Process) mainLoop() (any, error) {
	for {
		if p.cfg.MaxLevels > 0 && p.currentLevel > p.cfg.MaxLevels {
			return nil, fmt.Errorf("core: VHT exceeded %d levels without terminating", p.cfg.MaxLevels)
		}
		ctl, err := p.constructLevel()
		if err != nil {
			return nil, err
		}
		switch ctl {
		case levelRestart:
			// "goto Line 7": an error voided the in-flight work, and any
			// pending resolution with it (the reset may rewind levels the
			// count depended on; a fresh resolution follows the rebuild).
			p.pending = nil
			continue
		case levelOutput:
			return p.emitPending()
		}
		p.rec.noteLevelDone(p.currentLevel, p.tr.PID(), p.myID)
		if p.input.Leader && p.pending == nil {
			res, err := p.countNow()
			if err != nil {
				return nil, err
			}
			if res.Known && p.vhtCompleteNow() {
				p.pending = &pendingOutput{
					res:           res,
					levels:        p.currentLevel,
					resolvedRound: p.tr.Round(),
					diamEstimate:  p.diamEstimate,
				}
				if p.cfg.EagerTermination {
					return p.emitPending()
				}
			}
		}
		if p.outputDue() {
			return p.emitPending()
		}
		p.maybeCompact()
		p.currentLevel++
	}
}

// compactLag is the number of completed levels kept live behind the
// construction frontier when CompactVHT is on. The protocol itself only
// re-reads the previous level (setUpNewLevel) and level 0 (acceptInput,
// answer extraction), so the lag exists purely as reset headroom in
// leader mode; a reset that outruns it aborts with a structured error
// (see performLevelReset). Late levels carry up to n classes each, so the
// lag directly bounds resident memory at ≈ (lag+2)·n nodes — small enough
// for the ≥4× reduction on deep runs, large enough that resets (which
// target the level in construction or one just voided) stay inside it.
const compactLag = 4

// maybeCompact releases consumed history levels once they are compactLag
// levels behind the construction frontier. Counting processes (the leader,
// every leaderless process) additionally stay behind the solver's
// consumption frontier, so its recorded replay skeleton always covers the
// released region; non-leaders in leader mode never count and rely on the
// lag alone.
func (p *Process) maybeCompact() {
	if !p.cfg.CompactVHT {
		return
	}
	keep := p.currentLevel - compactLag
	if p.input.Leader || p.cfg.Mode == ModeLeaderless {
		keep = min(keep, p.solver.ConsumedLevel())
	}
	if g := p.group; g != nil {
		// Shared tree: compact to the minimum over every active member's
		// bound, so no member's solver (or reset headroom) is outrun.
		// CompactLevels no-ops on bounds it already covers, so repeated
		// calls at the same level are free.
		g.mu.Lock()
		g.keeps[p.member] = keep
		if k := g.minKeepLocked(); k > 1 {
			g.tree.CompactLevels(k)
		}
		g.mu.Unlock()
		return
	}
	if keep > 1 {
		p.vht.CompactLevels(keep)
	}
}

// outputDue reports whether the pending count has survived its
// confirmation window.
func (p *Process) outputDue() bool {
	return p.pending != nil && p.tr.Round() >= p.pending.resolvedRound+p.pending.res.N
}

// emitPending turns the confirmed pending count into the process output
// (or the Halt broadcast under SimultaneousHalt).
func (p *Process) emitPending() (any, error) {
	pd := p.pending
	if p.cfg.SimultaneousHalt {
		return nil, p.initiateHalt(pd.res.N)
	}
	return &Outcome{
		N:                 pd.res.N,
		Multiset:          pd.res.Multiset,
		VHT:               p.vht,
		Levels:            pd.levels,
		FinalDiamEstimate: pd.diamEstimate,
		FinalRound:        p.tr.Round(),
		Solver:            p.solverStats(),
	}, nil
}

// countNow evaluates the cardinality solver after a completed level,
// through the persistent incremental Solver or, under the FromScratchCount
// ablation, the reference implementation (timed for comparability).
func (p *Process) countNow() (historytree.CountResult, error) {
	if g := p.group; g != nil {
		// The solver memoizes balance pairs on the tree and the level graph
		// compresses paths on lookup: "reads" of shared state mutate it.
		g.mu.Lock()
		defer g.mu.Unlock()
	}
	if !p.cfg.FromScratchCount {
		return p.solver.CountAt(p.vht, p.currentLevel)
	}
	start := time.Now()
	res, err := historytree.CountWith(p.vht, p.currentLevel, p.cfg.Arithmetic)
	p.scratchStats.Calls++
	p.scratchStats.SolveTime += time.Since(start)
	return res, err
}

// frequenciesNow is countNow's leaderless counterpart.
func (p *Process) frequenciesNow() (historytree.FrequencyResult, error) {
	if g := p.group; g != nil {
		g.mu.Lock()
		defer g.mu.Unlock()
	}
	if !p.cfg.FromScratchCount {
		return p.solver.FrequenciesAt(p.vht, p.currentLevel)
	}
	start := time.Now()
	res, err := historytree.FrequenciesWith(p.vht, p.currentLevel, p.cfg.Arithmetic)
	p.scratchStats.Calls++
	p.scratchStats.SolveTime += time.Since(start)
	return res, err
}

// solverStats returns the counting work this process has done.
func (p *Process) solverStats() historytree.SolverStats {
	if p.cfg.FromScratchCount {
		return p.scratchStats
	}
	if p.solver == nil {
		return historytree.SolverStats{}
	}
	return p.solver.Stats()
}

// vhtComplete performs the structural completeness check: every node of a
// level ≥ 1 was created by an accepted Done message, so it represents at
// least one live process — in a genuine history tree that class persists
// to every deeper level. A childless interior node therefore proves its
// processes vanished into an error phase and the count cannot be trusted
// yet. (A childless level-0 node is legitimate: the pre-agreed non-leader
// class of Listing 1 is empty when n = 1.)
func vhtComplete(t *historytree.Tree, levels int) bool {
	for l := 1; l < levels; l++ {
		for _, v := range t.Level(l) {
			if len(v.Children) == 0 {
				return false
			}
		}
	}
	return true
}

// vhtCompleteNow is vhtComplete on the process's tree, holding the group
// lock when the tree is shared (another member's error phase may lag the
// group, so its applyAccepted can be in flight).
func (p *Process) vhtCompleteNow() bool {
	if g := p.group; g != nil {
		g.mu.Lock()
		defer g.mu.Unlock()
	}
	return vhtComplete(p.vht, p.currentLevel)
}

// vhtHasNode reports whether the process's tree has a node with the given
// ID, holding the group lock when the tree is shared.
func (p *Process) vhtHasNode(id int) bool {
	if g := p.group; g != nil {
		g.mu.Lock()
		defer g.mu.Unlock()
	}
	return p.vht.NodeByID(id) != nil
}

// mainLoopLeaderless is the Section 5 leaderless algorithm: reliable
// D-round broadcasts, no acknowledgments or resets; every process holds the
// same VHT and evaluates the frequency solver locally after each level, so
// all terminate simultaneously.
func (p *Process) mainLoopLeaderless() (any, error) {
	for {
		if p.cfg.MaxLevels > 0 && p.currentLevel > p.cfg.MaxLevels {
			return nil, fmt.Errorf("core: VHT exceeded %d levels without terminating", p.cfg.MaxLevels)
		}
		ctl, err := p.constructLevel()
		if err != nil {
			return nil, err
		}
		if ctl != levelDone {
			return nil, fmt.Errorf("core: leaderless run requested a restart (diameter bound %d too small?)",
				p.cfg.DiamBound)
		}
		p.rec.noteLevelDone(p.currentLevel, p.tr.PID(), p.myID)
		freq, err := p.frequenciesNow()
		if err != nil {
			return nil, err
		}
		if freq.Known {
			return &Outcome{
				Frequencies:       &freq,
				VHT:               p.vht,
				Levels:            p.currentLevel,
				FinalDiamEstimate: p.diamEstimate,
				FinalRound:        p.tr.Round(),
				Solver:            p.solverStats(),
			}, nil
		}
		p.maybeCompact()
		p.currentLevel++
	}
}

// levelControl is the outcome of constructLevel.
type levelControl int

const (
	// levelDone: the level completed normally (End accepted).
	levelDone levelControl = iota + 1
	// levelRestart: an error or reset interrupted the work; re-enter at
	// the (possibly reset) current level.
	levelRestart
	// levelOutput: the leader's pending count survived its confirmation
	// window mid-level; emit it.
	levelOutput
)

// constructLevel builds one VHT level: the body of the main loop of
// Listing 2 (level setup, then repeated VHT + acknowledgment broadcasts
// until a Level-end message is accepted).
func (p *Process) constructLevel() (levelControl, error) {
	inputLevel := p.cfg.buildsInputLevel() && p.currentLevel == 0
	switch {
	case p.resumeMidLevel:
		// A fine-grained reset restored the mid-level state; skip setup.
		p.resumeMidLevel = false
	case inputLevel:
		p.snapshots[0] = snapshot{
			myID:        p.myID,
			nextFreshID: p.nextFreshID,
			journalLen:  len(p.journal),
			claimed:     p.claimed,
		}
	default:
		// Listing 2 lines 7–9: redo the level setup after an error. The
		// restart is reported to the main loop, which re-enters at the
		// (possibly reset) current level, re-dispatching on its kind.
		r, err := p.setUpNewLevel()
		if err != nil {
			return levelDone, err
		}
		if r {
			return levelRestart, nil
		}
	}

	for {
		if p.outputDue() {
			return levelOutput, nil
		}
		var orig wire.Message
		if p.cfg.buildsInputLevel() && p.currentLevel == 0 {
			orig = p.makeInputMessage()
		} else {
			orig = p.makeVHTMessage()
		}
		accepted, restart, err := p.acceptedMessage(orig)
		if err != nil {
			return levelDone, err
		}
		if restart {
			return levelRestart, nil
		}
		// Every acceptance is journaled — including the Level-end message.
		// Journaling the End is what makes fine-grained reset indices
		// unambiguous at level boundaries: "rewind to index i" must mean
		// the same state (End pending vs. next level begun) to every
		// process, or processes that missed the End acceptance desync.
		p.journal = append(p.journal, journalEntry{msg: accepted, level: p.currentLevel})
		if accepted.Label == wire.LabelEnd {
			return levelDone, nil
		}
		if err := p.applyAccepted(accepted, true); err != nil {
			return levelDone, err
		}
	}
}

// applyAccepted applies an accepted Edge, Done, or Input message to the
// process state. It is shared by the live path (record=true) and by the
// journal replay of fine-grained resets (record=false).
//
// Under sharing, the whole message is one critical section — not each
// operation. A coarser lock is required for correctness, not just
// simplicity: a member verifying the first pair of a batch must not observe
// a state where another member has already applied later pairs the
// verifier's own private bookkeeping (ID adoption, observation pruning)
// has not caught up with.
func (p *Process) applyAccepted(accepted wire.Message, record bool) error {
	if g := p.group; g != nil {
		g.mu.Lock()
		defer g.mu.Unlock() // g stays valid even if a fork clears p.group
	}
	switch accepted.Label {
	case wire.LabelEdge, wire.LabelEdgeBatch:
		if record && p.recordPrimary() {
			p.rec.noteAccepted(acceptEdge)
		}
		if err := p.updateTempVHT(int(accepted.A), int(accepted.B), int(accepted.C)); err != nil {
			return err
		}
		// Batched follow-up pairs (Section 6 tradeoff) chain onto the
		// temporary node each preceding pair created; its fresh ID is
		// agreed by all processes, so the chain is unambiguous.
		pairs, err := accepted.ExtPairs()
		if err != nil {
			return err
		}
		for _, pr := range pairs {
			chainID := p.nextFreshID - 1
			if err := p.updateTempVHT(chainID, int(pr.ID2), int(pr.Mult)); err != nil {
				return err
			}
		}
		return nil
	case wire.LabelDone:
		if record && p.recordPrimary() {
			p.rec.noteAccepted(acceptDone)
		}
		return p.updateVHT(int(accepted.A))
	case wire.LabelInput:
		if record && p.recordPrimary() {
			p.rec.noteAccepted(acceptInput)
		}
		return p.acceptInput(accepted)
	default:
		return fmt.Errorf("core: unexpected accepted message %s", accepted)
	}
}

// acceptedMessage performs the VHT broadcast phase and, in leader mode, the
// acknowledgment phase (Listing 2 lines 10–23). It returns the accepted
// message, or restart=true when an error or reset interrupted the exchange.
func (p *Process) acceptedMessage(orig wire.Message) (wire.Message, bool, error) {
	vhtMsg, restart, err := p.broadcastPhase(orig)
	if err != nil || restart {
		return vhtMsg, restart, err
	}
	if p.cfg.Mode == ModeLeaderless {
		// Reliable broadcast: the result is the accepted message.
		return vhtMsg, false, nil
	}
	var ack wire.Message
	if p.input.Leader {
		ack, restart, err = p.broadcastPhase(vhtMsg)
	} else {
		ack, restart, err = p.broadcastPhase(wire.Null())
	}
	if err != nil || restart {
		return ack, restart, err
	}
	if ack != vhtMsg {
		// Faulty broadcast detected (Listing 2 lines 21–23).
		if err := p.enterErrorPhase(p.detectTarget()); err != nil {
			return ack, false, err
		}
		return ack, true, nil
	}
	return ack, false, nil
}

// initiateHalt implements the Section 5 simultaneous-termination protocol
// from the leader's side: broadcast Halt(n, c) and keep forwarding until
// round c+n, then halt.
func (p *Process) initiateHalt(n int) error {
	return p.haltForward(wire.Halt(int64(n), int64(p.tr.Round())))
}

// haltForward forwards a received (or just created) Halt message until
// round c+n and then unwinds with a haltedError carrying the result.
func (p *Process) haltForward(m wire.Message) error {
	final := int(m.A + m.B) // n + starting round
	for p.tr.Round() < final {
		if _, err := p.sendAndReceive(m); err != nil {
			return err
		}
	}
	return &haltedError{n: int(m.A), round: p.tr.Round()}
}

// sortMessages orders a received multiset canonically (by label band then
// parameters) so iteration order never depends on engine delivery order.
// slices.SortFunc rather than sort.Slice: the generic sort swaps directly
// instead of building a reflect-based swapper, which matters (and saves an
// allocation) on a per-round sort of a dozen messages.
func sortMessages(msgs []wire.Message) {
	slices.SortFunc(msgs, func(a, b wire.Message) int {
		if a.Label != b.Label {
			return int(a.Label) - int(b.Label)
		}
		if a.A != b.A {
			return cmp.Compare(a.A, b.A)
		}
		if a.B != b.B {
			return cmp.Compare(a.B, b.B)
		}
		return cmp.Compare(a.C, b.C)
	})
}
