// Package core implements the paper's contribution: deterministic Counting
// (and Generalized Counting) for congested anonymous dynamic networks, by
// distributed construction of a virtual history tree (VHT).
//
// The implementation transcribes Listings 1–6 of the paper: temporary IDs,
// per-level observation lists, a temporary VHT and auxiliary level graph, a
// priority-based token-forwarding broadcast with leader acknowledgments,
// and the self-stabilizing error/reset machinery with doubling diameter
// estimates. The Section 5 extensions are included: Generalized Counting
// via an input-built level 0, simultaneous termination via Halt messages,
// leaderless computation with a known dynamic-diameter bound, and
// T-union-connected networks via block simulation.
package core

import "anondyn/internal/wire"

// band is the coarse priority class of a message label, per Section 3.2:
//
//	Null < Begin < End < Done < Edge/Input << Error/Reset << Halt
//
// Error and Reset messages interleave by level inside their shared band;
// Halt (Section 5's termination broadcast) outranks everything.
func band(l wire.Label) int {
	switch l {
	case wire.LabelNull:
		return 0
	case wire.LabelBegin:
		return 1
	case wire.LabelEnd:
		return 2
	case wire.LabelDone:
		return 3
	case wire.LabelEdge, wire.LabelEdgeBatch:
		return 4
	case wire.LabelInput:
		return 5
	case wire.LabelError, wire.LabelReset:
		return 6
	case wire.LabelHalt:
		return 7
	default:
		return -1
	}
}

// Compare returns -1, 0, or +1 as the priority of a is lower than, equal
// to, or higher than that of b. The order is the paper's total preorder:
//
//   - Distinct labels compare by band.
//   - Begin, End, Null and Halt messages within their band compare equal
//     regardless of parameters (Begin priority "is independent of its
//     parameter").
//   - Done messages: smaller ID ⇒ higher priority (any agreed total order
//     works; the paper's 2 + 1/ID formula is likewise decreasing in ID).
//   - Edge messages: lexicographically smaller (ID1, ID2, Mult) ⇒ higher
//     priority, matching the monotonicity of 1/(2^ID1·3^ID2·5^Mult).
//   - Input messages: lexicographically smaller (ID, value, leader) ⇒
//     higher priority.
//   - Error/Reset: an Error with level k sits strictly between Reset k+1
//     and Reset k; smaller levels have higher priority. This is realized by
//     the score 2k for Reset k and 2k+1 for Error k, smaller score winning.
func Compare(a, b wire.Message) int {
	ba, bb := band(a.Label), band(b.Label)
	if ba != bb {
		return sign(ba - bb)
	}
	switch a.Label {
	case wire.LabelNull, wire.LabelBegin, wire.LabelEnd, wire.LabelHalt:
		return 0
	case wire.LabelDone:
		// Smaller ID wins.
		return sign64(b.A - a.A)
	case wire.LabelEdge, wire.LabelEdgeBatch, wire.LabelInput:
		if a.A != b.A {
			return sign64(b.A - a.A)
		}
		if a.B != b.B {
			return sign64(b.B - a.B)
		}
		if a.C != b.C {
			return sign64(b.C - a.C)
		}
		// Batched edges (Section 6 tradeoff): identical leading triplets
		// tie-break on the batch payload; lexicographically smaller wins.
		switch {
		case a.Ext < b.Ext:
			return 1
		case a.Ext > b.Ext:
			return -1
		default:
			return 0
		}
	case wire.LabelError, wire.LabelReset:
		return sign64(errResetScore(b) - errResetScore(a))
	default:
		return 0
	}
}

// errResetScore maps Error/Reset messages to the interleaved score where a
// smaller score means higher priority.
func errResetScore(m wire.Message) int64 {
	if m.Label == wire.LabelReset {
		return 2 * m.A
	}
	return 2*m.A + 1
}

// Higher reports whether a has strictly higher priority than b. It is the
// test used by BroadcastStep (Listing 3 line 24): a received message
// replaces the held one only when strictly greater.
func Higher(a, b wire.Message) bool { return Compare(a, b) > 0 }

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	default:
		return 0
	}
}

func sign64(x int64) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	default:
		return 0
	}
}
