package core

import (
	"testing"

	"anondyn/internal/dynnet"
	"anondyn/internal/historytree"
)

// leaderInputs returns n inputs with process 0 flagged as the leader.
func leaderInputs(n int) []historytree.Input {
	in := make([]historytree.Input, n)
	if n > 0 {
		in[0].Leader = true
	}
	return in
}

func TestCountingStaticTopologies(t *testing.T) {
	tests := []struct {
		name  string
		n     int
		graph func(n int) *dynnet.Multigraph
	}{
		{name: "single", n: 1, graph: dynnet.Complete},
		{name: "pair", n: 2, graph: dynnet.Path},
		{name: "path4", n: 4, graph: dynnet.Path},
		{name: "path7", n: 7, graph: dynnet.Path},
		{name: "cycle6", n: 6, graph: dynnet.Cycle},
		{name: "complete5", n: 5, graph: dynnet.Complete},
		{name: "star6", n: 6, graph: func(n int) *dynnet.Multigraph { return dynnet.Star(n, 2) }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := dynnet.NewStatic(tt.graph(tt.n))
			res, err := Run(s, leaderInputs(tt.n), Config{Mode: ModeLeader, MaxLevels: 3*tt.n + 5}, RunOptions{})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if res.N != tt.n {
				t.Fatalf("counted n=%d, want %d (levels=%d rounds=%d resets=%d)",
					res.N, tt.n, res.Stats.Levels, res.Stats.Rounds, res.Stats.Resets)
			}
			if err := res.VHT.Validate(); err != nil {
				t.Errorf("VHT invalid: %v", err)
			}
			t.Logf("n=%d rounds=%d levels=%d resets=%d finalDiam=%d maxBits=%d",
				tt.n, res.Stats.Rounds, res.Stats.Levels, res.Stats.Resets,
				res.Stats.FinalDiamEstimate, res.Stats.MaxMessageBits)
		})
	}
}

func TestCountingDynamicSchedules(t *testing.T) {
	schedules := []struct {
		name string
		mk   func(n int) dynnet.Schedule
	}{
		{name: "random", mk: func(n int) dynnet.Schedule { return dynnet.NewRandomConnected(n, 0.3, 11) }},
		{name: "rotating-star", mk: func(n int) dynnet.Schedule { return dynnet.NewRotatingStar(n) }},
		{name: "shifting-path", mk: func(n int) dynnet.Schedule { return dynnet.NewShiftingPath(n) }},
		{name: "bottleneck", mk: func(n int) dynnet.Schedule { return dynnet.NewBottleneck(n) }},
	}
	for _, tt := range schedules {
		for _, n := range []int{3, 5, 7} {
			s := tt.mk(n)
			res, err := Run(s, leaderInputs(n), Config{Mode: ModeLeader, MaxLevels: 3*n + 5}, RunOptions{})
			if err != nil {
				t.Fatalf("%s n=%d: %v", tt.name, n, err)
			}
			if res.N != n {
				t.Fatalf("%s n=%d: counted %d", tt.name, n, res.N)
			}
		}
	}
}
