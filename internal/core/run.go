package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"anondyn/internal/dynnet"
	"anondyn/internal/engine"
	"anondyn/internal/historytree"
)

// RunStats aggregates engine- and protocol-level measurements of one run.
type RunStats struct {
	// Rounds is the number of real communication rounds executed.
	Rounds int
	// MaxMessageBits is the largest message observed on any link.
	MaxMessageBits int
	// TotalMessages and TotalBits accumulate over the whole run.
	TotalMessages int64
	TotalBits     int64
	// Resets is the number of leader-initiated reset phases.
	Resets int
	// FinalDiamEstimate is the deciding process's diameter estimate at
	// termination.
	FinalDiamEstimate int
	// Levels is the number of VHT levels completed when the answer was
	// produced.
	Levels int
	// WallClock is the real time the whole run took, engine included.
	WallClock time.Duration
	// SolverTime is the time the deciding process spent inside the
	// cardinality solver, and SolverCalls its number of solver
	// invocations; together with WallClock they show where a run's time
	// goes (see the perf appendix of EXPERIMENTS.md).
	SolverTime  time.Duration
	SolverCalls int
	// Multi-modular backend counters of the deciding process's solver
	// (all zero under Arithmetic: historytree.ArithBig): the battery size
	// reached, CRT ray reconstructions, unlucky-prime evictions, and
	// fallbacks to the big.Int exactness witness.
	SolverPrimes       int
	SolverCRTRecons    int
	SolverEvictions    int
	SolverWitnessFalls int
	// Cross-process structural-sharing counters (all zero when sharing is
	// off — PrivateVHT, single-process runs, FineGrainedReset):
	// SharedApplies is the number of structural operations applied to the
	// shared state (each the collapse of what was previously n identical
	// applications), SharedHits the number of O(1) log verifications that
	// replaced them, and SharedForks the number of processes that diverged
	// out-of-model and went copy-on-write private.
	SharedApplies int64
	SharedHits    int64
	SharedForks   int
	// History-tree residency counters of the deciding process (all zero
	// when its tree was discarded, e.g. Halt mid-level): CompactedLevels is
	// the deepest level released by CompactVHT compaction, CompactedNodes
	// the total nodes released, ResidentNodes the nodes still live at
	// termination, and PeakResidentNodes the lifetime high-water mark — the
	// number the O(active view) memory claim is about.
	CompactedLevels   int
	CompactedNodes    int
	ResidentNodes     int
	PeakResidentNodes int
}

// RunResult is the outcome of a complete protocol run.
type RunResult struct {
	// N is the computed process count (leader mode).
	N int
	// Multiset is the Generalized Counting answer (leader mode; the
	// trivial {leader:1, other:n-1} partition in basic mode).
	Multiset map[historytree.Input]int
	// Frequencies is the leaderless answer (nil in leader mode).
	Frequencies *historytree.FrequencyResult
	// VHT is the deciding process's virtual history tree.
	VHT *historytree.Tree
	// Outputs holds every process's Outcome, keyed by engine index.
	Outputs map[int]*Outcome
	// Stats carries the run's measurements.
	Stats RunStats
}

// RunOptions bundles the engine-level knobs of Run.
type RunOptions struct {
	// Ctx, if non-nil, cancels the run externally: when it is done, the
	// engine stops every process goroutine promptly (no goroutines leak)
	// and Run returns an error wrapping the context's cause. Nil means no
	// external cancellation (context.Background()).
	Ctx context.Context
	// MaxRounds caps the run; 0 derives a generous default from n and the
	// configuration (≈ 400·T·n³·log n real rounds plus slack).
	MaxRounds int
	// Deadline, when positive, arms the engine watchdog: a run still
	// active after this wall-clock duration is stopped with a structured
	// *engine.WatchdogError (errors.Is engine.ErrWatchdog) instead of
	// hanging. Zero means no watchdog. See engine.Config.Deadline.
	Deadline time.Duration
	// BitLimit, when positive, aborts the run if any message exceeds it
	// (congestion enforcement).
	BitLimit int
	// Trace, if non-nil, observes every round's sent messages (see
	// internal/trace for a ready-made logger).
	Trace func(round int, sent []engine.Message)
	// Scheduler selects the engine's execution strategy. The zero value is
	// engine.SchedulerSequential, the direct-execution default;
	// engine.SchedulerParallel shards the process ring across GOMAXPROCS
	// workers with a two-phase barrier (same Result and Trace, less wall
	// clock on multi-core hosts); engine.SchedulerConcurrent runs every
	// process on its own goroutine (slower, kept for the equivalence
	// contract and race coverage).
	Scheduler engine.Scheduler
}

// Run executes the configured protocol over the schedule with the given
// inputs and returns the collected result. It validates the configuration,
// wires a Recorder if none was supplied, and verifies cross-process
// agreement on the answer before returning.
func Run(s dynnet.Schedule, inputs []historytree.Input, cfg Config, opts RunOptions) (*RunResult, error) {
	return run(engine.Config{Schedule: s}, s.N(), inputs, cfg, opts)
}

// RunAdaptive is Run against a reactive (strongly adaptive) adversary that
// chooses each round's multigraph after seeing the messages in flight.
func RunAdaptive(a engine.AdaptiveSchedule, inputs []historytree.Input, cfg Config, opts RunOptions) (*RunResult, error) {
	return run(engine.Config{Adaptive: a}, a.N(), inputs, cfg, opts)
}

func run(ecfg engine.Config, n int, inputs []historytree.Input, cfg Config, opts RunOptions) (*RunResult, error) {
	if err := cfg.Validate(inputs); err != nil {
		return nil, err
	}
	if len(inputs) != n {
		return nil, fmt.Errorf("core: %d inputs for %d processes", len(inputs), n)
	}
	if cfg.Recorder == nil {
		cfg.Recorder = NewRecorder()
	}

	procs := make([]engine.Coroutine, n)
	leaderPID := -1
	var grp *shareGroup
	if n > 1 && !cfg.PrivateVHT && !cfg.FineGrainedReset {
		grp = newShareGroup(cfg, n)
	}
	for i, in := range inputs {
		pr := NewProcess(cfg, in)
		if grp != nil {
			pr.group, pr.member = grp, i
		}
		procs[i] = pr
		if in.Leader {
			leaderPID = i
		}
	}

	ecfg.MaxRounds = opts.MaxRounds
	if ecfg.MaxRounds <= 0 {
		ecfg.MaxRounds = defaultMaxRounds(n, cfg)
	}
	ecfg.Deadline = opts.Deadline
	ecfg.SizeOf = newSizeMemo()
	ecfg.BitLimit = opts.BitLimit
	ecfg.Trace = opts.Trace
	ecfg.Scheduler = opts.Scheduler
	if cfg.Mode == ModeLeader && !cfg.SimultaneousHalt {
		// Basic contract: the run is over once the leader has output n.
		ecfg.StopWhen = func(outputs map[int]any) bool {
			_, ok := outputs[leaderPID]
			return ok
		}
	}

	ctx := opts.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	started := time.Now()
	res, err := engine.RunContext(ctx, ecfg, procs)
	if err != nil {
		return nil, err
	}
	wall := time.Since(started)

	out := &RunResult{
		Outputs: make(map[int]*Outcome, len(res.Outputs)),
		Stats: RunStats{
			Rounds:         res.Rounds,
			MaxMessageBits: res.MaxMessageBits,
			TotalMessages:  res.TotalMessages,
			TotalBits:      res.TotalBits,
			Resets:         cfg.Recorder.Resets(),
			WallClock:      wall,
		},
	}
	if grp != nil {
		out.Stats.SharedApplies, out.Stats.SharedHits, out.Stats.SharedForks = grp.statsSnapshot()
	}
	for pid, o := range res.Outputs {
		oc, ok := o.(*Outcome)
		if !ok {
			return nil, fmt.Errorf("core: process %d produced unexpected output %T", pid, o)
		}
		out.Outputs[pid] = oc
	}

	switch cfg.Mode {
	case ModeLeader:
		leaderOut, ok := out.Outputs[leaderPID]
		if !ok {
			return nil, errors.New("core: leader produced no output")
		}
		out.N = leaderOut.N
		out.Multiset = leaderOut.Multiset
		out.VHT = leaderOut.VHT
		out.Stats.Levels = leaderOut.Levels
		out.Stats.FinalDiamEstimate = leaderOut.FinalDiamEstimate
		out.Stats.absorbSolver(leaderOut.Solver)
		out.Stats.absorbTree(leaderOut.VHT)
		if cfg.SimultaneousHalt {
			if err := checkSimultaneous(out.Outputs, n, leaderOut.N); err != nil {
				return nil, err
			}
			// Under SimultaneousHalt the leader also halts via the Halt
			// broadcast and reports no tree; keep the stats meaningful.
			out.Stats.Levels = maxLevels(out.Outputs)
		}
	case ModeLeaderless:
		if len(out.Outputs) != n {
			return nil, fmt.Errorf("core: %d of %d leaderless processes produced output", len(out.Outputs), n)
		}
		var first *Outcome
		for _, oc := range out.Outputs {
			if first == nil {
				first = oc
				continue
			}
			if !sameFrequencies(first.Frequencies, oc.Frequencies) {
				return nil, errors.New("core: leaderless processes disagree on frequencies")
			}
			if first.FinalRound != oc.FinalRound {
				return nil, fmt.Errorf("core: leaderless termination rounds differ: %d vs %d",
					first.FinalRound, oc.FinalRound)
			}
		}
		out.Frequencies = first.Frequencies
		out.VHT = first.VHT
		out.Stats.Levels = first.Levels
		out.Stats.FinalDiamEstimate = first.FinalDiamEstimate
		out.Stats.absorbSolver(first.Solver)
		out.Stats.absorbTree(first.VHT)
	}
	return out, nil
}

// absorbSolver copies the deciding process's solver counters into the
// run's stats.
func (st *RunStats) absorbSolver(s historytree.SolverStats) {
	st.SolverTime = s.SolveTime
	st.SolverCalls = s.Calls
	st.SolverPrimes = s.PrimesUsed
	st.SolverCRTRecons = s.CRTReconstructions
	st.SolverEvictions = s.UnluckyEvictions
	st.SolverWitnessFalls = s.WitnessFallbacks
}

// absorbTree copies the deciding process's history-tree residency
// counters into the run's stats. The tree is nil when the process halted
// mid-level (SimultaneousHalt); the counters then stay zero.
func (st *RunStats) absorbTree(t *historytree.Tree) {
	if t == nil {
		return
	}
	st.CompactedLevels = t.CompactedLevels()
	st.CompactedNodes = t.CompactedNodes()
	st.ResidentNodes = t.NumNodes()
	st.PeakResidentNodes = t.PeakResidentNodes()
}

// defaultMaxRounds derives a generous safety cap: the paper's bound is
// O(T·n³ log n) rounds for the basic algorithm.
func defaultMaxRounds(n int, cfg Config) int {
	t := cfg.blockT()
	nn := n
	if nn < 2 {
		nn = 2
	}
	log := 1
	for v := nn; v > 1; v >>= 1 {
		log++
	}
	base := 400 * nn * nn * nn * log
	if cfg.Mode == ModeLeaderless {
		base = 40 * cfg.DiamBound * nn * nn
	}
	return t*base + 10000
}

// checkSimultaneous verifies the Section 5 termination contract: every
// process output the same n at the same round.
func checkSimultaneous(outputs map[int]*Outcome, n, wantN int) error {
	if len(outputs) != n {
		return fmt.Errorf("core: %d of %d processes terminated", len(outputs), n)
	}
	round := -1
	for pid, oc := range outputs {
		if oc.N != wantN {
			return fmt.Errorf("core: process %d output n=%d, leader said %d", pid, oc.N, wantN)
		}
		if round < 0 {
			round = oc.FinalRound
		} else if oc.FinalRound != round {
			return fmt.Errorf("core: process %d terminated at round %d, others at %d", pid, oc.FinalRound, round)
		}
	}
	return nil
}

func maxLevels(outputs map[int]*Outcome) int {
	max := 0
	for _, oc := range outputs {
		if oc.Levels > max {
			max = oc.Levels
		}
	}
	return max
}

func sameFrequencies(a, b *historytree.FrequencyResult) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.MinSize != b.MinSize || len(a.Shares) != len(b.Shares) {
		return false
	}
	for in, s := range a.Shares {
		if b.Shares[in] != s {
			return false
		}
	}
	return true
}
