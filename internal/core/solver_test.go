package core

import (
	"testing"

	"anondyn/internal/dynnet"
	"anondyn/internal/historytree"
)

// TestSolverOncePerLevel pins the incremental contract at the protocol
// level: on a reset-free run the leader invokes the counting solver exactly
// once per completed level, and the solver consumes each level's equations
// exactly once — no rebuilds, no fallbacks.
func TestSolverOncePerLevel(t *testing.T) {
	n := 6
	res, err := Run(dynnet.NewStatic(dynnet.Complete(n)), leaderInputs(n),
		Config{Mode: ModeLeader, MaxLevels: 3*n + 6}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.N != n {
		t.Fatalf("N=%d, want %d", res.N, n)
	}
	if res.Stats.Resets != 0 {
		t.Fatalf("expected a reset-free run on a complete static graph, got %d resets", res.Stats.Resets)
	}
	var leader *Outcome
	for _, oc := range res.Outputs {
		if oc.Multiset != nil {
			leader = oc
		}
	}
	if leader == nil {
		t.Fatal("no leader outcome")
	}
	st := leader.Solver
	if st.Calls != res.Stats.Levels {
		t.Errorf("solver Calls=%d, want once per level = %d", st.Calls, res.Stats.Levels)
	}
	if st.LevelsConsumed != res.Stats.Levels {
		t.Errorf("LevelsConsumed=%d, want %d (each level's equations fed exactly once)",
			st.LevelsConsumed, res.Stats.Levels)
	}
	if st.Rebuilds != 0 || st.Fallbacks != 0 {
		t.Errorf("reset-free run rebuilt or fell back: %+v", st)
	}
	if res.Stats.SolverCalls != st.Calls || res.Stats.SolverTime != st.SolveTime {
		t.Errorf("RunStats solver fields %d/%v disagree with leader outcome %d/%v",
			res.Stats.SolverCalls, res.Stats.SolverTime, st.Calls, st.SolveTime)
	}
}

// TestSolverOncePerLevelLeaderless is the leaderless counterpart: every
// process evaluates frequencies once per level with no resets possible.
func TestSolverOncePerLevelLeaderless(t *testing.T) {
	n := 6
	inputs := make([]historytree.Input, n)
	for i := range inputs {
		inputs[i].Value = int64(i % 2)
	}
	res, err := Run(dynnet.NewStatic(dynnet.Cycle(n)), inputs,
		Config{Mode: ModeLeaderless, DiamBound: n, MaxLevels: 3*n + 6}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for pid, oc := range res.Outputs {
		st := oc.Solver
		// Leaderless construction queries after the input level (level 0)
		// too, so there is one call more than completed refinement levels.
		if st.Calls != oc.Levels+1 || st.LevelsConsumed != oc.Levels {
			t.Errorf("pid %d: Calls=%d LevelsConsumed=%d, want %d and %d",
				pid, st.Calls, st.LevelsConsumed, oc.Levels+1, oc.Levels)
		}
		if st.Rebuilds != 0 || st.Fallbacks != 0 {
			t.Errorf("pid %d: leaderless run rebuilt or fell back: %+v", pid, st)
		}
	}
}

// TestSolverSurvivesProtocolResets injects a diameter spike that forces
// resets whose truncation removes VHT nodes (node IDs are then reused), and
// checks the persistent solver still produces the right count with no
// from-scratch fallbacks and at most one rebuild per reset. A reset that
// only discards the level under construction leaves the solver's consumed
// prefix intact — the generation check makes that safe either way, and the
// forced-rebuild path itself is covered by the historytree truncation
// tests.
func TestSolverSurvivesProtocolResets(t *testing.T) {
	n := 6
	spike := dynnet.NewFunc(n, func(round int) *dynnet.Multigraph {
		if round <= 10 {
			return dynnet.Complete(n)
		}
		return dynnet.NewShiftingPath(n).Graph(round)
	})
	res, err := Run(spike, leaderInputs(n),
		Config{Mode: ModeLeader, MaxLevels: 3*n + 6}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.N != n {
		t.Fatalf("N=%d, want %d", res.N, n)
	}
	if res.Stats.Resets == 0 {
		t.Skip("schedule no longer produces resets; adjust the spike")
	}
	if res.VHT.Generation() == 0 {
		t.Error("expected the resets to truncate VHT nodes (generation stayed 0)")
	}
	var leader *Outcome
	for _, oc := range res.Outputs {
		if oc.Multiset != nil {
			leader = oc
		}
	}
	st := leader.Solver
	if st.Rebuilds > res.Stats.Resets {
		t.Errorf("more rebuilds (%d) than resets (%d)", st.Rebuilds, res.Stats.Resets)
	}
	if st.Fallbacks != 0 {
		t.Errorf("unexpected from-scratch fallbacks: %+v", st)
	}
}

// TestFromScratchAblationMatches runs the same schedules with and without
// the incremental solver; every protocol-visible quantity must agree.
func TestFromScratchAblationMatches(t *testing.T) {
	for _, seed := range []int64{1, 42, 77} {
		n := 7
		mk := func() dynnet.Schedule { return dynnet.NewRandomConnected(n, 0.4, seed) }
		inc, err := Run(mk(), leaderInputs(n),
			Config{Mode: ModeLeader, MaxLevels: 4 * n}, RunOptions{})
		if err != nil {
			t.Fatalf("seed %d incremental: %v", seed, err)
		}
		ref, err := Run(mk(), leaderInputs(n),
			Config{Mode: ModeLeader, MaxLevels: 4 * n, FromScratchCount: true}, RunOptions{})
		if err != nil {
			t.Fatalf("seed %d from-scratch: %v", seed, err)
		}
		if inc.N != ref.N || inc.Stats.Rounds != ref.Stats.Rounds ||
			inc.Stats.Levels != ref.Stats.Levels || inc.Stats.Resets != ref.Stats.Resets {
			t.Errorf("seed %d: incremental %+v vs from-scratch %+v", seed, inc.Stats, ref.Stats)
		}
		if !historytree.Isomorphic(inc.VHT, ref.VHT) {
			t.Errorf("seed %d: VHTs differ between solver modes", seed)
		}
	}
}
