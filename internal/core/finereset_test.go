package core

import (
	"fmt"
	"math/rand"
	"testing"

	"anondyn/internal/dynnet"
	"anondyn/internal/historytree"
)

// newRand returns a fresh seeded RNG (for deterministic per-round graphs).
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestFineGrainedResetCountsCorrectly(t *testing.T) {
	schedules := []struct {
		name string
		mk   func(n int) dynnet.Schedule
	}{
		// Every adversary that forces resets, plus easy ones.
		{name: "static-path", mk: func(n int) dynnet.Schedule { return dynnet.NewStatic(dynnet.Path(n)) }},
		{name: "shifting-path", mk: func(n int) dynnet.Schedule { return dynnet.NewShiftingPath(n) }},
		{name: "bottleneck", mk: func(n int) dynnet.Schedule { return dynnet.NewBottleneck(n) }},
		{name: "random", mk: func(n int) dynnet.Schedule { return dynnet.NewRandomConnected(n, 0.3, 8) }},
		{name: "rotating-star", mk: func(n int) dynnet.Schedule { return dynnet.NewRotatingStar(n) }},
	}
	for _, tt := range schedules {
		for _, n := range []int{2, 4, 6, 9} {
			t.Run(fmt.Sprintf("%s/n=%d", tt.name, n), func(t *testing.T) {
				rec := NewRecorder()
				cfg := Config{Mode: ModeLeader, FineGrainedReset: true, MaxLevels: 3*n + 6, Recorder: rec}
				res, err := Run(tt.mk(n), leaderInputs(n), cfg, RunOptions{})
				if err != nil {
					t.Fatalf("Run: %v", err)
				}
				if res.N != n {
					t.Fatalf("counted %d, want %d (resets=%d)", res.N, n, rec.Resets())
				}
			})
		}
	}
}

func TestFineGrainedResetPreservesVHTConsistency(t *testing.T) {
	// Lemma 4.4-style check under fine-grained resets: the rewound-and-
	// replayed VHT must still satisfy all cardinality constraints.
	n := 7
	rec := NewRecorder()
	cfg := Config{Mode: ModeLeader, FineGrainedReset: true, MaxLevels: 3*n + 6, Recorder: rec}
	res, err := Run(dynnet.NewShiftingPath(n), leaderInputs(n), cfg, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.N != n {
		t.Fatalf("counted %d", res.N)
	}
	if rec.Resets() == 0 {
		t.Fatal("shifting path must force resets for this test to be meaningful")
	}
	card := cardinalities(t, res, rec, leaderInputs(n), true)
	if err := historytree.CheckWeights(res.VHT, res.Stats.Levels, card); err != nil {
		t.Fatalf("VHT inconsistent after fine resets: %v", err)
	}
}

func TestFineGrainedSavesWorkOverLevelResets(t *testing.T) {
	// The refinement must never redo a whole level's broadcasts: on
	// reset-heavy adversaries it should finish in at most as many rounds
	// as the basic algorithm (typically fewer).
	type outcome struct{ rounds, resets int }
	run := func(fine bool, n int, mk func(int) dynnet.Schedule) outcome {
		rec := NewRecorder()
		cfg := Config{Mode: ModeLeader, FineGrainedReset: fine, MaxLevels: 3*n + 6, Recorder: rec}
		res, err := Run(mk(n), leaderInputs(n), cfg, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if res.N != n {
			t.Fatalf("counted %d, want %d", res.N, n)
		}
		return outcome{rounds: res.Stats.Rounds, resets: rec.Resets()}
	}
	// A diameter spike mid-level maximizes the work a level reset throws
	// away: dense rounds with diameter ≤ 2 let many broadcasts commit at a
	// small estimate, then the path topology invalidates the estimate with
	// most of the level already accepted. The fine-grained reset replays
	// that work locally instead of re-broadcasting it.
	spike := func(cut int) func(n int) dynnet.Schedule {
		return func(n int) dynnet.Schedule {
			return dynnet.NewFunc(n, func(round int) *dynnet.Multigraph {
				if round <= cut {
					return dynnet.RandomConnected(n, 0.8, newRand(int64(round)))
				}
				return dynnet.NewShiftingPath(n).Graph(round)
			})
		}
	}
	saved, cases := 0, 0
	for _, tc := range []struct {
		n, cut int
	}{{n: 7, cut: 40}, {n: 9, cut: 60}, {n: 11, cut: 80}} {
		basic := run(false, tc.n, spike(tc.cut))
		fine := run(true, tc.n, spike(tc.cut))
		t.Logf("n=%d cut=%d: basic %d rounds (%d resets), fine %d rounds (%d resets)",
			tc.n, tc.cut, basic.rounds, basic.resets, fine.rounds, fine.resets)
		cases++
		if fine.rounds < basic.rounds {
			saved++
		}
	}
	if saved < cases/2+1 {
		t.Errorf("fine-grained resets saved rounds in only %d of %d spike cases", saved, cases)
	}
}

func TestFineGrainedWithGeneralizedCounting(t *testing.T) {
	inputs := []historytree.Input{
		{Leader: true, Value: 9},
		{Value: 1}, {Value: 1}, {Value: 2}, {Value: 2}, {Value: 2},
	}
	n := len(inputs)
	// Shifting path: level-0 construction itself suffers faulty broadcasts.
	cfg := Config{Mode: ModeLeader, FineGrainedReset: true, BuildInputLevel: true, MaxLevels: 3*n + 6}
	res, err := Run(dynnet.NewShiftingPath(n), inputs, cfg, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.N != n {
		t.Fatalf("counted %d", res.N)
	}
	want := map[historytree.Input]int{
		{Leader: true, Value: 9}: 1,
		{Value: 1}:               2,
		{Value: 2}:               3,
	}
	for in, c := range want {
		if res.Multiset[in] != c {
			t.Errorf("multiset[%s]=%d, want %d", in, res.Multiset[in], c)
		}
	}
}

func TestFineGrainedWithHaltAndBlocks(t *testing.T) {
	n, T := 5, 2
	inner := dynnet.NewShiftingPath(n)
	uc, err := dynnet.NewUnionConnected(inner, T)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Mode: ModeLeader, FineGrainedReset: true, SimultaneousHalt: true,
		BlockT: T, MaxLevels: 3*n + 6}
	res, err := Run(uc, leaderInputs(n), cfg, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.N != n || len(res.Outputs) != n {
		t.Fatalf("N=%d outputs=%d", res.N, len(res.Outputs))
	}
}

func TestFineGrainedRejectedInLeaderlessMode(t *testing.T) {
	cfg := Config{Mode: ModeLeaderless, DiamBound: 4, FineGrainedReset: true}
	if err := cfg.Validate(make([]historytree.Input, 4)); err == nil {
		t.Fatal("fine-grained + leaderless must be rejected")
	}
}

func TestFineGrainedDeterminism(t *testing.T) {
	run := func() RunStats {
		res, err := Run(dynnet.NewShiftingPath(8), leaderInputs(8),
			Config{Mode: ModeLeader, FineGrainedReset: true, MaxLevels: 30}, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		// Timing fields are measurements, not protocol state.
		res.Stats.WallClock, res.Stats.SolverTime = 0, 0
		return res.Stats
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic fine-grained runs: %+v vs %+v", a, b)
	}
}
