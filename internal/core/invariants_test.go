package core

import (
	"errors"
	"fmt"
	"testing"

	"anondyn/internal/dynnet"
	"anondyn/internal/engine"
	"anondyn/internal/historytree"
)

// cardinalities reconstructs the true cardinality of every VHT node from
// the recorder's per-level ID assignments (plus the pre-agreed level 0 in
// basic mode), keyed by node ID.
func cardinalities(t *testing.T, res *RunResult, rec *Recorder, inputs []historytree.Input, basicMode bool) map[int]int {
	t.Helper()
	card := make(map[int]int)
	card[historytree.RootID] = len(inputs)
	if basicMode {
		for _, in := range inputs {
			if in.Leader {
				card[0]++
			} else {
				card[1]++
			}
		}
	}
	start := 1
	if !basicMode {
		start = 0
	}
	for l := start; l <= res.Stats.Levels; l++ {
		ids := rec.IDsAtLevel(l)
		if len(ids) != len(inputs) {
			t.Fatalf("level %d: recorder has %d IDs for %d processes", l, len(ids), len(inputs))
		}
		for _, id := range ids {
			card[id]++
		}
	}
	return card
}

// TestVHTCardinalityConsistency is the Lemma 4.4 check: the effective VHT
// must be a genuine history tree of SOME network whose class cardinalities
// are the processes' actual ID assignments — children partition parents
// and every red-edge balance equation holds for the true counts.
func TestVHTCardinalityConsistency(t *testing.T) {
	schedules := []struct {
		name string
		mk   func(n int) dynnet.Schedule
	}{
		{name: "random", mk: func(n int) dynnet.Schedule { return dynnet.NewRandomConnected(n, 0.4, 5) }},
		{name: "shifting-path", mk: func(n int) dynnet.Schedule { return dynnet.NewShiftingPath(n) }},
		{name: "bottleneck", mk: func(n int) dynnet.Schedule { return dynnet.NewBottleneck(n) }},
	}
	for _, tt := range schedules {
		for _, n := range []int{3, 6, 9} {
			t.Run(fmt.Sprintf("%s/n=%d", tt.name, n), func(t *testing.T) {
				rec := NewRecorder()
				cfg := Config{Mode: ModeLeader, MaxLevels: 3*n + 6, Recorder: rec}
				res, err := Run(tt.mk(n), leaderInputs(n), cfg, RunOptions{})
				if err != nil {
					t.Fatalf("Run: %v", err)
				}
				if res.N != n {
					t.Fatalf("counted %d", res.N)
				}
				card := cardinalities(t, res, rec, leaderInputs(n), true)
				if err := historytree.CheckWeights(res.VHT, res.Stats.Levels, card); err != nil {
					t.Fatalf("VHT inconsistent with true cardinalities: %v", err)
				}
			})
		}
	}
}

func TestVHTLevelStructure(t *testing.T) {
	// Level sizes never exceed n and never decrease (classes only refine).
	for _, n := range []int{4, 7, 10} {
		res, err := Run(dynnet.NewRandomConnected(n, 0.3, 9), leaderInputs(n),
			Config{Mode: ModeLeader, MaxLevels: 3*n + 6}, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		prev := 0
		for l := 0; l <= res.Stats.Levels; l++ {
			size := len(res.VHT.Level(l))
			if size > n {
				t.Fatalf("n=%d level %d has %d classes", n, l, size)
			}
			if size < prev {
				t.Fatalf("n=%d level %d shrank: %d < %d", n, l, size, prev)
			}
			prev = size
		}
	}
}

// TestRedEdgeBoundLemma46 checks the amortized bound of Lemma 4.6:
// R_m ≤ 2n(m+n) red edges over the first m levels.
func TestRedEdgeBoundLemma46(t *testing.T) {
	for _, n := range []int{4, 6, 8, 10} {
		for _, mk := range []func(int) dynnet.Schedule{
			func(n int) dynnet.Schedule { return dynnet.NewRandomConnected(n, 0.6, 2) },
			func(n int) dynnet.Schedule { return dynnet.NewShiftingPath(n) },
		} {
			res, err := Run(mk(n), leaderInputs(n),
				Config{Mode: ModeLeader, MaxLevels: 3*n + 6}, RunOptions{})
			if err != nil {
				t.Fatal(err)
			}
			m := res.Stats.Levels
			red := res.VHT.RedEdgeCount(-1)
			if bound := 2 * n * (m + n); red > bound {
				t.Errorf("n=%d m=%d: %d red edges exceed Lemma 4.6 bound %d", n, m, red, bound)
			}
		}
	}
}

func TestDeterministicProtocolRuns(t *testing.T) {
	run := func() *RunResult {
		res, err := Run(dynnet.NewRandomConnected(6, 0.4, 77), leaderInputs(6),
			Config{Mode: ModeLeader, MaxLevels: 24}, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	// Timing fields are measurements, not protocol state; blank them
	// before demanding bit-identical stats.
	sa, sb := a.Stats, b.Stats
	sa.WallClock, sa.SolverTime = 0, 0
	sb.WallClock, sb.SolverTime = 0, 0
	if a.N != b.N || sa != sb {
		t.Fatalf("nondeterministic runs: %+v vs %+v", sa, sb)
	}
	if !historytree.Isomorphic(a.VHT, b.VHT) {
		t.Fatal("VHTs differ across identical runs")
	}
}

// TestDiameterSpikeForcesResets injects a failure: the network is a
// complete graph long enough for the diameter estimate to settle at 1,
// then turns into a shifting path whose dynamic diameter exceeds it, which
// must produce faulty broadcasts, error phases, and resets — and still the
// correct count.
func TestDiameterSpikeForcesResets(t *testing.T) {
	n := 6
	spike := dynnet.NewFunc(n, func(round int) *dynnet.Multigraph {
		if round <= 6 {
			return dynnet.Complete(n)
		}
		return dynnet.NewShiftingPath(n).Graph(round)
	})
	rec := NewRecorder()
	res, err := Run(spike, leaderInputs(n),
		Config{Mode: ModeLeader, MaxLevels: 3*n + 6, Recorder: rec}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.N != n {
		t.Fatalf("counted %d, want %d", res.N, n)
	}
	if rec.Resets() == 0 {
		t.Error("diameter spike should have forced at least one reset")
	}
	for _, d := range rec.DiamHistory() {
		if d > 4*n {
			t.Errorf("reset raised the estimate to %d > 4n", d)
		}
	}
}

func TestResetBoundLemma47(t *testing.T) {
	// Resets ≤ log₂(4n)+1 and final estimate ≤ 4n on every adversary.
	adversaries := map[string]func(n int) dynnet.Schedule{
		"shifting-path": func(n int) dynnet.Schedule { return dynnet.NewShiftingPath(n) },
		"bottleneck":    func(n int) dynnet.Schedule { return dynnet.NewBottleneck(n) },
		"static-path":   func(n int) dynnet.Schedule { return dynnet.NewStatic(dynnet.Path(n)) },
	}
	for name, mk := range adversaries {
		for _, n := range []int{4, 8, 12} {
			rec := NewRecorder()
			res, err := Run(mk(n), leaderInputs(n),
				Config{Mode: ModeLeader, MaxLevels: 3*n + 6, Recorder: rec}, RunOptions{})
			if err != nil {
				t.Fatalf("%s n=%d: %v", name, n, err)
			}
			if res.Stats.FinalDiamEstimate > 4*n {
				t.Errorf("%s n=%d: final estimate %d > 4n", name, n, res.Stats.FinalDiamEstimate)
			}
			maxResets := 0
			for v := 4 * n; v > 1; v >>= 1 {
				maxResets++
			}
			if res.Stats.Resets > maxResets+1 {
				t.Errorf("%s n=%d: %d resets exceed log bound %d", name, n, res.Stats.Resets, maxResets+1)
			}
		}
	}
}

func TestCongestionEnforcement(t *testing.T) {
	n := 8
	s := dynnet.NewRandomConnected(n, 0.3, 3)
	// A 64-bit budget comfortably fits every O(log n)-bit message.
	if _, err := Run(s, leaderInputs(n),
		Config{Mode: ModeLeader, MaxLevels: 3*n + 6}, RunOptions{BitLimit: 64}); err != nil {
		t.Fatalf("64-bit limit should pass: %v", err)
	}
	// An 8-bit budget cannot even fit a Begin message.
	_, err := Run(s, leaderInputs(n),
		Config{Mode: ModeLeader, MaxLevels: 3*n + 6}, RunOptions{BitLimit: 8})
	var ble *engine.BitLimitError
	if !errors.As(err, &ble) {
		t.Fatalf("8-bit limit should fail with BitLimitError, got %v", err)
	}
}

func TestMaxLevelsAborts(t *testing.T) {
	// A 1-level cap cannot accommodate counting 5 processes on a path.
	_, err := Run(dynnet.NewStatic(dynnet.Path(5)), leaderInputs(5),
		Config{Mode: ModeLeader, MaxLevels: 1}, RunOptions{})
	if err == nil {
		t.Fatal("expected MaxLevels error")
	}
}

func TestManySeedsNeverWrong(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep skipped in -short mode")
	}
	for seed := int64(1); seed <= 12; seed++ {
		for _, n := range []int{2, 3, 5, 8} {
			s := dynnet.NewRandomConnected(n, float64(seed%4)*0.25, seed)
			res, err := Run(s, leaderInputs(n),
				Config{Mode: ModeLeader, MaxLevels: 3*n + 6}, RunOptions{})
			if err != nil {
				t.Fatalf("seed=%d n=%d: %v", seed, n, err)
			}
			if res.N != n {
				t.Fatalf("seed=%d n=%d: counted %d", seed, n, res.N)
			}
		}
	}
}

func TestGeneralizedCardinalityConsistency(t *testing.T) {
	// Same Lemma 4.4 check, but with the input-built level 0.
	inputs := []historytree.Input{
		{Leader: true, Value: 1},
		{Value: 2}, {Value: 2}, {Value: 3}, {Value: 3}, {Value: 3}, {Value: 2},
	}
	n := len(inputs)
	rec := NewRecorder()
	cfg := Config{Mode: ModeLeader, BuildInputLevel: true, MaxLevels: 3*n + 6, Recorder: rec}
	res, err := Run(dynnet.NewRandomConnected(n, 0.4, 19), inputs, cfg, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	card := cardinalities(t, res, rec, inputs, false)
	if err := historytree.CheckWeights(res.VHT, res.Stats.Levels, card); err != nil {
		t.Fatalf("VHT inconsistent: %v", err)
	}
	// Level 0 must carry the exact input classes with true counts.
	for _, v := range res.VHT.Level(0) {
		want := 0
		for _, in := range inputs {
			if in == v.Input {
				want++
			}
		}
		if card[v.ID] != want {
			t.Errorf("L0 class %s has %d processes, want %d", v.Input, card[v.ID], want)
		}
	}
}
