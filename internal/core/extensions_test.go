package core

import (
	"testing"

	"anondyn/internal/dynnet"
	"anondyn/internal/historytree"
)

func TestGeneralizedCountingMultiset(t *testing.T) {
	inputs := []historytree.Input{
		{Leader: true, Value: 7},
		{Value: 3}, {Value: 3}, {Value: 3},
		{Value: 9}, {Value: 9},
	}
	n := len(inputs)
	s := dynnet.NewRandomConnected(n, 0.4, 21)
	cfg := Config{Mode: ModeLeader, BuildInputLevel: true, MaxLevels: 3*n + 6}
	res, err := Run(s, inputs, cfg, RunOptions{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.N != n {
		t.Fatalf("n=%d, want %d", res.N, n)
	}
	want := map[historytree.Input]int{
		{Leader: true, Value: 7}: 1,
		{Value: 3}:               3,
		{Value: 9}:               2,
	}
	for in, c := range want {
		if res.Multiset[in] != c {
			t.Errorf("multiset[%s]=%d, want %d", in, res.Multiset[in], c)
		}
	}
	if len(res.Multiset) != len(want) {
		t.Errorf("multiset has %d classes, want %d: %v", len(res.Multiset), len(want), res.Multiset)
	}
}

func TestSimultaneousHalt(t *testing.T) {
	for _, n := range []int{2, 5, 8} {
		s := dynnet.NewRandomConnected(n, 0.3, int64(n))
		cfg := Config{Mode: ModeLeader, SimultaneousHalt: true, MaxLevels: 3*n + 6}
		res, err := Run(s, leaderInputs(n), cfg, RunOptions{})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if res.N != n {
			t.Fatalf("n=%d: counted %d", n, res.N)
		}
		// Run already verifies all processes output the same n at the same
		// round; double-check every process produced an output.
		if len(res.Outputs) != n {
			t.Fatalf("n=%d: %d outputs", n, len(res.Outputs))
		}
		for pid, oc := range res.Outputs {
			if oc.N != n {
				t.Errorf("process %d output %d", pid, oc.N)
			}
		}
	}
}

func TestLeaderlessFrequencies(t *testing.T) {
	inputs := []historytree.Input{
		{Value: 1}, {Value: 1}, {Value: 1}, {Value: 1},
		{Value: 2}, {Value: 2},
	}
	n := len(inputs)
	// Dynamic diameter of a connected n-process network is < n.
	s := dynnet.NewRandomConnected(n, 0.4, 5)
	cfg := Config{Mode: ModeLeaderless, DiamBound: n, MaxLevels: 3*n + 6}
	res, err := Run(s, inputs, cfg, RunOptions{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	f := res.Frequencies
	if f == nil || !f.Known {
		t.Fatal("no frequency result")
	}
	if f.MinSize != 3 {
		t.Fatalf("MinSize=%d, want 3", f.MinSize)
	}
	if f.Shares[historytree.Input{Value: 1}] != 2 || f.Shares[historytree.Input{Value: 2}] != 1 {
		t.Fatalf("shares=%v", f.Shares)
	}
}

func TestUnionConnected(t *testing.T) {
	for _, blockT := range []int{1, 2, 4} {
		for _, n := range []int{4, 6} {
			inner := dynnet.NewRandomConnected(n, 0.5, 13)
			var s dynnet.Schedule = inner
			if blockT > 1 {
				uc, err := dynnet.NewUnionConnected(inner, blockT)
				if err != nil {
					t.Fatal(err)
				}
				s = uc
			}
			cfg := Config{Mode: ModeLeader, BlockT: blockT, MaxLevels: 3*n + 6}
			res, err := Run(s, leaderInputs(n), cfg, RunOptions{})
			if err != nil {
				t.Fatalf("T=%d n=%d: %v", blockT, n, err)
			}
			if res.N != n {
				t.Fatalf("T=%d n=%d: counted %d", blockT, n, res.N)
			}
			t.Logf("T=%d n=%d rounds=%d", blockT, n, res.Stats.Rounds)
		}
	}
}

func TestLeaderlessUniformInputs(t *testing.T) {
	// All inputs equal and no leader: the only computable answer is the
	// trivial frequency 1 with MinSize 1.
	n := 5
	s := dynnet.NewStatic(dynnet.Cycle(n))
	inputs := make([]historytree.Input, n)
	cfg := Config{Mode: ModeLeaderless, DiamBound: n, MaxLevels: 10}
	res, err := Run(s, inputs, cfg, RunOptions{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Frequencies.MinSize != 1 {
		t.Fatalf("MinSize=%d, want 1", res.Frequencies.MinSize)
	}
}

func TestConfigValidation(t *testing.T) {
	tests := []struct {
		name    string
		cfg     Config
		inputs  []historytree.Input
		wantErr bool
	}{
		{
			name:   "leader-ok",
			cfg:    Config{Mode: ModeLeader},
			inputs: leaderInputs(3),
		},
		{
			name:    "leader-missing",
			cfg:     Config{Mode: ModeLeader},
			inputs:  make([]historytree.Input, 3),
			wantErr: true,
		},
		{
			name:    "two-leaders",
			cfg:     Config{Mode: ModeLeader},
			inputs:  []historytree.Input{{Leader: true}, {Leader: true}},
			wantErr: true,
		},
		{
			name:    "leaderless-with-leader",
			cfg:     Config{Mode: ModeLeaderless, DiamBound: 3},
			inputs:  leaderInputs(3),
			wantErr: true,
		},
		{
			name:    "leaderless-no-diam",
			cfg:     Config{Mode: ModeLeaderless},
			inputs:  make([]historytree.Input, 3),
			wantErr: true,
		},
		{
			name:   "leaderless-ok",
			cfg:    Config{Mode: ModeLeaderless, DiamBound: 3},
			inputs: make([]historytree.Input, 3),
		},
		{
			name:    "unknown-mode",
			cfg:     Config{},
			inputs:  leaderInputs(2),
			wantErr: true,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.cfg.Validate(tt.inputs)
			if (err != nil) != tt.wantErr {
				t.Fatalf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}
