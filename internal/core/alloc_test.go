package core

import (
	"testing"

	"anondyn/internal/engine"
	"anondyn/internal/historytree"
	"anondyn/internal/wire"
)

// loopTransport replays the same pre-boxed delivery slice forever, with no
// per-round allocation, so AllocsPerRun isolates the process's own
// allocations from test-harness noise.
type loopTransport struct {
	replies []engine.Message
	round   int
}

var _ transport = (*loopTransport)(nil)

func (f *loopTransport) SendAndReceive(engine.Message) ([]engine.Message, error) {
	f.round++
	return f.replies, nil
}
func (f *loopTransport) Round() int { return f.round }
func (f *loopTransport) PID() int   { return 1 }

// TestSetUpNewLevelAllocs pins the begin-round's steady-state allocation
// count. The seed built a fresh counting map plus sorted key slice per
// call; the run-length pass over the sorted Begin messages plus the reused
// level scratch leave only the snapshot's obsList copy and small map
// bookkeeping. The bound is ≈2× the measured value to absorb allocator
// noise without re-admitting per-call map churn.
func TestSetUpNewLevelAllocs(t *testing.T) {
	begin2, begin3 := wire.Begin(2), wire.Begin(3)
	tr := &loopTransport{replies: []engine.Message{&begin2, &begin2, &begin3}}
	p := NewProcess(Config{Mode: ModeLeader}, historytree.Input{})
	p.tr = tr
	p.initialize()

	// setUpNewLevel snapshots the current level and rebuilds its working
	// state from VHT level currentLevel-1; at currentLevel 0 that is the
	// root pseudo-level, which always exists.
	p.currentLevel = 0
	if restart, err := p.setUpNewLevel(); err != nil || restart {
		t.Fatalf("warm call: restart=%v err=%v", restart, err)
	}

	allocs := testing.AllocsPerRun(64, func() {
		restart, err := p.setUpNewLevel()
		if err != nil || restart {
			t.Fatalf("restart=%v err=%v", restart, err)
		}
	})
	if allocs > 6 {
		t.Fatalf("setUpNewLevel allocated %.1f objects per call, want ≤ 6", allocs)
	}
	if len(p.obsList) != 3 {
		t.Fatalf("obsList has %d entries, want 3 (two foreign IDs + own cycle pair)", len(p.obsList))
	}
}
