package core

import (
	"math"
	"testing"

	"anondyn/internal/dynnet"
	"anondyn/internal/historytree"
)

// TestRoundComplexityShapeGuard is the regression guard for Theorem 4.8's
// shape: across the adversary suite, total rounds must stay within a fixed
// constant times n³·log₂(4n) (real rounds; T=1). The constant is calibrated
// with ample headroom over current measurements — the guard exists to catch
// future regressions that break the asymptotic shape (e.g. an accidental
// extra factor of n), not to pin exact numbers.
func TestRoundComplexityShapeGuard(t *testing.T) {
	const c = 40.0
	adversaries := map[string]func(n int) dynnet.Schedule{
		"random":        func(n int) dynnet.Schedule { return dynnet.NewRandomConnected(n, 0.3, 5) },
		"shifting-path": func(n int) dynnet.Schedule { return dynnet.NewShiftingPath(n) },
		"bottleneck":    func(n int) dynnet.Schedule { return dynnet.NewBottleneck(n) },
		"static-path":   func(n int) dynnet.Schedule { return dynnet.NewStatic(dynnet.Path(n)) },
	}
	for name, mk := range adversaries {
		for _, n := range []int{4, 8, 12} {
			res, err := Run(mk(n), leaderInputs(n),
				Config{Mode: ModeLeader, MaxLevels: 3*n + 8}, RunOptions{})
			if err != nil {
				t.Fatalf("%s n=%d: %v", name, n, err)
			}
			bound := c * float64(n*n*n) * math.Log2(float64(4*n))
			if float64(res.Stats.Rounds) > bound {
				t.Errorf("%s n=%d: %d rounds exceed the shape guard %.0f (= %g·n³·log₂4n)",
					name, n, res.Stats.Rounds, bound, c)
			}
		}
	}
}

// TestLeaderlessComplexityShapeGuard mirrors the guard for the Section 5
// leaderless bound O(D·n²).
func TestLeaderlessComplexityShapeGuard(t *testing.T) {
	const c = 12.0
	for _, n := range []int{4, 8, 12} {
		ins := make([]historytree.Input, n)
		for i := range ins {
			ins[i].Value = int64(i % 2)
		}
		cfg := Config{Mode: ModeLeaderless, DiamBound: n, MaxLevels: 3*n + 8}
		res, err := Run(dynnet.NewRandomConnected(n, 0.4, 3), ins, cfg, RunOptions{})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if bound := c * float64(n) * float64(n*n); float64(res.Stats.Rounds) > bound {
			t.Errorf("n=%d: %d rounds exceed leaderless shape guard %.0f", n, res.Stats.Rounds, bound)
		}
	}
}
