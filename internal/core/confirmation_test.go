package core

import (
	"math/rand"
	"testing"

	"anondyn/internal/dynnet"
	"anondyn/internal/historytree"
)

func TestConfirmationWindowDelaysOutput(t *testing.T) {
	// With the window, the leader's output round must be at least n rounds
	// after the resolution could first have happened; with eager
	// termination it is strictly earlier on the same schedule.
	n := 6
	s := dynnet.NewRandomConnected(n, 0.4, 15)
	confirmed, err := Run(s, leaderInputs(n), Config{Mode: ModeLeader, MaxLevels: 3*n + 6}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	eager, err := Run(s, leaderInputs(n),
		Config{Mode: ModeLeader, EagerTermination: true, MaxLevels: 3*n + 6}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if confirmed.N != n || eager.N != n {
		t.Fatalf("counts %d / %d, want %d", confirmed.N, eager.N, n)
	}
	if confirmed.Stats.Rounds < eager.Stats.Rounds+n {
		t.Errorf("confirmation window too short: %d vs eager %d", confirmed.Stats.Rounds, eager.Stats.Rounds)
	}
	// The resolution level reported must be the same in both modes.
	if confirmed.Stats.Levels != eager.Stats.Levels {
		t.Errorf("levels differ: %d vs %d", confirmed.Stats.Levels, eager.Stats.Levels)
	}
}

// TestAdversarialSoakNeverWrong is the library's headline guarantee: across
// a broad sweep of adversaries, sizes, seeds, and modes, the computed count
// is always exactly n. This includes diameter-spike schedules engineered to
// make processes vanish into error phases at arbitrary points.
func TestAdversarialSoakNeverWrong(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short mode")
	}
	type mkSched func(n int, seed int64) dynnet.Schedule
	adversaries := map[string]mkSched{
		"random-sparse": func(n int, seed int64) dynnet.Schedule {
			return dynnet.NewRandomConnected(n, 0.15, seed)
		},
		"random-dense": func(n int, seed int64) dynnet.Schedule {
			return dynnet.NewRandomConnected(n, 0.8, seed)
		},
		"shifting-path": func(n int, _ int64) dynnet.Schedule { return dynnet.NewShiftingPath(n) },
		"spike": func(n int, seed int64) dynnet.Schedule {
			cut := 10 + int(seed%40)
			return dynnet.NewFunc(n, func(round int) *dynnet.Multigraph {
				if round <= cut {
					return dynnet.RandomConnected(n, 0.8, rand.New(rand.NewSource(seed*997+int64(round))))
				}
				return dynnet.NewShiftingPath(n).Graph(round + int(seed))
			})
		},
		"double-spike": func(n int, seed int64) dynnet.Schedule {
			return dynnet.NewFunc(n, func(round int) *dynnet.Multigraph {
				phase := (round / 25) % 2
				if phase == 0 {
					return dynnet.RandomConnected(n, 0.9, rand.New(rand.NewSource(seed*31+int64(round))))
				}
				return dynnet.NewShiftingPath(n).Graph(round)
			})
		},
	}
	for name, mk := range adversaries {
		for _, fine := range []bool{false, true} {
			for _, n := range []int{3, 5, 7, 9} {
				for seed := int64(1); seed <= 4; seed++ {
					cfg := Config{Mode: ModeLeader, FineGrainedReset: fine, MaxLevels: 3*n + 10}
					res, err := Run(mk(n, seed), leaderInputs(n), cfg, RunOptions{})
					if err != nil {
						t.Fatalf("%s fine=%v n=%d seed=%d: %v", name, fine, n, seed, err)
					}
					if res.N != n {
						t.Fatalf("%s fine=%v n=%d seed=%d: counted %d", name, fine, n, seed, res.N)
					}
				}
			}
		}
	}
}

func TestVHTCompleteDetectsVanishedClass(t *testing.T) {
	// Build a tree with a childless interior node and check the detector.
	tr := newTestTree(t)
	if !vhtComplete(tr, 2) {
		t.Fatal("complete tree flagged incomplete")
	}
	// Add an interior node without children at level 1 of a depth-2 tree.
	orphanParent := tr.Level(0)[0]
	if _, err := tr.AddChild(99, orphanParent, vhtInput(false)); err != nil {
		t.Fatal(err)
	}
	if vhtComplete(tr, 2) {
		t.Fatal("childless interior node not detected")
	}
}

// newTestTree builds root → {0: leader, 1: other} → level 1 → level 2 with
// every interior node having a child.
func newTestTree(t *testing.T) *historytree.Tree {
	t.Helper()
	tr := historytree.New()
	n0, err := tr.AddChild(0, tr.Root(), historytree.Input{Leader: true})
	if err != nil {
		t.Fatal(err)
	}
	n1, err := tr.AddChild(1, tr.Root(), historytree.Input{})
	if err != nil {
		t.Fatal(err)
	}
	n2, err := tr.AddChild(2, n0, historytree.Input{})
	if err != nil {
		t.Fatal(err)
	}
	n3, err := tr.AddChild(3, n1, historytree.Input{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.AddChild(4, n2, historytree.Input{}); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.AddChild(5, n3, historytree.Input{}); err != nil {
		t.Fatal(err)
	}
	return tr
}

// vhtInput is a tiny helper for the detector test.
func vhtInput(leader bool) historytree.Input { return historytree.Input{Leader: leader} }
