package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"anondyn/internal/wire"
)

// randomMessage draws an arbitrary protocol message with small parameters.
func randomMessage(rng *rand.Rand) wire.Message {
	switch rng.Intn(9) {
	case 0:
		return wire.Null()
	case 1:
		return wire.Begin(int64(rng.Intn(20)))
	case 2:
		return wire.End()
	case 3:
		return wire.Done(int64(rng.Intn(20)))
	case 4:
		return wire.Edge(int64(rng.Intn(10)), int64(rng.Intn(10)), 1+int64(rng.Intn(5)))
	case 5:
		return wire.Error(int64(rng.Intn(8)))
	case 6:
		return wire.Reset(int64(rng.Intn(8)), int64(rng.Intn(100)), 1<<rng.Intn(5))
	case 7:
		return wire.Input(int64(rng.Intn(4)), int64(rng.Intn(4)), rng.Intn(2) == 0)
	default:
		return wire.Halt(int64(1+rng.Intn(10)), int64(rng.Intn(100)))
	}
}

func TestCompareIsTotalPreorder(t *testing.T) {
	// Antisymmetry of the strict part, transitivity, and totality, checked
	// on random triples.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b, c := randomMessage(rng), randomMessage(rng), randomMessage(rng)
		// Antisymmetry: Compare(a,b) == -Compare(b,a).
		if Compare(a, b) != -Compare(b, a) {
			return false
		}
		// Transitivity of ≥: if a≥b and b≥c then a≥c.
		if Compare(a, b) >= 0 && Compare(b, c) >= 0 && Compare(a, c) < 0 {
			return false
		}
		// Reflexivity.
		return Compare(a, a) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestPriorityBandOrdering(t *testing.T) {
	// Null < Begin < End < Done < Edge << Error/Reset << Halt, the chain of
	// Section 3.2 (with Input slotted between Edge and the error band, and
	// Halt on top per Section 5).
	chain := []wire.Message{
		wire.Null(),
		wire.Begin(0),
		wire.End(),
		wire.Done(5),
		wire.Edge(1, 2, 3),
		wire.Input(1, 1, false),
		wire.Error(3),
		wire.Halt(4, 10),
	}
	for i := 0; i < len(chain); i++ {
		for j := i + 1; j < len(chain); j++ {
			if !Higher(chain[j], chain[i]) {
				t.Errorf("%s should outrank %s", chain[j], chain[i])
			}
		}
	}
}

func TestErrorResetInterleaving(t *testing.T) {
	// Reset k+1 < Error k < Reset k, for every k (Section 3.2).
	for k := int64(0); k < 6; k++ {
		resetK1 := wire.Reset(k+1, 0, 2)
		errK := wire.Error(k)
		resetK := wire.Reset(k, 0, 2)
		if !Higher(errK, resetK1) {
			t.Errorf("Error(%d) must outrank Reset(%d)", k, k+1)
		}
		if !Higher(resetK, errK) {
			t.Errorf("Reset(%d) must outrank Error(%d)", k, k)
		}
	}
	// Smaller levels always outrank larger ones within each type.
	if !Higher(wire.Error(1), wire.Error(5)) {
		t.Error("Error(1) must outrank Error(5)")
	}
	if !Higher(wire.Reset(1, 0, 2), wire.Reset(5, 0, 2)) {
		t.Error("Reset(1) must outrank Reset(5)")
	}
}

func TestDonePriorityBySmallestID(t *testing.T) {
	if !Higher(wire.Done(2), wire.Done(7)) {
		t.Error("Done(2) must outrank Done(7)")
	}
	if Compare(wire.Done(4), wire.Done(4)) != 0 {
		t.Error("equal Done messages must tie")
	}
}

func TestEdgePriorityLexicographic(t *testing.T) {
	tests := []struct {
		hi, lo wire.Message
	}{
		{hi: wire.Edge(1, 9, 9), lo: wire.Edge(2, 0, 0)},
		{hi: wire.Edge(1, 2, 9), lo: wire.Edge(1, 3, 0)},
		{hi: wire.Edge(1, 2, 3), lo: wire.Edge(1, 2, 4)},
	}
	for _, tt := range tests {
		if !Higher(tt.hi, tt.lo) {
			t.Errorf("%s must outrank %s", tt.hi, tt.lo)
		}
	}
	// Monotonicity matches the paper's 1/(2^a·3^b·5^c): strictly
	// decreasing in every parameter.
	if !Higher(wire.Edge(1, 1, 1), wire.Edge(1, 1, 2)) {
		t.Error("smaller multiplicity must outrank")
	}
}

func TestBeginPriorityIndependentOfParameter(t *testing.T) {
	// "The priority of a Level-begin message is independent of its
	// parameter."
	if Compare(wire.Begin(0), wire.Begin(100)) != 0 {
		t.Error("Begin priorities must not depend on the ID")
	}
}

func TestBroadcastStepKeepsOwnOnTie(t *testing.T) {
	// BroadcastStep replaces the held message only on strictly greater
	// priority; Higher must therefore be false on ties.
	m := wire.Begin(3)
	if Higher(wire.Begin(9), m) {
		t.Error("tie must not replace the held message")
	}
}
