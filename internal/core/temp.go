package core

import "fmt"

// tempNode is a node of the temporary VHT (Listing 4 lines 14–17 and
// Listing 5). Roots are copies of the previous VHT level's nodes; non-root
// nodes are created by UpdateTempVHT, each carrying the single red edge
// (redSrc × redMult) that distinguished it from its parent.
type tempNode struct {
	id      int
	parent  *tempNode // nil for roots
	redSrc  int       // ID of the previous-level node observed (non-roots)
	redMult int
}

// tempVHT is the forest of temporary nodes used while a level is under
// construction ("TempVHT" in the pseudocode).
type tempVHT struct {
	nodes map[int]*tempNode
}

// newTempVHT returns a forest whose roots are the given previous-level IDs.
func newTempVHT(rootIDs []int) *tempVHT {
	tv := &tempVHT{nodes: make(map[int]*tempNode, len(rootIDs))}
	for _, id := range rootIDs {
		tv.nodes[id] = &tempNode{id: id}
	}
	return tv
}

// node returns the node with the given ID, or nil.
func (tv *tempVHT) node(id int) *tempNode { return tv.nodes[id] }

// root returns the root of the tree containing the node with the given ID
// (FindRoot in Listing 5). It returns nil if the ID is unknown.
func (tv *tempVHT) root(id int) *tempNode {
	n := tv.nodes[id]
	if n == nil {
		return nil
	}
	for n.parent != nil {
		n = n.parent
	}
	return n
}

// addChild creates a child of the node with ID parentID, carrying the red
// edge (redSrc × redMult), and returns it.
func (tv *tempVHT) addChild(id, parentID, redSrc, redMult int) (*tempNode, error) {
	parent := tv.nodes[parentID]
	if parent == nil {
		return nil, fmt.Errorf("core: temp VHT has no node %d", parentID)
	}
	if tv.nodes[id] != nil {
		return nil, fmt.Errorf("core: temp VHT already has node %d", id)
	}
	child := &tempNode{id: id, parent: parent, redSrc: redSrc, redMult: redMult}
	tv.nodes[id] = child
	return child, nil
}

// pathRedEdges returns the red edges carried by the nodes on the path from
// the node with the given ID up to (excluding) its root, i.e. the full set
// of red edges the corresponding VHT node must receive (Listing 5 lines
// 42–48). Repeated sources are accumulated.
func (tv *tempVHT) pathRedEdges(id int) (map[int]int, error) {
	n := tv.nodes[id]
	if n == nil {
		return nil, fmt.Errorf("core: temp VHT has no node %d", id)
	}
	out := make(map[int]int)
	for n.parent != nil {
		out[n.redSrc] += n.redMult
		n = n.parent
	}
	return out, nil
}

// levelGraph is the auxiliary graph on the previous level's nodes
// ("LevelGraph"): it accumulates the accepted inter-class edges and must
// remain a forest so that it converges to the spanning tree S of Section
// 3.4. Cycle checks use a union-find structure alongside the edge set.
type levelGraph struct {
	parent map[int]int
	edges  map[[2]int]bool
}

// newLevelGraph returns an edgeless graph on the given node IDs.
func newLevelGraph(ids []int) *levelGraph {
	lg := &levelGraph{
		parent: make(map[int]int, len(ids)),
		edges:  make(map[[2]int]bool),
	}
	for _, id := range ids {
		lg.parent[id] = id
	}
	return lg
}

func (lg *levelGraph) find(x int) int {
	for lg.parent[x] != x {
		lg.parent[x] = lg.parent[lg.parent[x]]
		x = lg.parent[x]
	}
	return x
}

// hasEdge reports whether {a, b} is already an edge.
func (lg *levelGraph) hasEdge(a, b int) bool {
	return lg.edges[edgeKey(a, b)]
}

// connected reports whether a and b are in the same component.
func (lg *levelGraph) connected(a, b int) bool {
	return lg.find(a) == lg.find(b)
}

// addEdge inserts edge {a, b}. Inserting an edge between already-connected
// distinct components would create a cycle and is rejected with an error;
// the protocol's accepted edges never do this (PreventCyclesInLevelGraph
// removes the offending observations first).
func (lg *levelGraph) addEdge(a, b int) error {
	if a == b {
		return fmt.Errorf("core: self-edge %d in level graph", a)
	}
	if lg.hasEdge(a, b) {
		return nil
	}
	if lg.connected(a, b) {
		return fmt.Errorf("core: edge {%d,%d} would close a cycle in level graph", a, b)
	}
	lg.parent[lg.find(a)] = lg.find(b)
	lg.edges[edgeKey(a, b)] = true
	return nil
}

func edgeKey(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}
