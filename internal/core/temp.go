package core

import (
	"fmt"
	"slices"
)

// tempNode is a node of the temporary VHT (Listing 4 lines 14–17 and
// Listing 5). Roots are copies of the previous VHT level's nodes; non-root
// nodes are created by UpdateTempVHT, each carrying the single red edge
// (redSrc × redMult) that distinguished it from its parent.
type tempNode struct {
	id      int
	parent  *tempNode // nil for roots
	redSrc  int       // ID of the previous-level node observed (non-roots)
	redMult int
}

// tempVHT is the forest of temporary nodes used while a level is under
// construction ("TempVHT" in the pseudocode). Nodes are carved from
// fixed-capacity chunks owned by the forest; reset rewinds the chunks and
// reuses them, so a Process pays for temp nodes only until the arena
// reaches its high-water mark (see DESIGN.md decision 9 on validity
// windows: a *tempNode is valid only until the next reset of its forest).
type tempVHT struct {
	nodes map[int]*tempNode
	arena [][]tempNode
	cur   int // arena chunk currently being carved from
}

const tempChunkSize = 32

// newTempVHT returns a forest whose roots are the given previous-level IDs.
func newTempVHT(rootIDs []int) *tempVHT {
	tv := &tempVHT{}
	tv.reset(rootIDs)
	return tv
}

// reset rewinds the forest to an edgeless one whose roots are the given
// IDs, keeping the node arena for reuse. All previously returned *tempNode
// pointers are invalidated.
func (tv *tempVHT) reset(rootIDs []int) {
	if tv.nodes == nil {
		tv.nodes = make(map[int]*tempNode, len(rootIDs))
	} else {
		clear(tv.nodes)
	}
	for i := range tv.arena {
		tv.arena[i] = tv.arena[i][:0]
	}
	tv.cur = 0
	for _, id := range rootIDs {
		n := tv.newNode()
		n.id = id
		tv.nodes[id] = n
	}
}

// newNode carves one zeroed node from the arena.
func (tv *tempVHT) newNode() *tempNode {
	for tv.cur < len(tv.arena) && len(tv.arena[tv.cur]) == cap(tv.arena[tv.cur]) {
		tv.cur++
	}
	if tv.cur == len(tv.arena) {
		tv.arena = append(tv.arena, make([]tempNode, 0, tempChunkSize))
	}
	chunk := &tv.arena[tv.cur]
	*chunk = append(*chunk, tempNode{})
	return &(*chunk)[len(*chunk)-1]
}

// node returns the node with the given ID, or nil.
func (tv *tempVHT) node(id int) *tempNode { return tv.nodes[id] }

// cloneInto rebuilds this forest inside dst (a process-owned scratch
// forest), giving a forked process a private copy whose nodes live in its
// own arena. Parents are copied before children, so the recursion depth is
// the forest height.
func (tv *tempVHT) cloneInto(dst *tempVHT) {
	dst.reset(nil)
	var copyNode func(n *tempNode) *tempNode
	copyNode = func(n *tempNode) *tempNode {
		if n == nil {
			return nil
		}
		if c, ok := dst.nodes[n.id]; ok {
			return c
		}
		parent := copyNode(n.parent)
		c := dst.newNode()
		c.id = n.id
		c.parent = parent
		c.redSrc = n.redSrc
		c.redMult = n.redMult
		dst.nodes[n.id] = c
		return c
	}
	for _, n := range tv.nodes {
		copyNode(n)
	}
}

// root returns the root of the tree containing the node with the given ID
// (FindRoot in Listing 5). It returns nil if the ID is unknown.
func (tv *tempVHT) root(id int) *tempNode {
	n := tv.nodes[id]
	if n == nil {
		return nil
	}
	for n.parent != nil {
		n = n.parent
	}
	return n
}

// addChild creates a child of the node with ID parentID, carrying the red
// edge (redSrc × redMult), and returns it.
func (tv *tempVHT) addChild(id, parentID, redSrc, redMult int) (*tempNode, error) {
	parent := tv.nodes[parentID]
	if parent == nil {
		return nil, fmt.Errorf("core: temp VHT has no node %d", parentID)
	}
	if tv.nodes[id] != nil {
		return nil, fmt.Errorf("core: temp VHT already has node %d", id)
	}
	child := tv.newNode()
	child.id = id
	child.parent = parent
	child.redSrc = redSrc
	child.redMult = redMult
	tv.nodes[id] = child
	return child, nil
}

// appendPathRedEdges appends to buf the red edges carried by the nodes on
// the path from the node with the given ID up to (excluding) its root, i.e.
// the full set of red edges the corresponding VHT node must receive
// (Listing 5 lines 42–48). Repeated sources are accumulated; the result is
// sorted by source ID. buf is usually a reused scratch slice (buf[:0]).
func (tv *tempVHT) appendPathRedEdges(id int, buf []obs) ([]obs, error) {
	n := tv.nodes[id]
	if n == nil {
		return buf, fmt.Errorf("core: temp VHT has no node %d", id)
	}
	start := len(buf)
	for n.parent != nil {
		buf = append(buf, obs{id2: n.redSrc, mult: n.redMult})
		n = n.parent
	}
	s := buf[start:]
	slices.SortFunc(s, func(a, b obs) int { return a.id2 - b.id2 })
	w := 0
	for r := 1; r < len(s); r++ {
		if s[r].id2 == s[w].id2 {
			s[w].mult += s[r].mult
		} else {
			w++
			s[w] = s[r]
		}
	}
	if len(s) > 0 {
		buf = buf[:start+w+1]
	}
	return buf, nil
}

// levelGraph is the auxiliary graph on the previous level's nodes
// ("LevelGraph"): it accumulates the accepted inter-class edges and must
// remain a forest so that it converges to the spanning tree S of Section
// 3.4. Cycle checks use a union-find structure alongside the edge set.
type levelGraph struct {
	parent map[int]int
	edges  map[[2]int]bool
}

// newLevelGraph returns an edgeless graph on the given node IDs.
func newLevelGraph(ids []int) *levelGraph {
	lg := &levelGraph{}
	lg.reset(ids)
	return lg
}

// reset rewinds the graph to an edgeless one on the given node IDs,
// keeping the map storage for reuse.
func (lg *levelGraph) reset(ids []int) {
	if lg.parent == nil {
		lg.parent = make(map[int]int, len(ids))
		lg.edges = make(map[[2]int]bool)
	} else {
		clear(lg.parent)
		clear(lg.edges)
	}
	for _, id := range ids {
		lg.parent[id] = id
	}
}

// cloneInto copies this graph into dst (a process-owned scratch graph) for
// a forked process.
func (lg *levelGraph) cloneInto(dst *levelGraph) {
	dst.reset(nil)
	for k, v := range lg.parent {
		dst.parent[k] = v
	}
	for k := range lg.edges {
		dst.edges[k] = true
	}
}

func (lg *levelGraph) find(x int) int {
	for lg.parent[x] != x {
		lg.parent[x] = lg.parent[lg.parent[x]]
		x = lg.parent[x]
	}
	return x
}

// hasEdge reports whether {a, b} is already an edge.
func (lg *levelGraph) hasEdge(a, b int) bool {
	return lg.edges[edgeKey(a, b)]
}

// connected reports whether a and b are in the same component.
func (lg *levelGraph) connected(a, b int) bool {
	return lg.find(a) == lg.find(b)
}

// addEdge inserts edge {a, b}. Inserting an edge between already-connected
// distinct components would create a cycle and is rejected with an error;
// the protocol's accepted edges never do this (PreventCyclesInLevelGraph
// removes the offending observations first).
func (lg *levelGraph) addEdge(a, b int) error {
	if a == b {
		return fmt.Errorf("core: self-edge %d in level graph", a)
	}
	if lg.hasEdge(a, b) {
		return nil
	}
	if lg.connected(a, b) {
		return fmt.Errorf("core: edge {%d,%d} would close a cycle in level graph", a, b)
	}
	lg.parent[lg.find(a)] = lg.find(b)
	lg.edges[edgeKey(a, b)] = true
	return nil
}

func edgeKey(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}
