package core

import (
	"fmt"

	"anondyn/internal/historytree"
)

// Mode selects between the leader-based algorithm of Section 3 and the
// leaderless extension of Section 5.
type Mode int

// Protocol modes.
const (
	// ModeLeader is the Section 3 algorithm: exactly one process has the
	// leader flag, broadcasts are acknowledged by the leader, and errors
	// trigger leader-initiated resets with doubling diameter estimates.
	ModeLeader Mode = iota + 1
	// ModeLeaderless is the Section 5 extension: no leader, but a known
	// upper bound D on the dynamic diameter. Broadcast phases of D rounds
	// are reliable, so no acknowledgment, error, or reset machinery runs.
	ModeLeaderless
)

// Config parameterizes the protocol.
type Config struct {
	// Mode selects the leader or leaderless algorithm.
	Mode Mode
	// BuildInputLevel enables the Generalized Counting extension: level 0
	// of the VHT is constructed from the processes' input values via Input
	// broadcasts (Section 5, "General computation"). When false, level 0 is
	// the pre-agreed {leader, non-leader} partition of Listing 1 and input
	// values are ignored. Leaderless mode always builds the input level.
	BuildInputLevel bool
	// SimultaneousHalt enables the Section 5 termination protocol: once
	// the leader knows n it broadcasts a maximum-priority Halt message and
	// every process outputs n at the same round. When false, only the
	// leader terminates (the basic Section 3 contract) and the caller stops
	// the run once the leader's output is available.
	SimultaneousHalt bool
	// DiamBound is the known upper bound D on the dynamic diameter,
	// required in leaderless mode and ignored otherwise.
	DiamBound int
	// EagerTermination makes the leader output as soon as the cardinality
	// solver resolves, skipping the confirmation window (see
	// Process.mainLoop). Eager termination matches the paper's pseudocode
	// literally but relies on the view-robustness of the FOCS 2022
	// counting black box, which this reproduction's solver does not have:
	// a process entering an error phase during the very last level can go
	// unnoticed and skew the count. Leave it off unless benchmarking the
	// raw pseudocode.
	EagerTermination bool
	// FineGrainedReset enables the Section 5 "Optimized running time"
	// refinement: errors and resets reference the index of the accepted
	// message that went wrong rather than a whole level, so a reset rewinds
	// the VHT construction exactly to the faulty broadcast (replaying the
	// journal of accepted messages) instead of redoing the level from its
	// begin round. This removes the log n factor: O(n³) total rounds.
	// Leader mode only.
	FineGrainedReset bool
	// KeepAllLinks is an ablation of the Section 3.4 virtual-network
	// construction: the spanning-tree restriction (LevelGraph +
	// PreventCyclesInLevelGraph) is disabled, so the virtual network keeps
	// every link of the selected round. The algorithm stays correct but
	// loses the Lemma 4.6 amortization: red edges may reach Θ(n³) over
	// O(n) levels and the running time grows accordingly (experiment E12).
	KeepAllLinks bool
	// BatchSize, when ≥ 2, enables the Section 6 tradeoff remark: each
	// Edge message carries up to BatchSize consecutive ObsList entries
	// (the follow-up entries chain onto the freshly created temporary
	// nodes, whose IDs all processes agree on). Messages grow to
	// O(BatchSize·log n) bits while the number of broadcasts shrinks;
	// with BatchSize ≈ n the paper predicts O(n²) rounds. Batching
	// implies KeepAllLinks, because a batch is fixed at send time and
	// cannot react to cycle pruning triggered by its own earlier entries.
	BatchSize int
	// BlockT is the dynamic disconnectivity T of the network. Values > 1
	// enable the Section 5 block simulation: each virtual round spans T
	// real rounds, resending the same message and accumulating deliveries.
	// 0 and 1 both mean an always-connected network.
	BlockT int
	// MaxLevels aborts a process with an error if the VHT grows beyond
	// this many levels (0 = unlimited). Termination is guaranteed by the
	// paper within 3n levels, so tests set this to catch divergence.
	MaxLevels int
	// Arithmetic selects the counting solver's exact-arithmetic backend.
	// The zero value is historytree.ArithModular, the multi-modular
	// residue/CRT backend; historytree.ArithBig selects the fraction-free
	// big.Int eliminator, retained as the exactness witness (DESIGN.md
	// decision 12). Both backends produce identical answers on every
	// input; the knob exists for benchmarking and equivalence testing.
	Arithmetic historytree.Arith
	// FromScratchCount disables the incremental counting solver: the
	// deciding process re-runs the from-scratch historytree.Count (or
	// Frequencies) after every completed level, as the pre-optimization
	// code did. It exists as an ablation for benchmarks, which measure the
	// incremental speedup against it in the same binary.
	FromScratchCount bool
	// CompactVHT enables history-level compaction (DESIGN.md decision 14):
	// once the counting solver has consumed a level's balance equations and
	// the protocol has moved a safety lag past it, the process releases the
	// level's node and edge storage via historytree.CompactLevels, keeping
	// resident memory O(active view) instead of O(rounds). The incremental
	// solver replays from its recorded skeleton, so answers are unchanged.
	// Incompatible with FromScratchCount (the from-scratch solver walks
	// parent chains into the released region). A reset that would rewind
	// into compacted history aborts the process with a structured error; on
	// fault-heavy schedules prefer leaving compaction off in leader mode.
	CompactVHT bool
	// PrivateVHT disables cross-process structural sharing (DESIGN.md
	// decision 15): every process keeps its own VHT, temporary forest, and
	// level graph and applies every accepted message itself, as the
	// pre-sharing code did. With the default (false), processes whose
	// accepted views are structurally identical — all of them, in a
	// fault-free run — share one copy of those structures through a
	// verified operation log, divergent processes splitting off
	// copy-on-write. Results are identical either way; the knob exists as
	// an ablation for benchmarks and equivalence tests. Sharing is also
	// silently disabled for single-process runs and under FineGrainedReset
	// (whose journal replay re-applies messages the shared state already
	// holds).
	PrivateVHT bool
	// Recorder, if non-nil, receives instrumentation events (resets,
	// accepted messages, per-level ID assignments). Nil disables recording.
	Recorder *Recorder
}

// Validate checks the configuration against the inputs it will run with.
func (c Config) Validate(inputs []historytree.Input) error {
	leaders := 0
	for _, in := range inputs {
		if in.Leader {
			leaders++
		}
	}
	switch c.Mode {
	case ModeLeader:
		if leaders != 1 {
			return fmt.Errorf("core: leader mode requires exactly 1 leader, got %d", leaders)
		}
	case ModeLeaderless:
		if leaders != 0 {
			return fmt.Errorf("core: leaderless mode forbids leader flags, got %d", leaders)
		}
		if c.DiamBound <= 0 {
			return fmt.Errorf("core: leaderless mode requires a positive DiamBound")
		}
		if c.FineGrainedReset {
			return fmt.Errorf("core: fine-grained resets apply to leader mode only (leaderless has no resets)")
		}
	default:
		return fmt.Errorf("core: unknown mode %d", c.Mode)
	}
	if c.BlockT < 0 {
		return fmt.Errorf("core: negative BlockT %d", c.BlockT)
	}
	if c.BatchSize < 0 {
		return fmt.Errorf("core: negative BatchSize %d", c.BatchSize)
	}
	if c.CompactVHT && c.FromScratchCount {
		return fmt.Errorf("core: CompactVHT requires the incremental solver (FromScratchCount re-reads released levels)")
	}
	return nil
}

// keepAllLinks reports whether the spanning-tree restriction is disabled,
// either explicitly or implicitly by batching.
func (c Config) keepAllLinks() bool {
	return c.KeepAllLinks || c.BatchSize >= 2
}

// blockT normalizes BlockT to ≥ 1.
func (c Config) blockT() int {
	if c.BlockT < 1 {
		return 1
	}
	return c.BlockT
}

// buildsInputLevel reports whether level 0 is constructed from inputs.
func (c Config) buildsInputLevel() bool {
	return c.BuildInputLevel || c.Mode == ModeLeaderless
}

// Outcome is the per-process result of a run.
type Outcome struct {
	// N is the computed number of processes (leader mode). For non-leader
	// processes it is only set under SimultaneousHalt, where it is learned
	// from the Halt message.
	N int
	// Multiset is the Generalized Counting answer (leader only; nil for
	// processes that learned N from a Halt message).
	Multiset map[historytree.Input]int
	// Frequencies is the leaderless answer (nil in leader mode).
	Frequencies *historytree.FrequencyResult
	// VHT is the process's virtual history tree at termination (nil for
	// processes that terminated via Halt mid-level).
	VHT *historytree.Tree
	// Levels is the number of VHT levels completed at termination.
	Levels int
	// FinalDiamEstimate is the process's diameter estimate at termination.
	FinalDiamEstimate int
	// FinalRound is the (virtual) round at which the process produced its
	// output.
	FinalRound int
	// Solver reports the counting solver's accumulated work (calls, levels
	// consumed, rebuilds after resets, time inside the solver). In
	// FromScratchCount runs only Calls and SolveTime are meaningful.
	Solver historytree.SolverStats
}
