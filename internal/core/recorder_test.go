package core

import (
	"testing"

	"anondyn/internal/dynnet"
)

func TestRecorderNilSafety(t *testing.T) {
	var r *Recorder
	r.noteReset(2)
	r.noteAccepted(acceptEdge)
	r.noteBeginRound(1)
	r.noteLevelDone(1, 0, 5)
	if r.Resets() != 0 || r.BeginRounds() != nil || r.DiamHistory() != nil {
		t.Fatal("nil recorder must be inert")
	}
	if e, d, i := r.Accepted(); e+d+i != 0 {
		t.Fatal("nil recorder must report zeros")
	}
	if r.IDsAtLevel(1) != nil {
		t.Fatal("nil recorder must report nil IDs")
	}
}

func TestRecorderConsistencyWithRun(t *testing.T) {
	n := 6
	rec := NewRecorder()
	res, err := Run(dynnet.NewRandomConnected(n, 0.4, 13), leaderInputs(n),
		Config{Mode: ModeLeader, MaxLevels: 3*n + 6, Recorder: rec}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.N != n {
		t.Fatalf("counted %d", res.N)
	}

	edges, dones, inputsAcc := rec.Accepted()
	if inputsAcc != 0 {
		t.Errorf("basic mode accepted %d Input messages", inputsAcc)
	}
	// Every node of levels 1..Levels was created by exactly one accepted
	// Done (plus possibly some in levels later rolled back — resets only
	// ever ADD to the accepted counters).
	nodes := 0
	for l := 1; l <= res.Stats.Levels; l++ {
		nodes += len(res.VHT.Level(l))
	}
	if dones < nodes {
		t.Errorf("accepted %d Done messages, but VHT has %d nodes above level 0", dones, nodes)
	}
	// Distinct red edges in the VHT cannot exceed accepted edge triplets
	// (each triplet adds one temp node; a VHT node merges its chain).
	if red := res.VHT.RedEdgeCount(res.Stats.Levels); edges < red {
		t.Errorf("accepted %d Edge messages but VHT has %d red edges", edges, red)
	}
	// Begin rounds: at least one per completed level (more with resets),
	// recorded by the leader only.
	if got := len(rec.BeginRounds()); got < res.Stats.Levels {
		t.Errorf("recorded %d begin rounds for %d levels", got, res.Stats.Levels)
	}
	// Diameter history doubles monotonically.
	last := 0
	for _, d := range rec.DiamHistory() {
		if d <= last {
			t.Errorf("diameter history not increasing: %v", rec.DiamHistory())
			break
		}
		last = d
	}
	if rec.Resets() != len(rec.DiamHistory()) {
		t.Errorf("resets=%d but %d history entries", rec.Resets(), len(rec.DiamHistory()))
	}
}

func TestRecorderIDsCoverAllProcessesPerLevel(t *testing.T) {
	n := 7
	rec := NewRecorder()
	res, err := Run(dynnet.NewShiftingPath(n), leaderInputs(n),
		Config{Mode: ModeLeader, MaxLevels: 3*n + 6, Recorder: rec}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for l := 1; l <= res.Stats.Levels; l++ {
		ids := rec.IDsAtLevel(l)
		if len(ids) != n {
			t.Fatalf("level %d: %d IDs recorded for %d processes", l, len(ids), n)
		}
		// Every recorded ID must name a node of that level.
		for pid, id := range ids {
			node := res.VHT.NodeByID(id)
			if node == nil || node.Level != l {
				t.Fatalf("level %d: process %d has ID %d not in that level", l, pid, id)
			}
		}
	}
}
