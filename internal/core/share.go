package core

import (
	"fmt"
	"sync"

	"anondyn/internal/historytree"
)

// Cross-process structural sharing (DESIGN.md decision 15). In a fault-free
// run every non-error process accepts the same message sequence, so the n
// private VHTs, temporary forests, and level graphs are structurally
// identical at every round — n copies of one data structure, n executions
// of every accepted message. A shareGroup collapses them: the processes of
// one run hold a single shared tree, temp forest, and level graph, and an
// append-only operation log turns the n-fold application of each accepted
// message into one mutation plus n-1 O(1) verifications.
//
// The log is the correctness mechanism, not just bookkeeping. Every
// structural mutation a process would perform is first funneled through
// opGate as an opRec; the first process to reach a given log position
// appends its record and mutates the shared state, and every later process
// compares its own record against the logged one. A match means the shared
// state already reflects exactly the mutation this process would have made
// — it advances its cursor and keeps only its private bookkeeping (ID
// adoption, observation pruning). A mismatch means the process diverged
// from the group: it forks — rebuilds private structures by replaying the
// log prefix it verified and continues alone, exactly as if sharing had
// been off — and may rejoin at the next level reset, which rolls all state
// back to an agreed snapshot. Divergence needs no out-of-model fault: with
// a too-small diameter estimate a double broadcast failure can carry a
// divergent message past the acknowledgment comparison, and the protocol
// recovers through its normal reset machinery.
//
// Locking. The group mutex guards every access to the shared structures,
// including reads: the solver's balance-pair extraction memoizes on the
// tree, and the level graph's union-find compresses paths on lookup, so
// "read-only" protocol steps mutate shared memory. The critical sections
// are whole protocol actions (one applyAccepted, one level setup, one
// solver evaluation), never single operations — interleaving two members'
// half-applied acceptances would let a verification read state the matching
// mutation has not produced yet. Between acceptances no lock is needed for
// the engine's lockstep reads: a member reaches its post-acceptance code
// only after its own (locked) pass over the acceptance's ops, which
// serializes after the mutating pass.
//
// Resets stay in-model. All non-error processes perform a level reset at
// the same globally agreed round, but an error-phase process stops
// consuming acceptances first, so its cursor lags the log. truncate
// resynchronizes: ops between the lagging cursor and the joint opTruncate
// record touch only levels the truncation removes, so the cursor jumps over
// them. A truncate record that differs from the process's own is
// divergence, handled by the same fork path.
type shareGroup struct {
	mu   sync.Mutex
	tree *historytree.Tree
	temp tempVHT
	lg   levelGraph

	ops    []opRec
	lastOp []int  // per-member log cursor
	active []bool // false once a member forked or finished
	keeps  []int  // per-member CompactVHT keep bound (maybeCompact)
	ids    []int  // scratch for opSetup root rebuilds

	applies int64 // ops appended (first-arrival mutations)
	hits    int64 // ops verified against the log
	forks   int   // members that diverged and went private
}

// opKind tags one logged structural operation.
type opKind int8

const (
	// opTemp is one updateTempVHT application: a red-edge triplet added to
	// the temporary forest and the level graph.
	opTemp opKind = iota + 1
	// opDone is one updateVHT application: a temporary node promoted into
	// the VHT.
	opDone
	// opInput is one acceptInput application: a level-0 input class created.
	opInput
	// opSetup is one resetLevelState: temp forest and level graph rebuilt on
	// a level's begin round.
	opSetup
	// opTruncate is one performLevelReset truncation of the shared tree.
	opTruncate
)

// opRec is one logged operation. Records are compared with ==, so the
// argument meaning is fixed per kind: (id1, id2, mult) for opTemp, (id, 0,
// 0) for opDone, the message parameters for opInput, (level, 0, 0) for
// opSetup, and (resetLevel, newDiam, finalRound) for opTruncate. d is used
// only by opTruncate: the agreed post-reset fresh-ID counter, which lets a
// log replay restore the ID sequence across resets.
type opRec struct {
	kind       opKind
	a, b, c, d int64
}

// newShareGroup builds the group's shared state for n processes: the same
// initial tree initialize would build privately (root-only when level 0 is
// constructed from inputs, the pre-agreed {leader, non-leader} partition
// otherwise).
func newShareGroup(cfg Config, n int) *shareGroup {
	g := &shareGroup{
		tree:   historytree.New(),
		lastOp: make([]int, n),
		active: make([]bool, n),
		keeps:  make([]int, n),
	}
	for i := range g.active {
		g.active[i] = true
	}
	if !cfg.buildsInputLevel() {
		if _, err := g.tree.AddChild(0, g.tree.Root(), historytree.Input{Leader: true}); err != nil {
			panic(err) // fresh tree; cannot fail
		}
		if _, err := g.tree.AddChild(1, g.tree.Root(), historytree.Input{}); err != nil {
			panic(err)
		}
	}
	return g
}

// opGate funnels one structural operation through the log. It must be
// called with the group mutex held. The return reports whether the caller
// must perform the mutation itself: true at first arrival (the record was
// appended) and after a fork (the caller went private and p.group is nil);
// false when the log verified the operation was already applied. The error
// is non-nil only when a divergent member's log replay fails (a corrupt
// log, impossible without memory corruption).
func (p *Process) opGate(kind opKind, a, b, c int64) (bool, error) {
	g := p.group
	if g == nil {
		return true, nil
	}
	rec := opRec{kind: kind, a: a, b: b, c: c}
	cur := g.lastOp[p.member]
	if cur == len(g.ops) {
		g.ops = append(g.ops, rec)
		g.lastOp[p.member] = cur + 1
		g.applies++
		return true, nil
	}
	if g.ops[cur] == rec {
		g.lastOp[p.member] = cur + 1
		g.hits++
		return false, nil
	}
	if err := p.forkFromGroup(); err != nil {
		return false, err
	}
	return true, nil
}

// forkFromGroup detaches a diverged member by replaying the operation log
// up to the member's own cursor into process-owned storage, then clears
// p.group so every subsequent operation runs on private state with opGate
// short-circuiting. Must be called with the group mutex held (the caller's
// deferred unlock still works — it captured the group pointer).
//
// Replaying — rather than cloning the live shared structures — makes the
// fork exact: the cursor-bounded prefix is precisely the sequence of
// mutations this member verified or applied, so the rebuilt state is
// byte-for-byte what a private run of this process would hold at the same
// point. A clone would instead carry the other branch's partial ops for the
// in-flight acceptance (fresh-ID collisions waiting to happen) and would be
// impossible once compaction released shared history; the replay has
// neither problem. Divergence is rare — a double broadcast failure that
// slips a wrong message past the ack comparison, or any out-of-model fault
// — so the O(log) rebuild cost is irrelevant.
func (p *Process) forkFromGroup() error {
	g := p.group
	g.forks++
	g.active[p.member] = false
	p.group = nil
	p.forkedFrom = g
	tree, err := g.rebuildAt(p.cfg, g.lastOp[p.member], &p.tempScratch, &p.lgScratch)
	if err != nil {
		return fmt.Errorf("core: process diverged from the shared VHT and the log replay failed: %w", err)
	}
	p.vht = tree
	if p.temp != nil {
		p.temp = &p.tempScratch
	}
	if p.lg != nil {
		p.lg = &p.lgScratch
	}
	return nil
}

// rebuildAt replays ops[:upTo] from scratch: a fresh tree (seeded exactly
// as newShareGroup seeds the shared one) plus the caller's scratch forest
// and level graph. Must be called with the group mutex held. The replay
// mirrors the mutate branches of acceptInput, updateTempVHT, updateVHT,
// resetLevelState, and performLevelReset; the fresh-ID counter is
// reconstructed by counting ID-consuming ops, with opTruncate records
// restoring it to the logged post-reset value.
func (g *shareGroup) rebuildAt(cfg Config, upTo int, temp *tempVHT, lg *levelGraph) (*historytree.Tree, error) {
	tree := historytree.New()
	if !cfg.buildsInputLevel() {
		if _, err := tree.AddChild(0, tree.Root(), historytree.Input{Leader: true}); err != nil {
			return nil, err
		}
		if _, err := tree.AddChild(1, tree.Root(), historytree.Input{}); err != nil {
			return nil, err
		}
	}
	temp.reset(nil)
	lg.reset(nil)
	freshID := 2
	var ids []int
	var redBuf []obs
	for _, rec := range g.ops[:upTo] {
		switch rec.kind {
		case opSetup:
			ids = ids[:0]
			for _, v := range tree.Level(int(rec.a) - 1) {
				ids = append(ids, v.ID)
			}
			temp.reset(ids)
			lg.reset(ids)
		case opInput:
			in := historytree.Input{Leader: rec.c == 1, Value: rec.b}
			if _, err := tree.AddChild(freshID, tree.Root(), in); err != nil {
				return nil, err
			}
			freshID++
		case opTemp:
			id1, id2, mult := int(rec.a), int(rec.b), int(rec.c)
			root1 := temp.root(id1)
			root2 := temp.root(id2)
			if root1 == nil || root2 == nil {
				return nil, fmt.Errorf("core: replayed edge (%d,%d,%d) references unknown temp nodes", id1, id2, mult)
			}
			if _, err := temp.addChild(freshID, id1, root2.id, mult); err != nil {
				return nil, err
			}
			if !cfg.keepAllLinks() && root1.id != root2.id && !lg.hasEdge(root1.id, root2.id) {
				if err := lg.addEdge(root1.id, root2.id); err != nil {
					return nil, err
				}
			}
			freshID++
		case opDone:
			id := int(rec.a)
			tempRoot := temp.root(id)
			if tempRoot == nil {
				return nil, fmt.Errorf("core: replayed Done(%d) references unknown temp node", id)
			}
			parent := tree.NodeByID(tempRoot.id)
			if parent == nil {
				return nil, fmt.Errorf("core: replayed temp root %d has no VHT counterpart", tempRoot.id)
			}
			child, err := tree.AddChild(id, parent, historytree.Input{})
			if err != nil {
				return nil, err
			}
			redBuf, err = temp.appendPathRedEdges(id, redBuf[:0])
			if err != nil {
				return nil, err
			}
			for _, o := range redBuf {
				srcNode := tree.NodeByID(o.id2)
				if srcNode == nil {
					return nil, fmt.Errorf("core: replayed red edge source %d missing from VHT", o.id2)
				}
				if err := tree.AddRed(child, srcNode, o.mult); err != nil {
					return nil, err
				}
			}
		case opTruncate:
			tree.TruncateLevels(int(rec.a))
			freshID = int(rec.d)
			// temp and lg stay stale, exactly as the live member's do
			// between a reset and the next level's opSetup.
		default:
			return nil, fmt.Errorf("core: unknown op kind %d in shared log", rec.kind)
		}
	}
	return tree, nil
}

// truncate joins a level reset on the shared tree. All non-error members
// perform the reset at the same agreed round, but members that sat out the
// level's tail in an error phase have lagging cursors; ops between such a
// cursor and the joint truncate record affect only levels the truncation
// removes, so the cursor jumps over them. The first member to arrive
// appends the record and truncates; a recorded truncate that differs from
// rec means this member joined a different reset than the group — it forks
// and the caller truncates its private copy.
func (g *shareGroup) truncate(p *Process, resetLevel, newDiam, finalRound, freshID int) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c := g.tree.CompactedLevels(); c > 0 && resetLevel <= c {
		return fmt.Errorf("core: reset to level %d outran the CompactVHT lag (levels 1..%d released); disable CompactVHT under faulty schedules", resetLevel, c)
	}
	rec := opRec{kind: opTruncate, a: int64(resetLevel), b: int64(newDiam), c: int64(finalRound), d: int64(freshID)}
	for i := g.lastOp[p.member]; i < len(g.ops); i++ {
		if g.ops[i] == rec {
			g.lastOp[p.member] = i + 1
			g.hits++
			return nil
		}
		if g.ops[i].kind == opTruncate {
			return p.forkFromGroup()
		}
	}
	g.ops = append(g.ops, rec)
	g.lastOp[p.member] = len(g.ops)
	g.applies++
	g.tree.TruncateLevels(resetLevel)
	return nil
}

// rejoin lets a forked member rejoin the group at a level reset. A reset
// rolls every participant back to the agreed begin-of-level snapshot, which
// is exactly the point where the forked member's private state and the
// shared state coincide again — the divergence that caused the fork lives
// entirely in levels the truncation removes. The member resynchronizes like
// a lagging cursor in truncate: ops between its fork point and the joint
// truncate record touch only truncated levels. If the group recorded a
// different reset (or compaction released the target), the member stays
// private; rejoining is an optimization, never a requirement.
func (g *shareGroup) rejoin(p *Process, resetLevel, newDiam, finalRound, freshID int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c := g.tree.CompactedLevels(); c > 0 && resetLevel <= c {
		return
	}
	rec := opRec{kind: opTruncate, a: int64(resetLevel), b: int64(newDiam), c: int64(finalRound), d: int64(freshID)}
	for i := g.lastOp[p.member]; i < len(g.ops); i++ {
		if g.ops[i] == rec {
			g.lastOp[p.member] = i + 1
			g.hits++
			g.attachLocked(p)
			return
		}
		if g.ops[i].kind == opTruncate {
			return
		}
	}
	// First participant to perform this reset: record it and truncate the
	// shared tree. Attached members hit the record when their own
	// performReset runs at the same agreed round.
	g.ops = append(g.ops, rec)
	g.lastOp[p.member] = len(g.ops)
	g.applies++
	g.tree.TruncateLevels(resetLevel)
	g.attachLocked(p)
}

// attachLocked re-activates a member on the shared structures. The stale
// compaction bound is reset to 0 (no compaction) until the member's next
// maybeCompact report.
func (g *shareGroup) attachLocked(p *Process) {
	g.active[p.member] = true
	g.keeps[p.member] = 0
	p.group = g
	p.vht = g.tree
}

// leave marks a member inactive (terminated or unwound), releasing its
// compaction constraint.
func (g *shareGroup) leave(member int) {
	g.mu.Lock()
	g.active[member] = false
	g.mu.Unlock()
}

// minKeepLocked is the deepest level every active member allows compaction
// to release up to — the group-wide CompactLevels bound. Members that have
// not reported yet hold it at 0 (no compaction), which is conservative.
func (g *shareGroup) minKeepLocked() int {
	keep := 0
	first := true
	for m, a := range g.active {
		if !a {
			continue
		}
		if first || g.keeps[m] < keep {
			keep = g.keeps[m]
			first = false
		}
	}
	return keep
}

// statsSnapshot returns the log counters for RunStats.
func (g *shareGroup) statsSnapshot() (applies, hits int64, forks int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.applies, g.hits, g.forks
}
