package core

import (
	"fmt"

	"anondyn/internal/engine"
	"anondyn/internal/wire"
)

// transport is the communication surface the protocol needs. It is
// satisfied by *engine.Transport and wrapped by blockTransport for the
// T-union-connected extension.
type transport interface {
	SendAndReceive(m engine.Message) ([]engine.Message, error)
	Round() int
	PID() int
}

var _ transport = (*engine.Transport)(nil)

// blockTransport implements the Section 5 block simulation for
// T-union-connected networks: each virtual round spans T real rounds during
// which the process re-sends the same message and accumulates everything it
// receives, then treats the union as a single delivery. Running the
// unmodified protocol on top is equivalent to running it on the dynamic
// network 𝒢* = (G*₁, G*₍T+1₎, …), which is connected.
type blockTransport struct {
	inner transport
	t     int

	// acc is the union buffer, reused across virtual rounds: a returned
	// slice is only read until the next SendAndReceive (the engine's
	// validity-window contract), so the next virtual round may overwrite
	// it. It converges to the block's accumulated degree after the first
	// virtual round, making the steady state allocation-free.
	acc []engine.Message
}

var _ transport = (*blockTransport)(nil)

func (b *blockTransport) SendAndReceive(m engine.Message) ([]engine.Message, error) {
	acc := b.acc[:0]
	for i := 0; i < b.t; i++ {
		msgs, err := b.inner.SendAndReceive(m)
		if err != nil {
			return nil, err
		}
		acc = append(acc, msgs...)
	}
	b.acc = acc
	return acc, nil
}

// Round returns the number of completed virtual rounds.
func (b *blockTransport) Round() int { return b.inner.Round() / b.t }

// PID forwards the engine process index (instrumentation only).
func (b *blockTransport) PID() int { return b.inner.PID() }

// sendAndReceive broadcasts a protocol message and converts the received
// engine messages back to wire messages.
func (p *Process) sendAndReceive(m wire.Message) ([]wire.Message, error) {
	// Boxing m into the engine.Message interface heap-allocates. Priority
	// broadcast re-sends the same message for up to Θ(n²) consecutive
	// rounds, so reusing the previous round's box when the value is
	// unchanged removes one allocation per process per round — formerly
	// half of the simulation's total allocation count. The box is never
	// mutated (the struct is copied into it), so the engine may keep
	// referencing it after a newer message replaces it.
	if p.txBoxed == nil || p.txLast != m {
		p.txBoxed = m
		p.txLast = m
	}
	raw, err := p.tr.SendAndReceive(p.txBoxed)
	if err != nil {
		return nil, err
	}
	// The converted slice is scratch reused across rounds: no caller
	// retains it past its next sendAndReceive (mirroring the engine's
	// inbox validity window), so the per-round allocation would be waste.
	if cap(p.rxBuf) < len(raw) {
		p.rxBuf = make([]wire.Message, len(raw))
	}
	out := p.rxBuf[:len(raw)]
	for i, r := range raw {
		wm, ok := r.(wire.Message)
		if !ok {
			return nil, fmt.Errorf("core: received non-protocol message %T", r)
		}
		out[i] = wm
	}
	return out, nil
}

// SizeOf measures protocol messages for the engine's congestion accounting.
func SizeOf(m engine.Message) int {
	wm, ok := m.(wire.Message)
	if !ok {
		return 0
	}
	return wire.SizeBits(wm)
}

// newSizeMemo returns a SizeOf that memoizes wire.SizeBits per unique
// message value. Priority broadcast re-sends the same message for up to
// Θ(n²) consecutive rounds and every process relays it, so the accounting
// path re-measures identical values constantly; wire.Message is comparable,
// which makes a map keyed by value an exact cache. Each run gets its own
// memo (runners invoke SizeOf from a single goroutine, so no locking).
func newSizeMemo() func(engine.Message) int {
	memo := make(map[wire.Message]int)
	var last wire.Message
	lastBits := -1
	return func(m engine.Message) int {
		wm, ok := m.(wire.Message)
		if !ok {
			return 0
		}
		// Within a round the accounting loop sees the processes' messages
		// back to back, and during broadcast they are all the same value:
		// one struct comparison beats hashing into the memo.
		if lastBits >= 0 && wm == last {
			return lastBits
		}
		bits, ok := memo[wm]
		if !ok {
			bits = wire.SizeBits(wm)
			memo[wm] = bits
		}
		last, lastBits = wm, bits
		return bits
	}
}
