package core

import (
	"fmt"

	"anondyn/internal/engine"
	"anondyn/internal/wire"
)

// transport is the communication surface the protocol needs. It is
// satisfied by *engine.Transport and wrapped by blockTransport for the
// T-union-connected extension.
type transport interface {
	SendAndReceive(m engine.Message) ([]engine.Message, error)
	Round() int
	PID() int
}

var _ transport = (*engine.Transport)(nil)

// blockTransport implements the Section 5 block simulation for
// T-union-connected networks: each virtual round spans T real rounds during
// which the process re-sends the same message and accumulates everything it
// receives, then treats the union as a single delivery. Running the
// unmodified protocol on top is equivalent to running it on the dynamic
// network 𝒢* = (G*₁, G*₍T+1₎, …), which is connected.
type blockTransport struct {
	inner transport
	t     int

	// acc is the union buffer, reused across virtual rounds: a returned
	// slice is only read until the next SendAndReceive (the engine's
	// validity-window contract), so the next virtual round may overwrite
	// it. It converges to the block's accumulated degree after the first
	// virtual round, making the steady state allocation-free.
	acc []engine.Message
}

var _ transport = (*blockTransport)(nil)

func (b *blockTransport) SendAndReceive(m engine.Message) ([]engine.Message, error) {
	acc := b.acc[:0]
	for i := 0; i < b.t; i++ {
		msgs, err := b.inner.SendAndReceive(m)
		if err != nil {
			return nil, err
		}
		acc = append(acc, msgs...)
	}
	b.acc = acc
	return acc, nil
}

// Round returns the number of completed virtual rounds.
func (b *blockTransport) Round() int { return b.inner.Round() / b.t }

// PID forwards the engine process index (instrumentation only).
func (b *blockTransport) PID() int { return b.inner.PID() }

// nullValue / boxedNull are the Null message and its pre-boxed interface
// value: every non-leader acknowledgment round sends Null, so the box is
// shared simulation-wide instead of re-allocated.
//
// Boxes are pointers. *wire.Message is a direct-interface type, so asserting
// a delivery costs a pointer load instead of the 48-byte struct copy that a
// value box would force, and two deliveries of the same box compare equal by
// a single pointer comparison. The pointee is never mutated after the box is
// published (boxFor copies the value in before handing the box out).
var (
	nullValue = wire.Null()
	boxedNull = &nullValue
)

// broadcast sends m (through the box cache) and returns the raw engine
// deliveries. The returned slice is retained in rxRaw so boxFor can recycle
// the received boxes at the next send; it is read strictly before the next
// SendAndReceive, inside the engine's inbox validity window.
func (p *Process) broadcast(m wire.Message) ([]engine.Message, error) {
	// Boxing m into the engine.Message interface heap-allocates. Priority
	// broadcast re-sends the same message for up to Θ(n²) consecutive
	// rounds, so reusing the previous round's box when the value is
	// unchanged removes one allocation per process per round — formerly a
	// third of the simulation's total allocation count. When the value did
	// change, boxFor still usually avoids the allocation by adopting a box
	// received last round (broadcasts mostly echo a received message). A
	// box is never mutated (the struct is copied into it), so the engine
	// may keep referencing it after a newer message replaces it.
	if p.txBoxed == nil || !wire.Equal(p.txLast, m) {
		p.txBoxed = p.boxFor(m)
		p.txLast = m
	}
	return p.send()
}

// broadcastPtr is broadcast for a message already held in an immutable heap
// box (one minted by boxFor, delivered by the engine, or allocated by
// receiveTopPtr's fallback — never a pointer to a caller's local). In the
// broadcast steady state the caller re-sends the box it adopted last round,
// so the unchanged-message check is a single pointer comparison; a box with
// a merely equal value keeps the currently published box, preserving box
// identity for the engine's pointer-keyed size memo.
func (p *Process) broadcastPtr(mp *wire.Message) ([]engine.Message, error) {
	if p.txBoxed == nil || (p.txBoxed != mp && !wire.Equal(*p.txBoxed, *mp)) {
		p.txBoxed = mp
		p.txLast = *mp
	}
	return p.send()
}

// send transmits the cached box and retains the raw deliveries in rxRaw.
func (p *Process) send() ([]engine.Message, error) {
	var raw []engine.Message
	var err error
	if p.trEng != nil {
		raw, err = p.trEng.SendAndReceive(p.txBoxed)
	} else {
		raw, err = p.tr.SendAndReceive(p.txBoxed)
	}
	if err != nil {
		return nil, err
	}
	p.rxRaw = raw
	return raw, nil
}

// sendAndReceive broadcasts a protocol message and converts the received
// engine messages back to wire messages.
func (p *Process) sendAndReceive(m wire.Message) ([]wire.Message, error) {
	raw, err := p.broadcast(m)
	if err != nil {
		return nil, err
	}
	// The converted slice is scratch reused across rounds: no caller
	// retains it past its next sendAndReceive (mirroring the engine's
	// inbox validity window), so the per-round allocation would be waste.
	// rxBuf gets sorted in place by callers; raw is never mutated.
	if cap(p.rxBuf) < len(raw) {
		p.rxBuf = make([]wire.Message, len(raw))
	}
	out := p.rxBuf[:len(raw)]
	for i, r := range raw {
		wm, ok := wire.FromBox(r)
		if !ok {
			return nil, fmt.Errorf("core: received non-protocol message %T", r)
		}
		out[i] = wm
	}
	return out, nil
}

// receiveTopPtr broadcasts the boxed message *mp and folds the deliveries
// into the highest-priority message among it and everything received, in a
// single pass over the raw engine messages. Broadcast steps dominate the
// protocol's rounds and only need that maximum, so skipping the
// materialized []wire.Message conversion (and its second scan) measurably
// shortens the hot loop.
//
// The returned pointer is always an immutable heap box (the sent box, a
// received engine box, or a fresh copy of a value-boxed maximum), so the
// caller may feed it straight back into the next round: one origination
// propagates through the network as a single shared box, and after its
// wave has passed, every comparison in this loop is settled by pointer
// identity alone.
func (p *Process) receiveTopPtr(mp *wire.Message) (*wire.Message, error) {
	raw, err := p.broadcastPtr(mp)
	if err != nil {
		return mp, err
	}
	// broadcastPtr published a box holding a value equal to *mp (usually mp
	// itself); seeding top with the published box lets deliveries that
	// relay it — every neighbor, in steady-state broadcast — settle on the
	// pointer comparison below without touching the fields.
	top := p.txBoxed
	// topv shadows *top so the per-delivery comparisons below read a
	// stack-resident copy instead of chasing the box pointer ~degree times
	// per round; it is refreshed whenever top moves.
	topv := *top
	for _, r := range raw {
		pm, ok := r.(*wire.Message)
		if !ok {
			// Value-boxed delivery from a stub transport (never the engine).
			wm, ok := wire.FromBox(r)
			if !ok {
				return mp, fmt.Errorf("core: received non-protocol message %T", r)
			}
			if Higher(wm, topv) {
				// Copy into a fresh box: the result may be re-broadcast and
				// pointer-cached downstream, so it must never alias mutable
				// storage. Cold path — the engine always delivers pointers.
				hp := new(wire.Message)
				*hp = wm
				top, topv = hp, wm
			}
			continue
		}
		// An equal message can never be strictly higher, so the struct
		// comparison spares the full priority comparison for boxes that
		// arrive with equal values under distinct identities (wave fronts).
		if pm == top || wire.Equal(*pm, topv) {
			continue
		}
		if Higher(*pm, topv) {
			top, topv = pm, *pm
		}
	}
	return top, nil
}

// boxFor returns an immutable heap box holding m, preferring an existing
// box over a fresh allocation: the shared Null box, a recently created box
// (txCache — a process re-proposes the same Edge/Done at the start of every
// broadcast phase until it is accepted, so its own origination repeats many
// times), or one received last round.
func (p *Process) boxFor(m wire.Message) *wire.Message {
	if wire.Equal(m, nullValue) {
		return boxedNull
	}
	for i := range p.txCache {
		if p.txCache[i].box != nil && wire.Equal(p.txCache[i].m, m) {
			return p.txCache[i].box
		}
	}
	for _, r := range p.rxRaw {
		if pm, ok := r.(*wire.Message); ok && wire.Equal(*pm, m) {
			return pm
		}
	}
	pm := new(wire.Message)
	*pm = m
	p.txCache[p.txCacheNext] = txBox{m: m, box: pm}
	p.txCacheNext = (p.txCacheNext + 1) % len(p.txCache)
	return pm
}

// SizeOf measures protocol messages for the engine's congestion accounting.
func SizeOf(m engine.Message) int {
	wm, ok := wire.FromBox(m)
	if !ok {
		return 0
	}
	return wire.SizeBits(wm)
}

// newSizeMemo returns a SizeOf that memoizes wire.SizeBits per unique
// message value. Priority broadcast re-sends the same message for up to
// Θ(n²) consecutive rounds and every process relays it, so the accounting
// path re-measures identical values constantly; wire.Message is comparable,
// which makes a map keyed by value an exact cache. Boxes are immutable
// pointers reused across rounds (see boxFor), so the recency slots compare
// box identity — one pointer compare — before falling back to the map. Each
// run gets its own memo (runners invoke SizeOf from a single goroutine, so
// no locking).
func newSizeMemo() func(engine.Message) int {
	memo := make(map[wire.Message]int)
	var p0, p1 *wire.Message
	var bits0, bits1 int
	return func(m engine.Message) int {
		pm, ok := m.(*wire.Message)
		if !ok {
			// Value-boxed delivery from a stub transport (never the engine).
			wm, ok := wire.FromBox(m)
			if !ok {
				return 0
			}
			bits, ok := memo[wm]
			if !ok {
				bits = wire.SizeBits(wm)
				memo[wm] = bits
			}
			return bits
		}
		// Within a round the accounting loop sees the processes' messages
		// back to back, and during broadcast they are all the same box
		// except the originator's: two cached entries (most recent first)
		// absorb the leader/crowd alternation that a single-entry cache
		// misses twice every round, keeping the hash lookups to the rare
		// genuinely new values.
		if pm == p0 {
			return bits0
		}
		if pm == p1 {
			p0, bits0, p1, bits1 = p1, bits1, p0, bits0
			return bits0
		}
		bits, ok := memo[*pm]
		if !ok {
			bits = wire.SizeBits(*pm)
			memo[*pm] = bits
		}
		p1, bits1 = p0, bits0
		p0, bits0 = pm, bits
		return bits
	}
}
