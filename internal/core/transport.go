package core

import (
	"fmt"

	"anondyn/internal/engine"
	"anondyn/internal/wire"
)

// transport is the communication surface the protocol needs. It is
// satisfied by *engine.Transport and wrapped by blockTransport for the
// T-union-connected extension.
type transport interface {
	SendAndReceive(m engine.Message) ([]engine.Message, error)
	Round() int
	PID() int
}

var _ transport = (*engine.Transport)(nil)

// blockTransport implements the Section 5 block simulation for
// T-union-connected networks: each virtual round spans T real rounds during
// which the process re-sends the same message and accumulates everything it
// receives, then treats the union as a single delivery. Running the
// unmodified protocol on top is equivalent to running it on the dynamic
// network 𝒢* = (G*₁, G*₍T+1₎, …), which is connected.
type blockTransport struct {
	inner transport
	t     int
}

var _ transport = (*blockTransport)(nil)

func (b *blockTransport) SendAndReceive(m engine.Message) ([]engine.Message, error) {
	var acc []engine.Message
	for i := 0; i < b.t; i++ {
		msgs, err := b.inner.SendAndReceive(m)
		if err != nil {
			return nil, err
		}
		acc = append(acc, msgs...)
	}
	return acc, nil
}

// Round returns the number of completed virtual rounds.
func (b *blockTransport) Round() int { return b.inner.Round() / b.t }

// PID forwards the engine process index (instrumentation only).
func (b *blockTransport) PID() int { return b.inner.PID() }

// sendAndReceive broadcasts a protocol message and converts the received
// engine messages back to wire messages.
func (p *Process) sendAndReceive(m wire.Message) ([]wire.Message, error) {
	raw, err := p.tr.SendAndReceive(m)
	if err != nil {
		return nil, err
	}
	out := make([]wire.Message, len(raw))
	for i, r := range raw {
		wm, ok := r.(wire.Message)
		if !ok {
			return nil, fmt.Errorf("core: received non-protocol message %T", r)
		}
		out[i] = wm
	}
	return out, nil
}

// SizeOf measures protocol messages for the engine's congestion accounting.
func SizeOf(m engine.Message) int {
	wm, ok := m.(wire.Message)
	if !ok {
		return 0
	}
	return wire.SizeBits(wm)
}
