package core

import (
	"fmt"

	"anondyn/internal/wire"
)

// broadcastStep is BroadcastStep (Listing 3 lines 20–26): send the current
// message, then keep the highest-priority message among it and everything
// received. Receiving a Halt message immediately switches the process into
// the termination forwarding of Section 5.
func (p *Process) broadcastStep(m wire.Message) (wire.Message, error) {
	top, err := p.broadcastStepPtr(p.boxFor(m))
	return *top, err
}

// broadcastStepPtr is broadcastStep threading immutable heap boxes instead
// of message values: the multi-round loops below feed each round's result
// pointer straight back in, so a steady-state round moves no 48-byte
// structs and compares boxes by identity (see receiveTopPtr). On error the
// input box is returned, mirroring the value form.
func (p *Process) broadcastStepPtr(mp *wire.Message) (*wire.Message, error) {
	top, err := p.receiveTopPtr(mp)
	if err != nil {
		return mp, err
	}
	if top.Label == wire.LabelHalt && mp.Label != wire.LabelHalt {
		return top, p.haltForward(*top)
	}
	return top, nil
}

// broadcastPhase is BroadcastPhase (Listing 3 lines 28–38): DiamEstimate
// broadcast steps, then dispatch on the surviving message. Error and Reset
// results are handled and reported as restart=true.
func (p *Process) broadcastPhase(m wire.Message) (wire.Message, bool, error) {
	mp := p.boxFor(m)
	for i := 0; i < p.diamEstimate; i++ {
		var err error
		mp, err = p.broadcastStepPtr(mp)
		if err != nil {
			return *mp, false, err
		}
	}
	top := *mp
	switch top.Label {
	case wire.LabelError:
		if err := p.handleError(top); err != nil {
			return top, false, err
		}
		return top, true, nil
	case wire.LabelReset:
		if err := p.broadcastReset(top); err != nil {
			return top, false, err
		}
		return top, true, nil
	default:
		return top, false, nil
	}
}

// detectTarget is the rollback point a locally detected fault refers to:
// the current level in the basic algorithm, or the number of accepted
// messages so far under the fine-grained refinement ("the number of
// messages that the leader has accepted up to that time", Section 5).
func (p *Process) detectTarget() int {
	if p.cfg.FineGrainedReset {
		return len(p.journal)
	}
	return p.currentLevel
}

// handleError is HandleError (Listing 6 lines 9–19): adopt a deeper error's
// target, then either initiate a reset (leader) or enter an error phase.
func (p *Process) handleError(m wire.Message) error {
	target := p.detectTarget()
	if m.Label == wire.LabelError && int(m.A) < target {
		target = int(m.A)
	}
	return p.enterErrorPhase(target)
}

// enterErrorPhase routes a detected fault: the leader waits out all ongoing
// phases and initiates a reset; a non-leader broadcasts Error messages
// until a reset reaches it.
func (p *Process) enterErrorPhase(target int) error {
	if p.input.Leader {
		return p.leaderReset(target)
	}
	return p.broadcastError(target)
}

// leaderReset is the leader branch of HandleError (Listing 6 lines 12–18):
// wait 2·DiamEstimate+1 rounds sending Null so every non-error process
// finishes its phases and notices the fault, then broadcast a Reset for the
// target with a doubled diameter estimate.
func (p *Process) leaderReset(target int) error {
	for i := 0; i <= 2*p.diamEstimate; i++ {
		if _, err := p.sendAndReceive(wire.Null()); err != nil {
			return err
		}
	}
	reset := wire.Reset(int64(target), int64(p.tr.Round()), int64(p.diamEstimate*2))
	p.rec.noteReset(int(reset.C))
	return p.broadcastReset(reset)
}

// broadcastError is BroadcastError (Listing 6 lines 21–27): broadcast an
// Error message (letting higher-priority messages replace it) until a Reset
// message arrives, then join that reset. The target is a level in the basic
// algorithm and a journal index under fine-grained resets.
func (p *Process) broadcastError(target int) error {
	mp := p.boxFor(wire.Error(int64(target)))
	for mp.Label != wire.LabelReset {
		var err error
		mp, err = p.broadcastStepPtr(mp)
		if err != nil {
			return err
		}
	}
	return p.broadcastReset(*mp)
}

// broadcastReset is BroadcastReset (Listing 6 lines 29–41): forward the
// reset until the globally agreed final round StartingRound+NewDiam, then
// perform the rollback.
func (p *Process) broadcastReset(m wire.Message) error {
	final := int(m.B + m.C)
	mp := p.boxFor(m)
	for p.tr.Round() < final {
		var err error
		mp, err = p.broadcastStepPtr(mp)
		if err != nil {
			return err
		}
	}
	return p.performReset(int(m.A), int(m.C))
}

// performReset dispatches the rollback: by level (basic algorithm) or by
// journal index (fine-grained refinement).
func (p *Process) performReset(target, newDiam int) error {
	if p.cfg.FineGrainedReset {
		return p.performFineReset(target, newDiam)
	}
	return p.performLevelReset(target, newDiam)
}

// performLevelReset rolls back to the beginning of the construction of
// level resetLevel: restore MyID and NextFreshID to their values at that
// level's begin, delete the undone VHT levels, and adopt the new diameter
// estimate (Listing 6 lines 34–41).
func (p *Process) performLevelReset(resetLevel, newDiam int) error {
	snap, ok := p.snapshots[resetLevel]
	if !ok {
		return fmt.Errorf("core: reset to level %d, which this process never started", resetLevel)
	}
	if g := p.group; g != nil {
		// Joint truncation of the shared tree (first arrival truncates,
		// later members resynchronize their log cursors). A fork inside
		// clears p.group; the private path below then finishes the job.
		if err := g.truncate(p, resetLevel, newDiam, p.tr.Round(), snap.nextFreshID); err != nil {
			return err
		}
	} else if g := p.forkedFrom; g != nil {
		// A forked member rejoins here if the group performs the same reset:
		// the rollback target is the agreed begin-of-level snapshot, where
		// private and shared state coincide again.
		g.rejoin(p, resetLevel, newDiam, p.tr.Round(), snap.nextFreshID)
	}
	if p.group == nil {
		if c := p.vht.CompactedLevels(); c > 0 && resetLevel <= c {
			return fmt.Errorf("core: reset to level %d outran the CompactVHT lag (levels 1..%d released); disable CompactVHT under faulty schedules", resetLevel, c)
		}
		p.vht.TruncateLevels(resetLevel)
	}
	p.myID = snap.myID
	p.nextFreshID = snap.nextFreshID
	for l := range p.snapshots {
		if l > resetLevel {
			delete(p.snapshots, l)
		}
	}
	for len(p.journal) > 0 && p.journal[len(p.journal)-1].level >= resetLevel {
		p.journal = p.journal[:len(p.journal)-1]
	}
	if resetLevel == 0 {
		p.claimed = false
	}
	p.currentLevel = resetLevel
	p.diamEstimate = newDiam
	p.temp = nil
	p.lg = nil
	p.obsList = nil
	return nil
}

// performFineReset rolls back to journal index `index` (Section 5,
// "Optimized running time"): truncate the journal, restore the begin-round
// snapshot of the level the index falls in, replay the surviving entries of
// that level, and resume mid-level — without redoing the begin round.
func (p *Process) performFineReset(index, newDiam int) error {
	if index > len(p.journal) {
		return fmt.Errorf("core: reset to journal index %d beyond local count %d", index, len(p.journal))
	}
	p.journal = p.journal[:index]

	// The target level is the deepest one whose construction began at or
	// before the index.
	level, found := -1, false
	for l, snap := range p.snapshots {
		if snap.journalLen <= index && l > level {
			level, found = l, true
		}
	}
	if !found {
		return fmt.Errorf("core: no snapshot covers journal index %d", index)
	}
	if c := p.vht.CompactedLevels(); c > 0 && level <= c {
		return fmt.Errorf("core: reset to level %d outran the CompactVHT lag (levels 1..%d released); disable CompactVHT under faulty schedules", level, c)
	}
	snap := p.snapshots[level]
	p.myID = snap.myID
	p.nextFreshID = snap.nextFreshID
	p.claimed = snap.claimed
	p.obsList = append([]obs(nil), snap.obsList...)
	p.vht.TruncateLevels(level)
	for l := range p.snapshots {
		if l > level {
			delete(p.snapshots, l)
		}
	}
	p.currentLevel = level
	p.diamEstimate = newDiam

	// Rebuild the per-level working state and replay the surviving
	// accepted messages of this level (all entries past the snapshot are
	// of this level, since deeper levels' snapshots exceed the index).
	p.temp = nil
	p.lg = nil
	if !(p.cfg.buildsInputLevel() && level == 0) {
		if err := p.resetLevelState(level); err != nil {
			return err
		}
	}
	for _, e := range p.journal[snap.journalLen:] {
		if e.level != level {
			return fmt.Errorf("core: journal entry at level %d inside level-%d replay", e.level, level)
		}
		if e.msg.Label == wire.LabelEnd {
			// Unreachable: an End inside the replay range implies the next
			// level's snapshot exists with journalLen ≤ index (the begin
			// snapshot is stored even when the begin round sees an error),
			// contradicting the maximality of `level`.
			return fmt.Errorf("core: level-end entry inside level-%d replay", level)
		}
		if err := p.applyAccepted(e.msg, false); err != nil {
			return fmt.Errorf("core: replay: %w", err)
		}
	}
	p.resumeMidLevel = true
	return nil
}
