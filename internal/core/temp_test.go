package core

import "testing"

func TestTempVHTRoots(t *testing.T) {
	tv := newTempVHT([]int{3, 7})
	if tv.root(3) == nil || tv.root(3).id != 3 {
		t.Fatal("root 3 missing")
	}
	if tv.root(99) != nil {
		t.Fatal("unknown ID should have no root")
	}
}

func TestTempVHTChains(t *testing.T) {
	tv := newTempVHT([]int{0, 1})
	// 0 observes 1 (mult 1) → child 2; child 2 observes 0's class (mult 2)
	// → child 4.
	if _, err := tv.addChild(2, 0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := tv.addChild(4, 2, 0, 2); err != nil {
		t.Fatal(err)
	}
	if got := tv.root(4).id; got != 0 {
		t.Fatalf("root of 4 is %d, want 0", got)
	}
	reds, err := tv.appendPathRedEdges(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []obs{{id2: 0, mult: 2}, {id2: 1, mult: 1}}
	if len(reds) != 2 || reds[0] != want[0] || reds[1] != want[1] {
		t.Fatalf("path red edges = %v, want %v", reds, want)
	}
	// Roots contribute no red edges.
	rootReds, err := tv.appendPathRedEdges(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rootReds) != 0 {
		t.Fatalf("root path reds = %v", rootReds)
	}
}

func TestTempVHTAccumulatesRepeatedSources(t *testing.T) {
	tv := newTempVHT([]int{0})
	if _, err := tv.addChild(2, 0, 0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := tv.addChild(3, 2, 0, 2); err != nil {
		t.Fatal(err)
	}
	reds, err := tv.appendPathRedEdges(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(reds) != 1 || reds[0].id2 != 0 || reds[0].mult != 3 {
		t.Fatalf("accumulated path reds = %v, want [{0 3}]", reds)
	}
}

func TestTempVHTErrors(t *testing.T) {
	tv := newTempVHT([]int{0})
	if _, err := tv.addChild(2, 99, 0, 1); err == nil {
		t.Error("unknown parent must fail")
	}
	if _, err := tv.addChild(0, 0, 0, 1); err == nil {
		t.Error("duplicate ID must fail")
	}
	if _, err := tv.appendPathRedEdges(42, nil); err == nil {
		t.Error("unknown node must fail")
	}
}

func TestLevelGraphCycleDetection(t *testing.T) {
	lg := newLevelGraph([]int{1, 2, 3, 4})
	if err := lg.addEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := lg.addEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	if !lg.connected(1, 3) {
		t.Error("1 and 3 should be connected")
	}
	if lg.connected(1, 4) {
		t.Error("4 should be isolated")
	}
	if !lg.hasEdge(2, 1) {
		t.Error("edges are undirected")
	}
	// Re-adding an existing edge is a no-op.
	if err := lg.addEdge(1, 2); err != nil {
		t.Errorf("re-add: %v", err)
	}
	// Closing the triangle must fail.
	if err := lg.addEdge(1, 3); err == nil {
		t.Error("cycle-closing edge must fail")
	}
	if err := lg.addEdge(2, 2); err == nil {
		t.Error("self-edge must fail")
	}
}

func TestLevelGraphBecomesSpanningTree(t *testing.T) {
	ids := []int{10, 20, 30, 40, 50}
	lg := newLevelGraph(ids)
	edges := [][2]int{{10, 20}, {20, 30}, {30, 40}, {40, 50}}
	for _, e := range edges {
		if err := lg.addEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	// n-1 edges and full connectivity: a spanning tree.
	if len(lg.edges) != len(ids)-1 {
		t.Fatalf("%d edges, want %d", len(lg.edges), len(ids)-1)
	}
	for _, id := range ids[1:] {
		if !lg.connected(ids[0], id) {
			t.Fatalf("%d not connected to %d", ids[0], id)
		}
	}
}
