package core

import (
	"testing"

	"anondyn/internal/dynnet"
	"anondyn/internal/engine"
	"anondyn/internal/historytree"
	"anondyn/internal/wire"
)

// share_test.go pins cross-process structural sharing (share.go, DESIGN.md
// decision 15): a shared run must be indistinguishable from a PrivateVHT
// run in every observable — answer, rounds, levels, message totals, tree
// bytes, compaction counters — while actually collapsing the n-fold work
// (hits ≫ applies). Forks can occur even in-model (a double broadcast
// failure slips a divergent message past the ack comparison); they must
// not change any observable, because the fork replays the member's exact
// verified prefix and the member rejoins at the protocol's own reset.

// runPair executes the same job with sharing on and off and returns
// (shared, private).
func runPair(t *testing.T, s dynnet.Schedule, inputs []historytree.Input, cfg Config, opts RunOptions) (*RunResult, *RunResult) {
	t.Helper()
	shared, err := Run(s, inputs, cfg, opts)
	if err != nil {
		t.Fatalf("shared run: %v", err)
	}
	cfg.PrivateVHT = true
	private, err := Run(s, inputs, cfg, opts)
	if err != nil {
		t.Fatalf("private run: %v", err)
	}
	return shared, private
}

// requireSameResult compares every protocol-visible dimension of two runs.
// Tree bytes are compared when both runs kept an uncompacted tree
// (CanonicalForm does not model compacted trees).
func requireSameResult(t *testing.T, shared, private *RunResult) {
	t.Helper()
	if shared.N != private.N {
		t.Fatalf("N: shared %d, private %d", shared.N, private.N)
	}
	if len(shared.Multiset) != len(private.Multiset) {
		t.Fatalf("multiset size: shared %v, private %v", shared.Multiset, private.Multiset)
	}
	for in, c := range private.Multiset {
		if shared.Multiset[in] != c {
			t.Fatalf("multiset at %+v: shared %d, private %d", in, shared.Multiset[in], c)
		}
	}
	if !sameFrequencies(shared.Frequencies, private.Frequencies) {
		t.Fatalf("frequencies: shared %+v, private %+v", shared.Frequencies, private.Frequencies)
	}
	ss, ps := shared.Stats, private.Stats
	if ss.Rounds != ps.Rounds || ss.Levels != ps.Levels || ss.Resets != ps.Resets ||
		ss.FinalDiamEstimate != ps.FinalDiamEstimate {
		t.Fatalf("run shape: shared rounds=%d levels=%d resets=%d diam=%d, private rounds=%d levels=%d resets=%d diam=%d",
			ss.Rounds, ss.Levels, ss.Resets, ss.FinalDiamEstimate,
			ps.Rounds, ps.Levels, ps.Resets, ps.FinalDiamEstimate)
	}
	if ss.TotalMessages != ps.TotalMessages || ss.TotalBits != ps.TotalBits ||
		ss.MaxMessageBits != ps.MaxMessageBits {
		t.Fatalf("traffic: shared (%d msgs, %d bits, max %d), private (%d msgs, %d bits, max %d)",
			ss.TotalMessages, ss.TotalBits, ss.MaxMessageBits,
			ps.TotalMessages, ps.TotalBits, ps.MaxMessageBits)
	}
	if ss.CompactedLevels != ps.CompactedLevels || ss.CompactedNodes != ps.CompactedNodes ||
		ss.ResidentNodes != ps.ResidentNodes || ss.PeakResidentNodes != ps.PeakResidentNodes {
		t.Fatalf("residency: shared (%d lvls, %d freed, %d live, %d peak), private (%d lvls, %d freed, %d live, %d peak)",
			ss.CompactedLevels, ss.CompactedNodes, ss.ResidentNodes, ss.PeakResidentNodes,
			ps.CompactedLevels, ps.CompactedNodes, ps.ResidentNodes, ps.PeakResidentNodes)
	}
	if shared.VHT != nil && private.VHT != nil && ss.CompactedLevels == 0 {
		if g, w := historytree.CanonicalForm(shared.VHT), historytree.CanonicalForm(private.VHT); g != w {
			t.Fatalf("canonical form mismatch:\n shared %q\nprivate %q", g, w)
		}
	}
}

// TestSharedVHTEquivalence sweeps the configuration surface: modes,
// extensions, arithmetic backends, compaction, and batching must all be
// byte-equivalent between shared and private runs.
func TestSharedVHTEquivalence(t *testing.T) {
	cases := []struct {
		name       string
		cfg        Config
		n          int
		leaderless bool
	}{
		{"leader-basic", Config{Mode: ModeLeader}, 12, false},
		{"leader-inputs", Config{Mode: ModeLeader, BuildInputLevel: true}, 10, false},
		{"leader-batch", Config{Mode: ModeLeader, BatchSize: 4}, 10, false},
		{"leader-compact", Config{Mode: ModeLeader, CompactVHT: true}, 14, false},
		{"leader-bigint", Config{Mode: ModeLeader, Arithmetic: historytree.ArithBig}, 9, false},
		{"leader-halt", Config{Mode: ModeLeader, SimultaneousHalt: true}, 8, false},
		{"leaderless", Config{Mode: ModeLeaderless}, 10, true},
		{"leaderless-compact", Config{Mode: ModeLeaderless, CompactVHT: true}, 12, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, seed := range []int64{3, 17} {
				cfg := tc.cfg
				cfg.MaxLevels = 3*tc.n + 6
				var inputs []historytree.Input
				if tc.leaderless {
					cfg.DiamBound = tc.n
					inputs = make([]historytree.Input, tc.n)
					for i := range inputs {
						inputs[i].Value = int64(i % 3)
					}
				} else {
					inputs = leaderInputs(tc.n)
					if cfg.BuildInputLevel {
						for i := range inputs {
							inputs[i].Value = int64(i % 2)
						}
					}
				}
				s := dynnet.NewRandomConnected(tc.n, 0.4, seed)
				shared, private := runPair(t, s, inputs, cfg, RunOptions{})
				requireSameResult(t, shared, private)
				if shared.Stats.SharedForks != 0 && shared.Stats.Resets == 0 {
					// A fork needs a divergent acceptance, which the ack
					// machinery always catches with a reset eventually.
					t.Fatalf("seed %d: %d forks but no resets", seed, shared.Stats.SharedForks)
				}
				if shared.Stats.SharedApplies == 0 || shared.Stats.SharedHits == 0 {
					t.Fatalf("seed %d: sharing never engaged (applies=%d hits=%d)",
						seed, shared.Stats.SharedApplies, shared.Stats.SharedHits)
				}
				if private.Stats.SharedApplies != 0 || private.Stats.SharedHits != 0 {
					t.Fatalf("seed %d: private run reports sharing counters %+v", seed, private.Stats)
				}
			}
		})
	}
}

// TestSharedVHTEquivalenceSchedulers repeats the core equivalence across
// the engine's execution strategies: the sharing layer's locking must not
// change results under real parallelism.
func TestSharedVHTEquivalenceSchedulers(t *testing.T) {
	schedulers := []struct {
		name string
		s    engine.Scheduler
	}{
		{"sequential", engine.SchedulerSequential},
		{"parallel", engine.SchedulerParallel},
		{"concurrent", engine.SchedulerConcurrent},
	}
	const n = 12
	s := dynnet.NewRandomConnected(n, 0.35, 7)
	for _, mode := range []string{"leader", "leaderless"} {
		for _, sched := range schedulers {
			t.Run(mode+"/"+sched.name, func(t *testing.T) {
				cfg := Config{Mode: ModeLeader, MaxLevels: 3*n + 6}
				inputs := leaderInputs(n)
				if mode == "leaderless" {
					cfg.Mode = ModeLeaderless
					cfg.DiamBound = n
					inputs = make([]historytree.Input, n)
					for i := range inputs {
						inputs[i].Value = int64(i % 2)
					}
				}
				shared, private := runPair(t, s, inputs, cfg, RunOptions{Scheduler: sched.s})
				requireSameResult(t, shared, private)
			})
		}
	}
}

// TestSharedVHTHitRate pins the collapse factor: on an n-process fault-free
// run every logged operation is applied once and verified n-1 times, minus
// only the tail a process skips after terminating early, so hits must far
// exceed applies.
func TestSharedVHTHitRate(t *testing.T) {
	const n = 8
	s := dynnet.NewRandomConnected(n, 0.5, 11)
	res, err := Run(s, leaderInputs(n), Config{Mode: ModeLeader, MaxLevels: 3*n + 6}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.SharedForks != 0 {
		t.Fatalf("%d forks on a fault-free run", st.SharedForks)
	}
	if st.SharedHits < int64(n-2)*st.SharedApplies {
		t.Fatalf("hit rate too low: %d hits for %d applies on %d processes",
			st.SharedHits, st.SharedApplies, n)
	}
	if st.SharedHits > int64(n-1)*st.SharedApplies {
		t.Fatalf("hits %d exceed (n-1)×applies (%d × %d): double-counted verification",
			st.SharedHits, n-1, st.SharedApplies)
	}
}

// twoSharedProcs builds a two-member group with initialized processes, as
// run() would, without an engine underneath — enough to unit-test the
// gate, fork, and truncate mechanics directly.
func twoSharedProcs(cfg Config) (*Process, *Process, *shareGroup) {
	g := newShareGroup(cfg, 2)
	p0 := NewProcess(cfg, historytree.Input{Leader: true})
	p1 := NewProcess(cfg, historytree.Input{})
	p0.group, p0.member = g, 0
	p1.group, p1.member = g, 1
	p0.initialize()
	p1.initialize()
	return p0, p1, g
}

// TestSharedVHTForkOnDivergence drives the log to a mismatch: the diverging
// member must detach onto a replay of exactly the prefix it verified — the
// other branch's in-flight op must NOT leak into the private copy — while
// the group (and the member that applied first) keeps the shared state.
func TestSharedVHTForkOnDivergence(t *testing.T) {
	p0, p1, g := twoSharedProcs(Config{Mode: ModeLeader})
	if err := p0.resetLevelState(1); err != nil {
		t.Fatal(err)
	}
	if err := p1.resetLevelState(1); err != nil {
		t.Fatal(err)
	}
	if err := p0.applyAccepted(wire.Edge(0, 1, 1), false); err != nil {
		t.Fatal(err)
	}
	// p1 "accepted" a different edge: mismatch at the opTemp gate.
	g.mu.Lock()
	mutate, err := p1.opGate(opTemp, 0, 1, 2)
	g.mu.Unlock()
	if err != nil {
		t.Fatalf("fork must succeed: %v", err)
	}
	if !mutate {
		t.Fatal("post-fork gate must tell the caller to mutate privately")
	}
	if p1.group != nil {
		t.Fatal("diverged member still attached to the group")
	}
	if p1.forkedFrom != g {
		t.Fatal("diverged member did not remember its group for rejoining")
	}
	if p1.vht == g.tree {
		t.Fatal("diverged member still shares the tree")
	}
	if got, want := historytree.CanonicalForm(p1.vht), historytree.CanonicalForm(g.tree); got != want {
		t.Fatalf("fork replay differs from shared tree:\n got %q\nwant %q", got, want)
	}
	if p1.temp != &p1.tempScratch || p1.lg != &p1.lgScratch {
		t.Fatal("diverged member's temp/lg not repointed at private scratch")
	}
	// The replay stops at p1's cursor: p0's divergent temp node (ID 2) is
	// absent, so p1's own mutation can reuse the fresh ID without colliding.
	if p1.temp.node(2) != nil {
		t.Fatal("fork replay leaked the other branch's in-flight op")
	}
	if p1.temp.node(0) == nil || p1.temp.node(1) == nil {
		t.Fatal("fork replay lost the level's temp roots")
	}
	if err := p1.updateTempVHT(0, 1, 2); err != nil {
		t.Fatalf("post-fork private mutation: %v", err)
	}
	if p1.temp.node(2) == nil {
		t.Fatal("post-fork private mutation did not create the temp node")
	}
	if g.forks != 1 || g.active[1] {
		t.Fatalf("group bookkeeping: forks=%d active[1]=%v", g.forks, g.active[1])
	}
	// p0 is unaffected and keeps mutating shared state.
	if p0.group == nil || p0.vht != g.tree {
		t.Fatal("non-diverged member lost its group attachment")
	}
}

// TestSharedVHTForkAfterCompaction: the live shared tree cannot be cloned
// once compaction released levels, but a fork replays the log from scratch,
// so divergence after compaction yields a full-history private copy.
func TestSharedVHTForkAfterCompaction(t *testing.T) {
	cfg := Config{Mode: ModeLeader, CompactVHT: true}
	p0, p1, g := twoSharedProcs(cfg)
	// p0 builds three levels through the log: per level, one accepted Edge
	// creates the temp node and one accepted Done promotes it.
	for level := 1; level <= 3; level++ {
		if err := p0.resetLevelState(level); err != nil {
			t.Fatal(err)
		}
		parent := g.tree.Level(level - 1)[0].ID
		other := parent
		if level == 1 {
			other = 1
		}
		if err := p0.applyAccepted(wire.Edge(int64(parent), int64(other), 1), false); err != nil {
			t.Fatal(err)
		}
		if err := p0.applyAccepted(wire.Done(int64(p0.nextFreshID-1)), false); err != nil {
			t.Fatal(err)
		}
	}
	// p1 verifies levels 1 and 2, then the shared copy releases level 1.
	if err := p1.resetLevelState(1); err != nil {
		t.Fatal(err)
	}
	if err := p1.applyAccepted(wire.Edge(0, 1, 1), false); err != nil {
		t.Fatal(err)
	}
	if err := p1.applyAccepted(wire.Done(2), false); err != nil {
		t.Fatal(err)
	}
	level1ID := g.tree.Level(1)[0].ID
	if g.tree.CompactLevels(2) == 0 {
		t.Fatal("compaction did not engage")
	}
	// p1 diverges at its next op (the group logged level 2's setup there).
	g.mu.Lock()
	_, err := p1.opGate(opTemp, 9, 9, 9)
	g.mu.Unlock()
	if err != nil {
		t.Fatalf("fork after compaction must succeed via replay: %v", err)
	}
	if p1.group != nil {
		t.Fatal("diverged member still attached to the group")
	}
	if p1.vht.CompactedLevels() != 0 {
		t.Fatalf("fork replay inherited compaction (levels 1..%d)", p1.vht.CompactedLevels())
	}
	// The replayed copy holds the level the shared tree released.
	if p1.vht.NodeByID(level1ID) == nil {
		t.Fatalf("fork replay lost released level-1 node %d", level1ID)
	}
}

// TestSharedVHTTruncateResync: a member that sat out a level's tail in an
// error phase has a lagging cursor; joining the group's truncation must
// jump it over the unapplied ops, while a member joining a different reset
// forks.
func TestSharedVHTTruncateResync(t *testing.T) {
	p0, p1, g := twoSharedProcs(Config{Mode: ModeLeader})
	if err := p0.resetLevelState(1); err != nil {
		t.Fatal(err)
	}
	if err := p0.applyAccepted(wire.Edge(0, 1, 1), false); err != nil {
		t.Fatal(err)
	}
	// p1 lagged (cursor 0). Both now join the same reset; p1 arrives first.
	if err := g.truncate(p1, 1, 2, 40, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.truncate(p0, 1, 2, 40, 2); err != nil {
		t.Fatal(err)
	}
	if g.lastOp[0] != len(g.ops) || g.lastOp[1] != len(g.ops) {
		t.Fatalf("cursors %v not at log end %d after resync", g.lastOp, len(g.ops))
	}
	// A third reset record that differs from the joiner's forks it.
	if err := g.truncate(p1, 1, 4, 60, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.truncate(p0, 1, 2, 60, 2); err != nil {
		t.Fatal(err)
	}
	if p0.group != nil {
		t.Fatal("member joining a different reset must fork")
	}
	if p1.group == nil {
		t.Fatal("first applier must stay attached")
	}
	if g.forks != 1 {
		t.Fatalf("forks = %d, want 1", g.forks)
	}
}

// TestSharedVHTRejoinAfterFork: a level reset rolls every participant back
// to the agreed begin-of-level snapshot, which is where a forked member's
// private state and the shared state coincide — so joining the same reset
// must reattach it. A forked member can even be the first participant to
// record the reset.
func TestSharedVHTRejoinAfterFork(t *testing.T) {
	p0, p1, g := twoSharedProcs(Config{Mode: ModeLeader})
	if err := p0.resetLevelState(1); err != nil {
		t.Fatal(err)
	}
	if err := p0.applyAccepted(wire.Edge(0, 1, 1), false); err != nil {
		t.Fatal(err)
	}
	g.mu.Lock()
	_, err := p1.opGate(opTemp, 0, 1, 2) // divergence: p1 forks
	g.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	if p1.group != nil || p1.forkedFrom != g {
		t.Fatal("fork bookkeeping broken")
	}
	// p1 reaches its performReset first: it records the truncation on the
	// shared log, truncates the shared tree, and reattaches.
	g.rejoin(p1, 1, 2, 40, 2)
	if p1.group != g || p1.vht != g.tree {
		t.Fatal("forked member did not rejoin on a matching reset")
	}
	if !g.active[1] {
		t.Fatal("rejoined member not marked active")
	}
	if g.keeps[1] != 0 {
		t.Fatalf("rejoined member's compaction bound %d not reset", g.keeps[1])
	}
	// p0 joins the same reset and resynchronizes against p1's record.
	if err := g.truncate(p0, 1, 2, 40, 2); err != nil {
		t.Fatal(err)
	}
	if g.lastOp[0] != len(g.ops) || g.lastOp[1] != len(g.ops) {
		t.Fatalf("cursors %v not at log end %d after rejoin", g.lastOp, len(g.ops))
	}
	// A rejoin attempt for a reset that differs from the group's record
	// must leave the member private.
	g.mu.Lock()
	if _, err := p1.opGate(opTemp, 0, 1, 1); err != nil { // p1 logs an op...
		g.mu.Unlock()
		t.Fatal(err)
	}
	if _, err := p0.opGate(opTemp, 0, 1, 3); err != nil { // ...p0 diverges
		g.mu.Unlock()
		t.Fatal(err)
	}
	g.mu.Unlock()
	if err := g.truncate(p1, 1, 4, 80, 2); err != nil {
		t.Fatal(err)
	}
	g.rejoin(p0, 1, 8, 80, 2)
	if p0.group != nil {
		t.Fatal("member rejoining a different reset must stay private")
	}
}
