package core

import (
	"fmt"
	"testing"
	"testing/quick"

	"anondyn/internal/dynnet"
	"anondyn/internal/historytree"
)

func TestKeepAllLinksStillCorrect(t *testing.T) {
	for _, n := range []int{3, 5, 8} {
		for _, mk := range map[string]func(int) dynnet.Schedule{
			"random": func(n int) dynnet.Schedule { return dynnet.NewRandomConnected(n, 0.5, 6) },
			"path":   func(n int) dynnet.Schedule { return dynnet.NewShiftingPath(n) },
		} {
			cfg := Config{Mode: ModeLeader, KeepAllLinks: true, MaxLevels: 3*n + 6}
			res, err := Run(mk(n), leaderInputs(n), cfg, RunOptions{})
			if err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
			if res.N != n {
				t.Fatalf("n=%d: counted %d", n, res.N)
			}
		}
	}
}

func TestKeepAllLinksLosesAmortization(t *testing.T) {
	// On dense networks the pruned VHT must carry no more red edges
	// (typically far fewer) than the unpruned one.
	n := 9
	s := dynnet.NewRandomConnected(n, 0.9, 12)
	pruned, err := Run(s, leaderInputs(n), Config{Mode: ModeLeader, MaxLevels: 3*n + 6}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	full, err := Run(s, leaderInputs(n),
		Config{Mode: ModeLeader, KeepAllLinks: true, MaxLevels: 3*n + 6}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if pruned.N != n || full.N != n {
		t.Fatalf("counts %d / %d", pruned.N, full.N)
	}
	pr := pruned.VHT.RedEdgeCount(pruned.Stats.Levels)
	fr := full.VHT.RedEdgeCount(full.Stats.Levels)
	t.Logf("red edges: pruned=%d full=%d; rounds: pruned=%d full=%d",
		pr, fr, pruned.Stats.Rounds, full.Stats.Rounds)
	if fr < pr {
		t.Errorf("unpruned VHT has fewer red edges (%d) than pruned (%d)", fr, pr)
	}
}

func TestBatchedEdgesCorrectAcrossSizes(t *testing.T) {
	for _, batch := range []int{2, 4, 16} {
		for _, n := range []int{3, 6, 9} {
			cfg := Config{Mode: ModeLeader, BatchSize: batch, MaxLevels: 3*n + 6}
			res, err := Run(dynnet.NewRandomConnected(n, 0.5, 9), leaderInputs(n), cfg, RunOptions{})
			if err != nil {
				t.Fatalf("batch=%d n=%d: %v", batch, n, err)
			}
			if res.N != n {
				t.Fatalf("batch=%d n=%d: counted %d", batch, n, res.N)
			}
		}
	}
}

func TestBatchingTradesBitsForRounds(t *testing.T) {
	// Larger batches must not increase rounds, and must increase the
	// maximum message size; batch≈n should need noticeably fewer rounds
	// than batch=1 on dense networks (the Section 6 remark).
	n := 10
	s := dynnet.NewRandomConnected(n, 0.9, 4)
	type out struct{ rounds, bits int }
	results := make(map[int]out)
	for _, batch := range []int{1, 4, 16} {
		cfg := Config{Mode: ModeLeader, BatchSize: batch, KeepAllLinks: true, MaxLevels: 3*n + 6}
		res, err := Run(s, leaderInputs(n), cfg, RunOptions{})
		if err != nil {
			t.Fatalf("batch=%d: %v", batch, err)
		}
		if res.N != n {
			t.Fatalf("batch=%d: counted %d", batch, res.N)
		}
		results[batch] = out{rounds: res.Stats.Rounds, bits: res.Stats.MaxMessageBits}
		t.Logf("batch=%2d: rounds=%d maxBits=%d", batch, res.Stats.Rounds, res.Stats.MaxMessageBits)
	}
	if results[16].rounds >= results[1].rounds {
		t.Errorf("batch=16 used %d rounds, batch=1 used %d — batching should save rounds",
			results[16].rounds, results[1].rounds)
	}
	if results[16].bits <= results[1].bits {
		t.Errorf("batch=16 max bits %d not larger than batch=1's %d",
			results[16].bits, results[1].bits)
	}
}

func TestBatchingWithResetsAndGeneralized(t *testing.T) {
	inputs := []historytree.Input{
		{Leader: true}, {Value: 1}, {Value: 1}, {Value: 2}, {Value: 2}, {Value: 2}, {Value: 1},
	}
	n := len(inputs)
	for _, fine := range []bool{false, true} {
		cfg := Config{
			Mode:             ModeLeader,
			BatchSize:        4,
			BuildInputLevel:  true,
			FineGrainedReset: fine,
			MaxLevels:        3*n + 8,
		}
		res, err := Run(dynnet.NewShiftingPath(n), inputs, cfg, RunOptions{})
		if err != nil {
			t.Fatalf("fine=%v: %v", fine, err)
		}
		if res.N != n {
			t.Fatalf("fine=%v: counted %d", fine, res.N)
		}
		if res.Multiset[historytree.Input{Value: 1}] != 3 {
			t.Fatalf("fine=%v: multiset %v", fine, res.Multiset)
		}
	}
}

func TestBatchConfigValidation(t *testing.T) {
	cfg := Config{Mode: ModeLeader, BatchSize: -1}
	if err := cfg.Validate(leaderInputs(3)); err == nil {
		t.Fatal("negative BatchSize must be rejected")
	}
	for _, batch := range []int{0, 1} {
		cfg := Config{Mode: ModeLeader, BatchSize: batch}
		if cfg.keepAllLinks() {
			t.Errorf("BatchSize=%d must not imply KeepAllLinks", batch)
		}
	}
	cfg2 := Config{Mode: ModeLeader, BatchSize: 2}
	if !cfg2.keepAllLinks() {
		t.Error("BatchSize≥2 must imply KeepAllLinks")
	}
}

func TestBatchedRunsMatchUnbatchedCount(t *testing.T) {
	// Property-style sweep: batched and unbatched runs on the same
	// schedule always agree on n.
	for seed := int64(1); seed <= 6; seed++ {
		n := 3 + int(seed)%6
		s := dynnet.NewRandomConnected(n, 0.4, seed)
		a, err := Run(s, leaderInputs(n), Config{Mode: ModeLeader, MaxLevels: 3*n + 6}, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(s, leaderInputs(n),
			Config{Mode: ModeLeader, BatchSize: 8, MaxLevels: 3*n + 6}, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if a.N != b.N {
			t.Fatalf("seed=%d: unbatched %d vs batched %d", seed, a.N, b.N)
		}
	}
}

// TestQuickFineGrainedResetAblation is the property-based ablation of the
// fine-grained reset optimisation: over random (n, topology, seed,
// generalized?) draws, a run with FineGrainedReset on must produce exactly
// the Result of the same run with it off — same count, same multiset. The
// optimisation may only change *when* resets rewind, never *what* the
// protocol computes.
func TestQuickFineGrainedResetAblation(t *testing.T) {
	prop := func(nRaw uint8, seed int64, topoRaw uint8, generalized bool) bool {
		n := 2 + int(nRaw)%8 // [2, 9]
		var s dynnet.Schedule
		switch topoRaw % 3 {
		case 0:
			s = dynnet.NewRandomConnected(n, 0.4, seed)
		case 1:
			s = dynnet.NewShiftingPath(n) // diameter Θ(n): reset-heavy
		default:
			s = dynnet.NewStatic(dynnet.Path(n))
		}
		inputs := leaderInputs(n)
		if generalized {
			for i := 1; i < n; i++ {
				inputs[i].Value = int64(i % 3)
			}
		}
		run := func(fine bool) *RunResult {
			cfg := Config{
				Mode:             ModeLeader,
				BuildInputLevel:  generalized,
				FineGrainedReset: fine,
				MaxLevels:        3*n + 8,
			}
			res, err := Run(s, inputs, cfg, RunOptions{})
			if err != nil {
				t.Logf("n=%d seed=%d topo=%d gen=%v fine=%v: %v", n, seed, topoRaw%3, generalized, fine, err)
				return nil
			}
			return res
		}
		coarse, fine := run(false), run(true)
		if coarse == nil || fine == nil {
			return false
		}
		if coarse.N != fine.N {
			t.Logf("n=%d seed=%d: coarse counted %d, fine counted %d", n, seed, coarse.N, fine.N)
			return false
		}
		if len(coarse.Multiset) != len(fine.Multiset) {
			t.Logf("n=%d seed=%d: multiset class counts differ: %v vs %v", n, seed, coarse.Multiset, fine.Multiset)
			return false
		}
		for in, cnt := range coarse.Multiset {
			if fine.Multiset[in] != cnt {
				t.Logf("n=%d seed=%d: multiset[%v]: %d vs %d", n, seed, in, cnt, fine.Multiset[in])
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func ExampleConfig_batching() {
	n := 8
	s := dynnet.NewRandomConnected(n, 0.8, 1)
	res, err := Run(s, leaderInputs(n),
		Config{Mode: ModeLeader, BatchSize: n, MaxLevels: 3 * n}, RunOptions{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(res.N)
	// Output: 8
}
