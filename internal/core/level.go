package core

import (
	"fmt"

	"anondyn/internal/historytree"
	"anondyn/internal/wire"
)

// setUpNewLevel is SetUpNewLevel (Listing 4 lines 1–19): exchange Begin
// messages carrying IDs, record the observed (ID, multiplicity) pairs in
// ObsList, and reinitialize the temporary VHT and level graph from the
// previous VHT level. It returns restart=true when a foreign (non-Begin)
// message revealed an error.
func (p *Process) setUpNewLevel() (restart bool, err error) {
	snap := snapshot{
		myID:        p.myID,
		nextFreshID: p.nextFreshID,
		journalLen:  len(p.journal),
		claimed:     p.claimed,
	}
	msgs, err := p.sendAndReceive(wire.Begin(int64(p.myID)))
	if err != nil {
		return false, err
	}
	sortMessages(msgs)

	// Derive the observation list from the Begin messages received — even
	// when a foreign message is present, so that a later fine-grained reset
	// can resume this level from the snapshot ("by looking up the Begin
	// messages received in the appropriate begin round, each process is
	// also able to reconstruct its local ObsList", Section 5). Identical
	// Begins group into (ID, multiplicity) pairs; our own ID is discarded
	// and replaced by the cycle pair (MyID, 2).
	counts := make(map[int]int, len(msgs))
	for _, m := range msgs {
		if m.Label == wire.LabelBegin {
			counts[int(m.A)]++
		}
	}
	p.obsList = p.obsList[:0]
	for _, m := range msgs {
		if m.Label != wire.LabelBegin {
			continue
		}
		id := int(m.A)
		if c, ok := counts[id]; ok && id != p.myID {
			p.obsList = append(p.obsList, obs{id2: id, mult: c})
		}
		delete(counts, id)
	}
	p.obsList = append(p.obsList, obs{id2: p.myID, mult: 2})
	snap.obsList = append([]obs(nil), p.obsList...)
	p.snapshots[p.currentLevel] = snap

	prev := p.vht.Level(p.currentLevel - 1)
	ids := make([]int, len(prev))
	for i, v := range prev {
		ids[i] = v.ID
	}
	p.temp = newTempVHT(ids)
	p.lg = newLevelGraph(ids)

	// React to foreign messages last: a process in an error or reset phase
	// may have injected one; respond to the highest-priority intruder.
	var intruder wire.Message
	haveIntruder := false
	for _, m := range msgs {
		if m.Label == wire.LabelBegin {
			continue
		}
		if m.Label == wire.LabelHalt {
			return false, p.haltForward(m)
		}
		if !haveIntruder || Higher(m, intruder) {
			intruder, haveIntruder = m, true
		}
	}
	if haveIntruder {
		if err := p.handleError(intruder); err != nil {
			return false, err
		}
		return true, nil
	}
	if p.recordPrimary() {
		p.rec.noteBeginRound(p.tr.Round())
	}
	return false, nil
}

// makeVHTMessage is MakeVHTMessage (Listing 4 lines 21–35), extended with
// the Section 6 batching tradeoff: with BatchSize ≥ 2, up to BatchSize
// ObsList entries ride in a single Edge message; the follow-up entries
// implicitly chain onto the fresh temporary nodes the leading ones create.
func (p *Process) makeVHTMessage() wire.Message {
	if len(p.obsList) == 0 {
		if p.vht.NodeByID(p.myID) != nil {
			return wire.End()
		}
		return wire.Done(int64(p.myID))
	}
	k := p.cfg.BatchSize
	if k < 2 {
		o := p.obsList[0]
		return wire.Edge(int64(p.myID), int64(o.id2), int64(o.mult))
	}
	if k > len(p.obsList) {
		k = len(p.obsList)
	}
	pairs := make([]wire.EdgePair, k)
	for i, o := range p.obsList[:k] {
		pairs[i] = wire.EdgePair{ID2: int64(o.id2), Mult: int64(o.mult)}
	}
	m, err := wire.EdgeBatch(int64(p.myID), pairs)
	if err != nil {
		// Unreachable: pairs is non-empty by construction.
		return wire.Edge(int64(p.myID), int64(p.obsList[0].id2), int64(p.obsList[0].mult))
	}
	return m
}

// makeInputMessage is the level-0 analogue for Generalized Counting
// (Section 5): claim the process's input until the claim is accepted, then
// signal completion.
func (p *Process) makeInputMessage() wire.Message {
	if p.claimed {
		return wire.End()
	}
	return wire.Input(int64(p.myID), p.input.Value, p.input.Leader)
}

// acceptInput applies an accepted Input message: create the level-0 node
// for the claimed input class and, if this process made a matching claim,
// adopt the fresh ID.
func (p *Process) acceptInput(m wire.Message) error {
	in := historytree.Input{Leader: m.C == 1, Value: m.B}
	for _, v := range p.vht.Level(0) {
		if v.Input == in {
			return fmt.Errorf("core: input class %s accepted twice", in)
		}
	}
	node, err := p.vht.AddChild(p.nextFreshID, p.vht.Root(), in)
	if err != nil {
		return err
	}
	p.nextFreshID++
	if !p.claimed && p.myID == int(m.A) && p.input == in {
		p.myID = node.ID
		p.claimed = true
	}
	return nil
}

// updateTempVHT is UpdateTempVHT (Listing 5 lines 17–33): apply an accepted
// red-edge triplet (id1, id2, mult) to the temporary VHT, adopt the fresh
// ID if this process contributed the observation, extend the level graph,
// and prune observations that would close cycles.
func (p *Process) updateTempVHT(id1, id2, mult int) error {
	root1 := p.temp.root(id1)
	root2 := p.temp.root(id2)
	if root1 == nil || root2 == nil {
		return fmt.Errorf("core: accepted edge (%d,%d,%d) references unknown temp nodes", id1, id2, mult)
	}
	child, err := p.temp.addChild(p.nextFreshID, id1, root2.id, mult)
	if err != nil {
		return err
	}
	p.nextFreshID++
	if p.myID == id1 {
		if i := p.obsIndex(id2, mult); i >= 0 {
			p.obsList = append(p.obsList[:i], p.obsList[i+1:]...)
			p.myID = child.id
		}
	}
	if p.cfg.keepAllLinks() {
		// Ablation / batching mode: the virtual network keeps every link
		// of the selected round, so no level-graph bookkeeping happens and
		// no observation is ever pruned (the VHT loses the Lemma 4.6
		// amortization but remains a valid history tree).
		return nil
	}
	if root1.id != root2.id && !p.lg.hasEdge(root1.id, root2.id) {
		if err := p.lg.addEdge(root1.id, root2.id); err != nil {
			return err
		}
	}
	p.preventCycles()
	return nil
}

// preventCycles is PreventCyclesInLevelGraph (Listing 5 lines 7–15): drop
// from ObsList every pair whose acceptance would close a cycle in the level
// graph. Pairs within the process's own class (the C_v cycle) and pairs
// whose class edge already exists are kept.
func (p *Process) preventCycles() {
	root := p.temp.root(p.myID)
	if root == nil {
		return
	}
	kept := p.obsList[:0]
	for _, o := range p.obsList {
		if o.id2 == root.id || p.lg.hasEdge(root.id, o.id2) || !p.lg.connected(root.id, o.id2) {
			kept = append(kept, o)
		}
	}
	p.obsList = kept
}

// updateVHT is UpdateVHT (Listing 5 lines 35–48): promote the temporary
// node with the accepted Done ID into the VHT, attaching it under the VHT
// node of its temp root and giving it all red edges along its temp path.
func (p *Process) updateVHT(id int) error {
	tempRoot := p.temp.root(id)
	if tempRoot == nil {
		return fmt.Errorf("core: accepted Done(%d) references unknown temp node", id)
	}
	parent := p.vht.NodeByID(tempRoot.id)
	if parent == nil {
		return fmt.Errorf("core: temp root %d has no VHT counterpart", tempRoot.id)
	}
	child, err := p.vht.AddChild(id, parent, historytree.Input{})
	if err != nil {
		return err
	}
	reds, err := p.temp.pathRedEdges(id)
	if err != nil {
		return err
	}
	for _, src := range sortedIntKeys(reds) {
		srcNode := p.vht.NodeByID(src)
		if srcNode == nil {
			return fmt.Errorf("core: red edge source %d missing from VHT", src)
		}
		if err := p.vht.AddRed(child, srcNode, reds[src]); err != nil {
			return err
		}
	}
	return nil
}

// obsIndex returns the index of the pair (id2, mult) in ObsList, or -1.
func (p *Process) obsIndex(id2, mult int) int {
	for i, o := range p.obsList {
		if o.id2 == id2 && o.mult == mult {
			return i
		}
	}
	return -1
}

// recordPrimary reports whether this process is the designated recording
// process (the leader, or process 0 in leaderless mode), so that global
// counters are recorded exactly once.
func (p *Process) recordPrimary() bool {
	if p.cfg.Mode == ModeLeaderless {
		return p.tr.PID() == 0
	}
	return p.input.Leader
}

func sortedIntKeys(m map[int]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
