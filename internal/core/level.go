package core

import (
	"fmt"

	"anondyn/internal/historytree"
	"anondyn/internal/wire"
)

// setUpNewLevel is SetUpNewLevel (Listing 4 lines 1–19): exchange Begin
// messages carrying IDs, record the observed (ID, multiplicity) pairs in
// ObsList, and reinitialize the temporary VHT and level graph from the
// previous VHT level. It returns restart=true when a foreign (non-Begin)
// message revealed an error.
func (p *Process) setUpNewLevel() (restart bool, err error) {
	snap := snapshot{
		myID:        p.myID,
		nextFreshID: p.nextFreshID,
		journalLen:  len(p.journal),
		claimed:     p.claimed,
	}
	msgs, err := p.sendAndReceive(wire.Begin(int64(p.myID)))
	if err != nil {
		return false, err
	}
	sortMessages(msgs)

	// Derive the observation list from the Begin messages received — even
	// when a foreign message is present, so that a later fine-grained reset
	// can resume this level from the snapshot ("by looking up the Begin
	// messages received in the appropriate begin round, each process is
	// also able to reconstruct its local ObsList", Section 5). Identical
	// Begins group into (ID, multiplicity) pairs; our own ID is discarded
	// and replaced by the cycle pair (MyID, 2). The messages are sorted, so
	// equal Begins form contiguous runs and run-length encoding replaces
	// the seed's per-round counting map: pairs still come out in ascending
	// ID order, exactly as before.
	p.obsList = p.obsList[:0]
	for i := 0; i < len(msgs); {
		if msgs[i].Label != wire.LabelBegin {
			i++
			continue
		}
		id := int(msgs[i].A)
		c := 1
		for i+c < len(msgs) && msgs[i+c].Label == wire.LabelBegin && int(msgs[i+c].A) == id {
			c++
		}
		if id != p.myID {
			p.obsList = append(p.obsList, obs{id2: id, mult: c})
		}
		i += c
	}
	p.obsList = append(p.obsList, obs{id2: p.myID, mult: 2})
	snap.obsList = append([]obs(nil), p.obsList...)
	p.snapshots[p.currentLevel] = snap

	if err := p.resetLevelState(p.currentLevel); err != nil {
		return false, err
	}

	// React to foreign messages last: a process in an error or reset phase
	// may have injected one; respond to the highest-priority intruder.
	var intruder wire.Message
	haveIntruder := false
	for _, m := range msgs {
		if m.Label == wire.LabelBegin {
			continue
		}
		if m.Label == wire.LabelHalt {
			return false, p.haltForward(m)
		}
		if !haveIntruder || Higher(m, intruder) {
			intruder, haveIntruder = m, true
		}
	}
	if haveIntruder {
		if err := p.handleError(intruder); err != nil {
			return false, err
		}
		return true, nil
	}
	if p.recordPrimary() {
		p.rec.noteBeginRound(p.tr.Round())
	}
	return false, nil
}

// makeVHTMessage is MakeVHTMessage (Listing 4 lines 21–35), extended with
// the Section 6 batching tradeoff: with BatchSize ≥ 2, up to BatchSize
// ObsList entries ride in a single Edge message; the follow-up entries
// implicitly chain onto the fresh temporary nodes the leading ones create.
func (p *Process) makeVHTMessage() wire.Message {
	if len(p.obsList) == 0 {
		if p.vhtHasNode(p.myID) {
			return wire.End()
		}
		return wire.Done(int64(p.myID))
	}
	k := p.cfg.BatchSize
	if k < 2 {
		o := p.obsList[0]
		return wire.Edge(int64(p.myID), int64(o.id2), int64(o.mult))
	}
	if k > len(p.obsList) {
		k = len(p.obsList)
	}
	pairs := make([]wire.EdgePair, k)
	for i, o := range p.obsList[:k] {
		pairs[i] = wire.EdgePair{ID2: int64(o.id2), Mult: int64(o.mult)}
	}
	m, err := wire.EdgeBatch(int64(p.myID), pairs)
	if err != nil {
		// Unreachable: pairs is non-empty by construction.
		return wire.Edge(int64(p.myID), int64(p.obsList[0].id2), int64(p.obsList[0].mult))
	}
	return m
}

// makeInputMessage is the level-0 analogue for Generalized Counting
// (Section 5): claim the process's input until the claim is accepted, then
// signal completion.
func (p *Process) makeInputMessage() wire.Message {
	if p.claimed {
		return wire.End()
	}
	return wire.Input(int64(p.myID), p.input.Value, p.input.Leader)
}

// acceptInput applies an accepted Input message: create the level-0 node
// for the claimed input class and, if this process made a matching claim,
// adopt the fresh ID. Under sharing the node is created once per group;
// every member still advances its fresh-ID counter and checks its own
// claim (the new node's ID is the pre-increment counter by construction).
func (p *Process) acceptInput(m wire.Message) error {
	in := historytree.Input{Leader: m.C == 1, Value: m.B}
	mutate, err := p.opGate(opInput, m.A, m.B, m.C)
	if err != nil {
		return err
	}
	if mutate {
		for _, v := range p.vht.Level(0) {
			if v.Input == in {
				return fmt.Errorf("core: input class %s accepted twice", in)
			}
		}
		if _, err := p.vht.AddChild(p.nextFreshID, p.vht.Root(), in); err != nil {
			return err
		}
	}
	newID := p.nextFreshID
	p.nextFreshID++
	if !p.claimed && p.myID == int(m.A) && p.input == in {
		p.myID = newID
		p.claimed = true
	}
	return nil
}

// updateTempVHT is UpdateTempVHT (Listing 5 lines 17–33): apply an accepted
// red-edge triplet (id1, id2, mult) to the temporary VHT, adopt the fresh
// ID if this process contributed the observation, extend the level graph,
// and prune observations that would close cycles.
func (p *Process) updateTempVHT(id1, id2, mult int) error {
	mutate, err := p.opGate(opTemp, int64(id1), int64(id2), int64(mult))
	if err != nil {
		return err
	}
	if mutate {
		root1 := p.temp.root(id1)
		root2 := p.temp.root(id2)
		if root1 == nil || root2 == nil {
			return fmt.Errorf("core: accepted edge (%d,%d,%d) references unknown temp nodes", id1, id2, mult)
		}
		if _, err := p.temp.addChild(p.nextFreshID, id1, root2.id, mult); err != nil {
			return err
		}
		if !p.cfg.keepAllLinks() && root1.id != root2.id && !p.lg.hasEdge(root1.id, root2.id) {
			if err := p.lg.addEdge(root1.id, root2.id); err != nil {
				return err
			}
		}
	}
	// The per-member bookkeeping below runs on the verify path too: the
	// fresh child's ID is the pre-increment counter by construction, so
	// adoption needs no lookup into the (already-updated) shared forest.
	childID := p.nextFreshID
	p.nextFreshID++
	if p.myID == id1 {
		if i := p.obsIndex(id2, mult); i >= 0 {
			p.obsList = append(p.obsList[:i], p.obsList[i+1:]...)
			p.myID = childID
		}
	}
	if p.cfg.keepAllLinks() {
		// Ablation / batching mode: the virtual network keeps every link
		// of the selected round, so no level-graph bookkeeping happens and
		// no observation is ever pruned (the VHT loses the Lemma 4.6
		// amortization but remains a valid history tree).
		return nil
	}
	p.preventCycles()
	return nil
}

// preventCycles is PreventCyclesInLevelGraph (Listing 5 lines 7–15): drop
// from ObsList every pair whose acceptance would close a cycle in the level
// graph. Pairs within the process's own class (the C_v cycle) and pairs
// whose class edge already exists are kept.
func (p *Process) preventCycles() {
	root := p.temp.root(p.myID)
	if root == nil {
		return
	}
	kept := p.obsList[:0]
	for _, o := range p.obsList {
		if o.id2 == root.id || p.lg.hasEdge(root.id, o.id2) || !p.lg.connected(root.id, o.id2) {
			kept = append(kept, o)
		}
	}
	p.obsList = kept
}

// updateVHT is UpdateVHT (Listing 5 lines 35–48): promote the temporary
// node with the accepted Done ID into the VHT, attaching it under the VHT
// node of its temp root and giving it all red edges along its temp path.
func (p *Process) updateVHT(id int) error {
	mutate, err := p.opGate(opDone, int64(id), 0, 0)
	if err != nil {
		return err
	}
	if !mutate {
		return nil
	}
	tempRoot := p.temp.root(id)
	if tempRoot == nil {
		return fmt.Errorf("core: accepted Done(%d) references unknown temp node", id)
	}
	parent := p.vht.NodeByID(tempRoot.id)
	if parent == nil {
		return fmt.Errorf("core: temp root %d has no VHT counterpart", tempRoot.id)
	}
	child, err := p.vht.AddChild(id, parent, historytree.Input{})
	if err != nil {
		return err
	}
	// The path's red edges come back merged and sorted by source ID in a
	// reused scratch slice, replacing the seed's per-call map plus
	// insertion-sorted key slice; AddRed order (ascending source) is
	// unchanged.
	reds, err := p.temp.appendPathRedEdges(id, p.redScratch[:0])
	p.redScratch = reds[:0]
	if err != nil {
		return err
	}
	for _, o := range reds {
		srcNode := p.vht.NodeByID(o.id2)
		if srcNode == nil {
			return fmt.Errorf("core: red edge source %d missing from VHT", o.id2)
		}
		if err := p.vht.AddRed(child, srcNode, o.mult); err != nil {
			return err
		}
	}
	return nil
}

// obsIndex returns the index of the pair (id2, mult) in ObsList, or -1.
func (p *Process) obsIndex(id2, mult int) int {
	for i, o := range p.obsList {
		if o.id2 == id2 && o.mult == mult {
			return i
		}
	}
	return -1
}

// recordPrimary reports whether this process is the designated recording
// process (the leader, or process 0 in leaderless mode), so that global
// counters are recorded exactly once.
func (p *Process) recordPrimary() bool {
	if p.cfg.Mode == ModeLeaderless {
		return p.tr.PID() == 0
	}
	return p.input.Leader
}

// resetLevelState (re)initializes the temporary VHT and level graph on the
// node IDs of level-1 below `level`, reusing the process-owned scratch
// structures across levels and resets. Under sharing the rebuild happens
// once per group (first arrival); every member then points its temp and lg
// at the shared structures.
func (p *Process) resetLevelState(level int) error {
	if g := p.group; g != nil {
		g.mu.Lock()
		defer g.mu.Unlock()
	}
	mutate, err := p.opGate(opSetup, int64(level), 0, 0)
	if err != nil {
		return err
	}
	if g := p.group; g != nil {
		if mutate {
			g.ids = g.ids[:0]
			for _, v := range p.vht.Level(level - 1) {
				g.ids = append(g.ids, v.ID)
			}
			g.temp.reset(g.ids)
			g.lg.reset(g.ids)
		}
		p.temp = &g.temp
		p.lg = &g.lg
		return nil
	}
	prev := p.vht.Level(level - 1)
	p.idsScratch = p.idsScratch[:0]
	for _, v := range prev {
		p.idsScratch = append(p.idsScratch, v.ID)
	}
	p.tempScratch.reset(p.idsScratch)
	p.lgScratch.reset(p.idsScratch)
	p.temp = &p.tempScratch
	p.lg = &p.lgScratch
	return nil
}
