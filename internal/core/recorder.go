package core

import "sync"

// Recorder collects instrumentation from a protocol run. All methods are
// safe for concurrent use (processes run on separate goroutines) and all
// are nil-receiver-safe, so production code paths can call them
// unconditionally.
//
// Recording uses the engine's process indices, which are invisible to the
// protocol logic itself; the recorder exists so tests can check global
// invariants (Lemma 4.4's ID-to-cardinality consistency, Lemma 4.7's reset
// bound) without altering protocol behaviour.
type Recorder struct {
	mu sync.Mutex

	resets         int
	acceptedEdges  int
	acceptedDones  int
	acceptedInputs int
	levelsBuilt    int
	beginRounds    []int
	idsAtLevel     map[int]map[int]int // level → pid → ID when the level finished
	diamHistory    []int

	obs RecorderObserver
}

// RecorderObserver receives instrumentation events live, as the run
// produces them, so external checkers (internal/check) can validate
// invariants round by round rather than only post-hoc. Observers are
// invoked outside the recorder's lock — from whichever goroutine produced
// the event — so implementations must do their own synchronization, and
// may safely call back into the recorder's accessors.
type RecorderObserver interface {
	// ObserveReset fires when the leader initiates a reset phase; newDiam
	// is the doubled diameter estimate the reset announces.
	ObserveReset(newDiam int)
	// ObserveBeginRound fires when the recording process notes a level's
	// begin round (a real round number).
	ObserveBeginRound(round int)
	// ObserveLevelDone fires when process pid finishes a VHT level holding
	// temporary ID id.
	ObserveLevelDone(level, pid, id int)
}

// SetObserver attaches an observer for live events (nil detaches). Events
// recorded before the observer was attached are not replayed; attach
// before the run starts.
func (r *Recorder) SetObserver(o RecorderObserver) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.obs = o
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{idsAtLevel: make(map[int]map[int]int)}
}

func (r *Recorder) noteReset(newDiam int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.resets++
	r.diamHistory = append(r.diamHistory, newDiam)
	obs := r.obs
	r.mu.Unlock()
	if obs != nil {
		obs.ObserveReset(newDiam)
	}
}

func (r *Recorder) noteAccepted(label acceptKind) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	switch label {
	case acceptEdge:
		r.acceptedEdges++
	case acceptDone:
		r.acceptedDones++
	case acceptInput:
		r.acceptedInputs++
	}
}

func (r *Recorder) noteBeginRound(round int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.beginRounds = append(r.beginRounds, round)
	obs := r.obs
	r.mu.Unlock()
	if obs != nil {
		obs.ObserveBeginRound(round)
	}
}

func (r *Recorder) noteLevelDone(level, pid, id int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.idsAtLevel[level] == nil {
		r.idsAtLevel[level] = make(map[int]int)
	}
	r.idsAtLevel[level][pid] = id
	if level+1 > r.levelsBuilt {
		r.levelsBuilt = level + 1
	}
	obs := r.obs
	r.mu.Unlock()
	if obs != nil {
		obs.ObserveLevelDone(level, pid, id)
	}
}

type acceptKind int

const (
	acceptEdge acceptKind = iota + 1
	acceptDone
	acceptInput
)

// Resets returns the number of leader-initiated reset phases.
func (r *Recorder) Resets() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.resets
}

// DiamHistory returns the sequence of post-reset diameter estimates.
func (r *Recorder) DiamHistory() []int {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]int(nil), r.diamHistory...)
}

// Accepted returns the numbers of accepted Edge, Done, and Input messages
// (counted once per acceptance, by the leader in leader mode and by
// process 0's recording in leaderless mode).
func (r *Recorder) Accepted() (edges, dones, inputs int) {
	if r == nil {
		return 0, 0, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.acceptedEdges, r.acceptedDones, r.acceptedInputs
}

// IDsAtLevel returns, for the given VHT level, the map from engine process
// index to the temporary ID the process held when the level finished.
func (r *Recorder) IDsAtLevel(level int) map[int]int {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[int]int, len(r.idsAtLevel[level]))
	for pid, id := range r.idsAtLevel[level] {
		out[pid] = id
	}
	return out
}

// BeginRounds returns the recorded begin-round numbers.
func (r *Recorder) BeginRounds() []int {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]int(nil), r.beginRounds...)
}
