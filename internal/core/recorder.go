package core

import "sync"

// Recorder collects instrumentation from a protocol run. All methods are
// safe for concurrent use (processes run on separate goroutines) and all
// are nil-receiver-safe, so production code paths can call them
// unconditionally.
//
// Recording uses the engine's process indices, which are invisible to the
// protocol logic itself; the recorder exists so tests can check global
// invariants (Lemma 4.4's ID-to-cardinality consistency, Lemma 4.7's reset
// bound) without altering protocol behaviour.
type Recorder struct {
	mu sync.Mutex

	resets         int
	acceptedEdges  int
	acceptedDones  int
	acceptedInputs int
	levelsBuilt    int
	beginRounds    []int
	idsAtLevel     map[int]map[int]int // level → pid → ID when the level finished
	diamHistory    []int
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{idsAtLevel: make(map[int]map[int]int)}
}

func (r *Recorder) noteReset(newDiam int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.resets++
	r.diamHistory = append(r.diamHistory, newDiam)
}

func (r *Recorder) noteAccepted(label acceptKind) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	switch label {
	case acceptEdge:
		r.acceptedEdges++
	case acceptDone:
		r.acceptedDones++
	case acceptInput:
		r.acceptedInputs++
	}
}

func (r *Recorder) noteBeginRound(round int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.beginRounds = append(r.beginRounds, round)
}

func (r *Recorder) noteLevelDone(level, pid, id int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.idsAtLevel[level] == nil {
		r.idsAtLevel[level] = make(map[int]int)
	}
	r.idsAtLevel[level][pid] = id
	if level+1 > r.levelsBuilt {
		r.levelsBuilt = level + 1
	}
}

type acceptKind int

const (
	acceptEdge acceptKind = iota + 1
	acceptDone
	acceptInput
)

// Resets returns the number of leader-initiated reset phases.
func (r *Recorder) Resets() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.resets
}

// DiamHistory returns the sequence of post-reset diameter estimates.
func (r *Recorder) DiamHistory() []int {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]int(nil), r.diamHistory...)
}

// Accepted returns the numbers of accepted Edge, Done, and Input messages
// (counted once per acceptance, by the leader in leader mode and by
// process 0's recording in leaderless mode).
func (r *Recorder) Accepted() (edges, dones, inputs int) {
	if r == nil {
		return 0, 0, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.acceptedEdges, r.acceptedDones, r.acceptedInputs
}

// IDsAtLevel returns, for the given VHT level, the map from engine process
// index to the temporary ID the process held when the level finished.
func (r *Recorder) IDsAtLevel(level int) map[int]int {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[int]int, len(r.idsAtLevel[level]))
	for pid, id := range r.idsAtLevel[level] {
		out[pid] = id
	}
	return out
}

// BeginRounds returns the recorded begin-round numbers.
func (r *Recorder) BeginRounds() []int {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]int(nil), r.beginRounds...)
}
