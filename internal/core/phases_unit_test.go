package core

import (
	"errors"
	"testing"

	"anondyn/internal/engine"
	"anondyn/internal/historytree"
	"anondyn/internal/wire"
)

// fakeTransport scripts the deliveries a process observes, round by round,
// so phase functions can be unit-tested in isolation from the engine.
type fakeTransport struct {
	t         *testing.T
	round     int
	replies   [][]wire.Message // replies[i] delivered at round i+1
	sentLog   []wire.Message
	exhausted error // returned once the script runs out (default: stop)
}

var _ transport = (*fakeTransport)(nil)

func newFakeTransport(t *testing.T, replies ...[]wire.Message) *fakeTransport {
	return &fakeTransport{t: t, replies: replies, exhausted: engine.ErrStopped}
}

func (f *fakeTransport) SendAndReceive(m engine.Message) ([]engine.Message, error) {
	wm, ok := wire.FromBox(m)
	if !ok {
		f.t.Fatalf("fake transport got %T", m)
	}
	f.sentLog = append(f.sentLog, wm)
	if f.round >= len(f.replies) {
		return nil, f.exhausted
	}
	out := make([]engine.Message, len(f.replies[f.round]))
	for i, r := range f.replies[f.round] {
		out[i] = r
	}
	f.round++
	return out, nil
}

func (f *fakeTransport) Round() int { return f.round }
func (f *fakeTransport) PID() int   { return 0 }

// newUnitProcess returns a non-leader process wired to the fake transport,
// initialized for basic mode at level 1.
func newUnitProcess(t *testing.T, tr transport, leader bool) *Process {
	in := historytree.Input{Leader: leader}
	p := NewProcess(Config{Mode: ModeLeader}, in)
	p.tr = tr
	p.initialize()
	return p
}

func TestBroadcastStepKeepsHighestPriority(t *testing.T) {
	tr := newFakeTransport(t,
		[]wire.Message{wire.Null(), wire.Done(4), wire.Edge(1, 2, 3)},
	)
	p := newUnitProcess(t, tr, false)
	top, err := p.broadcastStep(wire.Done(9))
	if err != nil {
		t.Fatal(err)
	}
	if top != wire.Edge(1, 2, 3) {
		t.Fatalf("top = %s, want the edge", top)
	}
}

func TestBroadcastStepKeepsOwnOnLowerPriorityTraffic(t *testing.T) {
	tr := newFakeTransport(t, []wire.Message{wire.Null(), wire.Begin(7)})
	p := newUnitProcess(t, tr, false)
	top, err := p.broadcastStep(wire.Done(2))
	if err != nil {
		t.Fatal(err)
	}
	if top != wire.Done(2) {
		t.Fatalf("top = %s, want own Done", top)
	}
}

func TestBroadcastPhaseRunsDiamEstimateSteps(t *testing.T) {
	tr := newFakeTransport(t,
		[]wire.Message{wire.Null()},
		[]wire.Message{wire.Edge(3, 4, 1)},
		[]wire.Message{wire.Null()},
	)
	p := newUnitProcess(t, tr, false)
	p.diamEstimate = 3
	top, restart, err := p.broadcastPhase(wire.End())
	if err != nil || restart {
		t.Fatalf("restart=%v err=%v", restart, err)
	}
	if top != wire.Edge(3, 4, 1) {
		t.Fatalf("top = %s", top)
	}
	if len(tr.sentLog) != 3 {
		t.Fatalf("sent %d messages, want DiamEstimate=3", len(tr.sentLog))
	}
	// The adopted edge must be forwarded in the step after its arrival.
	if tr.sentLog[2] != wire.Edge(3, 4, 1) {
		t.Fatalf("step 3 sent %s, want the adopted edge", tr.sentLog[2])
	}
}

func TestBroadcastPhaseErrorTriggersErrorPhase(t *testing.T) {
	// Non-leader at level 2 sees Error(1) at phase end → adopts the lower
	// level, broadcasts Error(1) until a matching Reset(1) arrives (which
	// outranks it per the interleaving law), joins it, and performs the
	// reset.
	reset := wire.Reset(1 /* level */, 3 /* starting round */, 2 /* new diam */)
	tr := newFakeTransport(t,
		[]wire.Message{wire.Error(1)}, // phase step: error arrives
		[]wire.Message{},              // error phase step 1: nothing
		[]wire.Message{reset},         // error phase step 2: reset arrives
		[]wire.Message{reset},         // reset forwarding until round 5
		[]wire.Message{},
	)
	p := newUnitProcess(t, tr, false)
	p.diamEstimate = 1
	p.snapshots[1] = snapshot{myID: 1, nextFreshID: 2}
	p.snapshots[2] = snapshot{myID: 1, nextFreshID: 2}
	p.currentLevel = 2

	_, restart, err := p.broadcastPhase(wire.Done(5))
	if err != nil {
		t.Fatal(err)
	}
	if !restart {
		t.Fatal("expected restart")
	}
	if p.diamEstimate != 2 {
		t.Fatalf("diamEstimate=%d, want the reset's 2", p.diamEstimate)
	}
	if p.currentLevel != 1 {
		t.Fatalf("currentLevel=%d, want the reset level 1", p.currentLevel)
	}
	// The error phase must have broadcast Error(1) (adopting the lower
	// level), not Error(2).
	found := false
	for _, m := range tr.sentLog {
		if m.Label == wire.LabelError {
			found = true
			if m.A != 1 {
				t.Fatalf("broadcast Error(%d), want the adopted level 1", m.A)
			}
		}
	}
	if !found {
		t.Fatal("no Error message was broadcast")
	}
}

func TestErrorRefusesLowerPriorityReset(t *testing.T) {
	// An Error for level 0 must NOT join a Reset for level 1 — the
	// interleaving law of Section 3.2 (Reset k+1 < Error k < Reset k). The
	// scripted run exhausts, proving the error phase kept broadcasting.
	tr := newFakeTransport(t,
		[]wire.Message{wire.Reset(1, 1, 2)},
		[]wire.Message{wire.Reset(1, 1, 2)},
	)
	p := newUnitProcess(t, tr, false)
	err := p.broadcastError(0)
	if !errors.Is(err, engine.ErrStopped) {
		t.Fatalf("err=%v; the error phase should have outlived the script", err)
	}
	for _, m := range tr.sentLog {
		if m.Label == wire.LabelReset {
			t.Fatal("the process forwarded a reset it must not join")
		}
	}
}

func TestHaltForwardUnwinds(t *testing.T) {
	halt := wire.Halt(4 /* n */, 1 /* starting round */)
	tr := newFakeTransport(t,
		[]wire.Message{halt}, // received during a step at round 1
		[]wire.Message{},     // forwarding rounds until 1+4
		[]wire.Message{},
		[]wire.Message{},
		[]wire.Message{},
	)
	p := newUnitProcess(t, tr, false)
	p.cfg.SimultaneousHalt = true
	_, err := p.broadcastStep(wire.Null())
	var h *haltedError
	if !errors.As(err, &h) {
		t.Fatalf("err = %v, want haltedError", err)
	}
	if h.n != 4 {
		t.Fatalf("halted with n=%d", h.n)
	}
	if h.round != 5 {
		t.Fatalf("halted at round %d, want c+n = 5", h.round)
	}
}

func TestPerformLevelResetRestoresSnapshots(t *testing.T) {
	p := newUnitProcess(t, newFakeTransport(t), false)
	p.snapshots[1] = snapshot{myID: 1, nextFreshID: 2}
	p.snapshots[2] = snapshot{myID: 7, nextFreshID: 9}
	p.myID = 11
	p.nextFreshID = 14
	p.currentLevel = 2
	p.journal = []journalEntry{
		{msg: wire.Edge(1, 1, 2), level: 1},
		{msg: wire.Edge(7, 1, 1), level: 2},
	}
	// Fake a deeper VHT.
	n1 := p.vht.NodeByID(1)
	if _, err := p.vht.AddChild(7, n1, historytree.Input{}); err != nil {
		t.Fatal(err)
	}

	if err := p.performReset(1, 4); err != nil {
		t.Fatal(err)
	}
	if p.myID != 1 || p.nextFreshID != 2 {
		t.Fatalf("state not restored: myID=%d fresh=%d", p.myID, p.nextFreshID)
	}
	if p.vht.Depth() != 0 {
		t.Fatalf("VHT depth %d after reset to level 1", p.vht.Depth())
	}
	if len(p.journal) != 0 {
		t.Fatalf("journal not truncated: %v", p.journal)
	}
	if _, ok := p.snapshots[2]; ok {
		t.Fatal("stale snapshot survived")
	}
	if p.diamEstimate != 4 {
		t.Fatalf("diamEstimate=%d", p.diamEstimate)
	}
}

func TestPerformResetUnknownLevelFails(t *testing.T) {
	p := newUnitProcess(t, newFakeTransport(t), false)
	if err := p.performReset(3, 2); err == nil {
		t.Fatal("reset to a never-started level must fail")
	}
}

func TestMakeVHTMessageStates(t *testing.T) {
	p := newUnitProcess(t, newFakeTransport(t), false)
	// With observations pending: an Edge for the first one.
	p.obsList = []obs{{id2: 0, mult: 1}, {id2: 1, mult: 2}}
	if m := p.makeVHTMessage(); m != wire.Edge(1, 0, 1) {
		t.Fatalf("got %s", m)
	}
	// Empty obsList, node not yet in VHT: Done.
	p.obsList = nil
	p.myID = 42
	if m := p.makeVHTMessage(); m != wire.Done(42) {
		t.Fatalf("got %s", m)
	}
	// Node in VHT: End.
	p.myID = 1
	if m := p.makeVHTMessage(); m != wire.End() {
		t.Fatalf("got %s", m)
	}
}

func TestSetUpNewLevelGroupsBegins(t *testing.T) {
	tr := newFakeTransport(t, []wire.Message{
		wire.Begin(0), wire.Begin(0), // two links to the leader class
		wire.Begin(1), // a same-ID neighbor: dropped
		wire.Begin(5), wire.Begin(5), wire.Begin(5),
	})
	p := newUnitProcess(t, tr, false) // myID = 1
	// Level-graph setup needs a node with ID 5 at level 0; fake it.
	if _, err := p.vht.AddChild(5, p.vht.Root(), historytree.Input{Value: 9}); err != nil {
		t.Fatal(err)
	}
	restart, err := p.setUpNewLevel()
	if err != nil || restart {
		t.Fatalf("restart=%v err=%v", restart, err)
	}
	want := []obs{{id2: 0, mult: 2}, {id2: 5, mult: 3}, {id2: 1, mult: 2}}
	if len(p.obsList) != len(want) {
		t.Fatalf("obsList=%v", p.obsList)
	}
	for i, o := range want {
		if p.obsList[i] != o {
			t.Fatalf("obsList[%d]=%v, want %v", i, p.obsList[i], o)
		}
	}
}

func TestSetUpNewLevelIntruderTriggersError(t *testing.T) {
	reset := wire.Reset(1, 1, 2)
	tr := newFakeTransport(t,
		[]wire.Message{wire.Begin(0), wire.Error(1)}, // begin round with an intruder
		[]wire.Message{reset},                        // error phase: reset arrives
		[]wire.Message{},                             // reset forwarding to round 3
	)
	p := newUnitProcess(t, tr, false)
	restart, err := p.setUpNewLevel()
	if err != nil {
		t.Fatal(err)
	}
	if !restart {
		t.Fatal("intruder must trigger a restart")
	}
	// The snapshot with the degraded observation list must exist anyway
	// (fine-grained resets rely on it).
	snap, ok := p.snapshots[1]
	if !ok {
		t.Fatal("begin snapshot missing")
	}
	if len(snap.obsList) != 2 { // (0,1) and the cycle pair (1,2)
		t.Fatalf("snapshot obsList=%v", snap.obsList)
	}
}
