package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// PerfEntry is one benchmark's measurement in a BENCH_*.json report.
// GoMaxProcs and NumCPU record the parallelism the measurement ran under:
// an entry taken at GOMAXPROCS=1 on a single-core host is not comparable
// to one taken on a 16-core box, and the report should say so rather than
// leave readers to guess. Both are omitted from reports that predate the
// fields (they decode as 0 = unrecorded).
type PerfEntry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	GoMaxProcs  int     `json:"gomaxprocs,omitempty"`
	NumCPU      int     `json:"num_cpu,omitempty"`
}

// PerfReport maps benchmark name → measurement. Serialized (sorted by
// name) it is the BENCH_*.json format each PR checks in to track the
// repository's perf trajectory; cmd/benchreport produces and compares
// these files.
type PerfReport map[string]PerfEntry

// WritePerf serializes the report as deterministic (name-sorted, indented)
// JSON.
func WritePerf(w io.Writer, r PerfReport) error {
	names := make([]string, 0, len(r))
	for name := range r {
		names = append(names, name)
	}
	sort.Strings(names)
	// Hand-roll the object so the key order is stable (encoding/json maps
	// are sorted too, but building explicitly keeps the format obvious and
	// lets entries stay one-per-line).
	if _, err := io.WriteString(w, "{\n"); err != nil {
		return err
	}
	for i, name := range names {
		key, err := json.Marshal(name)
		if err != nil {
			return err
		}
		val, err := json.Marshal(r[name])
		if err != nil {
			return err
		}
		sep := ","
		if i == len(names)-1 {
			sep = ""
		}
		if _, err := fmt.Fprintf(w, "  %s: %s%s\n", key, val, sep); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "}\n")
	return err
}

// WritePerfFile writes the report to path via WritePerf.
func WritePerfFile(path string, r PerfReport) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WritePerf(f, r); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadPerfFile parses a BENCH_*.json report.
func ReadPerfFile(path string) (PerfReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r PerfReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: parse %s: %w", path, err)
	}
	return r, nil
}

// PerfDelta describes one benchmark's change between two reports.
type PerfDelta struct {
	Name     string
	Old, New PerfEntry
	// Ratio is new/old ns per op (1.0 = unchanged, 2.0 = twice as slow).
	Ratio float64
	// Regressed reports whether Ratio exceeded the comparison tolerance.
	Regressed bool
}

// ComparePerf diffs two reports on the benchmarks they share. A benchmark
// regresses when its ns/op grew by more than tolerance (0.20 = fail above
// +20%). Benchmarks present in only one report are ignored: sets naturally
// drift as benchmarks are added and retired.
func ComparePerf(old, new PerfReport, tolerance float64) []PerfDelta {
	return ComparePerfTol(old, new, tolerance, nil)
}

// ComparePerfTol is ComparePerf with per-benchmark tolerance overrides:
// overrides["E2Count/n=192"] = 0.8 allows that entry +80% before it
// regresses while every other shared benchmark keeps the default. Large-n
// end-to-end entries need this — their runtime on a loaded single-core CI
// host is noisier than the microbenchmarks the default tolerance was tuned
// for. Override names must match entry names exactly.
func ComparePerfTol(old, new PerfReport, tolerance float64, overrides map[string]float64) []PerfDelta {
	names := make([]string, 0, len(new))
	for name := range new {
		if _, ok := old[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	deltas := make([]PerfDelta, 0, len(names))
	for _, name := range names {
		o, n := old[name], new[name]
		d := PerfDelta{Name: name, Old: o, New: n}
		tol := tolerance
		if t, ok := overrides[name]; ok {
			tol = t
		}
		if o.NsPerOp > 0 {
			d.Ratio = n.NsPerOp / o.NsPerOp
			d.Regressed = d.Ratio > 1+tol
		}
		deltas = append(deltas, d)
	}
	return deltas
}
