package bench

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// sweepWorkers overrides the sweep pool size; 0 (the default) means
// GOMAXPROCS. Set it via SetSweepWorkers / SuiteOptions.Workers — sweeps on
// a shared or single-core host can be throttled (or forced serial with 1)
// without touching GOMAXPROCS for the code under measurement.
var sweepWorkers atomic.Int32

// SetSweepWorkers sets the sweep pool size and returns the previous value
// so callers can restore it. w <= 0 restores the GOMAXPROCS default.
func SetSweepWorkers(w int) int {
	if w < 0 {
		w = 0
	}
	return int(sweepWorkers.Swap(int32(w)))
}

// sweep runs fn(i) for every i in [0, points) across a bounded worker pool
// and returns the first error in index order. Sweep points must be
// independent and deterministically seeded by their index, and must write
// their result into a pre-indexed slot; the assembled table is then
// byte-identical to a sequential run regardless of scheduling.
func sweep(points int, fn func(i int) error) error {
	if points <= 0 {
		return nil
	}
	workers := int(sweepWorkers.Load())
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > points {
		workers = points
	}
	if workers < 1 {
		workers = 1
	}
	errs := make([]error, points)
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := 0; i < points; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
