package bench

import (
	"runtime"
	"sync"
)

// sweep runs fn(i) for every i in [0, points) across a bounded worker pool
// and returns the first error in index order. Sweep points must be
// independent and deterministically seeded by their index, and must write
// their result into a pre-indexed slot; the assembled table is then
// byte-identical to a sequential run regardless of scheduling.
func sweep(points int, fn func(i int) error) error {
	if points <= 0 {
		return nil
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > points {
		workers = points
	}
	if workers < 1 {
		workers = 1
	}
	errs := make([]error, points)
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := 0; i < points; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
