// Package bench defines the reproduction experiments E1–E11 of DESIGN.md:
// one per figure, lemma, theorem, or comparison in the paper. Each
// experiment runs the relevant systems and produces a Table whose rows are
// recorded in EXPERIMENTS.md and printed by cmd/experiments; the root
// bench_test.go exposes the same runs as testing.B benchmarks.
package bench

import (
	"encoding/json"
	"fmt"
	"strings"

	"anondyn/internal/trace"
)

// Table is one experiment's result in printable form.
type Table struct {
	// ID is the experiment identifier (E1..E11).
	ID string
	// Title names the experiment.
	Title string
	// Claim states what the paper claims (the "expected shape").
	Claim string
	// Header and Rows are the measured data.
	Header []string
	Rows   [][]string
	// Timings, when set, holds per-row timing measurements aligned with
	// Rows (nil entries mean the row carries no timing). They surface in
	// JSON rows and as trailing lines of the rendered table.
	Timings []*trace.Timing
	// Notes carry caveats and derived observations.
	Notes []string
}

// timing returns row i's timing, or nil.
func (t *Table) timing(i int) *trace.Timing {
	if i < len(t.Timings) {
		return t.Timings[i]
	}
	return nil
}

// timingLines renders one "key: timing" line per timed row, keyed by the
// row's first cell.
func timingLines(t *Table) []string {
	var out []string
	for i, row := range t.Rows {
		tm := t.timing(i)
		if tm == nil || len(row) == 0 {
			continue
		}
		out = append(out, fmt.Sprintf("%s %s: %s", t.ID, row[0], tm))
	}
	return out
}

// Experiment couples an ID with its runner.
type Experiment struct {
	ID   string
	Name string
	Run  func() (*Table, error)
}

// All returns every experiment in order.
func All() []Experiment {
	return []Experiment{
		{ID: "E1", Name: "history tree of the Figure 1 example", Run: func() (*Table, error) { return E1Fig1() }},
		{ID: "E2", Name: "rounds and levels vs n (Theorem 4.8)", Run: func() (*Table, error) { return E2RoundsVsN(nil) }},
		{ID: "E3", Name: "message size vs n (Corollary 4.9)", Run: func() (*Table, error) { return E3MessageBits(nil) }},
		{ID: "E4", Name: "red-edge amortization (Lemma 4.6)", Run: func() (*Table, error) { return E4RedEdges(nil) }},
		{ID: "E5", Name: "diameter estimate and resets (Lemma 4.7)", Run: func() (*Table, error) { return E5DiamEstimate(nil) }},
		{ID: "E6", Name: "congested vs non-congested tradeoff", Run: func() (*Table, error) { return E6Tradeoff(nil) }},
		{ID: "E7", Name: "token-forwarding comparison", Run: func() (*Table, error) { return E7TokenForward(nil) }},
		{ID: "E8", Name: "leaderless computation (Section 5)", Run: func() (*Table, error) { return E8Leaderless(nil) }},
		{ID: "E9", Name: "T-union-connected networks (Section 5)", Run: func() (*Table, error) { return E9UnionConnected(nil) }},
		{ID: "E10", Name: "virtual network construction (Figure 2)", Run: func() (*Table, error) { return E10Fig2() }},
		{ID: "E11", Name: "simultaneous termination and Generalized Counting", Run: func() (*Table, error) { return E11Generalized(nil) }},
		{ID: "E12", Name: "spanning-tree ablation (Section 3.4 design choice)", Run: func() (*Table, error) { return E12SpanningTreeAblation(nil) }},
		{ID: "E13", Name: "batched-message tradeoff (Section 6)", Run: func() (*Table, error) { return E13BatchingTradeoff(nil) }},
		{ID: "E14", Name: "strongly adaptive isolating adversary", Run: func() (*Table, error) { return E14AdaptiveAdversary(nil) }},
		{ID: "E17", Name: "congested vs linear protocol tradeoff", Run: func() (*Table, error) { return E17ProtocolTradeoff(nil) }},
	}
}

// RenderMarkdown formats the table as GitHub-flavoured markdown, the form
// used in EXPERIMENTS.md.
func RenderMarkdown(t *Table) string {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s — %s\n\n", t.ID, t.Title)
	fmt.Fprintf(&b, "**Paper.** %s\n\n", t.Claim)
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Header)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	for _, line := range timingLines(t) {
		fmt.Fprintf(&b, "\n*%s*\n", line)
	}
	return b.String()
}

// Row is the machine-readable form of one table row: the experiment
// identity plus a column→cell map. Streams of Rows (NDJSON) are the format
// future PRs record as BENCH_*.json to track the perf trajectory.
type Row struct {
	Experiment string            `json:"experiment"`
	Title      string            `json:"title"`
	Claim      string            `json:"claim,omitempty"`
	Columns    map[string]string `json:"columns"`
	// WallMS and SolverMS report where the row's real time went (run wall
	// clock vs time inside the cardinality solver, milliseconds), with
	// SolverCalls the number of solver invocations; zero when the
	// experiment recorded no timing. See internal/trace.Timing.
	WallMS      float64 `json:"wall_ms,omitempty"`
	SolverMS    float64 `json:"solver_ms,omitempty"`
	SolverCalls int     `json:"solver_calls,omitempty"`
}

// JSONRows converts the table to its machine-readable rows.
func JSONRows(t *Table) []Row {
	rows := make([]Row, 0, len(t.Rows))
	for ri, r := range t.Rows {
		cols := make(map[string]string, len(t.Header))
		for i, h := range t.Header {
			if i < len(r) {
				cols[h] = r[i]
			}
		}
		row := Row{Experiment: t.ID, Title: t.Title, Claim: t.Claim, Columns: cols}
		if tm := t.timing(ri); tm != nil {
			row.WallMS = tm.WallMS()
			row.SolverMS = tm.SolverMS()
			row.SolverCalls = tm.SolverCalls
		}
		rows = append(rows, row)
	}
	return rows
}

// RenderJSON formats the table as NDJSON: one JSON object per row.
func RenderJSON(t *Table) string {
	var b strings.Builder
	for _, row := range JSONRows(t) {
		line, err := json.Marshal(row)
		if err != nil {
			// Row contains only strings; marshalling cannot fail.
			panic(fmt.Sprintf("bench: marshal row: %v", err))
		}
		b.Write(line)
		b.WriteByte('\n')
	}
	return b.String()
}

// Render formats the table as aligned plain text.
func Render(t *Table) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	fmt.Fprintf(&b, "paper: %s\n", t.Claim)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	for _, line := range timingLines(t) {
		fmt.Fprintf(&b, "time: %s\n", line)
	}
	return b.String()
}
