package bench

import (
	"encoding/json"
	"strings"
	"testing"
)

func sampleTable() *Table {
	return &Table{
		ID:     "E0",
		Title:  "sample",
		Claim:  "shape holds",
		Header: []string{"n", "rounds"},
		Rows:   [][]string{{"4", "100"}, {"8", "800"}},
		Notes:  []string{"a note"},
	}
}

func TestJSONRows(t *testing.T) {
	rows := JSONRows(sampleTable())
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[0].Experiment != "E0" || rows[0].Columns["n"] != "4" || rows[0].Columns["rounds"] != "100" {
		t.Fatalf("row 0: %+v", rows[0])
	}
	if rows[1].Columns["rounds"] != "800" {
		t.Fatalf("row 1: %+v", rows[1])
	}
}

func TestRenderJSONIsNDJSON(t *testing.T) {
	out := RenderJSON(sampleTable())
	lines := strings.Split(strings.TrimSuffix(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d NDJSON lines, want 2", len(lines))
	}
	for i, line := range lines {
		var row Row
		if err := json.Unmarshal([]byte(line), &row); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if row.Experiment != "E0" || row.Title != "sample" {
			t.Fatalf("line %d round-trip: %+v", i, row)
		}
	}
}

// TestRenderJSONRaggedRow guards against header/row length mismatches.
func TestRenderJSONRaggedRow(t *testing.T) {
	tab := sampleTable()
	tab.Rows = append(tab.Rows, []string{"lonely"})
	rows := JSONRows(tab)
	if got := rows[2].Columns; len(got) != 1 || got["n"] != "lonely" {
		t.Fatalf("ragged row: %+v", got)
	}
}
