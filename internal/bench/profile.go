package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
)

// SuiteOptions selects and instruments a benchmark-regression run. The zero
// value runs the whole suite with no profiling, matching RunPerfSuite.
type SuiteOptions struct {
	// Filter keeps only the suite entries whose name contains the given
	// substring (e.g. "E2Count" or "Solver"). Empty keeps everything.
	Filter string
	// CPUProfile, when non-empty, wraps the whole run in a runtime/pprof
	// CPU capture and writes the profile to this path. Parent directories
	// are created as needed.
	CPUProfile string
	// MemProfile, when non-empty, writes an allocation profile to this
	// path after the run (preceded by a GC so the numbers reflect live
	// and cumulative allocation honestly).
	MemProfile string
	// Progress, if non-nil, is called with each entry's name before it
	// runs.
	Progress func(name string)
	// Workers bounds the sweep worker pool (see SetSweepWorkers) for the
	// duration of the run. 0 keeps the GOMAXPROCS default. Benchmarks that
	// share the host with other work — or that want sequential, minimally
	// noisy measurements — set 1.
	Workers int
}

// RunPerfSuiteOpts executes the benchmark-regression suite subject to the
// options: filtered to matching entries and, when requested, under CPU
// and/or heap profiling. It is the engine behind `make bench` (no
// profiling) and `make profile` (CPU+heap capture of one entry), so every
// perf investigation starts from a pprof flame graph of exactly the code
// the regression suite measures.
func RunPerfSuiteOpts(opts SuiteOptions) (PerfReport, error) {
	if opts.Workers > 0 {
		prev := SetSweepWorkers(opts.Workers)
		defer SetSweepWorkers(prev)
	}
	suite := PerfSuite()
	if opts.Filter != "" {
		kept := suite[:0]
		for _, nb := range suite {
			if strings.Contains(nb.Name, opts.Filter) {
				kept = append(kept, nb)
			}
		}
		suite = kept
		if len(suite) == 0 {
			return nil, fmt.Errorf("bench: no suite entry matches %q", opts.Filter)
		}
	}

	if opts.CPUProfile != "" {
		f, err := createProfileFile(opts.CPUProfile)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("bench: start CPU profile: %w", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	report, err := runEntries(suite, opts.Progress)
	if err != nil {
		return nil, err
	}

	if opts.MemProfile != "" {
		f, ferr := createProfileFile(opts.MemProfile)
		if ferr != nil {
			return nil, ferr
		}
		runtime.GC()
		if werr := pprof.Lookup("allocs").WriteTo(f, 0); werr != nil {
			f.Close()
			return nil, fmt.Errorf("bench: write heap profile: %w", werr)
		}
		if cerr := f.Close(); cerr != nil {
			return nil, cerr
		}
	}
	return report, nil
}

func createProfileFile(path string) (*os.File, error) {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("bench: create profile dir: %w", err)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("bench: create profile file: %w", err)
	}
	return f, nil
}
