package bench

import (
	"fmt"
	"math"

	"anondyn/internal/baseline"
	"anondyn/internal/core"
	"anondyn/internal/dynnet"
	"anondyn/internal/historytree"
	"anondyn/internal/trace"
)

// leaderIn returns n inputs with process 0 as the leader.
func leaderIn(n int) []historytree.Input {
	in := make([]historytree.Input, n)
	if n > 0 {
		in[0].Leader = true
	}
	return in
}

// Fig1Schedule returns a 9-process, 3-round dynamic network in the spirit
// of Figure 1 of the paper: inputs from {A, B, C} (encoded 0, 1, 2) and a
// topology that splits the anonymity classes gradually, including the
// figure's hallmark: two processes that remain indistinguishable although
// they are linked to processes that later become distinguishable (because
// those were in the same class at the time of the link).
func Fig1Schedule() (dynnet.Schedule, []historytree.Input) {
	inputs := []historytree.Input{
		{Value: 0}, {Value: 0}, {Value: 0}, // A
		{Value: 1}, {Value: 1}, {Value: 1}, {Value: 1}, // B
		{Value: 2}, {Value: 2}, // C
	}
	g1 := dynnet.NewMultigraph(9)
	g1.MustAddLink(0, 3, 1) // an A meets a B
	g1.MustAddLink(1, 2, 1) // two As meet each other
	g1.MustAddLink(3, 4, 1)
	g1.MustAddLink(4, 7, 1) // a B meets a C
	g1.MustAddLink(5, 8, 1)
	g1.MustAddLink(6, 8, 1) // two Bs meet the same C
	// Round 2 realizes the figure's hallmark: processes 5 and 6 (one class
	// after round 1) link to processes 1 and 2 respectively; 1 and 2 are in
	// one class after round 1 but become distinguishable at round 2 (only 1
	// also hears from 0). Since red edges refer to round-1 classes, 5 and 6
	// remain indistinguishable — the "b4" phenomenon of Figure 1.
	g2 := dynnet.NewMultigraph(9)
	g2.MustAddLink(0, 1, 1)
	g2.MustAddLink(5, 1, 1)
	g2.MustAddLink(6, 2, 1)
	g2.MustAddLink(3, 7, 1)
	g2.MustAddLink(4, 8, 1)
	g3 := dynnet.NewMultigraph(9)
	g3.MustAddLink(0, 8, 1)
	g3.MustAddLink(1, 7, 1)
	g3.MustAddLink(2, 3, 1)
	g3.MustAddLink(4, 5, 1)
	g3.MustAddLink(6, 6, 1) // self-loop: one message to itself
	seq, err := dynnet.NewSequence(g1, g2, g3)
	if err != nil {
		panic(err) // static construction; cannot fail
	}
	return seq, inputs
}

// E1Fig1 builds the history tree of the Figure-1-style example network and
// reports its level structure.
func E1Fig1() (*Table, error) {
	s, inputs := Fig1Schedule()
	run, err := historytree.Build(s, inputs, 3)
	if err != nil {
		return nil, err
	}
	if err := run.Tree.Validate(); err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "E1",
		Title: "history tree of a 9-process, 3-input example (Figure 1)",
		Claim: "levels partition the processes; classes only refine over time; " +
			"classes may stay merged although their neighbors split later",
		Header: []string{"level", "classes", "red edges", "largest class"},
	}
	for l := 0; l <= run.Tree.Depth(); l++ {
		nodes := run.Tree.Level(l)
		reds := 0
		largest := 0
		for _, v := range nodes {
			reds += len(v.Red)
			if c := run.Card[v.ID]; c > largest {
				largest = c
			}
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("L%d", l),
			fmt.Sprintf("%d", len(nodes)),
			fmt.Sprintf("%d", reds),
			fmt.Sprintf("%d", largest),
		})
	}
	// Verify the figure's hallmark ("b4"): a level-2 class of ≥ 2 processes
	// whose red source at level 1 has children that split at level 2.
	hallmark := false
	for _, v := range run.Tree.Level(2) {
		if run.Card[v.ID] < 2 {
			continue
		}
		for _, e := range v.Red {
			if len(e.Src.Children) >= 2 {
				hallmark = true
			}
		}
	}
	if !hallmark {
		return nil, fmt.Errorf("E1: example lost the Figure 1 merged-class phenomenon")
	}
	t.Notes = append(t.Notes,
		"hallmark verified: a 2-process class stays merged at L2 although its round-2 "+
			"neighbors become distinguishable (they shared a class at round 1)",
		"render the tree with: go run ./cmd/httree -fig1",
		fmt.Sprintf("class counts per level: %v", historytree.LevelSizes(run.Tree)))
	return t, nil
}

// E2Params configures E2.
type E2Params struct {
	Ns    []int
	Seeds int
}

// E2RoundsVsN measures rounds, levels, and resets of the congested
// counting algorithm as n grows (Theorem 4.8: O(n³ log n) rounds, ≤ 3n
// levels).
func E2RoundsVsN(p *E2Params) (*Table, error) {
	if p == nil {
		p = &E2Params{Ns: []int{2, 4, 6, 8, 10, 12}, Seeds: 3}
	}
	t := &Table{
		ID:    "E2",
		Title: "rounds and levels until the leader outputs n",
		Claim: "O(n³ log n) rounds (Theorem 4.8); the view needs at most 3n levels (FOCS'22)",
		Header: []string{"n", "rounds(avg)", "levels(max)", "resets(max)",
			"rounds/n^3", "3n"},
	}
	t.Rows = make([][]string, len(p.Ns))
	t.Timings = make([]*trace.Timing, len(p.Ns))
	err := sweep(len(p.Ns), func(i int) error {
		n := p.Ns[i]
		var sumRounds, maxLevels, maxResets int
		tm := &trace.Timing{}
		for seed := 0; seed < p.Seeds; seed++ {
			s := dynnet.NewRandomConnected(n, 0.3, int64(seed+1))
			res, err := core.Run(s, leaderIn(n), core.Config{Mode: core.ModeLeader, MaxLevels: 3*n + 6},
				core.RunOptions{})
			if err != nil {
				return fmt.Errorf("E2 n=%d seed=%d: %w", n, seed, err)
			}
			if res.N != n {
				return fmt.Errorf("E2 n=%d seed=%d: counted %d", n, seed, res.N)
			}
			sumRounds += res.Stats.Rounds
			if res.Stats.Levels > maxLevels {
				maxLevels = res.Stats.Levels
			}
			if res.Stats.Resets > maxResets {
				maxResets = res.Stats.Resets
			}
			tm.Add(trace.TimingOf(res.Stats))
		}
		avg := float64(sumRounds) / float64(p.Seeds)
		t.Rows[i] = []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.0f", avg),
			fmt.Sprintf("%d", maxLevels),
			fmt.Sprintf("%d", maxResets),
			fmt.Sprintf("%.3f", avg/math.Pow(float64(n), 3)),
			fmt.Sprintf("%d", 3*n),
		}
		t.Timings[i] = tm
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"rounds/n^3 staying bounded as n grows is the cubic-shape check",
		"random connected schedules; worst-case (path) adversaries appear in E5")
	return t, nil
}

// E3Params configures E3.
type E3Params struct {
	Ns []int
}

// E3MessageBits measures the largest message (in encoded bits) over entire
// runs as n grows (congestion bound, Corollary 4.9).
func E3MessageBits(p *E3Params) (*Table, error) {
	if p == nil {
		p = &E3Params{Ns: []int{4, 8, 16, 24}}
	}
	t := &Table{
		ID:     "E3",
		Title:  "maximum message size over a full counting run",
		Claim:  "all messages fit in O(log n) bits (Corollary 4.9)",
		Header: []string{"n", "max bits", "bits/log2(n)", "total msgs"},
	}
	t.Rows = make([][]string, len(p.Ns))
	err := sweep(len(p.Ns), func(i int) error {
		n := p.Ns[i]
		s := dynnet.NewRandomConnected(n, 0.3, 7)
		res, err := core.Run(s, leaderIn(n), core.Config{Mode: core.ModeLeader, MaxLevels: 3*n + 6},
			core.RunOptions{})
		if err != nil {
			return fmt.Errorf("E3 n=%d: %w", n, err)
		}
		if res.N != n {
			return fmt.Errorf("E3 n=%d: counted %d", n, res.N)
		}
		t.Rows[i] = []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", res.Stats.MaxMessageBits),
			fmt.Sprintf("%.2f", float64(res.Stats.MaxMessageBits)/math.Log2(float64(n))),
			fmt.Sprintf("%d", res.Stats.TotalMessages),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, "compare the non-congested baseline's Θ(n³ log n)-bit views in E6")
	return t, nil
}

// E4Params configures E4.
type E4Params struct {
	Ns []int
}

// E4RedEdges compares the red-edge count of the protocol's VHT against the
// generic worst-case history tree (all processes distinguished at round 1,
// complete graph afterwards), per Lemma 4.6.
func E4RedEdges(p *E4Params) (*Table, error) {
	if p == nil {
		p = &E4Params{Ns: []int{4, 6, 8, 10, 12}}
	}
	t := &Table{
		ID:    "E4",
		Title: "red edges in the first levels: VHT vs generic history tree",
		Claim: "VHT: O(n²) red edges over O(n) levels (Lemma 4.6); generic trees reach Θ(n³)",
		Header: []string{"n", "VHT levels", "VHT red", "VHT red/n^2",
			"generic red (3n lvls)", "generic red/n^3"},
	}
	t.Rows = make([][]string, len(p.Ns))
	t.Timings = make([]*trace.Timing, len(p.Ns))
	err := sweep(len(p.Ns), func(i int) error {
		n := p.Ns[i]
		s := dynnet.NewRandomConnected(n, 0.5, 3)
		res, err := core.Run(s, leaderIn(n), core.Config{Mode: core.ModeLeader, MaxLevels: 3*n + 6},
			core.RunOptions{})
		if err != nil {
			return fmt.Errorf("E4 n=%d: %w", n, err)
		}
		vhtRed := res.VHT.RedEdgeCount(-1)

		// Generic worst case: all-distinct inputs on the complete graph.
		inputs := make([]historytree.Input, n)
		for j := range inputs {
			inputs[j].Value = int64(j)
		}
		run, err := historytree.Build(dynnet.NewStatic(dynnet.Complete(n)), inputs, 3*n)
		if err != nil {
			return err
		}
		genericRed := run.Tree.RedEdgeCount(-1)

		t.Rows[i] = []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", res.Stats.Levels),
			fmt.Sprintf("%d", vhtRed),
			fmt.Sprintf("%.2f", float64(vhtRed)/float64(n*n)),
			fmt.Sprintf("%d", genericRed),
			fmt.Sprintf("%.2f", float64(genericRed)/float64(n*n*n)),
		}
		t.Timings[i] = trace.TimingOf(res.Stats)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// E5Params configures E5.
type E5Params struct {
	Ns []int
}

// E5DiamEstimate checks Lemma 4.7 on the highest-diameter adversary in the
// suite (shifting paths): the final diameter estimate never exceeds 4n and
// the number of resets is O(log n).
func E5DiamEstimate(p *E5Params) (*Table, error) {
	if p == nil {
		p = &E5Params{Ns: []int{3, 5, 7, 9, 11}}
	}
	t := &Table{
		ID:     "E5",
		Title:  "diameter estimation under path adversaries",
		Claim:  "DiamEstimate ≤ 4n (Lemma 4.7); ≤ log₂(4n) resets",
		Header: []string{"n", "rounds", "resets", "final diam", "4n", "log2(4n)"},
	}
	t.Rows = make([][]string, len(p.Ns))
	err := sweep(len(p.Ns), func(i int) error {
		n := p.Ns[i]
		s := dynnet.NewShiftingPath(n)
		res, err := core.Run(s, leaderIn(n), core.Config{Mode: core.ModeLeader, MaxLevels: 3*n + 6},
			core.RunOptions{})
		if err != nil {
			return fmt.Errorf("E5 n=%d: %w", n, err)
		}
		if res.N != n {
			return fmt.Errorf("E5 n=%d: counted %d", n, res.N)
		}
		if res.Stats.FinalDiamEstimate > 4*n {
			return fmt.Errorf("E5 n=%d: final estimate %d exceeds 4n", n, res.Stats.FinalDiamEstimate)
		}
		t.Rows[i] = []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", res.Stats.Rounds),
			fmt.Sprintf("%d", res.Stats.Resets),
			fmt.Sprintf("%d", res.Stats.FinalDiamEstimate),
			fmt.Sprintf("%d", 4*n),
			fmt.Sprintf("%.1f", math.Log2(float64(4*n))),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// E6Params configures E6.
type E6Params struct {
	Ns []int
}

// E6Tradeoff compares the congested algorithm against the non-congested
// full-information baseline: rounds vs message bits.
func E6Tradeoff(p *E6Params) (*Table, error) {
	if p == nil {
		p = &E6Params{Ns: []int{4, 6, 8, 10}}
	}
	t := &Table{
		ID:    "E6",
		Title: "congested O(log n)-bit algorithm vs non-congested view exchange",
		Claim: "non-congested: Θ(n) rounds but Θ(n³ log n)-bit messages; " +
			"congested: O(n³) rounds with O(log n)-bit messages",
		Header: []string{"n", "cong rounds", "cong bits", "non-cong rounds", "non-cong bits",
			"bits ratio"},
	}
	t.Rows = make([][]string, len(p.Ns))
	t.Timings = make([]*trace.Timing, len(p.Ns))
	err := sweep(len(p.Ns), func(i int) error {
		n := p.Ns[i]
		s := dynnet.NewRandomConnected(n, 0.3, 17)
		res, err := core.Run(s, leaderIn(n), core.Config{Mode: core.ModeLeader, MaxLevels: 3*n + 6},
			core.RunOptions{})
		if err != nil {
			return fmt.Errorf("E6 n=%d congested: %w", n, err)
		}
		nc, err := baseline.RunNonCongested(s, leaderIn(n), 0)
		if err != nil {
			return fmt.Errorf("E6 n=%d non-congested: %w", n, err)
		}
		if res.N != n || nc.N != n {
			return fmt.Errorf("E6 n=%d: counts %d and %d", n, res.N, nc.N)
		}
		t.Rows[i] = []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", res.Stats.Rounds),
			fmt.Sprintf("%d", res.Stats.MaxMessageBits),
			fmt.Sprintf("%d", nc.Rounds),
			fmt.Sprintf("%d", nc.MaxMessageBits),
			fmt.Sprintf("%.1fx", float64(nc.MaxMessageBits)/float64(res.Stats.MaxMessageBits)),
		}
		t.Timings[i] = trace.TimingOf(res.Stats)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// E7Params configures E7.
type E7Params struct {
	Ns []int
}

// E7TokenForward contrasts the randomized token-forwarding comparator with
// the paper's algorithm along the three axes of Section 1.2: exactness,
// a-priori knowledge, and determinism.
func E7TokenForward(p *E7Params) (*Table, error) {
	if p == nil {
		p = &E7Params{Ns: []int{4, 6, 8, 10}}
	}
	t := &Table{
		ID:    "E7",
		Title: "token-forwarding (randomized, needs bound N≥n) vs this work",
		Claim: "token dissemination solves approximate counting in O(N²) rounds w.h.p.; " +
			"the paper's algorithm is exact, deterministic, and needs no bound",
		Header: []string{"n", "tf rounds", "tf estimate", "tf exact?", "cong rounds", "cong exact?"},
	}
	for _, n := range p.Ns {
		s := dynnet.NewRandomConnected(n, 0.3, 23)
		tf, err := baseline.RunTokenForward(s, n, 1234)
		if err != nil {
			return nil, fmt.Errorf("E7 n=%d: %w", n, err)
		}
		res, err := core.Run(s, leaderIn(n), core.Config{Mode: core.ModeLeader, MaxLevels: 3*n + 6},
			core.RunOptions{})
		if err != nil {
			return nil, fmt.Errorf("E7 n=%d congested: %w", n, err)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", tf.Rounds),
			fmt.Sprintf("%d", tf.Estimate),
			fmt.Sprintf("%v", tf.Estimate == n),
			fmt.Sprintf("%d", res.Stats.Rounds),
			fmt.Sprintf("%v", res.N == n),
		})
	}
	t.Notes = append(t.Notes,
		"token forwarding assumes the bound N = n here (best case for the baseline)",
		"unique random tokens forfeit the anonymity that motivates the paper")
	return t, nil
}

// E8Params configures E8.
type E8Params struct {
	Ns []int
}

// E8Leaderless measures the leaderless frequency computation (Section 5):
// O(D·n²) rounds with a known diameter bound D.
func E8Leaderless(p *E8Params) (*Table, error) {
	if p == nil {
		p = &E8Params{Ns: []int{4, 6, 8, 10}}
	}
	t := &Table{
		ID:     "E8",
		Title:  "leaderless frequency computation with known diameter bound",
		Claim:  "O(D·n²) rounds; exact input frequencies; simultaneous termination",
		Header: []string{"n", "D", "rounds", "rounds/(D·n²)", "min size", "correct?"},
	}
	t.Rows = make([][]string, len(p.Ns))
	t.Timings = make([]*trace.Timing, len(p.Ns))
	err := sweep(len(p.Ns), func(i int) error {
		n := p.Ns[i]
		inputs := make([]historytree.Input, n)
		for j := range inputs {
			inputs[j].Value = int64(j % 2)
		}
		s := dynnet.NewRandomConnected(n, 0.4, 29)
		d := n // dynamic diameter of a connected n-network is < n
		res, err := core.Run(s, inputs, core.Config{Mode: core.ModeLeaderless, DiamBound: d, MaxLevels: 3*n + 6},
			core.RunOptions{})
		if err != nil {
			return fmt.Errorf("E8 n=%d: %w", n, err)
		}
		f := res.Frequencies
		zeros := (n + 1) / 2
		g := gcd(zeros, n-zeros)
		correct := f.Known &&
			f.Shares[historytree.Input{Value: 0}] == zeros/g &&
			f.Shares[historytree.Input{Value: 1}] == (n-zeros)/g &&
			f.MinSize == n/g
		t.Rows[i] = []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", d),
			fmt.Sprintf("%d", res.Stats.Rounds),
			fmt.Sprintf("%.3f", float64(res.Stats.Rounds)/float64(d*n*n)),
			fmt.Sprintf("%d", f.MinSize),
			fmt.Sprintf("%v", correct),
		}
		t.Timings[i] = trace.TimingOf(res.Stats)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// E9Params configures E9.
type E9Params struct {
	N  int
	Ts []int
}

// E9UnionConnected measures the T-union-connected extension: rounds must
// grow linearly in T, in contrast to the exponential dependence of the
// Kowalski–Mosteiro Õ(n^{2T(1+ε)+3}) baseline.
func E9UnionConnected(p *E9Params) (*Table, error) {
	if p == nil {
		p = &E9Params{N: 6, Ts: []int{1, 2, 4, 8}}
	}
	t := &Table{
		ID:     "E9",
		Title:  fmt.Sprintf("T-union-connected networks, n=%d", p.N),
		Claim:  "O(T·n³) rounds — linear in T; the prior state of the art is exponential in T",
		Header: []string{"T", "rounds", "rounds/T", "KM shape n^(2T+3)"},
	}
	base := 0
	for _, bt := range p.Ts {
		inner := dynnet.NewRandomConnected(p.N, 0.5, 31)
		var s dynnet.Schedule = inner
		if bt > 1 {
			uc, err := dynnet.NewUnionConnected(inner, bt)
			if err != nil {
				return nil, err
			}
			s = uc
		}
		res, err := core.Run(s, leaderIn(p.N), core.Config{Mode: core.ModeLeader, BlockT: bt, MaxLevels: 3*p.N + 6},
			core.RunOptions{})
		if err != nil {
			return nil, fmt.Errorf("E9 T=%d: %w", bt, err)
		}
		if res.N != p.N {
			return nil, fmt.Errorf("E9 T=%d: counted %d", bt, res.N)
		}
		if base == 0 {
			base = res.Stats.Rounds
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", bt),
			fmt.Sprintf("%d", res.Stats.Rounds),
			fmt.Sprintf("%d", res.Stats.Rounds/bt),
			fmt.Sprintf("%.1e", math.Pow(float64(p.N), float64(2*bt+3))),
		})
	}
	t.Notes = append(t.Notes, "the KM column is the analytic round bound of the prior work, not a run")
	return t, nil
}

// E10Fig2 runs one level of the protocol on a 9-process, 3-class network
// mirroring Figure 2 and reports the virtual-network construction: the
// level graph must be a spanning tree on the classes and every class keeps
// its cycle C_v.
func E10Fig2() (*Table, error) {
	// Three initial classes as in the figure: sizes 4, 4, 1.
	inputs := []historytree.Input{
		{Leader: true},
		{Value: 1}, {Value: 1}, {Value: 1}, {Value: 1},
		{Value: 2}, {Value: 2}, {Value: 2}, {Value: 2},
	}
	n := len(inputs)
	s := dynnet.NewRandomConnected(n, 0.6, 41)
	rec := core.NewRecorder()
	cfg := core.Config{Mode: core.ModeLeader, BuildInputLevel: true, MaxLevels: 3*n + 6, Recorder: rec}
	res, err := core.Run(s, inputs, cfg, core.RunOptions{})
	if err != nil {
		return nil, err
	}
	if res.N != n {
		return nil, fmt.Errorf("E10: counted %d, want %d", res.N, n)
	}
	t := &Table{
		ID:    "E10",
		Title: "virtual network construction (Figure 2 semantics)",
		Claim: "per level: inter-class links restricted to a spanning tree S of H, " +
			"plus one cycle C_v per class; red edges per level stay O(n)",
		Header: []string{"level", "classes", "red edges", "inter-class", "intra (C_v)"},
	}
	for l := 1; l <= res.VHT.Depth(); l++ {
		classes := len(res.VHT.Level(l))
		inter, intra := 0, 0
		for _, v := range res.VHT.Level(l) {
			for _, e := range v.Red {
				if e.Src == v.Parent {
					intra++
				} else {
					inter++
				}
			}
		}
		prev := len(res.VHT.Level(l - 1))
		// A spanning tree on `prev` classes has prev-1 edges; each class
		// contributes one intra (cycle) edge per child chain.
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("L%d", l),
			fmt.Sprintf("%d", classes),
			fmt.Sprintf("%d", inter+intra),
			fmt.Sprintf("%d (tree on %d: %d)", inter, prev, prev-1),
			fmt.Sprintf("%d", intra),
		})
	}
	edges, dones, inputsAcc := rec.Accepted()
	t.Notes = append(t.Notes,
		fmt.Sprintf("accepted messages: %d edges, %d dones, %d inputs; resets: %d",
			edges, dones, inputsAcc, rec.Resets()))
	return t, nil
}

// E11Params configures E11.
type E11Params struct {
	N int
}

// E11Generalized runs Generalized Counting with simultaneous termination:
// all processes output the same n at the same round, and the leader's
// multiset (without halt) matches the input assignment exactly.
func E11Generalized(p *E11Params) (*Table, error) {
	if p == nil {
		p = &E11Params{N: 8}
	}
	n := p.N
	inputs := make([]historytree.Input, n)
	inputs[0].Leader = true
	for i := range inputs {
		inputs[i].Value = int64(i % 3)
	}
	s := dynnet.NewRandomConnected(n, 0.4, 37)

	// Run 1: multiset recovery (leader-only termination keeps the tree).
	res, err := core.Run(s, inputs, core.Config{Mode: core.ModeLeader, BuildInputLevel: true, MaxLevels: 3*n + 6},
		core.RunOptions{})
	if err != nil {
		return nil, err
	}
	// Run 2: simultaneous halt.
	halt, err := core.Run(s, inputs,
		core.Config{Mode: core.ModeLeader, BuildInputLevel: true, SimultaneousHalt: true, MaxLevels: 3*n + 6},
		core.RunOptions{})
	if err != nil {
		return nil, err
	}

	want := make(map[historytree.Input]int)
	for _, in := range inputs {
		want[in]++
	}
	t := &Table{
		ID:     "E11",
		Title:  fmt.Sprintf("Generalized Counting and simultaneous termination, n=%d", n),
		Claim:  "the leader recovers the exact input multiset; with Halt, all processes output n at one round",
		Header: []string{"input", "true count", "computed"},
	}
	allMatch := true
	for in, c := range want {
		got := res.Multiset[in]
		if got != c {
			allMatch = false
		}
		t.Rows = append(t.Rows, []string{in.String(), fmt.Sprintf("%d", c), fmt.Sprintf("%d", got)})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("multiset exact: %v; n=%d", allMatch, res.N),
		fmt.Sprintf("simultaneous halt: n=%d, %d/%d processes output at one round (verified by core.Run)",
			halt.N, len(halt.Outputs), n))
	return t, nil
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	if a == 0 {
		return 1
	}
	return a
}
