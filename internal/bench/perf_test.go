package bench

import (
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
)

func TestPerfWriteReadRoundTrip(t *testing.T) {
	r := PerfReport{
		"B/one": {NsPerOp: 1234.5, AllocsPerOp: 7, BytesPerOp: 512},
		"A/two": {NsPerOp: 99, AllocsPerOp: 0, BytesPerOp: 0},
	}
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := WritePerfFile(path, r); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPerfFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, r) {
		t.Errorf("round trip: got %+v, want %+v", got, r)
	}
}

func TestPerfWriteDeterministicOrder(t *testing.T) {
	r := PerfReport{"z": {NsPerOp: 1}, "a": {NsPerOp: 2}, "m": {NsPerOp: 3}}
	var b strings.Builder
	if err := WritePerf(&b, r); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !(strings.Index(out, `"a"`) < strings.Index(out, `"m"`) &&
		strings.Index(out, `"m"`) < strings.Index(out, `"z"`)) {
		t.Errorf("entries not name-sorted:\n%s", out)
	}
}

func TestComparePerf(t *testing.T) {
	old := PerfReport{
		"stable":   {NsPerOp: 1000},
		"faster":   {NsPerOp: 1000},
		"slower":   {NsPerOp: 1000},
		"retired":  {NsPerOp: 1000},
		"atBorder": {NsPerOp: 1000},
	}
	cur := PerfReport{
		"stable":   {NsPerOp: 1050},
		"faster":   {NsPerOp: 400},
		"slower":   {NsPerOp: 1500},
		"brandNew": {NsPerOp: 9999},
		"atBorder": {NsPerOp: 1200},
	}
	deltas := ComparePerf(old, cur, 0.20)
	got := make(map[string]bool, len(deltas))
	for _, d := range deltas {
		got[d.Name] = d.Regressed
	}
	want := map[string]bool{
		"stable": false,
		"faster": false,
		"slower": true,
		// Exactly at the tolerance boundary is not a regression.
		"atBorder": false,
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("regression verdicts: got %v, want %v", got, want)
	}
}

// TestComparePerfTolOverrides pins the per-entry tolerance escape hatch:
// an override loosens (or tightens) exactly the named benchmark and leaves
// the default in force everywhere else.
func TestComparePerfTolOverrides(t *testing.T) {
	old := PerfReport{
		"noisy/n=192": {NsPerOp: 1000},
		"steady":      {NsPerOp: 1000},
	}
	cur := PerfReport{
		"noisy/n=192": {NsPerOp: 1700}, // +70%: over default, under override
		"steady":      {NsPerOp: 1700},
	}
	deltas := ComparePerfTol(old, cur, 0.20, map[string]float64{"noisy/n=192": 0.8})
	got := make(map[string]bool, len(deltas))
	for _, d := range deltas {
		got[d.Name] = d.Regressed
	}
	want := map[string]bool{"noisy/n=192": false, "steady": true}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("override verdicts: got %v, want %v", got, want)
	}
	// A tightening override works too.
	deltas = ComparePerfTol(old, cur, 0.80, map[string]float64{"steady": 0.1})
	for _, d := range deltas {
		if d.Name == "steady" && !d.Regressed {
			t.Error("tightened override did not flag the regression")
		}
		if d.Name == "noisy/n=192" && d.Regressed {
			t.Error("default tolerance ignored for non-overridden entry")
		}
	}
}

// TestPerfEntryRecordsProcs pins the provenance fields: a report row must
// say what parallelism it measured under, and reports that predate the
// fields must keep decoding (fields absent → 0).
func TestPerfEntryRecordsProcs(t *testing.T) {
	rep, err := runEntries([]NamedBench{{
		Name:  "tiny",
		Bench: func(b *testing.B) { _ = b.N },
	}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	e := rep["tiny"]
	if e.GoMaxProcs < 1 || e.NumCPU < 1 {
		t.Fatalf("entry lacks parallelism provenance: %+v", e)
	}
	path := filepath.Join(t.TempDir(), "BENCH_old.json")
	if err := WritePerfFile(path, PerfReport{"legacy": {NsPerOp: 5}}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPerfFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got["legacy"].GoMaxProcs != 0 || got["legacy"].NumCPU != 0 {
		t.Fatalf("legacy entry grew provenance out of thin air: %+v", got["legacy"])
	}
}

func TestSweepAssemblesInIndexOrder(t *testing.T) {
	const points = 40
	out := make([]int, points)
	err := sweep(points, func(i int) error {
		out[i] = i * i
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("slot %d holds %d, want %d", i, v, i*i)
		}
	}
}

func TestSweepReturnsFirstErrorByIndex(t *testing.T) {
	boom := errors.New("boom")
	err := sweep(10, func(i int) error {
		if i == 3 {
			return fmt.Errorf("point %d: %w", i, boom)
		}
		if i == 7 {
			return errors.New("later failure")
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want the index-3 error", err)
	}
	// Every point still ran: the pool does not cancel on error.
	var ran atomic.Int32
	_ = sweep(10, func(i int) error { ran.Add(1); return errors.New("x") })
	if ran.Load() != 10 {
		t.Errorf("%d points ran, want 10", ran.Load())
	}
}

// TestSweepWorkersBound pins SetSweepWorkers: with the pool forced to 1 the
// sweep must never run two points concurrently, and the previous setting is
// returned for restore.
func TestSweepWorkersBound(t *testing.T) {
	prev := SetSweepWorkers(1)
	defer SetSweepWorkers(prev)
	var inFlight, maxSeen atomic.Int32
	err := sweep(20, func(i int) error {
		if cur := inFlight.Add(1); cur > maxSeen.Load() {
			maxSeen.Store(cur)
		}
		defer inFlight.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if maxSeen.Load() != 1 {
		t.Fatalf("saw %d concurrent points with a 1-worker pool", maxSeen.Load())
	}
	if got := SetSweepWorkers(0); got != 1 {
		t.Fatalf("SetSweepWorkers returned %d, want the prior value 1", got)
	}
}

// TestE2ParallelIsDeterministic pins the byte-identical-tables contract:
// the pooled sweep must assemble exactly the rows a sequential run would.
func TestE2ParallelIsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full E2 points twice")
	}
	p := &E2Params{Ns: []int{2, 4, 6}, Seeds: 2}
	a, err := E2RoundsVsN(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := E2RoundsVsN(p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Rows, b.Rows) {
		t.Errorf("E2 rows differ across runs:\n%v\nvs\n%v", a.Rows, b.Rows)
	}
	if len(a.Timings) != len(a.Rows) {
		t.Fatalf("%d timings for %d rows", len(a.Timings), len(a.Rows))
	}
	for i, tm := range a.Timings {
		if tm == nil || tm.WallClock <= 0 || tm.SolverCalls <= 0 {
			t.Errorf("row %d: missing timing %+v", i, tm)
		}
	}
	rows := JSONRows(a)
	for i, r := range rows {
		if r.WallMS <= 0 || r.SolverCalls <= 0 {
			t.Errorf("JSON row %d lacks timing fields: %+v", i, r)
		}
	}
}
