package bench

import (
	"fmt"

	"anondyn/internal/core"
	"anondyn/internal/dynnet"
)

// E12Params configures E12.
type E12Params struct {
	Ns []int
}

// E12SpanningTreeAblation ablates the Section 3.4 design decision that
// DESIGN.md calls out: restricting each level's inter-class links to a
// spanning tree. Without it, the virtual network keeps all links and the
// VHT loses the Lemma 4.6 amortization.
func E12SpanningTreeAblation(p *E12Params) (*Table, error) {
	if p == nil {
		p = &E12Params{Ns: []int{6, 9, 12}}
	}
	t := &Table{
		ID:    "E12",
		Title: "ablation: spanning-tree link restriction (Section 3.4)",
		Claim: "the spanning tree + cycles construction is what amortizes red edges to O(n²) " +
			"(Lemma 4.6); without it the VHT grows toward the generic Θ(n³) shape",
		Header: []string{"n", "pruned red", "full red", "red ratio", "pruned rounds", "full rounds"},
	}
	for _, n := range p.Ns {
		s := dynnet.NewRandomConnected(n, 0.9, 12)
		pruned, err := core.Run(s, leaderIn(n),
			core.Config{Mode: core.ModeLeader, MaxLevels: 3*n + 6}, core.RunOptions{})
		if err != nil {
			return nil, fmt.Errorf("E12 n=%d pruned: %w", n, err)
		}
		full, err := core.Run(s, leaderIn(n),
			core.Config{Mode: core.ModeLeader, KeepAllLinks: true, MaxLevels: 3*n + 6}, core.RunOptions{})
		if err != nil {
			return nil, fmt.Errorf("E12 n=%d full: %w", n, err)
		}
		if pruned.N != n || full.N != n {
			return nil, fmt.Errorf("E12 n=%d: counts %d / %d", n, pruned.N, full.N)
		}
		// Compare red-edge density over a common prefix of levels: the two
		// variants build different virtual networks and may resolve at
		// different depths (denser virtual rounds can disambiguate faster).
		depth := pruned.Stats.Levels
		if full.Stats.Levels < depth {
			depth = full.Stats.Levels
		}
		pr := pruned.VHT.RedEdgeCount(depth)
		fr := full.VHT.RedEdgeCount(depth)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d (d%d)", pr, depth),
			fmt.Sprintf("%d (d%d)", fr, depth),
			fmt.Sprintf("%.2fx", float64(fr)/float64(pr)),
			fmt.Sprintf("%d", pruned.Stats.Rounds),
			fmt.Sprintf("%d", full.Stats.Rounds),
		})
	}
	t.Notes = append(t.Notes,
		"red edges compared over the common level prefix (dN); both variants count correctly",
		"the tradeoff is two-sided: pruning caps per-level red edges (Lemma 4.6) but denser "+
			"virtual rounds can split classes faster, occasionally resolving in fewer levels")
	return t, nil
}

// E13Params configures E13.
type E13Params struct {
	N       int
	Batches []int
}

// E13BatchingTradeoff measures the Section 6 closing remark: with messages
// of size O(n log n) — realized by batching up to n ObsList entries per
// Edge message — the running time drops toward O(n²).
func E13BatchingTradeoff(p *E13Params) (*Table, error) {
	if p == nil {
		p = &E13Params{N: 10, Batches: []int{1, 2, 4, 8, 16}}
	}
	n := p.N
	t := &Table{
		ID:    "E13",
		Title: fmt.Sprintf("message-size vs running-time tradeoff (Section 6), n=%d", n),
		Claim: "“if messages have size O(n log n), the running time of our algorithm can be " +
			"reduced to O(n²)”",
		Header: []string{"batch", "rounds", "max bits", "rounds·bits", "speedup"},
	}
	s := dynnet.NewRandomConnected(n, 0.9, 4)
	base := 0
	for _, batch := range p.Batches {
		cfg := core.Config{Mode: core.ModeLeader, BatchSize: batch, KeepAllLinks: true, MaxLevels: 3*n + 6}
		res, err := core.Run(s, leaderIn(n), cfg, core.RunOptions{})
		if err != nil {
			return nil, fmt.Errorf("E13 batch=%d: %w", batch, err)
		}
		if res.N != n {
			return nil, fmt.Errorf("E13 batch=%d: counted %d", batch, res.N)
		}
		if base == 0 {
			base = res.Stats.Rounds
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", batch),
			fmt.Sprintf("%d", res.Stats.Rounds),
			fmt.Sprintf("%d", res.Stats.MaxMessageBits),
			fmt.Sprintf("%d", res.Stats.Rounds*res.Stats.MaxMessageBits),
			fmt.Sprintf("%.2fx", float64(base)/float64(res.Stats.Rounds)),
		})
	}
	t.Notes = append(t.Notes,
		"all variants use KeepAllLinks so the batch size is the only moving part",
		"batch≈n corresponds to the paper's O(n log n)-bit regime")
	return t, nil
}
