package bench

import (
	"strings"
	"testing"
)

// TestAllExperimentsRun executes every experiment end to end and checks the
// tables are well-formed. This is the regression gate for EXPERIMENTS.md.
func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments skipped in -short mode")
	}
	seen := make(map[string]bool)
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			if seen[e.ID] {
				t.Fatalf("duplicate experiment ID %s", e.ID)
			}
			seen[e.ID] = true
			table, err := e.Run()
			if err != nil {
				t.Fatalf("%s: %v", e.Name, err)
			}
			if table.ID != e.ID {
				t.Errorf("table ID %s, want %s", table.ID, e.ID)
			}
			if table.Claim == "" {
				t.Error("missing paper claim")
			}
			if len(table.Rows) == 0 {
				t.Error("empty table")
			}
			for i, row := range table.Rows {
				if len(row) != len(table.Header) {
					t.Errorf("row %d has %d cells for %d columns", i, len(row), len(table.Header))
				}
			}
			out := Render(table)
			if !strings.Contains(out, e.ID) || !strings.Contains(out, "paper:") {
				t.Errorf("render output malformed:\n%s", out)
			}
		})
	}
	if len(seen) != 15 {
		t.Errorf("%d experiments, want 15", len(seen))
	}
}

func TestRenderAlignment(t *testing.T) {
	tbl := &Table{
		ID:     "EX",
		Title:  "test",
		Claim:  "none",
		Header: []string{"a", "long-column"},
		Rows:   [][]string{{"wide-cell", "1"}},
		Notes:  []string{"a note"},
	}
	out := Render(tbl)
	for _, want := range []string{"EX — test", "wide-cell", "note: a note", "---------"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestFig1ScheduleShape(t *testing.T) {
	s, inputs := Fig1Schedule()
	if s.N() != 9 || len(inputs) != 9 {
		t.Fatalf("n=%d inputs=%d", s.N(), len(inputs))
	}
	distinct := make(map[int64]bool)
	for _, in := range inputs {
		distinct[in.Value] = true
		if in.Leader {
			t.Error("Figure 1 network has no leaders")
		}
	}
	if len(distinct) != 3 {
		t.Fatalf("%d input values, want 3 (A, B, C)", len(distinct))
	}
}

func TestRenderMarkdown(t *testing.T) {
	tbl := &Table{
		ID:     "EX",
		Title:  "test",
		Claim:  "claim",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "2"}},
		Notes:  []string{"note"},
	}
	out := RenderMarkdown(tbl)
	for _, want := range []string{"## EX — test", "**Paper.** claim", "| a | b |", "|---|---|", "| 1 | 2 |", "*note*"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q in:\n%s", want, out)
		}
	}
}
