package bench

import (
	"fmt"

	"anondyn/internal/adversary"
	"anondyn/internal/core"
	"anondyn/internal/dynnet"
)

// E14Params configures E14.
type E14Params struct {
	Ns []int
}

// E14AdaptiveAdversary stresses the protocol with a strongly adaptive
// adversary that always places the holders of the highest-priority message
// as far as possible from the leader. This is the worst case for the
// token-forwarding-style priority broadcast at the heart of the algorithm
// (cf. the Ω(n²/log n) dissemination lower bound of Dutta et al. that
// Section 6 cites); the run must still terminate correctly with
// DiamEstimate ≤ 4n and O(log n) resets.
func E14AdaptiveAdversary(p *E14Params) (*Table, error) {
	if p == nil {
		p = &E14Params{Ns: []int{4, 6, 8, 10}}
	}
	t := &Table{
		ID:    "E14",
		Title: "strongly adaptive isolating adversary vs benign schedules",
		Claim: "correctness and the Lemma 4.7 bounds hold against ANY adversary; " +
			"the adaptive isolator maximizes broadcast delays",
		Header: []string{"n", "isolator rounds", "benign rounds", "slowdown",
			"isolator diam", "isolator resets", "4n"},
	}
	for _, n := range p.Ns {
		iso, err := adversary.RunCountingUnderIsolator(n,
			core.Config{Mode: core.ModeLeader, MaxLevels: 3*n + 8}, core.RunOptions{})
		if err != nil {
			return nil, fmt.Errorf("E14 n=%d isolator: %w", n, err)
		}
		benign, err := core.Run(dynnet.NewRandomConnected(n, 0.3, 7), leaderIn(n),
			core.Config{Mode: core.ModeLeader, MaxLevels: 3*n + 8}, core.RunOptions{})
		if err != nil {
			return nil, fmt.Errorf("E14 n=%d benign: %w", n, err)
		}
		if iso.N != n || benign.N != n {
			return nil, fmt.Errorf("E14 n=%d: counts %d / %d", n, iso.N, benign.N)
		}
		if iso.Stats.FinalDiamEstimate > 4*n {
			return nil, fmt.Errorf("E14 n=%d: diameter estimate %d exceeds 4n", n, iso.Stats.FinalDiamEstimate)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", iso.Stats.Rounds),
			fmt.Sprintf("%d", benign.Stats.Rounds),
			fmt.Sprintf("%.1fx", float64(iso.Stats.Rounds)/float64(benign.Stats.Rounds)),
			fmt.Sprintf("%d", iso.Stats.FinalDiamEstimate),
			fmt.Sprintf("%d", iso.Stats.Resets),
			fmt.Sprintf("%d", 4*n),
		})
	}
	return t, nil
}
