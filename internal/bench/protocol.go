package bench

import (
	"fmt"

	"anondyn/internal/core"
	"anondyn/internal/dynnet"
	"anondyn/internal/linear"
	"anondyn/internal/trace"
)

// E17Params configures E17.
type E17Params struct {
	Ns []int
}

// E17ProtocolTradeoff runs the congested backend and the linear
// full-information backend over the SAME schedules and tabulates the
// measured rounds-vs-bits tradeoff: the linear protocol terminates in
// Θ(n) rounds where the congested one needs O(n³ log n), but pays with
// messages that grow to Θ(n³ log n) bits where the congested protocol
// sends O(log n). Both counts are cross-checked against each other and
// against n — this table IS the differential suite at experiment scale,
// not a hand-written comparison (unlike E6, which compares against the
// instrumented baseline rather than the full sibling backend).
func E17ProtocolTradeoff(p *E17Params) (*Table, error) {
	if p == nil {
		p = &E17Params{Ns: []int{12, 24, 48}}
	}
	t := &Table{
		ID:    "E17",
		Title: "congested vs linear protocol: measured rounds-vs-bits tradeoff",
		Claim: "linear (arXiv 2204.02128): Θ(n) rounds, Θ(n³ log n)-bit messages; " +
			"congested: O(n³ log n) rounds, O(log n)-bit messages — same answers on the same schedules",
		Header: []string{"n", "cong rounds", "cong max bits", "cong total bits",
			"lin rounds", "lin max bits", "lin total bits", "rounds ratio", "bits ratio"},
	}
	t.Rows = make([][]string, len(p.Ns))
	t.Timings = make([]*trace.Timing, len(p.Ns))
	err := sweep(len(p.Ns), func(i int) error {
		n := p.Ns[i]
		mkSched := func() dynnet.Schedule { return dynnet.NewRandomConnected(n, 0.3, 17) }
		cong, err := core.Run(mkSched(), leaderIn(n),
			core.Config{Mode: core.ModeLeader, MaxLevels: 3*n + 8}, core.RunOptions{})
		if err != nil {
			return fmt.Errorf("E17 n=%d congested: %w", n, err)
		}
		lin, err := linear.Run(mkSched(), leaderIn(n),
			linear.Config{Mode: core.ModeLeader, MaxLevels: 3*n + 8}, core.RunOptions{})
		if err != nil {
			return fmt.Errorf("E17 n=%d linear: %w", n, err)
		}
		if cong.N != n || lin.N != n {
			return fmt.Errorf("E17 n=%d: protocols counted %d and %d", n, cong.N, lin.N)
		}
		t.Rows[i] = []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", cong.Stats.Rounds),
			fmt.Sprintf("%d", cong.Stats.MaxMessageBits),
			fmt.Sprintf("%d", cong.Stats.TotalBits),
			fmt.Sprintf("%d", lin.Stats.Rounds),
			fmt.Sprintf("%d", lin.Stats.MaxMessageBits),
			fmt.Sprintf("%d", lin.Stats.TotalBits),
			fmt.Sprintf("%.1fx", float64(cong.Stats.Rounds)/float64(lin.Stats.Rounds)),
			fmt.Sprintf("%.1fx", float64(lin.Stats.MaxMessageBits)/float64(cong.Stats.MaxMessageBits)),
		}
		t.Timings[i] = trace.TimingOf(cong.Stats)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}
