package bench

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"anondyn/internal/baseline"
	"anondyn/internal/core"
	"anondyn/internal/dynnet"
	"anondyn/internal/engine"
	"anondyn/internal/faults"
	"anondyn/internal/historytree"
)

// NamedBench couples a benchmark-regression suite entry with its body.
type NamedBench struct {
	Name  string
	Bench func(b *testing.B)
}

// PerfSuite returns the benchmark-regression suite behind `make bench`:
// the solver-heavy experiment runs (E2 at its largest n, E4, E6) plus the
// solver and engine microbenchmarks, each in an incremental and — where
// the distinction exists — a from-scratch variant so a single run yields
// the speedup ratio. The names match the testing.B entries of the same
// code paths (root bench_test.go, internal/historytree, internal/engine).
func PerfSuite() []NamedBench {
	suite := []NamedBench{
		// SolverFromScratch tracks the shipped default backend (modular
		// since PR 7); SolverModular pins the modular backend explicitly so
		// the entry keeps meaning the same thing if the default ever moves;
		// SolverBig keeps the big.Int witness measured so every report
		// shows the modular-vs-exact ratio (PR 4's SolverFromScratch was
		// the big.Int path: 63.2 ms/op, 945k allocs/op).
		{Name: "SolverFromScratch/n=16", Bench: solverBench(16, false, historytree.ArithModular)},
		{Name: "SolverFromScratch/n=24", Bench: solverBench(24, false, historytree.ArithModular)},
		{Name: "SolverModular/n=16", Bench: solverBench(16, false, historytree.ArithModular)},
		{Name: "SolverModular/n=24", Bench: solverBench(24, false, historytree.ArithModular)},
		{Name: "SolverBig/n=16", Bench: solverBench(16, false, historytree.ArithBig)},
		{Name: "SolverIncremental/n=16", Bench: solverBench(16, true, historytree.ArithModular)},
		{Name: "E2Count/n=12", Bench: e2Bench(12, false)},
		// The n=24 and n=48 points record how the history-tree/VHT layer
		// scales, not just the E2 sweep's largest published point; n=48 is
		// the scaling point the modular solver makes affordable.
		{Name: "E2Count/n=24", Bench: e2Bench(24, false)},
		{Name: "E2Count/n=48", Bench: e2Bench(48, false)},
		// n=96 is the routine-scale target of the PR 8 scheduler/compaction
		// work: one full counting run at double the previous largest point,
		// kept in the suite so its cost curve is tracked like any other.
		{Name: "E2Count/n=96", Bench: e2Bench(96, false)},
		// The fault sweep records what in-model faults cost: the spike
		// drives the error/reset machinery (more rounds, same answer), the
		// storm multiplies delivered links (more per-round work). They
		// regression-guard the faults.Schedule wrapper's own overhead too.
		{Name: "E2CountFaultSpike/n=12", Bench: e2FaultBench(12, "spike:8:0")},
		{Name: "E2CountFaultStorm/n=12", Bench: e2FaultBench(12, "storm:1:0:3")},
		{Name: "E2SolverReplayFromScratch/n=12", Bench: e2SolverReplayBench(12, false)},
		{Name: "E2SolverReplayIncremental/n=12", Bench: e2SolverReplayBench(12, true)},
		{Name: "E4RedEdges/n=10", Bench: e4Bench(10)},
		{Name: "E6NonCongested/n=10", Bench: e6Bench(10)},
		{Name: "EngineDeliverDense/n=32", Bench: engineBench(32, engine.SchedulerSequential)},
		{Name: "EngineSchedulerSequential/n=32", Bench: engineBench(32, engine.SchedulerSequential)},
		{Name: "EngineSchedulerConcurrent/n=32", Bench: engineBench(32, engine.SchedulerConcurrent)},
		{Name: "EngineSchedulerParallel/n=32", Bench: engineBench(32, engine.SchedulerParallel)},
		// n=192 is the PR 9 target: batched refinement plus cross-process
		// structural sharing make one full counting run at this size a
		// routine suite entry. CompactVHT keeps its resident set bounded,
		// as any run this large would in practice. It runs last: its
		// 146 MB/op heap reshapes the GC pacing of whatever follows it in
		// the same process, which showed up as a phantom ~20% regression
		// on the fault entries when it sat mid-suite.
		{Name: "E2Count/n=192", Bench: e2CompactBench(192)},
	}
	return suite
}

// RunPerfSuite executes the suite via testing.Benchmark and collects the
// measurements. progress, if non-nil, is called before each entry.
// RunPerfSuiteOpts is the filtered/profiled variant.
func RunPerfSuite(progress func(name string)) (PerfReport, error) {
	return runEntries(PerfSuite(), progress)
}

func runEntries(suite []NamedBench, progress func(name string)) (PerfReport, error) {
	report := make(PerfReport)
	for _, nb := range suite {
		if progress != nil {
			progress(nb.Name)
		}
		r := testing.Benchmark(nb.Bench)
		if r.N == 0 {
			return nil, fmt.Errorf("bench: %s failed", nb.Name)
		}
		report[nb.Name] = PerfEntry{
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			GoMaxProcs:  runtime.GOMAXPROCS(0),
			NumCPU:      runtime.NumCPU(),
		}
	}
	return report, nil
}

// solverBench replays the protocol's access pattern — re-solving after
// every completed level of a prebuilt history tree — through either the
// from-scratch solve or the persistent incremental Solver, under the
// given arithmetic backend.
func solverBench(n int, incremental bool, arith historytree.Arith) func(b *testing.B) {
	return func(b *testing.B) {
		s := dynnet.NewRandomConnected(n, 0.3, 1)
		inputs := make([]historytree.Input, n)
		inputs[0].Leader = true
		run, err := historytree.Build(s, inputs, 3*n)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			solver := historytree.NewSolverWith(arith)
			for l := 0; l <= 3*n; l++ {
				var res historytree.CountResult
				var err error
				if incremental {
					res, err = solver.CountAt(run.Tree, l)
				} else {
					res, err = historytree.CountWith(run.Tree, l, arith)
				}
				if err != nil {
					b.Fatal(err)
				}
				if res.Known && res.N != n {
					b.Fatalf("wrong count at level %d: %+v", l, res)
				}
			}
		}
	}
}

// e2Bench is one full counting run at E2's largest sweep point, with the
// FromScratchCount ablation toggling the incremental solver.
func e2Bench(n int, fromScratch bool) func(b *testing.B) {
	return func(b *testing.B) {
		s := dynnet.NewRandomConnected(n, 0.3, 1)
		cfg := core.Config{Mode: core.ModeLeader, MaxLevels: 3*n + 6, FromScratchCount: fromScratch}
		for i := 0; i < b.N; i++ {
			res, err := core.Run(s, leaderIn(n), cfg, core.RunOptions{})
			if err != nil {
				b.Fatal(err)
			}
			if res.N != n {
				b.Fatalf("counted %d, want %d", res.N, n)
			}
		}
	}
}

// e2CompactBench is e2Bench with CompactVHT on: the configuration large-n
// runs use in practice, and the one the PR 9 suite entries track.
func e2CompactBench(n int) func(b *testing.B) {
	return func(b *testing.B) {
		s := dynnet.NewRandomConnected(n, 0.3, 1)
		cfg := core.Config{Mode: core.ModeLeader, MaxLevels: 3*n + 6, CompactVHT: true}
		for i := 0; i < b.N; i++ {
			res, err := core.Run(s, leaderIn(n), cfg, core.RunOptions{})
			if err != nil {
				b.Fatal(err)
			}
			if res.N != n {
				b.Fatalf("counted %d, want %d", res.N, n)
			}
		}
	}
}

// e2FaultBench is the E2 run under an in-model fault plan: same schedule
// and config as e2Bench, with the plan layered over the adversary. The
// answer must stay exact — faults may only cost rounds.
func e2FaultBench(n int, planSpec string) func(b *testing.B) {
	return func(b *testing.B) {
		plan, err := faults.Parse(planSpec, 1, 1)
		if err != nil {
			b.Fatal(err)
		}
		s := plan.Wrap(dynnet.NewRandomConnected(n, 0.3, 1))
		cfg := core.Config{Mode: core.ModeLeader, MaxLevels: 3*n + 8}
		for i := 0; i < b.N; i++ {
			res, err := core.Run(s, leaderIn(n), cfg, core.RunOptions{})
			if err != nil {
				b.Fatal(err)
			}
			if res.N != n {
				b.Fatalf("counted %d, want %d", res.N, n)
			}
		}
	}
}

// e2SolverReplayBench replays the leader's per-level counting over the
// VHT that E2's largest sweep point actually produces — the solver-heavy
// slice of an E2 run, isolated from the engine's round overhead so the
// incremental-vs-from-scratch ratio is visible. (Whole E2 runs are
// engine-bound: the VHT solve is microseconds either way, see E2Count.)
func e2SolverReplayBench(n int, incremental bool) func(b *testing.B) {
	return func(b *testing.B) {
		// The schedule pins the classic math/rand stream that PR 2's
		// snapshot measured (RandomConnectedSchedule moved to a per-round
		// PCG since): only the setup run consumes it, and keeping the VHT
		// byte-identical across snapshots is what makes this entry a
		// regression test of the solver rather than of the graph stream.
		s := dynnet.NewFunc(n, func(t int) *dynnet.Multigraph {
			rng := rand.New(rand.NewSource(1*1000003 + int64(t)))
			return dynnet.RandomConnected(n, 0.3, rng)
		})
		cfg := core.Config{Mode: core.ModeLeader, MaxLevels: 3*n + 6}
		res, err := core.Run(s, leaderIn(n), cfg, core.RunOptions{})
		if err != nil {
			b.Fatal(err)
		}
		depth := res.VHT.Depth()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			solver := historytree.NewSolver()
			for l := 0; l <= depth; l++ {
				var cres historytree.CountResult
				var err error
				if incremental {
					cres, err = solver.CountAt(res.VHT, l)
				} else {
					cres, err = historytree.Count(res.VHT, l)
				}
				if err != nil {
					b.Fatal(err)
				}
				if cres.Known && cres.N != n {
					b.Fatalf("wrong count at level %d: %+v", l, cres)
				}
			}
		}
	}
}

// e4Bench is the E4 red-edge run at its largest sweep point.
func e4Bench(n int) func(b *testing.B) {
	return func(b *testing.B) {
		s := dynnet.NewRandomConnected(n, 0.5, 3)
		cfg := core.Config{Mode: core.ModeLeader, MaxLevels: 3*n + 6}
		for i := 0; i < b.N; i++ {
			res, err := core.Run(s, leaderIn(n), cfg, core.RunOptions{})
			if err != nil {
				b.Fatal(err)
			}
			if res.VHT.RedEdgeCount(-1) == 0 {
				b.Fatal("no red edges recorded")
			}
		}
	}
}

// e6Bench is the E6 non-congested baseline at its largest sweep point.
func e6Bench(n int) func(b *testing.B) {
	return func(b *testing.B) {
		s := dynnet.NewRandomConnected(n, 0.3, 17)
		for i := 0; i < b.N; i++ {
			res, err := baseline.RunNonCongested(s, leaderIn(n), 0)
			if err != nil {
				b.Fatal(err)
			}
			if res.N != n {
				b.Fatalf("counted %d, want %d", res.N, n)
			}
		}
	}
}

// engineBench is the engine's dense-delivery microbenchmark under the
// given scheduler: n processes echoing over a complete graph for 50 rounds
// per iteration. The Sequential/Concurrent pair guards the direct-execution
// hot path against regression and keeps the scheduler gap visible in every
// report.
func engineBench(n int, sched engine.Scheduler) func(b *testing.B) {
	return func(b *testing.B) {
		const rounds = 50
		schedule := dynnet.NewStatic(dynnet.Complete(n))
		for i := 0; i < b.N; i++ {
			procs := make([]engine.Coroutine, n)
			for j := range procs {
				procs[j] = engine.CoroutineFunc(func(tr *engine.Transport) (any, error) {
					for r := 0; r < rounds; r++ {
						if _, err := tr.SendAndReceive(r); err != nil {
							return nil, err
						}
					}
					return nil, nil
				})
			}
			cfg := engine.Config{Schedule: schedule, MaxRounds: rounds + 1, Scheduler: sched}
			if _, err := engine.Run(cfg, procs); err != nil {
				b.Fatal(err)
			}
		}
	}
}
