package ints

import (
	"slices"
	"testing"
)

func TestSortedKeys(t *testing.T) {
	if got := SortedKeys(map[int]int(nil)); len(got) != 0 {
		t.Fatalf("SortedKeys(nil) = %v, want empty", got)
	}
	if got := SortedKeys(map[int]bool{2: true, 1: false}); !slices.Equal(got, []int{1, 2}) {
		t.Fatalf("SortedKeys over map[int]bool = %v", got)
	}
	m := map[int]int{5: 1, -2: 7, 0: 3, 11: 2}
	want := []int{-2, 0, 5, 11}
	if got := SortedKeys(m); !slices.Equal(got, want) {
		t.Fatalf("SortedKeys = %v, want %v", got, want)
	}
}

func TestAppendSortedKeysReusesBuffer(t *testing.T) {
	buf := make([]int, 0, 8)
	m := map[int]int{3: 1, 1: 1, 2: 1}
	got := AppendSortedKeys(buf[:0], m)
	if !slices.Equal(got, []int{1, 2, 3}) {
		t.Fatalf("AppendSortedKeys = %v", got)
	}
	if &got[0] != &buf[:1][0] {
		t.Fatal("AppendSortedKeys did not reuse the buffer backing array")
	}
	// A prefilled prefix must be preserved and left unsorted.
	got = AppendSortedKeys([]int{9}, m)
	if !slices.Equal(got, []int{9, 1, 2, 3}) {
		t.Fatalf("AppendSortedKeys with prefix = %v", got)
	}
}

func TestAppendInt(t *testing.T) {
	b := AppendInt([]byte("x="), -42)
	if string(b) != "x=-42" {
		t.Fatalf("AppendInt = %q", b)
	}
	if Itoa(7) != "7" {
		t.Fatal("Itoa(7) != 7")
	}
}
