// Package ints holds the small integer-map and integer-formatting helpers
// shared by the history-tree, protocol, and reporting layers. It replaces
// the per-package copies of "sorted keys of a map[int]int" that used to
// live in historytree, core, and the reporting code, and offers
// strconv-based append formatting for hot paths that previously paid for
// fmt.Sprintf.
package ints

import (
	"slices"
	"strconv"
)

// SortedKeys returns the keys of m in ascending order. The result is a
// fresh slice; use AppendSortedKeys with a reused buffer on hot paths.
func SortedKeys[V any](m map[int]V) []int {
	return AppendSortedKeys(make([]int, 0, len(m)), m)
}

// AppendSortedKeys appends the keys of m to buf in ascending order and
// returns the extended slice. Only the appended region is sorted, so buf
// is usually buf[:0] of a scratch slice.
func AppendSortedKeys[V any](buf []int, m map[int]V) []int {
	start := len(buf)
	for k := range m {
		buf = append(buf, k)
	}
	slices.Sort(buf[start:])
	return buf
}

// AppendInt appends the decimal form of v to dst, like
// strconv.AppendInt(dst, int64(v), 10) without the call-site noise.
func AppendInt(dst []byte, v int) []byte {
	return strconv.AppendInt(dst, int64(v), 10)
}

// Itoa is strconv.Itoa; re-exported so hot-path call sites that already
// import this package for AppendInt don't also need strconv.
func Itoa(v int) string {
	return strconv.Itoa(v)
}
