package service

import (
	"container/list"
	"sync"
)

// Cache is a bounded LRU of simulation results keyed by JobSpec.Hash().
// Simulations are deterministic in their spec, so a hit is exact: the
// cached result is byte-for-byte what a re-run would produce. All methods
// are safe for concurrent use.
type Cache struct {
	mu        sync.Mutex
	cap       int
	order     *list.List // front = most recently used; values are *cacheEntry
	entries   map[string]*list.Element
	evictions int64
}

type cacheEntry struct {
	key    string
	result *Result
}

// NewCache returns an LRU cache holding at most capacity results.
// capacity <= 0 disables caching (every Get misses, Put is a no-op).
func NewCache(capacity int) *Cache {
	return &Cache{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[string]*list.Element),
	}
}

// Get returns the cached result for the key, marking it most recently used.
func (c *Cache) Get(key string) (*Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).result, true
}

// Put stores the result under the key, evicting the least recently used
// entry if the cache is full.
func (c *Cache) Put(key string, r *Result) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).result = r
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, result: r})
	for c.order.Len() > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.entries, last.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// Evictions returns the number of entries evicted by capacity pressure
// since the cache was created.
func (c *Cache) Evictions() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictions
}

// Len returns the number of cached results.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
