package service

import (
	"context"
	"strings"
	"testing"
	"time"
)

// longSpec is a worst-case job (adaptive isolator, O(n³) rounds) that takes
// far longer than any test timeout, so it is guaranteed to still be running
// when cancelled.
func longSpec() JobSpec { return JobSpec{N: 20, Topology: "isolator"} }

func quickSpec(seed int64) JobSpec { return JobSpec{N: 5, Seed: seed} }

func TestManagerCancelQueuedJob(t *testing.T) {
	m := NewManager(1, 8, 8) // one worker, so the second job queues
	defer func() { _ = m.Shutdown(contextWithTimeout(t, 30*time.Second)) }()

	running, err := m.Submit(longSpec())
	if err != nil {
		t.Fatal(err)
	}
	queued, err := m.Submit(quickSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	// Cancel the queued job before the worker can reach it.
	if err := m.Cancel(queued.ID); err != nil {
		t.Fatalf("cancel queued: %v", err)
	}
	st, err := WaitTerminal(queued, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != JobCancelled {
		t.Fatalf("queued job state %s, want cancelled", st.State)
	}
	// Cancelling a terminal job conflicts.
	if err := m.Cancel(queued.ID); err != ErrFinished {
		t.Fatalf("double cancel: %v, want ErrFinished", err)
	}
	if err := m.Cancel("job-999999"); err != ErrNotFound {
		t.Fatalf("cancel unknown: %v, want ErrNotFound", err)
	}
	// Unblock the worker.
	if err := m.Cancel(running.ID); err != nil {
		t.Fatalf("cancel running: %v", err)
	}
	if got := m.Metrics.JobsCancelled.Load(); got != 2 {
		t.Fatalf("jobsCancelled=%d, want 2", got)
	}
}

func TestManagerShutdownDrainsQueue(t *testing.T) {
	m := NewManager(1, 8, 8)
	j1, err := m.Submit(quickSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	j2, err := m.Submit(quickSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Shutdown(contextWithTimeout(t, 60*time.Second)); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	for _, j := range []*Job{j1, j2} {
		st := j.Status()
		if st.State != JobDone {
			t.Fatalf("job %s state %s after drain, want done", j.ID, st.State)
		}
	}
	if _, err := m.Submit(quickSpec(3)); err != ErrShuttingDown {
		t.Fatalf("submit after shutdown: %v, want ErrShuttingDown", err)
	}
}

func TestManagerShutdownForceCancelsOnDeadline(t *testing.T) {
	m := NewManager(1, 8, 8)
	job, err := m.Submit(longSpec())
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the job is actually running so the force-cancel path (not
	// the queue-drain path) is exercised.
	waitState(t, job, JobRunning, 10*time.Second)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = m.Shutdown(ctx)
	if err == nil {
		t.Fatal("expected deadline error from forced shutdown")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("forced shutdown took %v", elapsed)
	}
	if st := job.Status(); st.State != JobCancelled {
		t.Fatalf("job state %s after forced shutdown, want cancelled", st.State)
	}
}

func TestManagerQueueFull(t *testing.T) {
	m := NewManager(1, 8, 1)
	defer func() {
		for _, st := range m.Jobs() {
			_ = m.Cancel(st.ID)
		}
		_ = m.Shutdown(contextWithTimeout(t, 30*time.Second))
	}()
	if _, err := m.Submit(longSpec()); err != nil {
		t.Fatal(err)
	}
	// Fill the single queue slot, then overflow it. The first submit may
	// still be queued or already picked up, so allow one success.
	var sawFull bool
	for i := int64(0); i < 3; i++ {
		if _, err := m.Submit(quickSpec(i)); err == ErrQueueFull {
			sawFull = true
			break
		}
	}
	if !sawFull {
		t.Fatal("queue never reported full")
	}
}

func waitState(t *testing.T, job *Job, want JobState, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if job.Status().State == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached state %s (now %s)", job.ID, want, job.Status().State)
}

func contextWithTimeout(t *testing.T, d time.Duration) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), d)
	t.Cleanup(cancel)
	return ctx
}

// TestManagerWatchdogJobFailsStructured is the service half of the
// out-of-model fault contract: a job whose fault plan wedges the
// simulation must terminate as JobFailed with the watchdog's structured
// error — within its own deadline, without tying up the worker — and be
// counted by the JobsDeadlined metric. It must never be cached.
func TestManagerWatchdogJobFailsStructured(t *testing.T) {
	m := NewManager(1, 8, 8)
	defer func() { _ = m.Shutdown(contextWithTimeout(t, 30*time.Second)) }()

	wedged := JobSpec{
		N:          5,
		Topology:   "complete",
		Halt:       true,
		Faults:     "drop:1:0:1",
		DeadlineMS: 150,
		MaxRounds:  1 << 30,
	}
	job, err := m.Submit(wedged)
	if err != nil {
		t.Fatal(err)
	}
	st, err := WaitTerminal(job, 15*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != JobFailed {
		t.Fatalf("state %s, want failed (error %q)", st.State, st.Error)
	}
	if !strings.Contains(st.Error, "watchdog") {
		t.Fatalf("error %q does not carry the watchdog detail", st.Error)
	}
	if got := m.Metrics.JobsDeadlined.Load(); got != 1 {
		t.Fatalf("jobsDeadlined=%d, want 1", got)
	}
	if got := m.Metrics.JobsFailed.Load(); got != 1 {
		t.Fatalf("jobsFailed=%d, want 1", got)
	}
	// Failures are not cached: resubmitting simulates again (and fails
	// again) instead of replaying a bogus cached result.
	again, err := m.Submit(wedged)
	if err != nil {
		t.Fatal(err)
	}
	if again.CacheHit {
		t.Fatal("a failed run must not populate the result cache")
	}
	st2, err := WaitTerminal(again, 15*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st2.State != JobFailed {
		t.Fatalf("resubmitted state %s, want failed", st2.State)
	}
}
