package service

import (
	"context"
	"encoding/json"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"anondyn/internal/store"
)

// TestManagerStoreRestartCacheHit is the restart-survival contract: a
// result computed before a daemon restart is served from the persistent
// store afterwards — zero recomputation — and promoted back into the LRU.
func TestManagerStoreRestartCacheHit(t *testing.T) {
	dir := t.TempDir()
	spec := quickSpec(42)

	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(1, 8, 8)
	m.AttachStore(st)
	job, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	first, err := WaitTerminal(job, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if first.State != JobDone || first.Result.N != 5 {
		t.Fatalf("first run: %+v", first)
	}
	if err := m.Shutdown(contextWithTimeout(t, 30*time.Second)); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh manager (empty LRU) over the same store directory.
	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	m2 := NewManager(1, 8, 8)
	m2.AttachStore(st2)
	defer func() { _ = m2.Shutdown(contextWithTimeout(t, 30*time.Second)) }()

	again, err := m2.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit {
		t.Fatal("restart lost the persisted result: no cache hit")
	}
	stAgain := again.Status()
	if stAgain.State != JobDone || stAgain.Result == nil || stAgain.Result.N != 5 {
		t.Fatalf("persisted result corrupted: %+v", stAgain)
	}
	if got := m2.Metrics.StoreHits.Load(); got != 1 {
		t.Fatalf("storeHits=%d, want 1", got)
	}
	if got := m2.Metrics.RoundsSimulated.Load(); got != 0 {
		t.Fatalf("store hit re-simulated %d rounds, want 0", got)
	}

	// The hit was promoted into the LRU: a third submission hits memory,
	// not the store.
	third, err := m2.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !third.CacheHit {
		t.Fatal("promoted result missing from LRU")
	}
	if got := m2.Metrics.StoreHits.Load(); got != 1 {
		t.Fatalf("LRU-promoted hit consulted the store again: storeHits=%d", got)
	}
}

// TestServerHealthzAndMetrics pins the /v1/healthz probe contract and the
// metrics extensions: cache occupancy, evictions, and persistent-store
// stats all surface in /v1/metrics.
func TestServerHealthzAndMetrics(t *testing.T) {
	srv, err := NewServer(ServerConfig{
		Workers:   2,
		CacheSize: 1, // every second distinct job evicts the first
		QueueSize: 16,
		StoreDir:  t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer func() { _ = srv.Shutdown(contextWithTimeout(t, 30*time.Second)) }()
	base := "http://" + srv.Addr()

	resp, err := http.Get(base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz healthzStatus
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || hz.Status != "ok" {
		t.Fatalf("healthz: status %d, body %+v", resp.StatusCode, hz)
	}

	for seed := int64(1); seed <= 3; seed++ {
		resp, err := http.Post(base+"/v1/jobs", "application/json",
			strings.NewReader(`{"n":5,"seed":`+string(rune('0'+seed))+`}`))
		if err != nil {
			t.Fatal(err)
		}
		var st JobStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		job, ok := srv.Manager().Get(st.ID)
		if !ok {
			t.Fatalf("job %s vanished", st.ID)
		}
		if _, err := WaitTerminal(job, 30*time.Second); err != nil {
			t.Fatal(err)
		}
	}

	resp, err = http.Get(base + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if m.CacheEntries != 1 {
		t.Fatalf("cacheEntries=%d, want 1 (capacity 1)", m.CacheEntries)
	}
	if m.CacheEvictions < 2 {
		t.Fatalf("cacheEvictions=%d, want >=2 (three distinct jobs through a 1-entry LRU)", m.CacheEvictions)
	}
	if m.Store == nil || m.Store.Records != 3 || m.Store.Puts != 3 {
		t.Fatalf("store stats missing or wrong: %+v", m.Store)
	}
}

// TestEventStreamClientDisconnect is the goroutine-leak regression for the
// NDJSON event stream: clients that vanish mid-stream must release their
// handler goroutines and job subscriptions promptly, while the job is
// still running.
func TestEventStreamClientDisconnect(t *testing.T) {
	srv, err := NewServer(ServerConfig{Workers: 1, CacheSize: 4, QueueSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer func() { _ = srv.Shutdown(contextWithTimeout(t, 30*time.Second)) }()
	base := "http://" + srv.Addr()

	// n=40 keeps the adaptive worst case running for tens of seconds (the
	// n=20 variant finishes in under a second on the direct-execution
	// engine), so the job is guaranteed to outlive every stream below.
	resp, err := http.Post(base+"/v1/jobs", "application/json",
		strings.NewReader(`{"n":40,"topology":"isolator"}`))
	if err != nil {
		t.Fatal(err)
	}
	var submitted JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&submitted); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	job, ok := srv.Manager().Get(submitted.ID)
	if !ok {
		t.Fatalf("job %s vanished", submitted.ID)
	}
	waitState(t, job, JobRunning, 10*time.Second)

	subscribers := func() int {
		job.mu.Lock()
		defer job.mu.Unlock()
		return len(job.subs)
	}
	baseline := runtime.NumGoroutine()

	// Open several streams, read one line from each, then drop them all
	// without consuming the (still-growing) remainder.
	const streams = 8
	cancels := make([]context.CancelFunc, 0, streams)
	client := &http.Client{}
	for i := 0; i < streams; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		cancels = append(cancels, cancel)
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/jobs/"+job.ID+"/events", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 64)
		if _, err := resp.Body.Read(buf); err != nil {
			t.Fatalf("stream %d produced nothing: %v", i, err)
		}
		defer resp.Body.Close()
	}
	if n := subscribers(); n != streams {
		t.Fatalf("%d subscribers registered, want %d", n, streams)
	}

	for _, cancel := range cancels {
		cancel() // tears down the connections client-side
	}
	client.CloseIdleConnections()

	// Every handler goroutine and subscription must unwind while the job
	// keeps running.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if subscribers() == 0 && runtime.NumGoroutine() <= baseline+2 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if n := subscribers(); n != 0 {
		t.Fatalf("%d subscriptions leaked after client disconnect", n)
	}
	if g := runtime.NumGoroutine(); g > baseline+2 {
		buf := make([]byte, 1<<16)
		n := runtime.Stack(buf, true)
		t.Fatalf("handler goroutines leaked: baseline %d, now %d\n%s", baseline, g, buf[:n])
	}
	if st := job.Status(); st.State != JobRunning {
		t.Fatalf("job state %s, want still running", st.State)
	}
	if err := srv.Manager().Cancel(job.ID); err != nil {
		t.Fatal(err)
	}
}
