package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"
)

// TestServerEndToEnd exercises the full daemon lifecycle required by the
// acceptance criteria: submit two identical jobs and one distinct job and
// observe the cache hit, stream NDJSON events from a running job, cancel a
// worst-case job promptly without leaking goroutines, and shut the server
// down gracefully.
func TestServerEndToEnd(t *testing.T) {
	baseline := runtime.NumGoroutine()

	srv, err := NewServer(ServerConfig{Workers: 2, CacheSize: 16, QueueSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	base := "http://" + srv.Addr()
	client := &http.Client{Timeout: 60 * time.Second}

	post := func(spec string) JobStatus {
		t.Helper()
		resp, err := client.Post(base+"/v1/jobs", "application/json", strings.NewReader(spec))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			var apiErr apiError
			_ = json.NewDecoder(resp.Body).Decode(&apiErr)
			t.Fatalf("POST %s: status %d: %s", spec, resp.StatusCode, apiErr.Error)
		}
		var st JobStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return st
	}
	getStatus := func(id string) JobStatus {
		t.Helper()
		resp, err := client.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st JobStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return st
	}
	metrics := func() MetricsSnapshot {
		t.Helper()
		resp, err := client.Get(base + "/v1/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var m MetricsSnapshot
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatal(err)
		}
		return m
	}
	waitDone := func(id string) JobStatus {
		t.Helper()
		job, ok := srv.Manager().Get(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		st, err := WaitTerminal(job, 60*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}

	// --- Dedup: two identical jobs, one distinct. ---
	const specA = `{"n":6,"seed":1}`
	first := post(specA)
	if first.CacheHit {
		t.Fatal("first submission cannot be a cache hit")
	}
	st := waitDone(first.ID)
	if st.State != JobDone || st.Result == nil || st.Result.N != 6 {
		t.Fatalf("first job: %+v", st)
	}
	m1 := metrics()
	if m1.CacheMisses < 1 || m1.RoundsSimulated <= 0 {
		t.Fatalf("metrics after first job: %+v", m1)
	}

	second := post(specA) // identical spec → served from cache, no simulation
	if !second.CacheHit || second.State != JobDone || second.Result == nil || second.Result.N != 6 {
		t.Fatalf("identical resubmission not served from cache: %+v", second)
	}
	m2 := metrics()
	if m2.CacheHits != m1.CacheHits+1 {
		t.Fatalf("cacheHits %d → %d, want +1", m1.CacheHits, m2.CacheHits)
	}
	if m2.RoundsSimulated != m1.RoundsSimulated {
		t.Fatalf("cache hit re-simulated: rounds %d → %d", m1.RoundsSimulated, m2.RoundsSimulated)
	}

	distinct := post(`{"n":6,"seed":2}`) // different seed → different run
	if distinct.CacheHit {
		t.Fatal("distinct spec must miss the cache")
	}
	if st := waitDone(distinct.ID); st.State != JobDone || st.Result.N != 6 {
		t.Fatalf("distinct job: %+v", st)
	}
	if m3 := metrics(); m3.RoundsSimulated <= m2.RoundsSimulated {
		t.Fatalf("distinct job simulated no rounds: %d → %d", m2.RoundsSimulated, m3.RoundsSimulated)
	}

	// --- Stream NDJSON events for a long-running worst-case job. ---
	long := post(`{"n":20,"topology":"isolator"}`)
	streamCtx, cancelStream := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancelStream()
	req, err := http.NewRequestWithContext(streamCtx, http.MethodGet, base+"/v1/jobs/"+long.ID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("events content type %q", ct)
	}
	scanner := bufio.NewScanner(resp.Body)
	sawRound := false
	for scanner.Scan() && !sawRound {
		var ev Event
		if err := json.Unmarshal(scanner.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", scanner.Text(), err)
		}
		if ev.Type == "round" && ev.Round > 0 && ev.Messages > 0 {
			sawRound = true
		}
	}
	if !sawRound {
		t.Fatal("event stream produced no round-progress events")
	}

	// --- Cancel the long job; it must stop promptly. ---
	delReq, err := http.NewRequest(http.MethodDelete, base+"/v1/jobs/"+long.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	delResp, err := client.Do(delReq)
	if err != nil {
		t.Fatal(err)
	}
	var delSt JobStatus
	if err := json.NewDecoder(delResp.Body).Decode(&delSt); err != nil {
		t.Fatal(err)
	}
	delResp.Body.Close()
	if delResp.StatusCode != http.StatusOK || delSt.State != JobCancelled {
		t.Fatalf("DELETE: status %d, job state %s", delResp.StatusCode, delSt.State)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v, want prompt", elapsed)
	}
	// The event stream of a cancelled job terminates with its final status.
	var lastLine []byte
	for scanner.Scan() {
		lastLine = append(lastLine[:0], scanner.Bytes()...)
	}
	var final struct {
		Type   string    `json:"type"`
		Status JobStatus `json:"status"`
	}
	if err := json.Unmarshal(lastLine, &final); err != nil || final.Type != "status" || final.Status.State != JobCancelled {
		t.Fatalf("stream final line %q (err %v), want terminal status line", lastLine, err)
	}
	resp.Body.Close()

	if m := metrics(); m.JobsCancelled != 1 {
		t.Fatalf("jobsCancelled=%d, want 1", m.JobsCancelled)
	}

	// --- API error surface. ---
	if resp, err := client.Post(base+"/v1/jobs", "application/json", strings.NewReader(`{"n":-4}`)); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("invalid spec: status %d, want 400", resp.StatusCode)
		}
	}
	if st := getStatus(long.ID); st.State != JobCancelled {
		t.Fatalf("GET after cancel: %s", st.State)
	}
	if resp, err := client.Get(base + "/v1/jobs/nonexistent"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("unknown job: status %d, want 404", resp.StatusCode)
		}
	}
	if resp, err := client.Get(base + "/v1/jobs"); err != nil {
		t.Fatal(err)
	} else {
		var all []JobStatus
		if err := json.NewDecoder(resp.Body).Decode(&all); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if len(all) != 4 {
			t.Fatalf("job list has %d entries, want 4", len(all))
		}
	}

	// --- Graceful shutdown, then no more connections. ---
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	if _, err := client.Get(base + "/healthz"); err == nil {
		t.Fatal("server still serving after shutdown")
	}

	// --- No goroutine leaks. ---
	client.CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines leaked: baseline %d, now %d\n%s", baseline, runtime.NumGoroutine(), buf[:n])
}

// TestServerRejectsUnknownFields guards the API contract: a typo in a spec
// field is an error, not a silently defaulted knob.
func TestServerRejectsUnknownFields(t *testing.T) {
	srv, err := NewServer(ServerConfig{Workers: 1, CacheSize: 4, QueueSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	resp, err := http.Post("http://"+srv.Addr()+"/v1/jobs", "application/json",
		bytes.NewReader([]byte(`{"n":4,"topologyy":"path"}`)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
}
