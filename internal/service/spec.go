// Package service turns the one-shot counting simulation into a long-lived
// simulation-as-a-service daemon: an HTTP/JSON job queue over the engine.
//
// The pieces:
//
//   - JobSpec (spec.go): the canonical description of one simulation — the
//     same parameter surface as cmd/cadn — with validation and a stable
//     content hash used as the result-cache key.
//   - Manager (jobs.go): a bounded worker pool executing jobs with
//     per-job cancellation and per-round progress events.
//   - Cache (cache.go): a deduplicating LRU of results keyed by spec hash,
//     so identical deterministic runs are served without re-simulation.
//   - Metrics (metrics.go): run counters exposed at /v1/metrics.
//   - Server (server.go): the net/http surface (submit, status, cancel,
//     NDJSON event streaming) with graceful shutdown.
package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"anondyn/internal/adversary"
	"anondyn/internal/core"
	"anondyn/internal/dynnet"
	"anondyn/internal/engine"
	"anondyn/internal/faults"
	"anondyn/internal/historytree"
	"anondyn/internal/linear"
)

// Topologies supported by JobSpec, in the order they are documented.
var Topologies = []string{
	"random", "path", "cycle", "complete", "star",
	"rotating-star", "shifting-path", "bottleneck", "isolator",
}

// JobSpec is the canonical description of one counting simulation. It
// mirrors the cmd/cadn flag surface so any CLI invocation can be replayed
// as a service job. The zero value is not valid; Normalize fills defaults.
type JobSpec struct {
	// N is the number of processes.
	N int `json:"n"`
	// Protocol selects the counting backend: "" or "congested" for the
	// PODC 2023 congested protocol (internal/core, O(T·n³ log n) rounds,
	// O(log n)-bit messages), "linear" for the FOCS 2022 full-information
	// protocol (internal/linear, Θ(T·n) rounds, messages growing to
	// Θ(n³ log n) bits). Unlike Scheduler or Arithmetic this is a
	// semantic knob: answers agree (pinned by the cross-protocol
	// equivalence suite) but rounds and bit accounting differ, so the
	// spec hash keeps it. The congested-only extensions (halt, fine,
	// batch, keepAll, eager, compact, privatevht, the isolator adversary)
	// are rejected under "linear".
	Protocol string `json:"protocol,omitempty"`
	// Topology selects the adversary (see Topologies). "isolator" is the
	// strongly adaptive worst case; the rest are oblivious schedules.
	Topology string `json:"topology,omitempty"`
	// Density is the extra-edge probability of the random adversary.
	Density float64 `json:"p,omitempty"`
	// Seed seeds the adversary RNG (runs are deterministic given the spec).
	Seed int64 `json:"seed,omitempty"`
	// BlockT is the dynamic disconnectivity (T-union-connected extension).
	BlockT int `json:"T,omitempty"`
	// Leaderless runs the Section 5 leaderless frequency algorithm.
	Leaderless bool `json:"leaderless,omitempty"`
	// Inputs are per-process input values (enables Generalized Counting).
	Inputs []int64 `json:"inputs,omitempty"`
	// Halt enables simultaneous termination.
	Halt bool `json:"halt,omitempty"`
	// BitLimit aborts the run if any message exceeds this many bits.
	BitLimit int `json:"bitLimit,omitempty"`
	// Fine enables fine-grained resets (Section 5 "Optimized running time").
	Fine bool `json:"fine,omitempty"`
	// Batch batches up to this many observations per Edge message.
	Batch int `json:"batch,omitempty"`
	// KeepAll disables the Section 3.4 spanning-tree restriction (ablation).
	KeepAll bool `json:"keepAll,omitempty"`
	// Eager skips the confirmation window (pseudocode-literal termination).
	Eager bool `json:"eager,omitempty"`
	// MaxRounds caps the run; 0 derives the default O(T·n³ log n) budget.
	MaxRounds int `json:"maxRounds,omitempty"`
	// Scheduler selects the engine execution strategy: "" or "sequential"
	// for the direct-execution default, "parallel" for the sharded
	// round-parallel scheduler (same results, less wall clock on
	// multi-core hosts), "concurrent" for the goroutine-per-process
	// coordinator. All produce identical results (the spec hash treats
	// them as the same simulation), so this is a performance/debugging
	// knob, not a semantic one.
	Scheduler string `json:"scheduler,omitempty"`
	// CompactVHT enables history-level compaction: consumed VHT levels are
	// released once the counting solver can never re-read them, keeping
	// resident memory proportional to the active view instead of the whole
	// run. Answers are unchanged (pinned by the core equivalence suite),
	// so the spec hash ignores it; only the residency stats differ. Under
	// fault plans a reset can outrun the compaction lag and abort the run
	// with a structured error — prefer leaving it off with faults.
	CompactVHT bool `json:"compact,omitempty"`
	// PrivateVHT disables cross-process structural sharing: every process
	// keeps its own VHT and applies every accepted message itself, as the
	// pre-sharing code did. The default (false) shares one structure per
	// run through a verified operation log. Results are identical (pinned
	// by the core sharing equivalence suite), so the spec hash ignores it;
	// it exists as an ablation knob for perf comparisons.
	PrivateVHT bool `json:"private_vht,omitempty"`
	// Arithmetic selects the counting solver's exact-arithmetic backend:
	// "" or "modular" for the multi-modular residue/CRT default, "big"
	// for the fraction-free big.Int eliminator kept as the exactness
	// witness. Both backends produce identical results (pinned by the
	// solver equivalence suite), so like Scheduler this is a
	// performance/debugging knob the spec hash ignores.
	Arithmetic string `json:"arithmetic,omitempty"`
	// Faults is a fault-plan spec layered over the adversary (see
	// internal/faults.Parse for the grammar, e.g. "spike:8:0"). Empty
	// means fault-free. Out-of-model plans (drop, crash) require a
	// deadline, since the protocol's termination guarantee no longer
	// applies under them.
	Faults string `json:"faults,omitempty"`
	// FaultSeed seeds the fault plan's RNG (only LinkDrop consumes it).
	FaultSeed int64 `json:"faultSeed,omitempty"`
	// DeadlineMS arms the engine watchdog: a run still going after this
	// many milliseconds of wall clock terminates with a structured
	// watchdog error. 0 disarms it (fault-free and in-model runs always
	// terminate on their own).
	DeadlineMS int `json:"deadlineMS,omitempty"`
}

// Normalize fills defaulted fields in place so that equivalent specs hash
// identically.
func (s *JobSpec) Normalize() {
	if s.Protocol == "congested" {
		s.Protocol = "" // the default, spelled out
	}
	if s.Topology == "" {
		s.Topology = "random"
	}
	if s.Topology == "random" && s.Density == 0 {
		s.Density = 0.3
	}
	if s.Topology != "random" {
		s.Density = 0 // only the random adversary consumes it
	}
	if s.BlockT < 1 {
		s.BlockT = 1
	}
	if len(s.Inputs) == 0 {
		s.Inputs = nil
	}
	if s.Scheduler == "sequential" {
		s.Scheduler = "" // the default, spelled out
	}
	if s.Arithmetic == "modular" {
		s.Arithmetic = "" // the default, spelled out
	}
	s.Faults = strings.TrimSpace(s.Faults)
	if s.Faults == "" {
		s.FaultSeed = 0 // meaningless without a plan; keep the hash stable
	}
}

// Validate checks the spec for structural errors. It assumes Normalize has
// run (Validate normalizes a copy itself, so calling it on a raw spec is
// safe).
func (s JobSpec) Validate() error {
	s.Normalize()
	if s.N <= 0 {
		return fmt.Errorf("n must be positive, got %d", s.N)
	}
	known := false
	for _, t := range Topologies {
		if s.Topology == t {
			known = true
			break
		}
	}
	if !known {
		return fmt.Errorf("unknown topology %q (have %v)", s.Topology, Topologies)
	}
	if s.Density < 0 || s.Density > 1 {
		return fmt.Errorf("density p must be in [0,1], got %g", s.Density)
	}
	if s.Batch < 0 {
		return fmt.Errorf("batch must be non-negative, got %d", s.Batch)
	}
	if s.BitLimit < 0 {
		return fmt.Errorf("bitLimit must be non-negative, got %d", s.BitLimit)
	}
	if s.MaxRounds < 0 {
		return fmt.Errorf("maxRounds must be non-negative, got %d", s.MaxRounds)
	}
	if s.Protocol != "" && s.Protocol != "linear" {
		return fmt.Errorf("unknown protocol %q (have congested, linear)", s.Protocol)
	}
	if s.Protocol == "linear" {
		// The congested protocol's acknowledgment/reset machinery and its
		// extensions have no counterpart in the full-information backend.
		switch {
		case s.Halt:
			return fmt.Errorf("halt is congested-only (the linear protocol has no Halt broadcast)")
		case s.Fine:
			return fmt.Errorf("fine-grained resets are congested-only (the linear protocol has no resets)")
		case s.Batch > 0:
			return fmt.Errorf("batch is congested-only (the linear protocol already ships whole views)")
		case s.KeepAll:
			return fmt.Errorf("keepAll is congested-only (the linear protocol has no virtual network)")
		case s.Eager:
			return fmt.Errorf("eager is congested-only (the linear protocol has no confirmation window)")
		case s.CompactVHT:
			return fmt.Errorf("compact is congested-only (linear views must stay whole to be broadcast)")
		case s.PrivateVHT:
			return fmt.Errorf("privatevht is congested-only (the linear protocol always shares one interner)")
		case s.Topology == "isolator":
			return fmt.Errorf("the isolator adversary targets the congested protocol's leader; protocol linear unsupported")
		}
	}
	if s.Scheduler != "" && s.Scheduler != "parallel" && s.Scheduler != "concurrent" {
		return fmt.Errorf("unknown scheduler %q (have sequential, parallel, concurrent)", s.Scheduler)
	}
	if s.Arithmetic != "" && s.Arithmetic != "big" {
		return fmt.Errorf("unknown arithmetic %q (have modular, big)", s.Arithmetic)
	}
	if len(s.Inputs) > 0 && len(s.Inputs) != s.N {
		return fmt.Errorf("%d input values for %d processes", len(s.Inputs), s.N)
	}
	if s.DeadlineMS < 0 {
		return fmt.Errorf("deadlineMS must be non-negative, got %d", s.DeadlineMS)
	}
	if s.Faults != "" {
		plan, err := faults.Parse(s.Faults, s.BlockT, s.FaultSeed)
		if err != nil {
			return fmt.Errorf("invalid fault plan: %w", err)
		}
		if err := plan.ValidateFor(s.N); err != nil {
			return fmt.Errorf("invalid fault plan: %w", err)
		}
		if !plan.InModel() && s.DeadlineMS == 0 {
			return fmt.Errorf("fault plan %q is out-of-model (termination no longer guaranteed); set deadlineMS", s.Faults)
		}
	}
	if s.Leaderless {
		if len(s.Inputs) == 0 {
			return fmt.Errorf("leaderless mode requires per-process inputs")
		}
		if s.Halt {
			return fmt.Errorf("leaderless mode already terminates simultaneously; halt is leader-mode only")
		}
		if s.Fine {
			return fmt.Errorf("fine-grained resets are leader-mode only (leaderless has no resets)")
		}
		if s.Topology == "isolator" {
			return fmt.Errorf("the isolator adversary targets the leader; leaderless mode unsupported")
		}
	}
	if s.Topology == "isolator" && s.BlockT > 1 {
		return fmt.Errorf("the isolator adversary is always connected; T=%d unsupported", s.BlockT)
	}
	return nil
}

// Hash returns the canonical content hash of the spec: the SHA-256 of its
// normalized JSON encoding with keys in a fixed order. Two specs describing
// the same deterministic simulation hash identically, so the hash is the
// result-cache key.
func (s JobSpec) Hash() string {
	s.Normalize()
	// All schedulers produce identical results (the engine's equivalence
	// contract), so the choice must not fragment the result cache; the
	// same holds for the arithmetic backends (the solver's equivalence
	// contract) and for compaction (the core equivalence suite).
	s.Scheduler = ""
	s.Arithmetic = ""
	s.CompactVHT = false
	s.PrivateVHT = false
	// Protocol stays in the hash: both protocols return the same answer
	// (the cross-protocol equivalence suite pins that), but the cached
	// Result also carries rounds and bit accounting, which differ
	// radically between them — one cache entry cannot serve both.
	// The deadline only decides when a non-terminating run is abandoned;
	// completed results are independent of it, and failed runs are never
	// cached, so it must not fragment the cache either. Faults and
	// FaultSeed DO shape the simulation and stay in the hash.
	s.DeadlineMS = 0
	// encoding/json marshals struct fields in declaration order, which is
	// stable; inputs are a slice, also stable. A round-trip through a map
	// would lose that, so marshal the struct directly.
	b, err := json.Marshal(s)
	if err != nil {
		// JobSpec contains only marshalable field types.
		panic(fmt.Sprintf("service: marshal spec: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// inputs materializes the per-process initial states.
func (s JobSpec) inputs() []historytree.Input {
	in := make([]historytree.Input, s.N)
	if !s.Leaderless && s.N > 0 {
		in[0].Leader = true
	}
	for i, v := range s.Inputs {
		in[i].Value = v
	}
	return in
}

// schedule builds the oblivious adversary, or nil for "isolator".
func (s JobSpec) schedule() (dynnet.Schedule, error) {
	var sched dynnet.Schedule
	switch s.Topology {
	case "random":
		sched = dynnet.NewRandomConnected(s.N, s.Density, s.Seed)
	case "path":
		sched = dynnet.NewStatic(dynnet.Path(s.N))
	case "cycle":
		sched = dynnet.NewStatic(dynnet.Cycle(s.N))
	case "complete":
		sched = dynnet.NewStatic(dynnet.Complete(s.N))
	case "star":
		sched = dynnet.NewStatic(dynnet.Star(s.N, 0))
	case "rotating-star":
		sched = dynnet.NewRotatingStar(s.N)
	case "shifting-path":
		sched = dynnet.NewShiftingPath(s.N)
	case "bottleneck":
		sched = dynnet.NewBottleneck(s.N)
	case "isolator":
		return nil, nil
	default:
		return nil, fmt.Errorf("unknown topology %q", s.Topology)
	}
	if s.BlockT > 1 {
		return dynnet.NewUnionConnected(sched, s.BlockT)
	}
	return sched, nil
}

// config derives the protocol configuration.
func (s JobSpec) config() core.Config {
	cfg := core.Config{
		Mode:             core.ModeLeader,
		BuildInputLevel:  len(s.Inputs) > 0,
		SimultaneousHalt: s.Halt,
		BlockT:           s.BlockT,
		MaxLevels:        3*s.N + 8,
		FineGrainedReset: s.Fine,
		BatchSize:        s.Batch,
		KeepAllLinks:     s.KeepAll,
		EagerTermination: s.Eager,
		CompactVHT:       s.CompactVHT,
		PrivateVHT:       s.PrivateVHT,
	}
	if s.Arithmetic == "big" {
		cfg.Arithmetic = historytree.ArithBig
	}
	if s.Leaderless {
		cfg.Mode = core.ModeLeaderless
		cfg.DiamBound = s.N * s.BlockT
		cfg.SimultaneousHalt = false
	}
	return cfg
}

// linearConfig derives the linear-protocol configuration. The service
// convention DiamBound = N·BlockT carries over from leaderless congested
// runs, and so does the MaxLevels divergence guard.
func (s JobSpec) linearConfig() linear.Config {
	cfg := linear.Config{
		Mode:      core.ModeLeader,
		BlockT:    s.BlockT,
		MaxLevels: 3*s.N + 8,
	}
	if s.Arithmetic == "big" {
		cfg.Arithmetic = historytree.ArithBig
	}
	if s.Leaderless {
		cfg.Mode = core.ModeLeaderless
		cfg.DiamBound = s.N * s.BlockT
	}
	return cfg
}

// Run validates the spec and executes the simulation it describes,
// cancellable through ctx. The trace hook (may be nil) observes every
// round's sent messages — the daemon uses it to stream per-round progress.
// This is the single run-config→result entry point shared by cmd/cadn and
// the service; the result is deterministic in the spec.
func (s JobSpec) Run(ctx context.Context, traceHook func(round int, sent []engine.Message)) (*core.RunResult, error) {
	s.Normalize()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	opts := core.RunOptions{
		Ctx:       ctx,
		MaxRounds: s.MaxRounds,
		BitLimit:  s.BitLimit,
		Deadline:  time.Duration(s.DeadlineMS) * time.Millisecond,
		Trace:     traceHook,
	}
	switch s.Scheduler {
	case "parallel":
		opts.Scheduler = engine.SchedulerParallel
	case "concurrent":
		opts.Scheduler = engine.SchedulerConcurrent
	}
	var plan *faults.Plan
	if s.Faults != "" {
		var err error
		plan, err = faults.Parse(s.Faults, s.BlockT, s.FaultSeed)
		if err != nil {
			return nil, err
		}
	}
	if s.Topology == "isolator" {
		var adv engine.AdaptiveSchedule = adversary.NewIsolator(s.N, 0)
		if plan != nil {
			adv = plan.WrapAdaptive(adv)
		}
		return core.RunAdaptive(adv, s.inputs(), s.config(), opts)
	}
	sched, err := s.schedule()
	if err != nil {
		return nil, err
	}
	if plan != nil {
		sched = plan.Wrap(sched)
	}
	if s.Protocol == "linear" {
		return linear.Run(sched, s.inputs(), s.linearConfig(), opts)
	}
	return core.Run(sched, s.inputs(), s.config(), opts)
}

// Result is the JSON shape of a completed run, shared by the HTTP API and
// the result cache.
type Result struct {
	// N is the computed process count (leader mode).
	N int `json:"n,omitempty"`
	// Multiset is the Generalized Counting answer keyed by the input's
	// compact rendering (e.g. "L:0", "7").
	Multiset map[string]int `json:"multiset,omitempty"`
	// Frequencies is the leaderless answer: shares of MinSize.
	Frequencies map[string]int `json:"frequencies,omitempty"`
	// MinSize is the minimal network size of the leaderless answer.
	MinSize int `json:"minSize,omitempty"`
	// Stats carries the run's measurements.
	Stats core.RunStats `json:"stats"`
}

// NewResult converts a core run result into its service form.
func NewResult(r *core.RunResult) *Result {
	out := &Result{N: r.N, Stats: r.Stats}
	if len(r.Multiset) > 0 {
		out.Multiset = make(map[string]int, len(r.Multiset))
		for in, c := range r.Multiset {
			out.Multiset[in.String()] = c
		}
	}
	if r.Frequencies != nil {
		out.MinSize = r.Frequencies.MinSize
		out.Frequencies = make(map[string]int, len(r.Frequencies.Shares))
		for in, share := range r.Frequencies.Shares {
			out.Frequencies[in.String()] = share
		}
	}
	return out
}
