package service

import (
	"context"
	"errors"
	"strings"
	"testing"
)

func TestSpecNormalizeDefaults(t *testing.T) {
	s := JobSpec{N: 4}
	s.Normalize()
	if s.Topology != "random" || s.Density != 0.3 || s.BlockT != 1 {
		t.Fatalf("unexpected defaults: %+v", s)
	}
	// Non-random topologies do not consume the density knob.
	s2 := JobSpec{N: 4, Topology: "path", Density: 0.7}
	s2.Normalize()
	if s2.Density != 0 {
		t.Fatalf("density should be cleared for path topology, got %g", s2.Density)
	}
}

func TestSpecHashCanonical(t *testing.T) {
	implicit := JobSpec{N: 5}
	explicit := JobSpec{N: 5, Topology: "random", Density: 0.3, BlockT: 1}
	if implicit.Hash() != explicit.Hash() {
		t.Error("defaulted and explicit specs must hash identically")
	}
	// Density is irrelevant off the random topology, so it must not split
	// the cache key.
	p1 := JobSpec{N: 5, Topology: "path", Density: 0.1}
	p2 := JobSpec{N: 5, Topology: "path", Density: 0.9}
	if p1.Hash() != p2.Hash() {
		t.Error("density must not affect the hash of non-random topologies")
	}
	// Anything that changes the simulation changes the hash.
	base := JobSpec{N: 5, Seed: 1}
	for name, other := range map[string]JobSpec{
		"n":      {N: 6, Seed: 1},
		"seed":   {N: 5, Seed: 2},
		"topo":   {N: 5, Seed: 1, Topology: "cycle"},
		"halt":   {N: 5, Seed: 1, Halt: true},
		"fine":   {N: 5, Seed: 1, Fine: true},
		"batch":  {N: 5, Seed: 1, Batch: 3},
		"inputs": {N: 5, Seed: 1, Inputs: []int64{1, 2, 3, 4, 5}},
	} {
		if base.Hash() == other.Hash() {
			t.Errorf("%s: distinct specs hash equal", name)
		}
	}
}

func TestSpecValidate(t *testing.T) {
	valid := func(s JobSpec) bool { return s.Validate() == nil }
	if !valid(JobSpec{N: 4}) {
		t.Fatal("minimal spec should validate")
	}
	tests := []struct {
		name string
		spec JobSpec
		want string
	}{
		{name: "zero-n", spec: JobSpec{}, want: "n must be positive"},
		{name: "negative-n", spec: JobSpec{N: -3}, want: "n must be positive"},
		{name: "bad-topology", spec: JobSpec{N: 4, Topology: "torus"}, want: "unknown topology"},
		{name: "bad-density", spec: JobSpec{N: 4, Density: 1.5}, want: "density"},
		{name: "negative-batch", spec: JobSpec{N: 4, Batch: -1}, want: "batch"},
		{name: "negative-bitlimit", spec: JobSpec{N: 4, BitLimit: -8}, want: "bitLimit"},
		{name: "negative-maxrounds", spec: JobSpec{N: 4, MaxRounds: -1}, want: "maxRounds"},
		{name: "inputs-mismatch", spec: JobSpec{N: 4, Inputs: []int64{1, 2}}, want: "input values"},
		{name: "leaderless-no-inputs", spec: JobSpec{N: 4, Leaderless: true}, want: "requires per-process inputs"},
		{name: "leaderless-halt", spec: JobSpec{N: 2, Leaderless: true, Inputs: []int64{1, 2}, Halt: true}, want: "halt"},
		{name: "leaderless-fine", spec: JobSpec{N: 2, Leaderless: true, Inputs: []int64{1, 2}, Fine: true}, want: "fine-grained"},
		{name: "leaderless-isolator", spec: JobSpec{N: 2, Leaderless: true, Inputs: []int64{1, 2}, Topology: "isolator"}, want: "isolator"},
		{name: "isolator-unionT", spec: JobSpec{N: 4, Topology: "isolator", BlockT: 2}, want: "isolator"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.spec.Validate()
			if err == nil {
				t.Fatalf("expected error containing %q", tt.want)
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Fatalf("error %q does not mention %q", err, tt.want)
			}
		})
	}
}

func TestSpecRunDeterministic(t *testing.T) {
	spec := JobSpec{N: 6, Seed: 3}
	r1, err := spec.Run(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := spec.Run(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if r1.N != 6 || r2.N != 6 {
		t.Fatalf("counted %d and %d, want 6", r1.N, r2.N)
	}
	// Timing fields are measurements, not protocol state; blank them
	// before demanding bit-identical stats.
	s1, s2 := r1.Stats, r2.Stats
	s1.WallClock, s1.SolverTime = 0, 0
	s2.WallClock, s2.SolverTime = 0, 0
	if s1 != s2 {
		t.Fatalf("same spec produced different stats:\n%+v\n%+v", s1, s2)
	}
}

func TestSpecRunLeaderless(t *testing.T) {
	spec := JobSpec{N: 4, Topology: "cycle", Leaderless: true, Inputs: []int64{0, 0, 1, 1}}
	res, err := spec.Run(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	out := NewResult(res)
	if out.MinSize != 2 || out.Frequencies["0"] != 1 || out.Frequencies["1"] != 1 {
		t.Fatalf("unexpected leaderless answer: %+v", out)
	}
}

func TestSpecRunCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := JobSpec{N: 8, Topology: "isolator"}.Run(ctx, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestSpecRunInvalid(t *testing.T) {
	if _, err := (JobSpec{N: -1}).Run(context.Background(), nil); err == nil {
		t.Fatal("invalid spec must not run")
	}
}
