package service

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"anondyn/internal/engine"
)

func TestSpecNormalizeDefaults(t *testing.T) {
	s := JobSpec{N: 4}
	s.Normalize()
	if s.Topology != "random" || s.Density != 0.3 || s.BlockT != 1 {
		t.Fatalf("unexpected defaults: %+v", s)
	}
	// Non-random topologies do not consume the density knob.
	s2 := JobSpec{N: 4, Topology: "path", Density: 0.7}
	s2.Normalize()
	if s2.Density != 0 {
		t.Fatalf("density should be cleared for path topology, got %g", s2.Density)
	}
}

func TestSpecHashCanonical(t *testing.T) {
	implicit := JobSpec{N: 5}
	explicit := JobSpec{N: 5, Topology: "random", Density: 0.3, BlockT: 1}
	if implicit.Hash() != explicit.Hash() {
		t.Error("defaulted and explicit specs must hash identically")
	}
	// Density is irrelevant off the random topology, so it must not split
	// the cache key.
	p1 := JobSpec{N: 5, Topology: "path", Density: 0.1}
	p2 := JobSpec{N: 5, Topology: "path", Density: 0.9}
	if p1.Hash() != p2.Hash() {
		t.Error("density must not affect the hash of non-random topologies")
	}
	// Anything that changes the simulation changes the hash.
	base := JobSpec{N: 5, Seed: 1}
	for name, other := range map[string]JobSpec{
		"n":         {N: 6, Seed: 1},
		"seed":      {N: 5, Seed: 2},
		"topo":      {N: 5, Seed: 1, Topology: "cycle"},
		"halt":      {N: 5, Seed: 1, Halt: true},
		"fine":      {N: 5, Seed: 1, Fine: true},
		"batch":     {N: 5, Seed: 1, Batch: 3},
		"inputs":    {N: 5, Seed: 1, Inputs: []int64{1, 2, 3, 4, 5}},
		"faults":    {N: 5, Seed: 1, Faults: "spike:8:0"},
		"faultseed": {N: 5, Seed: 1, Faults: "drop:1:0:0.5", FaultSeed: 2, DeadlineMS: 100},
	} {
		if base.Hash() == other.Hash() {
			t.Errorf("%s: distinct specs hash equal", name)
		}
	}
	// The deadline decides when a wedged run is abandoned, never what a
	// completed run returns, so it must not fragment the result cache.
	d1 := JobSpec{N: 5, Seed: 1, Faults: "spike:8:0"}
	d2 := JobSpec{N: 5, Seed: 1, Faults: "spike:8:0", DeadlineMS: 500}
	if d1.Hash() != d2.Hash() {
		t.Error("deadlineMS must not affect the hash")
	}
	// A fault seed without a fault plan is inert and is normalized away.
	f1 := JobSpec{N: 5, Seed: 1}
	f2 := JobSpec{N: 5, Seed: 1, FaultSeed: 42}
	if f1.Hash() != f2.Hash() {
		t.Error("faultSeed without a plan must not affect the hash")
	}
	// Scheduler and CompactVHT are performance knobs: identical results, so
	// they must not fragment the result cache.
	s1 := JobSpec{N: 5, Seed: 1}
	for name, same := range map[string]JobSpec{
		"parallel-scheduler":   {N: 5, Seed: 1, Scheduler: "parallel"},
		"concurrent-scheduler": {N: 5, Seed: 1, Scheduler: "concurrent"},
		"compact":              {N: 5, Seed: 1, CompactVHT: true},
	} {
		if s1.Hash() != same.Hash() {
			t.Errorf("%s: performance knob changed the hash", name)
		}
	}
}

func TestSpecSchedulerValues(t *testing.T) {
	for _, ok := range []string{"", "sequential", "parallel", "concurrent"} {
		if err := (JobSpec{N: 4, Scheduler: ok}).Validate(); err != nil {
			t.Errorf("scheduler %q rejected: %v", ok, err)
		}
	}
	err := (JobSpec{N: 4, Scheduler: "threads"}).Validate()
	if err == nil || !strings.Contains(err.Error(), "parallel") {
		t.Fatalf("bad scheduler error %v should list the valid values", err)
	}
}

// TestSpecCompactRun: a CompactVHT job over the service entry point returns
// the same answer as the plain spec and reports compaction in its stats.
func TestSpecCompactRun(t *testing.T) {
	plain := JobSpec{N: 12, Topology: "path"}
	compact := JobSpec{N: 12, Topology: "path", CompactVHT: true}
	base, err := plain.Run(context.Background(), nil)
	if err != nil {
		t.Fatalf("plain run: %v", err)
	}
	res, err := compact.Run(context.Background(), nil)
	if err != nil {
		t.Fatalf("compact run: %v", err)
	}
	if res.N != base.N || res.Stats.Rounds != base.Stats.Rounds {
		t.Fatalf("compaction changed the run: n %d→%d rounds %d→%d",
			base.N, res.N, base.Stats.Rounds, res.Stats.Rounds)
	}
	if res.Stats.CompactedLevels == 0 {
		t.Fatalf("no compaction on a deep path run: %+v", res.Stats)
	}
}

func TestSpecValidate(t *testing.T) {
	valid := func(s JobSpec) bool { return s.Validate() == nil }
	if !valid(JobSpec{N: 4}) {
		t.Fatal("minimal spec should validate")
	}
	tests := []struct {
		name string
		spec JobSpec
		want string
	}{
		{name: "zero-n", spec: JobSpec{}, want: "n must be positive"},
		{name: "negative-n", spec: JobSpec{N: -3}, want: "n must be positive"},
		{name: "bad-topology", spec: JobSpec{N: 4, Topology: "torus"}, want: "unknown topology"},
		{name: "bad-density", spec: JobSpec{N: 4, Density: 1.5}, want: "density"},
		{name: "negative-batch", spec: JobSpec{N: 4, Batch: -1}, want: "batch"},
		{name: "negative-bitlimit", spec: JobSpec{N: 4, BitLimit: -8}, want: "bitLimit"},
		{name: "negative-maxrounds", spec: JobSpec{N: 4, MaxRounds: -1}, want: "maxRounds"},
		{name: "inputs-mismatch", spec: JobSpec{N: 4, Inputs: []int64{1, 2}}, want: "input values"},
		{name: "leaderless-no-inputs", spec: JobSpec{N: 4, Leaderless: true}, want: "requires per-process inputs"},
		{name: "leaderless-halt", spec: JobSpec{N: 2, Leaderless: true, Inputs: []int64{1, 2}, Halt: true}, want: "halt"},
		{name: "leaderless-fine", spec: JobSpec{N: 2, Leaderless: true, Inputs: []int64{1, 2}, Fine: true}, want: "fine-grained"},
		{name: "leaderless-isolator", spec: JobSpec{N: 2, Leaderless: true, Inputs: []int64{1, 2}, Topology: "isolator"}, want: "isolator"},
		{name: "isolator-unionT", spec: JobSpec{N: 4, Topology: "isolator", BlockT: 2}, want: "isolator"},
		{name: "malformed-faults", spec: JobSpec{N: 4, Faults: "spike:1"}, want: "invalid fault plan"},
		{name: "crash-pid-beyond-n", spec: JobSpec{N: 4, Faults: "crash:7:1:0", DeadlineMS: 100}, want: "invalid fault plan"},
		{name: "out-of-model-no-deadline", spec: JobSpec{N: 4, Faults: "crash:0:3:0"}, want: "out-of-model"},
		{name: "negative-deadline", spec: JobSpec{N: 4, DeadlineMS: -1}, want: "deadlineMS"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.spec.Validate()
			if err == nil {
				t.Fatalf("expected error containing %q", tt.want)
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Fatalf("error %q does not mention %q", err, tt.want)
			}
		})
	}
}

func TestSpecRunDeterministic(t *testing.T) {
	spec := JobSpec{N: 6, Seed: 3}
	r1, err := spec.Run(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := spec.Run(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if r1.N != 6 || r2.N != 6 {
		t.Fatalf("counted %d and %d, want 6", r1.N, r2.N)
	}
	// Timing fields are measurements, not protocol state; blank them
	// before demanding bit-identical stats.
	s1, s2 := r1.Stats, r2.Stats
	s1.WallClock, s1.SolverTime = 0, 0
	s2.WallClock, s2.SolverTime = 0, 0
	if s1 != s2 {
		t.Fatalf("same spec produced different stats:\n%+v\n%+v", s1, s2)
	}
}

func TestSpecRunLeaderless(t *testing.T) {
	spec := JobSpec{N: 4, Topology: "cycle", Leaderless: true, Inputs: []int64{0, 0, 1, 1}}
	res, err := spec.Run(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	out := NewResult(res)
	if out.MinSize != 2 || out.Frequencies["0"] != 1 || out.Frequencies["1"] != 1 {
		t.Fatalf("unexpected leaderless answer: %+v", out)
	}
}

func TestSpecRunCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := JobSpec{N: 8, Topology: "isolator"}.Run(ctx, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestSpecRunInvalid(t *testing.T) {
	if _, err := (JobSpec{N: -1}).Run(context.Background(), nil); err == nil {
		t.Fatal("invalid spec must not run")
	}
}

func TestSpecRunInModelFaultsStillCount(t *testing.T) {
	clean := JobSpec{N: 6, Seed: 3}
	faulted := JobSpec{N: 6, Seed: 3, Faults: "cut:3:20,storm:1:0:2"}
	r1, err := clean.Run(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := faulted.Run(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if r1.N != 6 || r2.N != 6 {
		t.Fatalf("clean counted %d, faulted counted %d, want 6", r1.N, r2.N)
	}
	if clean.Hash() == faulted.Hash() {
		t.Fatal("a faulted spec must not share the clean spec's cache key")
	}
}

func TestSpecRunWatchdogStructuredFailure(t *testing.T) {
	// An out-of-model plan that wedges the run: every link dropped under
	// simultaneous halt, so the leader halts alone and the rest can never
	// learn the final round. The spec-level deadline must surface as a
	// structured engine watchdog error, not a hang.
	spec := JobSpec{
		N:         5,
		Topology:  "complete",
		Halt:      true,
		Faults:    "drop:1:0:1",
		FaultSeed: 1,

		DeadlineMS: 150,
		MaxRounds:  1 << 30,
	}
	start := time.Now()
	_, err := spec.Run(context.Background(), nil)
	if !errors.Is(err, engine.ErrWatchdog) {
		t.Fatalf("got %v, want ErrWatchdog", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("watchdog needed %v", elapsed)
	}
}
