package service

import (
	"fmt"
	"testing"
)

func res(n int) *Result { return &Result{N: n} }

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(3)
	for i := 1; i <= 3; i++ {
		c.Put(fmt.Sprintf("k%d", i), res(i))
	}
	if c.Len() != 3 {
		t.Fatalf("len=%d", c.Len())
	}
	// Touch k1 so k2 becomes the eviction victim.
	if _, ok := c.Get("k1"); !ok {
		t.Fatal("k1 missing")
	}
	c.Put("k4", res(4))
	if _, ok := c.Get("k2"); ok {
		t.Fatal("k2 should have been evicted (least recently used)")
	}
	for _, k := range []string{"k1", "k3", "k4"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s evicted unexpectedly", k)
		}
	}
}

func TestCacheUpdateExisting(t *testing.T) {
	c := NewCache(2)
	c.Put("k", res(1))
	c.Put("k", res(2))
	if c.Len() != 1 {
		t.Fatalf("len=%d after double put", c.Len())
	}
	if r, _ := c.Get("k"); r.N != 2 {
		t.Fatalf("stale value %d", r.N)
	}
}

func TestCacheDisabled(t *testing.T) {
	c := NewCache(0)
	c.Put("k", res(1))
	if _, ok := c.Get("k"); ok {
		t.Fatal("capacity 0 must disable caching")
	}
}
