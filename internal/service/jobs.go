package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"anondyn/internal/engine"
	"anondyn/internal/store"
)

// JobState is the lifecycle state of a job.
type JobState string

// Job lifecycle states. Queued and Running are transient; Done, Failed and
// Cancelled are terminal.
const (
	JobQueued    JobState = "queued"
	JobRunning   JobState = "running"
	JobDone      JobState = "done"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCancelled
}

// Event is one NDJSON line of a job's event stream: a state transition or
// one round of simulation progress.
type Event struct {
	// Type is "state" for lifecycle transitions and "round" for progress.
	Type string `json:"type"`
	// State accompanies "state" events.
	State JobState `json:"state,omitempty"`
	// Round and Messages accompany "round" events: the round number just
	// completed and how many messages were sent in it.
	Round    int `json:"round,omitempty"`
	Messages int `json:"messages,omitempty"`
	// Error accompanies the terminal "state" event of a failed job.
	Error string `json:"error,omitempty"`
}

// Job is one submitted simulation.
type Job struct {
	// ID is the manager-assigned identifier.
	ID string
	// Spec is the normalized job specification.
	Spec JobSpec
	// Hash is Spec.Hash(), the result-cache key.
	Hash string
	// CacheHit records that the job was served from the result cache
	// without simulating.
	CacheHit bool

	rounds atomic.Int64 // rounds completed so far (progress gauge)

	mu     sync.Mutex
	state  JobState
	err    string
	result *Result
	cancel context.CancelFunc // set while running
	done   chan struct{}      // closed on terminal transition
	subs   map[int]chan Event
	subSeq int
}

// JobStatus is the JSON view of a job served by the HTTP API.
type JobStatus struct {
	ID       string   `json:"id"`
	State    JobState `json:"state"`
	Spec     JobSpec  `json:"spec"`
	Hash     string   `json:"hash"`
	CacheHit bool     `json:"cacheHit,omitempty"`
	Rounds   int64    `json:"rounds"`
	Error    string   `json:"error,omitempty"`
	Result   *Result  `json:"result,omitempty"`
}

// Status captures the job's current state.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobStatus{
		ID:       j.ID,
		State:    j.state,
		Spec:     j.Spec,
		Hash:     j.Hash,
		CacheHit: j.CacheHit,
		Rounds:   j.rounds.Load(),
		Error:    j.err,
		Result:   j.result,
	}
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Subscribe registers an event listener. The returned channel receives
// lifecycle and progress events and is closed when the job terminates (or
// immediately if it already has); progress events are dropped rather than
// delivered late when the subscriber falls behind. The returned func
// unsubscribes early.
func (j *Job) Subscribe() (<-chan Event, func()) {
	ch := make(chan Event, 256)
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		close(ch)
		return ch, func() {}
	}
	id := j.subSeq
	j.subSeq++
	j.subs[id] = ch
	j.mu.Unlock()
	return ch, func() {
		j.mu.Lock()
		defer j.mu.Unlock()
		if _, ok := j.subs[id]; ok {
			delete(j.subs, id)
			close(ch)
		}
	}
}

// publish fans an event out to subscribers, dropping it for any subscriber
// whose buffer is full. Callers hold j.mu.
func (j *Job) publishLocked(ev Event) {
	for _, ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// setState transitions the job to a non-terminal state.
func (j *Job) setState(s JobState) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = s
	j.publishLocked(Event{Type: "state", State: s})
}

// finish transitions the job to a terminal state, records the outcome, and
// releases waiters and subscribers. It is a no-op if the job already
// terminated (e.g. cancelled while the worker was finishing).
func (j *Job) finish(s JobState, r *Result, errMsg string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.finishLocked(s, r, errMsg)
}

func (j *Job) finishLocked(s JobState, r *Result, errMsg string) bool {
	if j.state.Terminal() {
		return false
	}
	j.state = s
	j.result = r
	j.err = errMsg
	j.cancel = nil
	j.publishLocked(Event{Type: "state", State: s, Error: errMsg})
	for id, ch := range j.subs {
		delete(j.subs, id)
		close(ch)
	}
	close(j.done)
	return true
}

// traceHook adapts the engine's trace callback into progress events.
func (j *Job) traceHook() func(round int, sent []engine.Message) {
	return func(round int, sent []engine.Message) {
		j.rounds.Store(int64(round))
		j.mu.Lock()
		if len(j.subs) > 0 {
			j.publishLocked(Event{Type: "round", Round: round, Messages: len(sent)})
		}
		j.mu.Unlock()
	}
}

// Manager errors.
var (
	// ErrShuttingDown rejects submissions during graceful shutdown.
	ErrShuttingDown = errors.New("service: shutting down")
	// ErrQueueFull rejects submissions when the job queue is saturated.
	ErrQueueFull = errors.New("service: job queue full")
	// ErrNotFound reports an unknown job ID.
	ErrNotFound = errors.New("service: no such job")
	// ErrFinished reports a cancel request for an already-terminal job.
	ErrFinished = errors.New("service: job already finished")
)

// Manager owns the job table, the result cache, and the worker pool. It is
// safe for concurrent use.
type Manager struct {
	Metrics *Metrics

	cache      *Cache
	store      *store.Store // second cache tier; nil without persistence
	queue      chan *Job
	baseCtx    context.Context
	baseCancel context.CancelFunc
	workers    sync.WaitGroup

	mu     sync.Mutex
	jobs   map[string]*Job
	seq    int
	closed bool
}

// NewManager starts a manager with the given worker-pool size (min 1),
// result-cache capacity, and queue capacity (min 1).
func NewManager(workers, cacheCap, queueCap int) *Manager {
	if workers < 1 {
		workers = 1
	}
	if queueCap < 1 {
		queueCap = 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		Metrics:    &Metrics{},
		cache:      NewCache(cacheCap),
		queue:      make(chan *Job, queueCap),
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       make(map[string]*Job),
	}
	for i := 0; i < workers; i++ {
		m.workers.Add(1)
		go m.worker()
	}
	return m
}

// AttachStore adds a persistent content-addressed result store as the
// second cache tier: Submit consults it after an LRU miss (promoting hits
// back into the LRU) and completed results are written through to it, so
// cache hits survive restarts and deduplicate across a fleet sharing the
// same content hashes. Attach before the first Submit; the store is owned
// by the caller (the Manager never closes it).
func (m *Manager) AttachStore(st *store.Store) { m.store = st }

// storeLookup consults the persistent store for a previously computed
// result, tolerating (and counting) unreadable records.
func (m *Manager) storeLookup(hash string) (*Result, bool) {
	if m.store == nil {
		return nil, false
	}
	b, ok := m.store.Get(hash)
	if !ok {
		return nil, false
	}
	var r Result
	if err := json.Unmarshal(b, &r); err != nil {
		m.Metrics.StoreErrors.Add(1)
		return nil, false
	}
	return &r, true
}

// storeWrite persists a completed result, tolerating (and counting)
// append failures — the job already succeeded; persistence is best-effort.
func (m *Manager) storeWrite(hash string, r *Result) {
	if m.store == nil {
		return
	}
	b, err := json.Marshal(r)
	if err == nil {
		err = m.store.Put(hash, b)
	}
	if err != nil {
		m.Metrics.StoreErrors.Add(1)
	}
}

// MetricsSnapshot extends Metrics.Snapshot with the cache-tier gauges:
// LRU occupancy and evictions, and the persistent store's stats when one
// is attached. This is the payload of GET /v1/metrics.
func (m *Manager) MetricsSnapshot() MetricsSnapshot {
	snap := m.Metrics.Snapshot()
	snap.CacheEntries = m.cache.Len()
	snap.CacheEvictions = m.cache.Evictions()
	if m.store != nil {
		st := m.store.Stats()
		snap.Store = &st
	}
	return snap
}

// Submit validates the spec and either serves it from the result cache
// (the returned job is already Done with CacheHit set) or enqueues it for
// a worker. Invalid specs, a saturated queue, and a shutting-down manager
// are reported as errors.
func (m *Manager) Submit(spec JobSpec) (*Job, error) {
	spec.Normalize()
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("invalid job spec: %w", err)
	}
	hash := spec.Hash()

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrShuttingDown
	}
	m.seq++
	job := &Job{
		ID:    fmt.Sprintf("job-%06d", m.seq),
		Spec:  spec,
		Hash:  hash,
		state: JobQueued,
		done:  make(chan struct{}),
		subs:  make(map[int]chan Event),
	}
	m.Metrics.JobsAccepted.Add(1)

	r, hit := m.cache.Get(hash)
	if !hit {
		// Second tier: the persistent store (restart survival + fleet
		// dedup). Hits are promoted back into the LRU.
		if r, hit = m.storeLookup(hash); hit {
			m.Metrics.StoreHits.Add(1)
			m.cache.Put(hash, r)
		}
	}
	if hit {
		m.Metrics.CacheHits.Add(1)
		m.Metrics.JobsCompleted.Add(1)
		job.CacheHit = true
		job.rounds.Store(int64(r.Stats.Rounds))
		job.finish(JobDone, r, "")
		m.jobs[job.ID] = job
		return job, nil
	}
	m.Metrics.CacheMisses.Add(1)

	select {
	case m.queue <- job:
		m.Metrics.QueueDepth.Add(1)
	default:
		m.seq-- // the job never existed
		return nil, ErrQueueFull
	}
	m.jobs[job.ID] = job
	return job, nil
}

// Get looks a job up by ID.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Jobs returns a status snapshot of every known job.
func (m *Manager) Jobs() []JobStatus {
	m.mu.Lock()
	jobs := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		jobs = append(jobs, j)
	}
	m.mu.Unlock()
	out := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.Status())
	}
	return out
}

// Cancel stops a job: a queued job terminates immediately, a running job
// has its context cancelled and terminates as soon as the engine unwinds
// (promptly — the engine checks between rounds). Cancelling a terminal job
// returns ErrFinished.
func (m *Manager) Cancel(id string) error {
	job, ok := m.Get(id)
	if !ok {
		return ErrNotFound
	}
	job.mu.Lock()
	switch {
	case job.state.Terminal():
		job.mu.Unlock()
		return ErrFinished
	case job.state == JobRunning && job.cancel != nil:
		cancel := job.cancel
		job.mu.Unlock()
		cancel()
		// The worker observes context.Canceled and finishes the job; wait
		// for that so the API's DELETE is synchronous with the state flip.
		<-job.Done()
		return nil
	default:
		// Still queued: terminate in place, holding the lock so the worker
		// cannot concurrently flip the job to running.
		cancelled := job.finishLocked(JobCancelled, nil, "cancelled before start")
		job.mu.Unlock()
		if cancelled {
			m.Metrics.JobsCancelled.Add(1)
		}
		return nil
	}
}

// worker drains the queue until Shutdown closes it.
func (m *Manager) worker() {
	defer m.workers.Done()
	for job := range m.queue {
		m.Metrics.QueueDepth.Add(-1)
		m.runJob(job)
	}
}

// runJob executes one job to a terminal state.
func (m *Manager) runJob(job *Job) {
	ctx, cancel := context.WithCancel(m.baseCtx)
	defer cancel()

	job.mu.Lock()
	if job.state.Terminal() { // cancelled while queued
		job.mu.Unlock()
		return
	}
	job.state = JobRunning
	job.cancel = cancel
	job.publishLocked(Event{Type: "state", State: JobRunning})
	job.mu.Unlock()

	m.Metrics.WorkersBusy.Add(1)
	res, err := job.Spec.Run(ctx, job.traceHook())
	m.Metrics.WorkersBusy.Add(-1)
	m.Metrics.RoundsSimulated.Add(job.rounds.Load())

	switch {
	case err == nil:
		m.Metrics.SolverCRTRecons.Add(int64(res.Stats.SolverCRTRecons))
		m.Metrics.SolverEvictions.Add(int64(res.Stats.SolverEvictions))
		m.Metrics.SolverWitnessFalls.Add(int64(res.Stats.SolverWitnessFalls))
		m.Metrics.VHTCompactedLevels.Add(int64(res.Stats.CompactedLevels))
		m.Metrics.VHTCompactedNodes.Add(int64(res.Stats.CompactedNodes))
		m.Metrics.observePeak(int64(res.Stats.PeakResidentNodes))
		r := NewResult(res)
		m.cache.Put(job.Hash, r)
		m.storeWrite(job.Hash, r)
		if job.finish(JobDone, r, "") {
			m.Metrics.JobsCompleted.Add(1)
		}
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		if job.finish(JobCancelled, nil, "cancelled") {
			m.Metrics.JobsCancelled.Add(1)
		}
	case errors.Is(err, engine.ErrWatchdog):
		// The job's own deadline fired: the spec's fault plan wedged the
		// run. This is a structured failure (the spec promised an answer
		// within DeadlineMS and the protocol could not deliver one), not a
		// cancellation — the error text carries the rounds/limit detail.
		if job.finish(JobFailed, nil, err.Error()) {
			m.Metrics.JobsFailed.Add(1)
			m.Metrics.JobsDeadlined.Add(1)
		}
	default:
		if job.finish(JobFailed, nil, err.Error()) {
			m.Metrics.JobsFailed.Add(1)
		}
	}
}

// Shutdown drains the manager gracefully: no new submissions are accepted,
// queued jobs still run, and Shutdown returns once every worker is idle.
// If ctx expires first, in-flight simulations are force-cancelled (they
// terminate as JobCancelled) and Shutdown waits for the workers to unwind.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	close(m.queue)
	m.mu.Unlock()

	idle := make(chan struct{})
	go func() {
		m.workers.Wait()
		close(idle)
	}()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		m.baseCancel() // force-cancel in-flight simulations
		<-idle
		return ctx.Err()
	}
}
