package service

import (
	"sync/atomic"

	"anondyn/internal/store"
)

// Metrics aggregates the daemon's operational counters. All fields are
// updated atomically and read without locks; a Snapshot is therefore only
// approximately consistent across counters, which is fine for monitoring.
type Metrics struct {
	// JobsAccepted counts specs admitted by POST /v1/jobs (cache hits
	// included).
	JobsAccepted atomic.Int64
	// JobsCompleted counts jobs that finished with a result (cache hits
	// included).
	JobsCompleted atomic.Int64
	// JobsCancelled counts jobs cancelled before completing.
	JobsCancelled atomic.Int64
	// JobsFailed counts jobs whose simulation returned an error.
	JobsFailed atomic.Int64
	// JobsDeadlined counts the subset of failed jobs ended by the engine
	// watchdog (a wedged run under out-of-model faults hit its deadline).
	JobsDeadlined atomic.Int64
	// CacheHits and CacheMisses count result-cache lookups at submit time.
	// A hit means either tier answered (memory LRU or persistent store);
	// CacheMisses counts specs that had to simulate.
	CacheHits   atomic.Int64
	CacheMisses atomic.Int64
	// StoreHits counts the subset of cache hits served by the persistent
	// store after missing the in-memory LRU (i.e. results that survived a
	// restart or were deduplicated across the fleet).
	StoreHits atomic.Int64
	// StoreErrors counts persistent-store operations that failed (an
	// unreadable record, a failed append). The store degrades to a miss —
	// the job simulates — so these are diagnostics, not failures.
	StoreErrors atomic.Int64
	// RoundsSimulated totals the communication rounds actually executed
	// (cache hits add nothing — that is the point of the cache).
	RoundsSimulated atomic.Int64
	// SolverCRTRecons, SolverEvictions and SolverWitnessFalls total the
	// multi-modular counting solver's work across completed jobs: CRT ray
	// reconstructions, unlucky-prime evictions, and fallbacks to the
	// big.Int exactness witness. Witness falls staying at zero is the
	// operational signal that the modular backend is carrying every run.
	SolverCRTRecons    atomic.Int64
	SolverEvictions    atomic.Int64
	SolverWitnessFalls atomic.Int64
	// VHTCompactedLevels and VHTCompactedNodes total the history-level
	// compaction work across completed jobs (CompactVHT specs only);
	// VHTPeakResidentNodes is the largest resident history tree any single
	// completed job ever held — the memory high-water mark of the fleet.
	VHTCompactedLevels   atomic.Int64
	VHTCompactedNodes    atomic.Int64
	VHTPeakResidentNodes atomic.Int64
	// WorkersBusy is the number of worker goroutines currently running a
	// simulation.
	WorkersBusy atomic.Int64
	// QueueDepth is the number of submitted jobs waiting for a worker.
	QueueDepth atomic.Int64
}

// MetricsSnapshot is the JSON form served at GET /v1/metrics.
type MetricsSnapshot struct {
	JobsAccepted       int64 `json:"jobsAccepted"`
	JobsCompleted      int64 `json:"jobsCompleted"`
	JobsCancelled      int64 `json:"jobsCancelled"`
	JobsFailed         int64 `json:"jobsFailed"`
	JobsDeadlined      int64 `json:"jobsDeadlined"`
	CacheHits          int64 `json:"cacheHits"`
	CacheMisses        int64 `json:"cacheMisses"`
	StoreHits          int64 `json:"storeHits"`
	StoreErrors        int64 `json:"storeErrors"`
	RoundsSimulated    int64 `json:"roundsSimulated"`
	WorkersBusy        int64 `json:"workersBusy"`
	QueueDepth         int64 `json:"queueDepth"`
	SolverCRTRecons    int64 `json:"solverCRTRecons"`
	SolverEvictions    int64 `json:"solverEvictions"`
	SolverWitnessFalls int64 `json:"solverWitnessFalls"`
	// History-level compaction counters (see Metrics).
	VHTCompactedLevels   int64 `json:"vhtCompactedLevels"`
	VHTCompactedNodes    int64 `json:"vhtCompactedNodes"`
	VHTPeakResidentNodes int64 `json:"vhtPeakResidentNodes"`
	// CacheEntries and CacheEvictions describe the in-memory LRU tier
	// (filled by Manager.MetricsSnapshot).
	CacheEntries   int   `json:"cacheEntries"`
	CacheEvictions int64 `json:"cacheEvictions"`
	// Store carries the persistent result-store counters, nil when the
	// daemon runs without one.
	Store *store.Stats `json:"store,omitempty"`
}

// Snapshot captures the current counter values.
func (m *Metrics) Snapshot() MetricsSnapshot {
	return MetricsSnapshot{
		JobsAccepted:       m.JobsAccepted.Load(),
		JobsCompleted:      m.JobsCompleted.Load(),
		JobsCancelled:      m.JobsCancelled.Load(),
		JobsFailed:         m.JobsFailed.Load(),
		JobsDeadlined:      m.JobsDeadlined.Load(),
		CacheHits:          m.CacheHits.Load(),
		CacheMisses:        m.CacheMisses.Load(),
		StoreHits:          m.StoreHits.Load(),
		StoreErrors:        m.StoreErrors.Load(),
		RoundsSimulated:    m.RoundsSimulated.Load(),
		WorkersBusy:        m.WorkersBusy.Load(),
		QueueDepth:         m.QueueDepth.Load(),
		SolverCRTRecons:    m.SolverCRTRecons.Load(),
		SolverEvictions:    m.SolverEvictions.Load(),
		SolverWitnessFalls: m.SolverWitnessFalls.Load(),

		VHTCompactedLevels:   m.VHTCompactedLevels.Load(),
		VHTCompactedNodes:    m.VHTCompactedNodes.Load(),
		VHTPeakResidentNodes: m.VHTPeakResidentNodes.Load(),
	}
}

// observePeak raises VHTPeakResidentNodes to v if it exceeds the current
// maximum (a lock-free running max).
func (m *Metrics) observePeak(v int64) {
	for {
		cur := m.VHTPeakResidentNodes.Load()
		if v <= cur || m.VHTPeakResidentNodes.CompareAndSwap(cur, v) {
			return
		}
	}
}
