package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"time"
)

// Server is the HTTP surface of the daemon.
//
// Routes:
//
//	POST   /v1/jobs             submit a JobSpec; 200 with the job status
//	                            (a cache hit returns an already-done job)
//	GET    /v1/jobs             list all jobs
//	GET    /v1/jobs/{id}        one job's status (result included when done)
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//	GET    /v1/jobs/{id}/events stream lifecycle + per-round progress as NDJSON
//	GET    /v1/metrics          operational counters
//	GET    /healthz             liveness probe
type Server struct {
	mgr  *Manager
	mux  *http.ServeMux
	http *http.Server
	ln   net.Listener
}

// ServerConfig parameterizes NewServer. Zero values select sane defaults.
type ServerConfig struct {
	// Addr is the listen address (default "127.0.0.1:0", an ephemeral
	// localhost port — read Server.Addr() for the bound address).
	Addr string
	// Workers is the worker-pool size (default 4).
	Workers int
	// CacheSize is the result-cache capacity (default 256; negative
	// disables caching).
	CacheSize int
	// QueueSize is the job-queue capacity (default 1024).
	QueueSize int
}

// NewServer binds the listen address and prepares the daemon, but does not
// serve yet; call Serve (blocking) or Start (background).
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.Workers == 0 {
		cfg.Workers = 4
	}
	if cfg.CacheSize == 0 {
		cfg.CacheSize = 256
	}
	if cfg.QueueSize == 0 {
		cfg.QueueSize = 1024
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("service: listen %s: %w", cfg.Addr, err)
	}
	s := &Server{
		mgr: NewManager(cfg.Workers, cfg.CacheSize, cfg.QueueSize),
		mux: http.NewServeMux(),
	}
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	s.http = &http.Server{Handler: s.mux}
	s.ln = ln
	return s, nil
}

// Addr returns the bound listen address, e.g. "127.0.0.1:43627".
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Manager exposes the job manager (for embedding and tests).
func (s *Server) Manager() *Manager { return s.mgr }

// Serve blocks serving HTTP until Shutdown is called.
func (s *Server) Serve() error {
	err := s.http.Serve(s.ln)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Start serves in a background goroutine and returns immediately.
func (s *Server) Start() {
	go func() { _ = s.Serve() }()
}

// Shutdown stops the HTTP listener and then drains the job manager: queued
// jobs still run to completion unless ctx expires first, in which case
// in-flight simulations are force-cancelled.
func (s *Server) Shutdown(ctx context.Context) error {
	httpErr := s.http.Shutdown(ctx)
	mgrErr := s.mgr.Shutdown(ctx)
	if httpErr != nil {
		return httpErr
	}
	return mgrErr
}

// writeJSON writes v with the given status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// apiError is the JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "decode job spec: %v", err)
		return
	}
	job, err := s.mgr.Submit(spec)
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, job.Status())
	case errors.Is(err, ErrShuttingDown):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
	case errors.Is(err, ErrQueueFull):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
	default:
		writeError(w, http.StatusBadRequest, "%v", err)
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.mgr.Jobs())
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	job, ok := s.mgr.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, job.Status())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	err := s.mgr.Cancel(r.PathValue("id"))
	switch {
	case err == nil:
		job, _ := s.mgr.Get(r.PathValue("id"))
		writeJSON(w, http.StatusOK, job.Status())
	case errors.Is(err, ErrNotFound):
		writeError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
	case errors.Is(err, ErrFinished):
		writeError(w, http.StatusConflict, "%v", err)
	default:
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

// handleEvents streams the job's event feed as NDJSON: one JSON object per
// line, flushed per event, ending with a terminal "state" line (followed by
// the job status on a "status" line) once the job finishes.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	job, ok := s.mgr.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	flusher, canFlush := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)

	enc := json.NewEncoder(w)
	events, unsubscribe := job.Subscribe()
	defer unsubscribe()

	// Lead with the current state so a late subscriber still gets a
	// well-formed stream.
	st := job.Status()
	_ = enc.Encode(Event{Type: "state", State: st.State, Error: st.Error})
	if canFlush {
		flusher.Flush()
	}

	for {
		select {
		case ev, open := <-events:
			if !open {
				// Terminal: append the final status as the last line.
				final := job.Status()
				_ = enc.Encode(struct {
					Type   string    `json:"type"`
					Status JobStatus `json:"status"`
				}{Type: "status", Status: final})
				if canFlush {
					flusher.Flush()
				}
				return
			}
			_ = enc.Encode(ev)
			if canFlush {
				flusher.Flush()
			}
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.mgr.Metrics.Snapshot())
}

// WaitTerminal blocks until the job reaches a terminal state or the
// timeout elapses, returning the final status. It is a convenience for
// clients (and tests) polling a submitted job.
func WaitTerminal(job *Job, timeout time.Duration) (JobStatus, error) {
	select {
	case <-job.Done():
		return job.Status(), nil
	case <-time.After(timeout):
		return job.Status(), fmt.Errorf("service: job %s not terminal after %v", job.ID, timeout)
	}
}
