package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"time"

	"anondyn/internal/store"
)

// Server is the HTTP surface of the daemon.
//
// Routes:
//
//	POST   /v1/jobs             submit a JobSpec; 200 with the job status
//	                            (a cache hit returns an already-done job)
//	GET    /v1/jobs             list all jobs
//	GET    /v1/jobs/{id}        one job's status (result included when done)
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//	GET    /v1/jobs/{id}/events stream lifecycle + per-round progress as NDJSON
//	GET    /v1/metrics          operational counters (cache tiers included)
//	GET    /v1/healthz          liveness probe (JSON; coordinator probe target)
//	GET    /healthz             liveness probe (plain text, kept for scripts)
type Server struct {
	mgr   *Manager
	mux   *http.ServeMux
	http  *http.Server
	ln    net.Listener
	store *store.Store // owned when opened from StoreDir; nil otherwise
	proto string       // DefaultProtocol, already normalized
}

// ServerConfig parameterizes NewServer. Zero values select sane defaults.
type ServerConfig struct {
	// Addr is the listen address (default "127.0.0.1:0", an ephemeral
	// localhost port — read Server.Addr() for the bound address).
	Addr string
	// Workers is the worker-pool size (default 4).
	Workers int
	// CacheSize is the result-cache capacity (default 256; negative
	// disables caching).
	CacheSize int
	// QueueSize is the job-queue capacity (default 1024).
	QueueSize int
	// StoreDir, when non-empty, opens (or creates) a persistent
	// content-addressed result store in that directory and attaches it
	// under the LRU, so cache hits survive restarts. The server owns the
	// store and closes it on Shutdown.
	StoreDir string
	// DefaultProtocol, when non-empty, is applied to submitted specs that
	// do not name a protocol themselves, before validation and hashing —
	// a fleet can be pinned to the linear backend without every client
	// spelling it. "congested" (the spec default) and "linear" are valid.
	DefaultProtocol string
}

// NewServer binds the listen address and prepares the daemon, but does not
// serve yet; call Serve (blocking) or Start (background).
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.Workers == 0 {
		cfg.Workers = 4
	}
	if cfg.CacheSize == 0 {
		cfg.CacheSize = 256
	}
	if cfg.QueueSize == 0 {
		cfg.QueueSize = 1024
	}
	switch cfg.DefaultProtocol {
	case "", "congested", "linear":
	default:
		return nil, fmt.Errorf("service: unknown default protocol %q (have congested, linear)", cfg.DefaultProtocol)
	}
	var st *store.Store
	if cfg.StoreDir != "" {
		var err error
		st, err = store.Open(cfg.StoreDir, store.Options{})
		if err != nil {
			return nil, fmt.Errorf("service: open result store: %w", err)
		}
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		if st != nil {
			st.Close()
		}
		return nil, fmt.Errorf("service: listen %s: %w", cfg.Addr, err)
	}
	s := &Server{
		mgr:   NewManager(cfg.Workers, cfg.CacheSize, cfg.QueueSize),
		mux:   http.NewServeMux(),
		store: st,
		proto: cfg.DefaultProtocol,
	}
	if st != nil {
		s.mgr.AttachStore(st)
	}
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	s.http = &http.Server{Handler: s.mux}
	s.ln = ln
	return s, nil
}

// Addr returns the bound listen address, e.g. "127.0.0.1:43627".
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Manager exposes the job manager (for embedding and tests).
func (s *Server) Manager() *Manager { return s.mgr }

// Serve blocks serving HTTP until Shutdown is called.
func (s *Server) Serve() error {
	err := s.http.Serve(s.ln)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Start serves in a background goroutine and returns immediately.
func (s *Server) Start() {
	go func() { _ = s.Serve() }()
}

// Shutdown stops the HTTP listener and then drains the job manager: queued
// jobs still run to completion unless ctx expires first, in which case
// in-flight simulations are force-cancelled.
func (s *Server) Shutdown(ctx context.Context) error {
	httpErr := s.http.Shutdown(ctx)
	mgrErr := s.mgr.Shutdown(ctx)
	if s.store != nil {
		// After the manager drained, no worker can write the store anymore.
		_ = s.store.Close()
	}
	if httpErr != nil {
		return httpErr
	}
	return mgrErr
}

// Close hard-stops the server: the listener and every active connection
// close immediately and in-flight simulations are force-cancelled (they
// terminate as JobCancelled). This is the abrupt counterpart of Shutdown —
// the fleet soak test uses it to kill a backend mid-sweep. The persistent
// store needs no flushing (appends are already on disk), so a Closed
// backend restarted over the same StoreDir serves its completed results
// from the store.
func (s *Server) Close() error {
	httpErr := s.http.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already expired: force-cancel in-flight jobs immediately
	_ = s.mgr.Shutdown(ctx)
	if s.store != nil {
		_ = s.store.Close()
	}
	return httpErr
}

// writeJSON writes v with the given status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// apiError is the JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "decode job spec: %v", err)
		return
	}
	if spec.Protocol == "" {
		spec.Protocol = s.proto
	}
	job, err := s.mgr.Submit(spec)
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, job.Status())
	case errors.Is(err, ErrShuttingDown):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
	case errors.Is(err, ErrQueueFull):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
	default:
		writeError(w, http.StatusBadRequest, "%v", err)
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.mgr.Jobs())
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	job, ok := s.mgr.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, job.Status())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	err := s.mgr.Cancel(r.PathValue("id"))
	switch {
	case err == nil:
		job, _ := s.mgr.Get(r.PathValue("id"))
		writeJSON(w, http.StatusOK, job.Status())
	case errors.Is(err, ErrNotFound):
		writeError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
	case errors.Is(err, ErrFinished):
		writeError(w, http.StatusConflict, "%v", err)
	default:
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

// handleEvents streams the job's event feed as NDJSON: one JSON object per
// line, flushed per event, ending with a terminal "state" line (followed by
// the job status on a "status" line) once the job finishes.
//
// The stream must terminate promptly when the client goes away, through
// either of two signals: the request context (cancelled by net/http when
// the connection drops — the primary signal) or a write/flush error (the
// backstop when cancellation is delayed, e.g. behind a buffering proxy
// that keeps the upstream connection open). Ignoring write errors here
// would pin a handler goroutine — and its job subscription — for the
// remaining lifetime of an arbitrarily long job per disconnected client;
// the regression test is TestEventStreamClientDisconnect.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	job, ok := s.mgr.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)

	enc := json.NewEncoder(w)
	rc := http.NewResponseController(w)
	writeLine := func(v any) bool {
		if err := enc.Encode(v); err != nil {
			return false
		}
		// ErrNotSupported (no flusher in the chain) is fine: the write
		// above still succeeded and will reach the client buffered.
		if err := rc.Flush(); err != nil && !errors.Is(err, http.ErrNotSupported) {
			return false
		}
		return true
	}
	events, unsubscribe := job.Subscribe()
	defer unsubscribe()

	// Lead with the current state so a late subscriber still gets a
	// well-formed stream.
	st := job.Status()
	if !writeLine(Event{Type: "state", State: st.State, Error: st.Error}) {
		return
	}

	for {
		select {
		case ev, open := <-events:
			if !open {
				// Terminal: append the final status as the last line.
				_ = writeLine(struct {
					Type   string    `json:"type"`
					Status JobStatus `json:"status"`
				}{Type: "status", Status: job.Status()})
				return
			}
			if !writeLine(ev) {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.mgr.MetricsSnapshot())
}

// healthzStatus is the JSON body of GET /v1/healthz: enough for a
// coordinator's failover probe to judge liveness and load at a glance.
type healthzStatus struct {
	Status      string `json:"status"`
	WorkersBusy int64  `json:"workersBusy"`
	QueueDepth  int64  `json:"queueDepth"`
}

// handleHealthz is the documented liveness probe for coordinators and
// load balancers: cheap (two atomic loads), allocation-light, and always
// 200 while the listener is up — a daemon that cannot answer it is down.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, healthzStatus{
		Status:      "ok",
		WorkersBusy: s.mgr.Metrics.WorkersBusy.Load(),
		QueueDepth:  s.mgr.Metrics.QueueDepth.Load(),
	})
}

// WaitTerminal blocks until the job reaches a terminal state or the
// timeout elapses, returning the final status. It is a convenience for
// clients (and tests) polling a submitted job.
func WaitTerminal(job *Job, timeout time.Duration) (JobStatus, error) {
	select {
	case <-job.Done():
		return job.Status(), nil
	case <-time.After(timeout):
		return job.Status(), fmt.Errorf("service: job %s not terminal after %v", job.ID, timeout)
	}
}
