package historytree

import (
	"testing"

	"anondyn/internal/dynnet"
)

// Allocation-regression gates for the arena/interning rewrite. The bounds
// are deliberately loose (≈2× the measured steady state) so they catch a
// return to per-process-per-round map and string churn — the seed spent n
// observation maps plus a serialized signature per process per round, two
// orders of magnitude above these limits — without flaking on allocator
// noise or Go-version drift.

// buildWarm constructs a tree `warmRounds` deep with a shared refiner, so a
// subsequent refine call measures the steady state, not first-growth.
func buildWarm(t *testing.T, n, warmRounds int) (*Tree, *refiner, *dynnet.Multigraph, []*Node, int, map[int]int) {
	t.Helper()
	s := dynnet.NewRandomConnected(n, 0.4, 5)
	tree := New()
	nextID := 0
	card := map[int]int{RootID: n}
	parent, err := tree.AddChild(nextID, tree.Root(), Input{Leader: true})
	if err != nil {
		t.Fatal(err)
	}
	nextID++
	card[parent.ID] = n
	cur := make([]*Node, n)
	for p := range cur {
		cur[p] = parent
	}
	ref := newRefiner(n)
	for round := 1; round <= warmRounds; round++ {
		next, err := ref.refine(tree, s.Graph(round), cur, &nextID, card)
		if err != nil {
			t.Fatal(err)
		}
		cur = next
	}
	return tree, ref, s.Graph(warmRounds + 1), cur, nextID, card
}

func TestRefineRoundAllocs(t *testing.T) {
	tree, ref, g, cur, nextID, card := buildWarm(t, 8, 16)
	allocs := testing.AllocsPerRun(64, func() {
		next, err := ref.refine(tree, g, cur, &nextID, card)
		if err != nil {
			t.Fatal(err)
		}
		cur = next
	})
	// Steady state: the returned level slice, plus amortized arena-chunk
	// and table-bucket growth. The seed's refine allocated n maps and n
	// signature strings per call (≥ 3n+1 ≈ 25 here) before any grouping.
	if allocs > 8 {
		t.Fatalf("refine allocated %.1f objects per round, want ≤ 8", allocs)
	}
}

// TestBatchedRefineRoundAllocs gates the batched SoA pass at the same bound
// as the witness (≤ 8), though its measured steady state is 1 object per
// round — the returned level slice; the arena, spans, interning table, and
// group histogram are all flat reused slices.
func TestBatchedRefineRoundAllocs(t *testing.T) {
	n := 8
	s := dynnet.NewRandomConnected(n, 0.4, 5)
	tree := New()
	nextID := 0
	card := map[int]int{RootID: n}
	parent, err := tree.AddChild(nextID, tree.Root(), Input{Leader: true})
	if err != nil {
		t.Fatal(err)
	}
	nextID++
	card[parent.ID] = n
	cur := make([]*Node, n)
	for p := range cur {
		cur[p] = parent
	}
	br := newBatchRefiner(n)
	for round := 1; round <= 16; round++ {
		next, err := br.refine(tree, s.Graph(round), cur, &nextID, card)
		if err != nil {
			t.Fatal(err)
		}
		cur = next
	}
	g := s.Graph(17)
	allocs := testing.AllocsPerRun(64, func() {
		next, err := br.refine(tree, g, cur, &nextID, card)
		if err != nil {
			t.Fatal(err)
		}
		cur = next
	})
	if allocs > 8 {
		t.Fatalf("batched refine allocated %.1f objects per round, want ≤ 8", allocs)
	}
}

func TestCanonicalFormAllocs(t *testing.T) {
	s := dynnet.NewRandomConnected(8, 0.4, 5)
	inputs := make([]Input, 8)
	inputs[0].Leader = true
	run, err := Build(s, inputs, 12)
	if err != nil {
		t.Fatal(err)
	}
	form := CanonicalForm(run.Tree)
	allocs := testing.AllocsPerRun(32, func() {
		if got := CanonicalForm(run.Tree); got != form {
			t.Fatalf("unstable canonical form")
		}
	})
	// The integer-token rewrite allocates the color index, the growing
	// output/name buffers, and per-level token slices — all O(levels +
	// log growth), independent of how many node names are concatenated.
	// The seed's strings.Builder construction allocated several strings
	// per node (hundreds on this tree).
	if allocs > 64 {
		t.Fatalf("CanonicalForm allocated %.1f objects, want ≤ 64", allocs)
	}
}

// TestModElimSteadyRoundAllocs is the PR 7 hot-loop gate: feeding a
// balance system into a warm battery — the work the modular backend does
// on every completed level — must not allocate at all. The row freelist,
// the per-prime residue storage, and the int64 conversion scratch are all
// recycled across reset, so the elimination's steady state is exactly
// zero objects per round.
func TestModElimSteadyRoundAllocs(t *testing.T) {
	n := 8
	s := dynnet.NewRandomConnected(n, 0.4, 5)
	inputs := make([]Input, n)
	inputs[0].Leader = true
	run, err := Build(s, inputs, 3*n)
	if err != nil {
		t.Fatal(err)
	}
	sol, k, resolvable, err := prepSolution(run.Tree, run.Rounds)
	if err != nil || !resolvable {
		t.Fatalf("prep: resolvable=%v err=%v", resolvable, err)
	}
	defer sol.release()
	var rows [][]int64
	for l := 0; l < run.Rounds; l++ {
		for _, pair := range balancePairs(run.Tree, l) {
			if sol.fillRow(pair) {
				rows = append(rows, append([]int64(nil), sol.row...))
			}
		}
	}
	if len(rows) < k {
		t.Fatalf("only %d balance rows for %d columns", len(rows), k)
	}
	e := newModElim(k, 3)
	feed := func() {
		for _, r := range rows {
			e.addRow(r)
		}
	}
	feed() // warm: grows rows, freelists, scratch
	allocs := testing.AllocsPerRun(32, func() {
		e.reset(k)
		feed()
	})
	if allocs > 0 {
		t.Fatalf("warm modular elimination allocated %.1f objects per pass, want 0", allocs)
	}
}

// TestSolverModularResolveAllocs bounds the full incremental re-query on
// an already-consumed tree: battery growth is over, so a CountAt at the
// frontier pays only for the CRT lift, the rational ray, and the result
// map — O(n) objects, two orders of magnitude below the big.Int backend's
// per-query elimination churn.
func TestSolverModularResolveAllocs(t *testing.T) {
	n := 8
	s := dynnet.NewRandomConnected(n, 0.4, 5)
	inputs := make([]Input, n)
	inputs[0].Leader = true
	run, err := Build(s, inputs, 3*n)
	if err != nil {
		t.Fatal(err)
	}
	solver := NewSolverWith(ArithModular)
	res, err := solver.CountAt(run.Tree, run.Rounds)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Known {
		t.Fatalf("count unresolved after %d levels", run.Rounds)
	}
	allocs := testing.AllocsPerRun(32, func() {
		if _, err := solver.CountAt(run.Tree, run.Rounds); err != nil {
			t.Fatal(err)
		}
	})
	// Measured ≈ 170 on this tree (ray reconstruction + weights + result
	// map); the bound is ~2× that. The battery itself must not grow —
	// growth re-replays the whole system and would blow far past this.
	if allocs > 384 {
		t.Fatalf("steady-state modular CountAt allocated %.1f objects, want ≤ 384", allocs)
	}
}
