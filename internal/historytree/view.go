package historytree

import "fmt"

// ExtractView returns the generalized view of the given target nodes: the
// subgraph of t spanned by all shortest root-to-target paths, using black
// and red edges indifferently (Section 2 of the paper). Since every edge of
// a history tree connects adjacent levels, this is the closure of the
// targets under parents and red-edge sources.
//
// The result is a fresh Tree whose nodes keep the IDs of the originals.
// The view of a single process at round t is ExtractView(tree, node) for
// the node representing it at level t.
func ExtractView(t *Tree, targets ...*Node) (*Tree, error) {
	if len(targets) == 0 {
		return nil, fmt.Errorf("historytree: no view targets")
	}
	include := make(map[*Node]bool)
	stack := make([]*Node, 0, len(targets))
	for _, v := range targets {
		if v == nil {
			return nil, fmt.Errorf("historytree: nil view target")
		}
		if !include[v] {
			include[v] = true
			stack = append(stack, v)
		}
	}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if v.Parent != nil && !include[v.Parent] {
			include[v.Parent] = true
			stack = append(stack, v.Parent)
		}
		for _, e := range v.Red {
			if !include[e.Src] {
				include[e.Src] = true
				stack = append(stack, e.Src)
			}
		}
	}

	out := New()
	for l := 0; l <= t.Depth(); l++ {
		for _, v := range t.Level(l) {
			if !include[v] {
				continue
			}
			parent := out.NodeByID(v.Parent.ID)
			if parent == nil {
				return nil, fmt.Errorf("historytree: view closure missed parent of node %d", v.ID)
			}
			nv, err := out.AddChild(v.ID, parent, v.Input)
			if err != nil {
				return nil, err
			}
			for _, e := range v.Red {
				src := out.NodeByID(e.Src.ID)
				if src == nil {
					return nil, fmt.Errorf("historytree: view closure missed red source of node %d", v.ID)
				}
				if err := out.AddRed(nv, src, e.Mult); err != nil {
					return nil, err
				}
			}
		}
	}
	return out, nil
}

// IsGeneralizedView reports whether sub (a tree whose node IDs are a subset
// of t's) is a generalized view of t: every node of sub exists in t with
// the same parent and red edges, and sub is closed under parents and red
// sources.
func IsGeneralizedView(t, sub *Tree) error {
	for l := 0; l <= sub.Depth(); l++ {
		for _, v := range sub.Level(l) {
			orig := t.NodeByID(v.ID)
			if orig == nil {
				return fmt.Errorf("historytree: node %d not in base tree", v.ID)
			}
			if orig.Level != v.Level {
				return fmt.Errorf("historytree: node %d at level %d vs %d", v.ID, v.Level, orig.Level)
			}
			if orig.Parent.ID != v.Parent.ID {
				return fmt.Errorf("historytree: node %d parent mismatch", v.ID)
			}
			if len(orig.Red) != len(v.Red) {
				return fmt.Errorf("historytree: node %d has %d red edges in view, %d in base",
					v.ID, len(v.Red), len(orig.Red))
			}
			for _, e := range v.Red {
				if orig.RedMult(t.NodeByID(e.Src.ID)) != e.Mult {
					return fmt.Errorf("historytree: node %d red edge to %d mismatch", v.ID, e.Src.ID)
				}
			}
		}
	}
	return nil
}
