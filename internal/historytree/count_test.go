package historytree

import (
	"math/rand"
	"testing"

	"anondyn/internal/dynnet"
)

// leaderInputs returns n inputs where process 0 is the leader and everyone
// has value 0.
func leaderInputs(n int) []Input {
	in := make([]Input, n)
	in[0].Leader = true
	return in
}

// buildTree is a test helper wrapping Build.
func buildTree(t *testing.T, s dynnet.Schedule, inputs []Input, rounds int) *Run {
	t.Helper()
	run, err := Build(s, inputs, rounds)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := run.Tree.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return run
}

// countAt runs Count with increasing complete levels and returns the first
// level at which the answer is known, or -1.
func countAt(t *testing.T, tree *Tree, maxLevel int) (CountResult, int) {
	t.Helper()
	for l := 0; l <= maxLevel; l++ {
		res, err := Count(tree, l)
		if err != nil {
			t.Fatalf("Count at level %d: %v", l, err)
		}
		if res.Known {
			return res, l
		}
	}
	return CountResult{}, -1
}

func TestCountStaticTopologies(t *testing.T) {
	tests := []struct {
		name  string
		n     int
		graph func(n int) *dynnet.Multigraph
	}{
		{name: "path", n: 6, graph: dynnet.Path},
		{name: "cycle", n: 7, graph: dynnet.Cycle},
		{name: "complete", n: 8, graph: dynnet.Complete},
		{name: "star", n: 9, graph: func(n int) *dynnet.Multigraph { return dynnet.Star(n, 0) }},
		{name: "single", n: 1, graph: dynnet.Complete},
		{name: "pair", n: 2, graph: dynnet.Path},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := dynnet.NewStatic(tt.graph(tt.n))
			rounds := 3*tt.n + 2
			run := buildTree(t, s, leaderInputs(tt.n), rounds)
			res, level := countAt(t, run.Tree, rounds)
			if level < 0 {
				t.Fatalf("count never resolved within %d levels", rounds)
			}
			if res.N != tt.n {
				t.Fatalf("got n=%d, want %d (resolved at level %d)", res.N, tt.n, level)
			}
			if level > 3*tt.n {
				t.Errorf("resolved only at level %d > 3n=%d", level, 3*tt.n)
			}
		})
	}
}

func TestCountDynamicSchedules(t *testing.T) {
	tests := []struct {
		name string
		mk   func(n int) dynnet.Schedule
	}{
		{name: "random-sparse", mk: func(n int) dynnet.Schedule { return dynnet.NewRandomConnected(n, 0.1, 1) }},
		{name: "random-dense", mk: func(n int) dynnet.Schedule { return dynnet.NewRandomConnected(n, 0.7, 2) }},
		{name: "rotating-star", mk: func(n int) dynnet.Schedule { return dynnet.NewRotatingStar(n) }},
		{name: "shifting-path", mk: func(n int) dynnet.Schedule { return dynnet.NewShiftingPath(n) }},
		{name: "bottleneck", mk: func(n int) dynnet.Schedule { return dynnet.NewBottleneck(n) }},
	}
	for _, tt := range tests {
		for _, n := range []int{3, 5, 8} {
			s := tt.mk(n)
			rounds := 3*n + 2
			run := buildTree(t, s, leaderInputs(n), rounds)
			res, level := countAt(t, run.Tree, rounds)
			if level < 0 {
				t.Fatalf("%s n=%d: count never resolved within %d levels", tt.name, n, rounds)
			}
			if res.N != n {
				t.Fatalf("%s n=%d: got %d (at level %d)", tt.name, n, res.N, level)
			}
		}
	}
}

func TestCountGeneralizedMultiset(t *testing.T) {
	// 2 leaders?? No: exactly one leader, inputs A=3, B=2, C=1 (leader has A).
	inputs := []Input{
		{Leader: true, Value: 10},
		{Value: 20}, {Value: 20},
		{Value: 30}, {Value: 30}, {Value: 30},
	}
	n := len(inputs)
	s := dynnet.NewRandomConnected(n, 0.4, 7)
	run := buildTree(t, s, inputs, 3*n+2)
	res, level := countAt(t, run.Tree, 3*n+2)
	if level < 0 {
		t.Fatal("count never resolved")
	}
	want := map[Input]int{
		{Leader: true, Value: 10}: 1,
		{Value: 20}:               2,
		{Value: 30}:               3,
	}
	if res.N != n {
		t.Fatalf("n=%d, want %d", res.N, n)
	}
	for in, c := range want {
		if res.Multiset[in] != c {
			t.Errorf("multiset[%s]=%d, want %d", in, res.Multiset[in], c)
		}
	}
}

func TestFrequenciesLeaderless(t *testing.T) {
	// 4 processes with input 1, 2 with input 2: frequencies 2/3 and 1/3.
	inputs := []Input{
		{Value: 1}, {Value: 1}, {Value: 1}, {Value: 1},
		{Value: 2}, {Value: 2},
	}
	n := len(inputs)
	s := dynnet.NewRandomConnected(n, 0.3, 3)
	run := buildTree(t, s, inputs, 3*n+2)
	var res FrequencyResult
	resolved := false
	for l := 0; l <= 3*n+2 && !resolved; l++ {
		r, err := Frequencies(run.Tree, l)
		if err != nil {
			t.Fatalf("Frequencies: %v", err)
		}
		if r.Known {
			res, resolved = r, true
		}
	}
	if !resolved {
		t.Fatal("frequencies never resolved")
	}
	if res.MinSize != 3 {
		t.Fatalf("MinSize=%d, want 3", res.MinSize)
	}
	if res.Shares[Input{Value: 1}] != 2 || res.Shares[Input{Value: 2}] != 1 {
		t.Fatalf("shares=%v, want {1:2, 2:1}", res.Shares)
	}
}

func TestFrequenciesSymmetricNetworkStaysUnknownOrScaled(t *testing.T) {
	// A complete graph with identical inputs: all processes forever
	// indistinguishable; the frequency answer is the trivial 1/1 and n is
	// not recoverable (MinSize must be 1, regardless of n).
	for _, n := range []int{2, 5} {
		s := dynnet.NewStatic(dynnet.Complete(n))
		inputs := make([]Input, n)
		run := buildTree(t, s, inputs, 6)
		res, err := Frequencies(run.Tree, 6)
		if err != nil {
			t.Fatalf("Frequencies: %v", err)
		}
		if !res.Known {
			t.Fatalf("n=%d: expected trivially known frequencies", n)
		}
		if res.MinSize != 1 {
			t.Errorf("n=%d: MinSize=%d, want 1 (leaderless cannot count)", n, res.MinSize)
		}
	}
}

func TestCheckWeightsOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(8)
		seed := rng.Int63()
		s := dynnet.NewRandomConnected(n, rng.Float64(), seed)
		inputs := make([]Input, n)
		for i := range inputs {
			inputs[i].Value = int64(rng.Intn(3))
		}
		inputs[0].Leader = true
		rounds := 2 * n
		run, err := Build(s, inputs, rounds)
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		if err := CheckWeights(run.Tree, rounds, run.Card); err != nil {
			t.Fatalf("trial %d (n=%d seed=%d): %v", trial, n, seed, err)
		}
	}
}

func TestCountSoundnessNeverWrong(t *testing.T) {
	// Whenever Count reports Known at ANY level, the answer must be the
	// truth — soundness must not depend on reaching 3n levels.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(9)
		s := dynnet.NewRandomConnected(n, rng.Float64(), rng.Int63())
		rounds := 3*n + 2
		run, err := Build(s, leaderInputs(n), rounds)
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		for l := 0; l <= rounds; l++ {
			res, err := Count(run.Tree, l)
			if err != nil {
				t.Fatalf("Count: %v", err)
			}
			if res.Known && res.N != n {
				t.Fatalf("trial %d: level %d reported n=%d, truth %d", trial, l, res.N, n)
			}
		}
	}
}

func TestCountUnknownOnShallowTree(t *testing.T) {
	// With zero complete levels and ≥2 classes the answer must be unknown.
	s := dynnet.NewStatic(dynnet.Path(4))
	run := buildTree(t, s, leaderInputs(4), 2)
	res, err := Count(run.Tree, 0)
	if err != nil {
		t.Fatalf("Count: %v", err)
	}
	if res.Known {
		t.Fatal("level 0 alone should not determine n=4")
	}
}

func TestCountErrorPaths(t *testing.T) {
	// Two leader classes is a malformed input.
	tr := New()
	if _, err := tr.AddChild(0, tr.Root(), Input{Leader: true, Value: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.AddChild(1, tr.Root(), Input{Leader: true, Value: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := Count(tr, 0); err == nil {
		t.Error("two leader classes must be rejected")
	}

	// completeLevels out of range.
	if _, err := Count(tr, 5); err == nil {
		t.Error("completeLevels beyond depth must be rejected")
	}
	if _, err := Count(tr, -1); err == nil {
		t.Error("negative completeLevels must be rejected")
	}
}

func TestCountNoLeaderRejected(t *testing.T) {
	tr := New()
	if _, err := tr.AddChild(0, tr.Root(), Input{Value: 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := Count(tr, 0); err == nil {
		t.Error("leaderless tree must be rejected by Count (use Frequencies)")
	}
}

func TestFrequenciesMultiValueRatios(t *testing.T) {
	// 9 processes with inputs 3:3:3 → shares 1:1:1, MinSize 3.
	inputs := make([]Input, 9)
	for i := range inputs {
		inputs[i].Value = int64(i % 3)
	}
	s := dynnet.NewRandomConnected(9, 0.4, 17)
	run := buildTree(t, s, inputs, 29)
	for l := 0; l <= 29; l++ {
		res, err := Frequencies(run.Tree, l)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Known {
			continue
		}
		if res.MinSize != 3 {
			t.Fatalf("MinSize=%d, want 3", res.MinSize)
		}
		for v := int64(0); v < 3; v++ {
			if res.Shares[Input{Value: v}] != 1 {
				t.Fatalf("shares=%v", res.Shares)
			}
		}
		return
	}
	t.Fatal("frequencies never resolved")
}

func TestCheckWeightsDetectsViolations(t *testing.T) {
	s := dynnet.NewStatic(dynnet.Path(4))
	run := buildTree(t, s, leaderInputs(4), 4)
	// Corrupt one cardinality: partition sums must break.
	bad := make(map[int]int, len(run.Card))
	for k, v := range run.Card {
		bad[k] = v
	}
	for _, v := range run.Tree.Level(2) {
		bad[v.ID]++
		break
	}
	if err := CheckWeights(run.Tree, 4, bad); err == nil {
		t.Fatal("corrupted cardinalities not detected")
	}
	if err := CheckWeights(run.Tree, 99, run.Card); err == nil {
		t.Fatal("out-of-range completeLevels not detected")
	}
}
