package historytree

import (
	"fmt"
	"sort"

	"anondyn/internal/dynnet"
)

// Run is the oracle-built history tree of a concrete execution: the tree
// itself plus the assignment of processes to nodes at every round and the
// resulting class cardinalities. The protocol under test never sees a Run —
// it is ground truth for the test and benchmark suites.
type Run struct {
	// Tree is the history tree of the first `Rounds` rounds.
	Tree *Tree
	// Rounds is the number of simulated rounds (levels 0..Rounds exist).
	Rounds int
	// NodeOf[t][p] is the node representing process p at the end of round
	// t, for t in [0, Rounds].
	NodeOf [][]*Node
	// Card maps each node ID to the number of processes it represents.
	Card map[int]int
}

// Build simulates `rounds` rounds of the schedule with the given per-process
// inputs and returns the true history tree. Two processes are
// indistinguishable at round 0 iff their inputs are equal; at round t+1 iff
// they were indistinguishable at round t and received equal multisets of
// (class, multiplicity) messages.
func Build(s dynnet.Schedule, inputs []Input, rounds int) (*Run, error) {
	n := s.N()
	if len(inputs) != n {
		return nil, fmt.Errorf("historytree: %d inputs for %d processes", len(inputs), n)
	}
	if rounds < 0 {
		return nil, fmt.Errorf("historytree: negative round count %d", rounds)
	}

	t := New()
	nextID := 0
	card := map[int]int{RootID: n}

	// Level 0: partition by input, in first-appearance order.
	level0 := make(map[Input]*Node)
	cur := make([]*Node, n)
	for p := 0; p < n; p++ {
		node, ok := level0[inputs[p]]
		if !ok {
			var err error
			node, err = t.AddChild(nextID, t.Root(), inputs[p])
			if err != nil {
				return nil, err
			}
			nextID++
			level0[inputs[p]] = node
		}
		card[node.ID]++
		cur[p] = node
	}

	run := &Run{Tree: t, Rounds: rounds, Card: card}
	run.NodeOf = append(run.NodeOf, append([]*Node(nil), cur...))

	for round := 1; round <= rounds; round++ {
		g := s.Graph(round)
		if g.N() != n {
			return nil, fmt.Errorf("historytree: schedule graph at round %d has %d processes, want %d",
				round, g.N(), n)
		}
		next, err := refine(t, g, cur, &nextID, card)
		if err != nil {
			return nil, err
		}
		cur = next
		run.NodeOf = append(run.NodeOf, append([]*Node(nil), cur...))
	}
	return run, nil
}

// refine computes the next level: processes in the same class split
// according to the multiset of classes (with multiplicities) they hear from.
func refine(t *Tree, g *dynnet.Multigraph, cur []*Node, nextID *int, card map[int]int) ([]*Node, error) {
	n := len(cur)
	// obs[p] maps source-class node ID → number of messages received.
	obs := make([]map[int]int, n)
	for p := 0; p < n; p++ {
		obs[p] = make(map[int]int)
	}
	for _, l := range g.CanonicalLinks() {
		if l.U == l.V {
			obs[l.U][cur[l.U].ID] += l.Mult
			continue
		}
		obs[l.U][cur[l.V].ID] += l.Mult
		obs[l.V][cur[l.U].ID] += l.Mult
	}

	// Group processes by (current class, canonical observation signature).
	type key struct {
		parent int
		sig    string
	}
	groups := make(map[key]*Node)
	next := make([]*Node, n)
	// Deterministic iteration: process indices ascending, so node creation
	// order is reproducible.
	for p := 0; p < n; p++ {
		k := key{parent: cur[p].ID, sig: signature(obs[p])}
		node, ok := groups[k]
		if !ok {
			var err error
			node, err = t.AddChild(*nextID, cur[p], Input{})
			if err != nil {
				return nil, err
			}
			*nextID++
			for _, srcID := range sortedKeys(obs[p]) {
				if err := t.AddRed(node, t.NodeByID(srcID), obs[p][srcID]); err != nil {
					return nil, err
				}
			}
			groups[k] = node
		}
		card[node.ID]++
		next[p] = node
	}
	return next, nil
}

// signature canonically serializes an observation multiset.
func signature(obs map[int]int) string {
	keys := sortedKeys(obs)
	b := make([]byte, 0, len(keys)*8)
	for _, k := range keys {
		b = append(b, fmt.Sprintf("%d:%d;", k, obs[k])...)
	}
	return string(b)
}

func sortedKeys(m map[int]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}
