package historytree

import (
	"fmt"

	"anondyn/internal/dynnet"
)

// Run is the oracle-built history tree of a concrete execution: the tree
// itself plus the assignment of processes to nodes at every round and the
// resulting class cardinalities. The protocol under test never sees a Run —
// it is ground truth for the test and benchmark suites.
type Run struct {
	// Tree is the history tree of the first `Rounds` rounds.
	Tree *Tree
	// Rounds is the number of simulated rounds (levels 0..Rounds exist).
	Rounds int
	// NodeOf[t][p] is the node representing process p at the end of round
	// t, for t in [0, Rounds].
	NodeOf [][]*Node
	// Card maps each node ID to the number of processes it represents.
	Card map[int]int
}

// Build simulates `rounds` rounds of the schedule with the given per-process
// inputs and returns the true history tree. Two processes are
// indistinguishable at round 0 iff their inputs are equal; at round t+1 iff
// they were indistinguishable at round t and received equal multisets of
// (class, multiplicity) messages.
func Build(s dynnet.Schedule, inputs []Input, rounds int) (*Run, error) {
	return buildWith(s, inputs, rounds, nil)
}

// refineFunc is one round of partition refinement. Build uses the batched
// SoA pass (batch.go); tests pass the witness refiner's method to pin the
// two byte-identical.
type refineFunc func(t *Tree, g *dynnet.Multigraph, cur []*Node, nextID *int, card map[int]int) ([]*Node, error)

func buildWith(s dynnet.Schedule, inputs []Input, rounds int, refine refineFunc) (*Run, error) {
	n := s.N()
	if len(inputs) != n {
		return nil, fmt.Errorf("historytree: %d inputs for %d processes", len(inputs), n)
	}
	if rounds < 0 {
		return nil, fmt.Errorf("historytree: negative round count %d", rounds)
	}

	t := New()
	nextID := 0
	card := map[int]int{RootID: n}

	// Level 0: partition by input, in first-appearance order.
	level0 := make(map[Input]*Node)
	cur := make([]*Node, n)
	for p := 0; p < n; p++ {
		node, ok := level0[inputs[p]]
		if !ok {
			var err error
			node, err = t.AddChild(nextID, t.Root(), inputs[p])
			if err != nil {
				return nil, err
			}
			nextID++
			level0[inputs[p]] = node
		}
		card[node.ID]++
		cur[p] = node
	}

	run := &Run{Tree: t, Rounds: rounds, Card: card}
	// NodeOf rows are never mutated after their round, so the working
	// slice is stored directly rather than copied.
	run.NodeOf = append(run.NodeOf, cur)

	if refine == nil {
		refine = newBatchRefiner(n).refine
	}
	for round := 1; round <= rounds; round++ {
		g := s.Graph(round)
		if g.N() != n {
			return nil, fmt.Errorf("historytree: schedule graph at round %d has %d processes, want %d",
				round, g.N(), n)
		}
		next, err := refine(t, g, cur, &nextID, card)
		if err != nil {
			return nil, err
		}
		cur = next
		run.NodeOf = append(run.NodeOf, cur)
	}
	return run, nil
}

// refine computes the next level: processes in the same class split
// according to the multiset of classes (with multiplicities) they hear
// from. All per-round scratch (observation slices, the group table, the
// stored group keys) lives on the refiner and is reused across rounds; the
// only per-round allocation in steady state is the returned level slice.
func (r *refiner) refine(t *Tree, g *dynnet.Multigraph, cur []*Node, nextID *int, card map[int]int) ([]*Node, error) {
	n := len(cur)
	for p := 0; p < n; p++ {
		r.obs[p] = r.obs[p][:0]
	}
	for _, l := range g.CanonicalLinks() {
		if l.U == l.V {
			r.obs[l.U] = append(r.obs[l.U], pair{cur[l.U].ID, l.Mult})
			continue
		}
		r.obs[l.U] = append(r.obs[l.U], pair{cur[l.V].ID, l.Mult})
		r.obs[l.V] = append(r.obs[l.V], pair{cur[l.U].ID, l.Mult})
	}

	// Group processes by (current class, canonical observation). The table
	// is keyed by a collision-checked hash; the exact tuple is compared on
	// every hit, so a collision costs one extra comparison, never a wrong
	// merge. Process indices ascend, so node creation order is reproducible
	// (and matches the seed implementation exactly).
	r.gen++
	r.keyArena = r.keyArena[:0]
	next := make([]*Node, n)
	for p := 0; p < n; p++ {
		obs := canonPairs(r.obs[p])
		r.obs[p] = obs
		h := hashPairs(uint64(cur[p].ID), obs)
		slot := r.lookup(h, cur[p], obs)
		node := slot.node
		if slot.gen != r.gen {
			var err error
			node, err = t.AddChild(*nextID, cur[p], Input{})
			if err != nil {
				return nil, err
			}
			*nextID++
			// obs is already sorted by source ID, matching the seed's
			// sortedKeys insertion order.
			for _, o := range obs {
				if err := t.AddRed(node, t.NodeByID(o.id), o.mult); err != nil {
					return nil, err
				}
			}
			off := len(r.keyArena)
			r.keyArena = append(r.keyArena, obs...)
			key := r.keyArena[off:len(r.keyArena):len(r.keyArena)]
			*slot = groupSlot{gen: r.gen, hash: h, parent: cur[p], pairs: key, node: node}
		}
		card[node.ID]++
		next[p] = node
	}
	return next, nil
}

// pairsEqual is slices.Equal specialized to pair; kept as a named function
// so the refine hot loop stays readable.
func pairsEqual(a, b []pair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
