package historytree

import (
	"math"
	"math/big"
)

// modElim is the multi-modular counterpart of intElim: it maintains the
// reduced row-echelon basis of the balance equations as residues over a
// battery of word-sized primes instead of as ever-growing big.Int rows.
// Each prime keeps its own fully reduced, pivot-normalized basis in
// []uint64 rows; the inner multiply-subtract loop is Barrett-reduced
// integer arithmetic with no allocation. Exactness is recovered at
// resolution time: per-prime null rays are CRT-combined and rationally
// reconstructed, and the battery is sized under a Hadamard bound so that
// unlucky primes (rank drop or pivot drift mod p) cannot corrupt either
// the answer or the decision that there is no answer yet. See DESIGN.md
// decision 12.
//
// The same two operations as intElim are supported — addRow and lift —
// plus the battery-management steps (unlucky-prime eviction, certified
// growth) that have no exact-arithmetic analogue.
type modElim struct {
	cols   int
	primes []primeState

	// nextPrime indexes the global battery ordering: every prime ever
	// adopted gets the next index, and evicted primes never return.
	nextPrime int

	// rowsFed counts addRow calls that carried a nonzero row — the replay
	// length a fresh prime must consume to catch up.
	rowsFed int
	// maxMult is the largest |coefficient| ever fed; together with cols it
	// bounds every minor of the (expanded) equation matrix via Hadamard.
	maxMult int64

	// evictions and crtRecons are observability counters surfaced through
	// SolverStats.
	evictions int
	crtRecons int

	scratch  []uint64   // residue-conversion scratch, len == cols
	intRow   []int64    // int64 row scratch for owners that need one
	freeRows [][]uint64 // row freelist recycled across lifts and resets
	fcScrat  []int      // firstChild scratch for lift
}

// primeState is one prime's reduced row-echelon basis. Rows are fully
// reduced and pivot-normalized (the pivot entry is 1), so the basis of a
// given row space is unique — which is what makes cross-prime pivot
// profiles comparable and per-prime null rays consistent reductions of
// the one exact rational ray.
type primeState struct {
	mp    modPrime
	idx   int // global battery index, for eviction bookkeeping
	rows  [][]uint64
	pivot []int
	rank  int
	has   []bool
}

// newModElim returns an empty battery over cols variables with n primes.
func newModElim(cols, nprimes int) *modElim {
	e := &modElim{cols: cols, scratch: make([]uint64, cols)}
	for i := 0; i < nprimes; i++ {
		e.adoptPrime(nil)
	}
	return e
}

// adoptPrime appends the next unused battery prime. When feed is non-nil
// it is called to replay the consumed equations into the fresh state.
func (e *modElim) adoptPrime(feed func(ps *primeState)) {
	ps := primeState{mp: primeAt(e.nextPrime), idx: e.nextPrime, has: make([]bool, e.cols)}
	e.nextPrime++
	e.primes = append(e.primes, ps)
	if feed != nil {
		feed(&e.primes[len(e.primes)-1])
	}
}

// getRow draws a row of length n from the freelist, with headroom so rows
// survive moderate column growth across lifts.
func (e *modElim) getRow(n int) []uint64 {
	for len(e.freeRows) > 0 {
		r := e.freeRows[len(e.freeRows)-1]
		e.freeRows = e.freeRows[:len(e.freeRows)-1]
		if cap(r) >= n {
			return r[:n]
		}
	}
	return make([]uint64, n, n+n/2+4)
}

// putRow returns a row to the freelist.
func (e *modElim) putRow(r []uint64) {
	e.freeRows = append(e.freeRows, r)
}

// addRow feeds one integer balance equation to every prime. The row is
// not retained; a zero row is ignored.
func (e *modElim) addRow(row []int64) {
	used := false
	for _, v := range row {
		if v != 0 {
			used = true
			if v < 0 {
				v = -v
			}
			if v > e.maxMult {
				e.maxMult = v
			}
		}
	}
	if !used {
		return
	}
	e.rowsFed++
	for i := range e.primes {
		e.feedRow(&e.primes[i], row)
	}
}

// feedRow reduces one integer row into a single prime's basis.
func (e *modElim) feedRow(ps *primeState, row []int64) {
	mp := ps.mp
	w := e.scratch[:e.cols]
	for c, v := range row {
		w[c] = mp.redInt64(v)
	}
	ps.addResidues(w, e)
}

// addResidues reduces a residue row (backed by the caller's scratch)
// against the basis and inserts it if independent. The hot path — the
// multiply-subtract loops — allocates nothing; only an insertion copies
// the row into freelist-recycled storage.
func (ps *primeState) addResidues(w []uint64, e *modElim) {
	mp := ps.mp
	for i, br := range ps.rows {
		f := w[ps.pivot[i]]
		if f == 0 {
			continue
		}
		// w ← w − f·br; br's pivot entry is 1, so this zeroes w at it.
		for c, bv := range br {
			if bv != 0 {
				w[c] = mp.sub(w[c], mp.mul(f, bv))
			}
		}
	}
	p := -1
	for c, v := range w {
		if v != 0 {
			p = c
			break
		}
	}
	if p < 0 {
		return // dependent mod this prime
	}
	inv := mp.inv(w[p])
	for c := p; c < len(w); c++ {
		if w[c] != 0 {
			w[c] = mp.mul(w[c], inv)
		}
	}
	// Back-eliminate the new pivot from existing rows to keep the basis
	// fully reduced (columns before p are zero in w).
	for _, br := range ps.rows {
		f := br[p]
		if f == 0 {
			continue
		}
		for c := p; c < len(w); c++ {
			if w[c] != 0 {
				br[c] = mp.sub(br[c], mp.mul(f, w[c]))
			}
		}
	}
	kept := e.getRow(len(w))
	copy(kept, w)
	ps.rows = append(ps.rows, kept)
	ps.pivot = append(ps.pivot, p)
	ps.has[p] = true
	ps.rank++
}

// lift maps every prime's basis onto a refined variable set, exactly as
// intElim.lift does over the integers: old column j becomes the block of
// new columns c with parentIdx[c] == j, each row's pivot moves to the
// first child of its old pivot, and reduction, independence, and rank are
// preserved per prime (lifting is linear and injective on row vectors).
func (e *modElim) lift(parentIdx []int32, newCols int) {
	if cap(e.fcScrat) < e.cols {
		e.fcScrat = make([]int, e.cols)
	}
	firstChild := e.fcScrat[:e.cols]
	for j := range firstChild {
		firstChild[j] = -1
	}
	for c := newCols - 1; c >= 0; c-- {
		firstChild[parentIdx[c]] = int(c)
	}
	for pi := range e.primes {
		ps := &e.primes[pi]
		for i, old := range ps.rows {
			lifted := e.getRow(newCols)
			for c := 0; c < newCols; c++ {
				lifted[c] = old[parentIdx[c]]
			}
			e.putRow(old)
			ps.rows[i] = lifted
			ps.pivot[i] = firstChild[ps.pivot[i]]
		}
		if cap(ps.has) >= newCols {
			ps.has = ps.has[:newCols]
			for c := range ps.has {
				ps.has[c] = false
			}
		} else {
			ps.has = make([]bool, newCols)
		}
		for _, p := range ps.pivot {
			ps.has[p] = true
		}
	}
	e.cols = newCols
	if cap(e.scratch) < newCols {
		e.scratch = make([]uint64, newCols, newCols+newCols/2+4)
	}
	e.scratch = e.scratch[:newCols]
}

// maxRank returns the largest rank any battery prime achieved. Ranks mod p
// never exceed the true rational rank, so the maximum is the best lower
// bound the battery has.
func (e *modElim) maxRank() int {
	r := 0
	for i := range e.primes {
		if e.primes[i].rank > r {
			r = e.primes[i].rank
		}
	}
	return r
}

// hadamardLog2 bounds log2 of any minor of the (expanded) balance-equation
// matrix: entries are single red-edge multiplicities ≤ maxMult, and minors
// have order ≤ cols, so |minor| ≤ maxMult^k · k^(k/2) (Hadamard). The +1
// absorbs float rounding.
func hadamardLog2(cols int, maxMult int64) float64 {
	b := float64(maxMult)
	if b < 2 {
		b = 2
	}
	k := float64(cols)
	if k < 2 {
		k = 2
	}
	return k*(math.Log2(b)+0.5*math.Log2(k)) + 1
}

// rankCertPrimes is the battery size that certifies rank decisions: a
// prime is rank- or profile-unlucky only if it divides one fixed nonzero
// minor M of the equation matrix, and |M| ≤ 2^log2H admits at most
// log2H/primeBits prime divisors above 2^primeBits — so with one more
// prime than that, some battery prime is lucky and the consensus
// (max rank, leftmost pivot profile) is exact.
func rankCertPrimes(log2H float64) int {
	return int(log2H/primeBits) + 1
}

// crtPrimes is the battery size whose product modulus M exceeds 2·H²,
// which rational reconstruction needs: the exact ray's entries are ratios
// of minors, so numerator and denominator are each bounded by H.
func crtPrimes(log2H float64) int {
	n := int((2*log2H+2)/primeBits) + 1
	if n < 2 {
		n = 2
	}
	return n
}

// neededPrimes returns the certified battery size for the current system.
func (e *modElim) neededPrimes(forRay bool) int {
	h := hadamardLog2(e.cols, e.maxMult)
	n := rankCertPrimes(h)
	if forRay {
		if c := crtPrimes(h); c > n {
			n = c
		}
	}
	return n
}

// compareProfiles orders pivot profiles by column rank profile: the
// profile with a pivot at the first differing column is smaller. Mod-p
// dependencies only push pivots rightward, so the exact profile is the
// minimum over lucky primes.
func compareProfiles(a, b []bool) int {
	for c := range a {
		if a[c] != b[c] {
			if a[c] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// evictUnlucky removes primes whose (rank, pivot profile) falls short of
// the battery consensus — the max rank and, among max-rank primes, the
// leftmost pivot profile. It returns how many were evicted. Freed rows go
// back to the freelist.
func (e *modElim) evictUnlucky() int {
	r := e.maxRank()
	var best []bool
	for i := range e.primes {
		ps := &e.primes[i]
		if ps.rank == r && (best == nil || compareProfiles(ps.has, best) < 0) {
			best = ps.has
		}
	}
	kept := e.primes[:0]
	evicted := 0
	for i := range e.primes {
		ps := e.primes[i]
		if ps.rank == r && compareProfiles(ps.has, best) == 0 {
			kept = append(kept, ps)
			continue
		}
		for _, row := range ps.rows {
			e.putRow(row)
		}
		evicted++
	}
	e.primes = kept
	e.evictions += evicted
	return evicted
}

// growTo extends the battery to n primes, replaying the consumed
// equations into each fresh prime via feed.
func (e *modElim) growTo(n int, feed func(ps *primeState)) {
	for len(e.primes) < n {
		e.adoptPrime(feed)
	}
}

// freeColumn returns the unique non-pivot column at corank 1 (all primes
// agree on the profile after evictUnlucky).
func (e *modElim) freeColumn() int {
	for c, h := range e.primes[0].has {
		if !h {
			return c
		}
	}
	return -1
}

// nullRay reconstructs the exact rational null ray at consensus rank
// cols−1: per-prime rays (free column normalized to 1) are CRT-combined
// column by column (Garner, with the prefix moduli and their inverses
// precomputed once per battery) and rationally reconstructed under the
// Hadamard bound. It returns nil if reconstruction fails, which a
// certified battery makes unreachable — callers treat that as a witness
// fallback, not an answer.
func (e *modElim) nullRay() []*big.Rat {
	free := e.freeColumn()
	if free < 0 {
		return nil
	}
	e.crtRecons++
	np := len(e.primes)
	// Garner precomputation shared by every column: prefix moduli
	// P_i = Π_{j<i} p_j, their inverses mod p_i, and the per-prime ray
	// residue vectors.
	prefix := make([]*big.Int, np)
	pinv := make([]uint64, np)
	resid := make([][]uint64, np)
	t1, t2 := new(big.Int), new(big.Int)
	run := big.NewInt(1)
	for i := range e.primes {
		mp := e.primes[i].mp
		prefix[i] = new(big.Int).Set(run)
		t2.SetUint64(mp.p)
		pinv[i] = mp.inv(t1.Mod(run, t2).Uint64())
		run.Mul(run, t2)
		resid[i] = make([]uint64, e.cols)
		e.primes[i].rayResidues(resid[i], free)
	}
	bound := ratBound(run)
	out := make([]*big.Rat, e.cols)
	out[free] = new(big.Rat).SetInt64(1)
	acc := new(big.Int)
	for c := 0; c < e.cols; c++ {
		if c == free {
			continue
		}
		acc.SetInt64(0)
		for i := range e.primes {
			mp := e.primes[i].mp
			t2.SetUint64(mp.p)
			a := t1.Mod(acc, t2).Uint64()
			delta := mp.mul(mp.sub(resid[i][c], a), pinv[i])
			if delta != 0 {
				t1.SetUint64(delta)
				acc.Add(acc, t1.Mul(t1, prefix[i]))
			}
		}
		r, ok := ratReconstruct(acc, run, bound)
		if !ok {
			return nil
		}
		out[c] = r
	}
	return out
}

// rayEntry returns this prime's null-ray residue at column c, with the
// free column normalized to 1: fully reduced pivot-1 rows are supported on
// their pivot and the free column, so x_pivot = −row[free].
func (ps *primeState) rayEntry(c, free int) uint64 {
	for i, p := range ps.pivot {
		if p == c {
			return ps.mp.neg(ps.rows[i][free])
		}
	}
	return 0
}

// rayResidues writes the whole null-ray residue vector (free column
// normalized to 1) into dst, for the residue-based verification pass.
func (ps *primeState) rayResidues(dst []uint64, free int) {
	for c := range dst {
		dst[c] = 0
	}
	dst[free] = 1
	for i, p := range ps.pivot {
		dst[p] = ps.mp.neg(ps.rows[i][free])
	}
}

// dotResidues returns row·w mod p for an int64 row and a residue vector.
// Each product is < 2^62/len(row), so the raw sum cannot overflow before
// the final reduction as long as len(row) < 2^31.
func (mp modPrime) dotResidues(row []int64, w []uint64) uint64 {
	var sum uint64
	for c, v := range row {
		if v != 0 && w[c] != 0 {
			sum += mp.mul(mp.redInt64(v), w[c])
		}
	}
	return mp.red(sum)
}

// reset returns the battery to an empty basis over cols variables,
// recycling row storage but keeping the adopted primes (their luck is
// independent of the system, and keeping them avoids re-probing).
func (e *modElim) reset(cols int) {
	for i := range e.primes {
		ps := &e.primes[i]
		for _, row := range ps.rows {
			e.putRow(row)
		}
		ps.rows = ps.rows[:0]
		ps.pivot = ps.pivot[:0]
		ps.rank = 0
		if cap(ps.has) >= cols {
			ps.has = ps.has[:cols]
			for c := range ps.has {
				ps.has[c] = false
			}
		} else {
			ps.has = make([]bool, cols)
		}
	}
	e.cols = cols
	e.rowsFed = 0
	e.maxMult = 0
	if cap(e.scratch) < cols {
		e.scratch = make([]uint64, cols)
	}
	e.scratch = e.scratch[:cols]
}
