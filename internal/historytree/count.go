package historytree

import (
	"fmt"
	"math/big"
	"sync"
)

// Count infers process counts from a history tree whose levels
// 0..completeLevels are complete (every process is represented at each of
// those levels and children partition their parents). It plays the role of
// the Counting algorithm of Di Luna–Viglietta (FOCS 2022) that the paper
// invokes as a black box ("CountFromView", Listing 2 line 31).
//
// The solver assigns one unknown cardinality to every node of the deepest
// complete level, expresses every shallower node's cardinality as the sum
// of its level-completeLevels descendants, and collects the red-edge
// balance equations: for classes u, w of a level t < completeLevels, the
// number of round-(t+1) links between P_u and P_w can be counted from
// either side,
//
//	Σ_{c child of w} mult(c ← u)·|P_c|  =  Σ_{c′ child of u} mult(c′ ← w)·|P_c′|.
//
// The true cardinalities always satisfy this homogeneous system, so if its
// null space is one-dimensional the ray is proportional to the truth:
// with a unique leader the ray is normalized by |leader class| = 1, giving
// exact counts; otherwise it is normalized to the smallest positive integer
// vector, giving exact input frequencies. If the null space has higher
// dimension the answer is not yet determined and Known is false — by the
// FOCS 2022 result, O(n) complete levels always suffice.
//
// Count recomputes from scratch on every call; it is the reference
// implementation that the incremental Solver is property-tested against.
func Count(t *Tree, completeLevels int) (CountResult, error) {
	leaders := leaderNodes(t)
	if len(leaders) != 1 {
		return CountResult{}, fmt.Errorf("historytree: %d leader classes at level 0, want 1", len(leaders))
	}
	sol, err := solve(t, completeLevels)
	if err != nil {
		return CountResult{}, err
	}
	if !sol.known {
		return CountResult{}, nil
	}
	res, err := countFromWeights(t, sol.levelZeroWeights(t))
	sol.release()
	return res, err
}

// countFromWeights normalizes a per-level-0-class weight assignment by the
// leader class and converts it to the Generalized Counting answer.
func countFromWeights(t *Tree, weights map[*Node]*big.Rat) (CountResult, error) {
	leaders := leaderNodes(t)
	if len(leaders) != 1 {
		return CountResult{}, fmt.Errorf("historytree: %d leader classes at level 0, want 1", len(leaders))
	}
	leaderWeight := weights[leaders[0]]
	if leaderWeight == nil || leaderWeight.Sign() <= 0 {
		return CountResult{}, fmt.Errorf("historytree: non-positive leader class weight %v", leaderWeight)
	}
	// Scale the ray so the leader class has cardinality exactly 1.
	scale := new(big.Rat).Inv(leaderWeight)
	total := new(big.Rat)
	multiset := make(map[Input]int, len(t.Level(0)))
	w := new(big.Rat)
	for _, v := range t.Level(0) {
		wv := weights[v]
		if wv == nil {
			wv = new(big.Rat)
		}
		w.Mul(wv, scale)
		c, ok := ratInt(w)
		if !ok || c < 0 {
			// The dim-1 ray is proportional to the truth, so this is a
			// defensive check; it can only fire on a malformed tree.
			return CountResult{}, fmt.Errorf("historytree: non-integer class cardinality %v", w)
		}
		multiset[v.Input] = c
		total.Add(total, w)
	}
	n, ok := ratInt(total)
	if !ok || n <= 0 {
		return CountResult{}, fmt.Errorf("historytree: non-integer total %v", total)
	}
	return CountResult{Known: true, N: n, Multiset: multiset}, nil
}

// CountResult is the outcome of Count.
type CountResult struct {
	// Known reports whether the tree determined the answer. When false the
	// caller should extend the tree by more levels and retry ("Unknown" in
	// the paper's pseudocode).
	Known bool
	// N is the total number of processes.
	N int
	// Multiset maps each level-0 input to the number of processes holding
	// it (the Generalized Counting answer).
	Multiset map[Input]int
}

// Frequencies infers input frequencies from a leaderless history tree with
// levels 0..completeLevels complete. The null-space ray determines
// cardinalities only up to scale (leaderless networks cannot count, per
// Di Luna–Viglietta DISC 2023), so the result is the smallest positive
// integer vector: exact frequencies, and a minimal consistent network size
// MinSize of which the true n is a multiple.
func Frequencies(t *Tree, completeLevels int) (FrequencyResult, error) {
	sol, err := solve(t, completeLevels)
	if err != nil {
		return FrequencyResult{}, err
	}
	if !sol.known {
		return FrequencyResult{}, nil
	}
	res, err := frequenciesFromWeights(t, sol.levelZeroWeights(t))
	sol.release()
	return res, err
}

// frequenciesFromWeights converts a per-level-0-class weight assignment to
// the minimal positive integer ray: exact frequencies.
func frequenciesFromWeights(t *Tree, weights map[*Node]*big.Rat) (FrequencyResult, error) {
	// Clear denominators and divide by the gcd to obtain the minimal
	// positive integer ray.
	lcm := big.NewInt(1)
	for _, v := range t.Level(0) {
		if w := weights[v]; w != nil {
			lcm = lcmBig(lcm, w.Denom())
		}
	}
	counts := make(map[Input]*big.Int, len(t.Level(0)))
	gcd := new(big.Int)
	total := new(big.Int)
	zero := new(big.Rat)
	for _, v := range t.Level(0) {
		w := weights[v]
		if w == nil {
			w = zero
		}
		c := new(big.Int).Mul(w.Num(), new(big.Int).Div(lcm, w.Denom()))
		if c.Sign() < 0 {
			return FrequencyResult{}, fmt.Errorf("historytree: negative class weight for input %s", v.Input)
		}
		counts[v.Input] = c
		gcd.GCD(nil, nil, gcd, new(big.Int).Abs(c))
		total.Add(total, c)
	}
	if gcd.Sign() == 0 || total.Sign() <= 0 {
		return FrequencyResult{}, fmt.Errorf("historytree: degenerate leaderless solution")
	}
	res := FrequencyResult{Known: true, Shares: make(map[Input]int, len(counts))}
	for in, c := range counts {
		res.Shares[in] = int(new(big.Int).Div(c, gcd).Int64())
	}
	res.MinSize = int(new(big.Int).Div(total, gcd).Int64())
	return res, nil
}

// FrequencyResult is the outcome of Frequencies.
type FrequencyResult struct {
	// Known mirrors CountResult.Known.
	Known bool
	// Shares maps each input to its share of the smallest positive integer
	// solution; the frequency of input i is Shares[i] / MinSize.
	Shares map[Input]int
	// MinSize is the sum of Shares: the minimal network size consistent
	// with the observations. The true n is a positive multiple of it.
	MinSize int
}

// CheckWeights verifies that the given true cardinalities (node ID → count)
// satisfy every constraint the solver uses on levels 0..completeLevels:
// children partition parents, and all red-edge balance equations hold. It
// is the property-test oracle for the solver's soundness argument.
func CheckWeights(t *Tree, completeLevels int, card map[int]int) error {
	if completeLevels > t.Depth() {
		return fmt.Errorf("historytree: completeLevels %d exceeds depth %d", completeLevels, t.Depth())
	}
	for l := 0; l < completeLevels; l++ {
		for _, v := range t.Level(l) {
			sum := 0
			for _, c := range v.Children {
				sum += card[c.ID]
			}
			if sum != card[v.ID] {
				return fmt.Errorf("historytree: node %d has cardinality %d but children sum to %d",
					v.ID, card[v.ID], sum)
			}
		}
		for _, pair := range balancePairs(t, l) {
			lhs, rhs := 0, 0
			for _, c := range pair.w.Children {
				lhs += c.RedMult(pair.u) * card[c.ID]
			}
			for _, c := range pair.u.Children {
				rhs += c.RedMult(pair.w) * card[c.ID]
			}
			if lhs != rhs {
				return fmt.Errorf("historytree: balance violated between %d and %d at level %d: %d != %d",
					pair.u.ID, pair.w.ID, l, lhs, rhs)
			}
		}
	}
	return nil
}

// Resolvable is a cheap necessary condition for the balance system of the
// complete prefix to pin down the counts: every class of the deepest
// complete level must have, somewhere on its ancestor chain (itself
// included), a red edge from a class other than its own parent. A class
// without one appears in no balance equation — its column is identically
// zero — so the null space has dimension ≥ 2 and the rank cannot reach
// k−1. Count and Solver use it to skip elimination on trivially
// undetermined levels; it runs in O(nodes of the prefix).
func Resolvable(t *Tree, completeLevels int) bool {
	if completeLevels < 0 || completeLevels > t.Depth() || len(t.Level(completeLevels)) < 2 {
		return true
	}
	covered := make(map[*Node]bool)
	for l := 1; l <= completeLevels; l++ {
		for _, v := range t.Level(l) {
			covered[v] = covered[v.Parent] || crossRed(v)
		}
	}
	for _, v := range t.Level(completeLevels) {
		if !covered[v] {
			return false
		}
	}
	return true
}

// solution carries the solved ray: a rational weight per node of the
// deepest complete level, plus ancestor chains for evaluating shallower
// nodes. Coefficient vectors over the basis are never materialized per
// node: a node's vector is the 0/1 indicator of its basis descendants,
// read off the ancestor chains on demand.
type solution struct {
	known  bool
	leaves []*Node
	anc    [][]*Node        // anc[l][i] = level-l ancestor of leaf i
	cols   []map[*Node]cols // lazy per-level column lists
	row    []int64          // pooled equation-row scratch
	ray    []*big.Rat
}

// cols lists the basis columns (leaf indices) under one node.
type cols []int32

// vecPool recycles the []int64 equation-row vectors across solve calls.
var vecPool = sync.Pool{New: func() any { return []int64(nil) }}

func getVec(k int) []int64 {
	v := vecPool.Get().([]int64)
	if cap(v) < k {
		return make([]int64, k)
	}
	v = v[:k]
	for i := range v {
		v[i] = 0
	}
	return v
}

// release returns pooled scratch to the pool; the solution must not be
// used for equation evaluation afterwards.
func (s *solution) release() {
	if s.row != nil {
		vecPool.Put(s.row)
		s.row = nil
	}
}

// colsAt returns the node→columns map of one level, materializing it on
// first use so levels above the deepest one actually referenced (the early
// stop in solve) cost nothing.
func (s *solution) colsAt(l int) map[*Node]cols {
	if s.cols[l] == nil {
		m := make(map[*Node]cols, len(s.anc[l]))
		for i, v := range s.anc[l] {
			m[v] = append(m[v], int32(i))
		}
		s.cols[l] = m
	}
	return s.cols[l]
}

// fillRow writes one balance equation over the basis into s.row and
// reports whether any entry is nonzero.
func (s *solution) fillRow(pair nodePair) bool {
	for i := range s.row {
		s.row[i] = 0
	}
	used := false
	under := s.colsAt(pair.u.Level + 1)
	for _, c := range pair.w.Children {
		if m := c.RedMult(pair.u); m != 0 {
			for _, i := range under[c] {
				s.row[i] += int64(m)
			}
			used = true
		}
	}
	for _, c := range pair.u.Children {
		if m := c.RedMult(pair.w); m != 0 {
			for _, i := range under[c] {
				s.row[i] -= int64(m)
			}
			used = true
		}
	}
	return used
}

// balanced checks one balance equation directly on the solved ray.
func (s *solution) balanced(pair nodePair) bool {
	if !s.fillRow(pair) {
		return true
	}
	lhs := new(big.Rat)
	term := new(big.Rat)
	for i, c := range s.row {
		if c == 0 {
			continue
		}
		term.SetInt64(c)
		lhs.Add(lhs, term.Mul(term, s.ray[i]))
	}
	return lhs.Sign() == 0
}

// levelZeroWeights evaluates the ray on every level-0 class.
func (s *solution) levelZeroWeights(t *Tree) map[*Node]*big.Rat {
	out := make(map[*Node]*big.Rat, len(t.Level(0)))
	for i, x := range s.ray {
		v := s.anc[0][i]
		if w, ok := out[v]; ok {
			w.Add(w, x)
		} else {
			out[v] = new(big.Rat).Set(x)
		}
	}
	return out
}

// prepSolution runs the shared prologue of solve and solveModular:
// validation, the Resolvable gate, and (when resolvable) the ancestor
// chains and pooled row scratch that fillRow needs.
func prepSolution(t *Tree, completeLevels int) (sol *solution, k int, resolvable bool, err error) {
	if completeLevels < 0 || completeLevels > t.Depth() {
		return nil, 0, false, fmt.Errorf("historytree: completeLevels %d out of range [0,%d]", completeLevels, t.Depth())
	}
	leaves := t.Level(completeLevels)
	k = len(leaves)
	if k == 0 {
		return nil, 0, false, fmt.Errorf("historytree: empty level %d", completeLevels)
	}
	sol = &solution{leaves: leaves}
	if !Resolvable(t, completeLevels) {
		return sol, k, false, nil // trivially undetermined; skip elimination entirely
	}
	// Ancestor chains: O(k) pointer hops per level, in place of the old
	// per-node k-length coefficient vectors (O(levels·k²) words).
	sol.anc = make([][]*Node, completeLevels+1)
	sol.anc[completeLevels] = leaves
	for l := completeLevels - 1; l >= 0; l-- {
		a := make([]*Node, k)
		up := sol.anc[l+1]
		for i := range a {
			a[i] = up[i].Parent
		}
		sol.anc[l] = a
	}
	sol.cols = make([]map[*Node]cols, completeLevels+1)
	sol.row = getVec(k)
	return sol, k, true, nil
}

func solve(t *Tree, completeLevels int) (*solution, error) {
	sol, k, resolvable, err := prepSolution(t, completeLevels)
	if err != nil || !resolvable {
		return sol, err
	}

	// Collect the homogeneous balance system and reduce it incrementally.
	// On a well-formed history tree the truth is a nonzero null vector, so
	// the rank cannot exceed k-1 and we stop as soon as it is reached; on
	// an inconsistent input (levels wrongly assumed complete) the rank may
	// hit k, which we report as undetermined.
	rref := newRREF(k)
collect:
	for l := 0; l < completeLevels; l++ {
		for _, pair := range balancePairs(t, l) {
			if !sol.fillRow(pair) {
				continue
			}
			rref.addInts(sol.row)
			if rref.rank >= k-1 {
				break collect
			}
		}
	}
	if rref.rank != k-1 {
		sol.release()
		return sol, nil // not (or over-) determined
	}
	sol.ray = rref.nullVector()
	// The early stop above skips the remaining equations; verify the
	// candidate ray against every balance pair so that an inconsistent
	// system (levels wrongly assumed complete) is reported as undetermined
	// instead of producing a bogus ray. On a genuine history tree the true
	// cardinalities span the null space, so this verification always
	// passes.
	for l := 0; l < completeLevels; l++ {
		for _, pair := range balancePairs(t, l) {
			if !sol.balanced(pair) {
				sol.release()
				return &solution{}, nil
			}
		}
	}
	// Orient the ray positively: the truth is strictly positive on every
	// leaf (complete-level classes are nonempty). Mixed signs mean the
	// system pinned down a ray that cannot be a cardinality vector; treat
	// that as undetermined rather than wrong.
	if !orientPositive(sol.ray) {
		sol.release()
		return &solution{}, nil
	}
	sol.known = true
	return sol, nil
}

// nodePair is an unordered pair of same-level nodes linked by at least one
// red edge through the next level.
type nodePair struct {
	u, w *Node
}

// balancePairs enumerates the distinct pairs {u, w} of level-l nodes, u≠w,
// such that some child of one has a red edge from the other. Results are
// memoized on the tree and invalidated by any structural mutation, so the
// repeated enumerations of the solve paths (collect, battery replay,
// verification, and replayed from-scratch calls on a quiescent tree) pay
// for each level once. Callers must not retain the slice across mutations.
func balancePairs(t *Tree, l int) []nodePair {
	if t.pairsMut != t.mut {
		t.pairsLevel = t.pairsLevel[:0]
		t.pairsMut = t.mut
	}
	for len(t.pairsLevel) <= l {
		t.pairsLevel = append(t.pairsLevel, nil)
	}
	if p := t.pairsLevel[l]; p != nil {
		return p
	}
	p := computeBalancePairs(t, l)
	if p == nil {
		p = []nodePair{}
	}
	t.pairsLevel[l] = p
	return p
}

func computeBalancePairs(t *Tree, l int) []nodePair {
	seen := make(map[[2]int]bool)
	var out []nodePair
	for _, c := range t.Level(l + 1) {
		w := c.Parent
		for _, e := range c.Red {
			u := e.Src
			if u == w {
				continue
			}
			key := [2]int{u.ID, w.ID}
			if key[0] > key[1] {
				key[0], key[1] = key[1], key[0]
			}
			if !seen[key] {
				seen[key] = true
				out = append(out, nodePair{u: u, w: w})
			}
		}
	}
	return out
}

// rref maintains a reduced row-echelon basis of the row space, supporting
// incremental row insertion and null-vector extraction. Row cells are
// flat-backed (one allocation per row) and the multiply scratches are
// reused across calls instead of allocating a big.Rat per cell.
type rref struct {
	cols  int
	rows  [][]*big.Rat // reduced rows, each with leading coefficient 1
	pivot []int        // pivot column of each row
	rank  int
	has   []bool // has[c] = some row pivots at column c

	tmp, factor big.Rat // scratch
}

func newRREF(cols int) *rref {
	return &rref{cols: cols, has: make([]bool, cols)}
}

// addInts converts an integer row to rationals and adds it; the input is
// not retained.
func (r *rref) addInts(ints []int64) {
	backing := make([]big.Rat, r.cols)
	row := make([]*big.Rat, r.cols)
	for i := range row {
		row[i] = &backing[i]
		if ints[i] != 0 {
			row[i].SetInt64(ints[i])
		}
	}
	r.add(row)
}

// add reduces row against the basis and inserts it if independent. The row
// is consumed.
func (r *rref) add(row []*big.Rat) {
	for i, br := range r.rows {
		p := r.pivot[i]
		if row[p].Sign() == 0 {
			continue
		}
		r.factor.Set(row[p])
		for c := 0; c < r.cols; c++ {
			if br[c].Sign() == 0 {
				continue
			}
			r.tmp.Mul(&r.factor, br[c])
			row[c].Sub(row[c], &r.tmp)
		}
	}
	p := -1
	for c := 0; c < r.cols; c++ {
		if row[c].Sign() != 0 {
			p = c
			break
		}
	}
	if p < 0 {
		return // dependent
	}
	r.factor.Inv(row[p])
	for c := p; c < r.cols; c++ {
		row[c].Mul(row[c], &r.factor)
	}
	// Back-eliminate the new pivot from existing rows.
	for _, br := range r.rows {
		if br[p].Sign() == 0 {
			continue
		}
		r.factor.Set(br[p])
		for c := 0; c < r.cols; c++ {
			if row[c].Sign() == 0 {
				continue
			}
			r.tmp.Mul(&r.factor, row[c])
			br[c].Sub(br[c], &r.tmp)
		}
	}
	r.rows = append(r.rows, row)
	r.pivot = append(r.pivot, p)
	r.has[p] = true
	r.rank++
}

// nullVector returns a nonzero vector of the (one-dimensional) null space.
// It must only be called when rank == cols-1.
func (r *rref) nullVector() []*big.Rat {
	free := -1
	for c := 0; c < r.cols; c++ {
		if !r.has[c] {
			free = c
			break
		}
	}
	out := make([]*big.Rat, r.cols)
	for c := range out {
		out[c] = new(big.Rat)
	}
	out[free].SetInt64(1)
	for i, row := range r.rows {
		out[r.pivot[i]].Neg(row[free])
	}
	return out
}

// leaderNodes returns the level-0 nodes whose input has the leader flag.
func leaderNodes(t *Tree) []*Node {
	var out []*Node
	for _, v := range t.Level(0) {
		if v.Input.Leader {
			out = append(out, v)
		}
	}
	return out
}

// ratInt converts an exact rational to int if it is integral.
func ratInt(r *big.Rat) (int, bool) {
	if !r.IsInt() {
		return 0, false
	}
	num := r.Num()
	if !num.IsInt64() {
		return 0, false
	}
	return int(num.Int64()), true
}

// lcmBig returns lcm(a, b) for positive big ints.
func lcmBig(a, b *big.Int) *big.Int {
	g := new(big.Int).GCD(nil, nil, a, b)
	out := new(big.Int).Div(a, g)
	return out.Mul(out, b)
}
