package historytree

import (
	"fmt"
	"sort"
	"strings"
)

// CanonicalForm returns a string that identifies the tree up to
// isomorphism of history trees (node IDs are ignored except for the level-0
// input labels, which are structural).
//
// The form is computed by exact level-by-level color refinement: the root
// gets a fixed color; a level-0 node's color is its input; a deeper node's
// color is the pair (parent color, sorted multiset of (red-source color,
// multiplicity)). Because a history-tree node is fully determined by its
// parent and its red edges into the previous level, two trees are
// isomorphic exactly when the per-level multisets of colors coincide, which
// is what the returned string encodes. Colors are re-compressed to short
// canonical tokens after each level so the form stays linear in tree size.
func CanonicalForm(t *Tree) string {
	colors := map[*Node]string{t.Root(): "r"}
	var b strings.Builder
	for l := 0; l <= t.Depth(); l++ {
		level := t.Level(l)
		names := make(map[*Node]string, len(level))
		for _, v := range level {
			if l == 0 {
				names[v] = fmt.Sprintf("(%s|in=%s)", colors[v.Parent], v.Input)
				continue
			}
			reds := make([]string, 0, len(v.Red))
			for _, e := range v.Red {
				reds = append(reds, fmt.Sprintf("%s*%d", colors[e.Src], e.Mult))
			}
			sort.Strings(reds)
			names[v] = fmt.Sprintf("(%s|%s)", colors[v.Parent], strings.Join(reds, ","))
		}

		// Emit the per-level multiset of long names, then compress each
		// distinct name to a canonical short token for the next level.
		sorted := make([]string, 0, len(level))
		for _, v := range level {
			sorted = append(sorted, names[v])
		}
		sort.Strings(sorted)
		fmt.Fprintf(&b, "L%d:%s\n", l, strings.Join(sorted, " "))

		token := make(map[string]string, len(sorted))
		rank := 0
		for _, name := range sorted {
			if _, ok := token[name]; !ok {
				token[name] = fmt.Sprintf("c%d.%d", l, rank)
				rank++
			}
		}
		for _, v := range level {
			colors[v] = token[names[v]]
		}
	}
	return b.String()
}

// Isomorphic reports whether two history trees are isomorphic (ignoring
// node IDs, respecting level-0 input labels and all multiplicities).
func Isomorphic(a, b *Tree) bool {
	return CanonicalForm(a) == CanonicalForm(b)
}
