package historytree

import (
	"bytes"
	"slices"

	"anondyn/internal/ints"
)

// byteSpan addresses one substring of a scratch buffer by offsets, so
// builders can grow the buffer (invalidating pointers but not offsets)
// while names are under construction.
type byteSpan struct{ start, end int32 }

// CanonicalForm returns a string that identifies the tree up to
// isomorphism of history trees (node IDs are ignored except for the level-0
// input labels, which are structural).
//
// The form is computed by exact level-by-level color refinement: the root
// gets a fixed color; a level-0 node's color is its input; a deeper node's
// color is the pair (parent color, sorted multiset of (red-source color,
// multiplicity)). Because a history-tree node is fully determined by its
// parent and its red edges into the previous level, two trees are
// isomorphic exactly when the per-level multisets of colors coincide, which
// is what the returned string encodes. Colors are re-compressed to short
// canonical tokens after each level so the form stays linear in tree size.
//
// The output format is a public identity check (equivalence tests compare
// it byte-for-byte across implementations), so the refinement runs on
// integer color indices with token text rendered into reused byte buffers:
// the string is identical to the seed's map[string]-based construction,
// without its per-node string churn.
func CanonicalForm(t *Tree) string {
	// colorIdx[v] is the rank of v's color within its own level; tokens
	// holds the rendered token text of the previous level's colors, indexed
	// by rank. The root is the sole color of the pseudo-level -1.
	colorIdx := make(map[*Node]int32, t.NumNodes())
	colorIdx[t.Root()] = 0
	tokens := [][]byte{[]byte("r")}

	var (
		out      []byte
		nameBuf  []byte     // concatenated names of the current level
		spans    []byteSpan // per-node name extents in nameBuf
		redBuf   []byte     // rendered red sub-strings of one node
		redSpans []byteSpan
		order    []int // node indices sorted by name
		ranks    []int32
		// Token text double buffer: level l's tokens are read while level
		// l+1's are rendered, so the two levels alternate backing buffers.
		tokenBufs [2][]byte
	)
	name := func(i int) []byte { return nameBuf[spans[i].start:spans[i].end] }

	for l := 0; l <= t.Depth(); l++ {
		level := t.Level(l)
		nameBuf = nameBuf[:0]
		spans = spans[:0]
		for _, v := range level {
			start := int32(len(nameBuf))
			nameBuf = append(nameBuf, '(')
			nameBuf = append(nameBuf, tokens[colorIdx[v.Parent]]...)
			if l == 0 {
				nameBuf = append(nameBuf, "|in="...)
				nameBuf = v.Input.appendText(nameBuf)
			} else {
				nameBuf = append(nameBuf, '|')
				redBuf = redBuf[:0]
				redSpans = redSpans[:0]
				for _, e := range v.Red {
					rs := int32(len(redBuf))
					redBuf = append(redBuf, tokens[colorIdx[e.Src]]...)
					redBuf = append(redBuf, '*')
					redBuf = ints.AppendInt(redBuf, e.Mult)
					redSpans = append(redSpans, byteSpan{rs, int32(len(redBuf))})
				}
				// Lexicographic on the rendered text, matching the seed's
				// sort.Strings over "token*mult" strings.
				slices.SortFunc(redSpans, func(a, b byteSpan) int {
					return bytes.Compare(redBuf[a.start:a.end], redBuf[b.start:b.end])
				})
				for i, sp := range redSpans {
					if i > 0 {
						nameBuf = append(nameBuf, ',')
					}
					nameBuf = append(nameBuf, redBuf[sp.start:sp.end]...)
				}
			}
			nameBuf = append(nameBuf, ')')
			spans = append(spans, byteSpan{start, int32(len(nameBuf))})
		}

		// Emit the per-level multiset of long names in sorted order.
		order = order[:0]
		for i := range level {
			order = append(order, i)
		}
		slices.SortFunc(order, func(a, b int) int { return bytes.Compare(name(a), name(b)) })
		out = append(out, 'L')
		out = ints.AppendInt(out, l)
		out = append(out, ':')
		for k, i := range order {
			if k > 0 {
				out = append(out, ' ')
			}
			out = append(out, name(i)...)
		}
		out = append(out, '\n')

		// Compress each distinct name to the canonical token c<level>.<rank>
		// for the next level, ranks assigned in sorted-name order.
		if cap(ranks) < len(level) {
			ranks = make([]int32, len(level))
		} else {
			ranks = ranks[:len(level)]
		}
		tokBuf := tokenBufs[l&1][:0]
		next := make([][]byte, 0, len(level))
		rank := int32(-1)
		for k, i := range order {
			if k == 0 || !bytes.Equal(name(i), name(order[k-1])) {
				rank++
				ts := len(tokBuf)
				tokBuf = append(tokBuf, 'c')
				tokBuf = ints.AppendInt(tokBuf, l)
				tokBuf = append(tokBuf, '.')
				tokBuf = ints.AppendInt(tokBuf, int(rank))
				next = append(next, tokBuf[ts:len(tokBuf):len(tokBuf)])
			}
			ranks[i] = rank
		}
		for i, v := range level {
			colorIdx[v] = ranks[i]
		}
		tokens = next
		tokenBufs[l&1] = tokBuf
	}
	return string(out)
}

// Isomorphic reports whether two history trees are isomorphic (ignoring
// node IDs, respecting level-0 input labels and all multiplicities).
func Isomorphic(a, b *Tree) bool {
	return CanonicalForm(a) == CanonicalForm(b)
}
