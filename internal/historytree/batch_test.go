package historytree

import (
	"testing"
	"testing/quick"

	"anondyn/internal/dynnet"
)

// batch_test.go pins the batched SoA refinement pass (batch.go) against the
// witness refiner (build.go refine) under the reference_test.go discipline:
// not just isomorphic trees but byte-identical CanonicalForm, identical node
// IDs (creation order), identical NodeOf assignments, and identical
// cardinalities.

// witnessBuild is Build driven by the witness refiner.
func witnessBuild(s dynnet.Schedule, inputs []Input, rounds int) (*Run, error) {
	return buildWith(s, inputs, rounds, newRefiner(s.N()).refine)
}

// requireSameRun asserts the two builds are indistinguishable in every
// public dimension: canonical form bytes, per-level node IDs, red-edge
// structure, process-to-node assignments, and cardinalities.
func requireSameRun(t *testing.T, got, want *Run) {
	t.Helper()
	if g, w := CanonicalForm(got.Tree), CanonicalForm(want.Tree); g != w {
		t.Fatalf("CanonicalForm mismatch:\n got %q\nwant %q", g, w)
	}
	requireSameLiveLevels(t, got.Tree, want.Tree, 0)
	if len(got.NodeOf) != len(want.NodeOf) {
		t.Fatalf("NodeOf rows: got %d, want %d", len(got.NodeOf), len(want.NodeOf))
	}
	for r := range got.NodeOf {
		for p := range got.NodeOf[r] {
			if g, w := got.NodeOf[r][p].ID, want.NodeOf[r][p].ID; g != w {
				t.Fatalf("NodeOf[%d][%d] = %d, want %d", r, p, g, w)
			}
		}
	}
	if len(got.Card) != len(want.Card) {
		t.Fatalf("Card size: got %d, want %d", len(got.Card), len(want.Card))
	}
	for id, c := range want.Card {
		if got.Card[id] != c {
			t.Fatalf("Card[%d] = %d, want %d", id, got.Card[id], c)
		}
	}
}

// requireSameLiveLevels compares the resident structure of two trees level
// by level from `from` up: node IDs in level order, parent IDs, and the red
// edge lists (source ID and multiplicity, insertion order included).
func requireSameLiveLevels(t *testing.T, got, want *Tree, from int) {
	t.Helper()
	if got.Depth() != want.Depth() {
		t.Fatalf("depth: got %d, want %d", got.Depth(), want.Depth())
	}
	for l := from; l <= got.Depth(); l++ {
		gl, wl := got.Level(l), want.Level(l)
		if len(gl) != len(wl) {
			t.Fatalf("level %d size: got %d, want %d", l, len(gl), len(wl))
		}
		for i := range gl {
			if gl[i].ID != wl[i].ID {
				t.Fatalf("level %d node %d: ID %d, want %d", l, i, gl[i].ID, wl[i].ID)
			}
			gp, wp := gl[i].Parent, wl[i].Parent
			if (gp == nil) != (wp == nil) || (gp != nil && gp.ID != wp.ID) {
				t.Fatalf("level %d node %d: parent mismatch", l, i)
			}
			if len(gl[i].Red) != len(wl[i].Red) {
				t.Fatalf("level %d node %d: %d red edges, want %d", l, i, len(gl[i].Red), len(wl[i].Red))
			}
			for j := range gl[i].Red {
				ge, we := gl[i].Red[j], wl[i].Red[j]
				if ge.Src.ID != we.Src.ID || ge.Mult != we.Mult {
					t.Fatalf("level %d node %d red %d: (%d,%d), want (%d,%d)",
						l, i, j, ge.Src.ID, ge.Mult, we.Src.ID, we.Mult)
				}
			}
		}
	}
}

// TestQuickBatchedMatchesWitness is the batched-vs-witness quick suite:
// random connected schedules, random inputs, byte-identical runs.
func TestQuickBatchedMatchesWitness(t *testing.T) {
	property := func(nRaw, roundsRaw, pRaw uint8, seed int64) bool {
		s, inputs, rounds := quickParams(nRaw, roundsRaw, pRaw, seed)
		got, err := Build(s, inputs, rounds)
		if err != nil {
			t.Logf("batched Build: %v", err)
			return false
		}
		want, err := witnessBuild(s, inputs, rounds)
		if err != nil {
			t.Logf("witness Build: %v", err)
			return false
		}
		if err := got.Tree.Validate(); err != nil {
			t.Logf("batched tree Validate: %v", err)
			return false
		}
		requireSameRun(t, got, want)
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestBatchedMatchesWitnessTopologies covers the structured schedules the
// quick suite's random generator never emits.
func TestBatchedMatchesWitnessTopologies(t *testing.T) {
	cases := []struct {
		name   string
		s      dynnet.Schedule
		rounds int
	}{
		{"static-path", dynnet.NewStatic(dynnet.Path(9)), 18},
		{"static-complete", dynnet.NewStatic(dynnet.Complete(12)), 10},
		{"static-cycle", dynnet.NewStatic(dynnet.Cycle(10)), 15},
		{"rotating-star", dynnet.NewRotatingStar(8), 16},
		{"single", dynnet.NewStatic(dynnet.Complete(1)), 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			n := tc.s.N()
			inputs := make([]Input, n)
			inputs[0].Leader = true
			for i := range inputs {
				inputs[i].Value = int64(i % 3)
			}
			got, err := Build(tc.s, inputs, tc.rounds)
			if err != nil {
				t.Fatal(err)
			}
			want, err := witnessBuild(tc.s, inputs, tc.rounds)
			if err != nil {
				t.Fatal(err)
			}
			requireSameRun(t, got, want)
		})
	}
}

// TestBatchedWideMultFallback drives multiplicities past the packed 32-bit
// representation: the batched pass must detect the overflow and delegate the
// round to the witness, still producing an identical run. Both guards are
// exercised — a single link beyond maxPackedMult, and moderate links whose
// per-span merge sum crosses 2^32.
func TestBatchedWideMultFallback(t *testing.T) {
	t.Run("single-link", func(t *testing.T) {
		g := dynnet.NewMultigraph(4)
		g.MustAddLink(0, 1, maxPackedMult+7)
		g.MustAddLink(1, 2, 3)
		g.MustAddLink(2, 3, 1)
		requireWideFallback(t, g)
	})
	t.Run("merge-sum", func(t *testing.T) {
		// Three parallel class-equal sources each below the single-link
		// bound, summing past 32 bits after the merge.
		g := dynnet.NewMultigraph(5)
		g.MustAddLink(0, 1, maxPackedMult-1)
		g.MustAddLink(0, 2, maxPackedMult-1)
		g.MustAddLink(0, 3, maxPackedMult-1)
		g.MustAddLink(0, 4, maxPackedMult-1)
		g.MustAddLink(1, 2, 1)
		g.MustAddLink(3, 4, 1)
		requireWideFallback(t, g)
	})
}

func requireWideFallback(t *testing.T, g *dynnet.Multigraph) {
	t.Helper()
	s := dynnet.NewStatic(g)
	inputs := make([]Input, g.N())
	inputs[0].Leader = true
	got, err := Build(s, inputs, 4)
	if err != nil {
		t.Fatal(err)
	}
	want, err := witnessBuild(s, inputs, 4)
	if err != nil {
		t.Fatal(err)
	}
	requireSameRun(t, got, want)
}

// TestBatchedRefineCompactCompose is the compaction×batched regression:
// refine 12 rounds batched, compact at currentLevel−4 (the core layer's
// compactLag), keep refining on the compacted tree, and require the live
// region to match a witness-driven tree put through the identical sequence.
func TestBatchedRefineCompactCompose(t *testing.T) {
	const (
		n          = 10
		preRounds  = 12
		postRounds = 6
		compactLag = 4
	)
	s := dynnet.NewRandomConnected(n, 0.35, 17)
	inputs := make([]Input, n)
	inputs[0].Leader = true

	type driver struct {
		tree   *Tree
		cur    []*Node
		nextID int
		card   map[int]int
		refine refineFunc
	}
	start := func(refine refineFunc) *driver {
		d := &driver{tree: New(), card: map[int]int{RootID: n}, refine: refine}
		level0 := make(map[Input]*Node)
		d.cur = make([]*Node, n)
		for p := 0; p < n; p++ {
			node, ok := level0[inputs[p]]
			if !ok {
				var err error
				node, err = d.tree.AddChild(d.nextID, d.tree.Root(), inputs[p])
				if err != nil {
					t.Fatal(err)
				}
				d.nextID++
				level0[inputs[p]] = node
			}
			d.card[node.ID]++
			d.cur[p] = node
		}
		return d
	}
	step := func(d *driver, round int) {
		next, err := d.refine(d.tree, s.Graph(round), d.cur, &d.nextID, d.card)
		if err != nil {
			t.Fatal(err)
		}
		d.cur = next
	}

	batched := start(newBatchRefiner(n).refine)
	witness := start(newRefiner(n).refine)
	for r := 1; r <= preRounds; r++ {
		step(batched, r)
		step(witness, r)
	}
	keep := preRounds - compactLag
	if got, want := batched.tree.CompactLevels(keep), witness.tree.CompactLevels(keep); got != want {
		t.Fatalf("CompactLevels freed %d nodes batched, %d witness", got, want)
	}
	for r := preRounds + 1; r <= preRounds+postRounds; r++ {
		step(batched, r)
		step(witness, r)
	}
	// No Validate here: Validate does not model trees that keep growing
	// after CompactLevels (the witness fails it identically). Structural
	// equality with the witness-driven tree is the assertion.
	if got, want := batched.tree.CompactedLevels(), witness.tree.CompactedLevels(); got != want {
		t.Fatalf("CompactedLevels: got %d, want %d", got, want)
	}
	requireSameLiveLevels(t, batched.tree, witness.tree, batched.tree.CompactedLevels())
	for id, c := range witness.card {
		if batched.card[id] != c {
			t.Fatalf("card[%d] = %d, want %d", id, batched.card[id], c)
		}
	}
	for p := range batched.cur {
		if batched.cur[p].ID != witness.cur[p].ID {
			t.Fatalf("process %d on node %d, want %d", p, batched.cur[p].ID, witness.cur[p].ID)
		}
	}
}

// TestBatchedGroupKeysCoverLevel checks the interned group keys the sharing
// layer consumes: after a refine, gid must be a dense first-occurrence
// numbering whose fibers are exactly the new level's classes.
func TestBatchedGroupKeysCoverLevel(t *testing.T) {
	n := 9
	s := dynnet.NewRandomConnected(n, 0.4, 23)
	inputs := make([]Input, n)
	inputs[0].Leader = true
	run, err := Build(s, inputs, 0)
	if err != nil {
		t.Fatal(err)
	}
	cur := run.NodeOf[0]
	br := newBatchRefiner(n)
	nextID := len(run.Tree.Level(0))
	next, err := br.refine(run.Tree, s.Graph(1), cur, &nextID, run.Card)
	if err != nil {
		t.Fatal(err)
	}
	seen := -1
	for p := 0; p < n; p++ {
		k := int(br.gid[p])
		if k > seen+1 {
			t.Fatalf("group keys not first-occurrence dense: gid[%d]=%d after max %d", p, k, seen)
		}
		if k == seen+1 {
			seen = k
		}
		if br.groupNode[k] != next[p] {
			t.Fatalf("gid[%d] maps to node %d, process assigned %d", p, br.groupNode[k].ID, next[p].ID)
		}
	}
	if seen+1 != len(run.Tree.Level(1)) {
		t.Fatalf("%d groups for a level of %d classes", seen+1, len(run.Tree.Level(1)))
	}
}
