package historytree

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"anondyn/internal/dynnet"
	"anondyn/internal/ints"
)

// This file pins the arena/interning rewrite of the history-tree layer
// against the original pointer/map/string implementation: refCanonicalForm
// and refRefine are verbatim ports of the seed's CanonicalForm and refine
// (maps, fmt.Sprintf signatures, strings.Builder), kept here as executable
// references. CanonicalForm's output is a public identity check, so the
// property tests require byte equality, not mere isomorphism.

// refCanonicalForm is the seed's map/string-based CanonicalForm.
func refCanonicalForm(t *Tree) string {
	colors := map[*Node]string{t.Root(): "r"}
	var b strings.Builder
	for l := 0; l <= t.Depth(); l++ {
		level := t.Level(l)
		names := make(map[*Node]string, len(level))
		for _, v := range level {
			if l == 0 {
				names[v] = fmt.Sprintf("(%s|in=%s)", colors[v.Parent], v.Input)
				continue
			}
			reds := make([]string, 0, len(v.Red))
			for _, e := range v.Red {
				reds = append(reds, fmt.Sprintf("%s*%d", colors[e.Src], e.Mult))
			}
			sort.Strings(reds)
			names[v] = fmt.Sprintf("(%s|%s)", colors[v.Parent], strings.Join(reds, ","))
		}

		sorted := make([]string, 0, len(level))
		for _, v := range level {
			sorted = append(sorted, names[v])
		}
		sort.Strings(sorted)
		fmt.Fprintf(&b, "L%d:%s\n", l, strings.Join(sorted, " "))

		token := make(map[string]string, len(sorted))
		rank := 0
		for _, name := range sorted {
			if _, ok := token[name]; !ok {
				token[name] = fmt.Sprintf("c%d.%d", l, rank)
				rank++
			}
		}
		for _, v := range level {
			colors[v] = token[names[v]]
		}
	}
	return b.String()
}

// refSignature is the seed's string serialization of an observation map.
func refSignature(obs map[int]int) string {
	keys := ints.SortedKeys(obs)
	b := make([]byte, 0, len(keys)*8)
	for _, k := range keys {
		b = append(b, fmt.Sprintf("%d:%d;", k, obs[k])...)
	}
	return string(b)
}

// refRefine is the seed's refine: fresh observation maps per process per
// round, grouping keyed by (parent ID, string signature).
func refRefine(t *Tree, g *dynnet.Multigraph, cur []*Node, nextID *int, card map[int]int) ([]*Node, error) {
	n := len(cur)
	obs := make([]map[int]int, n)
	for p := 0; p < n; p++ {
		obs[p] = make(map[int]int)
	}
	for _, l := range g.CanonicalLinks() {
		if l.U == l.V {
			obs[l.U][cur[l.U].ID] += l.Mult
			continue
		}
		obs[l.U][cur[l.V].ID] += l.Mult
		obs[l.V][cur[l.U].ID] += l.Mult
	}

	type key struct {
		parent int
		sig    string
	}
	groups := make(map[key]*Node)
	next := make([]*Node, n)
	for p := 0; p < n; p++ {
		k := key{parent: cur[p].ID, sig: refSignature(obs[p])}
		node, ok := groups[k]
		if !ok {
			var err error
			node, err = t.AddChild(*nextID, cur[p], Input{})
			if err != nil {
				return nil, err
			}
			*nextID++
			for _, srcID := range ints.SortedKeys(obs[p]) {
				if err := t.AddRed(node, t.NodeByID(srcID), obs[p][srcID]); err != nil {
					return nil, err
				}
			}
			groups[k] = node
		}
		card[node.ID]++
		next[p] = node
	}
	return next, nil
}

// refBuildTree is the seed's Build reduced to the tree it constructs.
func refBuildTree(s dynnet.Schedule, inputs []Input, rounds int) (*Tree, error) {
	n := s.N()
	t := New()
	nextID := 0
	card := map[int]int{RootID: n}
	level0 := make(map[Input]*Node)
	cur := make([]*Node, n)
	for p := 0; p < n; p++ {
		node, ok := level0[inputs[p]]
		if !ok {
			var err error
			node, err = t.AddChild(nextID, t.Root(), inputs[p])
			if err != nil {
				return nil, err
			}
			nextID++
			level0[inputs[p]] = node
		}
		card[node.ID]++
		cur[p] = node
	}
	for round := 1; round <= rounds; round++ {
		next, err := refRefine(t, s.Graph(round), cur, &nextID, card)
		if err != nil {
			return nil, err
		}
		cur = next
	}
	return t, nil
}

// quickParams decodes fuzz inputs into a schedule/inputs/rounds triple with
// bounded sizes.
func quickParams(nRaw, roundsRaw uint8, pRaw uint8, seed int64) (dynnet.Schedule, []Input, int) {
	n := 1 + int(nRaw%10)
	rounds := int(roundsRaw % 13)
	p := 0.1 + 0.8*float64(pRaw)/255
	rng := rand.New(rand.NewSource(seed))
	inputs := make([]Input, n)
	for i := range inputs {
		inputs[i] = Input{Leader: rng.Intn(4) == 0, Value: int64(rng.Intn(3))}
	}
	return dynnet.NewRandomConnected(n, p, seed), inputs, rounds
}

// TestQuickArenaBuildMatchesReference drives the arena-backed Build and the
// seed reference over random schedules and requires byte-identical
// CanonicalForm strings (under both the new and the reference form
// computation) and clean Validate on both trees.
func TestQuickArenaBuildMatchesReference(t *testing.T) {
	property := func(nRaw, roundsRaw, pRaw uint8, seed int64) bool {
		s, inputs, rounds := quickParams(nRaw, roundsRaw, pRaw, seed)
		run, err := Build(s, inputs, rounds)
		if err != nil {
			t.Logf("Build: %v", err)
			return false
		}
		ref, err := refBuildTree(s, inputs, rounds)
		if err != nil {
			t.Logf("refBuildTree: %v", err)
			return false
		}
		if err := run.Tree.Validate(); err != nil {
			t.Logf("arena tree Validate: %v", err)
			return false
		}
		if err := ref.Validate(); err != nil {
			t.Logf("reference tree Validate: %v", err)
			return false
		}
		got, want := CanonicalForm(run.Tree), CanonicalForm(ref)
		if got != want {
			t.Logf("CanonicalForm mismatch:\n got %q\nwant %q", got, want)
			return false
		}
		// The emitted format is a public identity check: the integer-token
		// rewrite must reproduce the seed's string byte for byte.
		if refForm := refCanonicalForm(run.Tree); got != refForm {
			t.Logf("CanonicalForm format drift:\n got %q\n ref %q", got, refForm)
			return false
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestCloneAndTruncatePreserveReferenceEquality exercises the arena tree's
// structural operations against the reference form after mutation.
func TestCloneAndTruncatePreserveReferenceEquality(t *testing.T) {
	s := dynnet.NewRandomConnected(6, 0.4, 11)
	inputs := make([]Input, 6)
	inputs[0].Leader = true
	run, err := Build(s, inputs, 9)
	if err != nil {
		t.Fatal(err)
	}
	clone := run.Tree.Clone()
	if got, want := CanonicalForm(clone), CanonicalForm(run.Tree); got != want {
		t.Fatalf("clone form differs:\n got %q\nwant %q", got, want)
	}
	run.Tree.TruncateLevels(5)
	if err := run.Tree.Validate(); err != nil {
		t.Fatalf("Validate after truncate: %v", err)
	}
	truncRef, err := refBuildTree(s, inputs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := CanonicalForm(run.Tree), CanonicalForm(truncRef); got != want {
		t.Fatalf("truncated form differs from 4-round reference:\n got %q\nwant %q", got, want)
	}
	if got, want := CanonicalForm(clone), refCanonicalForm(clone); got != want {
		t.Fatalf("clone form drifts from reference computation:\n got %q\nwant %q", got, want)
	}
}

// TestRunCardMatchesReference cross-checks the cardinalities Build reports
// against an independent count from NodeOf.
func TestRunCardMatchesReference(t *testing.T) {
	s := dynnet.NewRandomConnected(7, 0.35, 3)
	inputs := make([]Input, 7)
	inputs[0].Leader = true
	run, err := Build(s, inputs, 8)
	if err != nil {
		t.Fatal(err)
	}
	last := run.NodeOf[len(run.NodeOf)-1]
	counts := map[int]int{}
	for _, v := range last {
		counts[v.ID]++
	}
	for id, c := range counts {
		if run.Card[id] != c {
			t.Fatalf("Card[%d] = %d, want %d", id, run.Card[id], c)
		}
	}
	if !reflect.DeepEqual(ints.SortedKeys(counts), func() []int {
		var ids []int
		for _, v := range run.Tree.Level(run.Rounds) {
			ids = append(ids, v.ID)
		}
		sort.Ints(ids)
		return ids
	}()) {
		t.Fatalf("deepest level IDs do not match NodeOf occupancy")
	}
}
