package historytree

import (
	"testing"

	"anondyn/internal/dynnet"
)

// FuzzSolverArithmetic fuzzes the witness discipline of DESIGN.md decision
// 12: on an arbitrary (n, density, seed, leaderless) protocol tree, the
// multi-modular backend and the big.Int eliminator must agree — same
// errors, same known/unknown decision, and the same answer — at every
// complete-level prefix, through both the from-scratch and the incremental
// solve paths. Crashers land in testdata/fuzz/FuzzSolverArithmetic/ and
// are replayed by plain `go test` once checked in.
func FuzzSolverArithmetic(f *testing.F) {
	f.Add(byte(0), uint16(0), int64(1), false)
	f.Add(byte(4), uint16(26000), int64(42), false)
	f.Add(byte(8), uint16(65535), int64(-3), true)
	f.Add(byte(2), uint16(300), int64(7), true)
	f.Fuzz(func(t *testing.T, nRaw byte, pRaw uint16, seed int64, leaderless bool) {
		n := 2 + int(nRaw)%9 // [2, 10]: the per-input level sweep is O(n^4)
		p := float64(pRaw) / 65535
		s := dynnet.NewRandomConnected(n, p, seed)
		inputs := make([]Input, n)
		if leaderless {
			for i := range inputs {
				inputs[i].Value = int64(i % 3)
			}
		} else {
			inputs[0].Leader = true
		}
		run, err := Build(s, inputs, 3*n)
		if err != nil {
			t.Fatal(err)
		}
		incMod := NewSolverWith(ArithModular)
		incBig := NewSolverWith(ArithBig)
		for l := 0; l <= run.Rounds; l++ {
			if leaderless {
				exact, err1 := Frequencies(run.Tree, l)
				mod, err2 := FrequenciesModular(run.Tree, l)
				if (err1 == nil) != (err2 == nil) {
					t.Fatalf("level %d: error divergence: big %v, modular %v", l, err1, err2)
				}
				if err1 == nil && !sameFreq(exact, mod) {
					t.Fatalf("level %d: modular %+v != big %+v", l, mod, exact)
				}
				im, err3 := incMod.FrequenciesAt(run.Tree, l)
				ib, err4 := incBig.FrequenciesAt(run.Tree, l)
				if (err3 == nil) != (err4 == nil) {
					t.Fatalf("level %d: incremental error divergence: big %v, modular %v", l, err4, err3)
				}
				if err3 == nil && !sameFreq(ib, im) {
					t.Fatalf("level %d: incremental modular %+v != big %+v", l, im, ib)
				}
				continue
			}
			exact, err1 := Count(run.Tree, l)
			mod, err2 := CountModular(run.Tree, l)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("level %d: error divergence: big %v, modular %v", l, err1, err2)
			}
			if err1 == nil && !sameCount(exact, mod) {
				t.Fatalf("level %d: modular %+v != big %+v", l, mod, exact)
			}
			im, err3 := incMod.CountAt(run.Tree, l)
			ib, err4 := incBig.CountAt(run.Tree, l)
			if (err3 == nil) != (err4 == nil) {
				t.Fatalf("level %d: incremental error divergence: big %v, modular %v", l, err4, err3)
			}
			if err3 == nil && !sameCount(ib, im) {
				t.Fatalf("level %d: incremental modular %+v != big %+v", l, im, ib)
			}
		}
	})
}
