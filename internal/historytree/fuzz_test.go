package historytree

import (
	"testing"

	"anondyn/internal/dynnet"
)

// FuzzSolverArithmetic fuzzes the witness discipline of DESIGN.md decision
// 12: on an arbitrary (n, density, seed, leaderless) protocol tree, the
// multi-modular backend and the big.Int eliminator must agree — same
// errors, same known/unknown decision, and the same answer — at every
// complete-level prefix, through both the from-scratch and the incremental
// solve paths. Crashers land in testdata/fuzz/FuzzSolverArithmetic/ and
// are replayed by plain `go test` once checked in.
// FuzzBatchedRefine fuzzes the batched SoA refinement pass against the
// witness refiner: on an arbitrary random connected schedule with arbitrary
// inputs, the two builds must produce byte-identical canonical forms,
// identical node IDs level by level, and identical cardinalities. The mult
// multiplier stretches link multiplicities toward (and past) the packed
// 32-bit representation so the wide-multiplicity fallback is in scope.
// Crashers land in testdata/fuzz/FuzzBatchedRefine/.
func FuzzBatchedRefine(f *testing.F) {
	f.Add(uint8(0), uint8(0), uint8(0), int64(1), uint32(1))
	f.Add(uint8(7), uint8(9), uint8(128), int64(42), uint32(1))
	f.Add(uint8(9), uint8(12), uint8(255), int64(-11), uint32(1<<20))
	f.Add(uint8(4), uint8(6), uint8(60), int64(7), uint32(0))
	f.Fuzz(func(t *testing.T, nRaw, roundsRaw, pRaw uint8, seed int64, multScale uint32) {
		base, inputs, rounds := quickParams(nRaw, roundsRaw, pRaw, seed)
		scale := 1 + int(multScale%(maxPackedMult+2))
		s := dynnet.NewFunc(base.N(), func(r int) *dynnet.Multigraph {
			g := base.Graph(r)
			if scale == 1 {
				return g
			}
			scaled := dynnet.NewMultigraph(g.N())
			for _, l := range g.Links() {
				scaled.MustAddLink(l.U, l.V, l.Mult*scale)
			}
			return scaled
		})
		got, err := Build(s, inputs, rounds)
		if err != nil {
			t.Fatalf("batched Build: %v", err)
		}
		want, err := witnessBuild(s, inputs, rounds)
		if err != nil {
			t.Fatalf("witness Build: %v", err)
		}
		if err := got.Tree.Validate(); err != nil {
			t.Fatalf("batched tree Validate: %v", err)
		}
		requireSameRun(t, got, want)
	})
}

func FuzzSolverArithmetic(f *testing.F) {
	f.Add(byte(0), uint16(0), int64(1), false)
	f.Add(byte(4), uint16(26000), int64(42), false)
	f.Add(byte(8), uint16(65535), int64(-3), true)
	f.Add(byte(2), uint16(300), int64(7), true)
	f.Fuzz(func(t *testing.T, nRaw byte, pRaw uint16, seed int64, leaderless bool) {
		n := 2 + int(nRaw)%9 // [2, 10]: the per-input level sweep is O(n^4)
		p := float64(pRaw) / 65535
		s := dynnet.NewRandomConnected(n, p, seed)
		inputs := make([]Input, n)
		if leaderless {
			for i := range inputs {
				inputs[i].Value = int64(i % 3)
			}
		} else {
			inputs[0].Leader = true
		}
		run, err := Build(s, inputs, 3*n)
		if err != nil {
			t.Fatal(err)
		}
		incMod := NewSolverWith(ArithModular)
		incBig := NewSolverWith(ArithBig)
		for l := 0; l <= run.Rounds; l++ {
			if leaderless {
				exact, err1 := Frequencies(run.Tree, l)
				mod, err2 := FrequenciesModular(run.Tree, l)
				if (err1 == nil) != (err2 == nil) {
					t.Fatalf("level %d: error divergence: big %v, modular %v", l, err1, err2)
				}
				if err1 == nil && !sameFreq(exact, mod) {
					t.Fatalf("level %d: modular %+v != big %+v", l, mod, exact)
				}
				im, err3 := incMod.FrequenciesAt(run.Tree, l)
				ib, err4 := incBig.FrequenciesAt(run.Tree, l)
				if (err3 == nil) != (err4 == nil) {
					t.Fatalf("level %d: incremental error divergence: big %v, modular %v", l, err4, err3)
				}
				if err3 == nil && !sameFreq(ib, im) {
					t.Fatalf("level %d: incremental modular %+v != big %+v", l, im, ib)
				}
				continue
			}
			exact, err1 := Count(run.Tree, l)
			mod, err2 := CountModular(run.Tree, l)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("level %d: error divergence: big %v, modular %v", l, err1, err2)
			}
			if err1 == nil && !sameCount(exact, mod) {
				t.Fatalf("level %d: modular %+v != big %+v", l, mod, exact)
			}
			im, err3 := incMod.CountAt(run.Tree, l)
			ib, err4 := incBig.CountAt(run.Tree, l)
			if (err3 == nil) != (err4 == nil) {
				t.Fatalf("level %d: incremental error divergence: big %v, modular %v", l, err4, err3)
			}
			if err3 == nil && !sameCount(ib, im) {
				t.Fatalf("level %d: incremental modular %+v != big %+v", l, im, ib)
			}
		}
	})
}
