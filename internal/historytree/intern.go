package historytree

import "slices"

// pair is one (source class ID, multiplicity) observation. Sorted pair
// slices replace the map[int]int + string-signature representation of
// observation multisets that the seed used for partition refinement: the
// canonical form of a multiset is its pair slice sorted by ID with equal
// IDs merged, compared directly instead of through a serialized string.
type pair struct {
	id   int
	mult int
}

// canonPairs sorts s by ID and merges duplicate IDs by summing their
// multiplicities, in place. It returns the (possibly shortened) slice.
func canonPairs(s []pair) []pair {
	if len(s) < 2 {
		return s
	}
	slices.SortFunc(s, func(a, b pair) int { return a.id - b.id })
	w := 0
	for r := 1; r < len(s); r++ {
		if s[r].id == s[w].id {
			s[w].mult += s[r].mult
		} else {
			w++
			s[w] = s[r]
		}
	}
	return s[:w+1]
}

// hashPairs is FNV-1a over (seed, pairs). Collisions are tolerated: every
// consumer keys a bucket table by the hash and compares the exact
// (seed, pairs) tuple within the bucket, so a collision costs one extra
// comparison, never a wrong merge.
func hashPairs(seed uint64, s []pair) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	h = (h ^ seed) * prime64
	for _, p := range s {
		h = (h ^ uint64(p.id)) * prime64
		h = (h ^ uint64(p.mult)) * prime64
	}
	return h
}

// groupSlot is one open-addressing slot of the refiner's group table: the
// parent class, the exact canonical observation (backing owned by
// refiner.keyArena), and the child node allocated for the group. A slot is
// live for the current round iff its generation matches the refiner's —
// bumping the generation empties the whole table in O(1), with no
// per-round clearing or bucket reallocation.
type groupSlot struct {
	gen    uint64
	hash   uint64
	parent *Node
	pairs  []pair
	node   *Node
}

// refiner holds the per-process scratch that refine reuses across rounds.
// The seed allocated n fresh observation maps plus one signature string per
// process every round; the refiner allocates only on first growth, leaving
// the returned level slice as refine's only steady-state allocation.
//
// Validity windows: obs[p] and the live table slots are valid only until
// the next refine call on the same refiner; keyArena backing may be
// abandoned by growth mid-round, which is safe because stored slots keep
// their old backing alive (stale slots pin at most one superseded backing
// array each until overwritten).
type refiner struct {
	obs      [][]pair    // per-process observations, reset each round
	slots    []groupSlot // power-of-two open-addressing group table
	gen      uint64      // current round's slot generation
	keyArena []pair      // backing for the pairs stored in slots
}

func newRefiner(n int) *refiner {
	// At most n groups per round; 4× slots keep the load factor ≤ 1/4 so
	// linear probes stay short even with clustered hashes.
	size := 4
	for size < 4*n {
		size <<= 1
	}
	return &refiner{
		obs:   make([][]pair, n),
		slots: make([]groupSlot, size),
	}
}

// lookup returns the slot holding (h, parent, obs) for the current round,
// or the empty slot where that group should be inserted.
func (r *refiner) lookup(h uint64, parent *Node, obs []pair) *groupSlot {
	mask := uint64(len(r.slots) - 1)
	for idx := h & mask; ; idx = (idx + 1) & mask {
		s := &r.slots[idx]
		if s.gen != r.gen {
			return s
		}
		if s.hash == h && s.parent == parent && pairsEqual(s.pairs, obs) {
			return s
		}
	}
}
