package historytree

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"anondyn/internal/dynnet"
)

// TestCountModularMatchesCountEveryLevel pins the witness discipline for
// the from-scratch path: the multi-modular solve must make the identical
// known/unknown decision and return the identical answer as the big.Int
// eliminator at every complete-level prefix of the same tree.
func TestCountModularMatchesCountEveryLevel(t *testing.T) {
	densities := []float64{0.15, 0.4, 0.8}
	for n := 2; n <= 12; n++ {
		for seed := int64(0); seed < 3; seed++ {
			s := dynnet.NewRandomConnected(n, densities[seed], seed+1)
			rounds := 3 * n
			run := buildTree(t, s, leaderInputs(n), rounds)
			for l := 0; l <= run.Rounds; l++ {
				exact, err := Count(run.Tree, l)
				if err != nil {
					t.Fatalf("n=%d seed=%d level=%d: Count: %v", n, seed, l, err)
				}
				mod, err := CountModular(run.Tree, l)
				if err != nil {
					t.Fatalf("n=%d seed=%d level=%d: CountModular: %v", n, seed, l, err)
				}
				if !sameCount(exact, mod) {
					t.Fatalf("n=%d seed=%d level=%d: modular %+v != exact %+v", n, seed, l, mod, exact)
				}
			}
		}
	}
}

// TestFrequenciesModularMatchesEveryLevel is the leaderless counterpart.
func TestFrequenciesModularMatchesEveryLevel(t *testing.T) {
	for n := 2; n <= 10; n++ {
		for seed := int64(0); seed < 2; seed++ {
			s := dynnet.NewRandomConnected(n, 0.4, 300+seed)
			inputs := make([]Input, n)
			for i := range inputs {
				inputs[i].Value = int64(i % 3)
			}
			rounds := 3 * n
			run := buildTree(t, s, inputs, rounds)
			for l := 0; l <= run.Rounds; l++ {
				exact, err := Frequencies(run.Tree, l)
				if err != nil {
					t.Fatalf("n=%d seed=%d level=%d: Frequencies: %v", n, seed, l, err)
				}
				mod, err := FrequenciesModular(run.Tree, l)
				if err != nil {
					t.Fatalf("n=%d seed=%d level=%d: FrequenciesModular: %v", n, seed, l, err)
				}
				if !sameFreq(exact, mod) {
					t.Fatalf("n=%d seed=%d level=%d: modular %+v != exact %+v", n, seed, l, mod, exact)
				}
			}
		}
	}
}

// TestModularQuickEquivalence is the satellite testing/quick property: on
// randomly built trees, the modular and big.Int backends agree on count,
// resolvability, and the level at which the answer first becomes known.
func TestModularQuickEquivalence(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(7))}
	prop := func(nRaw, seedRaw uint8, density float64) bool {
		n := 2 + int(nRaw)%10
		density = 0.1 + (density-float64(int(density)))*0.8
		if density < 0.1 || density > 0.9 {
			density = 0.3
		}
		s := dynnet.NewRandomConnected(n, density, int64(seedRaw)+1)
		run, err := Build(s, leaderInputs(n), 3*n)
		if err != nil {
			return false
		}
		for l := 0; l <= run.Rounds; l++ {
			exact, err1 := Count(run.Tree, l)
			mod, err2 := CountModular(run.Tree, l)
			if (err1 == nil) != (err2 == nil) || !sameCount(exact, mod) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestRatReconstructRoundTrip checks Wang reconstruction on exact
// fractions: n/d with |n|, d below the bound always comes back.
func TestRatReconstructRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	e := newModElim(1, 6) // just to force 6 primes into the pool
	_ = e
	for trial := 0; trial < 2000; trial++ {
		num := rng.Int63n(1<<20) - 1<<19
		den := rng.Int63n(1<<20-1) + 1
		acc, mod := new(big.Int), big.NewInt(1)
		t1, t2 := new(big.Int), new(big.Int)
		ok := true
		for i := 0; i < 6; i++ {
			mp := primeAt(i)
			d := mp.redInt64(den)
			if d == 0 {
				ok = false
				break
			}
			x := mp.mul(mp.redInt64(num), mp.inv(d))
			crtCombine(acc, mod, x, mp, t1, t2)
		}
		if !ok {
			continue
		}
		r, got := ratReconstruct(acc, mod, ratBound(mod))
		if !got {
			t.Fatalf("trial %d: reconstruction failed for %d/%d", trial, num, den)
		}
		want := big.NewRat(num, den)
		if r.Cmp(want) != 0 {
			t.Fatalf("trial %d: got %v want %v", trial, r, want)
		}
	}
}

// TestPrimePoolDeterministic pins the battery ordering: primes descend
// from 2^31−1 and are actually prime.
func TestPrimePoolDeterministic(t *testing.T) {
	if p := primeAt(0).p; p != 1<<31-1 {
		t.Fatalf("first battery prime = %d, want 2^31-1", p)
	}
	last := uint64(1 << 31)
	for i := 0; i < 64; i++ {
		p := primeAt(i).p
		if p >= last || p <= 1<<primeBits {
			t.Fatalf("prime %d = %d out of order or range (prev %d)", i, p, last)
		}
		if !isPrime32(p) {
			t.Fatalf("primeAt(%d) = %d is not prime", i, p)
		}
		last = p
	}
	for _, c := range []uint64{1<<31 - 1, 2147483629, 2, 3, 61} {
		if !isPrime32(c) {
			t.Fatalf("isPrime32(%d) = false, want true", c)
		}
	}
	for _, c := range []uint64{1, 4, 1<<31 - 3, 2147483647 * 2} {
		if isPrime32(c) {
			t.Fatalf("isPrime32(%d) = true, want false", c)
		}
	}
}

// TestSolverArithEquivalence runs the incremental solver under both
// arithmetic backends side by side on the same tree and requires identical
// results and known/unknown transitions at every level — the incremental
// face of the witness discipline.
func TestSolverArithEquivalence(t *testing.T) {
	densities := []float64{0.2, 0.45, 0.7}
	for n := 2; n <= 12; n++ {
		for seed := int64(0); seed < 3; seed++ {
			s := dynnet.NewRandomConnected(n, densities[seed], 40+seed)
			rounds := 3 * n
			run := buildTree(t, s, leaderInputs(n), rounds)
			mod := NewSolverWith(ArithModular)
			exact := NewSolverWith(ArithBig)
			for l := 0; l <= run.Rounds; l++ {
				rm, err := mod.CountAt(run.Tree, l)
				if err != nil {
					t.Fatalf("n=%d seed=%d level=%d: modular CountAt: %v", n, seed, l, err)
				}
				rb, err := exact.CountAt(run.Tree, l)
				if err != nil {
					t.Fatalf("n=%d seed=%d level=%d: big CountAt: %v", n, seed, l, err)
				}
				if !sameCount(rb, rm) {
					t.Fatalf("n=%d seed=%d level=%d: modular %+v != big %+v", n, seed, l, rm, rb)
				}
			}
			ms, bs := mod.Stats(), exact.Stats()
			if ms.Equations != bs.Equations || ms.LevelsConsumed != bs.LevelsConsumed {
				t.Fatalf("n=%d seed=%d: work divergence: modular %+v big %+v", n, seed, ms, bs)
			}
			if ms.WitnessFallbacks != 0 {
				t.Errorf("n=%d seed=%d: unexpected witness fallbacks: %+v", n, seed, ms)
			}
			if ms.PrimesUsed < 2 {
				t.Errorf("n=%d seed=%d: PrimesUsed = %d, want >= 2", n, seed, ms.PrimesUsed)
			}
			if bs.PrimesUsed != 0 || bs.CRTReconstructions != 0 {
				t.Errorf("n=%d seed=%d: big backend reported modular counters: %+v", n, seed, bs)
			}
		}
	}
}

// TestSolverModularTruncationRebuild pins reset behavior under the modular
// backend: after a truncation the solver rebuilds, keeps its adopted
// primes, and still matches the from-scratch answer.
func TestSolverModularTruncationRebuild(t *testing.T) {
	n := 8
	s := dynnet.NewRandomConnected(n, 0.4, 11)
	rounds := 3 * n
	run := buildTree(t, s, leaderInputs(n), rounds)
	solver := NewSolverWith(ArithModular)
	if _, err := solver.CountAt(run.Tree, run.Rounds); err != nil {
		t.Fatal(err)
	}
	primesBefore := solver.Stats().PrimesUsed
	run.Tree.TruncateLevels(run.Rounds / 2)
	for l := 0; l <= run.Tree.Depth(); l++ {
		ref, err := Count(run.Tree, l)
		if err != nil {
			t.Fatalf("level %d: Count: %v", l, err)
		}
		inc, err := solver.CountAt(run.Tree, l)
		if err != nil {
			t.Fatalf("level %d: CountAt: %v", l, err)
		}
		if !sameCount(ref, inc) {
			t.Fatalf("level %d after truncation: incremental %+v != reference %+v", l, inc, ref)
		}
	}
	st := solver.Stats()
	if st.Rebuilds == 0 {
		t.Errorf("expected a rebuild after truncation, stats %+v", st)
	}
	if st.PrimesUsed < primesBefore {
		t.Errorf("adopted primes shrank across rebuild: %d -> %d", primesBefore, st.PrimesUsed)
	}
}
