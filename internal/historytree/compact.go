package historytree

// History-level compaction (DESIGN.md decision 14). A counting run only
// ever reads a bounded window of its history tree: the protocol reads the
// last level or two (setUpNewLevel, updateVHT), the answer extraction reads
// level 0, and the incremental Solver consumes each level's balance
// equations exactly once — recording what a future battery replay needs in
// its own sparse skeleton (see Solver.replayInto). Once a level has been
// consumed it can never be re-read from the tree, so its nodes are dead
// weight: over a long leaderless run the tree retains O(rounds) nodes for
// an O(active view) working set.
//
// CompactLevels releases that weight. It freezes levels 1..keepFrom-1:
// their nodes leave the level and byID indexes, node-arena chunks that hold
// no surviving node are dropped, and the live nodes' edge slices are
// re-carved into fresh arenas so the old edge chunks free too. The root and
// level 0 always stay live (level-0 nodes carry the inputs the answer is
// phrased in, and the Solver holds pointers to them), as do all levels ≥
// keepFrom.
//
// A compacted tree supports the growth path (AddChild, AddRed on live
// levels), the incremental Solver, and the stats accessors — but not the
// whole-tree consumers: Clone, Validate, views, canonical forms, and the
// from-scratch Count/Frequencies all walk parent chains into the released
// region. The Solver therefore answers "unknown" instead of delegating to
// the from-scratch path when its prefix breaks over a compacted tree, and
// TruncateLevels panics on targets inside the compacted region (core turns
// a reset aimed there into a structured error first).

// CompactLevels releases all levels in 1..keepFrom-1, reclaiming their node
// and edge storage, and returns the number of nodes released. Levels ≥
// keepFrom, level 0, and the root are untouched. Calls that would release
// nothing new — keepFrom ≤ 2, a region already compacted, or keepFrom
// beyond the deepest level — are no-ops (beyond-depth requests clamp to
// keeping the deepest level live) and allocate nothing.
//
// The caller must guarantee the frozen levels can never be re-read: every
// consumer of their equations has consumed them (Solver.ConsumedLevel ≥
// keepFrom-1 covers the counting side) and no truncation will ever target
// them (no protocol reset can rewind into the region).
func (t *Tree) CompactLevels(keepFrom int) int {
	if keepFrom > t.Depth() {
		keepFrom = t.Depth()
	}
	if keepFrom-1 <= t.compacted || keepFrom < 2 {
		return 0
	}
	t.mut++

	// Unlink the frozen levels.
	released := 0
	for l := t.compacted + 1; l < keepFrom; l++ {
		idx := l + 1
		for _, v := range t.levels[idx] {
			t.byID[v.ID+1] = nil
			t.numNodes--
			released++
		}
		t.levels[idx] = nil
	}
	// The boundary level keeps its nodes but loses its links into the
	// frozen region; level 0 likewise loses its children.
	for _, v := range t.Level(keepFrom) {
		v.Parent = nil
		v.Red = nil
	}
	for _, v := range t.Level(0) {
		v.Children = nil
	}
	t.compacted = keepFrom - 1
	t.freedNodes += released

	// Drop node chunks with no surviving node. A node survives iff byID
	// still points at it (dead entries were nilled above; truncation nils
	// them too).
	kept := t.nodeArena[:0]
	for ci := range t.nodeArena {
		chunk := t.nodeArena[ci]
		live := false
		for i := range chunk {
			if idx := chunk[i].ID + 1; idx >= 0 && idx < len(t.byID) && t.byID[idx] == &chunk[i] {
				live = true
				break
			}
		}
		if live {
			kept = append(kept, chunk)
		}
	}
	t.nodeArena = kept

	// Re-carve every live node's edge slices into fresh arenas so the old
	// edge chunks — shared with the released nodes — free as well.
	var childArena [][]*Node
	var redArena [][]RedEdge
	recarve := func(v *Node) {
		if n := len(v.Children); n > 0 {
			s := carve(&childArena, n)
			v.Children = append(s, v.Children...)
		}
		if n := len(v.Red); n > 0 {
			s := carve(&redArena, n)
			v.Red = append(s, v.Red...)
		}
	}
	recarve(t.root)
	for _, v := range t.Level(0) {
		recarve(v)
	}
	for l := keepFrom; l <= t.Depth(); l++ {
		for _, v := range t.Level(l) {
			recarve(v)
		}
	}
	t.childArena = childArena
	t.redArena = redArena
	return released
}

// CompactedLevels returns the deepest level released by CompactLevels
// (0 when the tree has never been compacted): levels 1..CompactedLevels
// hold no nodes.
func (t *Tree) CompactedLevels() int { return t.compacted }

// PeakResidentNodes returns the high-water mark of resident nodes over the
// tree's lifetime. Without compaction it equals NumNodes plus whatever
// truncations removed; with compaction it measures how large the working
// set ever actually was — the number the O(active view) claim is about.
func (t *Tree) PeakResidentNodes() int { return t.peakNodes }

// CompactedNodes returns the total number of nodes released by
// CompactLevels over the tree's lifetime.
func (t *Tree) CompactedNodes() int { return t.freedNodes }
