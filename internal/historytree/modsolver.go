package historytree

import (
	"fmt"
	"math/big"
	"sync"
)

// Arith selects the exact-arithmetic backend of the counting solvers.
type Arith int

// Arithmetic backends. The zero value is the multi-modular backend, the
// default everywhere; the big.Int fraction-free eliminator is retained as
// the always-available exactness witness (the same discipline as
// engine.SchedulerConcurrent witnessing SchedulerSequential), and both
// must produce identical results on every input — pinned by the
// equivalence suite and FuzzSolverArithmetic.
const (
	// ArithModular solves over a battery of word-sized primes with CRT
	// recovery, certified under a Hadamard bound (DESIGN.md decision 12).
	ArithModular Arith = iota
	// ArithBig is the fraction-free big.Int elimination of PR 2.
	ArithBig
)

// String names the backend the way the cadn -arith flag spells it.
func (a Arith) String() string {
	if a == ArithBig {
		return "big"
	}
	return "modular"
}

// CountWith is Count under the selected arithmetic backend.
func CountWith(t *Tree, completeLevels int, a Arith) (CountResult, error) {
	if a == ArithBig {
		return Count(t, completeLevels)
	}
	return CountModular(t, completeLevels)
}

// FrequenciesWith is Frequencies under the selected arithmetic backend.
func FrequenciesWith(t *Tree, completeLevels int, a Arith) (FrequencyResult, error) {
	if a == ArithBig {
		return Frequencies(t, completeLevels)
	}
	return FrequenciesModular(t, completeLevels)
}

// CountModular is the multi-modular equivalent of Count: the same balance
// system, eliminated as residues over a certified prime battery instead of
// fraction-free big.Int rows, with CRT + rational recovery of the null
// ray. Answers are identical to Count's — the recovered ray is verified
// exactly against every balance equation, and unknown-decisions are
// certified by the Hadamard-bound battery sizing. In the measure-zero case
// where certification cannot converge it silently delegates to Count.
func CountModular(t *Tree, completeLevels int) (CountResult, error) {
	leaders := leaderNodes(t)
	if len(leaders) != 1 {
		return CountResult{}, fmt.Errorf("historytree: %d leader classes at level 0, want 1", len(leaders))
	}
	sol, ok, err := solveModular(t, completeLevels)
	if err != nil {
		return CountResult{}, err
	}
	if !ok {
		return Count(t, completeLevels) // witness fallback
	}
	if !sol.known {
		return CountResult{}, nil
	}
	res, err := countFromWeights(t, sol.levelZeroWeights(t))
	sol.release()
	return res, err
}

// FrequenciesModular is the multi-modular equivalent of Frequencies.
func FrequenciesModular(t *Tree, completeLevels int) (FrequencyResult, error) {
	sol, ok, err := solveModular(t, completeLevels)
	if err != nil {
		return FrequencyResult{}, err
	}
	if !ok {
		return Frequencies(t, completeLevels) // witness fallback
	}
	if !sol.known {
		return FrequencyResult{}, nil
	}
	res, err := frequenciesFromWeights(t, sol.levelZeroWeights(t))
	sol.release()
	return res, err
}

// modElimPool recycles from-scratch battery states (and their row
// freelists) across CountModular/FrequenciesModular calls.
var modElimPool = sync.Pool{New: func() any { return newModElim(0, 0) }}

// solveModular mirrors solve over the modular backend. ok=false means the
// battery failed to certify within its attempt budget and the caller must
// fall back to the big.Int witness; it does not mean "unknown".
func solveModular(t *Tree, completeLevels int) (*solution, bool, error) {
	sol, k, resolvable, err := prepSolution(t, completeLevels)
	if err != nil || !resolvable {
		return sol, true, err
	}

	e := modElimPool.Get().(*modElim)
	defer modElimPool.Put(e)
	e.reset(k)
	e.growTo(2, nil)

	// Collect and feed the balance system, stopping as soon as some prime
	// reaches corank 1 — the same early stop as solve, and sound for the
	// same reason: the candidate ray is verified against every equation
	// below.
collect:
	for l := 0; l < completeLevels; l++ {
		for _, pair := range balancePairs(t, l) {
			if !sol.fillRow(pair) {
				continue
			}
			e.addRow(sol.row)
			if e.maxRank() >= k-1 {
				break collect
			}
		}
	}

	// replay feeds the first rowsFed equations, in the same order, into a
	// freshly adopted prime.
	replay := func(ps *primeState) {
		n := 0
	rep:
		for l := 0; l < completeLevels; l++ {
			for _, pair := range balancePairs(t, l) {
				if n >= e.rowsFed {
					break rep
				}
				if !sol.fillRow(pair) {
					continue
				}
				e.feedRow(ps, sol.row)
				n++
			}
		}
	}

	var ray []*big.Rat
	free := -1
	for attempt := 0; attempt < 5 && ray == nil; attempt++ {
		r := e.maxRank()
		if r >= k {
			// Full rank mod some prime ⇒ full rational rank ⇒ the system
			// admits no nonzero solution; solve reports the same (its
			// candidate from any subset fails verification).
			sol.release()
			return sol, true, nil
		}
		if r < k-1 {
			need := e.neededPrimes(false)
			if len(e.primes) >= need {
				// Certified: some battery prime is lucky, so the true rank
				// really is below k−1 and the answer is not determined yet.
				sol.release()
				return sol, true, nil
			}
			e.growTo(need, replay)
			continue
		}
		if e.evictUnlucky() > 0 || len(e.primes) < e.neededPrimes(true) {
			e.growTo(e.neededPrimes(true), replay)
			continue
		}
		free = e.freeColumn()
		ray = e.nullRay()
	}
	if ray == nil {
		sol.release()
		return sol, false, nil
	}
	sol.ray = ray

	// Verify the reconstructed ray against every balance pair — the same
	// pass solve runs, but over residues: the per-prime ray residues are
	// read off the battery bases, and a violated equation's dot product is
	// a nonzero integer bounded by k·rowMax·H, which cannot vanish modulo
	// the whole certified battery (its modulus exceeds 2H² ≥ that bound).
	// Rows whose coefficients exceed the fed bound — which the Hadamard
	// sizing was computed from — fall back to the exact big.Rat check.
	// Per-node residue sums make each pair cost O(children·primes) instead
	// of O(k·primes).
	np := len(e.primes)
	resid := make([][]uint64, np)
	for i := range e.primes {
		resid[i] = make([]uint64, k)
		e.primes[i].rayResidues(resid[i], free)
	}
	sums := make(map[*Node][]uint64, k)
	sumBacking := make([]uint64, 0, k*np)
	acc := make([]uint64, np)
	for l := 0; l < completeLevels; l++ {
		pairs := balancePairs(t, l)
		if len(pairs) == 0 {
			continue
		}
		clear(sums)
		sumBacking = sumBacking[:0]
		for v, cs := range sol.colsAt(l + 1) {
			start := len(sumBacking)
			for pi := 0; pi < np; pi++ {
				var raw uint64
				for _, i := range cs {
					raw += resid[pi][i]
				}
				sumBacking = append(sumBacking, e.primes[pi].mp.red(raw))
			}
			sums[v] = sumBacking[start : start+np]
		}
		for _, pair := range pairs {
			for pi := range acc {
				acc[pi] = 0
			}
			overflow := false
			for side := 0; side < 2 && !overflow; side++ {
				from, other := pair.w, pair.u
				if side == 1 {
					from, other = pair.u, pair.w
				}
				for _, c := range from.Children {
					m := c.RedMult(other)
					if m == 0 {
						continue
					}
					if int64(m) > e.maxMult {
						overflow = true
						break
					}
					sv, ok := sums[c]
					if !ok {
						// A child with no basis descendants contributes
						// nothing — the same silent drop fillRow performs on
						// prefixes wrongly assumed complete (reachable only
						// through full-information views, never through the
						// congested protocol's completed VHT levels).
						continue
					}
					for pi := 0; pi < np; pi++ {
						mp := e.primes[pi].mp
						term := mp.mul(mp.red(uint64(m)), sv[pi])
						if side == 0 {
							acc[pi] = mp.red(acc[pi] + term)
						} else {
							acc[pi] = mp.sub(acc[pi], term)
						}
					}
				}
			}
			if overflow {
				// Equation coefficients exceed the Hadamard bound the battery
				// was sized for; check it exactly instead.
				if !sol.balanced(pair) {
					sol.release()
					return &solution{}, true, nil
				}
				continue
			}
			for pi := 0; pi < np; pi++ {
				if acc[pi] != 0 {
					sol.release()
					return &solution{}, true, nil
				}
			}
		}
	}
	if !orientPositive(sol.ray) {
		sol.release()
		return &solution{}, true, nil
	}
	sol.known = true
	return sol, true, nil
}

// orientPositive flips the ray to its positive orientation in place and
// reports whether every entry is strictly positive afterwards — the shared
// cardinality-vector check of all four solve paths.
func orientPositive(ray []*big.Rat) bool {
	sign := 0
	for _, x := range ray {
		if s := x.Sign(); s != 0 {
			sign = s
			break
		}
	}
	if sign < 0 {
		for _, x := range ray {
			x.Neg(x)
		}
	}
	for _, x := range ray {
		if x.Sign() <= 0 {
			return false
		}
	}
	return true
}
