package historytree

import (
	"testing"
	"testing/quick"

	"anondyn/internal/dynnet"
)

func sameCount(a, b CountResult) bool {
	if a.Known != b.Known {
		return false
	}
	if !a.Known {
		return true
	}
	if a.N != b.N || len(a.Multiset) != len(b.Multiset) {
		return false
	}
	for in, c := range a.Multiset {
		if b.Multiset[in] != c {
			return false
		}
	}
	return true
}

func sameFreq(a, b FrequencyResult) bool {
	if a.Known != b.Known {
		return false
	}
	if !a.Known {
		return true
	}
	if a.MinSize != b.MinSize || len(a.Shares) != len(b.Shares) {
		return false
	}
	for in, s := range a.Shares {
		if b.Shares[in] != s {
			return false
		}
	}
	return true
}

// TestSolverMatchesCountEveryLevel is the tentpole equivalence property on
// a deterministic grid: for random connected schedules, the incremental
// Solver must agree with the from-scratch Count at every complete level,
// for n ∈ {2..12} × 3 seeds.
func TestSolverMatchesCountEveryLevel(t *testing.T) {
	densities := []float64{0.15, 0.5, 0.85}
	for n := 2; n <= 12; n++ {
		for seed := int64(0); seed < 3; seed++ {
			s := dynnet.NewRandomConnected(n, densities[seed], seed+1)
			rounds := 3*n + 2
			run := buildTree(t, s, leaderInputs(n), rounds)
			solver := NewSolver()
			for l := 0; l <= rounds; l++ {
				ref, err := Count(run.Tree, l)
				if err != nil {
					t.Fatalf("n=%d seed=%d level=%d: Count: %v", n, seed, l, err)
				}
				inc, err := solver.CountAt(run.Tree, l)
				if err != nil {
					t.Fatalf("n=%d seed=%d level=%d: CountAt: %v", n, seed, l, err)
				}
				if !sameCount(ref, inc) {
					t.Fatalf("n=%d seed=%d level=%d: incremental %+v != from-scratch %+v",
						n, seed, l, inc, ref)
				}
			}
			if st := solver.Stats(); st.Fallbacks != 0 || st.Rebuilds != 0 {
				t.Fatalf("n=%d seed=%d: unexpected fallbacks/rebuilds on pure growth: %+v", n, seed, st)
			}
		}
	}
}

// TestSolverMatchesFrequenciesEveryLevel is the leaderless counterpart.
func TestSolverMatchesFrequenciesEveryLevel(t *testing.T) {
	for n := 2; n <= 10; n += 2 {
		for seed := int64(0); seed < 3; seed++ {
			inputs := make([]Input, n)
			for i := range inputs {
				inputs[i].Value = int64(i % 3)
			}
			s := dynnet.NewRandomConnected(n, 0.4, 100+seed)
			rounds := 3*n + 2
			run := buildTree(t, s, inputs, rounds)
			solver := NewSolver()
			for l := 0; l <= rounds; l++ {
				ref, err := Frequencies(run.Tree, l)
				if err != nil {
					t.Fatalf("n=%d seed=%d level=%d: Frequencies: %v", n, seed, l, err)
				}
				inc, err := solver.FrequenciesAt(run.Tree, l)
				if err != nil {
					t.Fatalf("n=%d seed=%d level=%d: FrequenciesAt: %v", n, seed, l, err)
				}
				if !sameFreq(ref, inc) {
					t.Fatalf("n=%d seed=%d level=%d: incremental %+v != from-scratch %+v",
						n, seed, l, inc, ref)
				}
			}
		}
	}
}

// TestSolverQuickEquivalence drives the same property through testing/quick
// with randomized size, density, and seed.
func TestSolverQuickEquivalence(t *testing.T) {
	prop := func(nRaw, densRaw uint8, seed int64) bool {
		n := 2 + int(nRaw)%11
		density := 0.05 + 0.9*float64(densRaw)/255
		s := dynnet.NewRandomConnected(n, density, seed)
		rounds := 3*n + 2
		run, err := Build(s, leaderInputs(n), rounds)
		if err != nil {
			t.Logf("Build(n=%d, density=%.2f, seed=%d): %v", n, density, seed, err)
			return false
		}
		solver := NewSolver()
		for l := 0; l <= rounds; l++ {
			ref, err1 := Count(run.Tree, l)
			inc, err2 := solver.CountAt(run.Tree, l)
			if err1 != nil || err2 != nil {
				t.Logf("n=%d seed=%d level=%d: errs %v / %v", n, seed, l, err1, err2)
				return false
			}
			if !sameCount(ref, inc) {
				t.Logf("n=%d density=%.2f seed=%d level=%d: %+v != %+v", n, density, seed, l, inc, ref)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestSolverConsumesEachLevelOnce pins the incremental contract: a level's
// equations are fed exactly once, repeated queries at the same level do no
// elimination work, and pure growth never rebuilds.
func TestSolverConsumesEachLevelOnce(t *testing.T) {
	n := 8
	s := dynnet.NewRandomConnected(n, 0.3, 5)
	rounds := 3*n + 2
	run := buildTree(t, s, leaderInputs(n), rounds)
	solver := NewSolver()
	for l := 0; l <= rounds; l++ {
		if _, err := solver.CountAt(run.Tree, l); err != nil {
			t.Fatalf("CountAt(%d): %v", l, err)
		}
		st := solver.Stats()
		if st.LevelsConsumed != l {
			t.Fatalf("after level %d: LevelsConsumed=%d, want %d", l, st.LevelsConsumed, l)
		}
		eq := st.Equations
		if _, err := solver.CountAt(run.Tree, l); err != nil {
			t.Fatalf("repeat CountAt(%d): %v", l, err)
		}
		st = solver.Stats()
		if st.LevelsConsumed != l || st.Equations != eq {
			t.Fatalf("repeated query at level %d did work: %+v", l, st)
		}
	}
	if st := solver.Stats(); st.Rebuilds != 0 || st.Fallbacks != 0 {
		t.Fatalf("pure growth caused rebuilds or fallbacks: %+v", st)
	}
}

// TestSolverRebuildsAfterTruncation exercises the reset path: truncating
// the tree (which reuses node IDs in the real protocol) must invalidate the
// solver's consumed prefix, and answers must still match from-scratch.
func TestSolverRebuildsAfterTruncation(t *testing.T) {
	n := 7
	s := dynnet.NewRandomConnected(n, 0.4, 11)
	rounds := 3*n + 2
	run := buildTree(t, s, leaderInputs(n), rounds)
	solver := NewSolver()
	if _, err := solver.CountAt(run.Tree, rounds); err != nil {
		t.Fatalf("CountAt: %v", err)
	}
	gen := run.Tree.Generation()
	run.Tree.TruncateLevels(5)
	if run.Tree.Generation() == gen {
		t.Fatal("TruncateLevels did not bump the generation")
	}
	depth := run.Tree.Depth()
	for l := 0; l <= depth; l++ {
		ref, err := Count(run.Tree, l)
		if err != nil {
			t.Fatalf("Count(%d): %v", l, err)
		}
		inc, err := solver.CountAt(run.Tree, l)
		if err != nil {
			t.Fatalf("CountAt(%d): %v", l, err)
		}
		if !sameCount(ref, inc) {
			t.Fatalf("level %d after truncation: %+v != %+v", l, inc, ref)
		}
	}
	if st := solver.Stats(); st.Rebuilds != 1 {
		t.Fatalf("want exactly 1 rebuild after truncation, got %+v", st)
	}
}

// TestSolverShallowerQueryRebuilds covers the regression path: asking for a
// shallower level than already consumed forces a rebuild but stays correct.
func TestSolverShallowerQueryRebuilds(t *testing.T) {
	n := 6
	s := dynnet.NewRandomConnected(n, 0.5, 3)
	rounds := 3 * n
	run := buildTree(t, s, leaderInputs(n), rounds)
	solver := NewSolver()
	if _, err := solver.CountAt(run.Tree, rounds); err != nil {
		t.Fatal(err)
	}
	ref, err := Count(run.Tree, 2)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := solver.CountAt(run.Tree, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !sameCount(ref, inc) {
		t.Fatalf("shallow re-query: %+v != %+v", inc, ref)
	}
	if st := solver.Stats(); st.Rebuilds != 1 {
		t.Fatalf("want 1 rebuild for the shallower query, got %+v", st)
	}
}

// TestSolverStaticTopologies mirrors TestCountStaticTopologies through the
// incremental path, including the n=1 and n=2 edge cases.
func TestSolverStaticTopologies(t *testing.T) {
	tests := []struct {
		name  string
		n     int
		graph func(n int) *dynnet.Multigraph
	}{
		{name: "path", n: 6, graph: dynnet.Path},
		{name: "cycle", n: 7, graph: dynnet.Cycle},
		{name: "complete", n: 8, graph: dynnet.Complete},
		{name: "star", n: 9, graph: func(n int) *dynnet.Multigraph { return dynnet.Star(n, 0) }},
		{name: "single", n: 1, graph: dynnet.Complete},
		{name: "pair", n: 2, graph: dynnet.Path},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := dynnet.NewStatic(tt.graph(tt.n))
			rounds := 3*tt.n + 2
			run := buildTree(t, s, leaderInputs(tt.n), rounds)
			solver := NewSolver()
			resolved := -1
			for l := 0; l <= rounds; l++ {
				res, err := solver.CountAt(run.Tree, l)
				if err != nil {
					t.Fatalf("CountAt(%d): %v", l, err)
				}
				if res.Known {
					if res.N != tt.n {
						t.Fatalf("got n=%d, want %d (level %d)", res.N, tt.n, l)
					}
					resolved = l
					break
				}
			}
			if resolved < 0 {
				t.Fatalf("solver never resolved within %d levels", rounds)
			}
		})
	}
}

// TestResolvableGate checks the satellite-2 gate agrees with the rank
// condition: when Resolvable says no, Count must report unknown.
func TestResolvableGate(t *testing.T) {
	// A path network resolves slowly: early levels have classes whose
	// ancestor chains carry no cross red edge yet.
	s := dynnet.NewStatic(dynnet.Path(6))
	run := buildTree(t, s, leaderInputs(6), 20)
	sawGated := false
	for l := 0; l <= 20; l++ {
		res, err := Count(run.Tree, l)
		if err != nil {
			t.Fatal(err)
		}
		if !Resolvable(run.Tree, l) {
			sawGated = true
			if res.Known {
				t.Fatalf("level %d: gate fired but Count resolved", l)
			}
		}
	}
	if !sawGated {
		t.Log("gate never fired on this schedule (acceptable, but unexpected for a path)")
	}
}
