package historytree

import (
	"fmt"
	"strings"
)

// RenderASCII returns a human-readable, level-by-level listing of the tree:
//
//	L-1: [-1]
//	L0:  [0 in=L:0] [1 in=0]
//	L1:  [2 <-0 r:(0x2)] …
//
// Each node shows its ID, its black parent ("<-parent"), its level-0 input
// when present, and its red edges as r:(srcID×mult, …).
func RenderASCII(t *Tree) string {
	var b strings.Builder
	for l := -1; l <= t.Depth(); l++ {
		fmt.Fprintf(&b, "L%d:", l)
		for _, v := range t.Level(l) {
			b.WriteString(" [")
			fmt.Fprintf(&b, "%d", v.ID)
			if v.Parent != nil {
				fmt.Fprintf(&b, " <-%d", v.Parent.ID)
			}
			if l == 0 {
				fmt.Fprintf(&b, " in=%s", v.Input)
			}
			if len(v.Red) > 0 {
				b.WriteString(" r:(")
				for i, e := range sortedRedKeys(v) {
					if i > 0 {
						b.WriteString(",")
					}
					fmt.Fprintf(&b, "%dx%d", e.Src.ID, e.Mult)
				}
				b.WriteString(")")
			}
			b.WriteString("]")
		}
		b.WriteString("\n")
	}
	return b.String()
}

// RenderDOT returns the tree in Graphviz DOT format: black edges solid,
// red edges red and labeled with their multiplicity.
func RenderDOT(t *Tree, name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=TB;\n  node [shape=circle];\n", name)
	for l := -1; l <= t.Depth(); l++ {
		fmt.Fprintf(&b, "  { rank=same;")
		for _, v := range t.Level(l) {
			fmt.Fprintf(&b, " n%d;", v.ID)
		}
		b.WriteString(" }\n")
		for _, v := range t.Level(l) {
			label := fmt.Sprintf("%d", v.ID)
			if l == 0 {
				label = fmt.Sprintf("%d\\n%s", v.ID, v.Input)
			}
			fmt.Fprintf(&b, "  n%d [label=\"%s\"];\n", v.ID, label)
			if v.Parent != nil {
				fmt.Fprintf(&b, "  n%d -> n%d [color=black];\n", v.Parent.ID, v.ID)
			}
			for _, e := range sortedRedKeys(v) {
				fmt.Fprintf(&b, "  n%d -> n%d [color=red, label=\"%d\", constraint=false];\n",
					e.Src.ID, v.ID, e.Mult)
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// LevelSizes returns the number of nodes in each level 0..Depth.
func LevelSizes(t *Tree) []int {
	out := make([]int, 0, t.Depth()+1)
	for l := 0; l <= t.Depth(); l++ {
		out = append(out, len(t.Level(l)))
	}
	return out
}
