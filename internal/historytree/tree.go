// Package historytree implements history trees for anonymous dynamic
// networks, the central data structure of Di Luna–Viglietta (FOCS 2022) and
// of the PODC 2023 congested-network algorithm reproduced by this module.
//
// A history tree represents the evolution of the indistinguishability
// classes of a network's processes. Its nodes are partitioned into levels:
// level -1 contains the root (all processes); a node of level t ≥ 0
// represents a class of processes that are indistinguishable at the end of
// round t. Black edges form the refinement tree (a child represents a
// subset of its parent); red multi-edges connect a node v′ of level t+1 to
// nodes of level t and record that, at round t+1, every process of v′
// received exactly Mult messages from processes of the level-t class.
//
// The package provides the tree structure itself (with the integer node IDs
// used by the congested protocol), an oracle that builds the true history
// tree of any schedule (build.go), view extraction (view.go), canonical
// forms and isomorphism (canon.go), the cardinality solver that plays the
// role of the FOCS 2022 "CountFromView" black box (count.go), and ASCII/DOT
// rendering (render.go).
package historytree

import (
	"fmt"
	"slices"

	"anondyn/internal/ints"
)

// RootID is the conventional ID of the root node (level -1), following
// Listing 1 of the paper.
const RootID = -1

// Input is the initial observable state of a process: its leader flag and
// an O(log n)-bit input value. Two processes are distinguishable at round 0
// exactly when their Inputs differ.
type Input struct {
	Leader bool
	Value  int64
}

// String renders the input compactly, e.g. "L:0" or "7".
func (in Input) String() string {
	return string(in.appendText(make([]byte, 0, 8)))
}

// appendText appends String's rendering to dst; the hot-path form used by
// the canonical-form builder.
func (in Input) appendText(dst []byte) []byte {
	if in.Leader {
		dst = append(dst, 'L', ':')
	}
	return ints.AppendInt(dst, int(in.Value))
}

// RedEdge is a red multi-edge incident to a node v of level t: the class
// Src (a node of level t-1) from which every process of v received Mult
// identical messages at round t.
type RedEdge struct {
	Src  *Node
	Mult int
}

// Node is one indistinguishability class.
type Node struct {
	// ID is the node's unique identifier within its tree. The congested
	// protocol assigns process IDs equal to the ID of the node representing
	// them.
	ID int
	// Level is the node's level; -1 for the root.
	Level int
	// Parent is the black-edge parent (nil for the root).
	Parent *Node
	// Children are the black-edge children, in insertion order. The backing
	// array is carved from the tree's shared edge arenas; treat it as owned
	// by the tree.
	Children []*Node
	// Input is the input labeling, meaningful for level-0 nodes only.
	Input Input
	// Red are the red edges towards level Level-1, in insertion order. Like
	// Children, the backing array belongs to the tree's arenas.
	Red []RedEdge
}

// RedMult returns the multiplicity of the red edge from src, or 0.
func (v *Node) RedMult(src *Node) int {
	for _, e := range v.Red {
		if e.Src == src {
			return e.Mult
		}
	}
	return 0
}

// Arena layout (see DESIGN.md decision 9). Nodes live in fixed-capacity
// chunks that are appended to but never reallocated, so &chunk[i] is stable
// for the lifetime of the tree and the public *Node surface is unchanged.
// Children and Red slices are carved from shared backing arrays with a
// small initial capacity; a slice that outgrows its carve is re-carved at
// twice the capacity (the abandoned carve is waste, bounded by 2× overall).
// byID is a flat slice indexed by ID+1 — protocol IDs are small dense
// integers — replacing the seed's map[int]*Node on the hot lookup path.
const (
	nodeChunkSize = 64
	edgeChunkSize = 256
	edgeInitCap   = 4
)

// Tree is a history tree: a root plus a (finite prefix of the infinite)
// sequence of levels.
type Tree struct {
	root   *Node
	levels [][]*Node // levels[i] holds level i-1; levels[0] = {root}

	// byID[id+1] is the node with the given ID (RootID = -1 lands at
	// index 0), nil when absent. The slice only ever grows; truncation
	// nils entries in place.
	byID     []*Node
	numNodes int

	// nodeArena holds the nodes themselves in pointer-stable chunks.
	nodeArena [][]Node
	// childArena and redArena back the nodes' Children and Red slices.
	childArena [][]*Node
	redArena   [][]RedEdge

	// gen counts destructive truncations. Node IDs are reused after a
	// protocol reset (the congested algorithm restores its fresh-ID counter
	// from a snapshot), so incremental consumers such as Solver cannot rely
	// on IDs to detect that the prefix they consumed was rewritten; they
	// compare generations instead.
	gen uint64

	// mut counts every structural mutation (AddChild, AddRed,
	// TruncateLevels); it stamps the balance-pair cache below. The cache
	// makes repeated solver passes over a quiescent tree O(levels) instead
	// of O(levels²) in pair enumerations. Reading through the cache mutates
	// it, so a Tree is not safe for concurrent use even read-only — which
	// matches how every consumer already treats it (one tree per process).
	mut        uint64
	pairsMut   uint64
	pairsLevel [][]nodePair

	// compacted is the deepest level released by CompactLevels (0 = none):
	// levels 1..compacted hold no nodes and their arena space has been
	// reclaimed. peakNodes is the high-water mark of numNodes over the
	// tree's lifetime and freedNodes the total released by compaction;
	// together they quantify the O(active view) memory claim.
	compacted  int
	peakNodes  int
	freedNodes int
}

// New returns a tree containing only the root node, with ID RootID.
func New() *Tree {
	t := &Tree{}
	root := t.newNode()
	root.ID = RootID
	root.Level = -1
	t.root = root
	t.levels = [][]*Node{{root}}
	t.setByID(RootID, root)
	t.numNodes = 1
	t.peakNodes = 1
	return t
}

// newNode carves one zeroed node out of the arena.
func (t *Tree) newNode() *Node {
	if k := len(t.nodeArena); k == 0 || len(t.nodeArena[k-1]) == cap(t.nodeArena[k-1]) {
		t.nodeArena = append(t.nodeArena, make([]Node, 0, nodeChunkSize))
	}
	chunk := &t.nodeArena[len(t.nodeArena)-1]
	*chunk = append(*chunk, Node{})
	return &(*chunk)[len(*chunk)-1]
}

// carve returns an empty slice with capacity c backed by the shared arena
// behind *arena. Oversized requests fall back to a plain allocation.
func carve[T any](arena *[][]T, c int) []T {
	if c > edgeChunkSize {
		return make([]T, 0, c)
	}
	k := len(*arena)
	if k == 0 || cap((*arena)[k-1])-len((*arena)[k-1]) < c {
		*arena = append(*arena, make([]T, 0, edgeChunkSize))
		k++
	}
	chunk := (*arena)[k-1]
	off := len(chunk)
	(*arena)[k-1] = chunk[:off+c]
	return chunk[off : off : off+c]
}

// appendEdge appends x to s, re-carving from the arena instead of letting
// the runtime allocate when the carve is full.
func appendEdge[T any](arena *[][]T, s []T, x T) []T {
	if len(s) == cap(s) {
		newCap := edgeInitCap
		if c := cap(s); c > 0 {
			newCap = 2 * c
		}
		grown := carve(arena, newCap)[:len(s)]
		copy(grown, s)
		s = grown
	}
	return append(s, x)
}

func (t *Tree) setByID(id int, v *Node) {
	idx := id + 1
	if idx >= len(t.byID) {
		if idx >= cap(t.byID) {
			grown := make([]*Node, idx+1, max(2*cap(t.byID), idx+1))
			copy(grown, t.byID)
			t.byID = grown
		} else {
			// The region between len and cap is zeroed: len never
			// shrinks, and growth copies zero-fill the tail.
			t.byID = t.byID[:idx+1]
		}
	}
	t.byID[idx] = v
}

// Root returns the root node.
func (t *Tree) Root() *Node { return t.root }

// Depth returns the index of the deepest level present (-1 if only the
// root exists).
func (t *Tree) Depth() int { return len(t.levels) - 2 }

// Level returns the nodes of level i (i ≥ -1) in insertion order, or nil if
// the level does not exist yet. The returned slice must not be modified.
func (t *Tree) Level(i int) []*Node {
	idx := i + 1
	if idx < 0 || idx >= len(t.levels) {
		return nil
	}
	return t.levels[idx]
}

// NodeByID returns the node with the given ID, or nil.
func (t *Tree) NodeByID(id int) *Node {
	idx := id + 1
	if idx < 0 || idx >= len(t.byID) {
		return nil
	}
	return t.byID[idx]
}

// NumNodes returns the total number of nodes including the root.
func (t *Tree) NumNodes() int { return t.numNodes }

// AddChild creates a new node with the given ID as a child of parent.
// The child's level is parent.Level+1; a new level is materialized if
// needed. IDs must be unique (and ≥ RootID); levels may only grow one at a
// time.
func (t *Tree) AddChild(id int, parent *Node, input Input) (*Node, error) {
	if parent == nil {
		return nil, fmt.Errorf("historytree: nil parent for node %d", id)
	}
	if id < RootID {
		return nil, fmt.Errorf("historytree: node ID %d below RootID", id)
	}
	if t.NodeByID(id) != nil {
		return nil, fmt.Errorf("historytree: duplicate node ID %d", id)
	}
	level := parent.Level + 1
	idx := level + 1
	if idx > len(t.levels) {
		return nil, fmt.Errorf("historytree: node %d at level %d but deepest level is %d",
			id, level, t.Depth())
	}
	t.mut++
	node := t.newNode()
	node.ID = id
	node.Level = level
	node.Parent = parent
	node.Input = input
	parent.Children = appendEdge(&t.childArena, parent.Children, node)
	if idx == len(t.levels) {
		t.levels = append(t.levels, nil)
	}
	t.levels[idx] = append(t.levels[idx], node)
	t.setByID(id, node)
	t.numNodes++
	if t.numNodes > t.peakNodes {
		t.peakNodes = t.numNodes
	}
	return node, nil
}

// AddRed records a red edge of multiplicity mult from src (level L-1) to
// node v (level L). Repeated additions for the same pair accumulate.
func (t *Tree) AddRed(v, src *Node, mult int) error {
	if v == nil || src == nil {
		return fmt.Errorf("historytree: nil endpoint for red edge")
	}
	if mult <= 0 {
		return fmt.Errorf("historytree: non-positive red multiplicity %d", mult)
	}
	if src.Level != v.Level-1 {
		return fmt.Errorf("historytree: red edge from level %d to level %d", src.Level, v.Level)
	}
	t.mut++
	for i := range v.Red {
		if v.Red[i].Src == src {
			v.Red[i].Mult += mult
			return nil
		}
	}
	v.Red = appendEdge(&t.redArena, v.Red, RedEdge{Src: src, Mult: mult})
	return nil
}

// Generation returns the tree's truncation generation: it changes whenever
// TruncateLevels removes nodes, and is stable under pure growth.
func (t *Tree) Generation() uint64 { return t.gen }

// TruncateLevels removes all levels ≥ from (from ≥ 0), deleting the nodes
// and any edges incident to them. It implements the reset of Listing 6.
// Arena space held by the removed nodes is not reclaimed until the tree
// itself is released (Clone produces a compact copy).
//
// Truncating into or below the compacted region is a contract violation —
// those levels were released on the caller's promise that they can never
// be rewritten — and panics; core guards its reset paths with a structured
// error before reaching here.
func (t *Tree) TruncateLevels(from int) {
	if t.compacted > 0 && from <= t.compacted {
		panic(fmt.Sprintf("historytree: TruncateLevels(%d) into compacted region (levels 1..%d released)",
			from, t.compacted))
	}
	idx := from + 1
	if idx < 1 {
		idx = 1
	}
	if idx >= len(t.levels) {
		return
	}
	t.gen++
	t.mut++
	for _, level := range t.levels[idx:] {
		for _, node := range level {
			t.byID[node.ID+1] = nil
			t.numNodes--
		}
	}
	t.levels = t.levels[:idx]
	// Drop black edges into the removed levels.
	for _, node := range t.levels[len(t.levels)-1] {
		node.Children = nil
	}
}

// RedEdgeCount returns the number of distinct red edges (ignoring
// multiplicity) in levels 0..maxLevel inclusive; maxLevel < 0 counts the
// whole tree.
func (t *Tree) RedEdgeCount(maxLevel int) int {
	if maxLevel < 0 {
		maxLevel = t.Depth()
	}
	count := 0
	for l := 0; l <= maxLevel; l++ {
		for _, v := range t.Level(l) {
			count += len(v.Red)
		}
	}
	return count
}

// Clone returns a deep copy of the tree; the copy's nodes are fresh but
// keep their IDs.
func (t *Tree) Clone() *Tree {
	out := New()
	for l := 0; l <= t.Depth(); l++ {
		for _, v := range t.Level(l) {
			parent := out.NodeByID(v.Parent.ID)
			if _, err := out.AddChild(v.ID, parent, v.Input); err != nil {
				// Unreachable on a well-formed tree.
				panic(err)
			}
		}
	}
	for l := 1; l <= t.Depth(); l++ {
		for _, v := range t.Level(l) {
			nv := out.NodeByID(v.ID)
			for _, e := range v.Red {
				if err := out.AddRed(nv, out.NodeByID(e.Src.ID), e.Mult); err != nil {
					panic(err)
				}
			}
		}
	}
	return out
}

// Validate checks structural well-formedness: level bookkeeping, parent
// levels, red edge levels and positivity, and ID uniqueness. It returns the
// first violation found.
func (t *Tree) Validate() error {
	seen := make(map[int]bool, t.numNodes)
	for l := -1; l <= t.Depth(); l++ {
		for _, v := range t.Level(l) {
			if v.Level != l {
				return fmt.Errorf("historytree: node %d stored at level %d has Level=%d", v.ID, l, v.Level)
			}
			if seen[v.ID] {
				return fmt.Errorf("historytree: duplicate ID %d", v.ID)
			}
			seen[v.ID] = true
			if t.NodeByID(v.ID) != v {
				return fmt.Errorf("historytree: node %d not indexed by ID", v.ID)
			}
			if l == -1 {
				if v.Parent != nil {
					return fmt.Errorf("historytree: root has a parent")
				}
				continue
			}
			if v.Parent == nil || v.Parent.Level != l-1 {
				return fmt.Errorf("historytree: node %d has bad parent", v.ID)
			}
			for _, e := range v.Red {
				if e.Src.Level != l-1 {
					return fmt.Errorf("historytree: node %d red edge from level %d", v.ID, e.Src.Level)
				}
				if e.Mult <= 0 {
					return fmt.Errorf("historytree: node %d red edge mult %d", v.ID, e.Mult)
				}
			}
		}
	}
	if len(seen) != t.numNodes {
		return fmt.Errorf("historytree: node count is %d, levels have %d", t.numNodes, len(seen))
	}
	return nil
}

// sortedRedKeys returns v's red edges sorted by source ID, for canonical
// traversals.
func sortedRedKeys(v *Node) []RedEdge {
	out := make([]RedEdge, len(v.Red))
	copy(out, v.Red)
	slices.SortFunc(out, func(a, b RedEdge) int { return a.Src.ID - b.Src.ID })
	return out
}
