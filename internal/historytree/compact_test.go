package historytree

import (
	"strings"
	"testing"

	"anondyn/internal/dynnet"
)

// TestCompactedSolverMatchesControl is the compaction equivalence property:
// a solver over a tree that is rolling-compacted behind its consumption
// frontier must return exactly the answers of a solver over an untouched
// copy of the same execution — at every level, including levels deep
// enough to force battery prime growth (which exercises the recorded
// replay skeleton on a tree whose consumed levels are gone).
func TestCompactedSolverMatchesControl(t *testing.T) {
	const lag = 3
	replayed := false
	for n := 4; n <= 12; n += 4 {
		for seed := int64(0); seed < 2; seed++ {
			s := dynnet.NewRandomConnected(n, 0.4, seed+1)
			rounds := 3*n + 2
			run := buildTree(t, s, leaderInputs(n), rounds)
			control := buildTree(t, s, leaderInputs(n), rounds)

			solver, ref := NewSolver(), NewSolver()
			for l := 0; l <= rounds; l++ {
				want, err := ref.CountAt(control.Tree, l)
				if err != nil {
					t.Fatalf("n=%d seed=%d level=%d: control CountAt: %v", n, seed, l, err)
				}
				got, err := solver.CountAt(run.Tree, l)
				if err != nil {
					t.Fatalf("n=%d seed=%d level=%d: compacted CountAt: %v", n, seed, l, err)
				}
				if !sameCount(want, got) {
					t.Fatalf("n=%d seed=%d level=%d: compacted %+v != control %+v",
						n, seed, l, got, want)
				}
				// Roll compaction a fixed lag behind the solver frontier,
				// exactly as core.Process does.
				if keep := min(l-lag, solver.ConsumedLevel()); keep > 1 {
					run.Tree.CompactLevels(keep)
				}
			}
			if run.Tree.CompactedLevels() == 0 {
				t.Fatalf("n=%d seed=%d: compaction never engaged", n, seed)
			}
			if solver.Stats().PrimesUsed > 2 {
				replayed = true
			}
			if run.Tree.NumNodes() >= control.Tree.NumNodes() {
				t.Fatalf("n=%d seed=%d: compacted tree holds %d nodes, control %d",
					n, seed, run.Tree.NumNodes(), control.Tree.NumNodes())
			}
			if run.Tree.CompactedNodes() == 0 {
				t.Fatalf("n=%d seed=%d: CompactedNodes=0 after compaction", n, seed)
			}
			if run.Tree.PeakResidentNodes() != control.Tree.PeakResidentNodes() {
				t.Fatalf("n=%d seed=%d: peak %d != control peak %d (peak must track growth, not releases)",
					n, seed, run.Tree.PeakResidentNodes(), control.Tree.PeakResidentNodes())
			}
		}
	}
	if !replayed {
		t.Fatal("no configuration grew the prime battery: replay-over-compacted-tree path not exercised")
	}
}

// TestCompactedFrequenciesMatchControl is the leaderless counterpart.
func TestCompactedFrequenciesMatchControl(t *testing.T) {
	const n, lag = 8, 3
	inputs := make([]Input, n)
	for i := range inputs {
		inputs[i].Value = int64(i % 3)
	}
	s := dynnet.NewRandomConnected(n, 0.4, 42)
	rounds := 3*n + 2
	run := buildTree(t, s, inputs, rounds)
	control := buildTree(t, s, inputs, rounds)

	solver, ref := NewSolver(), NewSolver()
	for l := 0; l <= rounds; l++ {
		want, err := ref.FrequenciesAt(control.Tree, l)
		if err != nil {
			t.Fatalf("level=%d: control FrequenciesAt: %v", l, err)
		}
		got, err := solver.FrequenciesAt(run.Tree, l)
		if err != nil {
			t.Fatalf("level=%d: compacted FrequenciesAt: %v", l, err)
		}
		if !sameFreq(want, got) {
			t.Fatalf("level=%d: compacted %+v != control %+v", l, got, want)
		}
		if keep := min(l-lag, solver.ConsumedLevel()); keep > 1 {
			run.Tree.CompactLevels(keep)
		}
	}
	if run.Tree.CompactedLevels() == 0 {
		t.Fatal("compaction never engaged")
	}
}

// TestCompactLevelsReleasesStorage pins the accounting: compacting a fully
// built tree releases every node on the frozen levels and nothing else.
func TestCompactLevelsReleasesStorage(t *testing.T) {
	const n = 10
	s := dynnet.NewRandomConnected(n, 0.4, 7)
	rounds := 3 * n
	run := buildTree(t, s, leaderInputs(n), rounds)
	tree := run.Tree

	before := tree.NumNodes()
	frozen := 0
	keepFrom := tree.Depth() - 2
	for l := 1; l < keepFrom; l++ {
		frozen += len(tree.Level(l))
	}
	released := tree.CompactLevels(keepFrom)
	if released != frozen {
		t.Fatalf("released %d nodes, want %d (levels 1..%d)", released, frozen, keepFrom-1)
	}
	if got := tree.NumNodes(); got != before-frozen {
		t.Fatalf("NumNodes=%d after compaction, want %d", got, before-frozen)
	}
	if tree.CompactedLevels() != keepFrom-1 {
		t.Fatalf("CompactedLevels=%d, want %d", tree.CompactedLevels(), keepFrom-1)
	}
	for l := 1; l < keepFrom; l++ {
		if len(tree.Level(l)) != 0 {
			t.Fatalf("level %d still holds %d nodes", l, len(tree.Level(l)))
		}
	}
	// The live region must still be walkable for the protocol's reads.
	for l := keepFrom; l <= tree.Depth(); l++ {
		if len(tree.Level(l)) == 0 {
			t.Fatalf("live level %d emptied", l)
		}
	}
	for _, v := range tree.Level(keepFrom) {
		if v.Parent != nil || v.Red != nil {
			t.Fatalf("boundary node %d retains links into the frozen region", v.ID)
		}
	}
	// Re-compacting the same region, compacting level ≤ 1, and compacting
	// past the depth (clamps to keeping the deepest level) are no-ops.
	if got := tree.CompactLevels(keepFrom); got != 0 {
		t.Fatalf("re-compaction released %d nodes", got)
	}
	if got := tree.CompactLevels(1); got != 0 {
		t.Fatalf("CompactLevels(1) released %d nodes", got)
	}
}

// TestCompactLevelsNoOpAllocationFree is the satellite allocation gate: a
// call that releases nothing must not allocate (it sits on the per-round
// hot path in core.Process, which calls it every level).
func TestCompactLevelsNoOpAllocationFree(t *testing.T) {
	const n = 8
	s := dynnet.NewRandomConnected(n, 0.4, 3)
	run := buildTree(t, s, leaderInputs(n), 2*n)
	tree := run.Tree
	keepFrom := tree.Depth() - 2
	tree.CompactLevels(keepFrom)
	if avg := testing.AllocsPerRun(100, func() {
		if tree.CompactLevels(keepFrom) != 0 {
			t.Fatal("no-op call released nodes")
		}
	}); avg != 0 {
		t.Fatalf("no-op CompactLevels allocates %.1f times per call", avg)
	}
}

// TestTruncateIntoCompactedRegionPanics pins the backstop: a reset that
// rewinds into released history is a protocol-level impossibility the tree
// refuses to paper over.
func TestTruncateIntoCompactedRegionPanics(t *testing.T) {
	const n = 8
	s := dynnet.NewRandomConnected(n, 0.4, 5)
	run := buildTree(t, s, leaderInputs(n), 2*n)
	tree := run.Tree
	keepFrom := tree.Depth() - 2
	tree.CompactLevels(keepFrom)

	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("TruncateLevels into the compacted region did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "compacted") {
			t.Fatalf("panic %v does not mention the compacted region", r)
		}
	}()
	tree.TruncateLevels(keepFrom - 1)
}

// TestTruncateAboveCompactedRegionWorks: truncating strictly above the
// frozen region stays legal — the tree can still rewind its live suffix.
func TestTruncateAboveCompactedRegionWorks(t *testing.T) {
	const n = 8
	s := dynnet.NewRandomConnected(n, 0.4, 9)
	run := buildTree(t, s, leaderInputs(n), 2*n)
	tree := run.Tree
	keepFrom := tree.Depth() - 3
	tree.CompactLevels(keepFrom)
	tree.TruncateLevels(tree.Depth() - 1)
	if tree.Depth() != keepFrom+1 {
		t.Fatalf("Depth=%d after truncation, want %d", tree.Depth(), keepFrom+1)
	}
}
