package historytree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"anondyn/internal/dynnet"
)

func oracleTree(t *testing.T, n, rounds int, seed int64) *Run {
	t.Helper()
	inputs := make([]Input, n)
	inputs[0].Leader = true
	run, err := Build(dynnet.NewRandomConnected(n, 0.4, seed), inputs, rounds)
	if err != nil {
		t.Fatal(err)
	}
	return run
}

func TestExtractViewIsGeneralizedView(t *testing.T) {
	run := oracleTree(t, 7, 8, 3)
	for p := 0; p < 7; p++ {
		view, err := ExtractView(run.Tree, run.NodeOf[8][p])
		if err != nil {
			t.Fatalf("process %d: %v", p, err)
		}
		if err := view.Validate(); err != nil {
			t.Fatalf("process %d: invalid view: %v", p, err)
		}
		if err := IsGeneralizedView(run.Tree, view); err != nil {
			t.Fatalf("process %d: %v", p, err)
		}
	}
}

func TestExtractViewErrors(t *testing.T) {
	run := oracleTree(t, 4, 3, 1)
	if _, err := ExtractView(run.Tree); err == nil {
		t.Error("no targets must fail")
	}
	if _, err := ExtractView(run.Tree, nil); err == nil {
		t.Error("nil target must fail")
	}
}

func TestViewContainsCausalPast(t *testing.T) {
	// In a connected network, the view of any process at round t ≥ n-1
	// must contain ALL level-0 classes: everyone's input influences
	// everyone within n-1 rounds.
	n := 6
	run := oracleTree(t, n, n, 9)
	for p := 0; p < n; p++ {
		view, err := ExtractView(run.Tree, run.NodeOf[n][p])
		if err != nil {
			t.Fatal(err)
		}
		if got, want := len(view.Level(0)), len(run.Tree.Level(0)); got != want {
			t.Fatalf("process %d view has %d level-0 classes, want %d", p, got, want)
		}
	}
}

func TestUnionOfAllViewsIsWholeTree(t *testing.T) {
	run := oracleTree(t, 5, 6, 11)
	targets := make([]*Node, 5)
	copy(targets, run.NodeOf[6])
	all, err := ExtractView(run.Tree, targets...)
	if err != nil {
		t.Fatal(err)
	}
	if all.NumNodes() != run.Tree.NumNodes() {
		t.Fatalf("union view has %d nodes, tree has %d", all.NumNodes(), run.Tree.NumNodes())
	}
	if !Isomorphic(all, run.Tree) {
		t.Fatal("union of all views should equal the tree")
	}
}

func TestIsGeneralizedViewDetectsViolations(t *testing.T) {
	run := oracleTree(t, 5, 4, 2)
	view, err := ExtractView(run.Tree, run.NodeOf[4][0])
	if err != nil {
		t.Fatal(err)
	}
	// Tamper: change a red multiplicity.
	for l := 1; l <= view.Depth(); l++ {
		for _, v := range view.Level(l) {
			if len(v.Red) > 0 {
				v.Red[0].Mult++
				if err := IsGeneralizedView(run.Tree, view); err == nil {
					t.Fatal("tampered multiplicity not detected")
				}
				v.Red[0].Mult--
				break
			}
		}
	}
}

func TestIsomorphismProperties(t *testing.T) {
	// Same schedule and inputs → isomorphic trees even with different node
	// IDs (the oracle assigns IDs in discovery order; rebuilt trees match).
	a := oracleTree(t, 6, 5, 21).Tree
	b := oracleTree(t, 6, 5, 21).Tree
	if !Isomorphic(a, b) {
		t.Fatal("identical builds must be isomorphic")
	}
	// Different seeds generically give different trees.
	c := oracleTree(t, 6, 5, 22).Tree
	if Isomorphic(a, c) {
		t.Log("different schedules produced isomorphic trees (possible, rare)")
	}
	// A truncated tree is not isomorphic to the full one.
	d := a.Clone()
	d.TruncateLevels(3)
	if Isomorphic(a, d) {
		t.Fatal("truncated tree reported isomorphic")
	}
}

func TestIsomorphismIgnoresIDs(t *testing.T) {
	// Build the same structure with different IDs.
	mk := func(base int) *Tree {
		tr := New()
		a, _ := tr.AddChild(base, tr.Root(), Input{Leader: true})
		b, _ := tr.AddChild(base+1, tr.Root(), Input{})
		c, _ := tr.AddChild(base+2, a, Input{})
		if err := tr.AddRed(c, b, 2); err != nil {
			panic(err)
		}
		return tr
	}
	if !Isomorphic(mk(0), mk(100)) {
		t.Fatal("isomorphism must ignore node IDs")
	}
}

func TestIsomorphismDistinguishesInputs(t *testing.T) {
	mk := func(in Input) *Tree {
		tr := New()
		if _, err := tr.AddChild(0, tr.Root(), in); err != nil {
			panic(err)
		}
		return tr
	}
	if Isomorphic(mk(Input{Value: 1}), mk(Input{Value: 2})) {
		t.Fatal("different inputs must not be isomorphic")
	}
	if Isomorphic(mk(Input{Leader: true}), mk(Input{})) {
		t.Fatal("leader flag is structural")
	}
}

func TestOraclePartitionProperty(t *testing.T) {
	// Property: at every level of an oracle tree, cardinalities are
	// positive and sum to n; children partition parents; every process's
	// node chain is consistent.
	f := func(seed int64, nRaw, rRaw uint8) bool {
		n := 2 + int(nRaw%8)
		rounds := 1 + int(rRaw%8)
		rng := rand.New(rand.NewSource(seed))
		inputs := make([]Input, n)
		for i := range inputs {
			inputs[i].Value = int64(rng.Intn(3))
		}
		run, err := Build(dynnet.NewRandomConnected(n, rng.Float64(), seed), inputs, rounds)
		if err != nil {
			return false
		}
		for l := 0; l <= run.Tree.Depth(); l++ {
			total := 0
			for _, v := range run.Tree.Level(l) {
				if run.Card[v.ID] <= 0 {
					return false
				}
				total += run.Card[v.ID]
			}
			if total != n {
				return false
			}
		}
		for r := 1; r <= rounds; r++ {
			for p := 0; p < n; p++ {
				if run.NodeOf[r][p].Parent != run.NodeOf[r-1][p] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestOracleRedEdgesMatchGraph(t *testing.T) {
	// The red edges at level t+1 must match the schedule's round-(t+1)
	// multigraph exactly: process p's node has red mult from class C equal
	// to the number of links p shares with members of C.
	n, rounds := 6, 5
	s := dynnet.NewRandomConnected(n, 0.5, 33)
	inputs := make([]Input, n)
	inputs[0].Leader = true
	run, err := Build(s, inputs, rounds)
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r <= rounds; r++ {
		g := s.Graph(r)
		for p := 0; p < n; p++ {
			want := make(map[int]int)
			for nb, m := range g.Neighbors(p) {
				want[run.NodeOf[r-1][nb].ID] += m
			}
			node := run.NodeOf[r][p]
			got := make(map[int]int)
			for _, e := range node.Red {
				got[e.Src.ID] = e.Mult
			}
			if len(got) != len(want) {
				t.Fatalf("round %d process %d: red %v, want %v", r, p, got, want)
			}
			for id, m := range want {
				if got[id] != m {
					t.Fatalf("round %d process %d: red from %d = %d, want %d", r, p, id, got[id], m)
				}
			}
		}
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(dynnet.NewStatic(dynnet.Path(3)), make([]Input, 2), 1); err == nil {
		t.Error("input count mismatch must fail")
	}
	if _, err := Build(dynnet.NewStatic(dynnet.Path(3)), make([]Input, 3), -1); err == nil {
		t.Error("negative rounds must fail")
	}
	run, err := Build(dynnet.NewStatic(dynnet.Path(3)), make([]Input, 3), 0)
	if err != nil {
		t.Fatal(err)
	}
	if run.Tree.Depth() != 0 {
		t.Error("zero rounds should still build level 0")
	}
}
