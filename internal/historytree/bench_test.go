package historytree

import (
	"fmt"
	"testing"

	"anondyn/internal/dynnet"
)

func BenchmarkOracleBuild(b *testing.B) {
	for _, n := range []int{8, 16, 32} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s := dynnet.NewRandomConnected(n, 0.3, 1)
			inputs := make([]Input, n)
			inputs[0].Leader = true
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Build(s, inputs, 3*n); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSolver(b *testing.B) {
	for _, n := range []int{8, 16, 32} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s := dynnet.NewRandomConnected(n, 0.3, 1)
			inputs := make([]Input, n)
			inputs[0].Leader = true
			run, err := Build(s, inputs, 3*n)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := Count(run.Tree, 3*n)
				if err != nil {
					b.Fatal(err)
				}
				if !res.Known || res.N != n {
					b.Fatalf("solver failed: %+v", res)
				}
			}
		})
	}
}

// BenchmarkSolverFromScratch replays the protocol's real access pattern —
// the leader re-solves after every completed level — through the
// from-scratch Count, the behaviour before the incremental solver.
func BenchmarkSolverFromScratch(b *testing.B) {
	for _, n := range []int{8, 16, 32} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s := dynnet.NewRandomConnected(n, 0.3, 1)
			inputs := make([]Input, n)
			inputs[0].Leader = true
			run, err := Build(s, inputs, 3*n)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for l := 0; l <= 3*n; l++ {
					res, err := Count(run.Tree, l)
					if err != nil {
						b.Fatal(err)
					}
					if res.Known && res.N != n {
						b.Fatalf("wrong count at level %d: %+v", l, res)
					}
				}
			}
		})
	}
}

// BenchmarkSolverIncremental is the same per-level access pattern through
// the persistent Solver; BENCH_PR2.json tracks its ratio to
// BenchmarkSolverFromScratch.
func BenchmarkSolverIncremental(b *testing.B) {
	for _, n := range []int{8, 16, 32} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s := dynnet.NewRandomConnected(n, 0.3, 1)
			inputs := make([]Input, n)
			inputs[0].Leader = true
			run, err := Build(s, inputs, 3*n)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				solver := NewSolver()
				for l := 0; l <= 3*n; l++ {
					res, err := solver.CountAt(run.Tree, l)
					if err != nil {
						b.Fatal(err)
					}
					if res.Known && res.N != n {
						b.Fatalf("wrong count at level %d: %+v", l, res)
					}
				}
			}
		})
	}
}

func BenchmarkCanonicalForm(b *testing.B) {
	s := dynnet.NewRandomConnected(16, 0.3, 1)
	inputs := make([]Input, 16)
	inputs[0].Leader = true
	run, err := Build(s, inputs, 32)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = CanonicalForm(run.Tree)
	}
}

func BenchmarkViewExtract(b *testing.B) {
	s := dynnet.NewRandomConnected(16, 0.3, 1)
	inputs := make([]Input, 16)
	inputs[0].Leader = true
	run, err := Build(s, inputs, 32)
	if err != nil {
		b.Fatal(err)
	}
	target := run.NodeOf[32][0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ExtractView(run.Tree, target); err != nil {
			b.Fatal(err)
		}
	}
}
