package historytree

import (
	"math/big"
	"math/bits"
	"sync"
)

// Modular arithmetic substrate for the multi-modular counting solver: a
// battery of word-sized primes with Barrett reduction, plus the CRT and
// rational-reconstruction steps that lift per-prime null rays back to the
// exact rational ray. See DESIGN.md decision 12.
//
// Primes are taken just below 2^31 so that a product of two residues fits
// in a uint64 and Barrett reduction needs only one 64×64→128 multiply and
// one subtraction — the inner multiply-subtract loop of the elimination
// does no division and no allocation.

// primeBits is the guaranteed size of every battery prime: each prime
// exceeds 2^primeBits, which is what the Hadamard-bound battery sizing
// divides by.
const primeBits = 30

// modPrime is one battery prime with its precomputed Barrett constant.
type modPrime struct {
	p uint64 // the prime, 2^30 < p < 2^31
	m uint64 // ⌊2^64 / p⌋, the Barrett multiplier
}

// newModPrime precomputes the Barrett constant for p.
func newModPrime(p uint64) modPrime {
	m, _ := bits.Div64(1, 0, p) // ⌊2^64 / p⌋; fits in 64 bits since p ≥ 2
	return modPrime{p: p, m: m}
}

// red reduces x < 2^62 modulo p via Barrett: the quotient estimate
// q = ⌊x·m / 2^64⌋ is off by at most one, fixed by a conditional subtract.
func (mp modPrime) red(x uint64) uint64 {
	q, _ := bits.Mul64(x, mp.m)
	r := x - q*mp.p
	if r >= mp.p {
		r -= mp.p
	}
	return r
}

// mul multiplies two residues (both < p < 2^31, so the product is < 2^62).
func (mp modPrime) mul(a, b uint64) uint64 { return mp.red(a * b) }

// sub subtracts residues.
func (mp modPrime) sub(a, b uint64) uint64 {
	if a >= b {
		return a - b
	}
	return a + mp.p - b
}

// neg negates a residue.
func (mp modPrime) neg(a uint64) uint64 {
	if a == 0 {
		return 0
	}
	return mp.p - a
}

// redInt64 reduces a (possibly negative) int64 coefficient.
func (mp modPrime) redInt64(v int64) uint64 {
	if v >= 0 {
		return mp.red(uint64(v))
	}
	return mp.neg(mp.red(uint64(-v)))
}

// inv returns the multiplicative inverse of a ≠ 0 via the extended
// Euclidean algorithm on int64 (safe: p < 2^31).
func (mp modPrime) inv(a uint64) uint64 {
	t, newT := int64(0), int64(1)
	r, newR := int64(mp.p), int64(a)
	for newR != 0 {
		q := r / newR
		t, newT = newT, t-q*newT
		r, newR = newR, r-q*newR
	}
	if t < 0 {
		t += int64(mp.p)
	}
	return uint64(t)
}

// primePool generates battery primes deterministically, descending from
// 2^31−1 (itself prime), and memoizes them so every solver in the process
// shares one battery ordering. Guarded by a mutex: solvers are
// single-threaded but many may run concurrently.
var primePool struct {
	sync.Mutex
	primes []modPrime
	next   uint64
}

// primeAt returns the i-th battery prime (0-based), generating further
// primes on demand.
func primeAt(i int) modPrime {
	primePool.Lock()
	defer primePool.Unlock()
	if primePool.next == 0 {
		primePool.next = 1<<31 - 1
	}
	for len(primePool.primes) <= i {
		for !isPrime32(primePool.next) {
			primePool.next -= 2
		}
		if primePool.next <= 1<<primeBits {
			// Unreachable in practice: there are ~50M primes in
			// (2^30, 2^31), far more than any battery uses.
			panic("historytree: prime battery exhausted")
		}
		primePool.primes = append(primePool.primes, newModPrime(primePool.next))
		primePool.next -= 2
	}
	return primePool.primes[i]
}

// isPrime32 is a deterministic Miller–Rabin test, exact for all n < 2^32
// with witness set {2, 7, 61}.
func isPrime32(n uint64) bool {
	if n < 2 || n%2 == 0 {
		return n == 2
	}
	d, s := n-1, 0
	for d%2 == 0 {
		d, s = d/2, s+1
	}
witness:
	for _, a := range [...]uint64{2, 7, 61} {
		if a%n == 0 {
			continue
		}
		x := powMod(a, d, n)
		if x == 1 || x == n-1 {
			continue
		}
		for i := 0; i < s-1; i++ {
			x = mulMod64(x, x, n)
			if x == n-1 {
				continue witness
			}
		}
		return false
	}
	return true
}

// powMod computes a^e mod n for n < 2^32.
func powMod(a, e, n uint64) uint64 {
	a %= n
	r := uint64(1)
	for e > 0 {
		if e&1 == 1 {
			r = mulMod64(r, a, n)
		}
		a = mulMod64(a, a, n)
		e >>= 1
	}
	return r
}

// mulMod64 multiplies modulo n < 2^32 (products fit in uint64).
func mulMod64(a, b, n uint64) uint64 { return a * b % n }

// crtCombine incrementally merges residue x mod p into the running CRT
// state (acc mod mod): it returns the unique value ≡ acc (mod mod) and
// ≡ x (mod p), modulo mod·p. acc and mod are updated in place; scratch
// big.Ints are supplied by the caller to keep the loop allocation-lean.
func crtCombine(acc, mod *big.Int, x uint64, mp modPrime, t1, t2 *big.Int) {
	t2.SetUint64(mp.p)
	a := t1.Mod(acc, t2).Uint64()            // acc mod p
	mInv := mp.inv(t1.Mod(mod, t2).Uint64()) // mod⁻¹ mod p (distinct primes ⇒ invertible)
	delta := mp.mul(mp.sub(x, a), mInv)      // (x − acc) · mod⁻¹ mod p
	t1.SetUint64(delta)
	acc.Add(acc, t1.Mul(t1, mod))
	mod.Mul(mod, t2)
}

// ratBound returns ⌊√(M/2)⌋, the numerator/denominator bound under which
// rational reconstruction modulo M is unique. Callers solving many
// residues against the same modulus compute it once.
func ratBound(M *big.Int) *big.Int {
	bound := new(big.Int).Rsh(M, 1)
	return bound.Sqrt(bound)
}

// ratReconstruct recovers the unique rational n/d with |n|, d ≤ bound
// (= ⌊√(M/2)⌋), d > 0, gcd(d, M) = 1 and n ≡ c·d (mod M), if one exists —
// Wang's rational-reconstruction algorithm (half-extended Euclid on
// (M, c), stopping at the first remainder below the bound). Under the
// solver's Hadamard-bound battery sizing the true ray entry satisfies the
// size bound, so reconstruction succeeds and is unique.
func ratReconstruct(c, M, bound *big.Int) (*big.Rat, bool) {
	if c.Sign() == 0 {
		return new(big.Rat), true
	}
	r0 := new(big.Int).Set(M)
	r1 := new(big.Int).Mod(c, M)
	t0, t1 := new(big.Int), new(big.Int).SetInt64(1)
	q, tmp := new(big.Int), new(big.Int)
	for r1.Sign() != 0 && r1.Cmp(bound) > 0 {
		q.Quo(r0, r1)
		// (r0, r1) ← (r1, r0 − q·r1), same for (t0, t1). The remainders
		// stay non-negative; the signed numerator is r1·sign(t1) at exit.
		tmp.Mul(q, r1)
		r0.Sub(r0, tmp)
		r0, r1 = r1, r0
		tmp.Mul(q, t1)
		t0.Sub(t0, tmp)
		t0, t1 = t1, t0
	}
	if r1.Sign() == 0 || t1.Sign() == 0 {
		return nil, false
	}
	if t1.Sign() < 0 {
		t1.Neg(t1)
		r1.Neg(r1)
	}
	if t1.Cmp(bound) > 0 {
		return nil, false
	}
	num := new(big.Int).Set(r1)
	if tmp.GCD(nil, nil, r1.Abs(r1), t1); tmp.Cmp(oneInt) != 0 {
		return nil, false
	}
	return new(big.Rat).SetFrac(num, t1), true
}
