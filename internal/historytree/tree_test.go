package historytree

import (
	"strings"
	"testing"
)

// buildSmall returns a hand-built two-level tree:
//
//	root → {0: leader, 1: other}; level 1: {2 <-0 r:(0x2,1x1)}, {3 <-1 r:(0x1,1x2)}.
func buildSmall(t *testing.T) *Tree {
	t.Helper()
	tr := New()
	n0, err := tr.AddChild(0, tr.Root(), Input{Leader: true})
	if err != nil {
		t.Fatal(err)
	}
	n1, err := tr.AddChild(1, tr.Root(), Input{})
	if err != nil {
		t.Fatal(err)
	}
	n2, err := tr.AddChild(2, n0, Input{})
	if err != nil {
		t.Fatal(err)
	}
	n3, err := tr.AddChild(3, n1, Input{})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []struct {
		v, src *Node
		m      int
	}{{n2, n0, 2}, {n2, n1, 1}, {n3, n0, 1}, {n3, n1, 2}} {
		if err := tr.AddRed(e.v, e.src, e.m); err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

func TestTreeBasics(t *testing.T) {
	tr := buildSmall(t)
	if tr.Depth() != 1 {
		t.Fatalf("Depth=%d", tr.Depth())
	}
	if tr.NumNodes() != 5 {
		t.Fatalf("NumNodes=%d", tr.NumNodes())
	}
	if got := len(tr.Level(-1)); got != 1 {
		t.Fatalf("root level size %d", got)
	}
	if tr.Level(7) != nil {
		t.Fatal("absent level should be nil")
	}
	if tr.NodeByID(3).Parent.ID != 1 {
		t.Fatal("parent wiring broken")
	}
	if tr.NodeByID(2).RedMult(tr.NodeByID(1)) != 1 {
		t.Fatal("red mult lookup broken")
	}
	if tr.NodeByID(2).RedMult(tr.NodeByID(3)) != 0 {
		t.Fatal("absent red edge should be 0")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAddChildErrors(t *testing.T) {
	tr := New()
	if _, err := tr.AddChild(0, nil, Input{}); err == nil {
		t.Error("nil parent must fail")
	}
	n0, _ := tr.AddChild(0, tr.Root(), Input{})
	if _, err := tr.AddChild(0, tr.Root(), Input{}); err == nil {
		t.Error("duplicate ID must fail")
	}
	// Level skipping: adding to a node two levels below the frontier.
	n1, _ := tr.AddChild(1, n0, Input{})
	_ = n1
	tr2 := New()
	r0, _ := tr2.AddChild(10, tr2.Root(), Input{})
	r1, _ := tr2.AddChild(11, r0, Input{})
	r2, _ := tr2.AddChild(12, r1, Input{})
	if r2.Level != 2 {
		t.Fatalf("level %d", r2.Level)
	}
}

func TestAddRedErrors(t *testing.T) {
	tr := buildSmall(t)
	n2 := tr.NodeByID(2)
	if err := tr.AddRed(n2, nil, 1); err == nil {
		t.Error("nil src must fail")
	}
	if err := tr.AddRed(n2, tr.NodeByID(3), 1); err == nil {
		t.Error("same-level red edge must fail")
	}
	if err := tr.AddRed(n2, tr.NodeByID(0), 0); err == nil {
		t.Error("zero multiplicity must fail")
	}
	// Accumulation.
	before := n2.RedMult(tr.NodeByID(0))
	if err := tr.AddRed(n2, tr.NodeByID(0), 3); err != nil {
		t.Fatal(err)
	}
	if n2.RedMult(tr.NodeByID(0)) != before+3 {
		t.Error("red multiplicity should accumulate")
	}
}

func TestTruncateLevels(t *testing.T) {
	tr := buildSmall(t)
	tr.TruncateLevels(1)
	if tr.Depth() != 0 {
		t.Fatalf("Depth=%d after truncate", tr.Depth())
	}
	if tr.NodeByID(2) != nil || tr.NodeByID(3) != nil {
		t.Fatal("truncated nodes still resolvable")
	}
	if len(tr.NodeByID(0).Children) != 0 {
		t.Fatal("dangling black edges after truncate")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Truncating beyond the depth is a no-op.
	tr.TruncateLevels(5)
	if tr.Depth() != 0 {
		t.Fatal("no-op truncate changed the tree")
	}
	// Rebuilding after truncation works.
	if _, err := tr.AddChild(2, tr.NodeByID(0), Input{}); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	tr := buildSmall(t)
	cp := tr.Clone()
	if !Isomorphic(tr, cp) {
		t.Fatal("clone not isomorphic")
	}
	cp.TruncateLevels(1)
	if tr.Depth() != 1 {
		t.Fatal("clone shares state")
	}
	if err := cp.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRedEdgeCount(t *testing.T) {
	tr := buildSmall(t)
	if got := tr.RedEdgeCount(-1); got != 4 {
		t.Fatalf("RedEdgeCount=%d, want 4", got)
	}
	if got := tr.RedEdgeCount(0); got != 0 {
		t.Fatalf("RedEdgeCount(0)=%d, want 0", got)
	}
}

func TestRenderASCII(t *testing.T) {
	out := RenderASCII(buildSmall(t))
	for _, want := range []string{"L-1: [-1]", "in=L:0", "r:(0x2,1x1)", "[3 <-1"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
}

func TestRenderDOT(t *testing.T) {
	out := RenderDOT(buildSmall(t), "x")
	for _, want := range []string{"digraph", "n0 -> n2 [color=black]", `label="2"`, "color=red"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q", want)
		}
	}
}

func TestLevelSizes(t *testing.T) {
	sizes := LevelSizes(buildSmall(t))
	if len(sizes) != 2 || sizes[0] != 2 || sizes[1] != 2 {
		t.Fatalf("LevelSizes=%v", sizes)
	}
}
