package historytree

import (
	"fmt"
	"math/big"
	"time"
)

// Solver is the incremental counterpart of Count and Frequencies. Where
// those rebuild coefficient vectors and re-run the whole elimination each
// time the tree gains a level, a Solver persists across levels: it keeps a
// reduced integer row basis of every balance equation seen so far, and when
// the deepest complete level advances from l to l+1 it (a) lifts the stored
// rows onto the new level's variables — each level-l column expands into
// the block of its children, which preserves pivots and rank — and (b)
// feeds only level l's balance equations, which are naturally sparse over
// the level-(l+1) basis. Elimination is fraction-free (Bareiss-style over
// big.Int with per-row content reduction), so the inner loop does integer
// multiply-subtract instead of allocating a big.Rat per cell.
//
// Because every equation of every consumed level is in the row space (the
// lift re-expresses old equations exactly as the from-scratch solver's
// descendant-coefficient expansion would), a rank of k−1 pins the same
// one-dimensional null space as Count's, and no post-hoc verification pass
// is needed: an equation the ray would violate is independent of the row
// space and would have pushed the rank to k instead.
//
// A Solver is attached to one tree at a time and assumes the consumed
// prefix only grows. Protocol resets rewrite the prefix while reusing node
// IDs, so the Solver watches Tree.Generation and rebuilds from level 0
// whenever it changes (or when asked about a shallower level than it has
// consumed). A Solver is not safe for concurrent use.
type Solver struct {
	t     *Tree
	gen   uint64
	level int // deepest consumed level; -1 when unattached

	basis   []*Node       // nodes of the consumed level, insertion order
	idx     map[*Node]int // basis node → column
	anc0    []*Node       // level-0 ancestor of each basis column
	covered []bool        // some ancestor (levels 1..level) has a cross red edge

	arith  Arith
	elim   *intElim // ArithBig elimination state
	melim  *modElim // ArithModular battery; survives resets (luck is system-independent)
	broken bool     // structural fallback: delegate to from-scratch until reset

	// The modular backend's replay skeleton: everything a fresh battery
	// prime needs to catch up on the consumed equations without re-reading
	// the consumed levels from the tree — which makes the solver
	// compaction-proof (Tree.CompactLevels may release those levels).
	// lifts[j] maps each level-j basis column to its level-(j-1) parent
	// column (lifts[0] is unused); feds[l] holds the fed balance rows of
	// level l in feed order, sparse over the level-(l+1) columns. Both are
	// nil under ArithBig, which never replays.
	lifts [][]int32
	feds  [][][]sparseCoef

	stats SolverStats
}

// sparseCoef is one nonzero coefficient of a recorded balance row.
type sparseCoef struct {
	col int32
	val int64
}

// SolverStats counts the work a Solver has done, for regression tests and
// run-level reporting.
type SolverStats struct {
	// Calls counts CountAt/FrequenciesAt invocations.
	Calls int
	// LevelsConsumed counts level-extension steps (each consumes one new
	// complete level's equations exactly once).
	LevelsConsumed int
	// Rebuilds counts full rebuilds forced by tree truncation (resets),
	// retargeting, or a shallower query.
	Rebuilds int
	// Equations counts balance equations fed into the elimination state.
	Equations int
	// Fallbacks counts calls answered by the from-scratch solver because
	// the tree prefix was structurally incomplete.
	Fallbacks int
	// SolveTime accumulates wall time spent inside CountAt/FrequenciesAt.
	SolveTime time.Duration

	// PrimesUsed is the number of battery primes the modular backend has
	// adopted over the solver's lifetime (evicted primes included). Zero
	// under ArithBig.
	PrimesUsed int
	// CRTReconstructions counts null-ray CRT+rational recoveries.
	CRTReconstructions int
	// UnluckyEvictions counts battery primes evicted for rank drop or
	// pivot-profile drift.
	UnluckyEvictions int
	// WitnessFallbacks counts calls answered by the big.Int witness because
	// the modular battery failed to certify within its attempt budget.
	WitnessFallbacks int
}

// NewSolver returns an empty Solver using the default (multi-modular)
// arithmetic backend; it attaches to a tree on first use.
func NewSolver() *Solver {
	return NewSolverWith(ArithModular)
}

// NewSolverWith returns an empty Solver using the given arithmetic backend.
func NewSolverWith(a Arith) *Solver {
	return &Solver{level: -1, arith: a}
}

// Stats returns the accumulated work counters.
func (s *Solver) Stats() SolverStats {
	st := s.stats
	if s.melim != nil {
		st.PrimesUsed = s.melim.nextPrime
		st.CRTReconstructions = s.melim.crtRecons
		st.UnluckyEvictions = s.melim.evictions
	}
	return st
}

// CountAt is the incremental equivalent of Count(t, completeLevels).
func (s *Solver) CountAt(t *Tree, completeLevels int) (CountResult, error) {
	start := time.Now()
	defer func() {
		s.stats.Calls++
		s.stats.SolveTime += time.Since(start)
	}()
	leaders := leaderNodes(t)
	if len(leaders) != 1 {
		return CountResult{}, fmt.Errorf("historytree: %d leader classes at level 0, want 1", len(leaders))
	}
	ok, err := s.ensure(t, completeLevels)
	if err != nil {
		return CountResult{}, err
	}
	if !ok {
		s.stats.Fallbacks++
		if t.CompactedLevels() > 0 {
			// The from-scratch path needs the whole prefix, which
			// compaction released. Unknown is always a sound answer here:
			// the protocol extends the tree and retries.
			return CountResult{}, nil
		}
		return Count(t, completeLevels)
	}
	ray, certified := s.resolve()
	if !certified {
		s.stats.WitnessFallbacks++
		if t.CompactedLevels() > 0 {
			return CountResult{}, nil
		}
		return Count(t, completeLevels)
	}
	if ray == nil {
		return CountResult{}, nil
	}
	return countFromWeights(t, s.weights(ray))
}

// FrequenciesAt is the incremental equivalent of Frequencies(t, completeLevels).
func (s *Solver) FrequenciesAt(t *Tree, completeLevels int) (FrequencyResult, error) {
	start := time.Now()
	defer func() {
		s.stats.Calls++
		s.stats.SolveTime += time.Since(start)
	}()
	ok, err := s.ensure(t, completeLevels)
	if err != nil {
		return FrequencyResult{}, err
	}
	if !ok {
		s.stats.Fallbacks++
		if t.CompactedLevels() > 0 {
			return FrequencyResult{}, nil
		}
		return Frequencies(t, completeLevels)
	}
	ray, certified := s.resolve()
	if !certified {
		s.stats.WitnessFallbacks++
		if t.CompactedLevels() > 0 {
			return FrequencyResult{}, nil
		}
		return Frequencies(t, completeLevels)
	}
	if ray == nil {
		return FrequencyResult{}, nil
	}
	return frequenciesFromWeights(t, s.weights(ray))
}

// ensure advances the consumed prefix to completeLevels, rebuilding first if
// the tree was truncated or the query regressed. It returns ok=false when
// the prefix is structurally incomplete (a consumed-level node without
// children), in which case the caller must fall back to the from-scratch
// path.
func (s *Solver) ensure(t *Tree, completeLevels int) (bool, error) {
	if completeLevels < 0 || completeLevels > t.Depth() {
		return false, fmt.Errorf("historytree: completeLevels %d out of range [0,%d]", completeLevels, t.Depth())
	}
	stale := s.t != t || s.gen != t.Generation() ||
		completeLevels < s.level ||
		(s.level >= 0 && len(s.basis) != len(t.Level(s.level)))
	if stale {
		if s.t != nil {
			s.stats.Rebuilds++
		}
		s.reset(t)
	}
	if s.broken {
		return false, nil
	}
	if s.level < 0 {
		base := t.Level(0)
		if len(base) == 0 {
			return false, fmt.Errorf("historytree: empty level 0")
		}
		s.level = 0
		s.basis = base
		s.idx = make(map[*Node]int, len(base))
		s.anc0 = make([]*Node, len(base))
		s.covered = make([]bool, len(base))
		for i, v := range base {
			s.idx[v] = i
			s.anc0[i] = v
		}
		if s.arith == ArithBig {
			s.elim = newIntElim(len(base))
		} else {
			if s.melim == nil {
				s.melim = newModElim(len(base), 2)
			} else {
				s.melim.reset(len(base))
			}
			// lifts is level-indexed; level 0 has no lift into it.
			s.lifts = append(s.lifts[:0], nil)
			s.feds = s.feds[:0]
		}
	}
	for s.level < completeLevels {
		if !s.extend(t) {
			s.broken = true
			return false, nil
		}
	}
	return true, nil
}

func (s *Solver) reset(t *Tree) {
	s.t = t
	s.gen = t.Generation()
	s.level = -1
	s.basis, s.idx, s.anc0, s.covered = nil, nil, nil, nil
	s.elim = nil
	s.lifts, s.feds = nil, nil
	s.broken = false
}

// ConsumedLevel returns the deepest level whose balance equations the
// solver has consumed (-1 before first use). Levels at or below it are
// never re-read from the tree — the gate Tree.CompactLevels callers need.
func (s *Solver) ConsumedLevel() int { return s.level }

// extend consumes one more level: it lifts the elimination state onto the
// next level's variables and feeds that level's balance equations. It
// returns false if the prefix is structurally incomplete for lifting.
func (s *Solver) extend(t *Tree) bool {
	next := t.Level(s.level + 1)
	if len(next) == 0 {
		return false
	}
	parentIdx := make([]int32, len(next))
	childCount := make([]int32, len(s.basis))
	for c, v := range next {
		j, ok := s.idx[v.Parent]
		if !ok {
			return false
		}
		parentIdx[c] = int32(j)
		childCount[j]++
	}
	for _, n := range childCount {
		if n == 0 {
			// A consumed-level class with no refinement: the prefix is not
			// actually complete, and lifting would drop a pivot column.
			return false
		}
	}

	// The new level's equations, collected before the basis moves so the
	// pair enumeration matches the from-scratch solver's.
	pairs := balancePairs(t, s.level)

	if s.arith == ArithBig {
		s.elim.lift(parentIdx, len(next))
	} else {
		s.melim.lift(parentIdx, len(next))
		s.lifts = append(s.lifts, parentIdx)
	}

	idx := make(map[*Node]int, len(next))
	anc0 := make([]*Node, len(next))
	covered := make([]bool, len(next))
	for c, v := range next {
		idx[v] = c
		anc0[c] = s.anc0[parentIdx[c]]
		covered[c] = s.covered[parentIdx[c]] || crossRed(v)
	}
	s.basis, s.idx, s.anc0, s.covered = next, idx, anc0, covered
	s.level++
	s.stats.LevelsConsumed++

	if s.arith == ArithBig {
		s.feedBig(pairs, idx, len(next))
	} else {
		s.feedModular(pairs, idx, len(next))
	}
	return true
}

// feedBig feeds one level's balance equations into the big.Int elimination.
func (s *Solver) feedBig(pairs []nodePair, idx map[*Node]int, k int) {
	row := make([]big.Int, k)
	for _, pair := range pairs {
		for i := range row {
			row[i].SetInt64(0)
		}
		used := false
		// A node is the child of exactly one of the pair, so each column is
		// written at most once.
		for _, c := range pair.w.Children {
			if m := c.RedMult(pair.u); m != 0 {
				row[idx[c]].SetInt64(int64(m))
				used = true
			}
		}
		for _, c := range pair.u.Children {
			if m := c.RedMult(pair.w); m != 0 {
				row[idx[c]].SetInt64(-int64(m))
				used = true
			}
		}
		if used {
			s.elim.addRow(row)
		}
		s.stats.Equations++
	}
}

// feedModular feeds one level's balance equations into the prime battery.
// The int64 row scratch lives in the battery and is recycled, so the
// steady-state feed's only allocations are the sparse row copies retained
// for the replay skeleton (a handful of words per fed equation).
func (s *Solver) feedModular(pairs []nodePair, idx map[*Node]int, k int) {
	e := s.melim
	if cap(e.intRow) < k {
		e.intRow = make([]int64, k, k+k/2+4)
	}
	row := e.intRow[:k]
	var coefs []sparseCoef
	fed := make([][]sparseCoef, 0, len(pairs))
	for _, pair := range pairs {
		coefs = coefs[:0]
		// A node is the child of exactly one of the pair, so each column
		// appears at most once.
		for _, c := range pair.w.Children {
			if m := c.RedMult(pair.u); m != 0 {
				coefs = append(coefs, sparseCoef{col: int32(idx[c]), val: int64(m)})
			}
		}
		for _, c := range pair.u.Children {
			if m := c.RedMult(pair.w); m != 0 {
				coefs = append(coefs, sparseCoef{col: int32(idx[c]), val: -int64(m)})
			}
		}
		s.stats.Equations++
		if len(coefs) == 0 {
			continue
		}
		for i := range row {
			row[i] = 0
		}
		for _, cv := range coefs {
			row[cv.col] = cv.val
		}
		e.addRow(row)
		fed = append(fed, append([]sparseCoef(nil), coefs...))
	}
	s.feds = append(s.feds, fed)
}

// resolve extracts the positively-oriented null ray, or nil when the system
// is not (or not yet) determined. The covered gate skips extraction when
// some basis class has no red-edge constraint anywhere on its ancestor
// chain: its column is zero in every equation, so the null space has
// dimension ≥ 2 (or, degenerately, the ray would be a unit vector and fail
// the positivity check) — either way the answer is unknown.
//
// certified=false means the modular battery could not certify a decision
// within its attempt budget and the caller must delegate this call to the
// big.Int witness; it never happens under ArithBig.
func (s *Solver) resolve() (ray []*big.Rat, certified bool) {
	k := len(s.basis)
	if k >= 2 {
		for _, c := range s.covered {
			if !c {
				return nil, true
			}
		}
	}
	if s.arith != ArithBig {
		return s.resolveModular(k)
	}
	if s.elim.rank != k-1 {
		return nil, true
	}
	ray = s.elim.nullRay()
	if !orientPositive(ray) {
		return nil, true
	}
	return ray, true
}

// resolveModular is resolve over the prime battery: it certifies the rank
// decision (growing the battery to the Hadamard-bound size and replaying
// the consumed equations into fresh primes straight from the tree), evicts
// unlucky primes against the battery consensus, and CRT-reconstructs the
// exact null ray at corank 1. Soundness: every lucky prime sees the exact
// rank and pivot profile, an unlucky prime must divide one of two fixed
// nonzero minors bounded by the Hadamard bound, and the battery holds more
// primes than those minors admit 30-bit divisors — so after eviction the
// per-prime rays are reductions of the one exact primitive ray and the CRT
// modulus exceeds twice the square of its entry bound.
func (s *Solver) resolveModular(k int) ([]*big.Rat, bool) {
	e := s.melim
	for attempt := 0; attempt < 5; attempt++ {
		r := e.maxRank()
		if r >= k {
			return nil, true
		}
		if r < k-1 {
			if len(e.primes) >= e.neededPrimes(false) {
				return nil, true // certified: rank genuinely below k−1
			}
			e.growTo(e.neededPrimes(false), s.replayInto)
			continue
		}
		if e.evictUnlucky() > 0 || len(e.primes) < e.neededPrimes(true) {
			e.growTo(e.neededPrimes(true), s.replayInto)
			continue
		}
		ray := e.nullRay()
		if ray == nil {
			continue
		}
		if !orientPositive(ray) {
			return nil, true
		}
		return ray, true
	}
	return nil, false
}

// replayInto feeds a fresh battery prime the full consumed balance system,
// reconstructed from the recorded replay skeleton (lifts + sparse fed
// rows) and expanded onto the current basis exactly as the from-scratch
// solver would expand it. The expansion of each old equation is the lift
// of the row the incremental feed saw, so the fresh prime reduces the same
// row space as its elders — just without their elimination history.
// Reading only the skeleton (never the tree) is what lets
// Tree.CompactLevels release the consumed levels underneath a live solver.
func (s *Solver) replayInto(ps *primeState) {
	e := s.melim
	k := len(s.basis)
	if cap(e.intRow) < k {
		e.intRow = make([]int64, k, k+k/2+4)
	}
	row := e.intRow[:k]
	// anc[j][i] is the level-j ancestor column of current column i, built
	// by composing the recorded lifts top-down.
	anc := make([][]int32, s.level+1)
	cur := make([]int32, k)
	for i := range cur {
		cur[i] = int32(i)
	}
	anc[s.level] = cur
	for j := s.level; j >= 2; j-- {
		lift := s.lifts[j]
		up := anc[j]
		a := make([]int32, k)
		for i := range a {
			a[i] = lift[up[i]]
		}
		anc[j-1] = a
	}
	// Replay levels in feed order (0..level−1) so row order matches the
	// original feed. Each sparse row is expanded through a dense
	// level-(l+1) scratch: row[i] = dense[anc_{l+1}(i)].
	var dense []int64
	fed := 0
	for l := 0; l < s.level && fed < e.rowsFed; l++ {
		a := anc[l+1]
		width := len(s.lifts[l+1])
		if cap(dense) < width {
			dense = make([]int64, width)
		}
		d := dense[:width]
		for _, coefs := range s.feds[l] {
			if fed >= e.rowsFed {
				break
			}
			for _, cv := range coefs {
				d[cv.col] = cv.val
			}
			for i := 0; i < k; i++ {
				row[i] = d[a[i]]
			}
			for _, cv := range coefs {
				d[cv.col] = 0
			}
			e.feedRow(ps, row)
			fed++
		}
	}
}

// weights folds the basis ray into per-level-0-class weights.
func (s *Solver) weights(ray []*big.Rat) map[*Node]*big.Rat {
	out := make(map[*Node]*big.Rat, len(s.t.Level(0)))
	for i, x := range ray {
		v := s.anc0[i]
		if w, ok := out[v]; ok {
			w.Add(w, x)
		} else {
			out[v] = new(big.Rat).Set(x)
		}
	}
	return out
}

// crossRed reports whether v has a red edge from a class other than its own
// parent. Only such edges produce balance equations, so a class whose whole
// ancestor chain lacks them is unconstrained.
func crossRed(v *Node) bool {
	for _, e := range v.Red {
		if e.Src != v.Parent {
			return true
		}
	}
	return false
}

// intElim is a fraction-free reduced row-echelon basis over the integers:
// rows are big.Int vectors divided by their content, each with a positive
// pivot entry that is the only nonzero in its column. It supports the two
// operations the incremental solver needs — adding a row, and lifting every
// row onto a refined variable set — plus null-ray extraction at corank 1.
type intElim struct {
	cols  int
	rows  [][]big.Int
	pivot []int
	rank  int
	has   []bool // has[c] = some row pivots at column c

	t1, t2, g big.Int // scratch
}

func newIntElim(cols int) *intElim {
	return &intElim{cols: cols, has: make([]bool, cols)}
}

// addRow reduces row against the basis and inserts it if independent. The
// backing array is copied only on insertion, so callers may reuse it.
func (e *intElim) addRow(row []big.Int) {
	for i := range e.rows {
		p := e.pivot[i]
		if row[p].Sign() == 0 {
			continue
		}
		// row ← a·row − b·basisRow, the fraction-free elimination step.
		e.t2.Set(&row[p])
		a, br := &e.rows[i][p], e.rows[i]
		for c := 0; c < e.cols; c++ {
			row[c].Mul(&row[c], a)
			if br[c].Sign() != 0 {
				e.t1.Mul(&e.t2, &br[c])
				row[c].Sub(&row[c], &e.t1)
			}
		}
		reduceContent(row, &e.g)
	}
	p := -1
	for c := 0; c < e.cols; c++ {
		if row[c].Sign() != 0 {
			p = c
			break
		}
	}
	if p < 0 {
		return // dependent
	}
	reduceContent(row, &e.g)
	if row[p].Sign() < 0 {
		for c := range row {
			row[c].Neg(&row[c])
		}
	}
	kept := make([]big.Int, e.cols)
	for c := range kept {
		kept[c].Set(&row[c])
	}
	// Back-eliminate the new pivot from existing rows to keep full
	// reduction (needed for O(1)-support rows at corank 1).
	for i := range e.rows {
		br := e.rows[i]
		if br[p].Sign() == 0 {
			continue
		}
		e.t2.Set(&br[p])
		for c := 0; c < e.cols; c++ {
			br[c].Mul(&br[c], &kept[p])
			if kept[c].Sign() != 0 {
				e.t1.Mul(&e.t2, &kept[c])
				br[c].Sub(&br[c], &e.t1)
			}
		}
		reduceContent(br, &e.g)
	}
	e.rows = append(e.rows, kept)
	e.pivot = append(e.pivot, p)
	e.has[p] = true
	e.rank++
}

// lift maps the state onto a refined variable set: old column j becomes the
// block of new columns c with parentIdx[c] == j. Old equations over class
// cardinalities hold verbatim when each cardinality is replaced by the sum
// of its children's, so every lifted row is a valid equation over the new
// variables; distinct pivots map to disjoint child blocks, preserving
// independence, full reduction, and rank. Each row's new pivot is the first
// child of its old pivot. Every old pivot column must have at least one
// child (the caller checks all columns).
func (e *intElim) lift(parentIdx []int32, newCols int) {
	firstChild := make([]int, e.cols)
	for j := range firstChild {
		firstChild[j] = -1
	}
	for c := newCols - 1; c >= 0; c-- {
		firstChild[parentIdx[c]] = c
	}
	for i := range e.rows {
		old := e.rows[i]
		lifted := make([]big.Int, newCols)
		for c := 0; c < newCols; c++ {
			lifted[c].Set(&old[parentIdx[c]])
		}
		e.rows[i] = lifted
		e.pivot[i] = firstChild[e.pivot[i]]
	}
	e.cols = newCols
	e.has = make([]bool, newCols)
	for _, p := range e.pivot {
		e.has[p] = true
	}
}

// nullRay returns a nonzero vector of the null space; it must only be
// called at rank == cols−1. Full reduction means each row is supported on
// its pivot and the single free column, so the ray reads off directly.
func (e *intElim) nullRay() []*big.Rat {
	free := -1
	for c := 0; c < e.cols; c++ {
		if !e.has[c] {
			free = c
			break
		}
	}
	out := make([]*big.Rat, e.cols)
	for c := range out {
		out[c] = new(big.Rat)
	}
	out[free].SetInt64(1)
	for i := range e.rows {
		b := &e.rows[i][free]
		if b.Sign() == 0 {
			continue
		}
		out[e.pivot[i]].SetFrac(b, &e.rows[i][e.pivot[i]])
		out[e.pivot[i]].Neg(out[e.pivot[i]])
	}
	return out
}

// reduceContent divides the row by the gcd of its entries (its content),
// bounding coefficient growth across fraction-free steps.
func reduceContent(row []big.Int, g *big.Int) {
	g.SetInt64(0)
	for i := range row {
		if row[i].Sign() == 0 {
			continue
		}
		g.GCD(nil, nil, g, &row[i])
		if g.Cmp(oneInt) == 0 {
			return
		}
	}
	if g.Sign() == 0 || g.Cmp(oneInt) == 0 {
		return
	}
	for i := range row {
		if row[i].Sign() != 0 {
			row[i].Quo(&row[i], g)
		}
	}
}

var oneInt = big.NewInt(1)
