package historytree

import (
	"slices"

	"anondyn/internal/dynnet"
)

// This file is the batched structure-of-arrays refinement pass (DESIGN.md
// decision 15). One round of partition refinement is reorganized from n
// independent pointer-chasing passes (gather a []pair per process, hash it,
// probe a slot table of boxed groups) into a handful of linear sweeps over
// flat arrays:
//
//  1. CSR gather: count each process's observation degree over the round's
//     canonical links, prefix-sum the counts into span offsets, and scatter
//     every observation into one contiguous arena — a packed uint64 per
//     observation, (source class ID << 32 | multiplicity).
//  2. Canonicalize: sort each span in place (packed keys order by source ID
//     first, so a plain integer sort is the pair sort) and merge duplicate
//     sources by summing multiplicities.
//  3. Intern + create: walk processes in ascending order, interning each
//     (current class, canonical span) key in a generation-stamped int32
//     table whose slots point back into the arena. The first process of a
//     new group creates the child node — the same first-occurrence order as
//     the witness refiner, so node creation order, IDs, and red-edge
//     insertion order are byte-identical.
//  4. Counting pass: group cardinalities come from one histogram over the
//     interned keys, replacing n individual map increments with one map
//     update per group.
//
// The interned keys double as the cross-process structural-sharing signal:
// two processes with equal keys are indistinguishable this round and the
// whole group is fed by one node creation (step 3) and one cardinality
// update (step 4) instead of n.
//
// The witness refiner (build.go refine) is retained as the equivalence
// oracle: batch_test.go, the quick suite, and FuzzBatchedRefine pin the two
// byte-identical, and refine falls back to it for the (absurd in-model)
// rounds whose multiplicities overflow the packed representation.

// packedMultBits is the multiplicity field width of a packed observation.
// Source IDs occupy the high bits, so packed integer order is (id, mult)
// lexicographic order — exactly the canonical pair order.
const packedMultBits = 32

// maxPackedMult bounds a single link multiplicity so that per-span merge
// sums stay below 2^32 in every realistic round (the merge guard catches
// the rest exactly).
const maxPackedMult = 1 << 30

func packObs(id, mult int) uint64 {
	return uint64(id)<<packedMultBits | uint64(mult)
}

func unpackID(k uint64) int   { return int(k >> packedMultBits) }
func unpackMult(k uint64) int { return int(k & (1<<packedMultBits - 1)) }

// batchSlot is one open-addressing slot of the interning table. The span is
// referenced by arena offsets instead of a stored copy: canonical spans stay
// where the gather pass put them, so interning moves no memory.
type batchSlot struct {
	gen      uint32
	gid      int32 // dense group key, assigned in first-occurrence order
	parent   int32 // current-class node ID
	hash     uint64
	off, end int32 // canonical span location in the arena
}

// batchRefiner holds the flat per-round scratch of the batched pass. All
// slices are reused across rounds; in steady state refine's only allocation
// is the returned level slice.
type batchRefiner struct {
	deg   []int32  // per-process degree counts, then scatter cursors
	off   []int32  // span start offsets (len n+1)
	end   []int32  // canonical span end per process, after merge
	gid   []int32  // per-process interned group key
	arena []uint64 // packed observations, all processes contiguous

	slots []batchSlot // power-of-two interning table
	gen   uint32

	groupNode []*Node // group key -> created child node
	groupCard []int32 // counting-pass histogram over group keys

	// witness is the lazily created fallback refiner for rounds whose
	// multiplicities overflow the packed representation. nil on every
	// realistic input.
	witness *refiner
}

func newBatchRefiner(n int) *batchRefiner {
	size := 4
	for size < 4*n {
		size <<= 1
	}
	return &batchRefiner{
		deg:       make([]int32, n),
		off:       make([]int32, n+1),
		end:       make([]int32, n),
		gid:       make([]int32, n),
		slots:     make([]batchSlot, size),
		groupNode: make([]*Node, n),
		groupCard: make([]int32, n),
	}
}

// refine is the batched counterpart of refiner.refine: identical resulting
// tree, node IDs, red edges, and cardinalities, produced by the SoA pass
// described at the top of the file.
func (r *batchRefiner) refine(t *Tree, g *dynnet.Multigraph, cur []*Node, nextID *int, card map[int]int) ([]*Node, error) {
	n := len(cur)
	links := g.CanonicalLinks()

	// Pass 1a: degree counts (observation entries per process, one per link
	// endpoint), guarding single-link multiplicities.
	deg := r.deg
	for p := range deg {
		deg[p] = 0
	}
	wide := false
	for _, l := range links {
		if l.Mult >= maxPackedMult || l.Mult < 0 {
			wide = true
			break
		}
		deg[l.U]++
		if l.U != l.V {
			deg[l.V]++
		}
	}
	if wide {
		return r.refineWitness(t, g, cur, nextID, card)
	}

	// Pass 1b: prefix-sum into span offsets; deg becomes the scatter cursor.
	off := r.off
	total := int32(0)
	for p := 0; p < n; p++ {
		off[p] = total
		total += deg[p]
		deg[p] = off[p]
	}
	off[n] = total
	if cap(r.arena) < int(total) {
		r.arena = make([]uint64, total)
	}
	arena := r.arena[:total]

	// Pass 1c: scatter the packed observations into the arena.
	for _, l := range links {
		if l.U == l.V {
			arena[deg[l.U]] = packObs(cur[l.U].ID, l.Mult)
			deg[l.U]++
			continue
		}
		arena[deg[l.U]] = packObs(cur[l.V].ID, l.Mult)
		deg[l.U]++
		arena[deg[l.V]] = packObs(cur[l.U].ID, l.Mult)
		deg[l.V]++
	}

	// Pass 2: canonicalize every span in place. Packed keys sort by source
	// ID first, so equal sources are adjacent after the integer sort and the
	// merge accumulates their multiplicities; an accumulated sum reaching the
	// ID bits falls back to the witness for the whole round (the links are
	// untouched, so the witness re-gathers cleanly).
	end := r.end
	for p := 0; p < n; p++ {
		s := arena[off[p]:off[p+1]]
		sortPacked(s)
		w := 0
		for i := 1; i < len(s); i++ {
			if s[i]>>packedMultBits == s[w]>>packedMultBits {
				sum := s[w]&(1<<packedMultBits-1) + s[i]&(1<<packedMultBits-1)
				if sum>>packedMultBits != 0 {
					return r.refineWitness(t, g, cur, nextID, card)
				}
				s[w] = s[w]&^uint64(1<<packedMultBits-1) | sum
			} else {
				w++
				s[w] = s[i]
			}
		}
		if len(s) == 0 {
			end[p] = off[p]
		} else {
			end[p] = off[p] + int32(w) + 1
		}
	}

	// Pass 3: intern (class, canonical span) keys in ascending process
	// order, creating each group's child node at its first occurrence — the
	// witness's exact creation order.
	r.gen++
	numGroups := int32(0)
	next := make([]*Node, n)
	for p := 0; p < n; p++ {
		span := arena[off[p]:end[p]]
		parent := cur[p]
		h := hashPacked(uint64(parent.ID), span)
		slot := r.lookup(h, int32(parent.ID), span, arena)
		if slot.gen != r.gen {
			node, err := t.AddChild(*nextID, parent, Input{})
			if err != nil {
				return nil, err
			}
			*nextID++
			// Spans are sorted by source ID: AddRed insertion order matches
			// the witness's sorted-pairs loop.
			for _, pk := range span {
				if err := t.AddRed(node, t.NodeByID(unpackID(pk)), unpackMult(pk)); err != nil {
					return nil, err
				}
			}
			*slot = batchSlot{gen: r.gen, gid: numGroups, parent: int32(parent.ID), hash: h, off: off[p], end: end[p]}
			if int(numGroups) >= len(r.groupNode) {
				r.groupNode = append(r.groupNode, nil)
				r.groupCard = append(r.groupCard, 0)
			}
			r.groupNode[numGroups] = node
			numGroups++
		}
		r.gid[p] = slot.gid
		next[p] = r.groupNode[slot.gid]
	}

	// Pass 4: counting pass over the interned keys — one histogram sweep,
	// then a single cardinality update per group instead of one per process.
	gc := r.groupCard[:numGroups]
	for i := range gc {
		gc[i] = 0
	}
	for _, k := range r.gid[:n] {
		gc[k]++
	}
	for k, c := range gc {
		card[r.groupNode[k].ID] += int(c)
	}
	return next, nil
}

// refineWitness delegates one round to the witness refiner (multiplicities
// beyond the packed range); the lazily created instance is kept for reuse.
func (r *batchRefiner) refineWitness(t *Tree, g *dynnet.Multigraph, cur []*Node, nextID *int, card map[int]int) ([]*Node, error) {
	if r.witness == nil {
		r.witness = newRefiner(len(cur))
	}
	return r.witness.refine(t, g, cur, nextID, card)
}

// lookup returns the live slot holding (parent, span), or the empty slot
// where that group should be inserted. Span equality is a flat word compare
// inside the arena.
func (r *batchRefiner) lookup(h uint64, parent int32, span []uint64, arena []uint64) *batchSlot {
	mask := uint64(len(r.slots) - 1)
	for idx := h & mask; ; idx = (idx + 1) & mask {
		s := &r.slots[idx]
		if s.gen != r.gen {
			return s
		}
		if s.hash == h && s.parent == parent && spanEqual(arena[s.off:s.end], span) {
			return s
		}
	}
}

func spanEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// hashPacked is FNV-1a over (seed, packed span): one multiply per
// observation where the pair-slice hash needed two.
func hashPacked(seed uint64, span []uint64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	h = (h ^ seed) * prime64
	for _, k := range span {
		h = (h ^ k) * prime64
	}
	return h
}

// sortPacked sorts a span of packed observations. Spans are usually a
// handful of entries (a process's degree in one round), where insertion
// sort beats the general sort; large spans fall through to slices.Sort.
func sortPacked(s []uint64) {
	if len(s) <= 16 {
		for i := 1; i < len(s); i++ {
			k := s[i]
			j := i - 1
			for j >= 0 && s[j] > k {
				s[j+1] = s[j]
				j--
			}
			s[j+1] = k
		}
		return
	}
	slices.Sort(s)
}
