package engine

import (
	"errors"
	"fmt"
	"time"
)

// ErrWatchdog is reported by a run that exceeded Config.Deadline. Test for
// it with errors.Is; the concrete *WatchdogError carries the details.
var ErrWatchdog = errors.New("engine: watchdog deadline exceeded")

// WatchdogError reports that a run was still active when its wall-clock
// deadline (Config.Deadline) elapsed. It is how the engine turns hangs —
// protocols wedged by out-of-model faults, stop conditions that can never
// hold — into structured failures instead of stuck goroutines.
type WatchdogError struct {
	// Rounds is the number of completed rounds when the deadline fired.
	Rounds int
	// Limit is the configured deadline.
	Limit time.Duration
}

// Error implements the error interface.
func (e *WatchdogError) Error() string {
	return fmt.Sprintf("engine: watchdog: run still active after %v (%d rounds completed)",
		e.Limit, e.Rounds)
}

// Unwrap makes errors.Is(err, ErrWatchdog) hold for *WatchdogError values.
func (e *WatchdogError) Unwrap() error { return ErrWatchdog }

// watchdog tracks a run's optional wall-clock deadline. The zero value (no
// limit) never fires and its check performs no clock reads.
type watchdog struct {
	limit    time.Duration
	deadline time.Time
}

func newWatchdog(limit time.Duration) watchdog {
	w := watchdog{limit: limit}
	if limit > 0 {
		w.deadline = time.Now().Add(limit)
	}
	return w
}

// check returns a *WatchdogError once the deadline has passed, nil before.
func (w *watchdog) check(rounds int) error {
	if w.limit <= 0 || time.Now().Before(w.deadline) {
		return nil
	}
	return &WatchdogError{Rounds: rounds, Limit: w.limit}
}

// timer returns a timer firing at the deadline so select-based loops can
// observe the watchdog even while blocked, or a nil channel when no
// deadline is set (a nil channel never selects).
func (w *watchdog) timer() (*time.Timer, <-chan time.Time) {
	if w.limit <= 0 {
		return nil, nil
	}
	t := time.NewTimer(time.Until(w.deadline))
	return t, t.C
}

// fail builds the structured error for a deadline observed via timer().
func (w *watchdog) fail(rounds int) error {
	return &WatchdogError{Rounds: rounds, Limit: w.limit}
}
