package engine

import (
	"runtime"
	"testing"
	"time"

	"anondyn/internal/dynnet"
)

// TestNoGoroutineLeaks verifies that Run waits for every process goroutine
// before returning, under normal completion, early stop, and round-budget
// cancellation alike.
func TestNoGoroutineLeaks(t *testing.T) {
	baseline := runtime.NumGoroutine()

	runs := []struct {
		name string
		do   func() error
	}{
		{name: "normal", do: func() error {
			_, err := Run(Config{Schedule: dynnet.NewStatic(dynnet.Cycle(4)), MaxRounds: 10},
				[]Coroutine{echoProc(3), echoProc(3), echoProc(3), echoProc(3)})
			return err
		}},
		{name: "stop-when", do: func() error {
			forever := CoroutineFunc(func(tr *Transport) (any, error) {
				for {
					if _, err := tr.SendAndReceive(nil); err != nil {
						return nil, err
					}
				}
			})
			twoRounds := CoroutineFunc(func(tr *Transport) (any, error) {
				for i := 0; i < 2; i++ {
					if _, err := tr.SendAndReceive(nil); err != nil {
						return nil, err
					}
				}
				return "done", nil
			})
			_, err := Run(Config{
				Schedule:  dynnet.NewStatic(dynnet.Path(3)),
				MaxRounds: 100,
				StopWhen:  func(out map[int]any) bool { _, ok := out[0]; return ok },
			}, []Coroutine{twoRounds, forever, forever})
			return err
		}},
		{name: "max-rounds", do: func() error {
			forever := CoroutineFunc(func(tr *Transport) (any, error) {
				for {
					if _, err := tr.SendAndReceive(nil); err != nil {
						return nil, err
					}
				}
			})
			_, err := Run(Config{Schedule: dynnet.NewStatic(dynnet.Path(2)), MaxRounds: 3},
				[]Coroutine{forever, forever})
			if err == nil {
				return nil
			}
			return nil // ErrMaxRounds expected
		}},
	}
	for _, r := range runs {
		for i := 0; i < 5; i++ {
			if err := r.do(); err != nil {
				t.Fatalf("%s: %v", r.name, err)
			}
		}
	}

	// Let any stragglers finish, then compare.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: baseline %d, now %d", baseline, runtime.NumGoroutine())
}
