package engine

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"anondyn/internal/dynnet"
)

// TestNoGoroutineLeaks verifies that Run waits for every process goroutine
// before returning — under normal completion, early stop, and round-budget
// cancellation alike, and on both schedulers.
func TestNoGoroutineLeaks(t *testing.T) {
	baseline := runtime.NumGoroutine()

	runs := []struct {
		name string
		do   func(sched Scheduler) error
	}{
		{name: "normal", do: func(sched Scheduler) error {
			_, err := Run(Config{Schedule: dynnet.NewStatic(dynnet.Cycle(4)), MaxRounds: 10, Scheduler: sched},
				[]Coroutine{echoProc(3), echoProc(3), echoProc(3), echoProc(3)})
			return err
		}},
		{name: "stop-when", do: func(sched Scheduler) error {
			forever := CoroutineFunc(func(tr *Transport) (any, error) {
				for {
					if _, err := tr.SendAndReceive(nil); err != nil {
						return nil, err
					}
				}
			})
			twoRounds := CoroutineFunc(func(tr *Transport) (any, error) {
				for i := 0; i < 2; i++ {
					if _, err := tr.SendAndReceive(nil); err != nil {
						return nil, err
					}
				}
				return "done", nil
			})
			_, err := Run(Config{
				Schedule:  dynnet.NewStatic(dynnet.Path(3)),
				MaxRounds: 100,
				Scheduler: sched,
				StopWhen:  func(out map[int]any) bool { _, ok := out[0]; return ok },
			}, []Coroutine{twoRounds, forever, forever})
			return err
		}},
		{name: "max-rounds", do: func(sched Scheduler) error {
			forever := CoroutineFunc(func(tr *Transport) (any, error) {
				for {
					if _, err := tr.SendAndReceive(nil); err != nil {
						return nil, err
					}
				}
			})
			_, err := Run(Config{Schedule: dynnet.NewStatic(dynnet.Path(2)), MaxRounds: 3, Scheduler: sched},
				[]Coroutine{forever, forever})
			if err == nil {
				return nil
			}
			return nil // ErrMaxRounds expected
		}},
		{name: "context-cancel-pre-cancelled", do: func(sched Scheduler) error {
			forever := CoroutineFunc(func(tr *Transport) (any, error) {
				for {
					if _, err := tr.SendAndReceive(nil); err != nil {
						return nil, err
					}
				}
			})
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			_, err := RunContext(ctx, Config{Schedule: dynnet.NewStatic(dynnet.Path(3)), MaxRounds: 1 << 20, Scheduler: sched},
				[]Coroutine{forever, forever, forever})
			if !errors.Is(err, context.Canceled) {
				return err
			}
			return nil
		}},
		{name: "context-cancel-mid-round", do: func(sched Scheduler) error {
			// One process stalls before submitting its round-4 message, so
			// the coordinator is parked waiting for submissions when the
			// cancellation lands — the cancel path must release both the
			// submitted processes (blocked on the round barrier) and, once
			// the straggler wakes, the straggler itself.
			release := make(chan struct{})
			straggler := CoroutineFunc(func(tr *Transport) (any, error) {
				for {
					if tr.Round() == 3 {
						<-release
					}
					if _, err := tr.SendAndReceive(nil); err != nil {
						return nil, err
					}
				}
			})
			forever := CoroutineFunc(func(tr *Transport) (any, error) {
				for {
					if _, err := tr.SendAndReceive(nil); err != nil {
						return nil, err
					}
				}
			})
			ctx, cancel := context.WithCancel(context.Background())
			done := make(chan error, 1)
			go func() {
				_, err := RunContext(ctx, Config{Schedule: dynnet.NewStatic(dynnet.Cycle(3)), MaxRounds: 1 << 20, Scheduler: sched},
					[]Coroutine{straggler, forever, forever})
				done <- err
			}()
			time.Sleep(5 * time.Millisecond) // let the run reach round 4 and park
			cancel()
			close(release)
			err := <-done
			if !errors.Is(err, context.Canceled) {
				return err
			}
			return nil
		}},
	}
	for _, sched := range schedulers {
		for _, r := range runs {
			for i := 0; i < 5; i++ {
				if err := r.do(sched); err != nil {
					t.Fatalf("%s under %v: %v", r.name, sched, err)
				}
			}
		}
	}

	// Let any stragglers finish, then compare.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: baseline %d, now %d", baseline, runtime.NumGoroutine())
}
