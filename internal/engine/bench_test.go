package engine

import (
	"fmt"
	"testing"

	"anondyn/internal/dynnet"
)

// BenchmarkRoundThroughput measures raw engine performance under each
// scheduler: n processes echoing over a static cycle for 100 rounds per
// iteration.
func BenchmarkRoundThroughput(b *testing.B) {
	for _, sched := range schedulers {
		for _, n := range []int{8, 32, 128} {
			b.Run(fmt.Sprintf("%v/n=%d", sched, n), func(b *testing.B) {
				const rounds = 100
				schedule := dynnet.NewStatic(dynnet.Cycle(n))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					procs := make([]Coroutine, n)
					for j := range procs {
						procs[j] = CoroutineFunc(func(tr *Transport) (any, error) {
							for r := 0; r < rounds; r++ {
								if _, err := tr.SendAndReceive(r); err != nil {
									return nil, err
								}
							}
							return nil, nil
						})
					}
					res, err := Run(Config{Schedule: schedule, MaxRounds: rounds + 1, Scheduler: sched}, procs)
					if err != nil {
						b.Fatal(err)
					}
					if res.Rounds != rounds {
						b.Fatalf("rounds=%d", res.Rounds)
					}
				}
				b.ReportMetric(float64(rounds)*float64(n), "msgs/op")
			})
		}
	}
}

// BenchmarkRunSteppers measures the zero-synchronization stepper fast
// path on the same echo workload as BenchmarkRoundThroughput.
func BenchmarkRunSteppers(b *testing.B) {
	for _, n := range []int{8, 32, 128} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			const rounds = 100
			schedule := dynnet.NewStatic(dynnet.Cycle(n))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				steppers := make([]Stepper, n)
				for pid := range steppers {
					steppers[pid] = &countStepper{pid: pid, rounds: rounds}
				}
				res, err := RunSteppers(Config{Schedule: schedule, MaxRounds: rounds + 1}, steppers)
				if err != nil {
					b.Fatal(err)
				}
				if res.Rounds != rounds {
					b.Fatalf("rounds=%d", res.Rounds)
				}
			}
			b.ReportMetric(float64(rounds)*float64(n), "msgs/op")
		})
	}
}

// BenchmarkDeliverDense stresses the coordinator's delivery path on a
// complete graph, where each round routes Θ(n²) messages; the per-round
// buffers are reused, so steady-state rounds should allocate almost
// nothing inside deliver.
func BenchmarkDeliverDense(b *testing.B) {
	for _, n := range []int{8, 32, 64} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			const rounds = 50
			sched := dynnet.NewStatic(dynnet.Complete(n))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				procs := make([]Coroutine, n)
				for j := range procs {
					procs[j] = CoroutineFunc(func(tr *Transport) (any, error) {
						got := 0
						for r := 0; r < rounds; r++ {
							in, err := tr.SendAndReceive(r)
							if err != nil {
								return nil, err
							}
							got += len(in)
						}
						return got, nil
					})
				}
				res, err := Run(Config{Schedule: sched, MaxRounds: rounds + 1}, procs)
				if err != nil {
					b.Fatal(err)
				}
				if want := rounds * (n - 1); res.Outputs[0].(int) != want {
					b.Fatalf("deliveries=%d, want %d", res.Outputs[0], want)
				}
			}
			b.ReportMetric(float64(rounds)*float64(n)*float64(n-1), "msgs/op")
		})
	}
}
