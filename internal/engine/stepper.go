package engine

import (
	"context"
	"fmt"
)

// Stepper is the event-driven alternative to Coroutine: a process expressed
// as an explicit state machine. The engine calls Compose to obtain the
// message for the current round, delivers the round's received multiset via
// Deliver, and stops the process once Done reports an output.
//
// Steppers are convenient for simple protocols (the baselines in
// internal/baseline). They run fastest on RunSteppers — a plain
// function-call round loop with zero synchronization — and can also be
// wrapped into a Coroutine via FromStepper to run on either coroutine
// scheduler; all paths share the routing core, so the results are
// identical.
type Stepper interface {
	// Compose returns the message to broadcast in the current round.
	Compose() Message
	// Deliver hands over the multiset of messages received this round. The
	// slice is only valid until the next round's delivery (the engine
	// round-robins the backing storage); implementations that retain
	// messages across rounds must copy them.
	Deliver(msgs []Message)
	// Done reports whether the process has terminated, and if so its output.
	Done() (output any, done bool)
}

// FromStepper wraps a Stepper as a Coroutine. Done is checked before every
// round, so a Stepper that is done immediately never communicates.
func FromStepper(s Stepper) Coroutine {
	return CoroutineFunc(func(t *Transport) (any, error) {
		for {
			if out, done := s.Done(); done {
				return out, nil
			}
			msgs, err := t.SendAndReceive(s.Compose())
			if err != nil {
				return nil, err
			}
			s.Deliver(msgs)
		}
	})
}

// RunSteppers executes one Stepper per process in a direct function-call
// round loop: Done → Compose → route → Deliver, with zero synchronization
// — no goroutines, channels, or selects anywhere on the path. It is the
// fastest way to run state-machine protocols; the round semantics
// (barriers, delivery order, accounting, StopWhen, MaxRounds, BitLimit,
// Trace) are identical to running FromStepper(s) on either coroutine
// scheduler. Config.Scheduler is ignored.
func RunSteppers(cfg Config, steppers []Stepper) (*Result, error) {
	return RunSteppersContext(context.Background(), cfg, steppers)
}

// RunSteppersContext is RunSteppers with external cancellation, observed at
// round boundaries: when ctx is cancelled the loop stops before the next
// round and returns the partial Result alongside an error wrapping ctx's
// cause.
func RunSteppersContext(ctx context.Context, cfg Config, steppers []Stepper) (*Result, error) {
	n, err := cfg.validate(len(steppers))
	if err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}

	rt := newRouter(&cfg, n)
	wd := newWatchdog(cfg.Deadline)
	state := make([]procState, n)
	pending := make([]Message, n)
	res := &Result{Outputs: make(map[int]any)}
	alive := n
	for pid := range steppers {
		state[pid] = stateRunning
	}

	for {
		if err := ctx.Err(); err != nil {
			res.Rounds = rt.round
			return res, fmt.Errorf("engine: run cancelled: %w", context.Cause(ctx))
		}
		if err := wd.check(rt.round); err != nil {
			res.Rounds = rt.round
			return res, err
		}
		// Done is checked before every round (the FromStepper contract), so
		// a stepper that is done immediately never communicates.
		for pid, st := range steppers {
			if state[pid] == stateDone {
				continue
			}
			if out, done := st.Done(); done {
				state[pid] = stateDone
				alive--
				res.Outputs[pid] = out
				if cfg.StopWhen != nil && cfg.StopWhen(res.Outputs) {
					res.Rounds = rt.round
					return res, nil
				}
			}
		}
		if alive == 0 {
			break
		}
		for pid, st := range steppers {
			if state[pid] != stateDone {
				state[pid] = stateWaiting
				pending[pid] = st.Compose()
			}
		}
		out, err := rt.route(state, pending, res)
		if err != nil {
			res.Rounds = rt.round
			return res, err
		}
		for pid, st := range steppers {
			if state[pid] == stateWaiting {
				state[pid] = stateRunning
				st.Deliver(out[pid])
			}
		}
		if cfg.StopWhen != nil && cfg.StopWhen(res.Outputs) {
			break
		}
		if rt.round >= cfg.MaxRounds {
			res.Rounds = rt.round
			return res, ErrMaxRounds
		}
	}
	res.Rounds = rt.round
	return res, nil
}
