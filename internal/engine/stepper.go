package engine

// Stepper is the event-driven alternative to Coroutine: a process expressed
// as an explicit state machine. The engine calls Compose to obtain the
// message for the current round, delivers the round's received multiset via
// Deliver, and stops the process once Done reports an output.
//
// Steppers are convenient for simple protocols (the baselines in
// internal/baseline) and are executed by wrapping them in a Coroutine via
// FromStepper, so both styles run on the same barrier engine.
type Stepper interface {
	// Compose returns the message to broadcast in the current round.
	Compose() Message
	// Deliver hands over the multiset of messages received this round.
	Deliver(msgs []Message)
	// Done reports whether the process has terminated, and if so its output.
	Done() (output any, done bool)
}

// FromStepper wraps a Stepper as a Coroutine. Done is checked before every
// round, so a Stepper that is done immediately never communicates.
func FromStepper(s Stepper) Coroutine {
	return CoroutineFunc(func(t *Transport) (any, error) {
		for {
			if out, done := s.Done(); done {
				return out, nil
			}
			msgs, err := t.SendAndReceive(s.Compose())
			if err != nil {
				return nil, err
			}
			s.Deliver(msgs)
		}
	})
}
