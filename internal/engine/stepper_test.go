package engine

import (
	"testing"

	"anondyn/internal/dynnet"
)

// sumStepper broadcasts its value for a fixed number of rounds and
// accumulates everything it hears.
type sumStepper struct {
	value  int
	rounds int
	steps  int
	sum    int
}

var _ Stepper = (*sumStepper)(nil)

func (s *sumStepper) Compose() Message { return s.value }

func (s *sumStepper) Deliver(msgs []Message) {
	for _, m := range msgs {
		s.sum += m.(int)
	}
	s.steps++
}

func (s *sumStepper) Done() (any, bool) {
	if s.steps >= s.rounds {
		return s.sum, true
	}
	return nil, false
}

func TestStepperRunsOnBarrierEngine(t *testing.T) {
	// Complete graph on 3: each process hears the other two each round.
	steppers := []*sumStepper{
		{value: 1, rounds: 2},
		{value: 10, rounds: 2},
		{value: 100, rounds: 2},
	}
	procs := make([]Coroutine, len(steppers))
	for i, s := range steppers {
		procs[i] = FromStepper(s)
	}
	res, err := Run(Config{Schedule: dynnet.NewStatic(dynnet.Complete(3)), MaxRounds: 5}, procs)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]int{0: 2 * 110, 1: 2 * 101, 2: 2 * 11}
	for pid, w := range want {
		if res.Outputs[pid] != w {
			t.Errorf("process %d output %v, want %d", pid, res.Outputs[pid], w)
		}
	}
	if res.Rounds != 2 {
		t.Errorf("Rounds=%d, want 2", res.Rounds)
	}
}

func TestStepperDoneImmediately(t *testing.T) {
	// A stepper that is done before communicating never enters a round.
	s := &sumStepper{rounds: 0}
	res, err := Run(Config{Schedule: dynnet.NewStatic(dynnet.Complete(1)), MaxRounds: 3},
		[]Coroutine{FromStepper(s)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 0 {
		t.Fatalf("Rounds=%d, want 0", res.Rounds)
	}
	if res.Outputs[0] != 0 {
		t.Fatalf("output %v, want 0", res.Outputs[0])
	}
}

func TestSteppersWithMixedLifetimes(t *testing.T) {
	steppers := []*sumStepper{
		{value: 1, rounds: 1},
		{value: 1, rounds: 4},
	}
	procs := []Coroutine{FromStepper(steppers[0]), FromStepper(steppers[1])}
	res, err := Run(Config{Schedule: dynnet.NewStatic(dynnet.Path(2)), MaxRounds: 10}, procs)
	if err != nil {
		t.Fatal(err)
	}
	// Process 1 only hears process 0 in round 1.
	if res.Outputs[1] != 1 {
		t.Fatalf("process 1 heard %v, want 1", res.Outputs[1])
	}
	if res.Rounds != 4 {
		t.Fatalf("Rounds=%d, want 4", res.Rounds)
	}
}
