package engine

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"anondyn/internal/dynnet"
)

// The scheduler equivalence contract (DESIGN.md §6): all three schedulers
// — and the RunSteppers fast path — must produce byte-identical Results
// (Rounds, Outputs, MaxMessageBits, TotalMessages, TotalBits) and
// identical Trace streams for any deterministic protocol, because they
// share the routing core and differ only in how control moves between the
// processes and the round barrier.

// schedulers lists the three coroutine schedulers under test.
var schedulers = []Scheduler{SchedulerSequential, SchedulerConcurrent, SchedulerParallel}

// mixedProc is a deterministic protocol with per-process lifetimes: process
// pid runs base+pid%3 rounds, sends pid*1000+round, and returns the sorted
// multiset checksum of everything it received.
func mixedProc(pid, base int) Coroutine {
	return CoroutineFunc(func(t *Transport) (any, error) {
		rounds := base + pid%3
		sum := 0
		for i := 0; i < rounds; i++ {
			msgs, err := t.SendAndReceive(pid*1000 + i)
			if err != nil {
				return nil, err
			}
			for _, m := range msgs {
				sum = sum*31 + m.(int)
			}
		}
		return sum, nil
	})
}

// rotPathAdaptive is a reactive test adversary: each round it links the
// still-sending processes into a path whose order rotates with the round,
// so the graph genuinely depends on both the round and the sent slice.
type rotPathAdaptive struct{ n int }

func (a rotPathAdaptive) N() int { return a.n }

func (a rotPathAdaptive) Graph(round int, sent []Message) *dynnet.Multigraph {
	g := dynnet.NewMultigraph(a.n)
	var active []int
	for pid, m := range sent {
		if m != nil {
			active = append(active, pid)
		}
	}
	for i := 1; i < len(active); i++ {
		u := active[(i-1+round)%len(active)]
		v := active[(i+round)%len(active)]
		if u != v {
			g.MustAddLink(u, v, 1)
		}
	}
	return g
}

// captureTrace returns a Trace hook appending each round's sent messages
// (copied) to the returned log.
func captureTrace() (*[]string, func(round int, sent []Message)) {
	log := &[]string{}
	return log, func(round int, sent []Message) {
		*log = append(*log, fmt.Sprintf("%d:%v", round, sent))
	}
}

// runUnder executes the mixed-lifetime protocol on n processes under the
// given scheduler and returns the result and trace stream.
func runUnder(t *testing.T, sched Scheduler, cfg Config, n, base int) (*Result, []string, error) {
	t.Helper()
	log, hook := captureTrace()
	cfg.Scheduler = sched
	cfg.Trace = hook
	cfg.SizeOf = func(m Message) int { return m.(int)%13 + 3 }
	procs := make([]Coroutine, n)
	for pid := range procs {
		procs[pid] = mixedProc(pid, base)
	}
	res, err := Run(cfg, procs)
	return res, *log, err
}

// assertSameRun fails unless the two runs are byte-identical in every
// Result field and in their trace streams.
func assertSameRun(t *testing.T, seqRes, conRes *Result, seqTrace, conTrace []string) {
	t.Helper()
	if seqRes.Rounds != conRes.Rounds {
		t.Errorf("Rounds: sequential %d, concurrent %d", seqRes.Rounds, conRes.Rounds)
	}
	if !reflect.DeepEqual(seqRes.Outputs, conRes.Outputs) {
		t.Errorf("Outputs differ:\nsequential %v\nconcurrent %v", seqRes.Outputs, conRes.Outputs)
	}
	if seqRes.MaxMessageBits != conRes.MaxMessageBits {
		t.Errorf("MaxMessageBits: sequential %d, concurrent %d", seqRes.MaxMessageBits, conRes.MaxMessageBits)
	}
	if seqRes.TotalMessages != conRes.TotalMessages {
		t.Errorf("TotalMessages: sequential %d, concurrent %d", seqRes.TotalMessages, conRes.TotalMessages)
	}
	if seqRes.TotalBits != conRes.TotalBits {
		t.Errorf("TotalBits: sequential %d, concurrent %d", seqRes.TotalBits, conRes.TotalBits)
	}
	if !reflect.DeepEqual(seqTrace, conTrace) {
		t.Errorf("Trace streams differ:\nsequential %v\nconcurrent %v", seqTrace, conTrace)
	}
}

// TestSchedulerEquivalence sweeps n × schedule family × seed and asserts
// the equivalence contract on full-completion runs.
func TestSchedulerEquivalence(t *testing.T) {
	for _, n := range []int{1, 2, 5, 9} {
		for _, seed := range []int64{1, 7} {
			families := []struct {
				name string
				cfg  func() Config
			}{
				{name: "static-cycle", cfg: func() Config {
					return Config{Schedule: dynnet.NewStatic(dynnet.Cycle(n))}
				}},
				{name: "static-complete", cfg: func() Config {
					return Config{Schedule: dynnet.NewStatic(dynnet.Complete(n))}
				}},
				{name: "random-connected", cfg: func() Config {
					return Config{Schedule: dynnet.NewRandomConnected(n, 0.4, seed)}
				}},
				{name: "adaptive-rotating-path", cfg: func() Config {
					return Config{Adaptive: rotPathAdaptive{n: n}}
				}},
			}
			for _, fam := range families {
				name := fmt.Sprintf("%s/n=%d/seed=%d", fam.name, n, seed)
				t.Run(name, func(t *testing.T) {
					base := 3 + int(seed)
					cfg := fam.cfg()
					cfg.MaxRounds = 100
					seqRes, seqTrace, err := runUnder(t, SchedulerSequential, cfg, n, base)
					if err != nil {
						t.Fatalf("sequential: %v", err)
					}
					for _, sched := range schedulers[1:] {
						cfg = fam.cfg()
						cfg.MaxRounds = 100
						res, trace, err := runUnder(t, sched, cfg, n, base)
						if err != nil {
							t.Fatalf("%v: %v", sched, err)
						}
						assertSameRun(t, seqRes, res, seqTrace, trace)
					}
				})
			}
		}
	}
}

// TestSchedulerEquivalenceStopWhen pins the StopWhen semantics: process 0
// finishes after three rounds, the rest would run forever, and the run must
// stop with exactly process 0's output under both schedulers.
func TestSchedulerEquivalenceStopWhen(t *testing.T) {
	const n = 4
	build := func() []Coroutine {
		procs := make([]Coroutine, n)
		procs[0] = echoProc(3)
		for pid := 1; pid < n; pid++ {
			procs[pid] = CoroutineFunc(func(tr *Transport) (any, error) {
				for {
					if _, err := tr.SendAndReceive(tr.PID()); err != nil {
						return nil, err
					}
				}
			})
		}
		return procs
	}
	type outcome struct {
		res   *Result
		trace []string
	}
	got := map[Scheduler]outcome{}
	for _, sched := range schedulers {
		log, hook := captureTrace()
		res, err := Run(Config{
			Schedule:  dynnet.NewStatic(dynnet.Complete(n)),
			MaxRounds: 100,
			Scheduler: sched,
			Trace:     hook,
			StopWhen:  func(out map[int]any) bool { _, ok := out[0]; return ok },
		}, build())
		if err != nil {
			t.Fatalf("%v: %v", sched, err)
		}
		if len(res.Outputs) != 1 {
			t.Fatalf("%v: outputs %v, want only process 0", sched, res.Outputs)
		}
		got[sched] = outcome{res: res, trace: *log}
	}
	seq := got[SchedulerSequential]
	for _, sched := range schedulers[1:] {
		other := got[sched]
		assertSameRun(t, seq.res, other.res, seq.trace, other.trace)
	}
}

// TestSchedulerEquivalenceBitLimit pins the BitLimit semantics: the first
// violating (round, process, bits) is identical under both schedulers
// because accounting happens in the shared router.
func TestSchedulerEquivalenceBitLimit(t *testing.T) {
	const n = 3
	var want *BitLimitError
	for _, sched := range schedulers {
		procs := make([]Coroutine, n)
		for pid := range procs {
			pid := pid
			procs[pid] = CoroutineFunc(func(tr *Transport) (any, error) {
				for r := 0; ; r++ {
					// Process 1 blows the limit at round 4.
					size := 8
					if pid == 1 && r == 3 {
						size = 100
					}
					if _, err := tr.SendAndReceive(size); err != nil {
						return nil, err
					}
				}
			})
		}
		_, err := Run(Config{
			Schedule:  dynnet.NewStatic(dynnet.Cycle(n)),
			MaxRounds: 100,
			Scheduler: sched,
			SizeOf:    func(m Message) int { return m.(int) },
			BitLimit:  50,
		}, procs)
		var ble *BitLimitError
		if !errors.As(err, &ble) {
			t.Fatalf("%v: err=%v, want *BitLimitError", sched, err)
		}
		if want == nil {
			want = ble
			continue
		}
		if *ble != *want {
			t.Errorf("BitLimitError differs: sequential %+v, concurrent %+v", want, ble)
		}
	}
	if want.Round != 4 || want.Process != 1 || want.Bits != 100 {
		t.Errorf("unexpected violation %+v", want)
	}
}

// TestSchedulerEquivalencePreCancelled pins the cancellation contract both
// schedulers share: a context cancelled before the run starts fails with
// context.Canceled and zero rounds.
func TestSchedulerEquivalencePreCancelled(t *testing.T) {
	for _, sched := range schedulers {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		procs := []Coroutine{echoProc(3), echoProc(3)}
		res, err := RunContext(ctx, Config{
			Schedule:  dynnet.NewStatic(dynnet.Path(2)),
			MaxRounds: 10,
			Scheduler: sched,
		}, procs)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%v: err=%v, want context.Canceled", sched, err)
		}
		if res.Rounds != 0 || len(res.Outputs) != 0 {
			t.Fatalf("%v: partial result %+v, want empty", sched, res)
		}
	}
}

// countStepper is a deterministic state machine: it broadcasts pid*100+step
// for `rounds` steps, then outputs a checksum of everything received.
type countStepper struct {
	pid, rounds, step int
	sum               int
}

func (c *countStepper) Compose() Message { return c.pid*100 + c.step }

func (c *countStepper) Deliver(msgs []Message) {
	for _, m := range msgs {
		c.sum = c.sum*31 + m.(int)
	}
	c.step++
}

func (c *countStepper) Done() (any, bool) {
	if c.step >= c.rounds {
		return c.sum, true
	}
	return nil, false
}

// TestStepperPathsEquivalent runs the same stepper protocol on all three
// execution paths — RunSteppers, and FromStepper on each coroutine
// scheduler — and asserts identical results and traces.
func TestStepperPathsEquivalent(t *testing.T) {
	const n = 6
	cfg := func(hook func(int, []Message), sched Scheduler) Config {
		return Config{
			Schedule:  dynnet.NewRandomConnected(n, 0.4, 3),
			MaxRounds: 50,
			Scheduler: sched,
			SizeOf:    func(m Message) int { return m.(int)%13 + 3 },
			Trace:     hook,
		}
	}
	build := func() []Stepper {
		st := make([]Stepper, n)
		for pid := range st {
			st[pid] = &countStepper{pid: pid, rounds: 4 + pid%3}
		}
		return st
	}

	log, hook := captureTrace()
	want, err := RunSteppers(cfg(hook, SchedulerSequential), build())
	if err != nil {
		t.Fatalf("RunSteppers: %v", err)
	}
	wantTrace := *log

	for _, sched := range schedulers {
		log, hook := captureTrace()
		steppers := build()
		procs := make([]Coroutine, n)
		for pid := range procs {
			procs[pid] = FromStepper(steppers[pid])
		}
		got, err := Run(cfg(hook, sched), procs)
		if err != nil {
			t.Fatalf("FromStepper on %v: %v", sched, err)
		}
		assertSameRun(t, want, got, wantTrace, *log)
	}
}

// TestRunSteppersCancellation checks the RunSteppers cancellation contract:
// pre-cancelled contexts stop before round 1, and a cancellation mid-run is
// observed at the next round boundary with the partial result preserved.
func TestRunSteppersCancellation(t *testing.T) {
	const n = 3
	build := func(rounds int) []Stepper {
		st := make([]Stepper, n)
		for pid := range st {
			st[pid] = &countStepper{pid: pid, rounds: rounds}
		}
		return st
	}
	cfg := Config{Schedule: dynnet.NewStatic(dynnet.Cycle(n)), MaxRounds: 1000}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunSteppersContext(ctx, cfg, build(10))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled: err=%v, want context.Canceled", err)
	}
	if res.Rounds != 0 {
		t.Fatalf("pre-cancelled: Rounds=%d, want 0", res.Rounds)
	}

	// Cancel from inside the Trace hook: the loop must finish the current
	// round, then stop at the boundary.
	ctx, cancel = context.WithCancel(context.Background())
	stopAt := 5
	cfg2 := cfg
	cfg2.Trace = func(round int, sent []Message) {
		if round == stopAt {
			cancel()
		}
	}
	res, err = RunSteppersContext(ctx, cfg2, build(1000))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-run: err=%v, want context.Canceled", err)
	}
	if res.Rounds != stopAt {
		t.Fatalf("mid-run: Rounds=%d, want %d", res.Rounds, stopAt)
	}
}
