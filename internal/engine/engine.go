// Package engine executes anonymous distributed protocols over dynamic
// networks in synchronous lock-step rounds.
//
// Protocols are written in the blocking, coroutine style of the paper's
// pseudocode: a process calls Transport.SendAndReceive once per round, which
// broadcasts its message on all incident links of the current round's
// multigraph and blocks until the multiset of messages from its neighbors is
// available. A runner enforces the round barrier, routes messages according
// to the schedule, and accounts for message sizes so congestion bounds can
// be asserted.
//
// Three schedulers execute the same semantics (see Scheduler):
//
//   - SchedulerSequential (the default) runs each process as a pull
//     coroutine and resumes them one at a time by direct coroutine switch —
//     no channels, no scheduler queueing, no contention — so the per-round
//     cost is the protocol's own work plus the shared routing.
//   - SchedulerParallel shards the process ring across min(GOMAXPROCS, n)
//     workers, each round a parallel compute/submit phase followed by a
//     single-threaded route+deliver phase under a two-phase barrier —
//     the throughput choice once per-round protocol work dwarfs the
//     barrier's O(shards) channel operations.
//   - SchedulerConcurrent runs every process goroutine in parallel under a
//     central coordinator. It is retained for the scheduler equivalence
//     contract (DESIGN.md §6) and race-detector coverage.
//
// State machines (Stepper) can additionally run on RunSteppers, a plain
// function-call round loop with zero synchronization.
//
// Execution is deterministic under either scheduler: rounds are strict
// barriers, the delivery order within a round is the canonical link order
// of the multigraph, and protocols treat deliveries as multisets.
package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"anondyn/internal/dynnet"
)

// Message is a protocol message. The engine treats messages as opaque
// values; size accounting is delegated to Config.SizeOf.
type Message any

// Coroutine is a protocol participant written in blocking style. Run must
// communicate exclusively through t and must return promptly with
// ErrStopped (possibly wrapped) once SendAndReceive reports it.
type Coroutine interface {
	// Run executes the protocol for one process and returns its output.
	Run(t *Transport) (any, error)
}

// CoroutineFunc adapts a function to the Coroutine interface.
type CoroutineFunc func(t *Transport) (any, error)

// Run implements Coroutine.
func (f CoroutineFunc) Run(t *Transport) (any, error) { return f(t) }

// ErrStopped is returned by Transport.SendAndReceive when the run has been
// cancelled (stop condition met or round budget exhausted). Coroutines must
// propagate it.
var ErrStopped = errors.New("engine: run stopped")

// ErrMaxRounds is reported by Run when the round budget was exhausted
// before the stop condition held.
var ErrMaxRounds = errors.New("engine: maximum round budget exhausted")

// BitLimitError reports a message that exceeded the configured congestion
// limit.
type BitLimitError struct {
	Round   int
	Process int
	Bits    int
	Limit   int
}

// Error implements the error interface.
func (e *BitLimitError) Error() string {
	return fmt.Sprintf("engine: round %d: process %d sent %d bits, limit %d",
		e.Round, e.Process, e.Bits, e.Limit)
}

// AdaptiveSchedule is a reactive adversary: it chooses each round's
// multigraph AFTER seeing the messages the processes are sending this
// round (the strongly adaptive model). For deterministic protocols this
// adds no theoretical power over an oblivious adversary — the adversary
// could precompute the run — but it makes worst-case adversaries far
// easier to express (e.g. "always isolate the holders of the
// highest-priority message").
type AdaptiveSchedule interface {
	// N returns the number of processes.
	N() int
	// Graph returns the round-`round` multigraph given the messages sent
	// this round; sent[pid] is process pid's message, or nil if it has
	// terminated. The engine reuses the sent slice between rounds;
	// implementations must not retain it past the call.
	Graph(round int, sent []Message) *dynnet.Multigraph
}

// Scheduler selects how the engine executes process coroutines. Both
// schedulers implement identical semantics (verified by the equivalence
// suite in equivalence_test.go); they differ only in how control moves
// between the processes and the round barrier.
type Scheduler int

const (
	// SchedulerSequential is the default (zero value): processes run as
	// pull coroutines resumed one at a time by direct coroutine switch,
	// with no central event loop, no channels, and alive/waiting tracked by
	// plain counters. One process runs at any moment and control transfers
	// bypass the goroutine scheduler entirely. Simulations are
	// round-throughput-bound (the protocol runs Θ(n³) rounds), which makes
	// this the right default; external cancellation is observed at round
	// boundaries.
	SchedulerSequential Scheduler = iota
	// SchedulerConcurrent runs every process goroutine in parallel under a
	// central coordinator with a select-based event loop. It is retained
	// for the sequential-vs-concurrent equivalence contract (DESIGN.md §6)
	// and so the race detector can exercise real cross-goroutine
	// interleavings; cancellation is additionally observed while waiting
	// for submissions.
	SchedulerConcurrent
	// SchedulerParallel shards the process ring across min(GOMAXPROCS, n)
	// workers. Each round is a parallel compute/submit phase — every worker
	// resumes its own processes as pull coroutines, writing only pid-indexed
	// state its shard owns — followed by a route+deliver phase on the
	// runner's goroutine through the same shared router as the other
	// schedulers, under a lightweight two-phase barrier (one command send
	// and one reply receive per shard) instead of the sequential runner's
	// n+1 coroutine handoffs. Results and traces are byte-identical to the
	// other schedulers (equivalence_test.go); this is the throughput choice
	// for large n, where per-round protocol work dominates the barrier cost.
	SchedulerParallel
)

// String implements fmt.Stringer.
func (s Scheduler) String() string {
	switch s {
	case SchedulerSequential:
		return "sequential"
	case SchedulerConcurrent:
		return "concurrent"
	case SchedulerParallel:
		return "parallel"
	default:
		return fmt.Sprintf("Scheduler(%d)", int(s))
	}
}

// Config parameterizes a run.
type Config struct {
	// Schedule supplies the communication multigraph of every round.
	// Exactly one of Schedule and Adaptive must be set.
	Schedule dynnet.Schedule
	// Adaptive, if set, replaces Schedule with a reactive adversary.
	Adaptive AdaptiveSchedule
	// Scheduler selects the execution strategy. The zero value is
	// SchedulerSequential, the direct-execution default.
	Scheduler Scheduler
	// MaxRounds caps the run; when exceeded, Run cancels the processes and
	// returns ErrMaxRounds. It must be positive.
	MaxRounds int
	// Deadline, when positive, bounds the run's wall-clock time: once it
	// has elapsed the runner stops the processes at its next scheduling
	// point and reports a *WatchdogError (errors.Is ErrWatchdog). This is
	// the engine's watchdog — it turns hangs caused by out-of-model faults
	// or unsatisfiable stop conditions into structured failures. Zero
	// means no deadline.
	Deadline time.Duration
	// SizeOf measures a message in bits for congestion accounting. If nil,
	// sizes are not tracked and BitLimit is ignored. It is always invoked
	// from the runner's own goroutine, never concurrently.
	SizeOf func(Message) int
	// BitLimit, when positive and SizeOf is set, aborts the run with a
	// *BitLimitError as soon as any message exceeds it.
	BitLimit int
	// StopWhen, if non-nil, is evaluated at the end of every round on the
	// outputs collected so far (keyed by process index); returning true
	// cancels the remaining processes. If nil, the run continues until all
	// processes have returned.
	StopWhen func(outputs map[int]any) bool
	// Trace, if non-nil, receives every round's sent messages after
	// delivery, for debugging and engine-level tests. The engine reuses
	// the slice between rounds; callbacks must not retain it past the
	// call (copy if needed).
	Trace func(round int, sent []Message)
}

// validate checks the run parameters shared by every scheduler and returns
// the process count.
func (cfg *Config) validate(procs int) (int, error) {
	var n int
	switch {
	case cfg.Schedule != nil && cfg.Adaptive != nil:
		return 0, errors.New("engine: both Schedule and Adaptive set")
	case cfg.Schedule != nil:
		n = cfg.Schedule.N()
	case cfg.Adaptive != nil:
		n = cfg.Adaptive.N()
	default:
		return 0, errors.New("engine: nil schedule")
	}
	if procs != n {
		return 0, fmt.Errorf("engine: %d coroutines for %d processes", procs, n)
	}
	if cfg.MaxRounds <= 0 {
		return 0, fmt.Errorf("engine: non-positive MaxRounds %d", cfg.MaxRounds)
	}
	switch cfg.Scheduler {
	case SchedulerSequential, SchedulerConcurrent, SchedulerParallel:
	default:
		return 0, fmt.Errorf("engine: unknown scheduler %d", int(cfg.Scheduler))
	}
	return n, nil
}

// Result summarizes a completed (or cancelled) run.
type Result struct {
	// Rounds is the number of communication rounds executed.
	Rounds int
	// Outputs maps the index of every process that returned a value before
	// cancellation to that value.
	Outputs map[int]any
	// MaxMessageBits is the largest message observed (0 if SizeOf is nil).
	MaxMessageBits int
	// TotalMessages counts messages sent (one per process per round).
	TotalMessages int64
	// TotalBits accumulates SizeOf over all sent messages.
	TotalBits int64
}

// Run executes one coroutine per process over cfg.Schedule and returns the
// collected outputs. len(procs) must equal cfg.Schedule.N().
func Run(cfg Config, procs []Coroutine) (*Result, error) {
	return RunContext(context.Background(), cfg, procs)
}

// RunContext is Run with external cancellation: when ctx is cancelled the
// runner stops the run at its next scheduling point (round boundaries
// under the sequential scheduler; additionally while waiting for
// submissions under the concurrent one), releases every process goroutine,
// waits for them to exit, and returns an error wrapping ctx's cause. The
// partial Result (rounds executed so far, outputs already produced) is
// still returned alongside the error.
func RunContext(ctx context.Context, cfg Config, procs []Coroutine) (*Result, error) {
	n, err := cfg.validate(len(procs))
	if err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.Scheduler == SchedulerSequential {
		s := &seqRunner{
			cfg:     cfg,
			ctx:     ctx,
			wd:      newWatchdog(cfg.Deadline),
			n:       n,
			rt:      newRouter(&cfg, n),
			state:   make([]procState, n),
			pending: make([]Message, n),
			next:    make([]func() (struct{}, bool), n),
			stop:    make([]func(), n),
			yield:   make([]func(struct{}) bool, n),
			inbox:   make([][]Message, n),
			done:    make([]seqDone, n),
		}
		return s.run(procs)
	}
	if cfg.Scheduler == SchedulerParallel {
		return newParRunner(ctx, cfg, n).run(procs)
	}
	c := &coordinator{
		cfg:    cfg,
		ctx:    ctx,
		wd:     newWatchdog(cfg.Deadline),
		n:      n,
		rt:     newRouter(&cfg, n),
		events: make(chan event),
		stop:   make(chan struct{}),
		inbox:  make([]chan []Message, n),
		state:  make([]procState, n),
	}
	for i := range c.inbox {
		c.inbox[i] = make(chan []Message, 1)
	}
	return c.run(procs)
}

type procState int

const (
	stateRunning procState = iota + 1
	stateWaiting           // submitted this round, blocked on delivery
	stateDone              // returned an output
)

type event struct {
	pid    int
	msg    Message // valid when kind == evSubmit
	output any     // valid when kind == evDone
	err    error   // valid when kind == evDone
	kind   evKind
}

type evKind int

const (
	evSubmit evKind = iota + 1
	evDone
)

type coordinator struct {
	cfg    Config
	ctx    context.Context
	wd     watchdog
	n      int
	rt     *router
	events chan event
	stop   chan struct{}
	inbox  []chan []Message
	state  []procState

	pending []Message // message submitted by each process this round
}

// Transport is the per-process communication endpoint handed to
// Coroutine.Run. Exactly one of coord, seq, and par is set, matching the
// scheduler the run was started under.
type Transport struct {
	pid   int
	coord *coordinator
	seq   *seqRunner
	par   *parRunner
	round int
}

// PID returns the process index in [0, n). It exists for the engine's own
// bookkeeping and for test instrumentation; anonymous protocols must not
// let it influence their behaviour.
func (t *Transport) PID() int { return t.pid }

// Round returns the number of completed communication rounds for this
// process (0 before the first SendAndReceive returns).
func (t *Transport) Round() int { return t.round }

// SendAndReceive broadcasts msg on all links incident to this process in
// the current round's multigraph and blocks until the round completes,
// returning the multiset of messages received from neighbors (possibly
// empty if the process is isolated this round). It returns ErrStopped when
// the run has been cancelled.
//
// The returned slice is valid only until this process's next
// SendAndReceive call: the engine round-robins the backing storage between
// rounds. Processes that need deliveries across rounds must copy them.
func (t *Transport) SendAndReceive(msg Message) ([]Message, error) {
	if t.seq != nil {
		return t.seq.sendAndReceive(t, msg)
	}
	if t.par != nil {
		return t.par.sendAndReceive(t, msg)
	}
	select {
	case t.coord.events <- event{pid: t.pid, kind: evSubmit, msg: msg}:
	case <-t.coord.stop:
		return nil, ErrStopped
	}
	// A delivery that has already been made must win over cancellation:
	// the round completed for every participant, so this process is
	// entitled to observe it (otherwise behaviour at the final round would
	// depend on goroutine scheduling).
	select {
	case msgs := <-t.coord.inbox[t.pid]:
		t.round++
		return msgs, nil
	default:
	}
	select {
	case msgs := <-t.coord.inbox[t.pid]:
		t.round++
		return msgs, nil
	case <-t.coord.stop:
		return nil, ErrStopped
	}
}

func (c *coordinator) run(procs []Coroutine) (*Result, error) {
	var wg sync.WaitGroup
	for i := range procs {
		c.state[i] = stateRunning
		tr := &Transport{pid: i, coord: c}
		proc := procs[i]
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			out, err := proc.Run(tr)
			select {
			case c.events <- event{pid: pid, kind: evDone, output: out, err: err}:
			case <-c.stop:
			}
		}(i)
	}

	res := &Result{Outputs: make(map[int]any)}
	c.pending = make([]Message, c.n)
	var runErr error

	// alive and waiting are maintained incrementally on submit/done/deliver
	// transitions, so the per-event cost is O(1) instead of the former
	// O(n) census scan (O(n²) coordinator work per round).
	alive, waiting := c.n, 0

	// The watchdog is observed both per event-loop iteration and, via the
	// timer channel, while blocked waiting for submissions — a wedged
	// coroutine (one that never submits again) would otherwise hang the
	// select forever.
	wdTimer, wdC := c.wd.timer()
	if wdTimer != nil {
		defer wdTimer.Stop()
	}

loop:
	for {
		if err := c.ctx.Err(); err != nil {
			runErr = fmt.Errorf("engine: run cancelled: %w", context.Cause(c.ctx))
			break
		}
		if err := c.wd.check(c.rt.round); err != nil {
			runErr = err
			break
		}
		if alive == 0 {
			break // every process returned
		}
		if waiting == alive {
			// Round barrier reached: deliver.
			if err := c.deliver(res); err != nil {
				runErr = err
				break
			}
			waiting = 0
			if c.cfg.StopWhen != nil && c.cfg.StopWhen(res.Outputs) {
				break
			}
			if c.rt.round >= c.cfg.MaxRounds {
				runErr = ErrMaxRounds
				break
			}
			continue
		}
		var ev event
		select {
		case ev = <-c.events:
		case <-wdC:
			runErr = c.wd.fail(c.rt.round)
			break loop
		case <-c.ctx.Done():
			runErr = fmt.Errorf("engine: run cancelled: %w", context.Cause(c.ctx))
			break loop
		}
		switch ev.kind {
		case evSubmit:
			c.state[ev.pid] = stateWaiting
			c.pending[ev.pid] = ev.msg
			waiting++
		case evDone:
			if c.state[ev.pid] == stateWaiting {
				waiting--
			}
			c.state[ev.pid] = stateDone
			alive--
			if ev.err != nil && !errors.Is(ev.err, ErrStopped) {
				runErr = fmt.Errorf("engine: process %d: %w", ev.pid, ev.err)
				break loop
			}
			if ev.err == nil {
				res.Outputs[ev.pid] = ev.output
			}
			if c.cfg.StopWhen != nil && c.cfg.StopWhen(res.Outputs) {
				break loop
			}
		}
	}

	close(c.stop)
	wg.Wait()
	// Collect outputs from processes that finished during shutdown.
	for {
		select {
		case ev := <-c.events:
			if ev.kind == evDone && ev.err == nil {
				res.Outputs[ev.pid] = ev.output
			}
		default:
			res.Rounds = c.rt.round
			return res, runErr
		}
	}
}

// deliver completes one round: it routes the pending messages through the
// shared router and releases the waiting processes.
func (c *coordinator) deliver(res *Result) error {
	out, err := c.rt.route(c.state, c.pending, res)
	if err != nil {
		return err
	}
	for pid, s := range c.state {
		if s != stateWaiting {
			continue
		}
		c.state[pid] = stateRunning
		c.inbox[pid] <- out[pid]
	}
	return nil
}
