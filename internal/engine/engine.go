// Package engine executes anonymous distributed protocols over dynamic
// networks in synchronous lock-step rounds.
//
// Protocols are written in the blocking, coroutine style of the paper's
// pseudocode: a process calls Transport.SendAndReceive once per round, which
// broadcasts its message on all incident links of the current round's
// multigraph and blocks until the multiset of messages from its neighbors is
// available. Each process runs in its own goroutine; a central coordinator
// enforces the round barrier, routes messages according to the schedule, and
// accounts for message sizes so congestion bounds can be asserted.
//
// Execution is deterministic: rounds are strict barriers, the delivery order
// within a round is the canonical link order of the multigraph, and
// protocols treat deliveries as multisets.
package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"anondyn/internal/dynnet"
)

// Message is a protocol message. The engine treats messages as opaque
// values; size accounting is delegated to Config.SizeOf.
type Message any

// Coroutine is a protocol participant written in blocking style. Run must
// communicate exclusively through t and must return promptly with
// ErrStopped (possibly wrapped) once SendAndReceive reports it.
type Coroutine interface {
	// Run executes the protocol for one process and returns its output.
	Run(t *Transport) (any, error)
}

// CoroutineFunc adapts a function to the Coroutine interface.
type CoroutineFunc func(t *Transport) (any, error)

// Run implements Coroutine.
func (f CoroutineFunc) Run(t *Transport) (any, error) { return f(t) }

// ErrStopped is returned by Transport.SendAndReceive when the run has been
// cancelled (stop condition met or round budget exhausted). Coroutines must
// propagate it.
var ErrStopped = errors.New("engine: run stopped")

// ErrMaxRounds is reported by Run when the round budget was exhausted
// before the stop condition held.
var ErrMaxRounds = errors.New("engine: maximum round budget exhausted")

// BitLimitError reports a message that exceeded the configured congestion
// limit.
type BitLimitError struct {
	Round   int
	Process int
	Bits    int
	Limit   int
}

// Error implements the error interface.
func (e *BitLimitError) Error() string {
	return fmt.Sprintf("engine: round %d: process %d sent %d bits, limit %d",
		e.Round, e.Process, e.Bits, e.Limit)
}

// AdaptiveSchedule is a reactive adversary: it chooses each round's
// multigraph AFTER seeing the messages the processes are sending this
// round (the strongly adaptive model). For deterministic protocols this
// adds no theoretical power over an oblivious adversary — the adversary
// could precompute the run — but it makes worst-case adversaries far
// easier to express (e.g. "always isolate the holders of the
// highest-priority message").
type AdaptiveSchedule interface {
	// N returns the number of processes.
	N() int
	// Graph returns the round-`round` multigraph given the messages sent
	// this round; sent[pid] is process pid's message, or nil if it has
	// terminated. The engine reuses the sent slice between rounds;
	// implementations must not retain it past the call.
	Graph(round int, sent []Message) *dynnet.Multigraph
}

// Config parameterizes a run.
type Config struct {
	// Schedule supplies the communication multigraph of every round.
	// Exactly one of Schedule and Adaptive must be set.
	Schedule dynnet.Schedule
	// Adaptive, if set, replaces Schedule with a reactive adversary.
	Adaptive AdaptiveSchedule
	// MaxRounds caps the run; when exceeded, Run cancels the processes and
	// returns ErrMaxRounds. It must be positive.
	MaxRounds int
	// SizeOf measures a message in bits for congestion accounting. If nil,
	// sizes are not tracked and BitLimit is ignored.
	SizeOf func(Message) int
	// BitLimit, when positive and SizeOf is set, aborts the run with a
	// *BitLimitError as soon as any message exceeds it.
	BitLimit int
	// StopWhen, if non-nil, is evaluated at the end of every round on the
	// outputs collected so far (keyed by process index); returning true
	// cancels the remaining processes. If nil, the run continues until all
	// processes have returned.
	StopWhen func(outputs map[int]any) bool
	// Trace, if non-nil, receives every round's sent messages after
	// delivery, for debugging and engine-level tests. The engine reuses
	// the slice between rounds; callbacks must not retain it past the
	// call (copy if needed).
	Trace func(round int, sent []Message)
}

// Result summarizes a completed (or cancelled) run.
type Result struct {
	// Rounds is the number of communication rounds executed.
	Rounds int
	// Outputs maps the index of every process that returned a value before
	// cancellation to that value.
	Outputs map[int]any
	// MaxMessageBits is the largest message observed (0 if SizeOf is nil).
	MaxMessageBits int
	// TotalMessages counts messages sent (one per process per round).
	TotalMessages int64
	// TotalBits accumulates SizeOf over all sent messages.
	TotalBits int64
}

// Run executes one coroutine per process over cfg.Schedule and returns the
// collected outputs. len(procs) must equal cfg.Schedule.N().
func Run(cfg Config, procs []Coroutine) (*Result, error) {
	return RunContext(context.Background(), cfg, procs)
}

// RunContext is Run with external cancellation: when ctx is cancelled the
// coordinator stops the run at the next scheduling point (between rounds or
// while waiting for submissions), releases every process goroutine, waits
// for them to exit, and returns an error wrapping ctx's cause. The partial
// Result (rounds executed so far, outputs already produced) is still
// returned alongside the error.
func RunContext(ctx context.Context, cfg Config, procs []Coroutine) (*Result, error) {
	var n int
	switch {
	case cfg.Schedule != nil && cfg.Adaptive != nil:
		return nil, errors.New("engine: both Schedule and Adaptive set")
	case cfg.Schedule != nil:
		n = cfg.Schedule.N()
	case cfg.Adaptive != nil:
		n = cfg.Adaptive.N()
	default:
		return nil, errors.New("engine: nil schedule")
	}
	if len(procs) != n {
		return nil, fmt.Errorf("engine: %d coroutines for %d processes", len(procs), n)
	}
	if cfg.MaxRounds <= 0 {
		return nil, fmt.Errorf("engine: non-positive MaxRounds %d", cfg.MaxRounds)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	c := &coordinator{
		cfg:    cfg,
		ctx:    ctx,
		n:      n,
		events: make(chan event),
		stop:   make(chan struct{}),
		inbox:  make([]chan []Message, n),
		state:  make([]procState, n),
	}
	for i := range c.inbox {
		c.inbox[i] = make(chan []Message, 1)
	}
	res, err := c.run(procs)
	return res, err
}

type procState int

const (
	stateRunning procState = iota + 1
	stateWaiting           // submitted this round, blocked on delivery
	stateDone              // returned an output
)

type event struct {
	pid    int
	msg    Message // valid when kind == evSubmit
	output any     // valid when kind == evDone
	err    error   // valid when kind == evDone
	kind   evKind
}

type evKind int

const (
	evSubmit evKind = iota + 1
	evDone
)

type coordinator struct {
	cfg    Config
	ctx    context.Context
	n      int
	events chan event
	stop   chan struct{}
	inbox  []chan []Message
	state  []procState

	round   int
	pending []Message // message submitted by each process this round

	// Round-delivery scratch, reused across rounds to keep the hot loop
	// allocation-free: headers and degree counts are per-pid, sent /
	// sentByPID hold the round's submissions, and the delivery backing
	// arrays are double-buffered (even/odd rounds) so a process may keep
	// reading its previous round's inbox slice until its next
	// SendAndReceive, per the documented validity window.
	outHeads  [][]Message
	degree    []int
	sent      []Message
	sentByPID []Message
	backings  [2][]Message
}

// Transport is the per-process communication endpoint handed to Coroutine.Run.
type Transport struct {
	pid   int
	coord *coordinator
	round int
}

// PID returns the process index in [0, n). It exists for the engine's own
// bookkeeping and for test instrumentation; anonymous protocols must not
// let it influence their behaviour.
func (t *Transport) PID() int { return t.pid }

// Round returns the number of completed communication rounds for this
// process (0 before the first SendAndReceive returns).
func (t *Transport) Round() int { return t.round }

// SendAndReceive broadcasts msg on all links incident to this process in
// the current round's multigraph and blocks until the round completes,
// returning the multiset of messages received from neighbors (possibly
// empty if the process is isolated this round). It returns ErrStopped when
// the run has been cancelled.
//
// The returned slice is valid only until this process's next
// SendAndReceive call: the engine round-robins the backing storage between
// rounds. Processes that need deliveries across rounds must copy them.
func (t *Transport) SendAndReceive(msg Message) ([]Message, error) {
	select {
	case t.coord.events <- event{pid: t.pid, kind: evSubmit, msg: msg}:
	case <-t.coord.stop:
		return nil, ErrStopped
	}
	// A delivery that has already been made must win over cancellation:
	// the round completed for every participant, so this process is
	// entitled to observe it (otherwise behaviour at the final round would
	// depend on goroutine scheduling).
	select {
	case msgs := <-t.coord.inbox[t.pid]:
		t.round++
		return msgs, nil
	default:
	}
	select {
	case msgs := <-t.coord.inbox[t.pid]:
		t.round++
		return msgs, nil
	case <-t.coord.stop:
		return nil, ErrStopped
	}
}

func (c *coordinator) run(procs []Coroutine) (*Result, error) {
	var wg sync.WaitGroup
	for i := range procs {
		c.state[i] = stateRunning
		tr := &Transport{pid: i, coord: c}
		proc := procs[i]
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			out, err := proc.Run(tr)
			select {
			case c.events <- event{pid: pid, kind: evDone, output: out, err: err}:
			case <-c.stop:
			}
		}(i)
	}

	res := &Result{Outputs: make(map[int]any)}
	c.pending = make([]Message, c.n)
	var runErr error

loop:
	for {
		if err := c.ctx.Err(); err != nil {
			runErr = fmt.Errorf("engine: run cancelled: %w", context.Cause(c.ctx))
			break
		}
		alive, waiting := c.census()
		if alive == 0 {
			break // every process returned
		}
		if waiting == alive {
			// Round barrier reached: deliver.
			if err := c.deliver(res); err != nil {
				runErr = err
				break
			}
			if c.cfg.StopWhen != nil && c.cfg.StopWhen(res.Outputs) {
				break
			}
			if c.round >= c.cfg.MaxRounds {
				runErr = ErrMaxRounds
				break
			}
			continue
		}
		var ev event
		select {
		case ev = <-c.events:
		case <-c.ctx.Done():
			runErr = fmt.Errorf("engine: run cancelled: %w", context.Cause(c.ctx))
			break loop
		}
		switch ev.kind {
		case evSubmit:
			c.state[ev.pid] = stateWaiting
			c.pending[ev.pid] = ev.msg
		case evDone:
			c.state[ev.pid] = stateDone
			if ev.err != nil && !errors.Is(ev.err, ErrStopped) {
				runErr = fmt.Errorf("engine: process %d: %w", ev.pid, ev.err)
				break loop
			}
			if ev.err == nil {
				res.Outputs[ev.pid] = ev.output
			}
			if c.cfg.StopWhen != nil && c.cfg.StopWhen(res.Outputs) {
				break loop
			}
		}
	}

	close(c.stop)
	wg.Wait()
	// Collect outputs from processes that finished during shutdown.
	for {
		select {
		case ev := <-c.events:
			if ev.kind == evDone && ev.err == nil {
				res.Outputs[ev.pid] = ev.output
			}
		default:
			res.Rounds = c.round
			return res, runErr
		}
	}
}

// census returns the number of processes still participating and how many
// of them have submitted this round.
func (c *coordinator) census() (alive, waiting int) {
	for _, s := range c.state {
		switch s {
		case stateRunning:
			alive++
		case stateWaiting:
			alive++
			waiting++
		}
	}
	return alive, waiting
}

// deliver completes one round: accounts sizes, routes the pending messages
// along the round's multigraph, and releases the waiting processes. All of
// its working storage lives on the coordinator and is reused round to
// round, so a steady-state round performs at most one allocation (growing
// a delivery backing array).
func (c *coordinator) deliver(res *Result) error {
	c.round++

	if c.outHeads == nil {
		c.outHeads = make([][]Message, c.n)
		c.degree = make([]int, c.n)
		c.sent = make([]Message, 0, c.n)
		c.sentByPID = make([]Message, c.n)
	}
	out := c.outHeads
	sent := c.sent[:0]
	sentByPID := c.sentByPID
	for pid := range sentByPID {
		sentByPID[pid] = nil
	}
	for pid, s := range c.state {
		if s != stateWaiting {
			continue
		}
		msg := c.pending[pid]
		sent = append(sent, msg)
		sentByPID[pid] = msg
		res.TotalMessages++
		if c.cfg.SizeOf != nil {
			bits := c.cfg.SizeOf(msg)
			res.TotalBits += int64(bits)
			if bits > res.MaxMessageBits {
				res.MaxMessageBits = bits
			}
			if c.cfg.BitLimit > 0 && bits > c.cfg.BitLimit {
				return &BitLimitError{Round: c.round, Process: pid, Bits: bits, Limit: c.cfg.BitLimit}
			}
		}
	}

	var g *dynnet.Multigraph
	if c.cfg.Adaptive != nil {
		g = c.cfg.Adaptive.Graph(c.round, sentByPID)
	} else {
		g = c.cfg.Schedule.Graph(c.round)
	}
	if g.N() != c.n {
		return fmt.Errorf("engine: schedule produced graph on %d processes at round %d, want %d",
			g.N(), c.round, c.n)
	}

	// Pre-size every inbox by the process's degree in the round's
	// multigraph (counting multiplicities), then carve all inboxes out of
	// one backing array. The backing arrays alternate by round parity: a
	// process may legitimately keep reading its previous round's inbox
	// slice until its next SendAndReceive (see the Transport contract), so
	// the buffer written this round must not be the one delivered last
	// round.
	links := g.Links()
	deg := c.degree
	for pid := range deg {
		deg[pid] = 0
	}
	total := 0
	for _, l := range links {
		uAlive := c.state[l.U] == stateWaiting
		vAlive := c.state[l.V] == stateWaiting
		if l.U == l.V {
			if uAlive {
				deg[l.U] += l.Mult
				total += l.Mult
			}
			continue
		}
		if uAlive && vAlive {
			deg[l.U] += l.Mult
			deg[l.V] += l.Mult
			total += 2 * l.Mult
		}
	}
	backing := c.backings[c.round&1]
	if cap(backing) < total {
		backing = make([]Message, 0, total)
		c.backings[c.round&1] = backing
	}
	off := 0
	for pid := range out {
		if deg[pid] == 0 {
			out[pid] = nil
			continue
		}
		out[pid] = backing[off : off : off+deg[pid]]
		off += deg[pid]
	}

	for _, l := range links {
		uAlive := c.state[l.U] == stateWaiting
		vAlive := c.state[l.V] == stateWaiting
		if l.U == l.V {
			if uAlive {
				for k := 0; k < l.Mult; k++ {
					out[l.U] = append(out[l.U], c.pending[l.U])
				}
			}
			continue
		}
		for k := 0; k < l.Mult; k++ {
			if uAlive && vAlive {
				out[l.U] = append(out[l.U], c.pending[l.V])
				out[l.V] = append(out[l.V], c.pending[l.U])
			}
			// A terminated endpoint neither sends nor receives.
		}
	}

	if c.cfg.Trace != nil {
		c.cfg.Trace(c.round, sent)
	}

	for pid, s := range c.state {
		if s != stateWaiting {
			continue
		}
		c.state[pid] = stateRunning
		c.inbox[pid] <- out[pid]
	}
	return nil
}
