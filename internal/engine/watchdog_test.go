package engine

import (
	"errors"
	"testing"
	"time"

	"anondyn/internal/dynnet"
)

// spinner is a coroutine that never terminates: the canonical wedged
// process the watchdog exists for.
func spinner() Coroutine {
	return CoroutineFunc(func(t *Transport) (any, error) {
		for {
			if _, err := t.SendAndReceive(0); err != nil {
				return nil, err
			}
		}
	})
}

// spinStepper is the stepper-path equivalent of spinner.
type spinStepper struct{}

func (spinStepper) Compose() Message  { return 0 }
func (spinStepper) Deliver([]Message) {}
func (spinStepper) Done() (any, bool) { return nil, false }

func TestWatchdogFiresOnAllCoroutineSchedulers(t *testing.T) {
	for _, sched := range []Scheduler{SchedulerSequential, SchedulerConcurrent, SchedulerParallel} {
		cfg := Config{
			Schedule:  dynnet.NewStatic(dynnet.Complete(3)),
			MaxRounds: 1 << 30,
			Deadline:  50 * time.Millisecond,
			Scheduler: sched,
		}
		start := time.Now()
		_, err := Run(cfg, []Coroutine{spinner(), spinner(), spinner()})
		if !errors.Is(err, ErrWatchdog) {
			t.Fatalf("scheduler %v: got %v, want ErrWatchdog", sched, err)
		}
		var wderr *WatchdogError
		if !errors.As(err, &wderr) {
			t.Fatalf("scheduler %v: error %v is not a *WatchdogError", sched, err)
		}
		if wderr.Limit != cfg.Deadline {
			t.Fatalf("scheduler %v: reported limit %v, want %v", sched, wderr.Limit, cfg.Deadline)
		}
		if wderr.Rounds <= 0 {
			t.Fatalf("scheduler %v: watchdog fired after %d rounds", sched, wderr.Rounds)
		}
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Fatalf("scheduler %v: watchdog took %v to stop the run", sched, elapsed)
		}
	}
}

func TestWatchdogFiresOnStepperPath(t *testing.T) {
	cfg := Config{
		Schedule:  dynnet.NewStatic(dynnet.Complete(3)),
		MaxRounds: 1 << 30,
		Deadline:  50 * time.Millisecond,
	}
	res, err := RunSteppers(cfg, []Stepper{spinStepper{}, spinStepper{}, spinStepper{}})
	if !errors.Is(err, ErrWatchdog) {
		t.Fatalf("got %v, want ErrWatchdog", err)
	}
	if res == nil || res.Rounds <= 0 {
		t.Fatalf("stepper watchdog returned no partial result: %+v", res)
	}
}

func TestZeroDeadlineNeverFires(t *testing.T) {
	// A terminating run with no deadline must complete normally.
	done := CoroutineFunc(func(t *Transport) (any, error) {
		for r := 0; r < 5; r++ {
			if _, err := t.SendAndReceive(r); err != nil {
				return nil, err
			}
		}
		return "ok", nil
	})
	cfg := Config{Schedule: dynnet.NewStatic(dynnet.Complete(2)), MaxRounds: 100}
	res, err := Run(cfg, []Coroutine{done, done})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs) != 2 {
		t.Fatalf("outputs: %v", res.Outputs)
	}
}

func TestWatchdogErrorMessageIsStructured(t *testing.T) {
	err := &WatchdogError{Rounds: 17, Limit: 250 * time.Millisecond}
	if !errors.Is(err, ErrWatchdog) {
		t.Fatal("WatchdogError must unwrap to ErrWatchdog")
	}
	msg := err.Error()
	for _, want := range []string{"watchdog", "250ms", "17"} {
		if !contains(msg, want) {
			t.Errorf("error message %q missing %q", msg, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
