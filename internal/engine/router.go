package engine

import (
	"fmt"

	"anondyn/internal/dynnet"
)

// router computes one round's deliveries: congestion accounting, schedule
// lookup, degree pre-sizing and the parity-double-buffered inbox
// carve-out. It is shared by the sequential direct-execution runner, the
// stepper fast path, and the concurrent coordinator, so every scheduler
// routes byte-identically and a steady-state round performs at most one
// allocation (growing a delivery backing array).
//
// The per-pid state slice uses the runners' common convention: a process
// participates in the round iff its state is stateWaiting, and pending[pid]
// holds its submitted message.
type router struct {
	cfg *Config
	n   int

	// round counts delivered rounds; route increments it first, so the
	// value passed to Adaptive.Graph, Trace, and BitLimitError is the
	// 1-based round being delivered.
	round int

	// Round-delivery scratch, reused across rounds to keep the hot loop
	// allocation-free: headers and degree counts are per-pid, sent /
	// sentByPID hold the round's submissions, and the delivery backing
	// arrays are double-buffered (even/odd rounds) so a process may keep
	// reading its previous round's inbox slice until its next
	// SendAndReceive, per the documented validity window.
	outHeads  [][]Message
	degree    []int
	pos       []int
	sent      []Message
	sentByPID []Message
	backings  [2][]Message

	// inPlace is the schedule's optional allocation-free generator; gbuf is
	// the single reused graph it fills. route only reads the graph inside
	// the call, so one buffer (no parity pair) suffices.
	inPlace dynnet.InPlaceSchedule
	gbuf    *dynnet.Multigraph

	// prepare/fill hand-off state for shard-local delivery (the parallel
	// runner fills each shard's inboxes on the shard's own worker).
	// liveLinks is the round's links with endpoint liveness already
	// resolved, so fill never reads the state slice — workers may already
	// be mutating other shards' states while a fill runs. pendSnap is the
	// round's submitted messages snapshotted at prepare time, for the same
	// reason. curBacking is this round's carved backing array.
	liveLinks  []dynnet.Link
	pendSnap   []Message
	curBacking []Message
}

// newRouter returns a router for n processes. The Config must outlive it.
func newRouter(cfg *Config, n int) *router {
	rt := &router{
		cfg:       cfg,
		n:         n,
		outHeads:  make([][]Message, n),
		degree:    make([]int, n),
		pos:       make([]int, n),
		sent:      make([]Message, 0, n),
		sentByPID: make([]Message, n),
		pendSnap:  make([]Message, n),
	}
	if cfg.Adaptive == nil {
		if ips, ok := cfg.Schedule.(dynnet.InPlaceSchedule); ok {
			rt.inPlace = ips
			rt.gbuf = dynnet.NewMultigraph(n)
		}
	}
	return rt
}

// route completes one round: it accounts message sizes, routes the pending
// messages of every stateWaiting process along the round's multigraph, and
// invokes the Trace hook. The returned per-pid inbox slices are carved out
// of the round-parity backing array and stay valid until the same parity's
// next route call.
//
// route is prepare followed by a full-range fill; the parallel runner calls
// the two halves itself so each worker fills its own shard's inboxes.
func (rt *router) route(state []procState, pending []Message, res *Result) ([][]Message, error) {
	out, err := rt.prepare(state, pending, res)
	if err != nil {
		return nil, err
	}
	rt.fill(0, rt.n)
	return out, nil
}

// prepare runs the single-threaded head of a round: congestion accounting,
// schedule lookup, the degree pass, the inbox carve-out, and the Trace
// hook. It resolves endpoint liveness into liveLinks and snapshots the
// submitted messages, so the fills that follow touch neither state nor
// pending — both may be concurrently mutated by workers resuming other
// shards' processes.
func (rt *router) prepare(state []procState, pending []Message, res *Result) ([][]Message, error) {
	rt.round++

	out := rt.outHeads
	sent := rt.sent[:0]
	// sentByPID only feeds the adaptive adversary; skip maintaining it
	// otherwise.
	adaptive := rt.cfg.Adaptive != nil
	sentByPID := rt.sentByPID
	if adaptive {
		for pid := range sentByPID {
			sentByPID[pid] = nil
		}
	}
	waiting := 0
	for pid, s := range state {
		if s != stateWaiting {
			continue
		}
		waiting++
		msg := pending[pid]
		sent = append(sent, msg)
		if adaptive {
			sentByPID[pid] = msg
		}
		res.TotalMessages++
		if rt.cfg.SizeOf != nil {
			bits := rt.cfg.SizeOf(msg)
			res.TotalBits += int64(bits)
			if bits > res.MaxMessageBits {
				res.MaxMessageBits = bits
			}
			if rt.cfg.BitLimit > 0 && bits > rt.cfg.BitLimit {
				return nil, &BitLimitError{Round: rt.round, Process: pid, Bits: bits, Limit: rt.cfg.BitLimit}
			}
		}
	}

	var g *dynnet.Multigraph
	switch {
	case rt.cfg.Adaptive != nil:
		g = rt.cfg.Adaptive.Graph(rt.round, sentByPID)
	case rt.inPlace != nil:
		rt.inPlace.GraphInto(rt.round, rt.gbuf)
		g = rt.gbuf
	default:
		g = rt.cfg.Schedule.Graph(rt.round)
	}
	if g.N() != rt.n {
		return nil, fmt.Errorf("engine: schedule produced graph on %d processes at round %d, want %d",
			g.N(), rt.round, rt.n)
	}

	// Pre-size every inbox by the process's degree in the round's
	// multigraph (counting multiplicities), then carve all inboxes out of
	// one backing array. The backing arrays alternate by round parity: a
	// process may legitimately keep reading its previous round's inbox
	// slice until its next SendAndReceive (see the Transport contract), so
	// the buffer written this round must not be the one delivered last
	// round. When every process participates (the common case until
	// termination), both passes skip the per-endpoint liveness checks.
	links := g.CanonicalLinks()
	deg := rt.degree
	for pid := range deg {
		deg[pid] = 0
	}
	total := 0
	all := waiting == rt.n
	live := rt.liveLinks[:0]
	for _, l := range links {
		uAlive := all || state[l.U] == stateWaiting
		vAlive := all || state[l.V] == stateWaiting
		if l.U == l.V {
			if uAlive {
				deg[l.U] += l.Mult
				total += l.Mult
				live = append(live, l)
			}
			continue
		}
		if uAlive && vAlive {
			deg[l.U] += l.Mult
			deg[l.V] += l.Mult
			total += 2 * l.Mult
			live = append(live, l)
		}
		// A terminated endpoint neither sends nor receives.
	}
	rt.liveLinks = live
	copy(rt.pendSnap, pending)
	backing := rt.backings[rt.round&1]
	if cap(backing) < total {
		backing = make([]Message, total)
		rt.backings[rt.round&1] = backing
	}
	backing = backing[:total]
	// pos tracks each inbox's write cursor into the shared backing. Writing
	// through an int cursor instead of append keeps the delivery loop free
	// of slice-header loads and stores; every inbox fills to exactly
	// deg[pid] because the delivery conditions below mirror the degree
	// pass above.
	pos := rt.pos
	off := 0
	for pid := range out {
		if deg[pid] == 0 {
			out[pid] = nil
			pos[pid] = off
			continue
		}
		out[pid] = backing[off : off+deg[pid] : off+deg[pid]]
		pos[pid] = off
		off += deg[pid]
	}

	rt.curBacking = backing

	if rt.cfg.Trace != nil {
		rt.cfg.Trace(rt.round, sent)
	}
	return out, nil
}

// fill delivers the prepared round's messages into the inboxes of pids in
// [lo, hi). Liveness is already folded into liveLinks and messages are read
// from the prepare-time snapshot, so concurrent fills of disjoint ranges
// are race-free with each other and with workers resuming processes
// outside the range: the pos cursors and carved backing regions touched
// here belong exclusively to [lo, hi).
func (rt *router) fill(lo, hi int) {
	backing := rt.curBacking
	pos := rt.pos
	pend := rt.pendSnap
	for _, l := range rt.liveLinks {
		if l.U == l.V {
			if l.U >= lo && l.U < hi {
				pu, mu := pos[l.U], pend[l.U]
				for k := 0; k < l.Mult; k++ {
					backing[pu] = mu
					pu++
				}
				pos[l.U] = pu
			}
			continue
		}
		if l.U >= lo && l.U < hi {
			pu, mv := pos[l.U], pend[l.V]
			for k := 0; k < l.Mult; k++ {
				backing[pu] = mv
				pu++
			}
			pos[l.U] = pu
		}
		if l.V >= lo && l.V < hi {
			pv, mu := pos[l.V], pend[l.U]
			for k := 0; k < l.Mult; k++ {
				backing[pv] = mu
				pv++
			}
			pos[l.V] = pv
		}
	}
}
