package engine

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"runtime"
	"sync"
)

// parCmd is a shard worker instruction: run the owned processes to their
// first submission, or deliver the routed round and resume them.
type parCmd int

const (
	parStart parCmd = iota + 1
	parDeliver
)

// parShard is one worker's slice of the process ring: the contiguous pid
// range [lo, hi) it owns, its command channel, and a reusable buffer of the
// pids that completed during the last phase. Only the owning worker writes
// doneBuf; the runner reads it after the worker's barrier reply.
type parShard struct {
	lo, hi  int
	cmd     chan parCmd
	doneBuf []int
}

// parRunner is the sharded parallel scheduler. The process ring is split
// into min(GOMAXPROCS, n) contiguous shards, each owned by one worker
// goroutine that hosts its processes as pull coroutines (exactly like the
// sequential runner's). Every round has two phases:
//
//   - compute/submit: the runner broadcasts a deliver command and every
//     worker resumes its own processes in pid order, each running to its
//     next SendAndReceive submission. All per-process state (state, pending,
//     inbox, done, and the coroutine handles) is indexed by pid and each pid
//     belongs to exactly one shard, so workers never write the same memory.
//   - route+deliver: the runner, having collected every worker's barrier
//     reply, runs the router's prepare half on its own goroutine — the same
//     single-threaded accounting, schedule lookup, and inbox carve-out the
//     other schedulers use, which is what keeps accounting, Trace, and
//     BitLimitError byte-identical. The delivery fill is shard-local: each
//     worker fills its own shard's inboxes (router.fill(lo, hi)) at the top
//     of its deliver phase, from the prepare-time liveness and message
//     snapshots, so the O(links) fan-out happens in parallel without an
//     extra barrier.
//
// The two-phase barrier is a command send plus a reply receive per shard
// (O(shards) channel operations per round) replacing the sequential
// scheduler's n+1 coroutine handoffs of protocol work with parallel
// execution. The channel operations also carry the memory-model edges: the
// command send publishes the runner's routed buffers to the worker, the
// reply publishes the worker's submissions and completions back.
//
// Completions are merged on the runner in global pid order (shards are
// contiguous and workers scan in pid order), so error selection and
// StopWhen observation are as deterministic as the sequential scheduler's
// sweep. A process that runs one round past a stop trigger — unavoidable
// when its shard already resumed it — matches the concurrent coordinator's
// semantics: its output, if it finished, is still collected, exactly like
// the shutdown drain.
type parRunner struct {
	cfg     Config
	ctx     context.Context
	wd      watchdog
	n       int
	rt      *router
	state   []procState
	pending []Message

	// Per-process pull coroutine handles, identical in role to seqRunner's:
	// next resumes to the next submission or return, stop unwinds, yield is
	// captured by the coroutine body, inbox is the delivery slot, done the
	// output slot.
	next  []func() (struct{}, bool)
	stop  []func()
	yield []func(struct{}) bool
	inbox [][]Message
	done  []seqDone

	procs   []Coroutine
	out     [][]Message // routed deliveries, published to workers by the deliver command
	shards  []parShard
	replies chan int
	wg      sync.WaitGroup

	alive    int
	stopping bool
	runErr   error
}

// newParRunner sizes the shard set for n processes.
func newParRunner(ctx context.Context, cfg Config, n int) *parRunner {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	p := &parRunner{
		cfg:     cfg,
		ctx:     ctx,
		wd:      newWatchdog(cfg.Deadline),
		n:       n,
		rt:      newRouter(&cfg, n),
		state:   make([]procState, n),
		pending: make([]Message, n),
		next:    make([]func() (struct{}, bool), n),
		stop:    make([]func(), n),
		yield:   make([]func(struct{}) bool, n),
		inbox:   make([][]Message, n),
		done:    make([]seqDone, n),
		shards:  make([]parShard, workers),
		replies: make(chan int, workers),
	}
	base, rem := n/workers, n%workers
	lo := 0
	for i := range p.shards {
		size := base
		if i < rem {
			size++
		}
		p.shards[i] = parShard{lo: lo, hi: lo + size, cmd: make(chan parCmd, 1)}
		lo += size
	}
	return p
}

// sendAndReceive is Transport.SendAndReceive under the parallel scheduler:
// the same direct coroutine switch as the sequential runner's, except the
// switch returns control to the owning shard worker instead of the runner.
func (p *parRunner) sendAndReceive(t *Transport, msg Message) ([]Message, error) {
	if p.stopping {
		return nil, ErrStopped
	}
	p.state[t.pid] = stateWaiting
	p.pending[t.pid] = msg
	if !p.yield[t.pid](struct{}{}) {
		return nil, ErrStopped
	}
	t.round++
	return p.inbox[t.pid], nil
}

// startProc creates the pull coroutine for one process, mirroring the
// sequential runner.
func (p *parRunner) startProc(pid int, proc Coroutine) {
	tr := &Transport{pid: pid, par: p}
	p.next[pid], p.stop[pid] = iter.Pull(func(yield func(struct{}) bool) {
		p.yield[pid] = yield
		out, err := proc.Run(tr)
		p.done[pid] = seqDone{output: out, err: err, finished: true}
	})
}

// worker owns one shard: it services start and deliver commands, resuming
// its processes in pid order and recording completions in its doneBuf, and
// replies on the shared barrier channel after each phase.
func (p *parRunner) worker(i int) {
	defer p.wg.Done()
	sh := &p.shards[i]
	for cmd := range sh.cmd {
		sh.doneBuf = sh.doneBuf[:0]
		switch cmd {
		case parStart:
			for pid := sh.lo; pid < sh.hi; pid++ {
				p.state[pid] = stateRunning
				p.startProc(pid, p.procs[pid])
				if _, ok := p.next[pid](); !ok {
					p.state[pid] = stateDone
					sh.doneBuf = append(sh.doneBuf, pid)
				}
			}
		case parDeliver:
			// Shard-local batched delivery: fill this shard's inboxes here,
			// on the shard's own worker, instead of on the runner's
			// goroutine. prepare resolved liveness and snapshotted the
			// submissions, so the fill touches only [lo, hi)-owned cursors
			// and backing regions while other workers are already resuming
			// their own processes.
			p.rt.fill(sh.lo, sh.hi)
			for pid := sh.lo; pid < sh.hi; pid++ {
				if p.state[pid] != stateWaiting {
					continue
				}
				p.state[pid] = stateRunning
				p.inbox[pid] = p.out[pid]
				if _, ok := p.next[pid](); !ok {
					p.state[pid] = stateDone
					sh.doneBuf = append(sh.doneBuf, pid)
				}
			}
		}
		p.replies <- i
	}
}

// barrier runs one phase on every shard and waits for all replies. The
// reply count, not identity, is the synchronization; the pending and state
// arrays are consistent once every shard has replied.
func (p *parRunner) barrier(cmd parCmd) {
	for i := range p.shards {
		p.shards[i].cmd <- cmd
	}
	for range p.shards {
		<-p.replies
	}
}

// merge folds the phase's completions into the result in global pid order,
// applying the same error precedence and StopWhen observation points as the
// sequential runner's delivery sweep. It returns true when the run should
// stop. Completions encountered after the stop decision still contribute
// their outputs (never errors), matching both the sequential unwind and the
// concurrent shutdown drain.
func (p *parRunner) merge(res *Result) bool {
	stopped := false
	for i := range p.shards {
		for _, pid := range p.shards[i].doneBuf {
			p.alive--
			d := p.done[pid]
			if stopped {
				if d.err == nil {
					res.Outputs[pid] = d.output
				}
				continue
			}
			if d.err != nil && !errors.Is(d.err, ErrStopped) {
				p.runErr = fmt.Errorf("engine: process %d: %w", pid, d.err)
				stopped = true
				continue
			}
			if d.err == nil {
				res.Outputs[pid] = d.output
			}
			if p.cfg.StopWhen != nil && p.cfg.StopWhen(res.Outputs) {
				stopped = true
			}
		}
	}
	return stopped
}

func (p *parRunner) run(procs []Coroutine) (*Result, error) {
	res := &Result{Outputs: make(map[int]any)}
	if err := p.ctx.Err(); err != nil {
		// Pre-cancelled: never start a process coroutine or a worker.
		return res, fmt.Errorf("engine: run cancelled: %w", context.Cause(p.ctx))
	}

	p.procs = procs
	for i := range p.shards {
		p.wg.Add(1)
		go p.worker(i)
	}
	p.alive = p.n

	// Start phase: every worker runs its processes to their first
	// submission in parallel.
	p.barrier(parStart)
	stopped := p.merge(res)

	// Round loop: same boundary order as the sequential runner — external
	// cancellation, watchdog, route, StopWhen, round budget — then the
	// parallel deliver phase.
	for !stopped && p.runErr == nil && p.alive > 0 {
		if err := p.ctx.Err(); err != nil {
			p.runErr = fmt.Errorf("engine: run cancelled: %w", context.Cause(p.ctx))
			break
		}
		if err := p.wd.check(p.rt.round); err != nil {
			p.runErr = err
			break
		}
		// prepare only — the deliver barrier below runs the fill half on
		// each shard's own worker.
		out, err := p.rt.prepare(p.state, p.pending, res)
		if err != nil {
			p.runErr = err
			break
		}
		if p.cfg.StopWhen != nil && p.cfg.StopWhen(res.Outputs) {
			break
		}
		if p.rt.round >= p.cfg.MaxRounds {
			p.runErr = ErrMaxRounds
			break
		}
		p.out = out
		p.barrier(parDeliver)
		stopped = p.merge(res)
	}

	// Release the shard workers before unwinding: once they have exited,
	// every coroutine handle is quiescent and owned by this goroutine (the
	// final barrier replies carry the ordering), so the parked processes can
	// be stopped exactly like the sequential unwind.
	for i := range p.shards {
		close(p.shards[i].cmd)
	}
	p.wg.Wait()
	p.unwind(res)
	res.Rounds = p.rt.round
	return res, p.runErr
}

// unwind releases every parked process with a stop switch, collecting the
// outputs of any that complete rather than propagate ErrStopped — the same
// contract as the sequential runner's unwind.
func (p *parRunner) unwind(res *Result) {
	p.stopping = true
	for pid := range p.state {
		if p.state[pid] != stateWaiting {
			continue
		}
		p.state[pid] = stateDone
		p.alive--
		p.stop[pid]()
		if d := p.done[pid]; d.finished && d.err == nil {
			res.Outputs[pid] = d.output
		}
	}
}
