package engine

import (
	"context"
	"errors"
	"fmt"
	"iter"
)

// seqDone records a returned process: its output, its error, and the fact
// that the coroutine function actually completed (as opposed to never having
// been resumed to completion).
type seqDone struct {
	output   any
	err      error
	finished bool
}

// stepResult classifies what happened after the runner resumed one process.
type stepResult int

const (
	// stepParked: the process submitted a message and is parked awaiting
	// delivery.
	stepParked stepResult = iota
	// stepDone: the process returned; the round can keep going.
	stepDone
	// stepStop: stop condition or error; leave the round loop.
	stepStop
)

// seqRunner is the sequential direct-execution scheduler. Each process runs
// as a pull coroutine (iter.Pull): the runner resumes it with a direct
// coroutine switch, the process runs until its next SendAndReceive submission
// and switches straight back. The switch is the runtime's coroutine handoff —
// no channel, no scheduler queueing, no goroutine ready/park transitions — so
// the per-round cost is the protocol's own work plus the shared routing;
// profiling the counting simulation showed the former channel-based handoff
// spending over a quarter of total CPU inside the runtime scheduler.
//
// The strict control-transfer discipline is also the memory model: every
// shared field (state, pending, inbox, counters) is only touched by the
// currently running coroutine, and each switch orders the writes for the
// next one (iter.Pull guarantees the iterator and its caller never run
// concurrently).
type seqRunner struct {
	cfg     Config
	ctx     context.Context
	wd      watchdog
	n       int
	rt      *router
	state   []procState
	pending []Message

	// Per-process pull coroutine: next resumes the process until its next
	// submission (or return), stop unwinds it, yield is the process side of
	// the switch (captured by the coroutine body on first resume), inbox is
	// the delivery slot the runner fills before resuming, and done the
	// output slot the coroutine body fills before returning.
	next  []func() (struct{}, bool)
	stop  []func()
	yield []func(struct{}) bool
	inbox [][]Message
	done  []seqDone

	// alive counts processes that have not returned; it is maintained
	// incrementally (no census scans).
	alive int

	// stopping is set by the runner before the unwind begins, so a
	// non-conforming coroutine that keeps calling SendAndReceive after
	// ErrStopped fails fast instead of blocking on a dead round.
	stopping bool

	runErr error
}

// sendAndReceive is Transport.SendAndReceive under the sequential scheduler:
// record the submission, switch control back to the runner, and continue
// once the runner has filled the inbox slot and resumed this process.
func (s *seqRunner) sendAndReceive(t *Transport, msg Message) ([]Message, error) {
	if s.stopping {
		return nil, ErrStopped
	}
	s.state[t.pid] = stateWaiting
	s.pending[t.pid] = msg
	if !s.yield[t.pid](struct{}{}) {
		// The runner called stop: unwind.
		return nil, ErrStopped
	}
	t.round++
	return s.inbox[t.pid], nil
}

// startProc creates the pull coroutine for one process. The body captures
// its yield function before running the protocol, so sendAndReceive can
// switch back to the runner.
func (s *seqRunner) startProc(pid int, proc Coroutine) {
	tr := &Transport{pid: pid, seq: s}
	s.next[pid], s.stop[pid] = iter.Pull(func(yield func(struct{}) bool) {
		s.yield[pid] = yield
		out, err := proc.Run(tr)
		s.done[pid] = seqDone{output: out, err: err, finished: true}
	})
}

// resume switches control to one process until its next submission or
// return, updates counters and outputs for completions, and classifies what
// happened.
func (s *seqRunner) resume(pid int, res *Result) stepResult {
	if _, ok := s.next[pid](); ok {
		return stepParked
	}
	// The coroutine function completed: the process returned.
	s.state[pid] = stateDone
	s.alive--
	d := s.done[pid]
	if d.err != nil && !errors.Is(d.err, ErrStopped) {
		s.runErr = fmt.Errorf("engine: process %d: %w", pid, d.err)
		return stepStop
	}
	if d.err == nil {
		res.Outputs[pid] = d.output
	}
	if s.cfg.StopWhen != nil && s.cfg.StopWhen(res.Outputs) {
		return stepStop
	}
	return stepDone
}

func (s *seqRunner) run(procs []Coroutine) (*Result, error) {
	res := &Result{Outputs: make(map[int]any)}
	if err := s.ctx.Err(); err != nil {
		// Pre-cancelled: never start a process coroutine.
		return res, fmt.Errorf("engine: run cancelled: %w", context.Cause(s.ctx))
	}

	// Start phase: run every process to its first submission (or return).
	for pid := range procs {
		if s.runErr != nil {
			break
		}
		s.state[pid] = stateRunning
		s.alive++
		s.startProc(pid, procs[pid])
		if s.resume(pid, res) == stepStop {
			break
		}
	}

	// Round loop: every live process is parked with a submission, so the
	// barrier holds by construction — route, then deliver to each waiting
	// process in pid order, regaining control after each one's next
	// submission. A process resumed mid-sweep re-submits at its own index,
	// which the sweep has already passed, so it is never redelivered within
	// the round.
	for s.runErr == nil && s.alive > 0 {
		if err := s.ctx.Err(); err != nil {
			s.runErr = fmt.Errorf("engine: run cancelled: %w", context.Cause(s.ctx))
			break
		}
		if err := s.wd.check(s.rt.round); err != nil {
			s.runErr = err
			break
		}
		out, err := s.rt.route(s.state, s.pending, res)
		if err != nil {
			s.runErr = err
			break
		}
		if s.cfg.StopWhen != nil && s.cfg.StopWhen(res.Outputs) {
			break
		}
		if s.rt.round >= s.cfg.MaxRounds {
			s.runErr = ErrMaxRounds
			break
		}
		stopped := false
		for pid := 0; pid < s.n; pid++ {
			if s.state[pid] != stateWaiting {
				continue
			}
			s.state[pid] = stateRunning
			s.inbox[pid] = out[pid]
			if s.resume(pid, res) == stepStop {
				stopped = true
				break
			}
		}
		if stopped {
			break
		}
	}

	s.unwind(res)
	res.Rounds = s.rt.round
	return res, s.runErr
}

// unwind releases every parked process with a stop switch, which runs its
// coroutine to completion synchronously; coroutines must return promptly on
// ErrStopped. Outputs produced during the unwind (a process that completed
// rather than propagate ErrStopped) are still collected, mirroring the
// concurrent coordinator's shutdown drain.
func (s *seqRunner) unwind(res *Result) {
	s.stopping = true
	for pid := range s.state {
		if s.state[pid] != stateWaiting {
			continue
		}
		s.state[pid] = stateDone
		s.alive--
		s.stop[pid]()
		if d := s.done[pid]; d.finished && d.err == nil {
			res.Outputs[pid] = d.output
		}
	}
}
