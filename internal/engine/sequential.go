package engine

import (
	"context"
	"errors"
	"fmt"
)

// seqResume is the delivery half of a direct handoff: the process's round
// inbox, or the stop signal.
type seqResume struct {
	msgs []Message
	stop bool
}

// seqYield is a transfer of control back to the runner: the round's resume
// chain completed (evSweep), or a process returned (evDone).
type seqYield struct {
	pid    int
	output any   // valid when kind == evDone
	err    error // valid when kind == evDone
	kind   evKind
}

// seqRunner is the sequential direct-execution scheduler. Process
// goroutines are parked on per-process resume channels; after routing a
// round the runner resumes the first one, and each process — inside its
// next SendAndReceive — hands control straight to the next undelivered
// process, forming a resume chain that returns to the runner only when the
// round's deliveries are exhausted. Exactly one goroutine is runnable at
// any moment and each process costs a single handoff per round — no
// central event loop, no selects, no stop-channel contention, no census
// scans (alive/waiting are plain counters) — so the per-round cost is the
// protocol's own work plus the shared routing.
//
// The strict control-transfer discipline is also the memory model: every
// shared field (state, pending, out, cursor, counters) is only touched by
// the currently running goroutine, and each channel handoff publishes the
// writes to the next one.
type seqRunner struct {
	cfg     Config
	ctx     context.Context
	n       int
	rt      *router
	state   []procState
	pending []Message
	resume  []chan seqResume
	yield   chan seqYield

	// out and cursor drive the current round's resume chain: out holds the
	// routed inboxes, cursor the next pid to consider. advance delivers to
	// the next stateWaiting pid at or past cursor; re-submissions during
	// the sweep land behind the cursor, so they are never redelivered.
	out    [][]Message
	cursor int

	// alive counts processes that have not returned; it is maintained
	// incrementally (no census scans).
	alive int

	// stopping is set by the runner before the unwind handoffs begin; the
	// strict handoff alternation orders the write before any process reads
	// it, so a non-conforming coroutine that keeps calling SendAndReceive
	// after ErrStopped spins locally instead of deadlocking the unwind.
	stopping bool

	runErr error
}

// sendAndReceive is Transport.SendAndReceive under the sequential
// scheduler: submit, hand control down the round's resume chain (waking
// the runner if the chain is exhausted), and park until delivery.
func (s *seqRunner) sendAndReceive(t *Transport, msg Message) ([]Message, error) {
	if s.stopping {
		return nil, ErrStopped
	}
	s.state[t.pid] = stateWaiting
	s.pending[t.pid] = msg
	if !s.advance() {
		s.yield <- seqYield{kind: evSweep}
	}
	r := <-s.resume[t.pid]
	if r.stop {
		return nil, ErrStopped
	}
	t.round++
	return r.msgs, nil
}

// advance resumes the next undelivered process of the current round's
// chain and reports whether there was one. The caller transfers control
// with the send and must park (or, for the runner, wait on yield)
// immediately after.
func (s *seqRunner) advance() bool {
	for ; s.cursor < s.n; s.cursor++ {
		pid := s.cursor
		if s.state[pid] != stateWaiting {
			continue
		}
		s.state[pid] = stateRunning
		s.cursor++
		s.resume[pid] <- seqResume{msgs: s.out[pid]}
		return true
	}
	return false
}

func (s *seqRunner) run(procs []Coroutine) (*Result, error) {
	res := &Result{Outputs: make(map[int]any)}
	if err := s.ctx.Err(); err != nil {
		// Pre-cancelled: never start a process goroutine.
		return res, fmt.Errorf("engine: run cancelled: %w", context.Cause(s.ctx))
	}

	// Start phase: run every process to its first submission (or return).
	// The chain is empty (no round routed yet), so each first submission
	// yields evSweep straight back to the runner.
	for pid := range procs {
		if s.runErr != nil {
			break
		}
		s.state[pid] = stateRunning
		s.alive++
		tr := &Transport{pid: pid, seq: s}
		proc := procs[pid]
		go func(pid int) {
			out, err := proc.Run(tr)
			s.yield <- seqYield{pid: pid, kind: evDone, output: out, err: err}
		}(pid)
		if s.await(res) == awaitStop {
			break
		}
	}

	// Round loop: every live process is parked with a submission, so the
	// barrier holds by construction — route, start the resume chain, and
	// regain control once the chain has delivered to every participant.
	for s.runErr == nil && s.alive > 0 {
		if err := s.ctx.Err(); err != nil {
			s.runErr = fmt.Errorf("engine: run cancelled: %w", context.Cause(s.ctx))
			break
		}
		out, err := s.rt.route(s.state, s.pending, res)
		if err != nil {
			s.runErr = err
			break
		}
		if s.cfg.StopWhen != nil && s.cfg.StopWhen(res.Outputs) {
			break
		}
		if s.rt.round >= s.cfg.MaxRounds {
			s.runErr = ErrMaxRounds
			break
		}
		s.out, s.cursor = out, 0
		if !s.advance() {
			continue
		}
		// Chain running; control returns via evSweep (chain completed in a
		// process) or evDone (a process returned; the runner relinks the
		// chain itself, and owns control when it finds the chain finished).
		ar := s.await(res)
		for ar == awaitContinue {
			ar = s.await(res)
		}
		if ar == awaitStop {
			break
		}
	}

	s.unwind(res)
	res.Rounds = s.rt.round
	return res, s.runErr
}

// awaitResult tells the runner's round loop what to do after one yield.
type awaitResult int

const (
	// awaitContinue: chain still running, park on yield again.
	awaitContinue awaitResult = iota
	// awaitRound: the round's chain is complete, go route the next round.
	awaitRound
	// awaitStop: stop condition or error; leave the round loop.
	awaitStop
)

// await blocks until control returns to the runner, updates counters and
// outputs for process completions, and classifies what happened.
func (s *seqRunner) await(res *Result) awaitResult {
	y := <-s.yield
	switch y.kind {
	case evSweep:
		return awaitRound
	case evDone:
		s.state[y.pid] = stateDone
		s.alive--
		if y.err != nil && !errors.Is(y.err, ErrStopped) {
			s.runErr = fmt.Errorf("engine: process %d: %w", y.pid, y.err)
			return awaitStop
		}
		if y.err == nil {
			res.Outputs[y.pid] = y.output
		}
		if s.cfg.StopWhen != nil && s.cfg.StopWhen(res.Outputs) {
			return awaitStop
		}
		// The chain ended at this process; the runner relinks it. If
		// nothing is left to deliver the runner owns control and the
		// round is complete.
		if !s.advance() {
			return awaitRound
		}
		return awaitContinue
	default:
		panic(fmt.Sprintf("engine: unexpected yield kind %d", y.kind))
	}
}

// unwind releases every parked process with a stop handoff and waits for
// its goroutine to return; coroutines must return promptly on ErrStopped.
// Outputs produced during the unwind (a process that completed rather than
// propagate ErrStopped) are still collected, mirroring the concurrent
// coordinator's shutdown drain.
func (s *seqRunner) unwind(res *Result) {
	s.stopping = true
	for pid := range s.state {
		if s.state[pid] != stateWaiting {
			continue
		}
		s.state[pid] = stateDone
		s.alive--
		s.resume[pid] <- seqResume{stop: true}
		y := <-s.yield
		if y.kind == evDone && y.err == nil {
			res.Outputs[y.pid] = y.output
		}
	}
}
