package engine

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"anondyn/internal/dynnet"
)

// withShards raises GOMAXPROCS for the duration of a test so the parallel
// scheduler actually splits the ring into several shards. The CI and
// container hosts often run single-core, where min(GOMAXPROCS, n) = 1 and
// every multi-shard code path — cross-shard barrier ordering, per-shard
// doneBuf merging, worker release — would otherwise go untested.
func withShards(t *testing.T, workers int) {
	t.Helper()
	prev := runtime.GOMAXPROCS(workers)
	t.Cleanup(func() { runtime.GOMAXPROCS(prev) })
}

// TestParallelShardSplit pins that the runner genuinely shards: with
// GOMAXPROCS=4 and 9 processes it must create 4 contiguous shards covering
// the ring exactly once.
func TestParallelShardSplit(t *testing.T) {
	withShards(t, 4)
	p := newParRunner(context.Background(), Config{}, 9)
	if len(p.shards) != 4 {
		t.Fatalf("got %d shards for 9 procs at GOMAXPROCS=4, want 4", len(p.shards))
	}
	lo := 0
	for i, sh := range p.shards {
		if sh.lo != lo {
			t.Fatalf("shard %d starts at %d, want %d (contiguous cover)", i, sh.lo, lo)
		}
		if sh.hi <= sh.lo {
			t.Fatalf("shard %d is empty: [%d,%d)", i, sh.lo, sh.hi)
		}
		lo = sh.hi
	}
	if lo != 9 {
		t.Fatalf("shards cover [0,%d), want [0,9)", lo)
	}
	// More workers than processes must clamp to one process per shard.
	p = newParRunner(context.Background(), Config{}, 2)
	if len(p.shards) != 2 {
		t.Fatalf("got %d shards for 2 procs, want 2", len(p.shards))
	}
}

// TestParallelMultiShardEquivalence re-runs the scheduler equivalence
// contract with the ring genuinely split across 4 workers. The package's
// main equivalence sweep covers SchedulerParallel too, but under a
// single-core host it degenerates to one shard; this test forces the
// cross-shard merge and barrier ordering.
func TestParallelMultiShardEquivalence(t *testing.T) {
	withShards(t, 4)
	for _, n := range []int{4, 9, 16} {
		cfg := func() Config {
			return Config{Schedule: dynnet.NewRandomConnected(n, 0.4, int64(n)), MaxRounds: 100}
		}
		seqRes, seqTrace, err := runUnder(t, SchedulerSequential, cfg(), n, 5)
		if err != nil {
			t.Fatalf("n=%d sequential: %v", n, err)
		}
		parRes, parTrace, err := runUnder(t, SchedulerParallel, cfg(), n, 5)
		if err != nil {
			t.Fatalf("n=%d parallel: %v", n, err)
		}
		assertSameRun(t, seqRes, parRes, seqTrace, parTrace)
	}
}

// quietProc sends a constant small int (boxed allocation-free by the
// runtime's small-int cache) and discards everything it receives, so any
// allocation measured during its rounds belongs to the scheduler, not the
// protocol.
func quietProc(rounds int) Coroutine {
	return CoroutineFunc(func(tr *Transport) (any, error) {
		for i := 0; i < rounds; i++ {
			if _, err := tr.SendAndReceive(7); err != nil {
				return nil, err
			}
		}
		return nil, nil
	})
}

// TestSchedulerSteadyStateAllocs gates per-round allocations: once the
// router's double-buffered delivery backings have grown to the round's
// working set (and each shard's doneBuf is warm), additional rounds must be
// allocation-free. The gate is the *difference* between a long and a short
// run, so per-run setup (runner, coroutines, shards) cancels out.
func TestSchedulerSteadyStateAllocs(t *testing.T) {
	withShards(t, 4)
	const extra = 100
	for _, sched := range schedulers {
		measure := func(rounds int) float64 {
			return testing.AllocsPerRun(5, func() {
				procs := make([]Coroutine, 8)
				for pid := range procs {
					procs[pid] = quietProc(rounds)
				}
				cfg := Config{Schedule: dynnet.NewStatic(dynnet.Complete(8)),
					MaxRounds: rounds + 1, Scheduler: sched}
				if _, err := Run(cfg, procs); err != nil {
					t.Errorf("%v: %v", sched, err)
				}
			})
		}
		short := measure(10)
		long := measure(10 + extra)
		perRound := (long - short) / extra
		if perRound > 0.5 {
			t.Errorf("scheduler %v: %.2f allocs per steady-state round (short=%.0f long=%.0f), want ~0",
				sched, perRound, short, long)
		}
	}
}

// TestParallelShardWorkerRelease is the shard-worker goroutine-leak
// regression: after any run outcome — completion, process error, external
// cancellation — every shard worker must have exited. A leaked worker
// would hold its coroutine handles (and their stacks) forever.
func TestParallelShardWorkerRelease(t *testing.T) {
	withShards(t, 4)
	baseline := runtime.NumGoroutine()

	forever := func() Coroutine {
		return CoroutineFunc(func(tr *Transport) (any, error) {
			for {
				if _, err := tr.SendAndReceive(nil); err != nil {
					return nil, err
				}
			}
		})
	}
	boom := CoroutineFunc(func(tr *Transport) (any, error) {
		for i := 0; i < 3; i++ {
			if _, err := tr.SendAndReceive(nil); err != nil {
				return nil, err
			}
		}
		return nil, errors.New("boom")
	})

	const n = 8
	mk := func(withErr bool) []Coroutine {
		procs := make([]Coroutine, n)
		for pid := range procs {
			if withErr && pid == 5 {
				procs[pid] = boom
			} else if withErr {
				procs[pid] = forever()
			} else {
				procs[pid] = echoProc(4)
			}
		}
		return procs
	}
	cfg := Config{Schedule: dynnet.NewStatic(dynnet.Complete(n)), MaxRounds: 1 << 20, Scheduler: SchedulerParallel}

	for i := 0; i < 10; i++ {
		// Normal completion.
		if _, err := Run(cfg, mk(false)); err != nil {
			t.Fatalf("normal run: %v", err)
		}
		// A process error mid-run stops the whole shard set.
		if _, err := Run(cfg, mk(true)); err == nil {
			t.Fatal("error run returned nil error")
		}
		// External cancellation while every worker is parked.
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() {
			procs := make([]Coroutine, n)
			for pid := range procs {
				procs[pid] = forever()
			}
			_, err := RunContext(ctx, cfg, procs)
			done <- err
		}()
		time.Sleep(time.Millisecond)
		cancel()
		if err := <-done; !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled run: %v", err)
		}
	}

	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		runtime.Gosched()
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("shard workers leaked: baseline %d goroutines, now %d", baseline, runtime.NumGoroutine())
}
