package engine

import (
	"errors"
	"fmt"
	"sort"
	"testing"

	"anondyn/internal/dynnet"
)

// echoProc sends its PID for `rounds` rounds and returns the sorted list of
// everything it received.
func echoProc(rounds int) Coroutine {
	return CoroutineFunc(func(t *Transport) (any, error) {
		var got []int
		for i := 0; i < rounds; i++ {
			msgs, err := t.SendAndReceive(t.PID())
			if err != nil {
				return nil, err
			}
			for _, m := range msgs {
				v, ok := m.(int)
				if !ok {
					return nil, fmt.Errorf("unexpected message %T", m)
				}
				got = append(got, v)
			}
		}
		sort.Ints(got)
		return got, nil
	})
}

func runEcho(t *testing.T, g *dynnet.Multigraph, rounds int) map[int]any {
	t.Helper()
	n := g.N()
	procs := make([]Coroutine, n)
	for i := range procs {
		procs[i] = echoProc(rounds)
	}
	res, err := Run(Config{Schedule: dynnet.NewStatic(g), MaxRounds: rounds + 1}, procs)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Rounds != rounds {
		t.Fatalf("Rounds=%d, want %d", res.Rounds, rounds)
	}
	return res.Outputs
}

func TestDeliveryFollowsLinks(t *testing.T) {
	g := dynnet.NewMultigraph(3)
	g.MustAddLink(0, 1, 1)
	outputs := runEcho(t, g, 1)
	want := map[int][]int{0: {1}, 1: {0}, 2: nil}
	for pid, w := range want {
		got, _ := outputs[pid].([]int)
		if fmt.Sprint(got) != fmt.Sprint(w) {
			t.Errorf("process %d received %v, want %v", pid, got, w)
		}
	}
}

func TestDeliveryMultiplicity(t *testing.T) {
	g := dynnet.NewMultigraph(2)
	g.MustAddLink(0, 1, 3)
	outputs := runEcho(t, g, 1)
	if got := outputs[0].([]int); len(got) != 3 || got[0] != 1 {
		t.Errorf("process 0 received %v, want three copies of 1", got)
	}
	if got := outputs[1].([]int); len(got) != 3 || got[2] != 0 {
		t.Errorf("process 1 received %v, want three copies of 0", got)
	}
}

func TestSelfLoopDeliversOwnMessage(t *testing.T) {
	g := dynnet.NewMultigraph(1)
	g.MustAddLink(0, 0, 2)
	outputs := runEcho(t, g, 1)
	if got := outputs[0].([]int); len(got) != 2 || got[0] != 0 || got[1] != 0 {
		t.Errorf("got %v, want two copies of own message", got)
	}
}

func TestRunValidation(t *testing.T) {
	sched := dynnet.NewStatic(dynnet.Path(2))
	procs := []Coroutine{echoProc(1), echoProc(1)}
	tests := []struct {
		name string
		cfg  Config
		pr   []Coroutine
	}{
		{name: "nil-schedule", cfg: Config{MaxRounds: 1}, pr: procs},
		{name: "wrong-proc-count", cfg: Config{Schedule: sched, MaxRounds: 1}, pr: procs[:1]},
		{name: "zero-max-rounds", cfg: Config{Schedule: sched}, pr: procs},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Run(tt.cfg, tt.pr); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

func TestMaxRoundsCancelsRun(t *testing.T) {
	// Processes that never terminate on their own.
	forever := CoroutineFunc(func(tr *Transport) (any, error) {
		for {
			if _, err := tr.SendAndReceive("tick"); err != nil {
				return nil, err
			}
		}
	})
	res, err := Run(Config{Schedule: dynnet.NewStatic(dynnet.Path(2)), MaxRounds: 5},
		[]Coroutine{forever, forever})
	if !errors.Is(err, ErrMaxRounds) {
		t.Fatalf("err = %v, want ErrMaxRounds", err)
	}
	if res.Rounds != 5 {
		t.Fatalf("Rounds=%d, want 5", res.Rounds)
	}
}

func TestStopWhenCancelsOthers(t *testing.T) {
	decider := CoroutineFunc(func(tr *Transport) (any, error) {
		for i := 0; i < 3; i++ {
			if _, err := tr.SendAndReceive(nil); err != nil {
				return nil, err
			}
		}
		return "done", nil
	})
	forever := CoroutineFunc(func(tr *Transport) (any, error) {
		for {
			if _, err := tr.SendAndReceive(nil); err != nil {
				return nil, err
			}
		}
	})
	res, err := Run(Config{
		Schedule:  dynnet.NewStatic(dynnet.Path(2)),
		MaxRounds: 100,
		StopWhen:  func(out map[int]any) bool { _, ok := out[0]; return ok },
	}, []Coroutine{decider, forever})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Outputs[0] != "done" {
		t.Fatalf("outputs = %v", res.Outputs)
	}
	if _, ok := res.Outputs[1]; ok {
		t.Fatal("cancelled process should have no output")
	}
}

func TestProcessErrorAborts(t *testing.T) {
	boom := errors.New("boom")
	failing := CoroutineFunc(func(tr *Transport) (any, error) {
		if _, err := tr.SendAndReceive(nil); err != nil {
			return nil, err
		}
		return nil, boom
	})
	quiet := CoroutineFunc(func(tr *Transport) (any, error) {
		for {
			if _, err := tr.SendAndReceive(nil); err != nil {
				return nil, err
			}
		}
	})
	_, err := Run(Config{Schedule: dynnet.NewStatic(dynnet.Path(2)), MaxRounds: 10},
		[]Coroutine{failing, quiet})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
}

func TestBitLimitEnforced(t *testing.T) {
	procs := []Coroutine{echoProc(3), echoProc(3)}
	_, err := Run(Config{
		Schedule:  dynnet.NewStatic(dynnet.Path(2)),
		MaxRounds: 10,
		SizeOf:    func(Message) int { return 64 },
		BitLimit:  32,
	}, procs)
	var ble *BitLimitError
	if !errors.As(err, &ble) {
		t.Fatalf("err = %v, want BitLimitError", err)
	}
	if ble.Bits != 64 || ble.Limit != 32 || ble.Round != 1 {
		t.Fatalf("unexpected BitLimitError: %+v", ble)
	}
}

func TestSizeAccounting(t *testing.T) {
	procs := []Coroutine{echoProc(2), echoProc(2)}
	res, err := Run(Config{
		Schedule:  dynnet.NewStatic(dynnet.Path(2)),
		MaxRounds: 10,
		SizeOf: func(m Message) int {
			return 8 + m.(int) // pid-dependent size
		},
	}, procs)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalMessages != 4 {
		t.Errorf("TotalMessages=%d, want 4", res.TotalMessages)
	}
	if res.TotalBits != 2*(8+0)+2*(8+1) {
		t.Errorf("TotalBits=%d, want 34", res.TotalBits)
	}
	if res.MaxMessageBits != 9 {
		t.Errorf("MaxMessageBits=%d, want 9", res.MaxMessageBits)
	}
}

func TestEarlyTerminationStopsDelivery(t *testing.T) {
	// Process 1 exits after one round; process 0 must stop hearing from it.
	oneRound := CoroutineFunc(func(tr *Transport) (any, error) {
		if _, err := tr.SendAndReceive("bye"); err != nil {
			return nil, err
		}
		return "gone", nil
	})
	counter := CoroutineFunc(func(tr *Transport) (any, error) {
		heard := 0
		for i := 0; i < 3; i++ {
			msgs, err := tr.SendAndReceive("hi")
			if err != nil {
				return nil, err
			}
			heard += len(msgs)
		}
		return heard, nil
	})
	res, err := Run(Config{Schedule: dynnet.NewStatic(dynnet.Path(2)), MaxRounds: 10},
		[]Coroutine{counter, oneRound})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs[0] != 1 {
		t.Fatalf("process 0 heard %v messages, want exactly 1 (round 1 only)", res.Outputs[0])
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() (map[int]any, int) {
		procs := make([]Coroutine, 5)
		for i := range procs {
			procs[i] = echoProc(4)
		}
		res, err := Run(Config{Schedule: dynnet.NewRandomConnected(5, 0.5, 7), MaxRounds: 10}, procs)
		if err != nil {
			t.Fatal(err)
		}
		return res.Outputs, res.Rounds
	}
	out1, r1 := run()
	out2, r2 := run()
	if r1 != r2 || fmt.Sprint(out1) != fmt.Sprint(out2) {
		t.Fatalf("runs differ: %v (%d rounds) vs %v (%d rounds)", out1, r1, out2, r2)
	}
}

func TestTraceObservesEveryRound(t *testing.T) {
	var rounds []int
	var counts []int
	procs := []Coroutine{echoProc(3), echoProc(3), echoProc(3)}
	_, err := Run(Config{
		Schedule:  dynnet.NewStatic(dynnet.Cycle(3)),
		MaxRounds: 10,
		Trace: func(round int, sent []Message) {
			rounds = append(rounds, round)
			counts = append(counts, len(sent))
		},
	}, procs)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(rounds) != "[1 2 3]" {
		t.Fatalf("traced rounds %v", rounds)
	}
	for i, c := range counts {
		if c != 3 {
			t.Fatalf("round %d traced %d messages, want 3", i+1, c)
		}
	}
}

func TestScheduleSizeMismatchFails(t *testing.T) {
	bad := dynnet.NewFunc(2, func(t int) *dynnet.Multigraph {
		if t == 2 {
			return dynnet.Path(3) // wrong size mid-run
		}
		return dynnet.Path(2)
	})
	_, err := Run(Config{Schedule: bad, MaxRounds: 10},
		[]Coroutine{echoProc(5), echoProc(5)})
	if err == nil {
		t.Fatal("expected error for schedule size mismatch")
	}
}

func TestZeroProcesses(t *testing.T) {
	res, err := Run(Config{Schedule: dynnet.NewStatic(dynnet.NewMultigraph(0)), MaxRounds: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 0 || len(res.Outputs) != 0 {
		t.Fatalf("unexpected result %+v", res)
	}
}
