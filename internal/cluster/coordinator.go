package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"anondyn/internal/service"
)

// Config parameterizes NewCoordinator. Zero values select sane defaults.
type Config struct {
	// Backends are the cadnd backend addresses (host:port or http:// base
	// URLs). At least one is required.
	Backends []string
	// Replicas is the length of each spec's failover chain on the hash
	// ring: the primary plus Replicas-1 fallbacks (default 2, capped at
	// the backend count).
	Replicas int
	// VirtualNodes is the number of ring points per backend (default 64).
	VirtualNodes int
	// MaxInFlight bounds the number of concurrently executing jobs across
	// the whole coordinator (default 64).
	MaxInFlight int
	// ProbeInterval is the health-check period (default 2s; negative
	// disables the prober — breakers are then fed by job traffic only).
	ProbeInterval time.Duration
	// BreakerThreshold is the consecutive-failure count that opens a
	// backend's circuit (default 3).
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit rejects traffic before
	// admitting a half-open probe (default 3s).
	BreakerCooldown time.Duration
	// PollInterval is the job status poll period (default 5ms, backing
	// off to 10×).
	PollInterval time.Duration
	// AttemptTimeout bounds one submit-and-wait attempt on one backend
	// (default 2m). Specs with their own watchdog deadline get at least
	// three deadlines, preserving the PR 5 semantics: the backend's
	// watchdog fires first and reports a structured failure; the attempt
	// timeout only catches dead backends.
	AttemptTimeout time.Duration
	// HTTPClient is shared by all backend clients (default: a dedicated
	// client with sensible connection pooling).
	HTTPClient *http.Client
}

func (cfg *Config) withDefaults() {
	if cfg.Replicas <= 0 {
		cfg.Replicas = 2
	}
	if cfg.VirtualNodes <= 0 {
		cfg.VirtualNodes = 64
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 64
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = 2 * time.Second
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = 3
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 3 * time.Second
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 5 * time.Millisecond
	}
	if cfg.AttemptTimeout <= 0 {
		cfg.AttemptTimeout = 2 * time.Minute
	}
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = &http.Client{
			Transport: &http.Transport{
				MaxIdleConns:        256,
				MaxIdleConnsPerHost: 64,
			},
		}
	}
}

// backend pairs one cadnd client with its circuit breaker.
type backend struct {
	name    string
	client  *Client
	breaker *breaker
}

// Metrics aggregates the coordinator's counters (all atomic).
type Metrics struct {
	// JobsRouted counts unique spec executions started (coalesced
	// duplicates excluded).
	JobsRouted atomic.Int64
	// JobsDone / JobsFailed count terminal outcomes of unique executions.
	// A JobsFailed outcome is a deterministic verdict (bad spec or
	// structured watchdog failure), not a transport problem.
	JobsDone   atomic.Int64
	JobsFailed atomic.Int64
	// JobsCoalesced counts submissions served by piggybacking on an
	// identical in-flight spec.
	JobsCoalesced atomic.Int64
	// Attempts counts backend submit-and-wait attempts; Failovers the
	// attempts beyond each job's first (i.e. retries on the next replica).
	Attempts  atomic.Int64
	Failovers atomic.Int64
	// BreakerSkips counts owners bypassed because their circuit was open.
	BreakerSkips atomic.Int64
	// ProbeFailures counts failed health probes.
	ProbeFailures atomic.Int64
}

// MetricsSnapshot is the JSON form of the coordinator's /v1/metrics.
type MetricsSnapshot struct {
	JobsRouted    int64 `json:"jobsRouted"`
	JobsDone      int64 `json:"jobsDone"`
	JobsFailed    int64 `json:"jobsFailed"`
	JobsCoalesced int64 `json:"jobsCoalesced"`
	Attempts      int64 `json:"attempts"`
	Failovers     int64 `json:"failovers"`
	BreakerSkips  int64 `json:"breakerSkips"`
	ProbeFailures int64 `json:"probeFailures"`
}

// Snapshot captures the current counter values.
func (m *Metrics) Snapshot() MetricsSnapshot {
	return MetricsSnapshot{
		JobsRouted:    m.JobsRouted.Load(),
		JobsDone:      m.JobsDone.Load(),
		JobsFailed:    m.JobsFailed.Load(),
		JobsCoalesced: m.JobsCoalesced.Load(),
		Attempts:      m.Attempts.Load(),
		Failovers:     m.Failovers.Load(),
		BreakerSkips:  m.BreakerSkips.Load(),
		ProbeFailures: m.ProbeFailures.Load(),
	}
}

// Outcome is the terminal record of one routed spec: which backend
// answered, after how many attempts, and the job's final status.
type Outcome struct {
	// Hash is the spec's canonical content hash (the routing key).
	Hash string `json:"hash"`
	// Backend is the backend that produced the terminal status.
	Backend string `json:"backend"`
	// Attempts counts submit-and-wait attempts (1 = no failover).
	Attempts int `json:"attempts"`
	// Coalesced marks an outcome shared with an identical in-flight spec
	// rather than executed separately.
	Coalesced bool `json:"coalesced,omitempty"`
	// CacheHit mirrors the backend's cache verdict (memory or store).
	CacheHit bool `json:"cacheHit,omitempty"`
	// LatencyMS is the wall-clock time from routing to terminal status.
	LatencyMS float64 `json:"ms"`
	// Status is the job's terminal status, result included.
	Status service.JobStatus `json:"status"`
}

// flight is one in-progress unique execution; duplicates wait on done.
type flight struct {
	done chan struct{}
	out  Outcome
	err  error
}

// Coordinator shards specs across a fleet of cadnd backends. Create with
// NewCoordinator, release with Close.
type Coordinator struct {
	cfg      Config
	ring     *Ring
	backends map[string]*backend
	sem      chan struct{} // MaxInFlight execution slots
	metrics  Metrics

	flightMu sync.Mutex
	flights  map[string]*flight

	probeStop context.CancelFunc
	probeDone chan struct{}
}

// NewCoordinator validates the config, builds the hash ring, and starts
// the health prober (unless ProbeInterval < 0).
func NewCoordinator(cfg Config) (*Coordinator, error) {
	cfg.withDefaults()
	ring, err := NewRing(cfg.Backends, cfg.VirtualNodes)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		cfg:      cfg,
		ring:     ring,
		backends: make(map[string]*backend, len(cfg.Backends)),
		sem:      make(chan struct{}, cfg.MaxInFlight),
		flights:  make(map[string]*flight),
	}
	for _, name := range cfg.Backends {
		c.backends[name] = &backend{
			name:    name,
			client:  NewClient(name, cfg.HTTPClient),
			breaker: newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
		}
	}
	if cfg.ProbeInterval > 0 {
		ctx, cancel := context.WithCancel(context.Background())
		c.probeStop = cancel
		c.probeDone = make(chan struct{})
		go c.probeLoop(ctx)
	}
	return c, nil
}

// Close stops the health prober. In-flight Run/Sweep calls are unaffected
// (cancel their contexts to stop them).
func (c *Coordinator) Close() {
	if c.probeStop != nil {
		c.probeStop()
		<-c.probeDone
	}
}

// MetricsSnapshot exposes the coordinator's counters.
func (c *Coordinator) MetricsSnapshot() MetricsSnapshot { return c.metrics.Snapshot() }

// probeLoop health-checks every backend each ProbeInterval, feeding the
// circuit breakers: a probe failure counts like a job failure, a success
// closes the circuit so traffic returns without waiting for a half-open
// job to risk itself.
func (c *Coordinator) probeLoop(ctx context.Context) {
	defer close(c.probeDone)
	ticker := time.NewTicker(c.cfg.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		var wg sync.WaitGroup
		for _, b := range c.backends {
			wg.Add(1)
			go func(b *backend) {
				defer wg.Done()
				probeCtx, cancel := context.WithTimeout(ctx, c.cfg.ProbeInterval)
				defer cancel()
				if err := b.client.Healthz(probeCtx); err != nil {
					c.metrics.ProbeFailures.Add(1)
					b.breaker.failure(time.Now(), err)
				} else {
					b.breaker.success()
				}
			}(b)
		}
		wg.Wait()
	}
}

// BackendHealth is one backend's view in the coordinator's /v1/healthz.
type BackendHealth struct {
	// Name is the backend address as configured.
	Name string `json:"name"`
	// BreakerOpen reports whether the circuit currently rejects traffic.
	BreakerOpen bool `json:"breakerOpen"`
	// ConsecutiveFailures and BreakerOpens describe the failure history.
	ConsecutiveFailures int   `json:"consecutiveFailures"`
	BreakerOpens        int64 `json:"breakerOpens"`
	// LastError is the most recent failure, empty while healthy.
	LastError string `json:"lastError,omitempty"`
}

// Health reports every backend's breaker state, in ring construction
// order.
func (c *Coordinator) Health() []BackendHealth {
	now := time.Now()
	out := make([]BackendHealth, 0, len(c.backends))
	for _, name := range c.ring.Backends() {
		b := c.backends[name]
		open, consecutive, opens, lastErr := b.breaker.snapshot(now)
		out = append(out, BackendHealth{
			Name:                name,
			BreakerOpen:         open,
			ConsecutiveFailures: consecutive,
			BreakerOpens:        opens,
			LastError:           lastErr,
		})
	}
	return out
}

// Owners exposes the failover chain the coordinator would use for a spec
// hash (primary first) — for tests and observability.
func (c *Coordinator) Owners(hash string) []string {
	return c.ring.Owners(hash, c.cfg.Replicas)
}

// Run routes one spec: coalesce onto an identical in-flight spec if one
// exists, otherwise execute it on the spec's primary backend with
// failover along the replica chain. The returned Outcome is terminal;
// err is non-nil only when no terminal outcome could be produced (every
// replica failed, the spec was rejected, or ctx expired).
func (c *Coordinator) Run(ctx context.Context, spec service.JobSpec) (Outcome, error) {
	spec.Normalize()
	if err := spec.Validate(); err != nil {
		return Outcome{}, fmt.Errorf("%w: %v", ErrRejected, err)
	}
	hash := spec.Hash()

	c.flightMu.Lock()
	if f, ok := c.flights[hash]; ok {
		c.flightMu.Unlock()
		c.metrics.JobsCoalesced.Add(1)
		select {
		case <-f.done:
			out := f.out
			out.Coalesced = true
			return out, f.err
		case <-ctx.Done():
			return Outcome{}, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	c.flights[hash] = f
	c.flightMu.Unlock()

	f.out, f.err = c.runUnique(ctx, spec, hash)
	c.flightMu.Lock()
	delete(c.flights, hash)
	c.flightMu.Unlock()
	close(f.done)
	return f.out, f.err
}

// runUnique executes one deduplicated spec under the in-flight bound.
func (c *Coordinator) runUnique(ctx context.Context, spec service.JobSpec, hash string) (Outcome, error) {
	select {
	case c.sem <- struct{}{}:
		defer func() { <-c.sem }()
	case <-ctx.Done():
		return Outcome{}, ctx.Err()
	}
	c.metrics.JobsRouted.Add(1)
	start := time.Now()

	owners := c.ring.Owners(hash, c.cfg.Replicas)
	attemptTimeout := c.cfg.AttemptTimeout
	if d := time.Duration(spec.DeadlineMS) * time.Millisecond; d > 0 && attemptTimeout < 3*d {
		attemptTimeout = 3 * d
	}

	attempts := 0
	var lastErr error
	// Two passes over the replica chain: the first respects open
	// breakers; the second (reached only if every owner was skipped or
	// failed) ignores them — a last resort so a fleet that just came back
	// is usable before the next probe closes the circuits.
	for pass := 0; pass < 2; pass++ {
		for _, name := range owners {
			b := c.backends[name]
			if pass == 0 && !b.breaker.allow(time.Now()) {
				c.metrics.BreakerSkips.Add(1)
				continue
			}
			if ctx.Err() != nil {
				return Outcome{}, ctx.Err()
			}
			attempts++
			c.metrics.Attempts.Add(1)
			if attempts > 1 {
				c.metrics.Failovers.Add(1)
			}
			attemptCtx, cancel := context.WithTimeout(ctx, attemptTimeout)
			st, err := b.client.RunJob(attemptCtx, spec, c.cfg.PollInterval)
			cancel()
			switch {
			case err == nil && st.State == service.JobDone:
				b.breaker.success()
				c.metrics.JobsDone.Add(1)
				return Outcome{
					Hash: hash, Backend: name, Attempts: attempts,
					CacheHit: st.CacheHit, LatencyMS: msSince(start), Status: st,
				}, nil
			case err == nil && st.State == service.JobFailed:
				// A structured verdict on the spec (watchdog/derived
				// failure) — deterministic, so a replica would fail the
				// same way. Terminal, not failover material.
				b.breaker.success()
				c.metrics.JobsFailed.Add(1)
				return Outcome{
					Hash: hash, Backend: name, Attempts: attempts,
					LatencyMS: msSince(start), Status: st,
				}, nil
			case errors.Is(err, ErrRejected):
				// Spec-level rejection: deterministic, permanent.
				c.metrics.JobsFailed.Add(1)
				return Outcome{}, err
			case ctx.Err() != nil:
				return Outcome{}, ctx.Err()
			default:
				// Transport failure, lost job, 5xx, attempt timeout, or a
				// cancellation by a dying backend: charge the breaker and
				// fail over to the next replica.
				if err == nil {
					err = fmt.Errorf("cluster: job ended %s on %s", st.State, name)
				}
				lastErr = err
				b.breaker.failure(time.Now(), err)
			}
		}
	}
	c.metrics.JobsFailed.Add(1)
	if lastErr == nil {
		lastErr = fmt.Errorf("cluster: no backend available")
	}
	return Outcome{}, fmt.Errorf("cluster: spec %s failed on all %d replica(s): %w", hash[:12], len(owners), lastErr)
}

// msSince renders a duration since start in milliseconds.
func msSince(start time.Time) float64 {
	return float64(time.Since(start)) / float64(time.Millisecond)
}

// SweepSummary aggregates one Sweep call: counts, failover totals, and
// the latency distribution of the per-job outcomes.
type SweepSummary struct {
	// Jobs is the number of submitted specs; Unique the number actually
	// executed (the rest coalesced onto identical in-flight specs).
	Jobs   int `json:"jobs"`
	Unique int `json:"unique"`
	// Done and Failed partition the terminal outcomes; Errors counts
	// specs with no terminal outcome (all replicas failed / ctx expired).
	Done   int `json:"done"`
	Failed int `json:"failed"`
	Errors int `json:"errors"`
	// CacheHits counts outcomes served from a backend cache tier.
	CacheHits int `json:"cacheHits"`
	// Failovers is the total number of retry attempts across the sweep.
	Failovers int64 `json:"failovers"`
	// ElapsedMS and ThroughputPerSec describe the whole sweep; P50MS,
	// P99MS and MaxMS the per-job latency distribution.
	ElapsedMS        float64 `json:"elapsedMS"`
	ThroughputPerSec float64 `json:"throughputPerSec"`
	P50MS            float64 `json:"p50MS"`
	P99MS            float64 `json:"p99MS"`
	MaxMS            float64 `json:"maxMS"`
}

// Sweep routes every spec concurrently (bounded by MaxInFlight), calling
// onOutcome — serialized, never concurrently — as each spec reaches a
// terminal outcome, and returns the aggregate summary. A spec whose every
// replica fails is reported through onOutcome with an empty Backend and
// counted in Errors; Sweep itself returns an error only for an invalid
// argument or a cancelled context, so one lost spec cannot hide the rest
// of the sweep.
func (c *Coordinator) Sweep(ctx context.Context, specs []service.JobSpec, onOutcome func(Outcome, error)) (SweepSummary, error) {
	start := time.Now()
	failoversBefore := c.metrics.Failovers.Load()

	var (
		emitMu    sync.Mutex
		wg        sync.WaitGroup
		summary   SweepSummary
		latencies = make([]float64, 0, len(specs))
	)
	summary.Jobs = len(specs)
	for i := range specs {
		wg.Add(1)
		go func(spec service.JobSpec) {
			defer wg.Done()
			out, err := c.Run(ctx, spec)
			emitMu.Lock()
			defer emitMu.Unlock()
			switch {
			case err != nil:
				summary.Errors++
			case out.Status.State == service.JobFailed:
				summary.Failed++
			default:
				summary.Done++
			}
			if err == nil {
				if !out.Coalesced {
					summary.Unique++
				}
				if out.CacheHit {
					summary.CacheHits++
				}
				latencies = append(latencies, out.LatencyMS)
			}
			if onOutcome != nil {
				onOutcome(out, err)
			}
		}(specs[i])
	}
	wg.Wait()

	summary.Failovers = c.metrics.Failovers.Load() - failoversBefore
	summary.ElapsedMS = msSince(start)
	if summary.ElapsedMS > 0 {
		summary.ThroughputPerSec = float64(summary.Jobs) / (summary.ElapsedMS / 1000)
	}
	sort.Float64s(latencies)
	summary.P50MS = quantile(latencies, 0.50)
	summary.P99MS = quantile(latencies, 0.99)
	if n := len(latencies); n > 0 {
		summary.MaxMS = latencies[n-1]
	}
	return summary, ctx.Err()
}

// quantile reads the q-quantile (0 ≤ q ≤ 1) from sorted values by the
// nearest-rank method; 0 for an empty slice.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
