package cluster

import (
	"sync"
	"time"
)

// breaker is a per-backend circuit breaker. Consecutive failures at or
// above the threshold open the circuit for a cooldown; after the cooldown
// one probe attempt is allowed through (half-open) and its outcome closes
// or re-opens the circuit. The zero value is not usable; use newBreaker.
//
// The breaker is the single health gate for a backend: the coordinator's
// periodic /v1/healthz probes and the per-job transport outcomes both
// feed it, so a backend found dead by either signal stops receiving jobs
// until a probe (or the half-open trial) succeeds again.
type breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration

	consecutive int
	openUntil   time.Time
	opens       int64
	lastErr     string
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	if threshold < 1 {
		threshold = 1
	}
	if cooldown <= 0 {
		cooldown = 5 * time.Second
	}
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// allow reports whether a request may be sent: true while the circuit is
// closed, or once per cooldown while it is open (the half-open probe).
func (b *breaker) allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.consecutive < b.threshold {
		return true
	}
	if now.Before(b.openUntil) {
		return false
	}
	// Half-open: admit this attempt and push the next admission one
	// cooldown out, so a still-dead backend sees one probe per cooldown
	// rather than a thundering herd.
	b.openUntil = now.Add(b.cooldown)
	return true
}

// success closes the circuit.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecutive = 0
	b.lastErr = ""
}

// failure records a failed request, opening the circuit at the threshold.
func (b *breaker) failure(now time.Time, err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecutive++
	if err != nil {
		b.lastErr = err.Error()
	}
	if b.consecutive == b.threshold {
		b.openUntil = now.Add(b.cooldown)
		b.opens++
	}
}

// snapshot returns the breaker's state for health reporting.
func (b *breaker) snapshot(now time.Time) (open bool, consecutive int, opens int64, lastErr string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.consecutive >= b.threshold && now.Before(b.openUntil), b.consecutive, b.opens, b.lastErr
}
