package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"anondyn/internal/service"
)

// ErrRejected marks a backend response that is a verdict on the spec
// itself (HTTP 400): deterministic, so retrying it on a replica cannot
// help. Every other client error is transport- or capacity-shaped and is
// failover material.
var ErrRejected = errors.New("cluster: spec rejected by backend")

// ErrJobLost marks a job that vanished between submission and its
// terminal poll — the signature of a backend restart. The coordinator
// retries it on the next replica.
var ErrJobLost = errors.New("cluster: job lost by backend")

// Client is a thin HTTP client for one cadnd backend.
type Client struct {
	base string
	http *http.Client
}

// NewClient returns a client for the backend at addr (a host:port or a
// full http:// base URL). The http.Client is shared with the coordinator
// so connection pools are per-fleet, not per-backend.
func NewClient(addr string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	base := addr
	if len(base) < 7 || base[:7] != "http://" {
		base = "http://" + base
	}
	return &Client{base: base, http: hc}
}

// Addr returns the backend's base URL.
func (c *Client) Addr() string { return c.base }

// Healthz probes GET /v1/healthz, returning nil iff the backend answered
// 200 within the context's deadline.
func (c *Client) Healthz(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: healthz status %d", resp.StatusCode)
	}
	return nil
}

// Metrics fetches the backend's /v1/metrics snapshot.
func (c *Client) Metrics(ctx context.Context) (service.MetricsSnapshot, error) {
	var m service.MetricsSnapshot
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/metrics", nil)
	if err != nil {
		return m, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return m, err
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return m, fmt.Errorf("cluster: metrics status %d", resp.StatusCode)
	}
	return m, json.NewDecoder(resp.Body).Decode(&m)
}

// Submit POSTs the spec to /v1/jobs. A 400 is returned as ErrRejected
// (permanent); 5xx and transport errors are retryable.
func (c *Client) Submit(ctx context.Context, spec service.JobSpec) (service.JobStatus, error) {
	var st service.JobStatus
	body, err := json.Marshal(spec)
	if err != nil {
		return st, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return st, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(req)
	if err != nil {
		return st, err
	}
	defer drain(resp)
	switch {
	case resp.StatusCode == http.StatusOK:
		return st, json.NewDecoder(resp.Body).Decode(&st)
	case resp.StatusCode == http.StatusBadRequest:
		return st, fmt.Errorf("%w: %s", ErrRejected, apiErrorText(resp.Body))
	default:
		return st, fmt.Errorf("cluster: submit status %d: %s", resp.StatusCode, apiErrorText(resp.Body))
	}
}

// Status fetches one job's status. An unknown job ID maps to ErrJobLost.
func (c *Client) Status(ctx context.Context, id string) (service.JobStatus, error) {
	var st service.JobStatus
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id, nil)
	if err != nil {
		return st, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return st, err
	}
	defer drain(resp)
	switch resp.StatusCode {
	case http.StatusOK:
		return st, json.NewDecoder(resp.Body).Decode(&st)
	case http.StatusNotFound:
		return st, fmt.Errorf("%w: %s", ErrJobLost, id)
	default:
		return st, fmt.Errorf("cluster: status status %d", resp.StatusCode)
	}
}

// RunJob submits the spec and polls until the job is terminal, with a
// gentle poll backoff (poll → 10×poll). Cache hits return without a
// single poll. The context bounds the whole attempt.
func (c *Client) RunJob(ctx context.Context, spec service.JobSpec, poll time.Duration) (service.JobStatus, error) {
	if poll <= 0 {
		poll = 5 * time.Millisecond
	}
	st, err := c.Submit(ctx, spec)
	if err != nil || st.State.Terminal() {
		return st, err
	}
	interval := poll
	timer := time.NewTimer(interval)
	defer timer.Stop()
	for {
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-timer.C:
		}
		st, err = c.Status(ctx, st.ID)
		if err != nil {
			return st, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		if interval < 10*poll {
			interval += poll
		}
		timer.Reset(interval)
	}
}

// drain discards and closes a response body so the connection is reused.
func drain(resp *http.Response) {
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
}

// apiErrorText extracts the service's JSON error envelope, falling back
// to the raw body.
func apiErrorText(r io.Reader) string {
	b, _ := io.ReadAll(io.LimitReader(r, 4096))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(b, &e) == nil && e.Error != "" {
		return e.Error
	}
	return string(bytes.TrimSpace(b))
}
