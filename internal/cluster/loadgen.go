package cluster

import (
	"math/rand"

	"anondyn/internal/service"
)

// cheapTopologies are the oblivious schedules fast enough for high-volume
// load generation ("isolator", the adaptive worst case, is deliberately
// excluded — one of those dominates a whole soak run).
var cheapTopologies = []string{"random", "path", "cycle", "complete", "star", "rotating-star", "shifting-path", "bottleneck"}

// GenSpecs deterministically generates jobs load-test specs drawn from
// distinct underlying configurations, interleaved so that duplicates of a
// spec arrive both back-to-back (exercising in-flight coalescing) and far
// apart (exercising the cache tiers). The same (jobs, distinct, seed)
// triple always yields the same sequence, so soak results are replayable.
func GenSpecs(jobs, distinct int, seed int64) []service.JobSpec {
	if distinct < 1 {
		distinct = 1
	}
	if distinct > jobs {
		distinct = jobs
	}
	rng := rand.New(rand.NewSource(seed))
	base := make([]service.JobSpec, distinct)
	for i := range base {
		spec := service.JobSpec{
			N:        3 + rng.Intn(4),
			Topology: cheapTopologies[rng.Intn(len(cheapTopologies))],
			Seed:     rng.Int63n(1 << 20),
			Halt:     rng.Intn(2) == 0,
			Batch:    1 + rng.Intn(4),
		}
		if spec.Topology == "random" {
			spec.Density = 0.2 + 0.6*rng.Float64()
		}
		// Distinct slots must actually be distinct specs: the Seed draw
		// above makes hash collisions between slots vanishingly unlikely,
		// but fold the index in anyway so the guarantee is structural.
		spec.Seed = spec.Seed*int64(distinct) + int64(i)
		base[i] = spec
	}
	out := make([]service.JobSpec, jobs)
	for i := range out {
		out[i] = base[rng.Intn(distinct)]
	}
	// Guarantee every distinct spec appears at least once.
	perm := rng.Perm(jobs)
	for i := 0; i < distinct && i < jobs; i++ {
		out[perm[i]] = base[i]
	}
	return out
}
