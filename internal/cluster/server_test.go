package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"anondyn/internal/service"
)

// newClusterServer boots a coordinator + HTTP front end over the given
// backends and registers cleanup.
func newClusterServer(t *testing.T, cfg Config) (*Server, *Coordinator) {
	t.Helper()
	c, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{Coordinator: c})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	return srv, c
}

// TestClusterServerSweepStream pins the coordinator's HTTP surface: a
// sweep streams one NDJSON "job" line per spec plus a final "summary",
// and healthz/metrics report a working fleet.
func TestClusterServerSweepStream(t *testing.T) {
	b1 := newBackend(t, 2, "")
	b2 := newBackend(t, 2, "")
	srv, _ := newClusterServer(t, Config{
		Backends:      []string{b1.Addr(), b2.Addr()},
		ProbeInterval: -1,
	})
	base := "http://" + srv.Addr()

	specs := GenSpecs(40, 10, 2)
	body, _ := json.Marshal(sweepRequest{Specs: specs})
	resp, err := http.Post(base+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}

	jobs, summaries := 0, 0
	var summary SweepSummary
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var ev sweepEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch ev.Type {
		case "job":
			jobs++
			if ev.Err != "" {
				t.Fatalf("job error: %s", ev.Err)
			}
			if ev.Outcome == nil || ev.Outcome.Status.Result == nil ||
				ev.Outcome.Status.Result.N != ev.Outcome.Status.Spec.N {
				t.Fatalf("job outcome wrong: %+v", ev.Outcome)
			}
		case "summary":
			summaries++
			summary = *ev.Summary
		default:
			t.Fatalf("unknown event type %q", ev.Type)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if jobs != 40 || summaries != 1 {
		t.Fatalf("stream had %d job lines and %d summaries, want 40 and 1", jobs, summaries)
	}
	if summary.Jobs != 40 || summary.Done != 40 || summary.Errors != 0 {
		t.Fatalf("summary %+v", summary)
	}

	// Healthz: both circuits closed, so the coordinator reports ok.
	resp, err = http.Get(base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz coordinatorHealth
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hz.Status != "ok" || len(hz.Backends) != 2 {
		t.Fatalf("healthz %+v", hz)
	}

	// Metrics: every job accounted for.
	resp, err = http.Get(base + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if m.JobsDone+m.JobsCoalesced != 40 {
		t.Fatalf("metrics don't cover the sweep: %+v", m)
	}
}

// TestClusterServerSingleJob pins POST /v1/jobs: one spec in, one terminal
// Outcome out; invalid specs map to 400.
func TestClusterServerSingleJob(t *testing.T) {
	b := newBackend(t, 1, "")
	srv, _ := newClusterServer(t, Config{Backends: []string{b.Addr()}, ProbeInterval: -1})
	base := "http://" + srv.Addr()

	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(`{"n":5,"topology":"path"}`))
	if err != nil {
		t.Fatal(err)
	}
	var out Outcome
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || out.Status.Result == nil || out.Status.Result.N != 5 {
		t.Fatalf("status %d outcome %+v", resp.StatusCode, out)
	}

	resp, err = http.Post(base+"/v1/jobs", "application/json", strings.NewReader(`{"n":-1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid spec got status %d, want 400", resp.StatusCode)
	}
}

// TestClusterServerSweepClientDisconnect is the leak regression for the
// sweep stream: a client that vanishes mid-sweep must cancel the whole
// sweep promptly, so Shutdown is not held hostage by an abandoned stream.
func TestClusterServerSweepClientDisconnect(t *testing.T) {
	b := newBackend(t, 1, "")
	c, err := NewCoordinator(Config{Backends: []string{b.Addr()}, ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{Coordinator: c})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	base := "http://" + srv.Addr()

	// One adaptive worst-case job that runs for tens of seconds: no NDJSON
	// line is emitted until it is terminal, so the only way the handler
	// can unwind quickly is request-context cancellation.
	body, _ := json.Marshal(sweepRequest{Specs: []service.JobSpec{{N: 40, Topology: "isolator"}}})
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/sweep", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status %d", resp.StatusCode)
	}
	time.Sleep(100 * time.Millisecond) // let the sweep reach the backend
	cancel()
	resp.Body.Close()

	// With the client gone the handler must exit, so a bounded Shutdown
	// succeeds long before the abandoned job would have finished.
	shutdownCtx, shutdownCancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer shutdownCancel()
	start := time.Now()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		t.Fatalf("shutdown blocked by abandoned sweep: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("shutdown took %s, handler did not unwind promptly", elapsed)
	}
	// The backend is torn down hard by newBackend's cleanup (Close), which
	// also cancels the orphaned isolator job.
}
