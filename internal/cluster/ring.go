// Package cluster is the distribution tier over cmd/cadnd backends: a
// coordinator that shards simulation specs across a fleet of daemons by
// their canonical content hash (consistent hashing with replicated
// virtual nodes), health-checks the backends, fails jobs over to the next
// replica behind a per-backend circuit breaker, and streams aggregated
// sweep progress as NDJSON.
//
// The correctness contract is *exactly-once per spec*: specs are
// content-addressed (service.JobSpec.Hash) and simulations are
// deterministic in their spec, so routing a spec by its hash to one
// primary backend concentrates each spec's cache entry in one place;
// duplicates within a sweep coalesce onto a single in-flight execution;
// and a retry after a backend failure re-executes at most what the dead
// backend had not finished — every submitted job yields exactly one
// terminal outcome, and every distinct spec is simulated at most once per
// fleet lifetime (the persistent store extends "lifetime" across
// restarts).
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring is a consistent-hash ring over backend names with replicated
// virtual nodes, mapping a spec hash to an ordered preference list of
// distinct backends. It is immutable after construction and therefore
// safe for concurrent use; membership changes build a new Ring (which
// remaps only the keys owned by the departed/arrived backends — the
// consistent-hashing property pinned by TestRingRemapMinimality).
type Ring struct {
	points []ringPoint // sorted by hash
	names  []string
}

type ringPoint struct {
	hash  uint64
	owner int // index into names
}

// hash64 hashes a string position onto the ring: FNV-1a for the string
// walk, then a splitmix64 finalizer. The finalizer matters — raw FNV of
// near-identical strings ("host:port#0", "host:port#1", …) clumps on the
// ring badly enough to skew a 3-backend split to 48/15/37.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// NewRing builds a ring with vnodes virtual nodes per backend (64 is a
// good default: each backend's share lands within a few points of 1/n
// across a handful of backends). Backend names must be unique and
// non-empty.
func NewRing(backends []string, vnodes int) (*Ring, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one backend")
	}
	if vnodes < 1 {
		vnodes = 1
	}
	seen := make(map[string]bool, len(backends))
	r := &Ring{
		points: make([]ringPoint, 0, len(backends)*vnodes),
		names:  append([]string(nil), backends...),
	}
	for i, name := range backends {
		if name == "" || seen[name] {
			return nil, fmt.Errorf("cluster: duplicate or empty backend name %q", name)
		}
		seen[name] = true
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:  hash64(fmt.Sprintf("%s#%d", name, v)),
				owner: i,
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Tie-break vnode hash collisions deterministically by owner.
		return r.points[a].owner < r.points[b].owner
	})
	return r, nil
}

// Owners returns up to n distinct backends for the key, in ring order
// starting at the key's successor point: the first entry is the primary,
// the rest are the failover replicas. n > len(backends) returns them all.
func (r *Ring) Owners(key string, n int) []string {
	if n > len(r.names) {
		n = len(r.names)
	}
	if n <= 0 {
		return nil
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	owners := make([]string, 0, n)
	seen := make(map[int]bool, n)
	for i := 0; i < len(r.points) && len(owners) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.owner] {
			seen[p.owner] = true
			owners = append(owners, r.names[p.owner])
		}
	}
	return owners
}

// Backends returns the ring's member names in construction order.
func (r *Ring) Backends() []string { return append([]string(nil), r.names...) }
