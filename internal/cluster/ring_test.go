package cluster

import (
	"fmt"
	"testing"
)

// TestRingOwnersDistinctAndDeterministic pins the basic contract: Owners
// returns n distinct backends, stably across calls and across rings built
// from the same membership.
func TestRingOwnersDistinctAndDeterministic(t *testing.T) {
	names := []string{"a:1", "b:1", "c:1", "d:1"}
	r1, err := NewRing(names, 64)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRing(names, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("spec-%d", i)
		owners := r1.Owners(key, 3)
		if len(owners) != 3 {
			t.Fatalf("key %q: %d owners, want 3", key, len(owners))
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("key %q: duplicate owner %q in %v", key, o, owners)
			}
			seen[o] = true
		}
		if again := r2.Owners(key, 3); fmt.Sprint(again) != fmt.Sprint(owners) {
			t.Fatalf("key %q: rings disagree: %v vs %v", key, owners, again)
		}
	}
	if got := r1.Owners("k", 99); len(got) != len(names) {
		t.Fatalf("n>len(backends) returned %d owners, want %d", len(got), len(names))
	}

	if _, err := NewRing(nil, 64); err == nil {
		t.Fatal("empty membership accepted")
	}
	if _, err := NewRing([]string{"a", "a"}, 64); err == nil {
		t.Fatal("duplicate membership accepted")
	}
}

// TestRingBalance checks that 64 virtual nodes spread 10k keys across a
// 3-backend ring without gross imbalance.
func TestRingBalance(t *testing.T) {
	r, err := NewRing([]string{"a:1", "b:1", "c:1"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const keys = 10000
	for i := 0; i < keys; i++ {
		counts[r.Owners(fmt.Sprintf("spec-%d", i), 1)[0]]++
	}
	for name, n := range counts {
		frac := float64(n) / keys
		if frac < 0.15 || frac > 0.55 {
			t.Fatalf("backend %s owns %.1f%% of keys (counts %v)", name, 100*frac, counts)
		}
	}
}

// TestRingRemapMinimality is the consistent-hashing property: adding a
// backend only moves keys onto the newcomer — no key changes hands
// between surviving backends.
func TestRingRemapMinimality(t *testing.T) {
	before, err := NewRing([]string{"a:1", "b:1", "c:1"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	after, err := NewRing([]string{"a:1", "b:1", "c:1", "d:1"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	const keys = 5000
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("spec-%d", i)
		oldOwner := before.Owners(key, 1)[0]
		newOwner := after.Owners(key, 1)[0]
		if newOwner == oldOwner {
			continue
		}
		if newOwner != "d:1" {
			t.Fatalf("key %q moved %s -> %s instead of to the new backend", key, oldOwner, newOwner)
		}
		moved++
	}
	// Expect roughly 1/4 of keys to move; far fewer means the new backend
	// is underweighted, far more means the remap is not minimal.
	if moved < keys/8 || moved > keys/2 {
		t.Fatalf("%d/%d keys moved to the new backend, want ~1/4", moved, keys)
	}
}
