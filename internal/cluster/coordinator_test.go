package cluster

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"anondyn/internal/service"
)

// newBackend boots one in-process cadnd backend and registers cleanup.
func newBackend(t *testing.T, workers int, storeDir string) *service.Server {
	t.Helper()
	srv, err := service.NewServer(service.ServerConfig{
		Workers:   workers,
		CacheSize: 64,
		QueueSize: 256,
		StoreDir:  storeDir,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	t.Cleanup(func() { _ = srv.Close() })
	return srv
}

// deadAddr reserves an address nothing listens on: connections to it are
// refused immediately, which is the fastest way to simulate a dead node.
func deadAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// specsWithPrimary scans seeds for k distinct specs whose ring primary is
// the given backend, so failover paths can be exercised deterministically.
func specsWithPrimary(t *testing.T, c *Coordinator, primary string, k int) []service.JobSpec {
	t.Helper()
	out := make([]service.JobSpec, 0, k)
	for seed := int64(0); seed < 65536 && len(out) < k; seed++ {
		spec := service.JobSpec{N: 5, Topology: "cycle", Seed: seed}
		spec.Normalize()
		if c.Owners(spec.Hash())[0] == primary {
			out = append(out, spec)
		}
	}
	if len(out) < k {
		t.Fatalf("found only %d/%d specs with primary %s", len(out), k, primary)
	}
	return out
}

// TestCoordinatorFailover pins the retry path: a spec whose primary is
// dead lands on the next replica, counted as exactly one failover, and
// still produces the correct count.
func TestCoordinatorFailover(t *testing.T) {
	dead := deadAddr(t)
	live := newBackend(t, 2, "")
	c, err := NewCoordinator(Config{
		Backends:      []string{dead, live.Addr()},
		Replicas:      2,
		ProbeInterval: -1, // traffic-driven breakers only: keeps counters exact
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	spec := specsWithPrimary(t, c, dead, 1)[0]
	out, err := c.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if out.Backend != live.Addr() || out.Attempts != 2 {
		t.Fatalf("outcome backend=%s attempts=%d, want live backend after 2 attempts", out.Backend, out.Attempts)
	}
	if out.Status.Result == nil || out.Status.Result.N != 5 {
		t.Fatalf("failover lost the result: %+v", out.Status)
	}
	m := c.MetricsSnapshot()
	if m.Failovers != 1 || m.JobsDone != 1 || m.Attempts != 2 {
		t.Fatalf("metrics after failover: %+v", m)
	}
}

// TestCoordinatorBreakerShortCircuits pins the circuit breaker: once the
// dead primary has burned through its failure threshold, later specs skip
// it without paying the connection timeout.
func TestCoordinatorBreakerShortCircuits(t *testing.T) {
	dead := deadAddr(t)
	live := newBackend(t, 2, "")
	c, err := NewCoordinator(Config{
		Backends:         []string{dead, live.Addr()},
		Replicas:         2,
		ProbeInterval:    -1,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Minute, // no half-open probes during the test
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	specs := specsWithPrimary(t, c, dead, 3)

	// Two distinct dead-primary specs open the circuit...
	for _, spec := range specs[:2] {
		if _, err := c.Run(context.Background(), spec); err != nil {
			t.Fatal(err)
		}
	}
	if skips := c.metrics.BreakerSkips.Load(); skips != 0 {
		t.Fatalf("breaker skipped %d attempts before opening", skips)
	}

	// ...so a third one goes straight to the replica in a single attempt.
	before := c.metrics.Attempts.Load()
	out, err := c.Run(context.Background(), specs[2])
	if err != nil {
		t.Fatal(err)
	}
	if got := c.metrics.Attempts.Load() - before; got != 1 {
		t.Fatalf("open breaker still attempted the dead primary: %d attempts", got)
	}
	if out.Attempts != 1 || out.Backend != live.Addr() {
		t.Fatalf("outcome %+v, want single-attempt success on live backend", out)
	}
	if skips := c.metrics.BreakerSkips.Load(); skips == 0 {
		t.Fatal("no breaker skips recorded")
	}

	health := c.Health()
	var deadHealth *BackendHealth
	for i := range health {
		if health[i].Name == dead {
			deadHealth = &health[i]
		}
	}
	if deadHealth == nil || !deadHealth.BreakerOpen || deadHealth.BreakerOpens != 1 {
		t.Fatalf("health misreports the dead backend: %+v", health)
	}
}

// TestCoordinatorCoalescesDuplicates pins exactly-once within a burst:
// eight concurrent submissions of one spec produce exactly one execution;
// every other outcome is either coalesced onto it or a cache hit.
func TestCoordinatorCoalescesDuplicates(t *testing.T) {
	live := newBackend(t, 2, "")
	c, err := NewCoordinator(Config{Backends: []string{live.Addr()}, ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	spec := service.JobSpec{N: 6, Topology: "star", Seed: 7}
	const burst = 8
	outs := make([]Outcome, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out, err := c.Run(context.Background(), spec)
			if err != nil {
				t.Errorf("run %d: %v", i, err)
				return
			}
			outs[i] = out
		}(i)
	}
	wg.Wait()
	computed := 0
	for i, out := range outs {
		if out.Status.Result == nil || out.Status.Result.N != 6 {
			t.Fatalf("run %d: wrong result %+v", i, out.Status)
		}
		if !out.Coalesced && !out.CacheHit {
			computed++
		}
	}
	if computed != 1 {
		t.Fatalf("%d submissions computed fresh, want exactly 1", computed)
	}
}

// TestCoordinatorRejectsInvalidSpec pins the permanent-failure path: a
// spec the fleet can never run fails fast with ErrRejected, no retries.
func TestCoordinatorRejectsInvalidSpec(t *testing.T) {
	live := newBackend(t, 1, "")
	c, err := NewCoordinator(Config{Backends: []string{live.Addr()}, ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Run(context.Background(), service.JobSpec{N: -3})
	if err == nil {
		t.Fatal("invalid spec accepted")
	}
	if m := c.MetricsSnapshot(); m.Attempts != 0 {
		t.Fatalf("invalid spec reached a backend: %+v", m)
	}
}

// TestSweepSummary pins the aggregate view: a duplicate-heavy sweep
// completes every job with correct counts and a consistent summary.
func TestSweepSummary(t *testing.T) {
	b1 := newBackend(t, 2, "")
	b2 := newBackend(t, 2, "")
	c, err := NewCoordinator(Config{
		Backends:      []string{b1.Addr(), b2.Addr()},
		ProbeInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	specs := GenSpecs(60, 12, 1)
	var mu sync.Mutex
	got := 0
	summary, err := c.Sweep(context.Background(), specs, func(out Outcome, err error) {
		mu.Lock()
		defer mu.Unlock()
		got++
		if err != nil {
			t.Errorf("outcome error: %v", err)
			return
		}
		if out.Status.Result == nil || out.Status.Result.N != out.Status.Spec.N {
			t.Errorf("wrong count: %+v", out.Status)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 60 {
		t.Fatalf("%d outcomes emitted, want 60", got)
	}
	if summary.Jobs != 60 || summary.Done != 60 || summary.Failed != 0 || summary.Errors != 0 {
		t.Fatalf("summary %+v", summary)
	}
	if summary.Unique < 12 || summary.Unique+summary.CacheHits+int(c.metrics.JobsCoalesced.Load()) < 60 {
		t.Fatalf("dedup accounting inconsistent: %+v coalesced=%d", summary, c.metrics.JobsCoalesced.Load())
	}
	if summary.P99MS < summary.P50MS || summary.MaxMS < summary.P99MS {
		t.Fatalf("latency quantiles out of order: %+v", summary)
	}
}
