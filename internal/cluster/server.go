package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"time"

	"anondyn/internal/service"
)

// ServerConfig configures the coordinator's HTTP front end.
type ServerConfig struct {
	// Addr is the listen address (default "127.0.0.1:0").
	Addr string
	// Coordinator is the routing core; required.
	Coordinator *Coordinator
}

// Server is the coordinator's HTTP surface. It mirrors the backend API
// shape where that makes sense (healthz, metrics) and adds the fleet
// entry points: single-job routing and streaming sweeps.
//
//	POST /v1/jobs    route one spec, respond with its terminal Outcome
//	POST /v1/sweep   route many specs, stream NDJSON progress + summary
//	GET  /v1/healthz coordinator + per-backend breaker health
//	GET  /v1/metrics coordinator counters
type Server struct {
	coord *Coordinator
	ln    net.Listener
	http  *http.Server
	errCh chan error
}

// NewServer binds the listen socket and wires the routes; call Start or
// Serve to begin serving.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Coordinator == nil {
		return nil, fmt.Errorf("cluster: ServerConfig.Coordinator is required")
	}
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		coord: cfg.Coordinator,
		ln:    ln,
		errCh: make(chan error, 1),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleJob)
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	s.http = &http.Server{Handler: mux}
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Serve blocks serving HTTP until Shutdown or Close.
func (s *Server) Serve() error {
	err := s.http.Serve(s.ln)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Start serves in a background goroutine; the error surfaces in Shutdown.
func (s *Server) Start() {
	go func() { s.errCh <- s.Serve() }()
}

// Shutdown stops accepting connections, waits for in-flight handlers
// within ctx, and stops the coordinator's health prober.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.http.Shutdown(ctx)
	s.coord.Close()
	select {
	case serveErr := <-s.errCh:
		if err == nil {
			err = serveErr
		}
	default:
	}
	return err
}

// writeJSON / writeError mirror the backend server's envelope so clients
// can share decoding code across tiers.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

type apiError struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

// handleJob routes one spec through the coordinator and responds with its
// terminal Outcome. Spec rejections map to 400; a spec that failed on
// every replica maps to 502.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	var spec service.JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "decode job spec: %v", err)
		return
	}
	out, err := s.coord.Run(r.Context(), spec)
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, out)
	case errors.Is(err, ErrRejected):
		writeError(w, http.StatusBadRequest, "%v", err)
	case r.Context().Err() != nil:
		// Client is gone; nothing useful to write.
	default:
		writeError(w, http.StatusBadGateway, "%v", err)
	}
}

// sweepRequest is the body of POST /v1/sweep.
type sweepRequest struct {
	// Specs are the jobs to route; duplicates coalesce.
	Specs []service.JobSpec `json:"specs"`
}

// sweepEvent is one NDJSON line of the sweep stream: a "job" line per
// terminal outcome (Err set instead of Outcome when every replica
// failed), then a single "summary" line.
type sweepEvent struct {
	Type    string        `json:"type"`
	Outcome *Outcome      `json:"outcome,omitempty"`
	Err     string        `json:"error,omitempty"`
	Summary *SweepSummary `json:"summary,omitempty"`
}

// handleSweep routes every spec in the request and streams progress as
// NDJSON. The stream terminates promptly when the client disconnects:
// the request context cancels the whole sweep, and a failed write or
// flush (the proxy-buffering backstop) does the same.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req sweepRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decode sweep request: %v", err)
		return
	}
	if len(req.Specs) == 0 {
		writeError(w, http.StatusBadRequest, "sweep needs at least one spec")
		return
	}
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	rc := http.NewResponseController(w)
	writeLine := func(v any) {
		if err := enc.Encode(v); err != nil {
			cancel()
			return
		}
		if err := rc.Flush(); err != nil && !errors.Is(err, http.ErrNotSupported) {
			cancel()
		}
	}

	summary, err := s.coord.Sweep(ctx, req.Specs, func(out Outcome, err error) {
		ev := sweepEvent{Type: "job"}
		if err != nil {
			ev.Err = err.Error()
		} else {
			ev.Outcome = &out
		}
		writeLine(ev)
	})
	ev := sweepEvent{Type: "summary", Summary: &summary}
	if err != nil {
		ev.Err = err.Error()
	}
	writeLine(ev)
}

// coordinatorHealth is the JSON body of the coordinator's GET /v1/healthz.
type coordinatorHealth struct {
	// Status is "ok" when at least one backend circuit is closed,
	// "degraded" otherwise — load balancers should keep routing to a
	// degraded coordinator (it still retries half-open probes) but page.
	Status string `json:"status"`
	// Backends lists every backend's breaker state.
	Backends []BackendHealth `json:"backends"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	backends := s.coord.Health()
	status := "degraded"
	for _, b := range backends {
		if !b.BreakerOpen {
			status = "ok"
			break
		}
	}
	writeJSON(w, http.StatusOK, coordinatorHealth{Status: status, Backends: backends})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.coord.MetricsSnapshot())
}

// WaitHealthy polls the coordinator's backends until at least want of
// them answer healthz, or the timeout lapses — a convenience for boot
// scripts and tests that need the fleet up before sweeping.
func (c *Coordinator) WaitHealthy(ctx context.Context, want int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		healthy := 0
		for _, b := range c.backends {
			probeCtx, cancel := context.WithTimeout(ctx, time.Second)
			if b.client.Healthz(probeCtx) == nil {
				healthy++
				b.breaker.success()
			}
			cancel()
		}
		if healthy >= want {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("cluster: only %d/%d backends healthy after %s", healthy, want, timeout)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(50 * time.Millisecond):
		}
	}
}
