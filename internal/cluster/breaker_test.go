package cluster

import (
	"errors"
	"testing"
	"time"
)

// TestBreakerLifecycle walks the circuit through closed → open →
// half-open → closed with a synthetic clock.
func TestBreakerLifecycle(t *testing.T) {
	t0 := time.Unix(1000, 0)
	b := newBreaker(3, time.Second)
	boom := errors.New("boom")

	for i := 0; i < 2; i++ {
		if !b.allow(t0) {
			t.Fatalf("closed circuit rejected request after %d failures", i)
		}
		b.failure(t0, boom)
	}
	b.failure(t0, boom) // third consecutive failure: opens
	if b.allow(t0) {
		t.Fatal("open circuit admitted a request inside the cooldown")
	}
	if open, consecutive, opens, lastErr := b.snapshot(t0); !open || consecutive != 3 || opens != 1 || lastErr != "boom" {
		t.Fatalf("snapshot after open: open=%v consecutive=%d opens=%d lastErr=%q", open, consecutive, opens, lastErr)
	}

	// After the cooldown, exactly one half-open probe per cooldown window.
	t1 := t0.Add(time.Second)
	if !b.allow(t1) {
		t.Fatal("half-open probe rejected after cooldown")
	}
	if b.allow(t1.Add(time.Millisecond)) {
		t.Fatal("second probe admitted inside the same half-open window")
	}

	// Probe failure re-opens; probe success closes fully.
	b.failure(t1, boom)
	if b.allow(t1.Add(500 * time.Millisecond)) {
		t.Fatal("circuit admitted traffic right after a failed half-open probe")
	}
	b.success()
	if !b.allow(t1) || !b.allow(t1) {
		t.Fatal("closed circuit throttled traffic after success")
	}
	if open, consecutive, _, lastErr := b.snapshot(t1); open || consecutive != 0 || lastErr != "" {
		t.Fatalf("snapshot after close: open=%v consecutive=%d lastErr=%q", open, consecutive, lastErr)
	}
}
