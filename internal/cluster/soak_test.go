package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"anondyn/internal/service"
)

// TestClusterSoak is the E16 acceptance run: a 3-backend fleet under a
// 1000-job sweep (250 distinct specs) with one backend killed mid-sweep.
// Every job must reach exactly one terminal outcome with the correct
// count, the fleet must visibly reroute around the corpse, and a backend
// restarted over the dead node's store directory must serve its results
// from the persistent store with zero recomputation.
//
// The summary numbers recorded by this test (throughput, p50/p99, cache
// hit rate, failovers) are the source of EXPERIMENTS.md's E16 table.
func TestClusterSoak(t *testing.T) {
	const (
		jobs     = 1000
		distinct = 250
		killAt   = 100 // outcomes observed before the kill
	)
	dirs := []string{t.TempDir(), t.TempDir(), t.TempDir()}
	backends := make([]*service.Server, 3)
	for i := range backends {
		backends[i] = newBackend(t, 4, dirs[i])
	}
	c, err := NewCoordinator(Config{
		Backends:         []string{backends[0].Addr(), backends[1].Addr(), backends[2].Addr()},
		Replicas:         2,
		MaxInFlight:      64,
		ProbeInterval:    100 * time.Millisecond,
		BreakerThreshold: 3,
		BreakerCooldown:  500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.WaitHealthy(context.Background(), 3, 10*time.Second); err != nil {
		t.Fatal(err)
	}

	victim := backends[0].Addr()
	specs := GenSpecs(jobs, distinct, 42)

	// Expected outcome multiplicity per spec hash: exactly-once per job
	// means the sweep's outcome stream reproduces this multiset.
	want := make(map[string]int, distinct)
	for _, spec := range specs {
		s := spec
		s.Normalize()
		want[s.Hash()]++
	}
	if len(want) != distinct {
		t.Fatalf("load generator produced %d distinct specs, want %d", len(want), distinct)
	}

	var (
		mu          sync.Mutex
		outcomes    int
		got         = make(map[string]int, distinct) // outcomes per spec hash
		computedOn0 []service.JobSpec                // fresh computations the victim served pre-kill
		killOnce    sync.Once
		killCh      = make(chan struct{})
	)
	// Kill the victim from outside the sweep's callback path once enough
	// of the sweep has flowed to prove the fleet was healthy first.
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		<-killCh
		_ = backends[0].Close()
		t.Log("killed backend 0 mid-sweep")
	}()

	summary, err := c.Sweep(context.Background(), specs, func(out Outcome, err error) {
		mu.Lock()
		defer mu.Unlock()
		outcomes++
		if err != nil {
			t.Errorf("outcome %d: %v", outcomes, err)
			return
		}
		got[out.Hash]++
		if out.Status.Result == nil || out.Status.Result.N != out.Status.Spec.N {
			t.Errorf("wrong count for %s: %+v", out.Hash[:12], out.Status)
		}
		if out.Backend == victim && !out.Coalesced && !out.CacheHit {
			computedOn0 = append(computedOn0, out.Status.Spec)
		}
		if outcomes == killAt {
			killOnce.Do(func() { close(killCh) })
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	killOnce.Do(func() { close(killCh) }) // tiny sweeps: still exercise teardown
	<-killed

	// Exactly-once per submitted job: 1000 callbacks, and per spec hash
	// exactly as many outcomes as submissions — none dropped, none doubled.
	if outcomes != jobs {
		t.Fatalf("%d outcomes for %d jobs", outcomes, jobs)
	}
	for hash, n := range want {
		if got[hash] != n {
			t.Fatalf("spec %s: %d outcomes for %d submissions", hash[:12], got[hash], n)
		}
	}
	if summary.Jobs != jobs || summary.Done != jobs || summary.Failed != 0 || summary.Errors != 0 {
		t.Fatalf("summary %+v, want all %d done", summary, jobs)
	}
	// Dedup really engaged: at most one fresh computation per distinct
	// spec per surviving cache, so the vast majority of jobs were served
	// by coalescing or a cache tier.
	m := c.MetricsSnapshot()
	if fresh := jobs - summary.CacheHits - int(m.JobsCoalesced); fresh > 2*distinct {
		t.Fatalf("%d fresh computations for %d distinct specs", fresh, distinct)
	}
	// The fleet visibly rerouted around the corpse: failed-over attempts
	// or breaker-gated skips (the prober usually opens the circuit within
	// ~300ms, so most post-kill traffic is skipped, not failed over).
	if m.Failovers == 0 && m.BreakerSkips == 0 {
		t.Fatalf("backend kill left no trace in the metrics: %+v", m)
	}
	t.Logf("soak summary: %+v", summary)
	t.Logf("coordinator metrics: %+v", m)

	// Restart verification: a fresh backend over the victim's store dir
	// serves the victim's pre-kill computations from the persistent store
	// — cache hit, zero rounds simulated.
	if len(computedOn0) == 0 {
		t.Fatalf("victim computed nothing before the kill; lower killAt")
	}
	reborn := newBackend(t, 2, dirs[0])
	base := "http://" + reborn.Addr()
	body, _ := json.Marshal(computedOn0[0])
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	var st service.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !st.CacheHit || st.Result == nil || st.Result.N != computedOn0[0].N {
		t.Fatalf("restarted backend lost the persisted result: %+v", st)
	}
	resp, err = http.Get(base + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var metrics service.MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&metrics); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if metrics.StoreHits != 1 || metrics.RoundsSimulated != 0 {
		t.Fatalf("restart hit recomputed: storeHits=%d roundsSimulated=%d, want 1 and 0",
			metrics.StoreHits, metrics.RoundsSimulated)
	}
	t.Logf("restart verification: storeHits=%d, recomputed rounds=%d", metrics.StoreHits, metrics.RoundsSimulated)
}
