// Package check provides a live invariant checker for counting runs. A
// Checker attaches to a run through the existing core.Config.Recorder
// hook (as the recorder's observer) and validates, while the run is in
// flight, the reset monotonicity of Section 4 (Lemma 4.7: diameter
// estimates strictly double and stay ≤ 4n, resets stay logarithmic) and,
// post-hoc via Verify, the history-tree well-formedness invariants of the
// full arXiv version: every completed level's temporary IDs partition the
// process set, child classes refine parent classes, and the VHT's
// red-edge balance equations hold against the ground-truth cardinalities
// (Lemma 4.4). Verify also compares the run's answer against ground
// truth computed directly from the inputs, so a checker-guarded run is a
// complete end-to-end oracle: attach, run, Verify.
//
// Checkers never alter protocol behaviour: they observe the same
// instrumentation stream tests already rely on.
package check

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"anondyn/internal/core"
	"anondyn/internal/historytree"
)

// Checker validates protocol invariants live (as recorder events arrive)
// and post-hoc (Verify). It is safe for concurrent use; processes under
// the concurrent scheduler report events from their own goroutines.
type Checker struct {
	n      int
	inputs []historytree.Input
	rec    *core.Recorder

	mu         sync.Mutex
	lastDiam   int
	lastBegin  int
	resets     int
	violations []string
}

// New builds a checker for a run over the given inputs (ground truth).
func New(inputs []historytree.Input) *Checker {
	return &Checker{n: len(inputs), inputs: append([]historytree.Input(nil), inputs...)}
}

// Attach wires the checker into a run configuration: it installs a fresh
// recorder (owned by the checker) with the checker as its live observer.
// Attach must be called before the run starts and replaces any recorder
// already present in cfg.
func (c *Checker) Attach(cfg *core.Config) {
	c.rec = core.NewRecorder()
	c.rec.SetObserver(c)
	cfg.Recorder = c.rec
}

// Recorder returns the recorder installed by Attach (nil before).
func (c *Checker) Recorder() *core.Recorder { return c.rec }

func (c *Checker) violatef(format string, args ...any) {
	c.violations = append(c.violations, fmt.Sprintf(format, args...))
}

// maxResets is the Lemma 4.7 budget used by the live reset check: the
// estimate starts at 1 and doubles per reset, so it can double at most
// log₂(4n) times before exceeding 4n (+1 slack, matching the test suite).
func maxResets(n int) int {
	m := 0
	for v := 4 * n; v > 1; v >>= 1 {
		m++
	}
	return m + 1
}

// ObserveReset implements core.RecorderObserver: estimates must strictly
// double, stay ≤ 4n, and fire at most logarithmically often.
func (c *Checker) ObserveReset(newDiam int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.resets++
	if newDiam < 2 {
		c.violatef("reset %d announced diameter estimate %d < 2", c.resets, newDiam)
	}
	if c.lastDiam > 0 && newDiam != 2*c.lastDiam {
		c.violatef("reset %d raised the estimate %d → %d, want exact doubling",
			c.resets, c.lastDiam, newDiam)
	}
	if newDiam > 4*c.n {
		c.violatef("reset %d raised the estimate to %d > 4n = %d (Lemma 4.7)",
			c.resets, newDiam, 4*c.n)
	}
	if c.resets > maxResets(c.n) {
		c.violatef("%d resets exceed the Lemma 4.7 budget %d", c.resets, maxResets(c.n))
	}
	c.lastDiam = newDiam
}

// ObserveBeginRound implements core.RecorderObserver: level begin rounds
// are recorded by a single process and real rounds only move forward.
func (c *Checker) ObserveBeginRound(round int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if round < 1 {
		c.violatef("level begin recorded at round %d < 1", round)
	}
	if round < c.lastBegin {
		c.violatef("level begin rounds went backwards: %d after %d", round, c.lastBegin)
	}
	c.lastBegin = round
}

// ObserveLevelDone implements core.RecorderObserver: completions must
// reference a real process and a plausible level/ID.
func (c *Checker) ObserveLevelDone(level, pid, id int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if pid < 0 || pid >= c.n {
		c.violatef("level %d completed by out-of-range process %d", level, pid)
	}
	if level < 0 {
		c.violatef("process %d completed negative level %d", pid, level)
	}
	if id < 0 {
		c.violatef("process %d completed level %d with negative ID %d", pid, level, id)
	}
}

// Err returns the violations accumulated by the live checks so far, or
// nil. It may be called mid-run.
func (c *Checker) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.violations) == 0 {
		return nil
	}
	return fmt.Errorf("check: %d invariant violation(s):\n  %s",
		len(c.violations), strings.Join(c.violations, "\n  "))
}

// Verify runs the post-hoc invariants against a completed run: live
// violations, history-tree well-formedness (levels partition the process
// set, children refine parents, red-edge balance against ground-truth
// cardinalities — Lemma 4.4), and answer-vs-ground-truth. The checker
// must have been Attached to the run's Config.
func (c *Checker) Verify(res *core.RunResult) error {
	if err := c.Err(); err != nil {
		return err
	}
	if c.rec == nil {
		return errors.New("check: Verify called on a checker that was never Attached")
	}
	if res == nil {
		return errors.New("check: nil RunResult")
	}
	if err := c.verifyAnswer(res); err != nil {
		return err
	}
	// Processes that terminated via a Halt broadcast mid-level report no
	// tree; without a VHT there is no structure to verify.
	if res.VHT == nil {
		return nil
	}
	if err := res.VHT.Validate(); err != nil {
		return fmt.Errorf("check: VHT malformed: %w", err)
	}
	return c.verifyLevels(res)
}

// VerifyAnswer compares a completed run's answer (count, multiset, or
// leaderless frequencies) against ground truth computed directly from the
// inputs, without requiring an attached recorder. It is the answer-only
// subset of Verify for backends that do not emit recorder events — the
// linear protocol in particular — and is what the cross-protocol
// differential suite uses as its oracle on linear runs.
func VerifyAnswer(inputs []historytree.Input, res *core.RunResult) error {
	if res == nil {
		return errors.New("check: nil RunResult")
	}
	return New(inputs).verifyAnswer(res)
}

// verifyAnswer compares the run's output with ground truth computed
// directly from the inputs.
func (c *Checker) verifyAnswer(res *core.RunResult) error {
	if res.Frequencies != nil {
		return c.verifyFrequencies(res.Frequencies)
	}
	if res.N != c.n {
		return fmt.Errorf("check: counted %d processes, ground truth is %d", res.N, c.n)
	}
	if res.Multiset != nil {
		// Zero-count classes are ignored on both sides: basic mode reports
		// the pre-agreed {leader, non-leader} partition even when one class
		// is empty (n = 1), and an empty class does not change the multiset.
		want := c.groundTruthMultiset()
		got := 0
		for in, cnt := range res.Multiset {
			if cnt == 0 {
				continue
			}
			got++
			if want[in] != cnt {
				return fmt.Errorf("check: multiset[%v] = %d, ground truth %d", in, cnt, want[in])
			}
		}
		if got != len(want) {
			return fmt.Errorf("check: multiset has %d nonempty classes, ground truth %d", got, len(want))
		}
	}
	return nil
}

// groundTruthMultiset is the Generalized Counting answer implied by the
// inputs. In basic mode (no input level) the protocol's answer is the
// pre-agreed {leader, non-leader} partition, which is exactly the input
// multiset too: non-leaders carry the zero Input.
func (c *Checker) groundTruthMultiset() map[historytree.Input]int {
	want := make(map[historytree.Input]int)
	for _, in := range c.inputs {
		want[in]++
	}
	return want
}

func (c *Checker) verifyFrequencies(got *historytree.FrequencyResult) error {
	if !got.Known {
		return errors.New("check: leaderless run reported unknown frequencies")
	}
	counts := c.groundTruthMultiset()
	g := 0
	for _, cnt := range counts {
		g = gcd(g, cnt)
	}
	if got.MinSize != c.n/g {
		return fmt.Errorf("check: leaderless MinSize = %d, ground truth %d", got.MinSize, c.n/g)
	}
	if len(got.Shares) != len(counts) {
		return fmt.Errorf("check: %d frequency classes, ground truth %d", len(got.Shares), len(counts))
	}
	for in, cnt := range counts {
		if got.Shares[in] != cnt/g {
			return fmt.Errorf("check: share[%v] = %d, ground truth %d", in, got.Shares[in], cnt/g)
		}
	}
	return nil
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// verifyLevels checks the per-level structure of the final VHT against
// the recorder's ID assignments: every completed level's IDs form a
// partition of the process set into existing nodes of that level, child
// classes refine parent classes (each process's level-l node is a child
// of its level-(l-1) node), and the red-edge balance equations hold for
// the ground-truth cardinalities.
func (c *Checker) verifyLevels(res *core.RunResult) error {
	// In basic leader mode the recorder starts at level 1: level 0 is the
	// pre-agreed {leader → ID 0, other → ID 1} partition, never broadcast.
	basic := len(c.rec.IDsAtLevel(0)) == 0
	card := map[int]int{historytree.RootID: c.n}
	if basic {
		for _, in := range c.inputs {
			if in.Leader {
				card[0]++
			} else {
				card[1]++
			}
		}
	}
	start := 1
	if !basic {
		start = 0
	}
	prev := make(map[int]int) // pid → ID one level up
	for l := start; l <= res.Stats.Levels; l++ {
		ids := c.rec.IDsAtLevel(l)
		if len(ids) != c.n {
			return fmt.Errorf("check: level %d: %d of %d processes recorded an ID (not a partition)",
				l, len(ids), c.n)
		}
		for pid, id := range ids {
			v := res.VHT.NodeByID(id)
			if v == nil {
				return fmt.Errorf("check: level %d: process %d holds ID %d, which is not a VHT node", l, pid, id)
			}
			if v.Level != l {
				return fmt.Errorf("check: process %d's level-%d node %d actually lives at level %d",
					pid, l, id, v.Level)
			}
			if err := c.checkRefinement(v, l, start, basic, pid, prev); err != nil {
				return err
			}
			card[id]++
		}
		prev = ids
	}
	if err := historytree.CheckWeights(res.VHT, res.Stats.Levels, card); err != nil {
		return fmt.Errorf("check: red-edge balance vs ground-truth cardinalities (Lemma 4.4): %w", err)
	}
	return nil
}

// checkRefinement asserts that process pid's node v at level l descends
// from the node the same process held at level l-1 (classes only refine;
// two processes split by level l-1 can never re-merge).
func (c *Checker) checkRefinement(v *historytree.Node, l, start int, basic bool, pid int, prev map[int]int) error {
	if v.Parent == nil {
		return fmt.Errorf("check: level-%d node %d has no parent", l, v.ID)
	}
	switch {
	case l > start:
		if want := prev[pid]; v.Parent.ID != want {
			return fmt.Errorf("check: refinement broken: process %d moved from class %d to class %d, whose parent is %d",
				pid, want, v.ID, v.Parent.ID)
		}
	case basic:
		// Level 1 refines the pre-agreed level 0: leader class ID 0,
		// non-leader class ID 1.
		want := 1
		if c.inputs[pid].Leader {
			want = 0
		}
		if v.Parent.ID != want {
			return fmt.Errorf("check: process %d (leader=%v) holds level-1 class %d under parent %d, want %d",
				pid, c.inputs[pid].Leader, v.ID, v.Parent.ID, want)
		}
	default:
		// The first recorded level hangs off the root.
		if v.Parent.ID != historytree.RootID {
			return fmt.Errorf("check: level-%d node %d's parent is %d, want the root", l, v.ID, v.Parent.ID)
		}
	}
	return nil
}
