package check_test

import (
	"strings"
	"testing"

	"anondyn/internal/check"
	"anondyn/internal/core"
	"anondyn/internal/dynnet"
	"anondyn/internal/historytree"
)

func leaderIn(n int) []historytree.Input {
	in := make([]historytree.Input, n)
	in[0].Leader = true
	return in
}

func TestCheckerPassesCleanLeaderRun(t *testing.T) {
	for _, n := range []int{2, 5, 8} {
		inputs := leaderIn(n)
		cfg := core.Config{Mode: core.ModeLeader, MaxLevels: 3*n + 8}
		c := check.New(inputs)
		c.Attach(&cfg)
		if c.Recorder() == nil || cfg.Recorder != c.Recorder() {
			t.Fatal("Attach did not install the checker's recorder")
		}
		res, err := core.Run(dynnet.NewRandomConnected(n, 0.5, int64(n)), inputs, cfg, core.RunOptions{})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := c.Verify(res); err != nil {
			t.Fatalf("n=%d: clean run flagged: %v", n, err)
		}
	}
}

func TestCheckerPassesCleanLeaderlessRun(t *testing.T) {
	n := 6
	inputs := make([]historytree.Input, n)
	for i := range inputs {
		inputs[i].Value = int64(i % 3)
	}
	cfg := core.Config{Mode: core.ModeLeaderless, DiamBound: n, MaxLevels: 3*n + 8}
	c := check.New(inputs)
	c.Attach(&cfg)
	res, err := core.Run(dynnet.NewRandomConnected(n, 0.5, 2), inputs, cfg, core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Verify(res); err != nil {
		t.Fatalf("clean leaderless run flagged: %v", err)
	}
}

func TestCheckerPassesCleanGeneralizedRun(t *testing.T) {
	inputs := []historytree.Input{
		{Leader: true}, {Value: 3}, {Value: 3}, {Value: 7},
	}
	n := len(inputs)
	cfg := core.Config{Mode: core.ModeLeader, BuildInputLevel: true, MaxLevels: 3*n + 8}
	c := check.New(inputs)
	c.Attach(&cfg)
	res, err := core.Run(dynnet.NewRandomConnected(n, 0.5, 4), inputs, cfg, core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Verify(res); err != nil {
		t.Fatalf("clean generalized run flagged: %v", err)
	}
}

func TestCheckerFlagsNonDoublingReset(t *testing.T) {
	c := check.New(leaderIn(8))
	c.ObserveReset(4)
	if err := c.Err(); err != nil {
		t.Fatalf("first reset flagged spuriously: %v", err)
	}
	c.ObserveReset(6) // 4 → 6 is not a doubling
	err := c.Err()
	if err == nil {
		t.Fatal("non-doubling reset not flagged")
	}
	if !strings.Contains(err.Error(), "doubling") {
		t.Fatalf("violation message %q does not name the doubling rule", err)
	}
}

func TestCheckerFlagsEstimateBeyondFourN(t *testing.T) {
	c := check.New(leaderIn(2)) // 4n = 8
	for _, d := range []int{2, 4, 8, 16} {
		c.ObserveReset(d)
	}
	err := c.Err()
	if err == nil {
		t.Fatal("estimate 16 > 4n = 8 not flagged")
	}
	if !strings.Contains(err.Error(), "4.7") {
		t.Fatalf("violation message %q does not cite Lemma 4.7", err)
	}
}

func TestCheckerFlagsBackwardsRoundsAndBadIDs(t *testing.T) {
	c := check.New(leaderIn(4))
	c.ObserveBeginRound(10)
	c.ObserveBeginRound(5)
	if err := c.Err(); err == nil {
		t.Fatal("backwards level-begin rounds not flagged")
	}
	c2 := check.New(leaderIn(4))
	c2.ObserveLevelDone(1, 9, 0) // pid 9 on a 4-process run
	if err := c2.Err(); err == nil {
		t.Fatal("out-of-range process not flagged")
	}
}

func TestCheckerFlagsWrongAnswer(t *testing.T) {
	n := 5
	inputs := leaderIn(n)
	cfg := core.Config{Mode: core.ModeLeader, MaxLevels: 3*n + 8}
	c := check.New(inputs)
	c.Attach(&cfg)
	res, err := core.Run(dynnet.NewRandomConnected(n, 0.5, 6), inputs, cfg, core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res.N++ // doctor the count
	if err := c.Verify(res); err == nil {
		t.Fatal("checker accepted a doctored count")
	}
}

func TestVerifyRequiresAttach(t *testing.T) {
	c := check.New(leaderIn(3))
	if err := c.Verify(&core.RunResult{N: 3}); err == nil {
		t.Fatal("Verify on an unattached checker must fail")
	}
}
