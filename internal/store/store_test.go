package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
)

// reopen closes the store and opens the same directory again, as a daemon
// restart would.
func reopen(t *testing.T, s *Store, dir string, opts Options) *Store {
	t.Helper()
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	s2, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	return s2
}

// segFiles lists the segment files in dir.
func segFiles(t *testing.T, dir string) []string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, segPrefix+"*"+segSuffix))
	if err != nil {
		t.Fatal(err)
	}
	return matches
}

// TestPutGetRestart is the core persistence contract: values written
// before a restart are served after it, byte-for-byte, including
// overwrites (last write wins) and values spread across rotated segments.
func TestPutGetRestart(t *testing.T) {
	dir := t.TempDir()
	opts := Options{SegmentBytes: 256} // force rotations
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[string][]byte)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("hash-%03d", i%40) // 40 keys, 60 overwrites
		val := []byte(fmt.Sprintf("result-%d-%s", i, bytes.Repeat([]byte{'x'}, i)))
		if err := s.Put(key, val); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
		want[key] = val
	}
	check := func(s *Store) {
		t.Helper()
		if s.Len() != len(want) {
			t.Fatalf("Len=%d, want %d", s.Len(), len(want))
		}
		for key, val := range want {
			got, ok := s.Get(key)
			if !ok || !bytes.Equal(got, val) {
				t.Fatalf("Get(%s) = %q, %v; want %q", key, got, ok, val)
			}
		}
		if _, ok := s.Get("absent"); ok {
			t.Fatal("Get(absent) hit")
		}
	}
	check(s)
	if n := len(segFiles(t, dir)); n < 2 {
		t.Fatalf("expected rotated segments, have %d file(s)", n)
	}

	s = reopen(t, s, dir, opts)
	defer s.Close()
	check(s)
	st := s.Stats()
	if st.Hits == 0 || st.Records != len(want) || st.CorruptTailBytes != 0 {
		t.Fatalf("stats after clean restart: %+v", st)
	}
}

// TestCrashMidWriteRecovery simulates a crash mid-append: the last record
// is physically truncated to a partial frame. Open must recover every
// earlier record and discard the torn tail, and the store must keep
// accepting writes afterwards.
func TestCrashMidWriteRecovery(t *testing.T) {
	dir := t.TempDir()
	opts := Options{SegmentBytes: 1 << 20}
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail: chop the segment mid-way through the last record.
	segs := segFiles(t, dir)
	if len(segs) != 1 {
		t.Fatalf("want 1 segment, have %v", segs)
	}
	fi, err := os.Stat(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(segs[0], fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	s, err = Open(dir, opts)
	if err != nil {
		t.Fatalf("open after torn write: %v", err)
	}
	defer s.Close()
	for i := 0; i < 9; i++ {
		if v, ok := s.Get(fmt.Sprintf("k%d", i)); !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("k%d lost after recovery: %q, %v", i, v, ok)
		}
	}
	if _, ok := s.Get("k9"); ok {
		t.Fatal("torn record served as if intact")
	}
	if st := s.Stats(); st.CorruptTailBytes == 0 {
		t.Fatalf("recovery did not report the torn tail: %+v", st)
	}
	// The log must stay appendable at the truncation point.
	if err := s.Put("k9", []byte("v9-rewritten")); err != nil {
		t.Fatal(err)
	}
	s = reopen(t, s, dir, opts)
	defer s.Close()
	if v, ok := s.Get("k9"); !ok || string(v) != "v9-rewritten" {
		t.Fatalf("post-recovery append lost: %q, %v", v, ok)
	}
}

// TestCorruptedSegmentQuick is the corruption property test: flipping any
// single byte of the log must never make Open fail or panic, and every
// record before the corruption point must survive.
func TestCorruptedSegmentQuick(t *testing.T) {
	const records = 20
	vals := func(i int) (string, []byte) {
		return fmt.Sprintf("key-%02d", i), bytes.Repeat([]byte{byte('a' + i%26)}, 5+i)
	}
	build := func(dir string) string {
		s, err := Open(dir, Options{SegmentBytes: 1 << 20})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < records; i++ {
			k, v := vals(i)
			if err := s.Put(k, v); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		return segFiles(t, dir)[0]
	}

	refDir := t.TempDir()
	refSeg := build(refDir)
	pristine, err := os.ReadFile(refSeg)
	if err != nil {
		t.Fatal(err)
	}

	// recordStart[i] is the offset where record i begins.
	recordStart := make([]int64, records)
	off := int64(0)
	for i := 0; i < records; i++ {
		recordStart[i] = off
		klen, vlen, ok := parseRecord(pristine[off:])
		if !ok {
			t.Fatalf("pristine log unreadable at record %d", i)
		}
		off += headerSize + int64(klen) + int64(vlen)
	}

	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pos := rng.Intn(len(pristine))
		flip := byte(1 + rng.Intn(255)) // guaranteed to change the byte

		dir := t.TempDir()
		data := append([]byte(nil), pristine...)
		data[pos] ^= flip
		if err := os.WriteFile(filepath.Join(dir, filepath.Base(refSeg)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(dir, Options{SegmentBytes: 1 << 20})
		if err != nil {
			t.Logf("seed %d: open failed: %v", seed, err)
			return false
		}
		defer s.Close()

		// Every record strictly before the corrupted one must be intact.
		// (Recovery keeps the longest valid prefix, so records at or after
		// the flipped byte may legitimately be gone.)
		for i := 0; i < records; i++ {
			end := off
			if i+1 < records {
				end = recordStart[i+1]
			}
			if end > int64(pos) {
				break
			}
			k, v := vals(i)
			got, ok := s.Get(k)
			if !ok || !bytes.Equal(got, v) {
				t.Logf("seed %d: record %d (before corruption at %d) lost", seed, i, pos)
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentReadWrite hammers the store from concurrent writers and
// readers; run under -race this is the data-race regression for the
// single-mutex contract.
func TestConcurrentReadWrite(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SegmentBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const writers, keysPer = 4, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < keysPer; i++ {
				key := fmt.Sprintf("w%d-k%d", w, i)
				if err := s.Put(key, []byte(key+"-val")); err != nil {
					t.Errorf("put %s: %v", key, err)
					return
				}
				if v, ok := s.Get(key); !ok || string(v) != key+"-val" {
					t.Errorf("read-own-write %s: %q, %v", key, v, ok)
					return
				}
			}
		}(w)
		wg.Add(1)
		go func(w int) { // concurrent readers over the whole key space
			defer wg.Done()
			for i := 0; i < keysPer; i++ {
				for o := 0; o < writers; o++ {
					key := fmt.Sprintf("w%d-k%d", o, i)
					if v, ok := s.Get(key); ok && string(v) != key+"-val" {
						t.Errorf("torn read %s: %q", key, v)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != writers*keysPer {
		t.Fatalf("Len=%d, want %d", s.Len(), writers*keysPer)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if s.Len() != writers*keysPer {
		t.Fatalf("Len after compaction=%d, want %d", s.Len(), writers*keysPer)
	}
}

// TestCompaction verifies that compaction reclaims superseded records,
// survives a restart, and that a crash mid-compaction (a stray temp file)
// is cleaned up by the next Open.
func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	opts := Options{SegmentBytes: 128, NoAutoCompact: true}
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := s.Put("churn", []byte(fmt.Sprintf("version-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Put("stable", []byte("unchanging")); err != nil {
		t.Fatal(err)
	}
	before := s.Stats()
	if before.DeadBytes == 0 || before.Segments < 2 {
		t.Fatalf("overwrites produced no dead bytes / rotations: %+v", before)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	after := s.Stats()
	if after.DeadBytes != 0 || after.Segments != 1 || after.Bytes >= before.Bytes || after.Compactions != 1 {
		t.Fatalf("compaction ineffective: before %+v after %+v", before, after)
	}
	if v, ok := s.Get("churn"); !ok || string(v) != "version-49" {
		t.Fatalf("churn after compaction: %q, %v", v, ok)
	}
	if v, ok := s.Get("stable"); !ok || string(v) != "unchanging" {
		t.Fatalf("stable after compaction: %q, %v", v, ok)
	}

	// Stray temp file from a "crashed" compaction is removed on Open.
	tmp := filepath.Join(dir, segPrefix+"99999999"+segSuffix+tmpSuffix)
	if err := os.WriteFile(tmp, []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	s = reopen(t, s, dir, opts)
	defer s.Close()
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("stray compaction temp file survived Open: %v", err)
	}
	if v, ok := s.Get("churn"); !ok || string(v) != "version-49" {
		t.Fatalf("churn after restart: %q, %v", v, ok)
	}
}

// TestAutoCompaction verifies the dead-bytes trigger: overwriting one key
// far past the segment threshold compacts the log without an explicit
// Compact call.
func TestAutoCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	val := bytes.Repeat([]byte{'v'}, 64)
	for i := 0; i < 200; i++ {
		if err := s.Put("hot", val); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Compactions == 0 {
		t.Fatalf("auto-compaction never ran: %+v", st)
	}
	if st.Bytes > 4*512 {
		t.Fatalf("log did not stay bounded: %+v", st)
	}
}
