// Package store is a persistent content-addressed result store: a
// crash-tolerant key→value log keyed by the canonical JobSpec content hash,
// so cached simulation results survive daemon restarts and deduplicate
// across a fleet of backends.
//
// Layout: a directory of append-only segment files (`seg-00000001.log`,
// …). Every record is CRC-framed — magic, CRC-32 over the body, key and
// value lengths, then the bytes — so a torn write (crash mid-append) is
// detected on the next Open and the segment is truncated back to its
// longest valid prefix instead of poisoning later reads. Rewrites of a key
// simply append; the newest record wins and the older one becomes dead
// bytes. Segment-level operations that are not naturally append-shaped
// (compaction) go through write-temp + rename, so a crash mid-compaction
// leaves the old segments untouched and at worst a stray `*.tmp` that the
// next Open removes.
//
// The in-memory side is a flat index (key → segment/offset) rebuilt by
// scanning the segments on Open; values are read back on demand with
// ReadAt and re-verified against their CRC. Compaction rewrites the live
// records into a fresh segment and deletes the rest; it runs on demand
// (Compact) and automatically once dead bytes dominate the log.
//
// All methods are safe for concurrent use. Determinism: the store's
// contents are a pure function of the Put history — there is no
// time-based behaviour.
package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Record framing: magic(4) | crc(4) | klen(4) | vlen(4) | key | value,
// all fixed-width fields little-endian. The CRC covers everything after
// the crc field itself (lengths, key, value), so a corrupted length is
// caught as reliably as a corrupted payload.
const (
	recordMagic  = 0x63616453 // "cadS"
	headerSize   = 16
	segPrefix    = "seg-"
	segSuffix    = ".log"
	tmpSuffix    = ".tmp"
	segNameWidth = 8
)

// DefaultSegmentBytes is the segment rotation threshold used when
// Options.SegmentBytes is zero.
const DefaultSegmentBytes = 4 << 20

// Options parameterizes Open. The zero value selects sane defaults.
type Options struct {
	// SegmentBytes is the size threshold after which the active segment is
	// rotated (default DefaultSegmentBytes). Smaller values mean more,
	// smaller files; the threshold is checked before each append, so a
	// single oversized record still lands in one segment.
	SegmentBytes int64
	// Sync fsyncs the active segment after every Put. Off by default: the
	// store targets process-restart durability (the soak scenario), not
	// power-loss durability; compaction always syncs before its rename.
	Sync bool
	// NoAutoCompact disables the automatic compaction pass that otherwise
	// runs when dead bytes exceed both SegmentBytes and half the log.
	NoAutoCompact bool
}

// Stats is a point-in-time snapshot of the store's counters, served by the
// daemon's /v1/metrics endpoint.
type Stats struct {
	// Records is the number of live keys.
	Records int `json:"records"`
	// Segments is the number of segment files on disk.
	Segments int `json:"segments"`
	// Bytes is the total size of all segment files.
	Bytes int64 `json:"bytes"`
	// DeadBytes counts bytes held by superseded records (reclaimed by the
	// next compaction).
	DeadBytes int64 `json:"deadBytes"`
	// Puts, Gets and Hits count operations since Open (a Hit is a Get that
	// returned a value).
	Puts int64 `json:"puts"`
	Gets int64 `json:"gets"`
	Hits int64 `json:"hits"`
	// CorruptTailBytes counts bytes discarded by recovery truncation at
	// Open (torn or corrupted record frames).
	CorruptTailBytes int64 `json:"corruptTailBytes"`
	// ReadErrors counts Gets that found an index entry but failed to read
	// a valid record back (the entry is dropped and the Get misses).
	ReadErrors int64 `json:"readErrors"`
	// Compactions counts completed compaction passes.
	Compactions int64 `json:"compactions"`
}

// recordRef locates one live record.
type recordRef struct {
	seg  int
	off  int64
	klen int
	vlen int
}

// size returns the record's on-disk footprint.
func (r recordRef) size() int64 { return headerSize + int64(r.klen) + int64(r.vlen) }

// Store is the persistent content-addressed store. Open one per directory;
// concurrent Stores over the same directory are not supported (the daemon
// owns its store exclusively).
type Store struct {
	dir  string
	opts Options

	mu       sync.Mutex
	segs     map[int]*os.File // open handles, read (and append for active)
	activeID int
	activeSz int64
	index    map[string]recordRef
	stats    Stats
}

// Open creates the directory if needed, removes stray temp files from an
// interrupted compaction, scans every segment rebuilding the index —
// truncating each segment to its longest valid record prefix — and opens
// the newest segment for appending.
func Open(dir string, opts Options) (*Store, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: mkdir %s: %w", dir, err)
	}
	s := &Store{
		dir:   dir,
		opts:  opts,
		segs:  make(map[int]*os.File),
		index: make(map[string]recordRef),
	}
	ids, err := s.scanDir()
	if err != nil {
		return nil, err
	}
	for _, id := range ids {
		if err := s.recoverSegment(id); err != nil {
			s.closeLocked()
			return nil, err
		}
	}
	if len(ids) == 0 {
		if err := s.rotateLocked(1); err != nil {
			return nil, err
		}
	} else {
		s.activeID = ids[len(ids)-1]
	}
	return s, nil
}

// scanDir lists segment IDs in ascending order and removes stray temp
// files left by a crashed compaction.
func (s *Store) scanDir() ([]int, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("store: read dir %s: %w", s.dir, err)
	}
	var ids []int
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, tmpSuffix) {
			_ = os.Remove(filepath.Join(s.dir, name))
			continue
		}
		if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		var id int
		if _, err := fmt.Sscanf(name, segPrefix+"%d"+segSuffix, &id); err != nil || id <= 0 {
			continue
		}
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids, nil
}

// segPath renders a segment's file name.
func (s *Store) segPath(id int) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s%0*d%s", segPrefix, segNameWidth, id, segSuffix))
}

// recoverSegment scans one segment, indexing every valid record and
// truncating the file at the first invalid frame.
func (s *Store) recoverSegment(id int) error {
	path := s.segPath(id)
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("store: read %s: %w", path, err)
	}
	valid := int64(0)
	for off := int64(0); off < int64(len(data)); {
		klen, vlen, ok := parseRecord(data[off:])
		if !ok {
			break
		}
		ref := recordRef{seg: id, off: off, klen: klen, vlen: vlen}
		key := string(data[off+headerSize : off+headerSize+int64(klen)])
		if old, dup := s.index[key]; dup {
			s.stats.DeadBytes += old.size()
		}
		s.index[key] = ref
		off += ref.size()
		valid = off
	}
	if dropped := int64(len(data)) - valid; dropped > 0 {
		s.stats.CorruptTailBytes += dropped
		if err := os.Truncate(path, valid); err != nil {
			return fmt.Errorf("store: truncate corrupt tail of %s: %w", path, err)
		}
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("store: open %s: %w", path, err)
	}
	s.segs[id] = f
	s.activeSz = valid // only meaningful for the last (active) segment
	return nil
}

// parseRecord validates one record frame at the start of data, returning
// its key and value lengths.
func parseRecord(data []byte) (klen, vlen int, ok bool) {
	if len(data) < headerSize {
		return 0, 0, false
	}
	if binary.LittleEndian.Uint32(data[0:4]) != recordMagic {
		return 0, 0, false
	}
	crc := binary.LittleEndian.Uint32(data[4:8])
	klen = int(binary.LittleEndian.Uint32(data[8:12]))
	vlen = int(binary.LittleEndian.Uint32(data[12:16]))
	total := headerSize + klen + vlen
	if klen < 0 || vlen < 0 || total < headerSize || total > len(data) {
		return 0, 0, false
	}
	if crc32.ChecksumIEEE(data[8:total]) != crc {
		return 0, 0, false
	}
	return klen, vlen, true
}

// rotateLocked creates and activates the segment with the given ID.
// Callers hold s.mu (or have exclusive access during Open).
func (s *Store) rotateLocked(id int) error {
	f, err := os.OpenFile(s.segPath(id), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("store: create segment: %w", err)
	}
	s.segs[id] = f
	s.activeID = id
	s.activeSz = 0
	return nil
}

// encodeRecord frames a record into a fresh buffer.
func encodeRecord(key string, val []byte) []byte {
	buf := make([]byte, headerSize+len(key)+len(val))
	binary.LittleEndian.PutUint32(buf[0:4], recordMagic)
	binary.LittleEndian.PutUint32(buf[8:12], uint32(len(key)))
	binary.LittleEndian.PutUint32(buf[12:16], uint32(len(val)))
	copy(buf[headerSize:], key)
	copy(buf[headerSize+len(key):], val)
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(buf[8:]))
	return buf
}

// Put appends the value under the key. An existing value for the key is
// superseded (last write wins); its bytes are reclaimed by compaction.
func (s *Store) Put(key string, val []byte) error {
	buf := encodeRecord(key, val)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.segs == nil {
		return fmt.Errorf("store: closed")
	}
	s.stats.Puts++
	if s.activeSz >= s.opts.SegmentBytes {
		if err := s.rotateLocked(s.activeID + 1); err != nil {
			return err
		}
	}
	f := s.segs[s.activeID]
	ref := recordRef{seg: s.activeID, off: s.activeSz, klen: len(key), vlen: len(val)}
	if _, err := f.WriteAt(buf, ref.off); err != nil {
		return fmt.Errorf("store: append: %w", err)
	}
	if s.opts.Sync {
		if err := f.Sync(); err != nil {
			return fmt.Errorf("store: sync: %w", err)
		}
	}
	s.activeSz += ref.size()
	if old, dup := s.index[key]; dup {
		s.stats.DeadBytes += old.size()
	}
	s.index[key] = ref
	if !s.opts.NoAutoCompact && s.stats.DeadBytes > s.opts.SegmentBytes && s.stats.DeadBytes > s.bytesLocked()/2 {
		return s.compactLocked()
	}
	return nil
}

// Get returns the stored value for the key. The record is re-verified
// against its CRC on the way back; a record that no longer reads valid is
// dropped from the index and reported as a miss.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.segs == nil {
		return nil, false
	}
	s.stats.Gets++
	ref, ok := s.index[key]
	if !ok {
		return nil, false
	}
	f := s.segs[ref.seg]
	buf := make([]byte, ref.size())
	if _, err := f.ReadAt(buf, ref.off); err != nil {
		s.dropLocked(key, ref)
		return nil, false
	}
	klen, vlen, valid := parseRecord(buf)
	if !valid || klen != ref.klen || vlen != ref.vlen || string(buf[headerSize:headerSize+klen]) != key {
		s.dropLocked(key, ref)
		return nil, false
	}
	s.stats.Hits++
	return buf[headerSize+klen:], true
}

// dropLocked removes an unreadable index entry. Callers hold s.mu.
func (s *Store) dropLocked(key string, ref recordRef) {
	s.stats.ReadErrors++
	s.stats.DeadBytes += ref.size()
	delete(s.index, key)
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// bytesLocked sums the on-disk segment sizes. Callers hold s.mu.
func (s *Store) bytesLocked() int64 {
	var total int64
	for id, f := range s.segs {
		if id == s.activeID {
			total += s.activeSz
			continue
		}
		if fi, err := f.Stat(); err == nil {
			total += fi.Size()
		}
	}
	return total
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Records = len(s.index)
	st.Segments = len(s.segs)
	st.Bytes = s.bytesLocked()
	return st
}

// Compact rewrites all live records into a single fresh segment (built as
// a temp file, synced, then renamed into place) and deletes the old
// segments, reclaiming dead bytes. A crash mid-compaction is harmless: the
// rename is the commit point and the next Open removes stray temp files.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.segs == nil {
		return fmt.Errorf("store: closed")
	}
	return s.compactLocked()
}

func (s *Store) compactLocked() error {
	newID := s.activeID + 1
	finalPath := s.segPath(newID)
	tmpPath := finalPath + tmpSuffix
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	defer os.Remove(tmpPath) // no-op after the rename commits

	// Deterministic output: live records in sorted key order.
	keys := make([]string, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	newIndex := make(map[string]recordRef, len(keys))
	off := int64(0)
	for _, key := range keys {
		ref := s.index[key]
		buf := make([]byte, ref.size())
		if _, err := s.segs[ref.seg].ReadAt(buf, ref.off); err != nil {
			tmp.Close()
			return fmt.Errorf("store: compact read: %w", err)
		}
		if _, _, valid := parseRecord(buf); !valid {
			// The record rotted since it was indexed; drop it.
			s.stats.ReadErrors++
			continue
		}
		if _, err := tmp.WriteAt(buf, off); err != nil {
			tmp.Close()
			return fmt.Errorf("store: compact write: %w", err)
		}
		newIndex[key] = recordRef{seg: newID, off: off, klen: ref.klen, vlen: ref.vlen}
		off += ref.size()
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: compact sync: %w", err)
	}
	if err := os.Rename(tmpPath, finalPath); err != nil {
		tmp.Close()
		return fmt.Errorf("store: compact rename: %w", err)
	}
	// Committed: swap in the new segment, drop the old ones.
	for id, f := range s.segs {
		f.Close()
		_ = os.Remove(s.segPath(id))
	}
	s.segs = map[int]*os.File{newID: tmp}
	s.index = newIndex
	s.activeID = newID
	s.activeSz = off
	s.stats.DeadBytes = 0
	s.stats.Compactions++
	return nil
}

// Close releases the segment file handles. The store is unusable after.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closeLocked()
}

func (s *Store) closeLocked() error {
	var first error
	for _, f := range s.segs {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.segs = nil
	s.index = nil
	return first
}
