package dynnet

import (
	randv2 "math/rand/v2"
	"slices"
	"testing"
	"testing/quick"
)

func TestStaticSchedule(t *testing.T) {
	g := Path(4)
	s := NewStatic(g)
	if s.N() != 4 {
		t.Fatalf("N=%d", s.N())
	}
	for _, round := range []int{1, 2, 100} {
		if got := s.Graph(round).String(); got != g.String() {
			t.Fatalf("round %d: %s != %s", round, got, g)
		}
	}
	// Mutating the returned graph must not affect the schedule.
	s.Graph(1).MustAddLink(0, 3, 1)
	if s.Graph(1).LinkCount() != g.LinkCount() {
		t.Fatal("schedule state leaked through Graph()")
	}
}

// TestStaticGraphInto pins the allocation-free path: GraphInto must match
// Graph exactly (even into a buffer that held a different graph), and a
// warm buffer refill must not allocate.
func TestStaticGraphInto(t *testing.T) {
	s := NewStatic(Cycle(6))
	buf := NewMultigraph(6)
	buf.MustAddLink(0, 5, 3) // stale content GraphInto must clear
	s.GraphInto(1, buf)
	if !sameGraph(s.Graph(1), buf) {
		t.Fatalf("GraphInto diverged from Graph: %s != %s", buf, s.Graph(1))
	}
	if allocs := testing.AllocsPerRun(100, func() { s.GraphInto(2, buf) }); allocs != 0 {
		t.Fatalf("warm GraphInto allocated %.1f times per call", allocs)
	}
}

func TestSequenceSchedule(t *testing.T) {
	a, b := Path(3), Cycle(3)
	s, err := NewSequence(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if s.Graph(1).String() != a.String() {
		t.Error("round 1 should be first graph")
	}
	if s.Graph(2).String() != b.String() {
		t.Error("round 2 should be second graph")
	}
	if s.Graph(9).String() != b.String() {
		t.Error("later rounds should repeat the last graph")
	}
	if s.Graph(0).String() != a.String() {
		t.Error("round ≤ 1 clamps to the first graph")
	}

	if _, err := NewSequence(); err == nil {
		t.Error("empty sequence must fail")
	}
	if _, err := NewSequence(Path(3), Path(4)); err == nil {
		t.Error("mismatched sizes must fail")
	}
}

func TestRandomConnectedScheduleDeterministicPerRound(t *testing.T) {
	s := NewRandomConnected(8, 0.4, 99)
	for _, round := range []int{1, 5, 42} {
		a := s.Graph(round).String()
		b := s.Graph(round).String()
		if a != b {
			t.Fatalf("round %d not deterministic", round)
		}
		if !s.Graph(round).Connected() {
			t.Fatalf("round %d graph disconnected", round)
		}
	}
	// Different rounds should (generically) differ.
	if s.Graph(1).String() == s.Graph(2).String() {
		t.Log("rounds 1 and 2 coincide (possible but unlikely)")
	}
}

// TestRandomConnectedScheduleBornCanonical pins the hot-loop generator's
// merge construction: the graph it emits must be exactly the graph obtained
// by replaying the same PCG draws through plain AddLink calls, and its
// canonical link list must be strictly sorted with merged multiplicities.
func TestRandomConnectedScheduleBornCanonical(t *testing.T) {
	for _, tc := range []struct {
		n    int
		p    float64
		seed int64
	}{
		{2, 0, 1}, {5, 0.3, 7}, {8, 0.9, 99}, {12, 0.5, 3},
		// One case per generator path: bitmask (n ≤ 64), masked dense
		// (64 < n ≤ 256), and sparse merge (n > 256). All three must
		// consume the identical PCG stream as the plain replay below.
		{64, 0.3, 11}, {96, 0.3, 11}, {257, 0.05, 11},
	} {
		s := NewRandomConnected(tc.n, tc.p, tc.seed)
		for _, round := range []int{1, 2, 17} {
			g := s.Graph(round)

			rng := randv2.New(randv2.NewPCG(uint64(tc.seed), uint64(round)))
			ref := NewMultigraph(tc.n)
			perm := rng.Perm(tc.n)
			for i := 1; i < tc.n; i++ {
				ref.MustAddLink(perm[i], perm[rng.IntN(i)], 1)
			}
			for u := 0; u < tc.n; u++ {
				for v := u + 1; v < tc.n; v++ {
					if rng.Float64() < tc.p {
						ref.MustAddLink(u, v, 1)
					}
				}
			}
			if got, want := g.String(), ref.String(); got != want {
				t.Fatalf("n=%d p=%v seed=%d round %d: got %s, want %s",
					tc.n, tc.p, tc.seed, round, got, want)
			}

			links := g.CanonicalLinks()
			for i := 1; i < len(links); i++ {
				if cmpLinks(links[i-1], links[i]) >= 0 {
					t.Fatalf("n=%d round %d: links not strictly canonical at %d: %v",
						tc.n, round, i, links)
				}
			}
		}
	}
}

// TestRandomConnectedSparseMergeStream is the dedicated deep regression
// for the n > 256 sparse/merge generator path: at a density high enough
// that many of the n−1 tree edges coincide with Bernoulli extras, the
// merge of the two link streams must (a) consume exactly the rand/v2
// stream the contract pins (replayed below through Perm/IntN/Float64 on a
// fresh PCG), (b) emit a strictly canonical link list with the
// coinciding pairs folded into multiplicity-2 links rather than
// duplicated, and (c) build the identical graph into dirty reused
// storage via GraphInto.
func TestRandomConnectedSparseMergeStream(t *testing.T) {
	const (
		n    = 320
		p    = 0.5
		seed = int64(29)
	)
	s := NewRandomConnected(n, p, seed)
	dirty := NewMultigraph(3) // deliberately wrong size and stale contents
	dirty.MustAddLink(0, 2, 7)
	for _, round := range []int{1, 2, 17} {
		g := s.Graph(round)

		rng := randv2.New(randv2.NewPCG(uint64(seed), uint64(round)))
		ref := NewMultigraph(n)
		perm := rng.Perm(n)
		for i := 1; i < n; i++ {
			ref.MustAddLink(perm[i], perm[rng.IntN(i)], 1)
		}
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < p {
					ref.MustAddLink(u, v, 1)
				}
			}
		}
		if got, want := g.String(), ref.String(); got != want {
			t.Fatalf("round %d: sparse path diverged from the rand/v2 replay", round)
		}

		links := g.CanonicalLinks()
		merged := 0
		for i, l := range links {
			if i > 0 && cmpLinks(links[i-1], l) >= 0 {
				t.Fatalf("round %d: links not strictly canonical at %d: %v vs %v",
					round, i, links[i-1], l)
			}
			if l.Mult > 1 {
				merged++
			}
		}
		// At p = 0.5 roughly half the 319 tree edges coincide with a
		// Bernoulli extra; a merge-free round means the fold is broken.
		if merged == 0 {
			t.Fatalf("round %d: no multiplicity merges at n=%d p=%v — the tree/Bernoulli fold is dead", round, n, p)
		}

		s.GraphInto(round, dirty)
		if got, want := dirty.String(), g.String(); got != want {
			t.Fatalf("round %d: GraphInto into dirty storage diverged from Graph", round)
		}
	}
}

func TestRotatingStarSchedule(t *testing.T) {
	s := NewRotatingStar(5)
	for round := 1; round <= 10; round++ {
		g := s.Graph(round)
		if !g.Connected() {
			t.Fatalf("round %d disconnected", round)
		}
		center := round % 5
		if got := g.Degree(center); got != 4 {
			t.Fatalf("round %d: center %d degree %d", round, center, got)
		}
	}
}

func TestShiftingPathSchedule(t *testing.T) {
	s := NewShiftingPath(6)
	for round := 1; round <= 8; round++ {
		g := s.Graph(round)
		if !g.Connected() {
			t.Fatalf("round %d disconnected", round)
		}
		if g.LinkCount() != 5 {
			t.Fatalf("round %d: %d links, want n-1", round, g.LinkCount())
		}
	}
	if !NewShiftingPath(1).Graph(1).Connected() {
		t.Error("singleton shifting path")
	}
}

func TestBottleneckSchedule(t *testing.T) {
	s := NewBottleneck(8)
	for round := 1; round <= 6; round++ {
		if !s.Graph(round).Connected() {
			t.Fatalf("round %d disconnected", round)
		}
	}
	// The bridge must rotate: the graphs of two consecutive rounds differ.
	if s.Graph(1).String() == s.Graph(2).String() {
		t.Error("bridge did not rotate")
	}
}

func TestUnionConnectedSchedule(t *testing.T) {
	inner := NewRandomConnected(7, 0.5, 3)
	for _, T := range []int{2, 3, 5} {
		s, err := NewUnionConnected(inner, T)
		if err != nil {
			t.Fatal(err)
		}
		// Single rounds are (generally) not connected, but every aligned
		// window of T rounds unions to a connected graph.
		for block := 0; block < 4; block++ {
			ok, err := UnionConnected(s, block*T+1, T)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("T=%d block %d: union not connected", T, block)
			}
		}
		// The union over a window must equal the inner round's graph.
		acc := s.Graph(1)
		for r := 2; r <= T; r++ {
			acc, err = acc.Union(s.Graph(r))
			if err != nil {
				t.Fatal(err)
			}
		}
		if acc.String() != inner.Graph(1).String() {
			t.Fatalf("T=%d: union of block != inner graph", T)
		}
	}
	if _, err := NewUnionConnected(inner, 0); err == nil {
		t.Error("T=0 must fail")
	}
}

func TestUnionConnectedWindowValidation(t *testing.T) {
	s := NewStatic(Path(3))
	if _, err := UnionConnected(s, 1, 0); err == nil {
		t.Fatal("window 0 must fail")
	}
	ok, err := UnionConnected(s, 1, 1)
	if err != nil || !ok {
		t.Fatalf("static path union: ok=%v err=%v", ok, err)
	}
}

func TestFuncSchedule(t *testing.T) {
	s := NewFunc(3, func(t int) *Multigraph {
		if t%2 == 0 {
			return Path(3)
		}
		return Cycle(3)
	})
	if s.N() != 3 {
		t.Fatalf("N=%d", s.N())
	}
	if s.Graph(1).LinkCount() != 3 {
		t.Error("odd rounds should be cycles")
	}
	if s.Graph(2).LinkCount() != 2 {
		t.Error("even rounds should be paths")
	}
}

func TestSchedulePureFunctionProperty(t *testing.T) {
	// Every generator must be a pure function of the round number.
	gens := map[string]Schedule{
		"random":        NewRandomConnected(6, 0.3, 7),
		"rotating-star": NewRotatingStar(6),
		"shifting-path": NewShiftingPath(6),
		"bottleneck":    NewBottleneck(6),
	}
	for name, s := range gens {
		f := func(round uint8) bool {
			r := 1 + int(round%50)
			return s.Graph(r).String() == s.Graph(r).String()
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// TestPermMatchesFillShuffle pins the stream-identity assumption behind the
// pooled scratch in randomConnectedV2: drawing a permutation by filling
// 0..n-1 and calling Shuffle consumes the random stream exactly like
// rng.Perm(n), so the scratch-buffer rewrite cannot perturb any recorded
// schedule. If a Go release ever changes Perm's definition, this fails
// before any golden schedule does.
func TestPermMatchesFillShuffle(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 12, 33} {
		for seed := uint64(0); seed < 5; seed++ {
			a := randv2.New(randv2.NewPCG(seed, 99))
			b := randv2.New(randv2.NewPCG(seed, 99))
			want := a.Perm(n)
			got := make([]int, n)
			for i := range got {
				got[i] = i
			}
			b.Shuffle(n, func(i, j int) { got[i], got[j] = got[j], got[i] })
			if !slices.Equal(got, want) {
				t.Fatalf("n=%d seed=%d: fill+Shuffle %v != Perm %v", n, seed, got, want)
			}
			// Both generators must also be left in the same state.
			if a.Uint64() != b.Uint64() {
				t.Fatalf("n=%d seed=%d: generators diverged after permutation", n, seed)
			}
		}
	}
}

// TestRandomConnectedScheduleStableAcrossScratchReuse exercises the pooled
// scratch across interleaved graph sizes: two schedules of different n
// sharing the pool must still each be a pure function of t.
func TestRandomConnectedScheduleStableAcrossScratchReuse(t *testing.T) {
	big := NewRandomConnected(17, 0.4, 3)
	small := NewRandomConnected(5, 0.2, 4)
	wantBig := big.Graph(7).String()
	wantSmall := small.Graph(9).String()
	for i := 0; i < 50; i++ {
		if got := big.Graph(7).String(); got != wantBig {
			t.Fatalf("iteration %d: big graph drifted:\n%s\nwant:\n%s", i, got, wantBig)
		}
		if got := small.Graph(9).String(); got != wantSmall {
			t.Fatalf("iteration %d: small graph drifted", i)
		}
	}
}
