package dynnet

import (
	"fmt"
	"math/rand"
	"testing"
)

func BenchmarkRandomConnected(b *testing.B) {
	for _, n := range []int{16, 128} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			for i := 0; i < b.N; i++ {
				if g := RandomConnected(n, 0.3, rng); !g.Connected() {
					b.Fatal("disconnected")
				}
			}
		})
	}
}

func BenchmarkConnectedCheck(b *testing.B) {
	g := RandomConnected(256, 0.1, rand.New(rand.NewSource(2)))
	for i := 0; i < b.N; i++ {
		if !g.Connected() {
			b.Fatal("disconnected")
		}
	}
}
