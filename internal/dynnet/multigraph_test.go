package dynnet

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewMultigraphPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative n")
		}
	}()
	NewMultigraph(-1)
}

func TestAddLinkValidation(t *testing.T) {
	g := NewMultigraph(3)
	tests := []struct {
		name    string
		u, v, m int
		wantErr bool
	}{
		{name: "ok", u: 0, v: 1, m: 1},
		{name: "self-loop", u: 2, v: 2, m: 1},
		{name: "u-negative", u: -1, v: 1, m: 1, wantErr: true},
		{name: "v-too-big", u: 0, v: 3, m: 1, wantErr: true},
		{name: "zero-mult", u: 0, v: 1, m: 0, wantErr: true},
		{name: "negative-mult", u: 0, v: 1, m: -2, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := g.AddLink(tt.u, tt.v, tt.m)
			if (err != nil) != tt.wantErr {
				t.Fatalf("AddLink(%d,%d,%d) error = %v, wantErr %v", tt.u, tt.v, tt.m, err, tt.wantErr)
			}
		})
	}
}

func TestAddLinkAccumulatesAndCanonicalizes(t *testing.T) {
	g := NewMultigraph(4)
	g.MustAddLink(2, 1, 1)
	g.MustAddLink(1, 2, 3)
	links := g.Links()
	if len(links) != 1 {
		t.Fatalf("got %d link entries, want 1", len(links))
	}
	if links[0] != (Link{U: 1, V: 2, Mult: 4}) {
		t.Fatalf("got %+v, want {1 2 4}", links[0])
	}
	if g.LinkCount() != 4 {
		t.Fatalf("LinkCount=%d, want 4", g.LinkCount())
	}
}

func TestNeighborsAndDegree(t *testing.T) {
	g := NewMultigraph(4)
	g.MustAddLink(0, 1, 2)
	g.MustAddLink(0, 2, 1)
	g.MustAddLink(3, 3, 2) // double self-loop: two messages to itself

	nb := g.Neighbors(0)
	if nb[1] != 2 || nb[2] != 1 || len(nb) != 2 {
		t.Fatalf("Neighbors(0) = %v", nb)
	}
	if g.Degree(0) != 3 {
		t.Fatalf("Degree(0)=%d, want 3", g.Degree(0))
	}
	nb3 := g.Neighbors(3)
	if nb3[3] != 2 {
		t.Fatalf("Neighbors(3) = %v, want self-loop multiplicity 2", nb3)
	}
	if g.Degree(3) != 2 {
		t.Fatalf("Degree(3)=%d, want 2", g.Degree(3))
	}
	if len(g.Neighbors(1)) != 1 {
		t.Fatalf("Neighbors(1) = %v", g.Neighbors(1))
	}
}

func TestConnected(t *testing.T) {
	tests := []struct {
		name string
		g    *Multigraph
		want bool
	}{
		{name: "empty", g: NewMultigraph(0), want: true},
		{name: "singleton", g: NewMultigraph(1), want: true},
		{name: "two-isolated", g: NewMultigraph(2), want: false},
		{name: "path", g: Path(5), want: true},
		{name: "cycle", g: Cycle(6), want: true},
		{name: "complete", g: Complete(4), want: true},
		{name: "star", g: Star(5, 2), want: true},
		{name: "self-loops-only", g: func() *Multigraph {
			g := NewMultigraph(2)
			g.MustAddLink(0, 0, 1)
			g.MustAddLink(1, 1, 1)
			return g
		}(), want: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.g.Connected(); got != tt.want {
				t.Fatalf("Connected() = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestUnion(t *testing.T) {
	a := NewMultigraph(3)
	a.MustAddLink(0, 1, 1)
	b := NewMultigraph(3)
	b.MustAddLink(1, 2, 2)
	b.MustAddLink(0, 1, 1)

	u, err := a.Union(b)
	if err != nil {
		t.Fatal(err)
	}
	if !u.Connected() {
		t.Error("union should be connected")
	}
	if u.LinkCount() != 4 {
		t.Errorf("union LinkCount=%d, want 4", u.LinkCount())
	}
	// Mismatched sizes error.
	if _, err := a.Union(NewMultigraph(4)); err == nil {
		t.Error("expected size-mismatch error")
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := Path(4)
	c := g.Clone()
	c.MustAddLink(0, 3, 5)
	if g.LinkCount() == c.LinkCount() {
		t.Fatal("clone shares state with original")
	}
}

func TestStandardTopologies(t *testing.T) {
	// Cycle degeneracies from the paper: C_2 is a double link, C_1 a
	// double self-loop; every cycle is 2-regular.
	for n := 1; n <= 6; n++ {
		c := Cycle(n)
		for v := 0; v < n; v++ {
			if d := c.Degree(v); d != 2 {
				t.Errorf("Cycle(%d): degree(%d)=%d, want 2", n, v, d)
			}
		}
	}
	if got := Complete(5).LinkCount(); got != 10 {
		t.Errorf("K5 has %d links, want 10", got)
	}
	if got := Star(5, 3).Degree(3); got != 4 {
		t.Errorf("Star center degree %d, want 4", got)
	}
	if got := Path(1).LinkCount(); got != 0 {
		t.Errorf("Path(1) has %d links", got)
	}
}

func TestString(t *testing.T) {
	g := NewMultigraph(4)
	g.MustAddLink(2, 3, 1)
	g.MustAddLink(0, 1, 2)
	if got, want := g.String(), "n=4 {0-1 x2, 2-3}"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestRandomConnectedIsConnectedProperty(t *testing.T) {
	f := func(nSeed uint8, pSeed uint8, seed int64) bool {
		n := 1 + int(nSeed%20)
		p := float64(pSeed) / 255
		g := RandomConnected(n, p, rand.New(rand.NewSource(seed)))
		return g.N() == n && g.Connected()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLinksReturnsCopy(t *testing.T) {
	g := Path(3)
	links := g.Links()
	links[0].Mult = 99
	if g.Links()[0].Mult == 99 {
		t.Fatal("Links() exposes internal state")
	}
}
