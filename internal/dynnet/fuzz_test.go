package dynnet

import "testing"

// FuzzRandomConnectedSchedule drives the random connected generator with
// arbitrary (n, p, seed, round) and asserts its contract: every graph is
// connected, its canonical link list is strictly ordered and well-formed,
// the schedule is a pure function of its parameters, and the in-place
// GraphInto path produces exactly the allocating Graph path's graph.
func FuzzRandomConnectedSchedule(f *testing.F) {
	f.Add(byte(2), uint16(0), int64(0), uint16(1))
	f.Add(byte(5), uint16(32768), int64(42), uint16(3))
	f.Add(byte(24), uint16(65535), int64(-7), uint16(200))
	f.Add(byte(9), uint16(100), int64(1<<40), uint16(17))

	f.Fuzz(func(t *testing.T, nRaw byte, pRaw uint16, seed int64, roundRaw uint16) {
		n := 2 + int(nRaw)%23 // [2, 24]
		p := float64(pRaw) / 65535
		round := 1 + int(roundRaw)
		s := NewRandomConnected(n, p, seed)
		g := s.Graph(round)
		if g.N() != n {
			t.Fatalf("graph on %d processes, want %d", g.N(), n)
		}
		if !g.Connected() {
			t.Fatalf("n=%d p=%v seed=%d round=%d: disconnected graph", n, p, seed, round)
		}
		links := g.CanonicalLinks()
		for i, l := range links {
			if l.U < 0 || l.V <= l.U || l.V >= n {
				t.Fatalf("link %d = %+v out of canonical form on %d processes", i, l, n)
			}
			if l.Mult < 1 {
				t.Fatalf("link %d = %+v has non-positive multiplicity", i, l)
			}
			if i > 0 {
				prev := links[i-1]
				if prev.U > l.U || (prev.U == l.U && prev.V >= l.V) {
					t.Fatalf("links %d,%d out of order: %+v then %+v", i-1, i, prev, l)
				}
			}
		}
		// Purity: an independent schedule value replays the same graph.
		again := NewRandomConnected(n, p, seed).Graph(round)
		if !sameGraph(g, again) {
			t.Fatalf("schedule is not a pure function of (n,p,seed,round)")
		}
		// GraphInto into recycled storage must match, including after the
		// buffer held a different round's graph.
		buf := NewMultigraph(n)
		s.GraphInto(round+1, buf)
		s.GraphInto(round, buf)
		if !sameGraph(g, buf) {
			t.Fatalf("GraphInto diverged from Graph at round %d", round)
		}
	})
}

func sameGraph(a, b *Multigraph) bool {
	if a.N() != b.N() {
		return false
	}
	la, lb := a.CanonicalLinks(), b.CanonicalLinks()
	if len(la) != len(lb) {
		return false
	}
	for i := range la {
		if la[i] != lb[i] {
			return false
		}
	}
	return true
}
