// Package dynnet models dynamic networks of anonymous processes: undirected
// multigraphs whose link sets are rearranged arbitrarily at every synchronous
// round, as defined in Section 2 of Di Luna–Viglietta (PODC 2023).
//
// A dynamic network is an infinite sequence 𝒢 = (G_t) of multigraphs on the
// same vertex set {0, …, n-1}. Multigraphs may contain parallel links and
// self-loops; a self-loop represents a single link, i.e. a single message
// sent and received by the same process. The package provides the multigraph
// type itself, connectivity and union-connectivity checks, and a collection
// of adversarial schedule generators used throughout the test and benchmark
// suites.
package dynnet

import (
	"fmt"
	"slices"
	"strings"
)

// Link is one (multi-)edge of a round multigraph. U and V are process
// indices in [0, n); U == V denotes a self-loop. Mult is the number of
// parallel links and must be positive.
type Link struct {
	U, V int
	Mult int
}

// Multigraph is the communication graph of a single round: n processes and
// a multiset of undirected links. The zero value is an empty graph on zero
// processes.
type Multigraph struct {
	n int
	// links is the raw insertion-order list; the same (U, V) pair may
	// appear more than once (AddLink is append-only so that graph
	// construction is O(1) per link). Iteration code sums multiplicities,
	// so duplicates are semantically transparent.
	links []Link
	// canon memoizes the canonical (merged, sorted) link list; it is
	// invalidated by AddLink and rebuilt on demand, so the engine's
	// once-per-round traversals don't re-sort.
	canon []Link
	dirty bool
}

// NewMultigraph returns an empty multigraph on n processes.
// It panics if n is negative; a zero-process graph is allowed (and empty).
func NewMultigraph(n int) *Multigraph {
	if n < 0 {
		panic(fmt.Sprintf("dynnet: negative process count %d", n))
	}
	return &Multigraph{n: n}
}

// N returns the number of processes.
func (g *Multigraph) N() int { return g.n }

// AddLink adds a link {u, v} with multiplicity mult. Adding the same pair
// twice accumulates multiplicity. It returns an error if either endpoint is
// out of range or mult is not positive.
func (g *Multigraph) AddLink(u, v, mult int) error {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return fmt.Errorf("dynnet: link {%d,%d} out of range [0,%d)", u, v, g.n)
	}
	if mult <= 0 {
		return fmt.Errorf("dynnet: non-positive multiplicity %d", mult)
	}
	if u > v {
		u, v = v, u
	}
	g.links = append(g.links, Link{U: u, V: v, Mult: mult})
	g.canon = nil
	g.dirty = true
	return nil
}

// MustAddLink is AddLink for construction code with static arguments;
// it panics on error.
func (g *Multigraph) MustAddLink(u, v, mult int) {
	if err := g.AddLink(u, v, mult); err != nil {
		panic(err)
	}
}

// cmpLinks orders links by (U, V); multiplicity does not participate.
func cmpLinks(a, b Link) int {
	if a.U != b.U {
		return a.U - b.U
	}
	return a.V - b.V
}

// canonicalize returns the memoized canonical link list: parallel
// insertions of the same pair merged into one entry, sorted by (U, V). It
// canonicalizes the raw list in place — insertion order is never
// observable, every accessor sums multiplicities, and merging only shrinks
// the list — so a graph's one-time canonicalization allocates nothing.
func (g *Multigraph) canonicalize() []Link {
	if !g.dirty {
		return g.canon
	}
	slices.SortFunc(g.links, cmpLinks)
	merged := g.links[:0]
	for _, l := range g.links {
		if k := len(merged); k > 0 && merged[k-1].U == l.U && merged[k-1].V == l.V {
			merged[k-1].Mult += l.Mult
			continue
		}
		merged = append(merged, l)
	}
	g.links = merged
	g.canon = merged
	g.dirty = false
	return g.canon
}

// Links returns a copy of the link multiset in canonical (U ≤ V, sorted)
// order, with parallel insertions of the same pair merged.
func (g *Multigraph) Links() []Link {
	canon := g.canonicalize()
	out := make([]Link, len(canon))
	copy(out, canon)
	return out
}

// CanonicalLinks is Links without the defensive copy: it returns the
// memoized canonical link list directly. The slice is shared with the
// graph — callers must not modify it. It exists for once-per-round
// traversals in simulation hot loops (the engine router, the history-tree
// oracle), where Links' copy-and-sort dominated profiles.
func (g *Multigraph) CanonicalLinks() []Link {
	return g.canonicalize()
}

// LinkCount returns the total number of links counted with multiplicity.
func (g *Multigraph) LinkCount() int {
	total := 0
	for _, l := range g.links {
		total += l.Mult
	}
	return total
}

// Neighbors returns, for process u, the multiset of neighbors as a map from
// neighbor index to the number of links shared with u. A self-loop {u,u}
// with multiplicity m contributes m to entry u (one message per loop).
func (g *Multigraph) Neighbors(u int) map[int]int {
	out := make(map[int]int)
	for _, l := range g.links {
		switch {
		case l.U == u && l.V == u:
			out[u] += l.Mult
		case l.U == u:
			out[l.V] += l.Mult
		case l.V == u:
			out[l.U] += l.Mult
		}
	}
	return out
}

// Degree returns the number of incident links of u counted with
// multiplicity. A self-loop counts once (one message delivered).
func (g *Multigraph) Degree(u int) int {
	d := 0
	for nb, m := range g.Neighbors(u) {
		_ = nb
		d += m
	}
	return d
}

// Connected reports whether the multigraph is connected. The empty graph
// and single-vertex graph are connected by convention.
func (g *Multigraph) Connected() bool {
	if g.n <= 1 {
		return true
	}
	adj := g.adjacency()
	seen := make([]bool, g.n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range adj[u] {
			if !seen[v] {
				seen[v] = true
				count++
				stack = append(stack, v)
			}
		}
	}
	return count == g.n
}

// Union returns a new multigraph whose link multiset is the union (with
// accumulated multiplicities) of g and h. Both graphs must have the same
// process count.
func (g *Multigraph) Union(h *Multigraph) (*Multigraph, error) {
	if g.n != h.n {
		return nil, fmt.Errorf("dynnet: union of graphs with %d and %d processes", g.n, h.n)
	}
	out := NewMultigraph(g.n)
	for _, l := range g.links {
		if err := out.AddLink(l.U, l.V, l.Mult); err != nil {
			return nil, err
		}
	}
	for _, l := range h.links {
		if err := out.AddLink(l.U, l.V, l.Mult); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// setCanonicalLinks installs a link list that the caller guarantees is
// already canonical: sorted by (U, V), no duplicate pairs, every endpoint
// in range, every multiplicity positive. It exists for generators inside
// this package (see randomConnectedV2) that can emit links in canonical
// order and thereby skip the per-graph sort in simulation hot loops.
func (g *Multigraph) setCanonicalLinks(links []Link) {
	g.links = links
	g.canon = links
	g.dirty = false
}

// Reset reinitializes g in place to an empty graph on n processes, keeping
// the link backing storage for reuse. It is the receiving half of
// InPlaceSchedule.GraphInto. It panics if n is negative.
func (g *Multigraph) Reset(n int) {
	if n < 0 {
		panic(fmt.Sprintf("dynnet: negative process count %d", n))
	}
	g.n = n
	g.links = g.links[:0]
	g.canon = nil
	g.dirty = false
}

// Clone returns a deep copy of g.
func (g *Multigraph) Clone() *Multigraph {
	out := NewMultigraph(g.n)
	out.links = make([]Link, len(g.links))
	copy(out.links, g.links)
	out.dirty = len(out.links) > 0
	return out
}

// String renders the graph as "n=4 {0-1 x2, 2-3}".
func (g *Multigraph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d {", g.n)
	for i, l := range g.Links() {
		if i > 0 {
			b.WriteString(", ")
		}
		if l.Mult == 1 {
			fmt.Fprintf(&b, "%d-%d", l.U, l.V)
		} else {
			fmt.Fprintf(&b, "%d-%d x%d", l.U, l.V, l.Mult)
		}
	}
	b.WriteString("}")
	return b.String()
}

// adjacency builds a simple adjacency list ignoring multiplicities and
// self-loops (sufficient for connectivity).
func (g *Multigraph) adjacency() [][]int {
	adj := make([][]int, g.n)
	for _, l := range g.links {
		if l.U == l.V {
			continue
		}
		adj[l.U] = append(adj[l.U], l.V)
		adj[l.V] = append(adj[l.V], l.U)
	}
	return adj
}

// Path returns the path graph 0-1-…-(n-1).
func Path(n int) *Multigraph {
	g := NewMultigraph(n)
	for i := 0; i+1 < n; i++ {
		g.MustAddLink(i, i+1, 1)
	}
	return g
}

// Cycle returns the cycle graph on n vertices (a double link for n = 2 and
// a double self-loop for n = 1, matching the paper's degenerate cycles C_v).
func Cycle(n int) *Multigraph {
	g := NewMultigraph(n)
	switch n {
	case 0:
	case 1:
		g.MustAddLink(0, 0, 2)
	case 2:
		g.MustAddLink(0, 1, 2)
	default:
		for i := 0; i < n; i++ {
			g.MustAddLink(i, (i+1)%n, 1)
		}
	}
	return g
}

// Complete returns the complete graph K_n.
func Complete(n int) *Multigraph {
	g := NewMultigraph(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.MustAddLink(i, j, 1)
		}
	}
	return g
}

// Star returns the star graph with the given center.
func Star(n, center int) *Multigraph {
	g := NewMultigraph(n)
	for i := 0; i < n; i++ {
		if i != center {
			g.MustAddLink(center, i, 1)
		}
	}
	return g
}
