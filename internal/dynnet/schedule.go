package dynnet

import (
	"fmt"
	"math/rand"
	randv2 "math/rand/v2"
	"slices"
)

// Schedule is a dynamic network: an adversary that produces the
// communication multigraph of every round t ≥ 1. Implementations must be
// deterministic functions of t (randomized adversaries pre-commit via a
// seeded RNG keyed on t) so that runs are reproducible and so that the
// history-tree oracle and the protocol under test observe the same graphs.
type Schedule interface {
	// N returns the number of processes.
	N() int
	// Graph returns the communication multigraph of round t (t ≥ 1).
	Graph(t int) *Multigraph
}

// StaticSchedule repeats a fixed multigraph at every round.
type StaticSchedule struct {
	g *Multigraph
}

var _ Schedule = (*StaticSchedule)(nil)

// NewStatic returns a schedule that presents g at every round.
func NewStatic(g *Multigraph) *StaticSchedule {
	return &StaticSchedule{g: g.Clone()}
}

// N implements Schedule.
func (s *StaticSchedule) N() int { return s.g.N() }

// Graph implements Schedule.
func (s *StaticSchedule) Graph(int) *Multigraph { return s.g.Clone() }

// FuncSchedule adapts a plain function to the Schedule interface.
type FuncSchedule struct {
	n int
	f func(t int) *Multigraph
}

var _ Schedule = (*FuncSchedule)(nil)

// NewFunc returns a schedule backed by f. The function must return a graph
// on exactly n processes for every t ≥ 1.
func NewFunc(n int, f func(t int) *Multigraph) *FuncSchedule {
	return &FuncSchedule{n: n, f: f}
}

// N implements Schedule.
func (s *FuncSchedule) N() int { return s.n }

// Graph implements Schedule.
func (s *FuncSchedule) Graph(t int) *Multigraph { return s.f(t) }

// SequenceSchedule plays a finite list of graphs and then repeats the last
// one forever. It is convenient for reconstructing worked examples such as
// Figure 1 of the paper.
type SequenceSchedule struct {
	graphs []*Multigraph
}

var _ Schedule = (*SequenceSchedule)(nil)

// NewSequence returns a schedule that presents graphs[t-1] at round t and
// the final graph at every later round. All graphs must share a process
// count and the list must be non-empty.
func NewSequence(graphs ...*Multigraph) (*SequenceSchedule, error) {
	if len(graphs) == 0 {
		return nil, fmt.Errorf("dynnet: empty graph sequence")
	}
	n := graphs[0].N()
	cloned := make([]*Multigraph, len(graphs))
	for i, g := range graphs {
		if g.N() != n {
			return nil, fmt.Errorf("dynnet: graph %d has %d processes, want %d", i, g.N(), n)
		}
		cloned[i] = g.Clone()
	}
	return &SequenceSchedule{graphs: cloned}, nil
}

// N implements Schedule.
func (s *SequenceSchedule) N() int { return s.graphs[0].N() }

// Graph implements Schedule.
func (s *SequenceSchedule) Graph(t int) *Multigraph {
	if t < 1 {
		t = 1
	}
	if t > len(s.graphs) {
		t = len(s.graphs)
	}
	return s.graphs[t-1].Clone()
}

// RandomConnectedSchedule presents, at each round, an independently drawn
// connected Erdős–Rényi-style graph: a uniformly random spanning tree plus
// each remaining pair with probability p. Each round's graph is derived
// from the base seed and the round number, so the schedule is a pure
// function of t.
type RandomConnectedSchedule struct {
	n    int
	p    float64
	seed int64
}

var _ Schedule = (*RandomConnectedSchedule)(nil)

// NewRandomConnected returns a random connected schedule on n processes
// with extra-edge probability p ∈ [0, 1].
func NewRandomConnected(n int, p float64, seed int64) *RandomConnectedSchedule {
	return &RandomConnectedSchedule{n: n, p: p, seed: seed}
}

// N implements Schedule.
func (s *RandomConnectedSchedule) N() int { return s.n }

// Graph implements Schedule. The per-round generator is a PCG seeded by
// (seed, t): constructing one is O(1), where re-seeding a classic
// math/rand source costs a 607-word register fill per round — enough to
// dominate the whole simulation hot loop (see the PR 3 scheduler table in
// EXPERIMENTS.md). The schedule remains a pure function of (n, p, seed, t).
func (s *RandomConnectedSchedule) Graph(t int) *Multigraph {
	rng := randv2.New(randv2.NewPCG(uint64(s.seed), uint64(t)))
	return randomConnectedV2(s.n, s.p, rng)
}

// RandomConnected draws one connected graph on n vertices: a random
// spanning tree (random attachment) plus every remaining pair independently
// with probability p.
func RandomConnected(n int, p float64, rng *rand.Rand) *Multigraph {
	g := NewMultigraph(n)
	if n <= 1 {
		return g
	}
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		// Attach perm[i] to a uniformly random earlier vertex: a random
		// recursive tree, which has expected diameter Θ(log n).
		j := perm[rng.Intn(i)]
		g.MustAddLink(perm[i], j, 1)
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.MustAddLink(u, v, 1)
			}
		}
	}
	return g
}

// randomConnectedV2 is RandomConnected driven by a math/rand/v2 generator
// — the hot-loop variant used by RandomConnectedSchedule, whose per-round
// PCG is O(1) to construct (see Graph). It draws the same distribution as
// RandomConnected but emits the links in canonical (U, V) order — the
// extra-edge loop already iterates pairs in order, and the n-1 sorted tree
// edges are merged into that stream — so the graph is born canonical and
// the engine's once-per-round traversal skips the canonicalization sort
// that otherwise shows up in simulation profiles.
func randomConnectedV2(n int, p float64, rng *randv2.Rand) *Multigraph {
	g := NewMultigraph(n)
	if n <= 1 {
		return g
	}
	perm := rng.Perm(n)
	tree := make([]Link, 0, n-1)
	for i := 1; i < n; i++ {
		// Attach perm[i] to a uniformly random earlier vertex: a random
		// recursive tree, which has expected diameter Θ(log n).
		u, v := perm[i], perm[rng.IntN(i)]
		if u > v {
			u, v = v, u
		}
		tree = append(tree, Link{U: u, V: v, Mult: 1})
	}
	slices.SortFunc(tree, cmpLinks)

	links := make([]Link, 0, n-1+int(p*float64(n*(n-1)/2))+4)
	emit := func(l Link) {
		if k := len(links); k > 0 && links[k-1].U == l.U && links[k-1].V == l.V {
			links[k-1].Mult += l.Mult
			return
		}
		links = append(links, l)
	}
	ti := 0
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			for ti < len(tree) && cmpLinks(tree[ti], Link{U: u, V: v}) <= 0 {
				emit(tree[ti])
				ti++
			}
			if rng.Float64() < p {
				emit(Link{U: u, V: v, Mult: 1})
			}
		}
	}
	for ; ti < len(tree); ti++ {
		emit(tree[ti])
	}
	g.setCanonicalLinks(links)
	return g
}

// RotatingStarSchedule presents a star whose center rotates every round.
// Its dynamic diameter is 2, but process degrees change constantly, which
// churns the indistinguishability classes.
type RotatingStarSchedule struct {
	n int
}

var _ Schedule = (*RotatingStarSchedule)(nil)

// NewRotatingStar returns the rotating-star schedule on n processes.
func NewRotatingStar(n int) *RotatingStarSchedule {
	return &RotatingStarSchedule{n: n}
}

// N implements Schedule.
func (s *RotatingStarSchedule) N() int { return s.n }

// Graph implements Schedule.
func (s *RotatingStarSchedule) Graph(t int) *Multigraph {
	if s.n == 0 {
		return NewMultigraph(0)
	}
	return Star(s.n, t%s.n)
}

// ShiftingPathSchedule presents a path over a permutation of the processes
// that rotates each round. Paths have dynamic diameter Θ(n): the slowest
// reasonable topology, which stresses DiamEstimate doubling.
type ShiftingPathSchedule struct {
	n int
}

var _ Schedule = (*ShiftingPathSchedule)(nil)

// NewShiftingPath returns the shifting-path schedule on n processes.
func NewShiftingPath(n int) *ShiftingPathSchedule {
	return &ShiftingPathSchedule{n: n}
}

// N implements Schedule.
func (s *ShiftingPathSchedule) N() int { return s.n }

// Graph implements Schedule.
func (s *ShiftingPathSchedule) Graph(t int) *Multigraph {
	g := NewMultigraph(s.n)
	if s.n <= 1 {
		return g
	}
	for i := 0; i+1 < s.n; i++ {
		u := (i + t) % s.n
		v := (i + 1 + t) % s.n
		g.MustAddLink(u, v, 1)
	}
	return g
}

// BottleneckSchedule joins two cliques by a single bridge whose endpoint
// pair rotates each round. Information crosses the bridge one round at a
// time, producing large effective diameters relative to edge density.
type BottleneckSchedule struct {
	n int
}

var _ Schedule = (*BottleneckSchedule)(nil)

// NewBottleneck returns the two-clique bottleneck schedule on n processes
// (n ≥ 2).
func NewBottleneck(n int) *BottleneckSchedule {
	return &BottleneckSchedule{n: n}
}

// N implements Schedule.
func (s *BottleneckSchedule) N() int { return s.n }

// Graph implements Schedule.
func (s *BottleneckSchedule) Graph(t int) *Multigraph {
	g := NewMultigraph(s.n)
	if s.n <= 1 {
		return g
	}
	half := s.n / 2
	for i := 0; i < half; i++ {
		for j := i + 1; j < half; j++ {
			g.MustAddLink(i, j, 1)
		}
	}
	for i := half; i < s.n; i++ {
		for j := i + 1; j < s.n; j++ {
			g.MustAddLink(i, j, 1)
		}
	}
	// One rotating bridge link.
	left := t % half
	right := half + t%(s.n-half)
	g.MustAddLink(left, right, 1)
	return g
}

// UnionConnectedSchedule wraps an inner connected schedule so that the
// network is only T-union-connected: the links of each inner round are
// partitioned across T consecutive real rounds (round-robin by link index),
// so no single round need be connected, but the union of any T consecutive
// rounds contains a full inner graph.
type UnionConnectedSchedule struct {
	inner Schedule
	t     int
}

var _ Schedule = (*UnionConnectedSchedule)(nil)

// NewUnionConnected returns a T-union-connected schedule derived from
// inner. T must be positive.
func NewUnionConnected(inner Schedule, t int) (*UnionConnectedSchedule, error) {
	if t <= 0 {
		return nil, fmt.Errorf("dynnet: non-positive disconnectivity T=%d", t)
	}
	return &UnionConnectedSchedule{inner: inner, t: t}, nil
}

// N implements Schedule.
func (s *UnionConnectedSchedule) N() int { return s.inner.N() }

// T returns the dynamic disconnectivity of the schedule.
func (s *UnionConnectedSchedule) T() int { return s.t }

// Graph implements Schedule.
func (s *UnionConnectedSchedule) Graph(t int) *Multigraph {
	block := (t-1)/s.t + 1 // inner round index
	phase := (t - 1) % s.t // which slice of the block this round carries
	full := s.inner.Graph(block)
	g := NewMultigraph(full.N())
	for i, l := range full.CanonicalLinks() {
		if i%s.t == phase {
			g.MustAddLink(l.U, l.V, l.Mult)
		}
	}
	return g
}

// UnionConnected reports whether the union of graphs of rounds
// [from, from+window) under s is connected.
func UnionConnected(s Schedule, from, window int) (bool, error) {
	if window <= 0 {
		return false, fmt.Errorf("dynnet: non-positive window %d", window)
	}
	acc := s.Graph(from)
	for t := from + 1; t < from+window; t++ {
		next, err := acc.Union(s.Graph(t))
		if err != nil {
			return false, err
		}
		acc = next
	}
	return acc.Connected(), nil
}
