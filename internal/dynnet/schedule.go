package dynnet

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	randv2 "math/rand/v2"
	"slices"
	"sync"
)

// Schedule is a dynamic network: an adversary that produces the
// communication multigraph of every round t ≥ 1. Implementations must be
// deterministic functions of t (randomized adversaries pre-commit via a
// seeded RNG keyed on t) so that runs are reproducible and so that the
// history-tree oracle and the protocol under test observe the same graphs.
type Schedule interface {
	// N returns the number of processes.
	N() int
	// Graph returns the communication multigraph of round t (t ≥ 1).
	Graph(t int) *Multigraph
}

// InPlaceSchedule is an optional Schedule extension for allocation-free
// round generation: GraphInto computes the round-t multigraph into g,
// resetting it and reusing its backing storage, with a result identical to
// Graph(t). The engine's router uses it when available, so a steady-state
// simulation round allocates nothing for its communication graph; callers
// that retain graphs across rounds must keep using Graph.
type InPlaceSchedule interface {
	Schedule
	// GraphInto computes the round-t multigraph into g (t ≥ 1).
	GraphInto(t int, g *Multigraph)
}

// StaticSchedule repeats a fixed multigraph at every round.
type StaticSchedule struct {
	g *Multigraph
}

var _ InPlaceSchedule = (*StaticSchedule)(nil)

// NewStatic returns a schedule that presents g at every round.
func NewStatic(g *Multigraph) *StaticSchedule {
	return &StaticSchedule{g: g.Clone()}
}

// N implements Schedule.
func (s *StaticSchedule) N() int { return s.g.N() }

// Graph implements Schedule.
func (s *StaticSchedule) Graph(int) *Multigraph { return s.g.Clone() }

// GraphInto implements InPlaceSchedule: the fixed graph copied into g's
// reused storage. The copy is installed pre-canonicalized, so a static
// simulation round neither allocates nor re-sorts.
func (s *StaticSchedule) GraphInto(_ int, g *Multigraph) {
	src := s.g.canonicalize()
	g.Reset(s.g.n)
	g.setCanonicalLinks(append(g.links, src...))
}

// FuncSchedule adapts a plain function to the Schedule interface.
type FuncSchedule struct {
	n int
	f func(t int) *Multigraph
}

var _ Schedule = (*FuncSchedule)(nil)

// NewFunc returns a schedule backed by f. The function must return a graph
// on exactly n processes for every t ≥ 1.
func NewFunc(n int, f func(t int) *Multigraph) *FuncSchedule {
	return &FuncSchedule{n: n, f: f}
}

// N implements Schedule.
func (s *FuncSchedule) N() int { return s.n }

// Graph implements Schedule.
func (s *FuncSchedule) Graph(t int) *Multigraph { return s.f(t) }

// SequenceSchedule plays a finite list of graphs and then repeats the last
// one forever. It is convenient for reconstructing worked examples such as
// Figure 1 of the paper.
type SequenceSchedule struct {
	graphs []*Multigraph
}

var _ Schedule = (*SequenceSchedule)(nil)

// NewSequence returns a schedule that presents graphs[t-1] at round t and
// the final graph at every later round. All graphs must share a process
// count and the list must be non-empty.
func NewSequence(graphs ...*Multigraph) (*SequenceSchedule, error) {
	if len(graphs) == 0 {
		return nil, fmt.Errorf("dynnet: empty graph sequence")
	}
	n := graphs[0].N()
	cloned := make([]*Multigraph, len(graphs))
	for i, g := range graphs {
		if g.N() != n {
			return nil, fmt.Errorf("dynnet: graph %d has %d processes, want %d", i, g.N(), n)
		}
		cloned[i] = g.Clone()
	}
	return &SequenceSchedule{graphs: cloned}, nil
}

// N implements Schedule.
func (s *SequenceSchedule) N() int { return s.graphs[0].N() }

// Graph implements Schedule.
func (s *SequenceSchedule) Graph(t int) *Multigraph {
	if t < 1 {
		t = 1
	}
	if t > len(s.graphs) {
		t = len(s.graphs)
	}
	return s.graphs[t-1].Clone()
}

// RandomConnectedSchedule presents, at each round, an independently drawn
// connected Erdős–Rényi-style graph: a uniformly random spanning tree plus
// each remaining pair with probability p. Each round's graph is derived
// from the base seed and the round number, so the schedule is a pure
// function of t.
type RandomConnectedSchedule struct {
	n    int
	p    float64
	seed int64
}

var _ InPlaceSchedule = (*RandomConnectedSchedule)(nil)

// NewRandomConnected returns a random connected schedule on n processes
// with extra-edge probability p ∈ [0, 1].
func NewRandomConnected(n int, p float64, seed int64) *RandomConnectedSchedule {
	return &RandomConnectedSchedule{n: n, p: p, seed: seed}
}

// N implements Schedule.
func (s *RandomConnectedSchedule) N() int { return s.n }

// Graph implements Schedule. The per-round generator is a PCG seeded by
// (seed, t): constructing one is O(1), where re-seeding a classic
// math/rand source costs a 607-word register fill per round — enough to
// dominate the whole simulation hot loop (see the PR 3 scheduler table in
// EXPERIMENTS.md). The schedule remains a pure function of (n, p, seed, t).
func (s *RandomConnectedSchedule) Graph(t int) *Multigraph {
	g := NewMultigraph(s.n)
	s.GraphInto(t, g)
	return g
}

// GraphInto implements InPlaceSchedule: the same graph as Graph(t), built
// into g's reused storage.
func (s *RandomConnectedSchedule) GraphInto(t int, g *Multigraph) {
	// The generator pair (PCG state + Rand wrapper) is pooled: Seed fully
	// resets the PCG, so a recycled generator is indistinguishable from a
	// fresh one, and the simulation's once-per-round Graph call stops
	// paying two heap allocations for a 2-word state struct.
	b := rngPool.Get().(*rngBuf)
	b.pcg.Seed(uint64(s.seed), uint64(t))
	randomConnectedV2Into(g, s.n, s.p, &b.pcg)
	rngPool.Put(b)
}

// rngBuf holds a pooled PCG so the once-per-round reseed reuses its state
// struct instead of heap-allocating one.
type rngBuf struct {
	pcg randv2.PCG
}

var rngPool = sync.Pool{New: func() any { return &rngBuf{} }}

// pcgUint64N is math/rand/v2's Rand.uint64n on a concrete PCG source: a
// Lemire scaled multiply whose rejection loop near-never runs.
// Devirtualizing the source saves an interface dispatch per draw (~n²/2
// draws per simulated round), and pinning the reduction here keeps the
// schedule stream locked in-repo. The stdlib's 32-bit variant documents
// that it preserves this exact 64-bit output sequence, so one replica
// covers all platforms.
func pcgUint64N(pcg *randv2.PCG, n uint64) uint64 {
	if n&(n-1) == 0 { // n is a power of two, can mask
		return pcg.Uint64() & (n - 1)
	}
	hi, lo := bits.Mul64(pcg.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(pcg.Uint64(), n)
		}
	}
	return hi
}

// RandomConnected draws one connected graph on n vertices: a random
// spanning tree (random attachment) plus every remaining pair independently
// with probability p.
func RandomConnected(n int, p float64, rng *rand.Rand) *Multigraph {
	g := NewMultigraph(n)
	if n <= 1 {
		return g
	}
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		// Attach perm[i] to a uniformly random earlier vertex: a random
		// recursive tree, which has expected diameter Θ(log n).
		j := perm[rng.Intn(i)]
		g.MustAddLink(perm[i], j, 1)
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.MustAddLink(u, v, 1)
			}
		}
	}
	return g
}

// randomConnectedV2Into is RandomConnected driven by a math/rand/v2 PCG —
// the hot-loop generator behind RandomConnectedSchedule, whose per-round
// PCG is O(1) to reseed (see Graph). It draws the same distribution as
// RandomConnected but emits the links in canonical (U, V) order — the
// extra-edge loop already iterates pairs in order, and the n-1 tree edges
// are merged into that stream — so the graph is born canonical and the
// engine's once-per-round traversal skips the canonicalization sort that
// otherwise shows up in simulation profiles. It builds into g's reused
// storage: g is reset to n processes and its link backing array is
// refilled, so a router that round-robins one graph buffer allocates
// nothing per round.
func randomConnectedV2Into(g *Multigraph, n int, p float64, pcg *randv2.PCG) {
	g.Reset(n)
	if n <= 1 {
		return
	}
	// perm and tree are pooled scratch: one Graph call runs per round per
	// simulation, so the pool converges to a handful of buffers and the
	// per-round generator allocates only what escapes into g (nothing, once
	// g's backing has converged). The permutation is drawn by filling
	// 0..n-1 and shuffling — consuming the identical random stream as
	// rng.Perm(n), which is specified (and tested, see
	// TestPermMatchesFillShuffle) to do exactly that — so every previously
	// recorded schedule is reproduced bit-for-bit.
	buf := rcScratch.Get().(*rcBuf)
	perm := buf.perm[:0]
	for i := 0; i < n; i++ {
		perm = append(perm, i)
	}
	// Manual Fisher–Yates: rand/v2 specifies Shuffle as j := uint64n(i+1)
	// for i = n-1 … 1, and pcgUint64N replicates uint64n — so this loop
	// consumes the same stream as rng.Shuffle (and hence rng.Perm) while
	// skipping the per-swap closure dispatch.
	for i := n - 1; i > 0; i-- {
		j := int(pcgUint64N(pcg, uint64(i+1)))
		perm[i], perm[j] = perm[j], perm[i]
	}
	// Float64() is (Uint64()>>11)·2⁻⁵³ with both steps exact (power-of-two
	// scalings), so Float64() < p ⟺ Uint64()>>11 < p·2⁵³ in real
	// arithmetic; pThr = ceil(p·2⁵³) makes that one integer compare per
	// candidate edge while consuming the identical random stream.
	pThr := uint64(math.Ceil(p * (1 << 53)))
	links := g.links[:0]
	if n <= 64 {
		// Bitmask dense path: multiplicities accumulate in an n×n
		// upper-triangular scratch matrix and per-row occupancy bitmasks
		// record which cells are live. The emit pass then visits only the
		// live cells (TrailingZeros64 over each row mask) and zeroes them
		// as it reads — restoring the pool invariant that mat is all-zero
		// between calls, with no bulk memclr and no empty-cell scanning.
		if cap(buf.mat) < n*n {
			buf.mat = make([]int, n*n) // zeroed; emit re-zeroes what it uses
		} else {
			buf.mat = buf.mat[:n*n]
		}
		mat := buf.mat
		rows := &buf.rows
		for i := 1; i < n; i++ {
			// Attach perm[i] to a uniformly random earlier vertex: a random
			// recursive tree, which has expected diameter Θ(log n).
			u, v := perm[i], perm[int(pcgUint64N(pcg, uint64(i)))]
			if u > v {
				u, v = v, u
			}
			mat[u*n+v]++
			rows[u] |= 1 << uint(v)
		}
		// Extra edges are drawn pair-by-pair in canonical order — the same
		// RNG consumption order as the sparse path and the original
		// RandomConnected.
		for u := 0; u < n; u++ {
			base := u * n
			for v := u + 1; v < n; v++ {
				if pcg.Uint64()<<11>>11 < pThr {
					mat[base+v]++
					rows[u] |= 1 << uint(v)
				}
			}
		}
		cnt := 0
		for u := 0; u < n; u++ {
			cnt += bits.OnesCount64(rows[u])
		}
		if cap(links) < cnt {
			links = make([]Link, 0, cnt)
		}
		for u := 0; u < n; u++ {
			base := u * n
			m := rows[u]
			for m != 0 {
				v := bits.TrailingZeros64(m)
				m &= m - 1
				links = append(links, Link{U: u, V: v, Mult: mat[base+v]})
				mat[base+v] = 0
			}
			rows[u] = 0
		}
		buf.perm = perm
		rcScratch.Put(buf)
		g.setCanonicalLinks(links)
		return
	}
	if n <= rcMatrixMaxN {
		// Masked dense path (64 < n ≤ 256): ⌈n/64⌉ occupancy words per row
		// instead of the n ≤ 64 path's single word, and two mask planes —
		// tmask for the n−1 tree edges (whose multiplicities live in mat)
		// and bmask for the Bernoulli extras (always multiplicity 1, so a
		// bit is the whole record). The Bernoulli loop — n(n−1)/2 draws per
		// round, the generator's hot loop — therefore touches no memory at
		// all between word boundaries: each hit is folded into a register
		// accumulator branchlessly (the ~30%-taken branch has no pattern,
		// and a mispredict stalls the serial PCG chain). The emit pass
		// walks only the set bits of the union, so it visits ~|E| cells
		// instead of scanning the full triangle. mat, tmask and bmask are
		// all restored to zero by the emit pass, keeping the pool
		// invariant.
		w := (n + 63) >> 6
		if cap(buf.mat) < n*n {
			buf.mat = make([]int, n*n)
		} else {
			buf.mat = buf.mat[:n*n]
		}
		if cap(buf.mask) < 2*n*w {
			buf.mask = make([]uint64, 2*n*w)
		} else {
			buf.mask = buf.mask[:2*n*w]
		}
		mat := buf.mat
		tmask := buf.mask[:n*w]
		bmask := buf.mask[n*w : 2*n*w]
		for i := 1; i < n; i++ {
			// Attach perm[i] to a uniformly random earlier vertex: a random
			// recursive tree, which has expected diameter Θ(log n).
			u, v := perm[i], perm[int(pcgUint64N(pcg, uint64(i)))]
			if u > v {
				u, v = v, u
			}
			mat[u*n+v]++
			tmask[u*w+v>>6] |= 1 << uint(v&63)
		}
		// The Bernoulli section draws n(n−1)/2 values from a serial
		// dependency chain; lifting the PCG's 128-bit state into locals for
		// its duration keeps the chain entirely in registers (the method
		// form reloads and stores the heap state every draw). localPCG
		// replicates rand/v2's step bit-for-bit — the equivalence tests
		// that replay schedules through rand/v2 itself would catch any
		// divergence, including an upstream algorithm change.
		st := extractPCG(pcg)
		for u := 0; u < n; u++ {
			brow := bmask[u*w : u*w+w]
			for v := u + 1; v < n; {
				wi := v >> 6
				end := (wi + 1) << 6
				if end > n {
					end = n
				}
				var acc uint64
				for ; v < end; v++ {
					var hit uint64
					if st.uint64()<<11>>11 < pThr {
						hit = 1
					}
					acc |= hit << uint(v&63)
				}
				brow[wi] = acc
			}
		}
		pcg.Seed(st.hi, st.lo)
		cnt := 0
		for i := range tmask {
			cnt += bits.OnesCount64(tmask[i] | bmask[i])
		}
		if cap(links) < cnt {
			links = make([]Link, 0, cnt)
		}
		for u := 0; u < n; u++ {
			base := u * n
			mb := u * w
			for wi := 0; wi < w; wi++ {
				tm, bm := tmask[mb+wi], bmask[mb+wi]
				m := tm | bm
				if m == 0 {
					continue
				}
				tmask[mb+wi], bmask[mb+wi] = 0, 0
				vb := wi << 6
				for m != 0 {
					tz := uint(bits.TrailingZeros64(m))
					m &= m - 1
					v := vb + int(tz)
					mult := int(bm >> tz & 1)
					if tm>>tz&1 != 0 {
						mult += mat[base+v]
						mat[base+v] = 0
					}
					links = append(links, Link{U: u, V: v, Mult: mult})
				}
			}
		}
		buf.perm = perm
		rcScratch.Put(buf)
		g.setCanonicalLinks(links)
		return
	}

	tree := buf.tree[:0]
	for i := 1; i < n; i++ {
		// Attach perm[i] to a uniformly random earlier vertex: a random
		// recursive tree, which has expected diameter Θ(log n).
		u, v := perm[i], perm[int(pcgUint64N(pcg, uint64(i)))]
		if u > v {
			u, v = v, u
		}
		tree = append(tree, Link{U: u, V: v, Mult: 1})
	}
	slices.SortFunc(tree, cmpLinks)

	if c := n - 1 + int(p*float64(n*(n-1)/2)) + 4; cap(links) < c {
		links = make([]Link, 0, c)
	}
	emit := func(l Link) {
		if k := len(links); k > 0 && links[k-1].U == l.U && links[k-1].V == l.V {
			links[k-1].Mult += l.Mult
			return
		}
		links = append(links, l)
	}
	ti := 0
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			for ti < len(tree) && cmpLinks(tree[ti], Link{U: u, V: v}) <= 0 {
				emit(tree[ti])
				ti++
			}
			if pcg.Uint64()<<11>>11 < pThr {
				emit(Link{U: u, V: v, Mult: 1})
			}
		}
	}
	for ; ti < len(tree); ti++ {
		emit(tree[ti])
	}
	buf.perm, buf.tree = perm, tree
	rcScratch.Put(buf)
	g.setCanonicalLinks(links)
}

// rcMatrixMaxN bounds the dense-matrix fast path of randomConnectedV2Into
// (the pooled scratch matrix costs n² words).
const rcMatrixMaxN = 256

// localPCG is a register-resident copy of math/rand/v2's PCG: the same
// 128-bit LCG step and DXSM output function, operated on locals so a tight
// draw loop never touches the heap state. Extract with extractPCG, run the
// draws, and write the state back with pcg.Seed(st.hi, st.lo) — Seed
// assigns the raw state words, so the round trip is exact. The constants
// and step mirror $GOROOT/src/math/rand/v2/pcg.go; the schedule-replay
// tests (TestRandomConnectedScheduleBornCanonical and the fuzzer) compare
// whole graphs against draws made by rand/v2 itself, so any divergence —
// ours or upstream's — fails loudly.
type localPCG struct{ hi, lo uint64 }

// extractPCG reads p's state via its binary encoding ("pcg:" + big-endian
// hi, lo), the only exported window into it.
func extractPCG(p *randv2.PCG) localPCG {
	var b [20]byte
	buf, err := p.AppendBinary(b[:0])
	if err != nil || len(buf) != 20 {
		panic("dynnet: unexpected PCG encoding")
	}
	return localPCG{
		hi: binary.BigEndian.Uint64(buf[4:]),
		lo: binary.BigEndian.Uint64(buf[12:]),
	}
}

// uint64 is rand/v2 (*PCG).Uint64 on local state.
func (s *localPCG) uint64() uint64 {
	const (
		mulHi = 2549297995355413924
		mulLo = 4865540595714422341
		incHi = 6364136223846793005
		incLo = 1442695040888963407
	)
	hi, lo := bits.Mul64(s.lo, mulLo)
	hi += s.hi*mulLo + s.lo*mulHi
	lo, c := bits.Add64(lo, incLo, 0)
	hi, _ = bits.Add64(hi, incHi, c)
	s.lo, s.hi = lo, hi
	const cheapMul = 0xda942042e4dd58b5
	out := hi ^ hi>>32
	out *= cheapMul
	out ^= out >> 48
	out *= lo | 1
	return out
}

// rcBuf is the reusable scratch of one randomConnectedV2Into call. Only the
// buffers that do not escape into the graph live here; the links slice
// belongs to the target Multigraph. Invariant between calls: mat is
// all-zero and rows is all-zero (each emit pass restores what it used), so
// no per-call clear is needed.
type rcBuf struct {
	perm []int
	tree []Link
	mat  []int      // n×n multiplicity matrix of the dense paths
	rows [64]uint64 // per-row occupancy masks of the bitmask path (n ≤ 64)
	mask []uint64   // 2×n×⌈n/64⌉ words: tree + Bernoulli planes of the masked dense path
}

var rcScratch = sync.Pool{New: func() any { return new(rcBuf) }}

// RotatingStarSchedule presents a star whose center rotates every round.
// Its dynamic diameter is 2, but process degrees change constantly, which
// churns the indistinguishability classes.
type RotatingStarSchedule struct {
	n int
}

var _ Schedule = (*RotatingStarSchedule)(nil)

// NewRotatingStar returns the rotating-star schedule on n processes.
func NewRotatingStar(n int) *RotatingStarSchedule {
	return &RotatingStarSchedule{n: n}
}

// N implements Schedule.
func (s *RotatingStarSchedule) N() int { return s.n }

// Graph implements Schedule.
func (s *RotatingStarSchedule) Graph(t int) *Multigraph {
	if s.n == 0 {
		return NewMultigraph(0)
	}
	return Star(s.n, t%s.n)
}

// ShiftingPathSchedule presents a path over a permutation of the processes
// that rotates each round. Paths have dynamic diameter Θ(n): the slowest
// reasonable topology, which stresses DiamEstimate doubling.
type ShiftingPathSchedule struct {
	n int
}

var _ Schedule = (*ShiftingPathSchedule)(nil)

// NewShiftingPath returns the shifting-path schedule on n processes.
func NewShiftingPath(n int) *ShiftingPathSchedule {
	return &ShiftingPathSchedule{n: n}
}

// N implements Schedule.
func (s *ShiftingPathSchedule) N() int { return s.n }

// Graph implements Schedule.
func (s *ShiftingPathSchedule) Graph(t int) *Multigraph {
	g := NewMultigraph(s.n)
	if s.n <= 1 {
		return g
	}
	for i := 0; i+1 < s.n; i++ {
		u := (i + t) % s.n
		v := (i + 1 + t) % s.n
		g.MustAddLink(u, v, 1)
	}
	return g
}

// BottleneckSchedule joins two cliques by a single bridge whose endpoint
// pair rotates each round. Information crosses the bridge one round at a
// time, producing large effective diameters relative to edge density.
type BottleneckSchedule struct {
	n int
}

var _ Schedule = (*BottleneckSchedule)(nil)

// NewBottleneck returns the two-clique bottleneck schedule on n processes
// (n ≥ 2).
func NewBottleneck(n int) *BottleneckSchedule {
	return &BottleneckSchedule{n: n}
}

// N implements Schedule.
func (s *BottleneckSchedule) N() int { return s.n }

// Graph implements Schedule.
func (s *BottleneckSchedule) Graph(t int) *Multigraph {
	g := NewMultigraph(s.n)
	if s.n <= 1 {
		return g
	}
	half := s.n / 2
	for i := 0; i < half; i++ {
		for j := i + 1; j < half; j++ {
			g.MustAddLink(i, j, 1)
		}
	}
	for i := half; i < s.n; i++ {
		for j := i + 1; j < s.n; j++ {
			g.MustAddLink(i, j, 1)
		}
	}
	// One rotating bridge link.
	left := t % half
	right := half + t%(s.n-half)
	g.MustAddLink(left, right, 1)
	return g
}

// UnionConnectedSchedule wraps an inner connected schedule so that the
// network is only T-union-connected: the links of each inner round are
// partitioned across T consecutive real rounds (round-robin by link index),
// so no single round need be connected, but the union of any T consecutive
// rounds contains a full inner graph.
type UnionConnectedSchedule struct {
	inner Schedule
	t     int
}

var _ Schedule = (*UnionConnectedSchedule)(nil)

// NewUnionConnected returns a T-union-connected schedule derived from
// inner. T must be positive.
func NewUnionConnected(inner Schedule, t int) (*UnionConnectedSchedule, error) {
	if t <= 0 {
		return nil, fmt.Errorf("dynnet: non-positive disconnectivity T=%d", t)
	}
	return &UnionConnectedSchedule{inner: inner, t: t}, nil
}

// N implements Schedule.
func (s *UnionConnectedSchedule) N() int { return s.inner.N() }

// T returns the dynamic disconnectivity of the schedule.
func (s *UnionConnectedSchedule) T() int { return s.t }

// Graph implements Schedule.
func (s *UnionConnectedSchedule) Graph(t int) *Multigraph {
	block := (t-1)/s.t + 1 // inner round index
	phase := (t - 1) % s.t // which slice of the block this round carries
	full := s.inner.Graph(block)
	g := NewMultigraph(full.N())
	for i, l := range full.CanonicalLinks() {
		if i%s.t == phase {
			g.MustAddLink(l.U, l.V, l.Mult)
		}
	}
	return g
}

// UnionConnected reports whether the union of graphs of rounds
// [from, from+window) under s is connected.
func UnionConnected(s Schedule, from, window int) (bool, error) {
	if window <= 0 {
		return false, fmt.Errorf("dynnet: non-positive window %d", window)
	}
	acc := s.Graph(from)
	for t := from + 1; t < from+window; t++ {
		next, err := acc.Union(s.Graph(t))
		if err != nil {
			return false, err
		}
		acc = next
	}
	return acc.Connected(), nil
}
