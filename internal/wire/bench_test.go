package wire

import "testing"

func BenchmarkEncode(b *testing.B) {
	m := Edge(1234, 5678, 3)
	var buf []byte
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = m.Encode(buf[:0])
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	buf, err := Edge(1234, 5678, 3).Encode(nil)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSizeBits(b *testing.B) {
	m := Reset(12, 100000, 64)
	for i := 0; i < b.N; i++ {
		if SizeBits(m) == 0 {
			b.Fatal("zero size")
		}
	}
}
