// Package wire defines the concrete wire format of the congested protocol's
// messages and measures their size in bits.
//
// Section 3.2 of the paper specifies that every message consists of a
// constant-size label plus at most three integer parameters, and Corollary
// 4.9 argues that all parameters stay polynomial in n, so messages fit in
// O(log n) bits. This package makes that concrete: messages are encoded as
// one label byte followed by the unsigned varint encodings of their
// parameters, and SizeBits reports the exact encoded size, which the engine
// uses for congestion accounting and limit enforcement.
package wire

import (
	"encoding/binary"
	"fmt"
)

// Label identifies the message type. The numeric order of labels is NOT the
// broadcast priority (see package core for the priority relation); labels
// merely tag the wire format.
type Label uint8

// Message labels, covering Section 3.2 plus the Section 5 extensions
// (Input messages build level 0 for Generalized Counting; Halt messages
// implement simultaneous termination).
const (
	LabelNull Label = iota + 1
	LabelBegin
	LabelEnd
	LabelDone
	LabelEdge
	LabelError
	LabelReset
	LabelInput
	LabelHalt
	LabelEdgeBatch
)

// String implements fmt.Stringer.
func (l Label) String() string {
	switch l {
	case LabelNull:
		return "Null"
	case LabelBegin:
		return "Begin"
	case LabelEnd:
		return "End"
	case LabelDone:
		return "Done"
	case LabelEdge:
		return "Edge"
	case LabelError:
		return "Error"
	case LabelReset:
		return "Reset"
	case LabelInput:
		return "Input"
	case LabelHalt:
		return "Halt"
	case LabelEdgeBatch:
		return "EdgeBatch"
	default:
		return fmt.Sprintf("Label(%d)", uint8(l))
	}
}

// Message is one protocol message: a label and at most three integer
// parameters whose meaning depends on the label:
//
//	Null:  —
//	Begin: A = sender's ID
//	End:   —
//	Done:  A = ID
//	Edge:  A = ID1, B = ID2, C = Mult
//	Error: A = ErrorLevel
//	Reset: A = ResetLevel, B = StartingRound, C = NewDiam
//	Input: A = ID1 (the L0 class ID claiming the input), B = input value,
//	       C = 1 if the sender is the leader
//	Halt:  A = n, B = final round
//
// All parameters are non-negative except Input's B, which carries an
// arbitrary input value (zig-zag encoded).
type Message struct {
	Label   Label
	A, B, C int64
	// Ext carries the batched follow-up (ID2, Mult) pairs of an EdgeBatch
	// message, pre-encoded as interleaved zig-zag varints (the Section 6
	// message-size/running-time tradeoff). It is empty for every other
	// label — plain Edge messages pay no batching overhead on the wire.
	// Keeping it a string preserves the comparability of Message values,
	// which the acknowledgment protocol relies on.
	Ext string
}

// Equal reports a == b, spelled out field by field so the comparison
// inlines at simulation hot-path call sites. The string field keeps the
// compiler from reducing whole-struct equality to a memequal, so the plain
// == operator compiles to a call of the generated equality function —
// measurable when priority broadcast compares every delivery against the
// held message each round. Integer fields are checked first: they decide
// almost every unequal pair, and for equal pairs Ext is nearly always
// empty, making the string comparison a pair of zero-length checks.
func Equal(a, b Message) bool {
	return a.Label == b.Label && a.A == b.A && a.B == b.B && a.C == b.C &&
		a.Ext == b.Ext
}

// FromBox extracts a Message from an engine delivery box. The simulation
// boxes *Message pointers — a direct-interface type, so the assert is a
// pointer load instead of a 48-byte struct copy — but stub transports in
// tests and external engine users may still deliver value boxes, so both
// forms are accepted.
func FromBox(box any) (Message, bool) {
	switch m := box.(type) {
	case *Message:
		return *m, true
	case Message:
		return m, true
	}
	return Message{}, false
}

// EdgePair is one batched observation: the pair (ID2, Mult) of an ObsList
// entry.
type EdgePair struct {
	ID2, Mult int64
}

// EdgeBatch returns an Edge message whose first triplet is
// (id1, pairs[0].ID2, pairs[0].Mult) and whose Ext carries the remaining
// pairs. pairs must be non-empty.
func EdgeBatch(id1 int64, pairs []EdgePair) (Message, error) {
	if len(pairs) == 0 {
		return Message{}, fmt.Errorf("wire: empty edge batch")
	}
	m := Edge(id1, pairs[0].ID2, pairs[0].Mult)
	if len(pairs) == 1 {
		return m, nil
	}
	m.Label = LabelEdgeBatch
	var buf []byte
	for _, p := range pairs[1:] {
		buf = binary.AppendVarint(buf, p.ID2)
		buf = binary.AppendVarint(buf, p.Mult)
	}
	m.Ext = string(buf)
	return m, nil
}

// ExtPairs decodes the batched follow-up pairs of an Edge message
// (excluding the leading triplet). It returns nil for an unbatched edge.
func (m Message) ExtPairs() ([]EdgePair, error) {
	if len(m.Ext) == 0 {
		return nil, nil
	}
	buf := []byte(m.Ext)
	var out []EdgePair
	for len(buf) > 0 {
		id2, k := binary.Varint(buf)
		if k <= 0 {
			return nil, fmt.Errorf("wire: truncated batch ID2")
		}
		buf = buf[k:]
		mult, k := binary.Varint(buf)
		if k <= 0 {
			return nil, fmt.Errorf("wire: truncated batch Mult")
		}
		buf = buf[k:]
		out = append(out, EdgePair{ID2: id2, Mult: mult})
	}
	return out, nil
}

// Constructors, mirroring the pseudocode's message creation sites.

// Null returns the lowest-priority filler message.
func Null() Message { return Message{Label: LabelNull} }

// Begin returns a level-begin message carrying the sender's ID.
func Begin(id int64) Message { return Message{Label: LabelBegin, A: id} }

// End returns a level-end message.
func End() Message { return Message{Label: LabelEnd} }

// Done returns a done message for the given ID.
func Done(id int64) Message { return Message{Label: LabelDone, A: id} }

// Edge returns a red-edge message for the triplet (id1, id2, mult).
func Edge(id1, id2, mult int64) Message {
	return Message{Label: LabelEdge, A: id1, B: id2, C: mult}
}

// Error returns an error message for the given level.
func Error(level int64) Message { return Message{Label: LabelError, A: level} }

// Reset returns a reset message (Listing 6, MakeResetMessage).
func Reset(level, startingRound, newDiam int64) Message {
	return Message{Label: LabelReset, A: level, B: startingRound, C: newDiam}
}

// Input returns a level-0 input-claim message (Section 5, General
// computation).
func Input(id, value int64, leader bool) Message {
	c := int64(0)
	if leader {
		c = 1
	}
	return Message{Label: LabelInput, A: id, B: value, C: c}
}

// Halt returns a simultaneous-termination message (Section 5).
func Halt(n, finalRound int64) Message { return Message{Label: LabelHalt, A: n, B: finalRound} }

// String renders the message for logs and test failures.
func (m Message) String() string {
	switch m.Label {
	case LabelNull, LabelEnd:
		return m.Label.String()
	case LabelBegin, LabelDone, LabelError:
		return fmt.Sprintf("%s(%d)", m.Label, m.A)
	default:
		return fmt.Sprintf("%s(%d,%d,%d)", m.Label, m.A, m.B, m.C)
	}
}

// arity returns how many parameters each label encodes.
func (l Label) arity() int {
	switch l {
	case LabelNull, LabelEnd:
		return 0
	case LabelBegin, LabelDone, LabelError:
		return 1
	case LabelHalt:
		return 2
	case LabelEdge, LabelReset, LabelInput, LabelEdgeBatch:
		return 3
	default:
		return -1
	}
}

// Encode appends the wire encoding of m to buf and returns the result:
// one label byte followed by the varint parameters (zig-zag, so the
// occasional negative input value is legal).
func (m Message) Encode(buf []byte) ([]byte, error) {
	k := m.Label.arity()
	if k < 0 {
		return nil, fmt.Errorf("wire: unknown label %d", m.Label)
	}
	buf = append(buf, byte(m.Label))
	params := [3]int64{m.A, m.B, m.C}
	for i := 0; i < k; i++ {
		buf = binary.AppendVarint(buf, params[i])
	}
	if m.Label == LabelEdgeBatch {
		buf = binary.AppendUvarint(buf, uint64(len(m.Ext)))
		buf = append(buf, m.Ext...)
	} else if len(m.Ext) != 0 {
		return nil, fmt.Errorf("wire: Ext payload on %s message", m.Label)
	}
	return buf, nil
}

// Decode parses one message from buf and returns it along with the number
// of bytes consumed.
func Decode(buf []byte) (Message, int, error) {
	if len(buf) == 0 {
		return Message{}, 0, fmt.Errorf("wire: empty buffer")
	}
	m := Message{Label: Label(buf[0])}
	k := m.Label.arity()
	if k < 0 {
		return Message{}, 0, fmt.Errorf("wire: unknown label %d", buf[0])
	}
	off := 1
	params := [3]*int64{&m.A, &m.B, &m.C}
	for i := 0; i < k; i++ {
		v, n := binary.Varint(buf[off:])
		if n <= 0 {
			return Message{}, 0, fmt.Errorf("wire: truncated parameter %d of %s", i, m.Label)
		}
		// Reject non-minimal varints: stdlib Varint tolerates padded
		// encodings (e.g. "ff 00" for -64), which would give one message
		// two wire forms and break the codec bijection SizeBits accounting
		// relies on (found by FuzzMessageCodec).
		if ux := uint64(v)<<1 ^ uint64(v>>63); n != uvarintLen(ux) {
			return Message{}, 0, fmt.Errorf("wire: non-canonical parameter %d of %s", i, m.Label)
		}
		*params[i] = v
		off += n
	}
	if m.Label == LabelEdgeBatch {
		extLen, n := binary.Uvarint(buf[off:])
		if n <= 0 {
			return Message{}, 0, fmt.Errorf("wire: truncated batch length")
		}
		if n != uvarintLen(extLen) {
			return Message{}, 0, fmt.Errorf("wire: non-canonical batch length")
		}
		off += n
		if uint64(len(buf[off:])) < extLen {
			return Message{}, 0, fmt.Errorf("wire: truncated batch payload")
		}
		m.Ext = string(buf[off : off+int(extLen)])
		off += int(extLen)
		// A batch whose payload is not a whole number of (ID2, Mult)
		// varint pairs would decode "successfully" yet be uninterpretable
		// by ExtPairs; reject it here so Decode acceptance implies a fully
		// readable message (found by FuzzMessageCodec).
		if err := validExt(m.Ext); err != nil {
			return Message{}, 0, err
		}
	}
	return m, off, nil
}

// uvarintLen returns the length of the minimal uvarint encoding of x.
func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// validExt scans a batch payload and verifies it is a whole number of
// varint pairs, without allocating the pair slice ExtPairs builds.
func validExt(ext string) error {
	buf := []byte(ext)
	for len(buf) > 0 {
		for _, field := range [2]string{"ID2", "Mult"} {
			_, k := binary.Varint(buf)
			if k <= 0 {
				return fmt.Errorf("wire: truncated batch %s", field)
			}
			buf = buf[k:]
		}
	}
	return nil
}

// SizeBits returns the exact encoded size of m in bits. Unknown labels
// count as a single byte (defensive; they cannot be produced by the
// constructors).
func SizeBits(m Message) int {
	buf, err := m.Encode(nil)
	if err != nil {
		return 8
	}
	return 8 * len(buf)
}
