package wire

import (
	"encoding/binary"
	"fmt"
)

// This file defines the wire format of the linear-time protocol's
// full-information messages (Di Luna–Viglietta, FOCS 2022 / arXiv
// 2204.02128): a View is a process's entire hash-consed history-tree
// view, shipped wholesale every round. Unlike the congested protocol's
// constant-arity Messages, Views grow with the run — Θ(n³ log n) bits in
// the worst case — which is exactly the tradeoff the E17 experiment
// measures. The encoding is canonical (content-ordered, minimal varints),
// so equal abstract views encode to identical bytes regardless of which
// process, scheduler, or run produced them; SizeOf therefore reports
// scheduler-independent congestion numbers.

// ViewRed is one red multi-edge of a view class: the position (index into
// View.Classes) of the source class one level up, and the multiplicity
// with which it was heard.
type ViewRed struct {
	// Src is the index of the source class in View.Classes.
	Src int32
	// Mult is the number of deliveries heard from that class.
	Mult int32
}

// ViewClass is one history-tree class of a View. Classes reference each
// other positionally: Parent and ViewRed.Src are indices into
// View.Classes, which the canonical order guarantees point strictly
// backwards (parents and red sources precede their dependents).
type ViewClass struct {
	// Level is the class's history-tree level (0 = input partition).
	Level int32
	// Parent is the index of the parent class, or -1 for level-0 classes.
	Parent int32
	// Reds are the red multi-edges, sorted by Src.
	Reds []ViewRed
	// Leader and Value carry the input of a level-0 class and are zero
	// for every deeper class.
	Leader bool
	Value  int64
}

// View is a full-information message: the sender's complete view of the
// history tree plus the position of the class currently representing the
// sender. Classes must be in canonical order (levels ascending, and
// within a level ordered by input for level 0 and by (Parent, Reds) for
// deeper levels); Encode rejects nothing, but DecodeView enforces the
// backward-reference discipline, so only well-formed Views round-trip.
type View struct {
	// Classes is the view's class set in canonical order.
	Classes []ViewClass
	// Self is the index of the sender's current class in Classes.
	Self int32
}

// Encode appends the canonical wire encoding of v to buf and returns the
// result: a class count, then per class its level, parent reference
// (+1, so 0 means none), red edges and — for level 0 — the input, all as
// minimal varints, and finally the sender's class position.
func (v *View) Encode(buf []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(v.Classes)))
	for _, c := range v.Classes {
		buf = binary.AppendUvarint(buf, uint64(c.Level))
		buf = binary.AppendUvarint(buf, uint64(c.Parent+1))
		buf = binary.AppendUvarint(buf, uint64(len(c.Reds)))
		for _, r := range c.Reds {
			buf = binary.AppendUvarint(buf, uint64(r.Src))
			buf = binary.AppendUvarint(buf, uint64(r.Mult))
		}
		if c.Level == 0 {
			flag := byte(0)
			if c.Leader {
				flag = 1
			}
			buf = append(buf, flag)
			buf = binary.AppendVarint(buf, c.Value)
		}
	}
	buf = binary.AppendUvarint(buf, uint64(v.Self))
	return buf
}

// SizeBits returns the exact encoded size of v in bits — the honest cost
// a congested network would have to pay to ship the view.
func (v *View) SizeBits() int {
	bits := uvarintLen(uint64(len(v.Classes))) * 8
	for _, c := range v.Classes {
		bits += uvarintLen(uint64(c.Level)) * 8
		bits += uvarintLen(uint64(c.Parent+1)) * 8
		bits += uvarintLen(uint64(len(c.Reds))) * 8
		for _, r := range c.Reds {
			bits += (uvarintLen(uint64(r.Src)) + uvarintLen(uint64(r.Mult))) * 8
		}
		if c.Level == 0 {
			zz := uint64(c.Value)<<1 ^ uint64(c.Value>>63)
			bits += 8 + uvarintLen(zz)*8
		}
	}
	bits += uvarintLen(uint64(v.Self)) * 8
	return bits
}

// viewUvarint reads one minimal uvarint, rejecting padded encodings so
// the codec stays a bijection (the same discipline Decode applies to
// Messages).
func viewUvarint(buf []byte, what string) (uint64, int, error) {
	u, n := binary.Uvarint(buf)
	if n <= 0 {
		return 0, 0, fmt.Errorf("wire: truncated view %s", what)
	}
	if n != uvarintLen(u) {
		return 0, 0, fmt.Errorf("wire: non-canonical view %s", what)
	}
	return u, n, nil
}

// DecodeView parses one View from buf and returns it along with the
// number of bytes consumed. It enforces structural well-formedness:
// parent and red-source references must point to earlier positions,
// levels must never decrease along the class list, level-0 classes have
// no parent and no reds, deeper classes have a parent at the previous
// level, and the self reference must be in range.
func DecodeView(buf []byte) (*View, int, error) {
	count, off, err := viewUvarint(buf, "class count")
	if err != nil {
		return nil, 0, err
	}
	if count > uint64(len(buf)) {
		// Each class costs at least one byte; cheap guard against
		// attacker-sized allocations.
		return nil, 0, fmt.Errorf("wire: view class count %d exceeds buffer", count)
	}
	v := &View{Classes: make([]ViewClass, count)}
	levels := make([]int32, count)
	lastLevel := int32(0)
	for i := range v.Classes {
		c := &v.Classes[i]
		lvl, n, err := viewUvarint(buf[off:], "level")
		if err != nil {
			return nil, 0, err
		}
		off += n
		c.Level = int32(lvl)
		if c.Level < lastLevel {
			return nil, 0, fmt.Errorf("wire: view levels not ascending at class %d", i)
		}
		lastLevel = c.Level
		levels[i] = c.Level
		par, n, err := viewUvarint(buf[off:], "parent")
		if err != nil {
			return nil, 0, err
		}
		off += n
		c.Parent = int32(par) - 1
		if c.Level == 0 {
			if c.Parent != -1 {
				return nil, 0, fmt.Errorf("wire: level-0 class %d has a parent", i)
			}
		} else {
			if c.Parent < 0 || int(c.Parent) >= i {
				return nil, 0, fmt.Errorf("wire: class %d parent %d not an earlier position", i, c.Parent)
			}
			if levels[c.Parent] != c.Level-1 {
				return nil, 0, fmt.Errorf("wire: class %d at level %d has parent at level %d",
					i, c.Level, levels[c.Parent])
			}
		}
		nr, n, err := viewUvarint(buf[off:], "red count")
		if err != nil {
			return nil, 0, err
		}
		off += n
		if nr > uint64(len(buf)) {
			return nil, 0, fmt.Errorf("wire: view red count %d exceeds buffer", nr)
		}
		if nr > 0 && c.Level == 0 {
			return nil, 0, fmt.Errorf("wire: level-0 class %d has red edges", i)
		}
		if nr > 0 {
			c.Reds = make([]ViewRed, nr)
		}
		prevSrc := int32(-1)
		for j := range c.Reds {
			src, n, err := viewUvarint(buf[off:], "red source")
			if err != nil {
				return nil, 0, err
			}
			off += n
			mult, n2, err := viewUvarint(buf[off:], "red multiplicity")
			if err != nil {
				return nil, 0, err
			}
			off += n2
			r := &c.Reds[j]
			r.Src = int32(src)
			r.Mult = int32(mult)
			if int(r.Src) >= i {
				return nil, 0, fmt.Errorf("wire: class %d red source %d not an earlier position", i, r.Src)
			}
			if r.Src <= prevSrc {
				return nil, 0, fmt.Errorf("wire: class %d red sources not strictly ascending", i)
			}
			prevSrc = r.Src
			if r.Mult < 1 {
				return nil, 0, fmt.Errorf("wire: class %d red multiplicity %d < 1", i, r.Mult)
			}
		}
		if c.Level == 0 {
			if off >= len(buf) {
				return nil, 0, fmt.Errorf("wire: truncated view input flag")
			}
			switch buf[off] {
			case 0:
			case 1:
				c.Leader = true
			default:
				return nil, 0, fmt.Errorf("wire: view input flag %d not 0 or 1", buf[off])
			}
			off++
			val, n := binary.Varint(buf[off:])
			if n <= 0 {
				return nil, 0, fmt.Errorf("wire: truncated view input value")
			}
			if zz := uint64(val)<<1 ^ uint64(val>>63); n != uvarintLen(zz) {
				return nil, 0, fmt.Errorf("wire: non-canonical view input value")
			}
			c.Value = val
			off += n
		}
	}
	self, n, err := viewUvarint(buf[off:], "self reference")
	if err != nil {
		return nil, 0, err
	}
	off += n
	if self >= count {
		return nil, 0, fmt.Errorf("wire: view self reference %d out of range", self)
	}
	v.Self = int32(self)
	return v, off, nil
}

// SizeOf measures any protocol message box in bits: the congested
// protocol's Message values by the label+varint codec, and the linear
// protocol's *View full-information messages by the canonical view codec.
// Boxes of neither kind measure 0 bits (the engine's convention for
// unsized messages). This is the single sizing entry point both
// protocols' congestion accounting flows through.
func SizeOf(box any) int {
	if v, ok := box.(*View); ok {
		return v.SizeBits()
	}
	if m, ok := FromBox(box); ok {
		return SizeBits(m)
	}
	return 0
}
