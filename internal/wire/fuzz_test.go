package wire

import (
	"bytes"
	"testing"
)

// FuzzMessageCodec round-trips arbitrary byte strings through the wire
// codec: any buffer Decode accepts must re-encode to exactly the bytes it
// consumed, decode back to an equal message, and report a consistent
// SizeBits. Buffers Decode rejects must never panic.
func FuzzMessageCodec(f *testing.F) {
	// Seed with one well-formed encoding per label plus a batched edge.
	seeds := []Message{
		Null(),
		Begin(0),
		End(),
		Done(7),
		Edge(1, 2, 3),
		Error(4),
		Reset(3, 100, 8),
		Input(5, -9, true),
		Halt(5, 10),
	}
	if batch, err := EdgeBatch(1, []EdgePair{{2, 1}, {3, 2}}); err == nil {
		seeds = append(seeds, batch)
	}
	for _, m := range seeds {
		buf, err := m.Encode(nil)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
	}
	f.Add([]byte{})                  // empty buffer
	f.Add([]byte{0xff})              // unknown label
	f.Add([]byte{5, 0x80})           // truncated varint
	f.Add([]byte{10, 2, 4, 2, 0x7f}) // batch length beyond buffer

	f.Fuzz(func(t *testing.T, data []byte) {
		m, consumed, err := Decode(data)
		if err != nil {
			return // rejection is fine; panics are not
		}
		if consumed <= 0 || consumed > len(data) {
			t.Fatalf("Decode consumed %d of %d bytes", consumed, len(data))
		}
		re, err := m.Encode(nil)
		if err != nil {
			t.Fatalf("decoded message %v does not re-encode: %v", m, err)
		}
		if !bytes.Equal(re, data[:consumed]) {
			t.Fatalf("re-encoding drifted: %x → %v → %x", data[:consumed], m, re)
		}
		m2, consumed2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-decoding %x: %v", re, err)
		}
		if !Equal(m, m2) || consumed2 != len(re) {
			t.Fatalf("codec not a bijection: %v vs %v", m, m2)
		}
		if got := SizeBits(m); got != 8*len(re) {
			t.Fatalf("SizeBits(%v) = %d, encoding is %d bits", m, got, 8*len(re))
		}
		if m.Label != LabelEdgeBatch {
			if pairs, err := m.ExtPairs(); err != nil || pairs != nil {
				t.Fatalf("non-batch message %v has ext pairs %v (err %v)", m, pairs, err)
			}
		} else if _, err := m.ExtPairs(); err != nil {
			t.Fatalf("decoded batch %v has undecodable ext: %v", m, err)
		}
	})
}
