package wire

import (
	"testing"
)

// sampleView is a small well-formed view: a 3-class input partition at
// level 0 and two refined classes at level 1.
func sampleView() *View {
	return &View{
		Classes: []ViewClass{
			{Level: 0, Parent: -1, Leader: true},
			{Level: 0, Parent: -1, Value: 7},
			{Level: 0, Parent: -1, Value: -3},
			{Level: 1, Parent: 0, Reds: []ViewRed{{Src: 1, Mult: 2}, {Src: 2, Mult: 1}}},
			{Level: 1, Parent: 1, Reds: []ViewRed{{Src: 0, Mult: 1}}},
		},
		Self: 4,
	}
}

func viewsEqual(a, b *View) bool {
	if a.Self != b.Self || len(a.Classes) != len(b.Classes) {
		return false
	}
	for i, c := range a.Classes {
		d := b.Classes[i]
		if c.Level != d.Level || c.Parent != d.Parent || c.Leader != d.Leader ||
			c.Value != d.Value || len(c.Reds) != len(d.Reds) {
			return false
		}
		for j, r := range c.Reds {
			if r != d.Reds[j] {
				return false
			}
		}
	}
	return true
}

func TestViewRoundTrip(t *testing.T) {
	v := sampleView()
	buf := v.Encode(nil)
	got, n, err := DecodeView(buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if n != len(buf) {
		t.Fatalf("decode consumed %d of %d bytes", n, len(buf))
	}
	if !viewsEqual(v, got) {
		t.Fatalf("round trip changed the view:\n  in:  %+v\n  out: %+v", v, got)
	}
	if bits := v.SizeBits(); bits != 8*len(buf) {
		t.Fatalf("SizeBits = %d, encoded length says %d", bits, 8*len(buf))
	}
	if bits := SizeOf(v); bits != v.SizeBits() {
		t.Fatalf("SizeOf(view) = %d, want %d", bits, v.SizeBits())
	}
}

func TestViewDecodeRejectsMalformed(t *testing.T) {
	base := sampleView()
	cases := []struct {
		name   string
		mutate func(v *View)
	}{
		{"parent-forward", func(v *View) { v.Classes[3].Parent = 4 }},
		{"parent-on-level0", func(v *View) { v.Classes[0].Parent = 1 }},
		{"red-forward", func(v *View) { v.Classes[3].Reds[0].Src = 3 }},
		{"red-unsorted", func(v *View) { v.Classes[3].Reds[0].Src = 2 }},
		{"red-zero-mult", func(v *View) { v.Classes[3].Reds[0].Mult = 0 }},
		{"reds-on-level0", func(v *View) { v.Classes[0].Reds = []ViewRed{{Src: 0, Mult: 1}} }},
		{"self-out-of-range", func(v *View) { v.Self = 5 }},
		{"levels-descend", func(v *View) {
			v.Classes[2], v.Classes[3] = v.Classes[3], v.Classes[2]
		}},
		{"parent-skips-level", func(v *View) {
			v.Classes[3].Level = 2
			v.Classes[4].Level = 2
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v := sampleView()
			tc.mutate(v)
			if _, _, err := DecodeView(v.Encode(nil)); err == nil {
				t.Fatalf("decode accepted a malformed view (%s)", tc.name)
			}
		})
	}
	if _, _, err := DecodeView(nil); err == nil {
		t.Fatal("decode accepted an empty buffer")
	}
	buf := base.Encode(nil)
	for cut := 1; cut < len(buf); cut++ {
		if _, _, err := DecodeView(buf[:cut]); err == nil {
			t.Fatalf("decode accepted a %d-byte truncation of a %d-byte view", cut, len(buf))
		}
	}
}

func TestSizeOfDispatch(t *testing.T) {
	m := Edge(3, 4, 2)
	if got, want := SizeOf(m), SizeBits(m); got != want {
		t.Fatalf("SizeOf(Message) = %d, want %d", got, want)
	}
	if got, want := SizeOf(&m), SizeBits(m); got != want {
		t.Fatalf("SizeOf(*Message) = %d, want %d", got, want)
	}
	if got := SizeOf("not a protocol message"); got != 0 {
		t.Fatalf("SizeOf(unknown box) = %d, want 0", got)
	}
}
