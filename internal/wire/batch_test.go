package wire

import (
	"testing"
	"testing/quick"
)

func TestEdgeBatchSinglePairIsPlainEdge(t *testing.T) {
	m, err := EdgeBatch(5, []EdgePair{{ID2: 7, Mult: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if m != Edge(5, 7, 2) {
		t.Fatalf("got %+v, want plain Edge", m)
	}
	pairs, err := m.ExtPairs()
	if err != nil || pairs != nil {
		t.Fatalf("single-pair batch should have no Ext, got %v (%v)", pairs, err)
	}
}

func TestEdgeBatchEmptyFails(t *testing.T) {
	if _, err := EdgeBatch(1, nil); err == nil {
		t.Fatal("empty batch must fail")
	}
}

func TestEdgeBatchRoundTrip(t *testing.T) {
	f := func(id1 int64, rawPairs []int64) bool {
		if len(rawPairs) == 0 {
			rawPairs = []int64{1}
		}
		if len(rawPairs) > 32 {
			rawPairs = rawPairs[:32]
		}
		pairs := make([]EdgePair, len(rawPairs))
		for i, v := range rawPairs {
			pairs[i] = EdgePair{ID2: v, Mult: v/2 + 1}
		}
		m, err := EdgeBatch(id1, pairs)
		if err != nil {
			return false
		}
		// Wire round trip.
		buf, err := m.Encode(nil)
		if err != nil {
			return false
		}
		got, used, err := Decode(buf)
		if err != nil || used != len(buf) || got != m {
			return false
		}
		// Semantic round trip: leading triplet + Ext pairs reconstruct the
		// input.
		ext, err := got.ExtPairs()
		if err != nil {
			return false
		}
		recon := append([]EdgePair{{ID2: got.B, Mult: got.C}}, ext...)
		if len(recon) != len(pairs) {
			return false
		}
		for i := range pairs {
			if recon[i] != pairs[i] {
				return false
			}
		}
		return got.A == id1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestExtOnNonEdgeFailsToEncode(t *testing.T) {
	m := Done(3)
	m.Ext = "junk"
	if _, err := m.Encode(nil); err == nil {
		t.Fatal("Ext on a non-Edge message must fail to encode")
	}
}

func TestBatchSizeGrowsWithPairs(t *testing.T) {
	small, err := EdgeBatch(1, []EdgePair{{2, 1}})
	if err != nil {
		t.Fatal(err)
	}
	big, err := EdgeBatch(1, []EdgePair{{2, 1}, {3, 1}, {4, 2}, {5, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if SizeBits(big) <= SizeBits(small) {
		t.Fatalf("batch of 4 (%d bits) not larger than batch of 1 (%d bits)",
			SizeBits(big), SizeBits(small))
	}
}

func TestExtPairsCorruptPayload(t *testing.T) {
	m := Edge(1, 2, 3)
	m.Ext = "\x80" // truncated varint
	if _, err := m.ExtPairs(); err == nil {
		t.Fatal("corrupt Ext must fail to decode")
	}
	m.Ext = "\x02" // one varint, missing the Mult
	if _, err := m.ExtPairs(); err == nil {
		t.Fatal("odd-length Ext must fail to decode")
	}
}
