package wire

import (
	"math"
	"testing"
	"testing/quick"
)

func allLabels() []Label {
	return []Label{LabelNull, LabelBegin, LabelEnd, LabelDone, LabelEdge,
		LabelError, LabelReset, LabelInput, LabelHalt}
}

func TestConstructors(t *testing.T) {
	tests := []struct {
		name string
		msg  Message
		want Message
	}{
		{name: "null", msg: Null(), want: Message{Label: LabelNull}},
		{name: "begin", msg: Begin(7), want: Message{Label: LabelBegin, A: 7}},
		{name: "end", msg: End(), want: Message{Label: LabelEnd}},
		{name: "done", msg: Done(9), want: Message{Label: LabelDone, A: 9}},
		{name: "edge", msg: Edge(1, 2, 3), want: Message{Label: LabelEdge, A: 1, B: 2, C: 3}},
		{name: "error", msg: Error(4), want: Message{Label: LabelError, A: 4}},
		{name: "reset", msg: Reset(1, 100, 8), want: Message{Label: LabelReset, A: 1, B: 100, C: 8}},
		{name: "input-leader", msg: Input(0, -5, true), want: Message{Label: LabelInput, A: 0, B: -5, C: 1}},
		{name: "input-plain", msg: Input(1, 5, false), want: Message{Label: LabelInput, A: 1, B: 5}},
		{name: "halt", msg: Halt(12, 340), want: Message{Label: LabelHalt, A: 12, B: 340}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if tt.msg != tt.want {
				t.Fatalf("got %+v, want %+v", tt.msg, tt.want)
			}
		})
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(labelIdx uint8, a, b, c int64) bool {
		labels := allLabels()
		m := Message{Label: labels[int(labelIdx)%len(labels)], A: a, B: b, C: c}
		// Zero out parameters the label does not carry, since they are not
		// on the wire.
		switch m.Label.arity() {
		case 0:
			m.A, m.B, m.C = 0, 0, 0
		case 1:
			m.B, m.C = 0, 0
		case 2:
			m.C = 0
		}
		buf, err := m.Encode(nil)
		if err != nil {
			return false
		}
		got, used, err := Decode(buf)
		return err == nil && used == len(buf) && got == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	tests := []struct {
		name string
		buf  []byte
	}{
		{name: "empty", buf: nil},
		{name: "unknown-label", buf: []byte{0xEE}},
		{name: "truncated-param", buf: []byte{byte(LabelEdge), 0x80}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, _, err := Decode(tt.buf); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

func TestEncodeUnknownLabelFails(t *testing.T) {
	if _, err := (Message{Label: Label(0xEE)}).Encode(nil); err == nil {
		t.Fatal("expected error")
	}
}

func TestSizeBitsGrowsLogarithmically(t *testing.T) {
	// A red-edge triplet with parameters bounded by a polynomial in n must
	// encode in O(log n) bits: 8 bits label + ≤ 3 varints of ~(log n)/7
	// bytes each.
	for _, n := range []int64{4, 64, 1024, 1 << 20} {
		m := Edge(n*n, n*n, n)
		bits := SizeBits(m)
		logN := math.Log2(float64(n))
		if float64(bits) > 8+3*(2*logN/7+2)*8+24 {
			t.Errorf("n=%d: %d bits exceeds O(log n) budget", n, bits)
		}
	}
	if small, big := SizeBits(Edge(1, 1, 1)), SizeBits(Edge(1<<40, 1<<40, 1<<40)); small >= big {
		t.Errorf("sizes not monotone: %d vs %d", small, big)
	}
}

func TestSizeBitsMatchesEncoding(t *testing.T) {
	msgs := []Message{Null(), Begin(3), End(), Done(500), Edge(70, 80, 90),
		Error(2), Reset(1, 100000, 16), Input(1, -7, true), Halt(9, 1234)}
	for _, m := range msgs {
		buf, err := m.Encode(nil)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if SizeBits(m) != 8*len(buf) {
			t.Errorf("%s: SizeBits=%d, encoding is %d bits", m, SizeBits(m), 8*len(buf))
		}
	}
}

func TestStrings(t *testing.T) {
	tests := []struct {
		msg  Message
		want string
	}{
		{msg: Null(), want: "Null"},
		{msg: End(), want: "End"},
		{msg: Begin(3), want: "Begin(3)"},
		{msg: Done(4), want: "Done(4)"},
		{msg: Error(2), want: "Error(2)"},
		{msg: Edge(1, 2, 3), want: "Edge(1,2,3)"},
		{msg: Reset(1, 2, 3), want: "Reset(1,2,3)"},
	}
	for _, tt := range tests {
		if got := tt.msg.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
	if Label(0xEE).String() != "Label(238)" {
		t.Errorf("unknown label string: %s", Label(0xEE))
	}
}

func TestDecodeTrailingBytesReported(t *testing.T) {
	buf, err := Done(5).Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	buf = append(buf, 0xFF, 0xFF)
	m, used, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if m != Done(5) || used != len(buf)-2 {
		t.Fatalf("m=%v used=%d", m, used)
	}
}
