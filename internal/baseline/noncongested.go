// Package baseline implements the two comparison algorithms discussed in
// Section 1.2 of the paper:
//
//   - A non-congested, full-information counting algorithm in the style of
//     Di Luna–Viglietta (FOCS 2022): every process broadcasts its entire
//     view of the history tree each round and merges what it receives. It
//     terminates in Θ(n) rounds but its messages grow to Θ(n³ log n) bits,
//     which is what makes the approach unusable in congested networks and
//     motivates the paper.
//
//   - A randomized token-forwarding counting algorithm in the style of
//     Kuhn–Lynch–Oshman (STOC 2010): unique random tokens are disseminated
//     by single-token forwarding for Θ(N²) rounds. Messages are small, but
//     the algorithm needs an a-priori bound N ≥ n, is only correct with
//     high probability, and the random tokens defeat anonymity.
package baseline

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"anondyn/internal/dynnet"
	"anondyn/internal/engine"
	"anondyn/internal/historytree"
	"anondyn/internal/ints"
)

// classInfo describes one hash-consed history-tree class: its level, its
// parent class, the multiset of classes it heard from (with multiplicities)
// and, for level-0 classes, the input.
type classInfo struct {
	level  int
	parent int // class ID of the parent; -1 for level-0 classes
	reds   []redRef
	input  historytree.Input
}

type redRef struct {
	src  int // class ID at level-1
	mult int
}

// interner hash-conses classInfos into dense integer IDs, shared by all
// processes of a run. Content addressing means two processes that construct
// structurally identical classes obtain the same ID, which is exactly the
// "merge equivalent view nodes" step of the full-information protocol —
// realized here without string-encoding entire subtrees into every message.
type interner struct {
	mu     sync.Mutex
	byKey  map[string]int
	infos  []classInfo
	keyBuf []byte // mu-guarded key-rendering scratch
}

func newInterner() *interner {
	return &interner{byKey: make(map[string]int)}
}

// intern returns the class ID for the given description, registering it if
// new. The reds slice must be in canonical (sorted by src) order.
func (in *interner) intern(ci classInfo) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	// The key is an injective byte rendering of the classInfo ('|' and '*'
	// never occur inside a decimal field), built in a lock-guarded scratch
	// buffer: lookups of known classes — the common case once a run's
	// class universe stabilizes — then allocate nothing, where the former
	// fmt.Sprintf key paid several allocations per call.
	buf := in.keyBuf[:0]
	buf = ints.AppendInt(buf, ci.level)
	buf = append(buf, '|')
	buf = ints.AppendInt(buf, ci.parent)
	for _, r := range ci.reds {
		buf = append(buf, '|')
		buf = ints.AppendInt(buf, r.src)
		buf = append(buf, '*')
		buf = ints.AppendInt(buf, r.mult)
	}
	buf = append(buf, '|')
	if ci.input.Leader {
		buf = append(buf, 'L')
	}
	buf = ints.AppendInt(buf, int(ci.input.Value))
	in.keyBuf = buf
	if id, ok := in.byKey[string(buf)]; ok {
		return id
	}
	id := len(in.infos)
	in.infos = append(in.infos, ci)
	in.byKey[string(buf)] = id
	return id
}

func (in *interner) info(id int) classInfo {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.infos[id]
}

// view is a process's view of the history tree: a closed set of class IDs
// plus the ID of the class currently representing the process. Views are
// exchanged wholesale every round.
type view struct {
	classes map[int]bool
	self    int
}

func (v *view) clone() *view {
	out := &view{classes: make(map[int]bool, len(v.classes)), self: v.self}
	for id := range v.classes {
		out.classes[id] = true
	}
	return out
}

// ncMessage is the full-information message: the sender's entire view.
type ncMessage struct {
	v *view
}

// NonCongestedResult is the outcome of a non-congested run.
type NonCongestedResult struct {
	// N is the computed count.
	N int
	// Rounds is the number of communication rounds until the leader
	// decided.
	Rounds int
	// MaxMessageBits is the size of the largest view message, measured by
	// the canonical serialization of §SizeOfView.
	MaxMessageBits int
	// Levels is the view depth at decision time.
	Levels int
}

// RunNonCongested executes the full-information counting algorithm with a
// unique leader (inputs[i].Leader marks it) and returns the result. The
// decision rule is the one described in DESIGN.md: the leader solves the
// cardinality system assuming levels 0..c of its view are complete and
// accepts an answer n̂ obtained at completeness level c once its view is at
// least c+n̂ levels deep — in a connected network, causal influence reaches
// every process within n-1 < n̂ rounds exactly when n̂ = n, making the
// assumed levels genuinely complete. (The FOCS 2022 paper proves the
// sharper 3n-level bound with a dedicated analysis; this reproduction uses
// the solver-based rule, which the test suite validates across schedules.)
func RunNonCongested(s dynnet.Schedule, inputs []historytree.Input, maxRounds int) (*NonCongestedResult, error) {
	n := s.N()
	if len(inputs) != n {
		return nil, fmt.Errorf("baseline: %d inputs for %d processes", len(inputs), n)
	}
	leaders := 0
	for _, in := range inputs {
		if in.Leader {
			leaders++
		}
	}
	if leaders != 1 {
		return nil, fmt.Errorf("baseline: need exactly 1 leader, got %d", leaders)
	}
	if maxRounds <= 0 {
		maxRounds = 4*n + 16
	}

	itn := newInterner()
	procs := make([]engine.Coroutine, n)
	results := make([]*NonCongestedResult, n)
	for i := range procs {
		p := &ncProcess{itn: itn, input: inputs[i]}
		pi := i
		procs[i] = engine.CoroutineFunc(func(tr *engine.Transport) (any, error) {
			out, err := p.run(tr)
			if err == nil && out != nil {
				results[pi] = out
			}
			return out, err
		})
	}

	ecfg := engine.Config{
		Schedule:  s,
		MaxRounds: maxRounds,
		SizeOf: func(m engine.Message) int {
			nm, ok := m.(ncMessage)
			if !ok {
				return 0
			}
			return sizeOfView(itn, nm.v)
		},
		StopWhen: func(outputs map[int]any) bool { return len(outputs) > 0 },
	}
	res, err := engine.Run(ecfg, procs)
	if err != nil {
		return nil, err
	}
	for _, r := range results {
		if r != nil {
			r.MaxMessageBits = res.MaxMessageBits
			r.Rounds = res.Rounds
			return r, nil
		}
	}
	return nil, errors.New("baseline: leader did not decide")
}

// ncProcess is one full-information participant.
type ncProcess struct {
	itn   *interner
	input historytree.Input
}

func (p *ncProcess) run(tr *engine.Transport) (*NonCongestedResult, error) {
	self := p.itn.intern(classInfo{level: 0, parent: -1, input: p.input})
	v := &view{classes: map[int]bool{self: true}, self: self}

	for {
		msgs, err := tr.SendAndReceive(ncMessage{v: v.clone()})
		if err != nil {
			return nil, err
		}
		// Merge received views and collect the senders' current classes.
		heard := make(map[int]int)
		for _, raw := range msgs {
			m, ok := raw.(ncMessage)
			if !ok {
				return nil, fmt.Errorf("baseline: unexpected message %T", raw)
			}
			for id := range m.v.classes {
				v.classes[id] = true
			}
			heard[m.v.self]++
		}
		reds := make([]redRef, 0, len(heard))
		for src, mult := range heard {
			reds = append(reds, redRef{src: src, mult: mult})
		}
		sort.Slice(reds, func(i, j int) bool { return reds[i].src < reds[j].src })
		v.self = p.itn.intern(classInfo{level: tr.Round(), parent: v.self, reds: reds})
		v.classes[v.self] = true

		if !p.input.Leader {
			continue
		}
		tree, depth, err := treeFromView(p.itn, v)
		if err != nil {
			return nil, err
		}
		// Scan completeness candidates from the shallowest up: the first
		// level prefix that resolves the system is the one with maximum
		// slack, i.e. the most likely to be genuinely complete. If the
		// slack condition fails, wait for more rounds instead of trusting
		// deeper (less settled) prefixes.
		for c := 0; c <= depth; c++ {
			res, err := historytree.Count(tree, c)
			if err != nil {
				// Levels assumed complete may be inconsistent; not settled.
				break
			}
			if !res.Known {
				continue
			}
			if depth >= c+res.N {
				return &NonCongestedResult{N: res.N, Levels: depth}, nil
			}
			break
		}
	}
}

// treeFromView materializes a historytree.Tree from a view's class set.
// Class IDs become node IDs (+offset so they never collide with the root).
func treeFromView(itn *interner, v *view) (*historytree.Tree, int, error) {
	ids := make([]int, 0, len(v.classes))
	for id := range v.classes {
		ids = append(ids, id)
	}
	// Order by level, then ID, so parents precede children.
	sort.Slice(ids, func(i, j int) bool {
		li, lj := itn.info(ids[i]).level, itn.info(ids[j]).level
		if li != lj {
			return li < lj
		}
		return ids[i] < ids[j]
	})
	t := historytree.New()
	depth := 0
	for _, id := range ids {
		ci := itn.info(id)
		parent := t.Root()
		if ci.parent >= 0 {
			parent = t.NodeByID(ci.parent)
			if parent == nil {
				return nil, 0, fmt.Errorf("baseline: view not closed under parents (class %d)", id)
			}
		}
		node, err := t.AddChild(id, parent, ci.input)
		if err != nil {
			return nil, 0, err
		}
		for _, r := range ci.reds {
			src := t.NodeByID(r.src)
			if src == nil {
				return nil, 0, fmt.Errorf("baseline: view not closed under red sources (class %d)", id)
			}
			if err := t.AddRed(node, src, r.mult); err != nil {
				return nil, 0, err
			}
		}
		if ci.level > depth {
			depth = ci.level
		}
	}
	return t, depth, nil
}

// sizeOfView measures a view message in bits under a canonical local
// serialization: nodes are numbered by position, and each node contributes
// varints for its level, parent reference, red edges and input. This is the
// honest cost a congested network would have to pay to ship the view.
func sizeOfView(itn *interner, v *view) int {
	ids := ints.SortedKeys(v.classes)
	index := make(map[int]int, len(ids))
	for i, id := range ids {
		index[id] = i
	}
	bits := varintBits(int64(len(ids)))
	for _, id := range ids {
		ci := itn.info(id)
		bits += varintBits(int64(ci.level))
		parent := -1
		if ci.parent >= 0 {
			parent = index[ci.parent]
		}
		bits += varintBits(int64(parent + 1))
		bits += varintBits(int64(len(ci.reds)))
		for _, r := range ci.reds {
			bits += varintBits(int64(index[r.src])) + varintBits(int64(r.mult))
		}
		if ci.level == 0 {
			bits += 1 + varintBits(ci.input.Value)
		}
	}
	bits += varintBits(int64(index[v.self]))
	return bits
}

// varintBits returns the size in bits of the unsigned varint encoding of
// the zig-zagged value.
func varintBits(v int64) int {
	u := uint64(v<<1) ^ uint64(v>>63)
	bytes := 1
	for u >= 0x80 {
		u >>= 7
		bytes++
	}
	return 8 * bytes
}
