package baseline

import (
	"testing"

	"anondyn/internal/dynnet"
	"anondyn/internal/historytree"
)

func leaderInputs(n int) []historytree.Input {
	in := make([]historytree.Input, n)
	in[0].Leader = true
	return in
}

func TestNonCongestedCountsCorrectly(t *testing.T) {
	tests := []struct {
		name string
		n    int
		mk   func(n int) dynnet.Schedule
	}{
		{name: "path", n: 6, mk: func(n int) dynnet.Schedule { return dynnet.NewStatic(dynnet.Path(n)) }},
		{name: "complete", n: 7, mk: func(n int) dynnet.Schedule { return dynnet.NewStatic(dynnet.Complete(n)) }},
		{name: "random", n: 8, mk: func(n int) dynnet.Schedule { return dynnet.NewRandomConnected(n, 0.3, 4) }},
		{name: "rotating-star", n: 5, mk: func(n int) dynnet.Schedule { return dynnet.NewRotatingStar(n) }},
		{name: "shifting-path", n: 6, mk: func(n int) dynnet.Schedule { return dynnet.NewShiftingPath(n) }},
		{name: "single", n: 1, mk: func(n int) dynnet.Schedule { return dynnet.NewStatic(dynnet.Complete(n)) }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			res, err := RunNonCongested(tt.mk(tt.n), leaderInputs(tt.n), 0)
			if err != nil {
				t.Fatalf("RunNonCongested: %v", err)
			}
			if res.N != tt.n {
				t.Fatalf("counted %d, want %d", res.N, tt.n)
			}
			if res.Rounds > 4*tt.n+16 {
				t.Errorf("took %d rounds, expected Θ(n)", res.Rounds)
			}
			t.Logf("n=%d rounds=%d maxBits=%d", tt.n, res.Rounds, res.MaxMessageBits)
		})
	}
}

func TestNonCongestedMessageGrowth(t *testing.T) {
	// View messages must grow super-linearly in n — that is the point of
	// the congested algorithm. Compare max message bits for n and 2n.
	bits := make(map[int]int)
	for _, n := range []int{4, 8} {
		res, err := RunNonCongested(dynnet.NewRandomConnected(n, 0.5, 9), leaderInputs(n), 0)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		bits[n] = res.MaxMessageBits
	}
	if bits[8] < 4*bits[4] {
		t.Errorf("view size grew only from %d to %d bits; expected ≥ 4x growth", bits[4], bits[8])
	}
}

func TestTokenForwardEstimates(t *testing.T) {
	for _, n := range []int{3, 6, 10} {
		s := dynnet.NewRandomConnected(n, 0.4, int64(n))
		res, err := RunTokenForward(s, n, 42)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if res.Estimate != n {
			t.Errorf("n=%d: estimated %d (w.h.p. failure or insufficient rounds)", n, res.Estimate)
		}
		if res.Rounds != 2*n*n {
			t.Errorf("n=%d: ran %d rounds, want %d", n, res.Rounds, 2*n*n)
		}
	}
}

func TestTokenForwardRequiresBound(t *testing.T) {
	s := dynnet.NewStatic(dynnet.Path(5))
	if _, err := RunTokenForward(s, 4, 1); err == nil {
		t.Fatal("expected error for bound < n")
	}
}
